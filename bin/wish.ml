(* wish: the windowing shell (paper §5).

   Runs Tcl scripts against a Tk application on a simulated X display:

     wish -f script.tcl        run a script (as in Figure 9's "#!wish -f")
     wish                      interactive command loop on stdin

   Because the display is simulated, wish adds three commands beyond
   standard Tk so scripts can be driven and observed headlessly:

     screendump ?window?       print an ASCII rendering of the display
     inject motion X Y | button N | key KEYSYM | string TEXT
                               synthesize user input
     serverstats               print the connection's request counters
     faultstats                print injected/absorbed fault counters
     crashtest at N | kill APP | status
                               arm the crash plan / kill a peer / report

   Two observability commands are part of the standard command set (so
   they also work in embedded apps and tests, not just wish):

     xtrace on ?cap?|off|dump|clear|status
                               per-request wire trace (bounded ring)
     xstat ?reset|get NAME?    every counter the stack keeps, as a Tcl
                               list of name/value pairs

   The -faults N flag arms the server's fault-injection plan so every
   N-th request is rejected with an X protocol error — a robustness
   torture test for scripts and widgets (use faultstats to verify that
   every injected fault was absorbed).

   The -crash-at N flag arms the crash plan: the application's X
   connection dies abruptly (as if the client was killed) the moment its
   request counter reaches N. The interpreter survives — every
   subsequent X request degrades gracefully — so scripts can verify the
   failure story of a client outliving its display connection.

   The -mailbox N flag bounds the application's incoming-send mailbox
   (default 64): a flood of send requests beyond N is refused with a
   distinct overflow error to the sender instead of queueing without
   limit. Scripts can read or adjust the bound with [send mailbox].

   The -safe-send flag evaluates incoming send scripts in a -safe slave
   interpreter (hidden exit/exec-alikes/interp/test hooks) instead of
   the main one; -limit-ms N additionally arms an N-millisecond time
   limit around each incoming script (and, without -safe-send, switches
   the guard to limits-on-the-main-interpreter mode). Scripts can read
   or adjust both with [send guard] and [send limit]. *)

open Xsim

let run_script app ~lint path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg ->
    Printf.eprintf "wish: couldn't read %s: %s\n" path msg;
    exit 1
  | contents ->
    (* -lint: report diagnostics through the background-error pipeline
       (tkerror/bgerror when defined, stderr otherwise), then source the
       script anyway — lint is advisory in wish; tclcheck is the gate. *)
    if lint then
      List.iter
        (fun d ->
          app.Tk.Core.error_handler (Tcl.Lint.format_diag ~file:path d))
        (Tcl.Lint.analyze app.Tk.Core.interp contents);
    (match Tcl.Interp.eval app.Tk.Core.interp contents with
    | Tcl.Interp.Tcl_error, msg ->
      Printf.eprintf "wish: error in %s: %s\n" path msg;
      exit 1
    | _ -> Tk.Core.update app)

(* A command is complete when its braces, brackets and quotes balance
   (so multi-line procs can be typed at the prompt, as in real wish) —
   the same predicate [info complete] exposes to scripts. *)
let command_complete = Tcl.Lint.complete

let interactive app =
  Tcl.Interp.set_history_recording app.Tk.Core.interp true;
  let rec loop pending =
    print_string (if pending = "" then "% " else "> ");
    flush stdout;
    match In_channel.input_line stdin with
    | None -> ()
    | Some line ->
      let script = if pending = "" then line else pending ^ "\n" ^ line in
      if not (command_complete script) then loop script
      else begin
        Tcl.Interp.record_history_event app.Tk.Core.interp script;
        (match Tcl.Interp.eval app.Tk.Core.interp script with
        | Tcl.Interp.Tcl_ok, "" -> ()
        | Tcl.Interp.Tcl_ok, v -> print_endline v
        | _, msg -> Printf.printf "error: %s\n" msg);
        Tk.Core.update app;
        if not app.Tk.Core.app_destroyed then loop ""
      end
  in
  loop ""

let () =
  let args = Array.to_list Sys.argv in
  let no_cache = ref false in
  let no_vm = ref false in
  let lint = ref false in
  let mailbox = ref 0 in
  let safe_send = ref false in
  let limit_ms = ref 0 in
  let rec parse script name stay faults crash_at = function
    | [] -> (script, name, stay, faults, crash_at)
    | "-f" :: path :: rest -> parse (Some path) name stay faults crash_at rest
    | "-name" :: n :: rest -> parse script (Some n) stay faults crash_at rest
    | "-stay" :: rest -> parse script name true faults crash_at rest
    | "-lint" :: rest ->
      (* Static-check the script before sourcing it (diagnostics go
         through tkerror/bgerror); the script still runs. *)
      lint := true;
      parse script name stay faults crash_at rest
    | "-no-compile-cache" :: rest ->
      (* Ablation switch: run everything through the reference
         character-at-a-time evaluator instead of the parse-once cache. *)
      no_cache := true;
      parse script name stay faults crash_at rest
    | "-no-vm" :: rest ->
      (* Ablation switch: keep the parse-once cache but interpret the
         compiled form directly instead of lowering it to bytecode. *)
      no_vm := true;
      parse script name stay faults crash_at rest
    | "-no-canvas-index" :: rest ->
      (* Ablation switch: canvases answer find/hit-test/exposure queries
         with linear scans instead of the spatial grid. *)
      Tk_widgets.Canvas.set_index_enabled false;
      parse script name stay faults crash_at rest
    | "-faults" :: n :: rest -> (
      match int_of_string_opt n with
      | Some every when every >= 0 -> parse script name stay every crash_at rest
      | Some _ | None ->
        Printf.eprintf "wish: -faults expects a non-negative integer\n";
        exit 2)
    | "-crash-at" :: n :: rest -> (
      match int_of_string_opt n with
      | Some at when at >= 0 -> parse script name stay faults at rest
      | Some _ | None ->
        Printf.eprintf "wish: -crash-at expects a non-negative integer\n";
        exit 2)
    | "-safe-send" :: rest ->
      safe_send := true;
      parse script name stay faults crash_at rest
    | "-limit-ms" :: n :: rest -> (
      match int_of_string_opt n with
      | Some ms when ms > 0 ->
        limit_ms := ms;
        parse script name stay faults crash_at rest
      | Some _ | None ->
        Printf.eprintf "wish: -limit-ms expects a positive integer\n";
        exit 2)
    | "-mailbox" :: n :: rest -> (
      match int_of_string_opt n with
      | Some limit when limit > 0 ->
        mailbox := limit;
        parse script name stay faults crash_at rest
      | Some _ | None ->
        Printf.eprintf "wish: -mailbox expects a positive integer\n";
        exit 2)
    | path :: rest when script = None && Sys.file_exists path ->
      parse (Some path) name stay faults crash_at rest
    | arg :: _ ->
      Printf.eprintf
        "usage: wish ?-f script? ?-name appName? ?-stay? ?-lint? \
         ?-faults n? ?-crash-at n? ?-mailbox n? ?-safe-send? \
         ?-limit-ms n? ?-no-compile-cache? ?-no-vm? ?-no-canvas-index?\n";
      Printf.eprintf "unknown argument: %s\n" arg;
      exit 2
  in
  let script, name, stay, faults, crash_at =
    parse None None false 0 0 (List.tl args)
  in
  let app_name =
    match (name, script) with
    | Some n, _ -> n
    | None, Some path -> Filename.remove_extension (Filename.basename path)
    | None, None -> "wish"
  in
  let server = Server.create () in
  (* Armed before the application exists, so even the main window and the
     send communication window are created under fire. *)
  if faults > 0 then Server.set_fault_plan server ~fail_every_nth:faults ();
  let app =
    Tk_widgets.Tk_widgets_lib.new_app ~app_class:"Wish" ~server ~name:app_name ()
  in
  (* The crash plan counts requests from connection time, so creating the
     application has already consumed some of the budget — just as a real
     client crashes wherever in its life request N happens to fall. *)
  if crash_at > 0 then Server.set_crash_plan app.Tk.Core.conn ~at_request:crash_at;
  if !mailbox > 0 then app.Tk.Core.send.Tk.Core.mailbox_limit <- !mailbox;
  if !safe_send then app.Tk.Core.send.Tk.Core.guard_mode <- Tk.Core.Guard_safe;
  if !limit_ms > 0 then begin
    app.Tk.Core.send.Tk.Core.guard_time_ms <- !limit_ms;
    if app.Tk.Core.send.Tk.Core.guard_mode = Tk.Core.Guard_off then
      app.Tk.Core.send.Tk.Core.guard_mode <- Tk.Core.Guard_limits
  end;
  if !no_cache then Tcl.Interp.set_compile_enabled app.Tk.Core.interp false;
  if !no_vm then Tcl.Interp.set_vm_enabled app.Tk.Core.interp false;
  Sim_commands.install app;
  (* Make the command line available as $argv / $argc, as wish does. *)
  Tcl.Interp.set_var app.Tk.Core.interp "argv" "";
  Tcl.Interp.set_var app.Tk.Core.interp "argc" "0";
  (try
     match script with
     | Some path ->
       run_script app ~lint:!lint path;
       if stay then Tk.Core.mainloop app
     | None -> interactive app
   with Tcl.Cmd_control.Exit_program code -> exit code)
