(* wish: the windowing shell (paper §5).

   Runs Tcl scripts against a Tk application on a simulated X display:

     wish -f script.tcl        run a script (as in Figure 9's "#!wish -f")
     wish                      interactive command loop on stdin

   Because the display is simulated, wish adds three commands beyond
   standard Tk so scripts can be driven and observed headlessly:

     screendump ?window?       print an ASCII rendering of the display
     inject motion X Y | button N | key KEYSYM | string TEXT
                               synthesize user input
     serverstats               print the connection's request counters
     faultstats                print injected/absorbed fault counters
     crashtest at N | kill APP | status
                               arm the crash plan / kill a peer / report

   Two observability commands are part of the standard command set (so
   they also work in embedded apps and tests, not just wish):

     xtrace on ?cap?|off|dump|clear|status
                               per-request wire trace (bounded ring)
     xstat ?reset|get NAME?    every counter the stack keeps, as a Tcl
                               list of name/value pairs

   The -faults N flag arms the server's fault-injection plan so every
   N-th request is rejected with an X protocol error — a robustness
   torture test for scripts and widgets (use faultstats to verify that
   every injected fault was absorbed).

   The -crash-at N flag arms the crash plan: the application's X
   connection dies abruptly (as if the client was killed) the moment its
   request counter reaches N. The interpreter survives — every
   subsequent X request degrades gracefully — so scripts can verify the
   failure story of a client outliving its display connection. *)

open Xsim

let install_sim_commands app =
  let interp = app.Tk.Core.interp in
  Tcl.Interp.register_value interp "screendump" (fun _ words ->
      match words with
      | [ _ ] -> Raster.render app.Tk.Core.server ()
      | [ _; path ] ->
        let w = Tk.Core.lookup_exn app path in
        Raster.render app.Tk.Core.server ~window:w.Tk.Core.win ()
      | _ -> Tcl.Interp.wrong_args "screendump ?window?");
  Tcl.Interp.register_value interp "inject" (fun _ words ->
      let server = app.Tk.Core.server in
      let int_arg s =
        match int_of_string_opt s with
        | Some i -> i
        | None -> Tcl.Interp.failf "expected integer but got \"%s\"" s
      in
      (match words with
      | [ _; "motion"; x; y ] ->
        Server.inject_motion server ~x:(int_arg x) ~y:(int_arg y)
      | [ _; "button"; n ] ->
        Server.inject_button server ~button:(int_arg n) ~pressed:true;
        Server.inject_button server ~button:(int_arg n) ~pressed:false
      | [ _; "press"; n ] ->
        Server.inject_button server ~button:(int_arg n) ~pressed:true
      | [ _; "release"; n ] ->
        Server.inject_button server ~button:(int_arg n) ~pressed:false
      | [ _; "key"; keysym ] ->
        Server.inject_key server ~keysym ~pressed:true;
        Server.inject_key server ~keysym ~pressed:false
      | [ _; "string"; text ] -> Server.inject_string server text
      | _ ->
        Tcl.Interp.wrong_args
          "inject motion x y | button n | key keysym | string text");
      Tk.Core.update app;
      "");
  Tcl.Interp.register_value interp "serverstats" (fun _ _ ->
      let s = Server.stats app.Tk.Core.conn in
      Printf.sprintf
        "requests %d round-trips %d resources %d windows %d draws %d \
         properties %d"
        s.Server.total_requests s.Server.round_trips s.Server.resource_allocs
        s.Server.window_requests s.Server.draw_requests
        s.Server.property_requests);
  Tcl.Interp.register_value interp "faultstats" (fun _ _ ->
      let server = app.Tk.Core.server in
      Printf.sprintf "injected %d absorbed %d fallbacks %d"
        (Server.faults_injected server)
        (Server.faults_absorbed server)
        (Tk.Rescache.fallbacks app.Tk.Core.cache));
  Tcl.Interp.register_value interp "crashtest" (fun _ words ->
      let int_arg s =
        match int_of_string_opt s with
        | Some i -> i
        | None -> Tcl.Interp.failf "expected integer but got \"%s\"" s
      in
      match words with
      | [ _; "at"; n ] ->
        Server.set_crash_plan app.Tk.Core.conn ~at_request:(int_arg n);
        ""
      | [ _; "kill"; name ] -> (
        (* Abruptly kill a peer application's connection — the driver for
           two-interpreter crash scenarios (the peer's interpreter lives
           on with a dead connection, exactly like a wish under
           -crash-at). Killing our own name is allowed: it crashes this
           application's connection in place. *)
        match
          List.find_opt
            (fun a -> a.Tk.Core.app_name = name)
            (Tk.Core.local_apps app.Tk.Core.server)
        with
        | Some peer ->
          Server.kill_connection peer.Tk.Core.conn;
          ""
        | None -> Tcl.Interp.failf "no application named \"%s\"" name)
      | [ _; "status" ] ->
        Printf.sprintf "alive %d crashed %d crash-at %d requests %d"
          (if Server.connection_alive app.Tk.Core.conn then 1 else 0)
          (if Server.connection_crashed app.Tk.Core.conn then 1 else 0)
          (Server.crash_plan app.Tk.Core.conn)
          (Server.stats app.Tk.Core.conn).Server.total_requests
      | _ -> Tcl.Interp.wrong_args "crashtest at n | kill app | status")

let run_script app path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg ->
    Printf.eprintf "wish: couldn't read %s: %s\n" path msg;
    exit 1
  | contents -> (
    match Tcl.Interp.eval app.Tk.Core.interp contents with
    | Tcl.Interp.Tcl_error, msg ->
      Printf.eprintf "wish: error in %s: %s\n" path msg;
      exit 1
    | _ -> Tk.Core.update app)

(* A command is complete when its braces, brackets and quotes balance
   (so multi-line procs can be typed at the prompt, as in real wish). *)
let command_complete script =
  let n = String.length script in
  let rec scan i depth in_quote =
    if i >= n then depth <= 0 && not in_quote
    else
      match script.[i] with
      | '\\' -> scan (i + 2) depth in_quote
      | '"' -> scan (i + 1) depth (not in_quote)
      | ('{' | '[') when not in_quote -> scan (i + 1) (depth + 1) in_quote
      | ('}' | ']') when not in_quote -> scan (i + 1) (depth - 1) in_quote
      | _ -> scan (i + 1) depth in_quote
  in
  scan 0 0 false

let interactive app =
  Tcl.Interp.set_history_recording app.Tk.Core.interp true;
  let rec loop pending =
    print_string (if pending = "" then "% " else "> ");
    flush stdout;
    match In_channel.input_line stdin with
    | None -> ()
    | Some line ->
      let script = if pending = "" then line else pending ^ "\n" ^ line in
      if not (command_complete script) then loop script
      else begin
        Tcl.Interp.record_history_event app.Tk.Core.interp script;
        (match Tcl.Interp.eval app.Tk.Core.interp script with
        | Tcl.Interp.Tcl_ok, "" -> ()
        | Tcl.Interp.Tcl_ok, v -> print_endline v
        | _, msg -> Printf.printf "error: %s\n" msg);
        Tk.Core.update app;
        if not app.Tk.Core.app_destroyed then loop ""
      end
  in
  loop ""

let () =
  let args = Array.to_list Sys.argv in
  let no_cache = ref false in
  let rec parse script name stay faults crash_at = function
    | [] -> (script, name, stay, faults, crash_at)
    | "-f" :: path :: rest -> parse (Some path) name stay faults crash_at rest
    | "-name" :: n :: rest -> parse script (Some n) stay faults crash_at rest
    | "-stay" :: rest -> parse script name true faults crash_at rest
    | "-no-compile-cache" :: rest ->
      (* Ablation switch: run everything through the reference
         character-at-a-time evaluator instead of the parse-once cache. *)
      no_cache := true;
      parse script name stay faults crash_at rest
    | "-faults" :: n :: rest -> (
      match int_of_string_opt n with
      | Some every when every >= 0 -> parse script name stay every crash_at rest
      | Some _ | None ->
        Printf.eprintf "wish: -faults expects a non-negative integer\n";
        exit 2)
    | "-crash-at" :: n :: rest -> (
      match int_of_string_opt n with
      | Some at when at >= 0 -> parse script name stay faults at rest
      | Some _ | None ->
        Printf.eprintf "wish: -crash-at expects a non-negative integer\n";
        exit 2)
    | path :: rest when script = None && Sys.file_exists path ->
      parse (Some path) name stay faults crash_at rest
    | arg :: _ ->
      Printf.eprintf
        "usage: wish ?-f script? ?-name appName? ?-stay? ?-faults n? \
         ?-crash-at n? ?-no-compile-cache?\n";
      Printf.eprintf "unknown argument: %s\n" arg;
      exit 2
  in
  let script, name, stay, faults, crash_at =
    parse None None false 0 0 (List.tl args)
  in
  let app_name =
    match (name, script) with
    | Some n, _ -> n
    | None, Some path -> Filename.remove_extension (Filename.basename path)
    | None, None -> "wish"
  in
  let server = Server.create () in
  (* Armed before the application exists, so even the main window and the
     send communication window are created under fire. *)
  if faults > 0 then Server.set_fault_plan server ~fail_every_nth:faults ();
  let app =
    Tk_widgets.Tk_widgets_lib.new_app ~app_class:"Wish" ~server ~name:app_name ()
  in
  (* The crash plan counts requests from connection time, so creating the
     application has already consumed some of the budget — just as a real
     client crashes wherever in its life request N happens to fall. *)
  if crash_at > 0 then Server.set_crash_plan app.Tk.Core.conn ~at_request:crash_at;
  if !no_cache then Tcl.Interp.set_compile_enabled app.Tk.Core.interp false;
  install_sim_commands app;
  (* Make the command line available as $argv / $argc, as wish does. *)
  Tcl.Interp.set_var app.Tk.Core.interp "argv" "";
  Tcl.Interp.set_var app.Tk.Core.interp "argc" "0";
  (try
     match script with
     | Some path ->
       run_script app path;
       if stay then Tk.Core.mainloop app
     | None -> interactive app
   with Tcl.Cmd_control.Exit_program code -> exit code)
