(* tclcheck: a whole-program static analyzer for Tcl/Tk scripts.

     tclcheck ?-Werror? ?-q? ?-safe? ?--json? ?--github? file-or-dir ...

   Each argument is a .tcl file (or a directory, checked recursively for
   *.tcl files).  All gathered files are analyzed as ONE program — procs
   defined in one file resolve calls in another, the call graph spans
   everything, and whole-program-only diagnostics (procedures defined
   but never called, guaranteed infinite recursion) are enabled.

   Output formats:
     default   file:line:col: severity: message
     --json    one JSON array of {file,line,col,pass,severity,message}
     --github  GitHub Actions workflow annotations
               (::error file=...,line=...,col=...::message)

   -safe additionally reports every reachable invocation of a command
   the -safe interpreter profile hides, directly or via [interp alias].

   Exit status: 0 when clean, 1 when any diagnostic was reported (with
   -Werror, warnings count; without it, only errors), 2 for usage or
   I/O problems.

   The analyzer never executes the scripts: it builds a full Tk
   application (widgets, Tk intrinsics, wish's simulation commands) only
   to populate the command-signature registry the lint passes read. *)

let usage () =
  prerr_endline
    "usage: tclcheck ?-Werror? ?-q? ?-safe? ?--json? ?--github? file-or-dir \
     ?file-or-dir ...?";
  exit 2

let rec gather path =
  match Sys.is_directory path with
  | exception Sys_error msg ->
    Printf.eprintf "tclcheck: %s\n" msg;
    exit 2
  | false -> [ path ]
  | true -> (
    match Sys.readdir path with
    | exception Sys_error msg ->
      Printf.eprintf "tclcheck: %s\n" msg;
      exit 2
    | entries ->
      Array.sort String.compare entries;
      Array.fold_left
        (fun acc entry ->
          let full = Filename.concat path entry in
          if Sys.is_directory full then acc @ gather full
          else if Filename.check_suffix entry ".tcl" then acc @ [ full ]
          else acc)
        [] entries)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_diag file (d : Tcl.Lint.diag) =
  Printf.sprintf
    "{\"file\":\"%s\",\"line\":%d,\"col\":%d,\"pass\":\"%s\",\"severity\":\"%s\",\"message\":\"%s\"}"
    (json_escape file) d.Tcl.Lint.line d.Tcl.Lint.col
    (json_escape d.Tcl.Lint.pass)
    (Tcl.Lint.severity_name d.Tcl.Lint.severity)
    (json_escape d.Tcl.Lint.message)

(* GitHub Actions annotation commands: newlines in the message must be
   URL-encoded, as must %, to survive the workflow-command parser. *)
let github_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '%' -> Buffer.add_string buf "%25"
      | '\n' -> Buffer.add_string buf "%0A"
      | '\r' -> Buffer.add_string buf "%0D"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let github_diag file (d : Tcl.Lint.diag) =
  Printf.sprintf "::%s file=%s,line=%d,col=%d::[%s] %s"
    (match d.Tcl.Lint.severity with
    | Tcl.Lint.Error -> "error"
    | Tcl.Lint.Warning -> "warning")
    (github_escape file) d.Tcl.Lint.line d.Tcl.Lint.col d.Tcl.Lint.pass
    (github_escape d.Tcl.Lint.message)

type format = Plain | Json | Github

let () =
  let werror = ref false in
  let quiet = ref false in
  let safe = ref false in
  let format = ref Plain in
  let paths = ref [] in
  List.iter
    (fun arg ->
      match arg with
      | "-Werror" -> werror := true
      | "-q" -> quiet := true
      | "-safe" | "--safe" -> safe := true
      | "--json" -> format := Json
      | "--github" -> format := Github
      | "-help" | "--help" -> usage ()
      | _ when String.length arg > 0 && arg.[0] = '-' ->
        Printf.eprintf "tclcheck: unknown flag %s\n" arg;
        usage ()
      | path -> paths := !paths @ [ path ])
    (List.tl (Array.to_list Sys.argv));
  if !paths = [] then usage ();
  let files = List.concat_map gather !paths in
  if files = [] then begin
    Printf.eprintf "tclcheck: no .tcl files found\n";
    exit 2
  end;
  (* A throwaway application purely for its signature registry. *)
  let server = Xsim.Server.create () in
  let app =
    Tk_widgets.Tk_widgets_lib.new_app ~app_class:"Tclcheck" ~server
      ~name:"tclcheck" ()
  in
  Sim_commands.install app;
  let sources =
    List.map
      (fun file ->
        match In_channel.with_open_text file In_channel.input_all with
        | exception Sys_error msg ->
          Printf.eprintf "tclcheck: %s\n" msg;
          exit 2
        | src -> (Some file, src))
      files
  in
  let out =
    Tcl.Lint.analyze_program ~safe:!safe ~whole:true app.Tk.Core.interp
      sources
  in
  let diags =
    List.map
      (fun (file, d) ->
        ((match file with Some f -> f | None -> "<stdin>"), d))
      out.Tcl.Lint.o_diags
  in
  let errors = ref 0 and warnings = ref 0 in
  List.iter
    (fun (_, d) ->
      match d.Tcl.Lint.severity with
      | Tcl.Lint.Error -> incr errors
      | Tcl.Lint.Warning -> incr warnings)
    diags;
  (match !format with
  | Json ->
    (* The JSON report always prints, even under -q: it exists to be
       parsed, and an empty array is a meaningful result. *)
    print_string "[";
    List.iteri
      (fun i (file, d) ->
        if i > 0 then print_string ",";
        print_string "\n  ";
        print_string (json_diag file d))
      diags;
    if diags <> [] then print_newline ();
    print_endline "]"
  | Github ->
    if not !quiet then
      List.iter (fun (file, d) -> print_endline (github_diag file d)) diags
  | Plain ->
    if not !quiet then
      List.iter
        (fun (file, d) -> print_endline (Tcl.Lint.format_diag ~file d))
        diags);
  if !errors + !warnings > 0 && not !quiet then
    Printf.eprintf "tclcheck: %d error(s), %d warning(s) in %d file(s)\n"
      !errors !warnings (List.length files);
  if !errors > 0 || (!werror && !warnings > 0) then exit 1
