(* tclcheck: a static analyzer for Tcl/Tk scripts.

     tclcheck ?-Werror? ?-q? file-or-directory ...

   Each argument is a .tcl file (or a directory, checked recursively for
   *.tcl files). Diagnostics print as "file:line:col: severity: message".
   Exit status: 0 when every file is clean, 1 when any diagnostic was
   reported (with -Werror, warnings count; without it, only errors), 2
   for usage or I/O problems.

   The analyzer never executes the scripts: it builds a full Tk
   application (widgets, Tk intrinsics, wish's simulation commands) only
   to populate the command-signature registry the lint passes read. *)

let usage () =
  prerr_endline "usage: tclcheck ?-Werror? ?-q? file-or-dir ?file-or-dir ...?";
  exit 2

let rec gather path =
  match Sys.is_directory path with
  | exception Sys_error msg ->
    Printf.eprintf "tclcheck: %s\n" msg;
    exit 2
  | false -> [ path ]
  | true -> (
    match Sys.readdir path with
    | exception Sys_error msg ->
      Printf.eprintf "tclcheck: %s\n" msg;
      exit 2
    | entries ->
      Array.sort String.compare entries;
      Array.fold_left
        (fun acc entry ->
          let full = Filename.concat path entry in
          if Sys.is_directory full then acc @ gather full
          else if Filename.check_suffix entry ".tcl" then acc @ [ full ]
          else acc)
        [] entries)

let () =
  let werror = ref false in
  let quiet = ref false in
  let paths = ref [] in
  List.iter
    (fun arg ->
      match arg with
      | "-Werror" -> werror := true
      | "-q" -> quiet := true
      | "-help" | "--help" -> usage ()
      | _ when String.length arg > 0 && arg.[0] = '-' ->
        Printf.eprintf "tclcheck: unknown flag %s\n" arg;
        usage ()
      | path -> paths := !paths @ [ path ])
    (List.tl (Array.to_list Sys.argv));
  if !paths = [] then usage ();
  let files = List.concat_map gather !paths in
  if files = [] then begin
    Printf.eprintf "tclcheck: no .tcl files found\n";
    exit 2
  end;
  (* A throwaway application purely for its signature registry. *)
  let server = Xsim.Server.create () in
  let app =
    Tk_widgets.Tk_widgets_lib.new_app ~app_class:"Tclcheck" ~server
      ~name:"tclcheck" ()
  in
  Sim_commands.install app;
  let errors = ref 0 and warnings = ref 0 in
  List.iter
    (fun file ->
      match In_channel.with_open_text file In_channel.input_all with
      | exception Sys_error msg ->
        Printf.eprintf "tclcheck: %s\n" msg;
        exit 2
      | src ->
        let diags = Tcl.Lint.analyze app.Tk.Core.interp src in
        List.iter
          (fun d ->
            (match d.Tcl.Lint.severity with
            | Tcl.Lint.Error -> incr errors
            | Tcl.Lint.Warning -> incr warnings);
            if not !quiet then
              print_endline (Tcl.Lint.format_diag ~file d))
          diags)
    files;
  if !errors + !warnings > 0 && not !quiet then
    Printf.eprintf "tclcheck: %d error(s), %d warning(s) in %d file(s)\n"
      !errors !warnings (List.length files);
  if !errors > 0 || (!werror && !warnings > 0) then exit 1
