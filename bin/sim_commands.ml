(* Simulation-only commands shared by wish and tclcheck: both binaries
   register the same names (wish with real implementations so scripts can
   be driven headlessly, tclcheck only needs the signatures), so a script
   that runs under wish also lints clean under tclcheck. *)

open Xsim

let install app =
  let interp = app.Tk.Core.interp in
  Tcl.Interp.register_value interp "screendump" (fun _ words ->
      match words with
      | [ _ ] -> Raster.render app.Tk.Core.server ()
      | [ _; path ] ->
        let w = Tk.Core.lookup_exn app path in
        Raster.render app.Tk.Core.server ~window:w.Tk.Core.win ()
      | _ -> Tcl.Interp.wrong_args "screendump ?window?");
  Tcl.Interp.register_value interp "inject" (fun _ words ->
      let server = app.Tk.Core.server in
      let int_arg s =
        match int_of_string_opt s with
        | Some i -> i
        | None -> Tcl.Interp.failf "expected integer but got \"%s\"" s
      in
      (match words with
      | [ _; "motion"; x; y ] ->
        Server.inject_motion server ~x:(int_arg x) ~y:(int_arg y)
      | [ _; "button"; n ] ->
        Server.inject_button server ~button:(int_arg n) ~pressed:true;
        Server.inject_button server ~button:(int_arg n) ~pressed:false
      | [ _; "press"; n ] ->
        Server.inject_button server ~button:(int_arg n) ~pressed:true
      | [ _; "release"; n ] ->
        Server.inject_button server ~button:(int_arg n) ~pressed:false
      | [ _; "key"; keysym ] ->
        Server.inject_key server ~keysym ~pressed:true;
        Server.inject_key server ~keysym ~pressed:false
      | [ _; "string"; text ] -> Server.inject_string server text
      | _ ->
        Tcl.Interp.wrong_args
          "inject motion x y | button n | key keysym | string text");
      Tk.Core.update app;
      "");
  Tcl.Interp.register_value interp "serverstats" (fun _ _ ->
      let s = Server.stats app.Tk.Core.conn in
      Printf.sprintf
        "requests %d round-trips %d resources %d windows %d draws %d \
         properties %d"
        s.Server.total_requests s.Server.round_trips s.Server.resource_allocs
        s.Server.window_requests s.Server.draw_requests
        s.Server.property_requests);
  Tcl.Interp.register_value interp "faultstats" (fun _ _ ->
      let server = app.Tk.Core.server in
      Printf.sprintf "injected %d absorbed %d fallbacks %d"
        (Server.faults_injected server)
        (Server.faults_absorbed server)
        (Tk.Rescache.fallbacks app.Tk.Core.cache));
  Tcl.Interp.register_value interp "crashtest" (fun _ words ->
      let int_arg s =
        match int_of_string_opt s with
        | Some i -> i
        | None -> Tcl.Interp.failf "expected integer but got \"%s\"" s
      in
      match words with
      | [ _; "at"; n ] ->
        Server.set_crash_plan app.Tk.Core.conn ~at_request:(int_arg n);
        ""
      | [ _; "kill"; name ] -> (
        (* Abruptly kill a peer application's connection — the driver for
           two-interpreter crash scenarios (the peer's interpreter lives
           on with a dead connection, exactly like a wish under
           -crash-at). Killing our own name is allowed: it crashes this
           application's connection in place. *)
        match
          List.find_opt
            (fun a -> a.Tk.Core.app_name = name)
            (Tk.Core.local_apps app.Tk.Core.server)
        with
        | Some peer ->
          Server.kill_connection peer.Tk.Core.conn;
          ""
        | None -> Tcl.Interp.failf "no application named \"%s\"" name)
      | [ _; "status" ] ->
        Printf.sprintf "alive %d crashed %d crash-at %d requests %d"
          (if Server.connection_alive app.Tk.Core.conn then 1 else 0)
          (if Server.connection_crashed app.Tk.Core.conn then 1 else 0)
          (Server.crash_plan app.Tk.Core.conn)
          (Server.stats app.Tk.Core.conn).Server.total_requests
      | _ -> Tcl.Interp.wrong_args "crashtest at n | kill app | status");
  List.iter
    (Tcl.Interp.register_signature interp)
    Tcl.Interp.
      [
        signature "screendump" 0 ~max:1 ~usage:"screendump ?window?";
        signature "inject" 2 ~max:3
          ~usage:"inject motion x y | button n | key keysym | string text";
        signature "serverstats" 0 ~max:0 ~usage:"serverstats";
        signature "faultstats" 0 ~max:0 ~usage:"faultstats";
        signature "crashtest" 1 ~max:2
          ~usage:"crashtest at n | kill app | status"
          ~subs:
            [
              subsig "at" 1 ~max:1;
              subsig "kill" 1 ~max:1;
              subsig "status" 0 ~max:0;
            ];
      ]
