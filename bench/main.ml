(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§7), plus ablations for the design choices in DESIGN.md.

     dune exec bench/main.exe

   Sections:
     Table I   — source lines (and compiled bytes) of Tk vs Xt/Motif
     Table II  — execution times for selected operations
     Figure 8  — the packer's geometry-management example
     Sweeps    — widget instantiation, send throughput
     Ablations — resource cache, structure cache, binding dispatch,
                 option database *)

open Bechamel
open Toolkit
open Xsim

(* ------------------------------------------------------------------ *)
(* Measurement helper: nanoseconds per run via bechamel's OLS. *)

let measure_ns ?(quota = 0.5) name f =
  let test = Test.make ~name (Staged.stage f) in
  let cfg =
    Benchmark.cfg ~limit:3000 ~quota:(Time.second quota) ~kde:None ()
  in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] test in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun _ v acc ->
      match Analyze.OLS.estimates v with Some (e :: _) -> e | _ -> acc)
    results Float.nan

let time_wall f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

(* Best-of-N wall time: the ablation workloads run in a few tens of
   milliseconds, where a single sample is dominated by scheduler noise;
   the minimum over a handful of repetitions is the stable estimator. *)
let time_min ?(reps = 5) f =
  let best = ref infinity in
  for _ = 1 to reps do
    let dt = time_wall f in
    if dt < !best then best := dt
  done;
  !best

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let run_tcl app script =
  match Tcl.Interp.eval_value app.Tk.Core.interp script with
  | Ok v -> v
  | Error msg -> failwith (Printf.sprintf "bench script %S failed: %s" script msg)

let new_display_app name =
  let server = Server.create () in
  (server, Tk_widgets.Tk_widgets_lib.new_app ~server ~name ())

(* ------------------------------------------------------------------ *)
(* Table I: code size comparison *)

(* Paper numbers (source lines / DS3100 object bytes). *)
type size_row = {
  label : string;
  spec : string; (* our sources: a directory or comma-joined files *)
  obj_dir : string option; (* where our compiled objects live *)
  xt_lines : int option;
  tk_lines : int option;
  xt_bytes : int option;
  tk_bytes : int option;
}

let size_rows =
  [
    {
      label = "Intrinsics";
      spec =
        String.concat ","
          (List.concat_map
             (fun m -> [ "lib/core/" ^ m ^ ".ml"; "lib/core/" ^ m ^ ".mli" ])
             [
               "core"; "path"; "dispatch"; "bindpattern"; "rescache";
               "optiondb"; "selection"; "sendcmd"; "tkcmd"; "place"; "main";
             ]);
      obj_dir = Some "lib/core";
      xt_lines = Some 24900;
      tk_lines = Some 15100;
      xt_bytes = Some 216400;
      tk_bytes = Some 92800;
    };
    {
      label = "Tcl";
      spec = "lib/tcl";
      obj_dir = Some "lib/tcl";
      xt_lines = None;
      tk_lines = Some 9300;
      xt_bytes = None;
      tk_bytes = Some 61100;
    };
    {
      label = "Geometry Manager";
      spec = "lib/core/pack.ml,lib/core/pack.mli";
      obj_dir = None;
      xt_lines = Some 2100;
      tk_lines = Some 1000;
      xt_bytes = Some 17100;
      tk_bytes = Some 7400;
    };
    {
      label = "Buttons";
      spec = "lib/widgets/button.ml,lib/widgets/button.mli";
      obj_dir = None;
      xt_lines = Some 6300;
      tk_lines = Some 1000;
      xt_bytes = Some 43700;
      tk_bytes = Some 8600;
    };
    {
      label = "Scrollbar";
      spec = "lib/widgets/scrollbar.ml,lib/widgets/scrollbar.mli";
      obj_dir = None;
      xt_lines = Some 3000;
      tk_lines = Some 1200;
      xt_bytes = Some 24900;
      tk_bytes = Some 8000;
    };
    {
      label = "Listbox";
      spec = "lib/widgets/listbox.ml,lib/widgets/listbox.mli";
      obj_dir = None;
      xt_lines = Some 6400;
      tk_lines = Some 1600;
      xt_bytes = Some 53100;
      tk_bytes = Some 10700;
    };
  ]

let opt_str = function Some n -> string_of_int n | None -> "-"

let table1 () =
  section "Table I: source size, Xt/Motif vs Tk (paper) vs this repo";
  match Loc_count.find_repo_root () with
  | None -> print_endline "  (cannot locate repository root; skipped)"
  | Some root ->
    Printf.printf "%-18s %10s %10s %12s %14s\n" "" "Xt/Motif" "Tk (paper)"
      "ours (OCaml)" "ours (bytes)";
    let totals = ref (0, 0, 0) in
    List.iter
      (fun row ->
        let files = Loc_count.module_files ~root row.spec in
        let ours = Loc_count.count_lines files in
        let bytes =
          match row.obj_dir with
          | Some dir -> Loc_count.compiled_bytes ~root dir
          | None -> None
        in
        let xt, tk, o = !totals in
        totals :=
          ( xt + Option.value row.xt_lines ~default:0,
            tk + Option.value row.tk_lines ~default:0,
            o + ours );
        Printf.printf "%-18s %10s %10s %12d %14s\n" row.label
          (opt_str row.xt_lines) (opt_str row.tk_lines) ours
          (match bytes with Some b -> string_of_int b | None -> "-"))
      size_rows;
    let xt, tk, ours = !totals in
    Printf.printf "%-18s %10d %10d %12d\n" "Total" xt tk ours;
    Printf.printf
      "\n\
      \  Paper's claim: Tk+Tcl is ~0.68x the size of Xt/Motif (%d/%d = %.2f).\n"
      tk xt
      (float_of_int tk /. float_of_int xt);
    Printf.printf
      "  This repo:     whole reimplementation is %d lines, %.2fx the paper's \
       Tk\n"
      ours
      (float_of_int ours /. float_of_int tk);
    Printf.printf
      "  Widget ratios (Xt/Motif lines / ours): buttons %.1fx, scrollbar \
       %.1fx, listbox %.1fx\n"
      (6300.0 /. float_of_int (Loc_count.count_lines (Loc_count.module_files ~root "lib/widgets/button.ml,lib/widgets/button.mli")))
      (3000.0 /. float_of_int (Loc_count.count_lines (Loc_count.module_files ~root "lib/widgets/scrollbar.ml,lib/widgets/scrollbar.mli")))
      (6400.0 /. float_of_int (Loc_count.count_lines (Loc_count.module_files ~root "lib/widgets/listbox.ml,lib/widgets/listbox.mli")))

(* ------------------------------------------------------------------ *)
(* Table II: execution times *)

let bench_set_a_1 ?quota () =
  let tcl = Tcl.Builtins.new_interp () in
  measure_ns ?quota "set a 1" (fun () -> ignore (Tcl.Interp.eval tcl "set a 1"))

let bench_send_empty ?quota () =
  let server = Server.create () in
  let alpha = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"alpha" () in
  let _beta = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"beta" () in
  let ns =
    measure_ns ?quota "send empty command" (fun () ->
        ignore (run_tcl alpha "send beta {}"))
  in
  (* Simulated protocol cost: requests for one send. *)
  Server.reset_stats alpha.Tk.Core.conn;
  ignore (run_tcl alpha "send beta {}");
  let stats = Server.stats alpha.Tk.Core.conn in
  (ns, stats.Server.total_requests, stats.Server.round_trips)

(* Interp isolation costs (PR7): slave lifecycle, an alias round trip
   through the master, and the guard-gate ablation — "set a 1" with no
   limits armed vs with a command budget and a ticking limit clock
   armed.  The disarmed gate is a single flag test per command; the
   armed path (budget decrement + clock read) is what guarded sends
   pay.  Acceptance: armed overhead on set_a_1 within a few percent. *)

type interp_bench = {
  ib_create_delete_ns : float;
  ib_alias_ns : float;
  ib_guard_off_ns : float;
  ib_guard_on_ns : float;
}

let bench_interp ?quota () =
  let master = Tcl.Builtins.new_interp () in
  let n = ref 0 in
  let ib_create_delete_ns =
    measure_ns ?quota "interp create+delete" (fun () ->
        incr n;
        let name = Printf.sprintf "s%d" !n in
        ignore (Tcl.Interp.eval master ("interp create " ^ name));
        ignore (Tcl.Interp.eval master ("interp delete " ^ name)))
  in
  ignore (Tcl.Interp.eval master "interp create worker");
  ignore (Tcl.Interp.eval master "proc relay {x} {return $x}");
  ignore (Tcl.Interp.eval master "interp alias worker ping {} relay pong");
  let ib_alias_ns =
    measure_ns ?quota "alias round trip" (fun () ->
        ignore (Tcl.Interp.eval master "interp eval worker ping"))
  in
  (* Ablation: identical workload, guard disarmed vs armed.  The armed
     interp gets a practically-infinite command budget and a counter
     clock, so nothing ever trips — this measures the checks alone.
     A throwaway measurement first, so neither side pays the warm-up,
     and a floor on the quota: at the smoke quota the two ~500ns
     numbers are pure noise and the overhead ratio is meaningless. *)
  let abl_quota = Some (Float.max 0.3 (Option.value quota ~default:0.5)) in
  let warmup = Tcl.Builtins.new_interp () in
  ignore
    (measure_ns ?quota:abl_quota "warmup" (fun () ->
         ignore (Tcl.Interp.eval warmup "set a 1")));
  let plain = Tcl.Builtins.new_interp () in
  let ib_guard_off_ns =
    measure_ns ?quota:abl_quota "set a 1 (guard off)" (fun () ->
        ignore (Tcl.Interp.eval plain "set a 1"))
  in
  let armed = Tcl.Builtins.new_interp () in
  let ticks = ref 0 in
  Tcl.Interp.set_limit_clock armed
    (Some
       (fun () ->
         incr ticks;
         !ticks));
  Tcl.Interp.set_command_limit armed max_int;
  Tcl.Interp.set_time_limit armed (max_int / 2);
  let ib_guard_on_ns =
    measure_ns ?quota:abl_quota "set a 1 (guard armed)" (fun () ->
        ignore (Tcl.Interp.eval armed "set a 1"))
  in
  { ib_create_delete_ns; ib_alias_ns; ib_guard_off_ns; ib_guard_on_ns }

let interp_section () =
  section "Interp isolation: slave costs and the guard-gate ablation";
  let b = bench_interp () in
  Printf.printf "%-32s %9.2f us\n" "interp create+delete"
    (b.ib_create_delete_ns /. 1e3);
  Printf.printf "%-32s %9.2f us\n" "alias round trip (slave->master)"
    (b.ib_alias_ns /. 1e3);
  Printf.printf "%-32s %9.2f us\n" "set a 1, guard disarmed"
    (b.ib_guard_off_ns /. 1e3);
  Printf.printf "%-32s %9.2f us\n" "set a 1, limits armed"
    (b.ib_guard_on_ns /. 1e3);
  Printf.printf "  armed-guard overhead: %+.1f%%\n"
    ((b.ib_guard_on_ns /. Float.max 1e-9 b.ib_guard_off_ns -. 1.0) *. 100.0)

let create_destroy_buttons app n =
  let buf = Buffer.create 256 in
  for i = 0 to n - 1 do
    Buffer.add_string buf
      (Printf.sprintf "button .b%d -text {Button %d}\n" i i);
    Buffer.add_string buf (Printf.sprintf "pack append . .b%d {top}\n" i)
  done;
  ignore (run_tcl app (Buffer.contents buf));
  Tk.Core.update app;
  let buf = Buffer.create 256 in
  for i = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "destroy .b%d\n" i)
  done;
  ignore (run_tcl app (Buffer.contents buf));
  Tk.Core.update app

let bench_50_buttons ?(quota = 1.0) () =
  let _server, app = new_display_app "buttons" in
  let ns =
    measure_ns ~quota "create/display/delete 50 buttons" (fun () ->
        create_destroy_buttons app 50)
  in
  Server.reset_stats app.Tk.Core.conn;
  create_destroy_buttons app 50;
  let stats = Server.stats app.Tk.Core.conn in
  (ns, stats.Server.total_requests)

let table2 () =
  section "Table II: execution times for selected operations";
  Printf.printf "%-38s %14s %14s %s\n" "Operation" "paper (DS3100)" "ours"
    "simulated server traffic";
  let set_ns = bench_set_a_1 () in
  Printf.printf "%-38s %14s %11.2f us %s\n" "Simple Tcl command (set a 1)"
    "68 us" (set_ns /. 1e3) "none";
  let send_ns, send_reqs, send_rts = bench_send_empty () in
  Printf.printf "%-38s %14s %11.2f us %s\n" "Send empty command" "15 ms"
    (send_ns /. 1e3)
    (Printf.sprintf "%d requests (%d round trips)" send_reqs send_rts);
  let btn_ns, btn_reqs = bench_50_buttons () in
  Printf.printf "%-38s %14s %11.2f ms %s\n"
    "Create, display, delete 50 buttons" "440 ms" (btn_ns /. 1e6)
    (Printf.sprintf "%d requests" btn_reqs);
  print_newline ();
  Printf.printf
    "  Shape check: set-a-1 is the cheapest by far; send costs ~%.0fx a \
     local command\n"
    (send_ns /. set_ns);
  Printf.printf
    "  (the paper's ratio was 15ms/68us = ~220x), and 50 widgets cost \
     ~%.0fx one send.\n"
    (btn_ns /. send_ns)

(* Deeper Tcl microbenchmarks backing §7's "fast enough to execute many
   hundreds of Tcl commands within a human response time". *)
let tcl_micro () =
  section "Tcl microbenchmarks (\"hundreds of commands per response time\", §7)";
  let tcl = Tcl.Builtins.new_interp () in
  ignore (Tcl.Interp.eval tcl "proc nop {} {}");
  ignore (Tcl.Interp.eval tcl "proc add3 {a b c} {expr {$a + $b + $c}}");
  ignore (Tcl.Interp.eval tcl "set biglist {}; for {set i 0} {$i < 100} {incr i} {lappend biglist item$i}");
  let cases =
    [
      ("set a 1", "set a 1");
      ("variable substitution", "set b $a");
      ("proc call (no args)", "nop");
      ("proc call (3 args + expr)", "add3 1 2 3");
      ("braced expr", "expr {3 * 4 + 5}");
      ("if with braced condition", "if {$a == 1} {nop}");
      ("foreach over 10 items", "foreach i {1 2 3 4 5 6 7 8 9 10} {}");
      ("lindex into 100 items", "lindex $biglist 50");
      ("lsort 100 items", "lsort $biglist");
      ("string match", "string match *item* xxitemxx");
      ("regexp literal", "regexp item50 $biglist");
      ("format", "format %s=%d x 42");
    ]
  in
  Printf.printf "%-32s %12s\n" "command" "per run";
  List.iter
    (fun (label, script) ->
      let ns =
        measure_ns ~quota:0.25 label (fun () ->
            ignore (Tcl.Interp.eval tcl script))
      in
      Printf.printf "%-32s %9.2f us\n" label (ns /. 1e3))
    cases;
  let per_cmd =
    measure_ns ~quota:0.25 "response-window" (fun () ->
        ignore (Tcl.Interp.eval tcl "set a 1"))
  in
  Printf.printf
    "\n  Commands executable in a 100 ms human response window: ~%.0f\n"
    (100e6 /. per_cmd)

(* ------------------------------------------------------------------ *)
(* Figure 8: geometry management *)

let figure8 () =
  section "Figure 8: packer arranging four windows in a column";
  let _server, app = new_display_app "fig8" in
  (* Requested sizes (a), parent size (b) as in the figure's proportions. *)
  ignore (run_tcl app "frame .a -width 40 -height 30 -background gray50");
  ignore (run_tcl app "frame .b -width 60 -height 30 -background gray75");
  ignore (run_tcl app "frame .c -width 120 -height 30 -background gray50");
  ignore (run_tcl app "frame .d -width 50 -height 60 -background gray75");
  ignore (run_tcl app "pack append . .a {top} .b {top} .c {top} .d {top}");
  let main = Tk.Core.main_widget app in
  Tk.Core.move_resize main ~x:main.Tk.Core.x ~y:main.Tk.Core.y ~width:100
    ~height:120;
  Tk.Pack.arrange main;
  Tk.Core.update app;
  Printf.printf "%-8s %-16s %-16s %s\n" "window" "requested" "granted" "note";
  List.iter
    (fun path ->
      let w = Tk.Core.lookup_exn app path in
      let note =
        if w.Tk.Core.width < w.Tk.Core.req_width then "lost width"
        else if w.Tk.Core.height < w.Tk.Core.req_height then "lost height"
        else "as requested"
      in
      Printf.printf "%-8s %-16s %-16s %s\n" path
        (Printf.sprintf "%dx%d" w.Tk.Core.req_width w.Tk.Core.req_height)
        (Printf.sprintf "%dx%d+%d+%d" w.Tk.Core.width w.Tk.Core.height
           w.Tk.Core.x w.Tk.Core.y)
        note)
    [ ".a"; ".b"; ".c"; ".d" ];
  print_newline ();
  print_endline "Rendered layout (compare Figure 8(c)):";
  print_string (Raster.render app.Tk.Core.server ~window:main.Tk.Core.win ())

(* ------------------------------------------------------------------ *)
(* Sweeps (§7 narrative) *)

let widget_sweep () =
  section "Sweep: widget instantiation (\"many tens of widgets\", §7)";
  Printf.printf "%8s %16s %16s\n" "widgets" "total" "per widget";
  List.iter
    (fun n ->
      let _server, app = new_display_app (Printf.sprintf "sweep%d" n) in
      (* Warm the caches once, then time several runs. *)
      create_destroy_buttons app n;
      let runs = 5 in
      let dt =
        time_wall (fun () ->
            for _ = 1 to runs do
              create_destroy_buttons app n
            done)
      in
      let per = dt /. float_of_int runs in
      Printf.printf "%8d %13.2f ms %13.1f us\n" n (per *. 1000.0)
        (per *. 1e6 /. float_of_int n))
    [ 10; 25; 50; 100; 200 ]

let send_sweep () =
  section "Sweep: send throughput (paint-through-send scenario, §7)";
  let server = Server.create () in
  let alpha = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"alpha" () in
  let _beta = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"beta" () in
  ignore (run_tcl alpha "send beta {set warm 1}");
  let n = 2000 in
  let dt =
    time_wall (fun () ->
        for i = 1 to n do
          ignore (run_tcl alpha (Printf.sprintf "send beta {set x %d}" i))
        done)
  in
  Printf.printf "  %d sends in %.1f ms: %.1f us per send (%.0f sends/s)\n" n
    (dt *. 1000.0)
    (dt *. 1e6 /. float_of_int n)
    (float_of_int n /. dt);
  print_endline
    "  At the paper's 15 ms/send, mouse-motion painting was just feasible;";
  Printf.printf "  this implementation relays a motion event in ~%.0f us.\n"
    (dt *. 1e6 /. float_of_int n)

(* ------------------------------------------------------------------ *)
(* The send-fabric crash storm: drive the deterministic harness at fleet
   scale (1000 apps, 1% crash plan, 1% hung) twice and verify the two
   runs produce identical counters — the reproducibility claim — then
   report the outcome taxonomy and virtual-clock latency percentiles. *)

let storm_config ~smoke =
  if smoke then Tk.Sendstorm.default
  else
    {
      Tk.Sendstorm.default with
      Tk.Sendstorm.apps = 1000;
      crash_percent = 1;
      hang_percent = 1;
      sends_per_app = 3;
      mailbox_limit = 16;
      timeout_ms = 200;
      seed = 42;
    }

let storm_runs ~smoke =
  let cfg = storm_config ~smoke in
  let wall = ref 0.0 in
  let r1 = ref None in
  wall := time_wall (fun () -> r1 := Some (Tk.Sendstorm.run cfg));
  let r1 = Option.get !r1 in
  let r2 = Tk.Sendstorm.run cfg in
  if not (Tk.Sendstorm.counters_equal r1 r2) then
    failwith "send storm: two identical configs diverged (non-deterministic)";
  (r1, !wall)

let send_storm_section () =
  section "Send fabric: 1000-app crash storm (deterministic, virtual clock)";
  let r, wall = storm_runs ~smoke:false in
  let cfg = r.Tk.Sendstorm.cfg in
  Printf.printf
    "  %d apps, %d%% crash plan, %d%% hung, mailbox %d, %d ms deadline\n"
    cfg.Tk.Sendstorm.apps cfg.Tk.Sendstorm.crash_percent
    cfg.Tk.Sendstorm.hang_percent cfg.Tk.Sendstorm.mailbox_limit
    cfg.Tk.Sendstorm.timeout_ms;
  Printf.printf "  %d sends resolved in %.2f s wall (two runs identical)\n"
    r.Tk.Sendstorm.sends_issued wall;
  Printf.printf "  outcomes:";
  List.iter
    (fun (state, n) -> Printf.printf " %s=%d" state n)
    r.Tk.Sendstorm.outcomes;
  print_newline ();
  Printf.printf
    "  crashes landed %d/%d, hung %d, unresolved futures %d\n"
    r.Tk.Sendstorm.crashes_landed r.Tk.Sendstorm.crashes_planned
    r.Tk.Sendstorm.hung r.Tk.Sendstorm.unresolved_futures;
  Printf.printf
    "  %.1f X requests per send; awaited-send latency p50 %.0f ms, p99 %.0f \
     ms, max %.0f ms (virtual)\n"
    r.Tk.Sendstorm.requests_per_send
    (Tk.Sendstorm.percentile r.Tk.Sendstorm.latencies_ms 50.0)
    (Tk.Sendstorm.percentile r.Tk.Sendstorm.latencies_ms 99.0)
    (Tk.Sendstorm.percentile r.Tk.Sendstorm.latencies_ms 100.0)

(* ------------------------------------------------------------------ *)
(* Ablations *)

let rescache_ablation_case enabled =
  let _server, app = new_display_app "cache" in
  Tk.Rescache.set_enabled app.Tk.Core.cache enabled;
  Server.reset_stats app.Tk.Core.conn;
  (* 40 widgets sharing 2 colors and 1 font: the paper's "few resources
     used in many widgets" case. *)
  for i = 0 to 39 do
    ignore
      (run_tcl app
         (Printf.sprintf
            "button .b%d -text b%d -foreground black -background gray75" i i))
  done;
  Tk.Core.update app;
  (Server.stats app.Tk.Core.conn).Server.resource_allocs

let rescache_ablation () =
  section "Ablation: resource cache on/off (§3.3)";
  let on = rescache_ablation_case true in
  let off = rescache_ablation_case false in
  Printf.printf
    "  resource-allocation requests for 40 buttons: cache on = %d, cache off \
     = %d (%.0fx saved)\n"
    on off
    (float_of_int off /. float_of_int (max 1 on))

let structcache_ablation () =
  section "Ablation: structure cache vs server round trips (§3.3)";
  let _server, app = new_display_app "struct" in
  ignore (run_tcl app "frame .f -width 80 -height 40");
  ignore (run_tcl app "pack append . .f {top}");
  Tk.Core.update app;
  let n = 10_000 in
  Server.reset_stats app.Tk.Core.conn;
  let cached =
    time_wall (fun () ->
        for _ = 1 to n do
          ignore (run_tcl app "winfo width .f")
        done)
  in
  let cached_rts = (Server.stats app.Tk.Core.conn).Server.round_trips in
  let w = Tk.Core.lookup_exn app ".f" in
  Server.reset_stats app.Tk.Core.conn;
  let direct =
    time_wall (fun () ->
        for _ = 1 to n do
          ignore (Server.query_geometry app.Tk.Core.conn w.Tk.Core.win)
        done)
  in
  let direct_rts = (Server.stats app.Tk.Core.conn).Server.round_trips in
  Printf.printf
    "  %d geometry queries: cached %.2f us/query (%d round trips), direct \
     %.2f us/query (%d round trips)\n"
    n
    (cached *. 1e6 /. float_of_int n)
    cached_rts
    (direct *. 1e6 /. float_of_int n)
    direct_rts;
  print_endline
    "  (in real X each round trip costs a network RTT; the cache removes \
     all of them)"

let binding_ablation () =
  section "Ablation: binding dispatch cost vs number of bindings";
  Printf.printf "%10s %18s\n" "bindings" "per keystroke";
  List.iter
    (fun k ->
      let server, app = new_display_app (Printf.sprintf "bind%d" k) in
      ignore (run_tcl app "frame .f -width 60 -height 40");
      ignore (run_tcl app "pack append . .f {top}");
      Tk.Core.update app;
      for i = 1 to k - 1 do
        (* Distinct keysym details, none of which match 'z'. *)
        ignore
          (run_tcl app
             (Printf.sprintf "bind .f <Control-F%d> {set x %d}" i i))
      done;
      ignore (run_tcl app "bind .f z {set hit 1}");
      let w = Tk.Core.lookup_exn app ".f" in
      let win = Option.get (Server.lookup_window server w.Tk.Core.win) in
      let p = Window.root_position win in
      Server.inject_motion server ~x:(p.Geom.x + 5) ~y:(p.Geom.y + 5);
      Tk.Core.update app;
      let n = 2000 in
      let dt =
        time_wall (fun () ->
            for _ = 1 to n do
              Server.inject_key server ~keysym:"z" ~pressed:true;
              Tk.Core.update app
            done)
      in
      Printf.printf "%10d %15.2f us\n" k (dt *. 1e6 /. float_of_int n))
    [ 1; 10; 50; 100 ]

(* ------------------------------------------------------------------ *)
(* Ablation: the parse-once compile caches (script + expr). Three hot
   shapes where the same script text is evaluated over and over — a
   recursive proc, a tight while loop, and event-binding dispatch — run
   with the caches on and off. The parse_passes counter shows how many
   full scans of script text each mode performed. *)

let compile_stat_int tcl key =
  match List.assoc_opt key (Tcl.Interp.compile_stats tcl) with
  | Some v -> int_of_string v
  | None -> 0

(* [compile] toggles the parse-once layer, [vm] the bytecode VM lowered
   on top of it (the VM only runs when the compile layer is on). *)
let bench_fib ~n ~compile ~vm () =
  let tcl = Tcl.Builtins.new_interp () in
  Tcl.Interp.set_compile_enabled tcl compile;
  Tcl.Interp.set_vm_enabled tcl vm;
  ignore
    (Tcl.Interp.eval tcl
       "proc fib {n} {\n\
       \  if {$n < 2} {return $n}\n\
       \  expr {[fib [expr {$n - 1}]] + [fib [expr {$n - 2}]]}\n\
        }");
  let call = Printf.sprintf "fib %d" n in
  (match Tcl.Interp.eval tcl call with
  | Tcl.Interp.Tcl_ok, _ -> ()
  | _, msg -> failwith ("fib bench failed: " ^ msg));
  Tcl.Interp.reset_compile_stats tcl;
  let dt = time_min (fun () -> ignore (Tcl.Interp.eval tcl call)) in
  (dt, compile_stat_int tcl "parse_passes", Tcl.Interp.vm_stats tcl)

let bench_while_10k ~compile ~vm () =
  let tcl = Tcl.Builtins.new_interp () in
  Tcl.Interp.set_compile_enabled tcl compile;
  Tcl.Interp.set_vm_enabled tcl vm;
  let script =
    "set total 0\n\
     set i 0\n\
     while {$i < 10000} {\n\
    \  incr total $i\n\
    \  incr i\n\
     }\n\
     set total"
  in
  ignore (Tcl.Interp.eval tcl script);
  Tcl.Interp.reset_compile_stats tcl;
  let dt =
    time_min (fun () ->
        match Tcl.Interp.eval tcl script with
        | Tcl.Interp.Tcl_ok, "49995000" -> ()
        | _, v -> failwith ("while bench wrong result: " ^ v))
  in
  (dt, compile_stat_int tcl "parse_passes", Tcl.Interp.vm_stats tcl)

(* A grid of buttons, each with a key binding; the pointer parks over one
   and a storm of keystrokes dispatches the same binding script. *)
let bench_binding_storm ~events ~compile ~vm () =
  let server, app =
    new_display_app
      (Printf.sprintf "storm-%s-%s"
         (if compile then "c1" else "c0")
         (if vm then "v1" else "v0"))
  in
  Tcl.Interp.set_compile_enabled app.Tk.Core.interp compile;
  Tcl.Interp.set_vm_enabled app.Tk.Core.interp vm;
  let buf = Buffer.create 512 in
  for i = 0 to 11 do
    Buffer.add_string buf (Printf.sprintf "button .b%d -text b%d\n" i i);
    Buffer.add_string buf (Printf.sprintf "pack append . .b%d {top}\n" i);
    Buffer.add_string buf (Printf.sprintf "bind .b%d z {incr hits}\n" i)
  done;
  ignore (run_tcl app (Buffer.contents buf));
  ignore (run_tcl app "set hits 0");
  Tk.Core.update app;
  let w = Tk.Core.lookup_exn app ".b5" in
  let win = Option.get (Server.lookup_window server w.Tk.Core.win) in
  let p = Window.root_position win in
  Server.inject_motion server ~x:(p.Geom.x + 2) ~y:(p.Geom.y + 2);
  Tk.Core.update app;
  Server.inject_key server ~keysym:"z" ~pressed:true;
  Tk.Core.update app;
  Tk.Core.reset_metrics app;
  let dt =
    time_wall (fun () ->
        for _ = 1 to events do
          Server.inject_key server ~keysym:"z" ~pressed:true;
          Tk.Core.update app
        done)
  in
  let m key =
    match Tk.Core.metric app ("tcl.compile." ^ key) with
    | Some v -> int_of_string v
    | None -> 0
  in
  let hits = m "script_hits" and misses = m "script_misses" in
  let hit_rate = float_of_int hits /. float_of_int (max 1 (hits + misses)) in
  (dt, m "parse_passes", hit_rate)

type script_case = {
  sc_name : string;
  sc_on_s : float;
  sc_off_s : float;
  sc_on_passes : int;
  sc_off_passes : int;
  sc_hit_rate : float option; (* binding storm only *)
}

let collect_script_cases ~smoke =
  let fib_n = if smoke then 14 else 17 in
  let events = if smoke then 300 else 3000 in
  (* The compile-cache ablation proper: VM off on both sides so the
     numbers isolate parse-once from bytecode execution. *)
  let fib_on, fib_on_p, _ = bench_fib ~n:fib_n ~compile:true ~vm:false () in
  let fib_off, fib_off_p, _ =
    bench_fib ~n:fib_n ~compile:false ~vm:false ()
  in
  let wh_on, wh_on_p, _ = bench_while_10k ~compile:true ~vm:false () in
  let wh_off, wh_off_p, _ = bench_while_10k ~compile:false ~vm:false () in
  let st_on, st_on_p, st_rate =
    bench_binding_storm ~events ~compile:true ~vm:false ()
  in
  let st_off, st_off_p, _ =
    bench_binding_storm ~events ~compile:false ~vm:false ()
  in
  [
    {
      sc_name = Printf.sprintf "fib %d (recursive proc)" fib_n;
      sc_on_s = fib_on;
      sc_off_s = fib_off;
      sc_on_passes = fib_on_p;
      sc_off_passes = fib_off_p;
      sc_hit_rate = None;
    };
    {
      sc_name = "while 10k accumulate";
      sc_on_s = wh_on;
      sc_off_s = wh_off;
      sc_on_passes = wh_on_p;
      sc_off_passes = wh_off_p;
      sc_hit_rate = None;
    };
    {
      sc_name = Printf.sprintf "binding storm (%d keys)" events;
      sc_on_s = st_on;
      sc_off_s = st_off;
      sc_on_passes = st_on_p;
      sc_off_passes = st_off_p;
      sc_hit_rate = Some st_rate;
    };
  ]

(* ------------------------------------------------------------------ *)
(* Ablation: the bytecode VM (PR8). Both sides run with the compile
   layer on; the off side is exactly what `wish -no-vm` gives. The fib
   and while workloads are the register-allocation / jump-threading
   showcases; the binding storm exercises inline-cached global sets on
   the event-dispatch path. *)

type vm_case = {
  vm_name : string;
  vm_on_s : float;
  vm_off_s : float;
  vm_counters : (string * string) list; (* tcl.vm.* from the on run *)
}

let collect_vm_cases ~smoke =
  let fib_n = if smoke then 14 else 20 in
  let events = if smoke then 300 else 3000 in
  let fib_on, _, fib_stats = bench_fib ~n:fib_n ~compile:true ~vm:true () in
  let fib_off, _, _ = bench_fib ~n:fib_n ~compile:true ~vm:false () in
  let wh_on, _, wh_stats = bench_while_10k ~compile:true ~vm:true () in
  let wh_off, _, _ = bench_while_10k ~compile:true ~vm:false () in
  let st_on, _, _ = bench_binding_storm ~events ~compile:true ~vm:true () in
  let st_off, _, _ = bench_binding_storm ~events ~compile:true ~vm:false () in
  [
    {
      vm_name = Printf.sprintf "fib %d (recursive proc)" fib_n;
      vm_on_s = fib_on;
      vm_off_s = fib_off;
      vm_counters = fib_stats;
    };
    {
      vm_name = "while 10k accumulate";
      vm_on_s = wh_on;
      vm_off_s = wh_off;
      vm_counters = wh_stats;
    };
    {
      vm_name = Printf.sprintf "binding storm (%d keys)" events;
      vm_on_s = st_on;
      vm_off_s = st_off;
      vm_counters = [];
    };
  ]

let vm_ablation () =
  section "Ablation: bytecode VM on vs off (compile layer on for both)";
  Printf.printf "%-28s %12s %12s %9s  %s\n" "workload" "vm on" "vm off"
    "speedup" "tcl.vm.* (on run)";
  List.iter
    (fun c ->
      Printf.printf "%-28s %9.2f ms %9.2f ms %8.1fx  %s\n" c.vm_name
        (c.vm_on_s *. 1000.0) (c.vm_off_s *. 1000.0)
        (c.vm_off_s /. Float.max 1e-9 c.vm_on_s)
        (String.concat " "
           (List.filter_map
              (fun (k, v) ->
                match k with
                | "compiled" | "deopts" | "slot_hits" ->
                  Some (Printf.sprintf "%s=%s" k v)
                | _ -> None)
              c.vm_counters)))
    (collect_vm_cases ~smoke:false)

let scripts_ablation () =
  section "Ablation: parse-once script/expr caches on vs off";
  Printf.printf "%-28s %12s %12s %9s %11s %11s\n" "workload" "cache on"
    "cache off" "speedup" "passes on" "passes off";
  List.iter
    (fun c ->
      Printf.printf "%-28s %9.2f ms %9.2f ms %8.1fx %11d %11d%s\n" c.sc_name
        (c.sc_on_s *. 1000.0) (c.sc_off_s *. 1000.0)
        (c.sc_off_s /. Float.max 1e-9 c.sc_on_s)
        c.sc_on_passes c.sc_off_passes
        (match c.sc_hit_rate with
        | Some r -> Printf.sprintf "  (hit rate %.1f%%)" (r *. 100.0)
        | None -> ""))
    (collect_script_cases ~smoke:false)

let optiondb_ablation () =
  section "Ablation: option database lookup vs database size (§3.5)";
  Printf.printf "%10s %18s\n" "entries" "per lookup";
  List.iter
    (fun n ->
      let db = Tk.Optiondb.create () in
      for i = 0 to n - 1 do
        Tk.Optiondb.add db
          ~pattern:(Printf.sprintf "*widget%d.background" i)
          "red"
      done;
      Tk.Optiondb.add db ~pattern:"*Button.background" "blue";
      let chain = [ ("app", "Tk"); ("b", "Button") ] in
      let lookups = 5000 in
      let dt =
        time_wall (fun () ->
            for _ = 1 to lookups do
              ignore
                (Tk.Optiondb.get db ~name_chain:chain ~name:"background"
                   ~cls:"Background")
            done)
      in
      Printf.printf "%10d %15.2f us\n" n (dt *. 1e6 /. float_of_int lookups))
    [ 10; 100; 1000 ]

(* ------------------------------------------------------------------ *)
(* Whole-program analyzer throughput (PR 10): lines/sec, procedures and
   call-graph edges over examples/ and a synthetic proc-heavy corpus,
   plus the VM kind-seed ablation — the analyzer's formal-kind facts
   prime argument reps at bind time so a canonical proc's first
   execution skips string shimmering. *)

type lint_row = {
  li_name : string;
  li_files : int;
  li_lines : int;
  li_procs : int;
  li_edges : int;
  li_diags : int;
  li_wall_s : float;
}

(* cwd is the workspace root under [dune exec], _build/default under
   direct execution. *)
let examples_dir () =
  if Sys.file_exists "examples" then Some "examples"
  else if Sys.file_exists "../examples" then Some "../examples"
  else None

let lint_sources () =
  match examples_dir () with
  | None -> []
  | Some dir ->
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun e -> Filename.check_suffix e ".tcl")
    |> List.sort String.compare
    |> List.map (fun e ->
           let f = Filename.concat dir e in
           (Some f, In_channel.with_open_text f In_channel.input_all))

let synthetic_corpus n =
  let buf = Buffer.create (n * 160) in
  for i = 0 to n - 1 do
    Buffer.add_string buf
      (Printf.sprintf
         "proc helper%d {a b} {\n\
         \  set t [expr $a + $b]\n\
         \  if {$t > 100} {return $t}\n\
         \  return [expr $t * 2]\n\
          }\n"
         i)
  done;
  for i = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "helper%d %d %d\n" i i (i + 1))
  done;
  Buffer.contents buf

let count_lines s =
  String.fold_left (fun acc c -> if c = '\n' then acc + 1 else acc) 1 s

let lint_case name files =
  let _server, app = new_display_app ("lint_" ^ name) in
  (* The examples run under wish, where the simulation commands exist;
     mirror that environment so the sweep stays diagnostic-free. *)
  List.iter
    (fun cmd ->
      Tcl.Interp.register_value app.Tk.Core.interp cmd (fun _ _ -> ""))
    [ "screendump"; "inject"; "serverstats"; "faultstats"; "crashtest" ];
  let lines = List.fold_left (fun acc (_, s) -> acc + count_lines s) 0 files in
  let out =
    ref (Tcl.Lint.analyze_program ~whole:true app.Tk.Core.interp files)
  in
  let wall =
    time_min ~reps:3 (fun () ->
        out := Tcl.Lint.analyze_program ~whole:true app.Tk.Core.interp files)
  in
  {
    li_name = name;
    li_files = List.length files;
    li_lines = lines;
    li_procs = !out.Tcl.Lint.o_procs;
    li_edges = !out.Tcl.Lint.o_edges;
    li_diags = List.length !out.Tcl.Lint.o_diags;
    li_wall_s = wall;
  }

let collect_lint_cases ~smoke =
  let ex = match lint_sources () with [] -> [] | files -> [ ("examples", files) ] in
  let n = if smoke then 50 else 400 in
  let cases =
    ex
    @ [ (Printf.sprintf "synthetic_%d_procs" n, [ (None, synthetic_corpus n) ]) ]
  in
  List.map (fun (name, files) -> lint_case name files) cases

(* The kind-seed ablation: fib's first execution with and without the
   analyzer's n:int fact installed.  Seeding happens before the lazy
   lowering, so the seeded/primed counters accumulate during the run. *)
let lint_seed_case seeded =
  let _server, app =
    new_display_app (if seeded then "seed_on" else "seed_off")
  in
  let src =
    "proc fib {n} {\n\
     \  if {$n < 2} {return $n}\n\
     \  return [expr [fib [expr $n - 1]] + [fib [expr $n - 2]]]\n\
     }"
  in
  ignore (run_tcl app src);
  if seeded then begin
    let out =
      Tcl.Lint.analyze_program ~whole:true app.Tk.Core.interp
        [ (None, src ^ "\nfib 20") ]
    in
    List.iter
      (fun (name, facts) ->
        Tcl.Interp.seed_proc_kinds app.Tk.Core.interp name facts)
      out.Tcl.Lint.o_facts
  end;
  Tcl.Interp.reset_vm_stats app.Tk.Core.interp;
  let wall = time_wall (fun () -> ignore (run_tcl app "fib 22")) in
  (wall, Tcl.Interp.vm_stats app.Tk.Core.interp)

let vm_stat k stats = try List.assoc k stats with Not_found -> "0"

let lint_section ~smoke =
  section "Whole-program analysis (tclcheck engine): throughput";
  Printf.printf "%-24s %6s %7s %7s %8s %7s %10s %12s\n" "corpus" "files"
    "lines" "procs" "edges" "diags" "wall ms" "lines/sec";
  List.iter
    (fun r ->
      Printf.printf "%-24s %6d %7d %7d %8d %7d %10.2f %12.0f\n" r.li_name
        r.li_files r.li_lines r.li_procs r.li_edges r.li_diags
        (r.li_wall_s *. 1000.0)
        (float_of_int r.li_lines /. Float.max 1e-9 r.li_wall_s))
    (collect_lint_cases ~smoke);
  let w_off, _ = lint_seed_case false in
  let w_on, s_on = lint_seed_case true in
  Printf.printf
    "\n\
     VM kind-seed ablation (first run of fib 22): unseeded %.2f ms, seeded \
     %.2f ms (procs seeded %s, reps primed %s)\n"
    (w_off *. 1000.0) (w_on *. 1000.0)
    (vm_stat "seeded" s_on)
    (vm_stat "seed_primed" s_on)

(* ------------------------------------------------------------------ *)
(* Canvas at scale: per-item cost of create / move-one / move-tag /
   find-overlapping / full redraw as the item count sweeps 1k → 100k,
   with the spatial index ablated (-no-canvas-index path) for contrast.
   The claim is that the move-one and find columns stay roughly flat under
   the grid index while the ablation shows the linear cliff; "considered"
   is how many items the damaged repaint sweep actually touched. *)

type canvas_row = {
  cv_n : int;
  cv_indexed : bool;
  cv_create_us : float; (* per item, batch-coalesced damage *)
  cv_move_one_us : float; (* one move + its damage sweep *)
  cv_move_tag_us : float; (* per member of a clustered 100-item tag, + sweep *)
  cv_find_us : float; (* find overlapping, small query rect *)
  cv_full_redraw_ms : float; (* schedule_redraw + sweep, whole store *)
  cv_considered : int; (* items considered per damaged sweep *)
}

let canvas_case ~indexed n =
  (* Isolate from whatever heap the surrounding sections accumulated: the
     per-item numbers here are minor-GC-sensitive, and a few hundred MB of
     dead storm/app state inflates them several-fold. *)
  Gc.compact ();
  let _server, app =
    new_display_app (Printf.sprintf "cv%d%c" n (if indexed then 'i' else 'l'))
  in
  (* The ablation switch is sampled when the canvas widget is created. *)
  Tk_widgets.Canvas.set_index_enabled indexed;
  ignore (run_tcl app "canvas .c -width 300 -height 200");
  Tk_widgets.Canvas.set_index_enabled true;
  ignore (run_tcl app "pack append . .c {top}");
  Tk.Core.update app;
  let metric name =
    match Tk.Core.metric app name with Some v -> int_of_string v | None -> 0
  in
  (* n small rectangles hashed over a plane that grows with sqrt(n), so
     item density (and thus grid-cell occupancy) is constant across the
     sweep — the per-query cost should then be flat under the index. *)
  let side = max 400 (int_of_float (sqrt (float_of_int n) *. 24.0)) in
  let create_s =
    time_wall (fun () ->
        for i = 0 to n - 1 do
          let x = i * 2654435761 land 0x3FFFFFFF mod side
          and y = (i * 1327217885) land 0x3FFFFFFF mod side in
          ignore
            (run_tcl app
               (Printf.sprintf ".c create rectangle %d %d %d %d" x y (x + 6)
                  (y + 4)))
        done)
  in
  (* A spatially clustered "hot" tag — the dashboard shape: a burst of
     points in one region updating each frame while the rest sit still. *)
  for i = 0 to 99 do
    ignore
      (run_tcl app
         (Printf.sprintf ".c create rectangle %d %d %d %d -tags hot"
            (10 + (i mod 10 * 9))
            (10 + (i / 10 * 9))
            (14 + (i mod 10 * 9))
            (13 + (i / 10 * 9))))
  done;
  Tk.Core.update app;
  let hot =
    List.length
      (List.filter
         (fun s -> s <> "")
         (String.split_on_char ' ' (run_tcl app ".c find withtag hot")))
  in
  let reps = if n >= 100_000 then 100 else 200 in
  let considered0 = metric "tk.canvas.items_considered" in
  let sweeps0 =
    metric "tk.canvas.damage_redraws" + metric "tk.canvas.full_redraws"
  in
  let move_one_s =
    time_wall (fun () ->
        for _ = 1 to reps do
          ignore (run_tcl app ".c move 1 1 1");
          Tk.Core.update app
        done)
  in
  let sweeps =
    metric "tk.canvas.damage_redraws" + metric "tk.canvas.full_redraws"
    - sweeps0
  in
  let considered =
    (metric "tk.canvas.items_considered" - considered0) / max 1 sweeps
  in
  let tag_reps = 20 in
  let move_tag_s =
    time_wall (fun () ->
        for _ = 1 to tag_reps do
          ignore (run_tcl app ".c move hot 1 1");
          Tk.Core.update app
        done)
  in
  let find_reps = reps in
  let find_s =
    time_wall (fun () ->
        for _ = 1 to find_reps do
          ignore (run_tcl app ".c find overlapping 500 500 540 540")
        done)
  in
  let full_s =
    time_min ~reps:3 (fun () ->
        Tk.Core.schedule_redraw (Tk.Core.lookup_exn app ".c");
        Tk.Core.update app)
  in
  {
    cv_n = n;
    cv_indexed = indexed;
    cv_create_us = create_s *. 1e6 /. float_of_int n;
    cv_move_one_us = move_one_s *. 1e6 /. float_of_int reps;
    cv_move_tag_us = move_tag_s *. 1e6 /. float_of_int (tag_reps * max 1 hot);
    cv_find_us = find_s *. 1e6 /. float_of_int find_reps;
    cv_full_redraw_ms = full_s *. 1e3;
    cv_considered = considered;
  }

let collect_canvas_cases ~smoke =
  let ns = if smoke then [ 1000 ] else [ 1000; 10_000; 100_000 ] in
  List.concat_map
    (fun n -> [ canvas_case ~indexed:true n; canvas_case ~indexed:false n ])
    ns

let canvas_sweep () =
  section "Canvas at scale: grid index + damage-region redraw";
  Printf.printf "%8s %6s %11s %11s %13s %11s %13s %11s\n" "items" "index"
    "create/it" "move-one" "move-tag/it" "find-over" "full redraw" "considered";
  List.iter
    (fun r ->
      Printf.printf
        "%8d %6s %9.2fus %9.2fus %11.2fus %9.2fus %11.2fms %11d\n" r.cv_n
        (if r.cv_indexed then "on" else "off")
        r.cv_create_us r.cv_move_one_us r.cv_move_tag_us r.cv_find_us
        r.cv_full_redraw_ms r.cv_considered)
    (collect_canvas_cases ~smoke:false)

(* ------------------------------------------------------------------ *)
(* JSON emission (--json FILE): the Table II numbers, the paper-style
   traffic budgets, cache hit rates and the full metrics registry, in a
   machine-readable file that seeds the repo's perf trajectory
   (BENCH_pr3.json). --smoke shrinks measurement quotas for CI. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

type json =
  | J_int of int
  | J_float of float
  | J_string of string
  | J_list of json list
  | J_obj of (string * json) list

let rec json_render buf indent = function
  | J_int i -> Buffer.add_string buf (string_of_int i)
  | J_float f ->
    (* A failed OLS estimate is nan; JSON has no nan, so emit null. *)
    if not (Float.is_finite f) then Buffer.add_string buf "null"
    else Buffer.add_string buf (Printf.sprintf "%.3f" f)
  | J_string s -> Buffer.add_string buf (Printf.sprintf "\"%s\"" (json_escape s))
  | J_list items ->
    Buffer.add_string buf "[";
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_string buf ", ";
        json_render buf indent item)
      items;
    Buffer.add_string buf "]"
  | J_obj fields ->
    let pad = String.make indent ' ' in
    Buffer.add_string buf "{\n";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ",\n";
        Buffer.add_string buf
          (Printf.sprintf "%s  \"%s\": " pad (json_escape k));
        json_render buf (indent + 2) v)
      fields;
    Buffer.add_string buf (Printf.sprintf "\n%s}" pad)

(* Counter values from Core.metrics_snapshot are decimal strings (the
   sweep latencies are decimal floats); re-type them for JSON. *)
let json_of_counter v =
  match int_of_string_opt v with
  | Some i -> J_int i
  | None -> (
    match float_of_string_opt v with Some f -> J_float f | None -> J_string v)

(* The paper-style traffic budget: requests to create-and-display the
   first button vs a second identical one (GC/resource cache, §3.3),
   measured under tracing so the trace depth is exercised too. *)
let button_traffic_budget () =
  let _server, app = new_display_app "budget" in
  let conn = app.Tk.Core.conn in
  Server.set_tracing conn true;
  let create i =
    Tk.Core.reset_metrics app;
    ignore (run_tcl app (Printf.sprintf "button .b%d -text {Button %d}" i i));
    ignore (run_tcl app (Printf.sprintf "pack append . .b%d {top}" i));
    Tk.Core.update app;
    (Server.stats conn).Server.total_requests
  in
  let first = create 1 in
  let second = create 2 in
  let snapshot = Tk.Core.metrics_snapshot app in
  (first, second, Server.trace_length conn, snapshot)

let cache_hit_rate_workload () =
  let _server, app = new_display_app "hitrate" in
  Tk.Rescache.reset_counters app.Tk.Core.cache;
  create_destroy_buttons app 40;
  let hits = Tk.Rescache.hits app.Tk.Core.cache in
  let misses = Tk.Rescache.misses app.Tk.Core.cache in
  (hits, misses)

let storm_json ~smoke =
  let r, wall = storm_runs ~smoke in
  let cfg = r.Tk.Sendstorm.cfg in
  J_obj
    [
      ( "config",
        J_obj
          [
            ("apps", J_int cfg.Tk.Sendstorm.apps);
            ("crash_percent", J_int cfg.Tk.Sendstorm.crash_percent);
            ("hang_percent", J_int cfg.Tk.Sendstorm.hang_percent);
            ("sends_per_app", J_int cfg.Tk.Sendstorm.sends_per_app);
            ("mailbox_limit", J_int cfg.Tk.Sendstorm.mailbox_limit);
            ("timeout_ms", J_int cfg.Tk.Sendstorm.timeout_ms);
            ("seed", J_int cfg.Tk.Sendstorm.seed);
          ] );
      ("deterministic", J_string "true");
      ("wall_s", J_float wall);
      ("sends_issued", J_int r.Tk.Sendstorm.sends_issued);
      ( "outcomes",
        J_obj
          (List.map (fun (s, n) -> (s, J_int n)) r.Tk.Sendstorm.outcomes) );
      ("crashes_planned", J_int r.Tk.Sendstorm.crashes_planned);
      ("crashes_landed", J_int r.Tk.Sendstorm.crashes_landed);
      ("hung", J_int r.Tk.Sendstorm.hung);
      ("unresolved_futures", J_int r.Tk.Sendstorm.unresolved_futures);
      ("requests_total", J_int r.Tk.Sendstorm.requests_total);
      ("requests_per_send", J_float r.Tk.Sendstorm.requests_per_send);
      ( "latency_ms_p50",
        J_float (Tk.Sendstorm.percentile r.Tk.Sendstorm.latencies_ms 50.0) );
      ( "latency_ms_p99",
        J_float (Tk.Sendstorm.percentile r.Tk.Sendstorm.latencies_ms 99.0) );
      ( "latency_ms_max",
        J_float (Tk.Sendstorm.percentile r.Tk.Sendstorm.latencies_ms 100.0) );
      ( "counters",
        J_obj (List.map (fun (k, v) -> (k, J_int v)) r.Tk.Sendstorm.counters)
      );
    ]

let emit_json ~path ~smoke =
  let quota = if smoke then Some 0.05 else None in
  (* Collected first, on a pristine heap: the canvas numbers are per-item
     microcosts whose GC component must not be billed for the hundreds of
     MB the storm and script sections allocate.  (Also note OCaml
     evaluates the record literal below right-to-left — an inline call
     down there would run dead last.) *)
  let canvas_cases = collect_canvas_cases ~smoke in
  let set_ns = bench_set_a_1 ?quota () in
  let send_ns, send_reqs, send_rts = bench_send_empty ?quota () in
  let btn_ns, btn_reqs =
    bench_50_buttons ~quota:(if smoke then 0.1 else 1.0) ()
  in
  let first_reqs, second_reqs, trace_records, snapshot =
    button_traffic_budget ()
  in
  let hits, misses = cache_hit_rate_workload () in
  let abl_on = rescache_ablation_case true in
  let abl_off = rescache_ablation_case false in
  let ib = bench_interp ?quota () in
  let lint_cases = collect_lint_cases ~smoke in
  let seed_off_wall, _ = lint_seed_case false in
  let seed_on_wall, seed_on_stats = lint_seed_case true in
  let scripts =
    List.map
      (fun c ->
        J_obj
          ([
             ("workload", J_string c.sc_name);
             ("cache_on_ms", J_float (c.sc_on_s *. 1000.0));
             ("cache_off_ms", J_float (c.sc_off_s *. 1000.0));
             ("speedup", J_float (c.sc_off_s /. Float.max 1e-9 c.sc_on_s));
             ("parse_passes_cache_on", J_int c.sc_on_passes);
             ("parse_passes_cache_off", J_int c.sc_off_passes);
           ]
          @
          match c.sc_hit_rate with
          | Some r -> [ ("compile_cache_hit_rate", J_float r) ]
          | None -> []))
      (collect_script_cases ~smoke)
  in
  let vm_cases =
    List.map
      (fun c ->
        J_obj
          ([
             ("workload", J_string c.vm_name);
             ("vm_on_ms", J_float (c.vm_on_s *. 1000.0));
             ("vm_off_ms", J_float (c.vm_off_s *. 1000.0));
             ("speedup", J_float (c.vm_off_s /. Float.max 1e-9 c.vm_on_s));
           ]
          @ List.filter_map
              (fun (k, v) ->
                match k with
                | "compiled" | "deopts" | "slot_hits" ->
                  Some ("vm_" ^ k, json_of_counter v)
                | _ -> None)
              c.vm_counters))
      (collect_vm_cases ~smoke)
  in
  let sweep =
    List.map
      (fun n ->
        let _server, app = new_display_app (Printf.sprintf "sweep%d" n) in
        create_destroy_buttons app n;
        let runs = if smoke then 2 else 5 in
        let dt =
          time_wall (fun () ->
              for _ = 1 to runs do
                create_destroy_buttons app n
              done)
        in
        let per_widget_us = dt /. float_of_int runs *. 1e6 /. float_of_int n in
        J_obj [ ("widgets", J_int n); ("us_per_widget", J_float per_widget_us) ])
      (if smoke then [ 10; 25 ] else [ 10; 25; 50; 100 ])
  in
  let doc =
    J_obj
      [
        ("benchmark", J_string "tk-repro");
        ("pr", J_int 10);
        ("mode", J_string (if smoke then "smoke" else "full"));
        ( "table2",
          J_obj
            [
              ( "set_a_1",
                J_obj
                  [ ("ns_per_op", J_float set_ns); ("paper_us", J_int 68) ] );
              ( "send_empty",
                J_obj
                  [
                    ("ns_per_op", J_float send_ns);
                    ("requests", J_int send_reqs);
                    ("round_trips", J_int send_rts);
                    ("paper_ms", J_int 15);
                  ] );
              ( "create_destroy_50_buttons",
                J_obj
                  [
                    ("ns_per_op", J_float btn_ns);
                    ("requests", J_int btn_reqs);
                    ("paper_ms", J_int 440);
                  ] );
            ] );
        ( "traffic_budget",
          J_obj
            [
              ("first_button_requests", J_int first_reqs);
              ("second_button_requests", J_int second_reqs);
              ("trace_records", J_int trace_records);
            ] );
        ( "rescache",
          J_obj
            [
              ("hits", J_int hits);
              ("misses", J_int misses);
              ( "hit_rate",
                J_float (float_of_int hits /. float_of_int (max 1 (hits + misses)))
              );
              ("ablation_allocs_cache_on", J_int abl_on);
              ("ablation_allocs_cache_off", J_int abl_off);
            ] );
        ( "interp",
          J_obj
            [
              ("create_delete_ns", J_float ib.ib_create_delete_ns);
              ("alias_roundtrip_ns", J_float ib.ib_alias_ns);
              ("set_a_1_guard_off_ns", J_float ib.ib_guard_off_ns);
              ("set_a_1_guard_on_ns", J_float ib.ib_guard_on_ns);
              ( "guard_overhead_pct",
                J_float
                  ((ib.ib_guard_on_ns
                    /. Float.max 1e-9 ib.ib_guard_off_ns
                   -. 1.0)
                  *. 100.0) );
            ] );
        ("widget_sweep", J_list sweep);
        ( "canvas",
          J_list
            (List.map
               (fun r ->
                 J_obj
                   [
                     ("items", J_int r.cv_n);
                     ("index", J_string (if r.cv_indexed then "on" else "off"));
                     ("create_us_per_item", J_float r.cv_create_us);
                     ("move_one_us", J_float r.cv_move_one_us);
                     ("move_tag_us_per_member", J_float r.cv_move_tag_us);
                     ("find_overlapping_us", J_float r.cv_find_us);
                     ("full_redraw_ms", J_float r.cv_full_redraw_ms);
                     ("damaged_sweep_items_considered", J_int r.cv_considered);
                   ])
               canvas_cases) );
        ("scripts", J_list scripts);
        ("vm", J_list vm_cases);
        ( "lint",
          J_obj
            [
              ( "corpora",
                J_list
                  (List.map
                     (fun r ->
                       J_obj
                         [
                           ("corpus", J_string r.li_name);
                           ("files", J_int r.li_files);
                           ("lines", J_int r.li_lines);
                           ("procs", J_int r.li_procs);
                           ("call_graph_edges", J_int r.li_edges);
                           ("diagnostics", J_int r.li_diags);
                           ("wall_ms", J_float (r.li_wall_s *. 1000.0));
                           ( "lines_per_sec",
                             J_float
                               (float_of_int r.li_lines
                               /. Float.max 1e-9 r.li_wall_s) );
                         ])
                     lint_cases) );
              ( "seed_ablation",
                J_obj
                  [
                    ("workload", J_string "fib 22 first run");
                    ("unseeded_ms", J_float (seed_off_wall *. 1000.0));
                    ("seeded_ms", J_float (seed_on_wall *. 1000.0));
                    ("procs_seeded", json_of_counter (vm_stat "seeded" seed_on_stats));
                    ( "reps_primed",
                      json_of_counter (vm_stat "seed_primed" seed_on_stats) );
                  ] );
            ] );
        ("send_storm", storm_json ~smoke);
        ( "counters",
          J_obj (List.map (fun (k, v) -> (k, json_of_counter v)) snapshot) );
      ]
  in
  let buf = Buffer.create 4096 in
  json_render buf 0 doc;
  Buffer.add_char buf '\n';
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf));
  Printf.printf "wrote %s (%d bytes)\n" path (Buffer.length buf)

(* ------------------------------------------------------------------ *)

let full_suite () =
  print_endline "Tk reproduction benchmarks (paper: Ousterhout, USENIX '91)";
  print_endline "Absolute numbers are 2020s-OCaml-vs-1990-C; compare shapes.";
  table1 ();
  table2 ();
  tcl_micro ();
  figure8 ();
  widget_sweep ();
  canvas_sweep ();
  send_sweep ();
  send_storm_section ();
  interp_section ();
  rescache_ablation ();
  structcache_ablation ();
  binding_ablation ();
  scripts_ablation ();
  vm_ablation ();
  optiondb_ablation ();
  lint_section ~smoke:false;
  print_newline ()

let () =
  let rec parse json smoke = function
    | [] -> (json, smoke)
    | "--json" :: path :: rest -> parse (Some path) smoke rest
    | "--smoke" :: rest -> parse json true rest
    | arg :: _ ->
      Printf.eprintf "usage: main.exe ?--json FILE? ?--smoke?\n";
      Printf.eprintf "unknown argument: %s\n" arg;
      exit 2
  in
  match parse None false (List.tl (Array.to_list Sys.argv)) with
  | Some path, smoke -> emit_json ~path ~smoke
  | None, _ -> full_suite ()
