(* Section 7's performance vignette: "it is possible to paint with the
   mouse in one application, have all the mouse motion events bound into
   Tcl commands, which in turn use send to forward commands to another
   application in a different process, which finally draws the painted
   object in its own window" — with no noticeable lag.

   Here the painter app binds <B1-Motion> to a Tcl command that sends a
   'plot' command to the canvas app. The canvas app implements 'plot' as
   an application-specific primitive (OCaml code that draws into its
   window), registered with its interpreter exactly as in Figure 6. *)

open Xsim

let run app script =
  match Tcl.Interp.eval_value app.Tk.Core.interp script with
  | Ok v -> v
  | Error msg -> failwith (Printf.sprintf "[%s] %s: %s" app.Tk.Core.app_name script msg)

let () =
  let server = Server.create () in
  let painter = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"painter" () in
  let canvas = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"canvas" () in

  print_endline "== Section 7: painting relayed between applications ==";
  print_endline "";

  (* --- The canvas application: a frame plus one C-coded primitive. --- *)
  ignore (run canvas "frame .area -width 180 -height 90 -background white");
  ignore (run canvas "pack append . .area {top}");
  Tk.Core.update canvas;
  let plotted = ref 0 in
  Tcl.Interp.register_value canvas.Tk.Core.interp "plot" (fun _ words ->
      match words with
      | [ _; x; y ] ->
        let area = Tk.Core.lookup_exn canvas ".area" in
        let gc = Tk.Core.widget_gc area ~fg:"black" () in
        (match (int_of_string_opt x, int_of_string_opt y) with
        | Some x, Some y ->
          Server.fill_rect canvas.Tk.Core.conn area.Tk.Core.win gc
            (Geom.rect ~x ~y ~width:6 ~height:6);
          incr plotted
        | _ -> ());
        ""
      | _ -> Tcl.Interp.wrong_args "plot x y");

  (* --- The painter: motion events with button 1 held are forwarded. --- *)
  ignore (run painter "frame .pad -width 180 -height 90 -background gray90");
  ignore (run painter "pack append . .pad {top}");
  ignore (run painter {|bind .pad <B1-Motion> {send canvas "plot %x %y"}|});
  Tk.Core.update painter;

  (* Drag a stroke across the painter's pad. *)
  let pad = Tk.Core.lookup_exn painter ".pad" in
  let win = Option.get (Server.lookup_window server pad.Tk.Core.win) in
  let origin = Window.root_position win in
  print_endline "Dragging the mouse across the painter's pad...";
  Server.inject_motion server ~x:(origin.Geom.x + 5) ~y:(origin.Geom.y + 20);
  Server.inject_button server ~button:1 ~pressed:true;
  let points = 24 in
  let t0 = Unix.gettimeofday () in
  for i = 1 to points do
    Server.inject_motion server
      ~x:(origin.Geom.x + 5 + (i * 6))
      ~y:(origin.Geom.y + 20 + (i * 2));
    Tk.Core.update_all server
  done;
  Server.inject_button server ~button:1 ~pressed:false;
  Tk.Core.update_all server;
  let elapsed = Unix.gettimeofday () -. t0 in

  Printf.printf "Motion events relayed via send: %d; points drawn: %d\n"
    points !plotted;
  Printf.printf "Wall time for the stroke: %.3f ms (%.0f us per point)\n"
    (elapsed *. 1000.0)
    (elapsed *. 1e6 /. float_of_int points);
  print_endline "";
  print_endline "The canvas application's window (painted remotely):";
  print_string
    (Raster.render server ~window:(Tk.Core.main_widget canvas).Tk.Core.win ())
