examples/paint_relay.mli:
