examples/interface_editor.mli:
