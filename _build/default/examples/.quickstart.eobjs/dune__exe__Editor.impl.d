examples/editor.ml: Filename In_channel List Out_channel Printf Raster Server String Tcl Tk Tk_widgets Xsim
