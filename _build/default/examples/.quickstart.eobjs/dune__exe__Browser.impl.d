examples/browser.ml: Filename Geom List Option Out_channel Printf Raster Server Sys Tcl Tk Tk_widgets Window Xsim
