examples/debugger_editor.mli:
