examples/hypertext.mli:
