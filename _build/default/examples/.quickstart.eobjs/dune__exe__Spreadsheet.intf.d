examples/spreadsheet.mli:
