examples/browser.mli:
