examples/dialog.ml: Printf Raster Server Tcl Tk Tk_widgets Xsim
