examples/quickstart.mli:
