examples/dialog.mli:
