examples/interface_editor.ml: Buffer List Printf Raster Server String Tcl Tk Tk_widgets Xsim
