examples/widget_tour.mli:
