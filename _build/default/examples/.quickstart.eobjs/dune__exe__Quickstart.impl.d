examples/quickstart.ml: Geom Option Printf Raster Server Tcl Tk Tk_widgets Window Xsim
