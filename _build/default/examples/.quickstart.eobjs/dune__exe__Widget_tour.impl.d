examples/widget_tour.ml: Printf Raster Server Tcl Tk Tk_widgets Xsim
