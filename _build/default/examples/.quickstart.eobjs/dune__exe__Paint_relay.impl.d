examples/paint_relay.ml: Geom Option Printf Raster Server Tcl Tk Tk_widgets Unix Window Xsim
