examples/editor.mli:
