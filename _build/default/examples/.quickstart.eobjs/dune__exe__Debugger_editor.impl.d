examples/debugger_editor.ml: List Printf Raster Server Tcl Tk Tk_widgets Xsim
