(* Section 6's "active objects" sketch: hypertext by associating Tcl
   commands with pieces of text.

   A document viewer displays lines of text; some lines have an embedded
   Tcl command (stored in a Tcl array, one entry per line). Clicking a
   line executes its command: one link opens a new view (another listbox),
   one is a hypermedia link that sends a "play" command to a separate
   audio application — all without the viewer knowing what the commands
   do, exactly as the paper describes. *)

open Xsim

let run app script =
  match Tcl.Interp.eval_value app.Tk.Core.interp script with
  | Ok v -> v
  | Error msg -> failwith (Printf.sprintf "[%s] %s: %s" app.Tk.Core.app_name script msg)

let () =
  let server = Server.create () in
  let viewer = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"viewer" () in
  let audio = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"audio" () in

  print_endline "== Section 6: hypertext with embedded Tcl commands ==";
  print_endline "";

  (* --- A tiny "audio server" application: one primitive, 'play'. --- *)
  ignore
    (run audio
       "proc play {clip} {print \"audio: playing clip '$clip'\\n\"; return ok}");

  (* --- The document viewer --- *)
  ignore (run viewer "listbox .doc -geometry 44x8");
  ignore (run viewer "pack append . .doc {top}");
  (* The document: plain lines, plus per-line embedded commands. *)
  ignore
    (run viewer
       ".doc insert end \
          {Tk: An X11 Toolkit Based on Tcl} \
          {  } \
          {Tk permits tools to work together by} \
          {sending commands to each other.} \
          {-> open the references in a new view} \
          {-> play the demo recording}");
  ignore (run viewer "set action(4) {open_view}");
  ignore (run viewer "set action(5) {send audio {play tk-demo}}");
  (* open_view builds a whole new interface element at run time — the
     paper's point that dialogs etc. need no special support. *)
  ignore
    (run viewer
       "proc open_view {} {\n\
       \  if [winfo exists .refs] {destroy .refs; return {}}\n\
       \  listbox .refs -geometry 44x3\n\
       \  pack append . .refs {top}\n\
       \  .refs insert end {[1] Ousterhout, Tcl: An Embeddable Language} \
                          {[8] USENIX Winter 1990} {[10] X Window System}\n\
       \  print \"viewer: opened references view\\n\"\n\
        }");
  (* The hypertext mechanism itself: clicking a line runs its command. *)
  ignore
    (run viewer
       "bind .doc <Button-1> {\n\
       \  set i [lindex [.doc curselection] 0]\n\
       \  if [info exists action($i)] {eval $action($i)}\n\
        }");
  Tk.Core.update viewer;

  print_endline "The document:";
  print_string (Raster.render server ~window:(Tk.Core.main_widget viewer).Tk.Core.win ());
  print_endline "";

  let doc = Tk.Core.lookup_exn viewer ".doc" in
  let win = Option.get (Server.lookup_window server doc.Tk.Core.win) in
  let origin = Window.root_position win in
  let click_line row =
    Server.inject_motion server ~x:(origin.Geom.x + 30)
      ~y:(origin.Geom.y + 4 + (row * 13));
    Server.inject_button server ~button:1 ~pressed:true;
    Server.inject_button server ~button:1 ~pressed:false;
    Tk.Core.update_all server
  in

  print_endline "Clicking the '-> open the references' link (line 4):";
  click_line 4;
  Printf.printf "References view exists: %s\n" (run viewer "winfo exists .refs");
  print_endline "";
  print_string (Raster.render server ~window:(Tk.Core.main_widget viewer).Tk.Core.win ());
  print_endline "";

  print_endline "Clicking the hypermedia link (line 5) — sends to the audio app:";
  click_line 5;
  print_endline "";

  print_endline "Clicking a plain text line (line 2) does nothing special:";
  click_line 2;
  print_endline "(no action bound, only the selection moved)"
