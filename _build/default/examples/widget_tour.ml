(* A tour of the complete widget set in one window: every widget class the
   paper lists in §7 (plus canvas and text) created, packed and rendered.
   Doubles as a visual smoke test of the toolkit. *)

open Xsim

let run app script =
  match Tcl.Interp.eval_value app.Tk.Core.interp script with
  | Ok v -> v
  | Error msg -> failwith (Printf.sprintf "%s: %s" script msg)

let tour =
  {|wm title . "widget tour"
label .title -text "All widgets, one window"

frame .row1
menubutton .row1.mb -text File -menu .row1.mb.m
menu .row1.mb.m
.row1.mb.m add command -label Quit -command {destroy .}
button .row1.ok -text Button -command {print clicked\n}
checkbutton .row1.check -text Check -variable ticked
radiobutton .row1.r1 -text A -variable which -value a
radiobutton .row1.r2 -text B -variable which -value b
pack append .row1 .row1.mb {left} .row1.ok {left} .row1.check {left} \
  .row1.r1 {left} .row1.r2 {left}

frame .row2
scrollbar .row2.sb -command ".row2.list view"
listbox .row2.list -scroll ".row2.sb set" -geometry 14x4
entry .row2.entry -width 14
scale .row2.scale -from 0 -to 10 -length 80 -label vol
pack append .row2 .row2.sb {left filly} .row2.list {left} \
  .row2.entry {left} .row2.scale {left}

message .msg -width 260 -text "Tk permits collections of smaller specialized applications that communicate with each other."

frame .row3
text .row3.text -width 22 -height 3
canvas .row3.canvas -width 120 -height 40
pack append .row3 .row3.text {left} .row3.canvas {left}

pack append . .title {top} .row1 {top} .row2 {top} .msg {top} .row3 {top}

.row2.list insert end one two three four five six
.row2.entry insert 0 "type here"
.row2.scale set 7
.row3.text insert 1.0 "a text widget\nwith two lines"
.row3.canvas create rectangle 4 4 116 36
.row3.canvas create line 4 36 116 4
.row3.canvas create text 30 22 -text canvas
.row1.check select
.row1.r2 invoke
update|}

let () =
  let server = Server.create ~width:1280 ~height:800 () in
  let app = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"tour" () in
  ignore (run app tour);
  Tk.Core.update app;
  print_endline "== The complete widget set ==";
  print_endline "";
  print_string
    (Raster.render server ~window:(Tk.Core.main_widget app).Tk.Core.win ());
  print_endline "";
  Printf.printf "Checkbutton variable: ticked = %s\n" (run app "set ticked");
  Printf.printf "Radiobutton variable: which = %s\n" (run app "set which");
  Printf.printf "Scale value: %s\n" (run app ".row2.scale get");
  Printf.printf "Canvas items: %s\n" (run app ".row3.canvas itemcount");
  let stats = Server.stats app.Tk.Core.conn in
  Printf.printf "Built with %d server requests (%d round trips)\n"
    stats.Server.total_requests stats.Server.round_trips
