(* Section 6's motivating scenario: a debugger and an editor built as
   SEPARATE Tk applications that cooperate through send, instead of one
   monolithic debugger-with-built-in-editor.

   - The editor displays source code in a listbox.
   - The debugger, when it steps, sends the editor a command to highlight
     the current line.
   - The editor has a "set breakpoint at selected line" button that sends
     the debugger a command — neither program knows the other's
     internals, only its Tcl interface. *)

open Xsim

let run app script =
  match Tcl.Interp.eval_value app.Tk.Core.interp script with
  | Ok v -> v
  | Error msg -> failwith (Printf.sprintf "[%s] %s: %s" app.Tk.Core.app_name script msg)

let source_lines =
  [
    "int main(int argc, char **argv) {";
    "    int i, total = 0;";
    "    for (i = 0; i < argc; i++) {";
    "        total += strlen(argv[i]);";
    "    }";
    "    printf(\"%d\\n\", total);";
    "    return 0;";
    "}";
  ]

let () =
  let server = Server.create () in
  let editor = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"editor" () in
  let debugger = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"debugger" () in

  print_endline "== Section 6: debugger and editor as separate programs ==";
  print_endline "";

  (* --- The editor application --- *)
  ignore (run editor "listbox .code -geometry 40x10");
  ignore
    (run editor
       "button .breakpoint -text {Set breakpoint} -command {\n\
       \  send debugger \"break [lindex [.code curselection] 0]\"\n\
        }");
  ignore (run editor "pack append . .code {top} .breakpoint {top fillx}");
  List.iter
    (fun line ->
      ignore (run editor (".code insert end " ^ Tcl.Tcl_list.quote_element line)))
    source_lines;
  Tk.Core.update editor;

  (* --- The debugger application --- *)
  ignore (run debugger "set pc 0");
  ignore (run debugger "set breakpoints {}");
  (* "break N" is the debugger's application-specific primitive; the
     editor composes it remotely. *)
  ignore
    (run debugger
       "proc break {line} {\n\
       \  global breakpoints\n\
       \  lappend breakpoints $line\n\
       \  print \"debugger: breakpoint set at line $line\\n\"\n\
        }");
  (* Stepping advances the program counter and tells the editor to
     highlight the current line of execution. *)
  ignore
    (run debugger
       "proc step {} {\n\
       \  global pc\n\
       \  set pc [expr $pc + 1]\n\
       \  send editor \".code select from $pc; .code select to $pc\"\n\
       \  print \"debugger: stepped to line $pc\\n\"\n\
        }");
  ignore (run debugger "button .step -text Step -command step");
  ignore (run debugger "pack append . .step {top}");
  Tk.Core.update debugger;

  Printf.printf "Applications on the display: %s\n"
    (run debugger "winfo interps");
  print_endline "";

  (* The debugger steps three times: watch the editor's highlight move. *)
  print_endline "Debugger steps three times (each step sends to the editor):";
  for _ = 1 to 3 do
    ignore (run debugger ".step invoke")
  done;
  Tk.Core.update_all server;
  Printf.printf "Editor now highlights line index: %s\n"
    (run editor ".code curselection");
  print_endline "";
  print_endline "Editor screen dump (current line selected):";
  print_string (Raster.render server ~window:(Tk.Core.main_widget editor).Tk.Core.win ());
  print_endline "";

  (* The user selects a line in the editor and sets a breakpoint: the
     editor sends the debugger's own 'break' primitive. *)
  print_endline "User selects line 5 in the editor and clicks [Set breakpoint]:";
  ignore (run editor ".code select from 5");
  ignore (run editor ".breakpoint invoke");
  Tk.Core.update_all server;
  Printf.printf "Debugger's breakpoint list: %s\n"
    (run debugger "set breakpoints");
  print_endline "";

  (* And send works symmetrically: the debugger can read the editor. *)
  let line =
    run debugger "send editor {.code get [lindex [.code curselection] 0]}"
  in
  Printf.printf "Debugger reads the highlighted source line remotely: %s\n" line
