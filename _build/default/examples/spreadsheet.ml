(* Section 6's spreadsheet sketch: "A Tk-based spreadsheet might permit
   cells to contain embedded Tcl commands. When such a cell is evaluated
   the Tcl command would be executed automatically; it could fetch
   information from an independent database package or from any other
   program in the environment."

   Two applications:
   - "database": a trivial key-value store exposing Tcl primitives
     (dbset / dbget).
   - "sheet": a 3x3 grid of label widgets. Each cell holds either a plain
     value or an embedded Tcl command (prefixed with '='). Recalculation
     evaluates the embedded commands; =-cells can reference other cells
     (via the 'cell' command) or reach into the database app with send. *)

open Xsim

let run app script =
  match Tcl.Interp.eval_value app.Tk.Core.interp script with
  | Ok v -> v
  | Error msg -> failwith (Printf.sprintf "[%s] %s: %s" app.Tk.Core.app_name script msg)

let () =
  let server = Server.create () in
  let sheet = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"sheet" () in
  let db = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"database" () in

  print_endline "== Section 6: a spreadsheet with embedded Tcl commands ==";
  print_endline "";

  (* --- The database application: two primitives, dbset and dbget. --- *)
  ignore (run db "proc dbset {key value} {global DB; set DB($key) $value}");
  ignore
    (run db
       "proc dbget {key} {global DB; if [info exists DB($key)] {return \
        $DB($key)} else {return 0}}");
  ignore (run db "dbset widgets-sold 412");
  ignore (run db "dbset price-each 3");

  (* --- The spreadsheet --- *)
  (* The grid: rows of frames, each holding label widgets. *)
  ignore (run sheet "option add *Label.relief sunken");
  for r = 0 to 2 do
    ignore (run sheet (Printf.sprintf "frame .r%d" r));
    for c = 0 to 2 do
      ignore
        (run sheet
           (Printf.sprintf "label .r%d.c%d -width 14 -text {}" r c));
      ignore (run sheet (Printf.sprintf "pack append .r%d .r%d.c%d {left}" r r c))
    done;
    ignore (run sheet (Printf.sprintf "pack append . .r%d {top}" r))
  done;

  (* Cell contents live in the array 'formula'; 'cell' reads a computed
     value; 'recalc' evaluates every formula in order. *)
  ignore
    (run sheet
       "proc cell {r c} {global value; return $value($r,$c)}\n\
        proc setcell {r c f} {global formula; set formula($r,$c) $f}\n\
        proc recalc {} {\n\
       \  global formula value\n\
       \  foreach k [lsort [array names formula]] {\n\
       \    set f $formula($k)\n\
       \    if {[string index $f 0] == \"=\"} {\n\
       \      set value($k) [eval [string range $f 1 end]]\n\
       \    } else {\n\
       \      set value($k) $f\n\
       \    }\n\
       \    scan $k {%d,%d} r c\n\
       \    .r$r.c$c configure -text $value($k)\n\
       \  }\n\
        }");

  (* Fill the sheet: plain values, a cross-cell formula, and two cells
     whose embedded commands reach into the database application. *)
  ignore (run sheet "setcell 0 0 {Units:}");
  ignore (run sheet "setcell 0 1 {=send database {dbget widgets-sold}}");
  ignore (run sheet "setcell 1 0 {Price:}");
  ignore (run sheet "setcell 1 1 {=send database {dbget price-each}}");
  ignore (run sheet "setcell 2 0 {Total:}");
  ignore (run sheet "setcell 2 1 {=expr {[cell 0 1] * [cell 1 1]}}");
  ignore (run sheet "recalc");
  Tk.Core.update_all server;

  print_endline "After the first recalculation:";
  print_string
    (Raster.render server ~window:(Tk.Core.main_widget sheet).Tk.Core.win ());
  print_endline "";
  Printf.printf "Total cell computes %s * %s = %s\n" (run sheet "cell 0 1")
    (run sheet "cell 1 1") (run sheet "cell 2 1");
  print_endline "";

  (* The database changes — the spreadsheet "reaches out and retrieves
     fresh data values" on the next evaluation. *)
  print_endline "The database is updated (dbset widgets-sold 1000) and the";
  print_endline "sheet recalculates:";
  ignore (run db "dbset widgets-sold 1000");
  ignore (run sheet "recalc");
  Tk.Core.update_all server;
  Printf.printf "Total is now: %s\n" (run sheet "cell 2 1");
  print_endline "";
  print_string
    (Raster.render server ~window:(Tk.Core.main_widget sheet).Tk.Core.win ());
  print_endline "";

  (* And any other application can drive the whole spreadsheet. *)
  ignore
    (run db "send sheet {setcell 2 2 {=format {(%d rows)} 3}; recalc}");
  Tk.Core.update_all server;
  Printf.printf "A remote send added a new formula cell: %s\n"
    (run sheet "cell 2 2")
