(* Quickstart: the paper's §4 "Hello, world" button.

   Creates a Tk application on a simulated display, builds the exact
   widget from the paper, exercises the widget command (configure, flash),
   clicks it with synthesized input, and shows the ASCII screen dump. *)

open Xsim

let run app script =
  match Tcl.Interp.eval_value app.Tk.Core.interp script with
  | Ok v -> v
  | Error msg -> failwith (Printf.sprintf "%s: %s" script msg)

let () =
  let server = Server.create () in
  let app = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"quickstart" () in

  print_endline "== Tk quickstart: the paper's Section 4 example ==";
  print_endline "";
  print_endline "  button .hello -bg Red -text \"Hello, world\" \\";
  print_endline "      -command \"print Hello!\\n\"";
  print_endline "";

  (* Creating a widget also creates a Tcl command named after it. *)
  ignore
    (run app
       {|button .hello -bg Red -text "Hello, world" -command "print Hello!\n"|});
  ignore (run app "pack append . .hello {top expand}");
  Tk.Core.update app;

  Printf.printf "Widget created; '.hello' is now a Tcl command: %b\n"
    (Tcl.Interp.command_exists app.Tk.Core.interp ".hello");
  Printf.printf "Its -text option reads back as: %s\n"
    (run app ".hello cget -text");
  print_endline "";

  print_endline "Screen dump after packing:";
  print_string
    (Raster.render server ~window:(Tk.Core.main_widget app).Tk.Core.win ());
  print_endline "";

  (* The paper's §4 widget-command examples. *)
  print_endline "Running: .hello flash";
  ignore (run app ".hello flash");
  print_endline "Running: .hello configure -bg PalePink1 -relief sunken";
  ignore (run app ".hello configure -bg PalePink1 -relief sunken");
  Tk.Core.update app;
  Printf.printf "Background is now: %s\n" (run app ".hello cget -bg");
  print_endline "";

  (* Click the button with synthesized mouse input: the -command runs. *)
  let w = Tk.Core.lookup_exn app ".hello" in
  let win = Option.get (Server.lookup_window server w.Tk.Core.win) in
  let p = Window.root_position win in
  let cx = p.Geom.x + (w.Tk.Core.width / 2)
  and cy = p.Geom.y + (w.Tk.Core.height / 2) in
  print_endline "Clicking the button (synthesized ButtonPress/Release):";
  Server.inject_motion server ~x:cx ~y:cy;
  Server.inject_button server ~button:1 ~pressed:true;
  Server.inject_button server ~button:1 ~pressed:false;
  Tk.Core.update app;
  print_endline "";

  (* Figure 7's bindings, verbatim. *)
  print_endline "Adding Figure 7 bindings and triggering them:";
  ignore (run app {|bind .hello <Enter> {print "hi\n"}|});
  ignore (run app {|bind .hello a {print "you typed 'a'\n"}|});
  ignore (run app {|bind .hello <Double-Button-1> {print "mouse at %x %y\n"}|});
  Server.inject_motion server ~x:500 ~y:500;
  Server.inject_motion server ~x:cx ~y:cy;
  Tk.Core.update app;
  Server.inject_key server ~keysym:"a" ~pressed:true;
  Tk.Core.update app;
  Server.inject_button server ~button:1 ~pressed:true;
  Server.inject_button server ~button:1 ~pressed:false;
  Server.inject_button server ~button:1 ~pressed:true;
  Tk.Core.update app;
  print_endline "";

  let stats = Server.stats app.Tk.Core.conn in
  Printf.printf
    "Server traffic for this whole session: %d requests (%d round trips)\n"
    stats.Server.total_requests stats.Server.round_trips
