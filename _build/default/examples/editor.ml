(* A small but real application built on the public API: a text editor
   with a menu bar, an editable text widget with a scrollbar, and file
   open/save — the kind of tool the paper imagines living alongside a
   debugger instead of inside it (§6). The entire interface is Tcl; the
   only OCaml here is the driver that types into it. *)

open Xsim

let run app script =
  match Tcl.Interp.eval_value app.Tk.Core.interp script with
  | Ok v -> v
  | Error msg -> failwith (Printf.sprintf "%s: %s" script msg)

let interface =
  {|menubutton .menubar -text File -menu .menubar.m
menu .menubar.m
.menubar.m add command -label Open -command do_open
.menubar.m add command -label Save -command do_save
.menubar.m add separator
.menubar.m add command -label Quit -command {destroy .}
scrollbar .scroll -command ".body view"
text .body -width 36 -height 8 -scroll ".scroll set"
label .status -text Ready
pack append . .menubar {top fillx} .status {bottom fillx} \
  .scroll {right filly} .body {left expand fill}

proc do_open {} {
  global filename
  .body delete 1.0 end
  set f [open $filename r]
  .body insert 1.0 [read $f]
  close $f
  .status configure -text "Opened [file tail $filename]"
}
proc do_save {} {
  global filename
  set f [open $filename w]
  puts -nonewline $f [.body get 1.0 end]
  close $f
  .status configure -text "Saved [file tail $filename]"
}|}

let () =
  let server = Server.create () in
  let app = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"editor" () in

  print_endline "== A text editor as a Tk application ==";
  print_endline "";

  (* A file to edit. *)
  let file = Filename.temp_file "edit" ".txt" in
  Out_channel.with_open_text file (fun oc ->
      Out_channel.output_string oc
        "Tk is a new toolkit for X11.\nIt is based on Tcl.\n");
  Tcl.Interp.set_var app.Tk.Core.interp "filename" file;

  ignore (run app interface);
  ignore (run app "wm title . editor");
  Tk.Core.update app;

  (* Open the file via the menu. *)
  ignore (run app ".menubar.m invoke Open");
  Tk.Core.update app;
  print_endline "After File/Open:";
  print_string
    (Raster.render server ~window:(Tk.Core.main_widget app).Tk.Core.win ());
  print_endline "";

  (* Edit with the keyboard: click at the end of line 1, then type. *)
  ignore (run app "focus .body");
  ignore (run app ".body mark set insert 1.end");
  Server.inject_string server " (USENIX 1991)";
  Tk.Core.update app;
  Printf.printf "Line 1 is now: %s\n" (run app ".body get 1.0 1.end");
  print_endline "";

  (* Save via the menu, then verify the file on disk. *)
  ignore (run app ".menubar.m invoke Save");
  Tk.Core.update app;
  Printf.printf "Status: %s\n" (run app ".status cget -text");
  let saved = In_channel.with_open_text file In_channel.input_all in
  Printf.printf "File on disk begins: %s\n"
    (List.hd (String.split_on_char '\n' saved));
  print_endline "";
  print_endline "Final screen:";
  print_string
    (Raster.render server ~window:(Tk.Core.main_widget app).Tk.Core.win ())
