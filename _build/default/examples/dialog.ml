(* Section 5's claim: "Tk contains no special support for dialog boxes.
   The basic commands for creating and arranging widgets are already
   sufficient: even in the normal case, dialogs are created by writing
   short Tcl scripts."

   This example defines a modal confirmation dialog entirely in Tcl — a
   procedure any application could paste in — using only frame, message,
   button, pack, grab and tkwait. The dialog is created while the
   application runs, grabs the pointer so clicks elsewhere are ignored,
   waits for an answer, and cleans itself up. *)

open Xsim

let run app script =
  match Tcl.Interp.eval_value app.Tk.Core.interp script with
  | Ok v -> v
  | Error msg -> failwith (Printf.sprintf "%s: %s" script msg)

(* The whole dialog implementation: a short Tcl script (§5). *)
let dialog_library =
  {|proc ask {question} {
  global dialog_answer
  frame .dlg -borderwidth 2 -relief raised -background gray90
  message .dlg.msg -text $question -width 150
  button .dlg.yes -text Yes -command {set dialog_answer yes}
  button .dlg.no  -text No  -command {set dialog_answer no}
  pack append .dlg .dlg.msg {top fillx} .dlg.yes {left expand} .dlg.no {right expand}
  place .dlg -x 20 -y 30
  grab set .dlg
  tkwait variable dialog_answer
  grab release .dlg
  destroy .dlg
  return $dialog_answer
}|}

let () =
  let server = Server.create () in
  let app = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"dialog" () in

  print_endline "== Section 5: dialog boxes are just Tcl scripts ==";
  print_endline "";
  print_endline dialog_library;
  print_endline "";

  (* The application proper: one button that wants confirmation. *)
  ignore (run app "label .status -text {Document: unsaved changes}");
  ignore (run app "button .quit -text Quit -command {
    set answer [ask {Really quit?}]
    .status configure -text \"You answered: $answer\"
  }");
  ignore (run app "pack append . .status {top fillx} .quit {top}");
  ignore (run app dialog_library);
  Tk.Core.update app;

  (* Answer asynchronously: after the dialog appears, a timer clicks Yes
     (tkwait pumps the event loop, so the timer fires while ask waits). *)
  ignore
    (run app
       "after 30 {\n\
       \  print \"dialog is up; grab current = [grab current]\\n\"\n\
       \  print [screendump_stub]\n\
       \  .dlg.yes invoke\n\
        }");
  Tcl.Interp.register_value app.Tk.Core.interp "screendump_stub" (fun _ _ ->
      Raster.render server ~window:(Tk.Core.main_widget app).Tk.Core.win ());

  print_endline "Clicking [Quit] pops the dialog and waits for an answer:";
  ignore (run app ".quit invoke");
  Tk.Core.update app;
  print_endline "";
  Printf.printf "Status line now reads: %s\n" (run app ".status cget -text");
  Printf.printf "Dialog cleaned up: .dlg exists = %s\n"
    (run app "winfo exists .dlg")
