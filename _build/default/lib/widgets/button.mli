(** Labels, buttons, check buttons and radio buttons — one file implements
    all four, as the paper's Table I notes for Tk.

    A button displays a string and executes its [-command] Tcl script when
    mouse button 1 is clicked over it (paper §4). Check buttons toggle a
    Tcl variable between 0 and 1; radio buttons set a shared variable to
    their [-value], deselecting the others automatically. Widget commands:
    [flash], [invoke], [activate], [deactivate], and for the selecting
    variants [select], [deselect] and [toggle]. *)

val install : Tk.Core.app -> unit
(** Register the [label], [button], [checkbutton] and [radiobutton]
    creation commands. *)

val flash_count : Tk.Core.widget -> int
(** How many times a widget has flashed (exposed for tests). *)
