(** A structured-graphics canvas: the paper's §5 plan to "enhance wish with
    drawing commands for shapes and text", realised as a widget.

    Items are created by Tcl commands and keep an integer id:

    {v
      .c create line x1 y1 x2 y2 ?-fill color?
      .c create rectangle x1 y1 x2 y2 ?-fill color? ?-outline color?
      .c create text x y ?-text string? ?-fill color?
    v}

    Widget commands: [create], [delete id|all], [move id dx dy],
    [coords id ?x1 y1 ...?], [itemcount], [type id]. *)

val install : Tk.Core.app -> unit

val item_count : Tk.Core.widget -> int
