(** A multi-line editable text widget (the one large widget Tk grew
    immediately after the paper; included so the §6 editor scenarios can
    be built on real text rather than listboxes).

    Positions are Tk-style ["line.char"] indices (lines from 1, characters
    from 0), plus ["end"] and ["insert"] (the insertion cursor). Widget
    commands:

    {v
      .t insert index string        .t delete index1 ?index2?
      .t get index1 ?index2?        .t index position
      .t mark set insert index      .t mark insert
      .t view ?lineNumber?          .t tag add sel first last
      .t tag remove sel             .t tag ranges sel
      .t lines
    v}

    Built-in behaviour: click to set the cursor and focus, printable keys
    insert, Return splits the line, BackSpace joins/deletes, arrows move
    the cursor, dragging selects (and claims the X selection). *)

val install : Tk.Core.app -> unit

val contents : Tk.Core.widget -> string
(** The whole buffer, newline-separated (for tests). *)

val cursor : Tk.Core.widget -> int * int
(** Insertion point as (line, char), 1- and 0-based respectively. *)
