(** Menus and menubuttons (the two widgets paper §7 says were still to be
    implemented — included here for completeness).

    A menu is an initially-unmapped window holding command entries and
    separators; [post x y] places it (coordinates relative to the main
    window) and maps it above its siblings, [unpost] hides it. Clicking an
    entry (or [invoke index]) runs the entry's command and unposts. A
    menubutton posts its [-menu] when pressed. *)

val install : Tk.Core.app -> unit
(** Register the [menu] and [menubutton] creation commands. *)

val entry_labels : Tk.Core.widget -> string list
(** Labels of a menu's entries ("-" for separators); for tests. *)
