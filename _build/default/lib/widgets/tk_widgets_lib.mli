(** Installer for the complete widget set: [frame], [label], [button],
    [checkbutton], [radiobutton], [message], [listbox], [scrollbar],
    [scale], [entry], [menu] and [menubutton] — the paper §7 widget
    inventory. *)

val install : Tk.Core.app -> unit

val new_app :
  ?app_class:string -> server:Xsim.Server.t -> name:string -> unit -> Tk.Core.app
(** A fully equipped application: intrinsics + widget set. *)
