(** Scales (sliders), one of the paper §7 Motif-compatible widgets: an
    integer value in [-from .. -to] adjusted by dragging; every change
    invokes the [-command] script with the value appended. Widget
    commands: [set value], [get]. *)

val install : Tk.Core.app -> unit

val value : Tk.Core.widget -> int
