let install app =
  Frame.install app;
  Button.install app;
  Message.install app;
  Listbox.install app;
  Scrollbar.install app;
  Scale.install app;
  Entry.install app;
  Menu.install app;
  Canvas.install app;
  Text.install app

let new_app ?app_class ~server ~name () =
  let app = Tk.Main.create ?app_class ~server ~name () in
  install app;
  app
