(** Message widgets: multi-line read-only text with word wrapping, one of
    the Motif-compatible widgets listed in paper §7. The [-width] option
    gives the wrap width in pixels; [-justify] aligns the wrapped lines. *)

val install : Tk.Core.app -> unit

val wrap_text : Xsim.Font.t -> width:int -> string -> string list
(** Word-wrap a string to a pixel width (exposed for tests). Explicit
    newlines are preserved; words longer than the width get their own
    line. *)
