(** Scrollbars (paper §4): a scrollbar controls another widget purely by
    issuing Tcl commands. The associated widget keeps the scrollbar in
    sync by invoking

    {v scrollbar set totalUnits windowUnits firstUnit lastUnit v}

    and the scrollbar reacts to mouse activity by appending a unit number
    to its [-command] prefix — e.g. [".list view 40"] — exactly the
    mechanism the paper describes for connecting independent widgets. *)

val install : Tk.Core.app -> unit

val view_state : Tk.Core.widget -> int * int * int * int
(** (total, window, first, last), as last set (exposed for tests). *)
