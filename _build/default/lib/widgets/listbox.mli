(** Listboxes (paper §4 and the Figure 9 browser): a scrollable list of
    text items. The [-scroll] option gives a command prefix (typically
    [".scroll set"]) that the listbox invokes — with total/window/first/
    last appended — whenever its view changes, and the [view] widget
    command scrolls so a given item is at the top (the scrollbar issues
    [".list view 40"]).

    Clicking selects an item (dragging extends the selection); the widget
    claims the X PRIMARY selection so [selection get] — in this or any
    other application — retrieves the selected lines. *)

val install : Tk.Core.app -> unit

val items : Tk.Core.widget -> string list
(** Current contents (exposed for tests). *)

val selection_range : Tk.Core.widget -> (int * int) option
(** Selected item range, if any. *)

val top_index : Tk.Core.widget -> int
(** Index of the first visible item. *)
