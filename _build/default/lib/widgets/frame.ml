let install app =
  Wutil.standard_creator app ~command:"frame"
    ~make:(fun () -> Tk.Core.container_class ~name:"Frame")
    ()
