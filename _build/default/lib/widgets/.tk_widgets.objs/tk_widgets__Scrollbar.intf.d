lib/widgets/scrollbar.mli: Tk
