lib/widgets/listbox.ml: Array Event Font Geom List Printf Server String Tcl Tk Wutil Xsim
