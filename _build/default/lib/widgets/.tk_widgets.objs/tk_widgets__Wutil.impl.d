lib/widgets/wutil.ml: Font Gcontext Geom List Option Printf Server String Tcl Tk Xsim
