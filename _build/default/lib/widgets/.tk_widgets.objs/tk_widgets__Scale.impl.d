lib/widgets/scale.ml: Event Font Geom Printf Server Tcl Tk Wutil Xsim
