lib/widgets/canvas.ml: Array Geom List Server String Tcl Tk Wutil Xsim
