lib/widgets/message.mli: Tk Xsim
