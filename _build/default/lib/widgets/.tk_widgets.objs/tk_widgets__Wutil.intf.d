lib/widgets/wutil.mli: Font Tk Xsim
