lib/widgets/scrollbar.ml: Event Geom List Server Tcl Tk Wutil Xsim
