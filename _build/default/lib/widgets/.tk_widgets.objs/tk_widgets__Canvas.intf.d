lib/widgets/canvas.mli: Tk
