lib/widgets/menu.mli: Tk
