lib/widgets/text.ml: Array Buffer Event Font Geom List Printf Server String Tcl Tk Wutil Xsim
