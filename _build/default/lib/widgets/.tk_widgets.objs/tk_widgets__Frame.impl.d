lib/widgets/frame.ml: Tk Wutil
