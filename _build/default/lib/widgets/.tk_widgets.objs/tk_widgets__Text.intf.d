lib/widgets/text.mli: Tk
