lib/widgets/tk_widgets_lib.ml: Button Canvas Entry Frame Listbox Menu Message Scale Scrollbar Text Tk
