lib/widgets/frame.mli: Tk
