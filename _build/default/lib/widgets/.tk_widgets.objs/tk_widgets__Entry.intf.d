lib/widgets/entry.mli: Tk
