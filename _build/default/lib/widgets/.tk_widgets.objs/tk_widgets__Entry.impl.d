lib/widgets/entry.ml: Event Font Server String Tcl Tk Wutil Xsim
