lib/widgets/message.ml: Font List Server String Tk Wutil Xsim
