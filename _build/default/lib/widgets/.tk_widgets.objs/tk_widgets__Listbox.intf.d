lib/widgets/listbox.mli: Tk
