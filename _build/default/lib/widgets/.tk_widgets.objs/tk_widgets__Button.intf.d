lib/widgets/button.mli: Tk
