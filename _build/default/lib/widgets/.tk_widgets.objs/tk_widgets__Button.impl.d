lib/widgets/button.ml: Event Font Geom Hashtbl Server Tcl Tk Wutil Xsim
