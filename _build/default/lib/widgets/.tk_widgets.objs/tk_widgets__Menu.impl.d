lib/widgets/menu.ml: Event Font Geom List Server Tcl Tk Wutil Xsim
