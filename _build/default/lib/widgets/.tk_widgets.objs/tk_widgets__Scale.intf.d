lib/widgets/scale.mli: Tk
