lib/widgets/tk_widgets_lib.mli: Tk Xsim
