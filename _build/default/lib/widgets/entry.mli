(** Entry widgets: one-line editable text (paper §7 lists entries among the
    widgets under construction; §5 uses one for the Control-w
    backspace-over-word example).

    Built-in behaviour: printable keys insert at the cursor, BackSpace
    deletes backwards, Left/Right move the cursor, and clicking positions
    the cursor and takes the keyboard focus. Widget commands: [get],
    [insert index string], [delete first ?last?], [icursor index],
    [index]. *)

val install : Tk.Core.app -> unit

val contents : Tk.Core.widget -> string
val cursor_position : Tk.Core.widget -> int
