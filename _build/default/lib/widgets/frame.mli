(** Frames: featureless container widgets used as masters for geometry
    management (the paper's "panes"). *)

val install : Tk.Core.app -> unit
(** Register the [frame] creation command. *)
