(** The [regexp] and [regsub] commands:

    [regexp ?-nocase? ?-indices? exp string ?matchVar? ?subVar ...?]
    returns 1 if the expression matches and fills the optional variables
    with the (sub)matches — or their index ranges with [-indices].

    [regsub ?-all? ?-nocase? exp string subSpec varName] stores the
    substituted string in [varName] and returns the number of
    substitutions made. *)

val install : Interp.t -> unit
