(** String built-ins: the [string] ensemble (compare, match, length, index,
    range, tolower, toupper, trim*, first, last), printf-style [format] and
    its inverse [scan]. *)

val install : Interp.t -> unit

val format_string : string -> string list -> string
(** [format_string spec args] implements Tcl's [format]; exposed for tests.
    @raise Interp.Tcl_failure on bad specifiers or missing arguments. *)

val scan_string : string -> string -> (string list, string) result
(** [scan_string input fmt] implements the matching part of [scan]:
    returns the converted fields in order. *)
