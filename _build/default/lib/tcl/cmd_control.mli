(** Core built-in commands: variables ([set], [unset], [incr], [append],
    [global], [upvar], [uplevel]), control flow ([if], [while], [for],
    [foreach], [break], [continue]), procedures ([proc], [return]),
    evaluation ([eval], [catch], [error], [expr], [source], [time]),
    command management ([rename]) and output ([print], [puts]). *)

exception Exit_program of int
(** Raised by the [exit] command; the hosting application decides what to
    do (wish terminates the process). *)

val install : Interp.t -> unit
