(** The [info] introspection command: [exists], [commands], [procs],
    [body], [args], [default], [vars], [globals], [locals], [level],
    [cmdcount], [tclversion]. The paper highlights that Tcl "provides
    access to its own internals"; this is that access. *)

val install : Interp.t -> unit
