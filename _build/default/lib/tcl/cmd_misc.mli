(** Remaining Tcl-6-era commands: [case] (glob-style multiway branch, the
    pre-[switch] construct), the [array] ensemble ([exists], [names],
    [size]) and [history] ([event], [nextid], [redo] over the events
    recorded by the hosting shell). *)

val install : Interp.t -> unit
