type value = Int of int | Float of float | Str of string

type env = {
  get_var : string -> string;
  eval_cmd : string -> string;
}

exception Error of string

let error fmt = Format.kasprintf (fun msg -> raise (Error msg)) fmt

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%g" f

let to_string = function
  | Int i -> string_of_int i
  | Float f -> float_to_string f
  | Str s -> s

let number_of_string s =
  let s' = String.trim s in
  if s' = "" then None
  else
    match int_of_string_opt s' with
    | Some i -> Some (Int i)
    | None -> (
      match float_of_string_opt s' with
      | Some f -> Some (Float f)
      | None -> None)

let as_number v =
  match v with
  | Int _ | Float _ -> Some v
  | Str s -> number_of_string s

let require_number v =
  match as_number v with
  | Some n -> n
  | None -> error "expected number but got %S" (to_string v)

let as_int v =
  match require_number v with
  | Int i -> i
  | Float _ -> error "expected integer but got %S" (to_string v)
  | Str _ -> assert false

let truthy v =
  match as_number v with
  | Some (Int i) -> i <> 0
  | Some (Float f) -> f <> 0.0
  | Some (Str _) -> assert false
  | None -> (
    match String.lowercase_ascii (to_string v) with
    | "true" | "yes" | "on" -> true
    | "false" | "no" | "off" -> false
    | s -> error "expected boolean value but got %S" s)

(* ------------------------------------------------------------------ *)
(* Lexer *)

type token =
  | Num of value
  | Strval of string (* quoted or braced operand: compares as string *)
  | Ident of string (* math function name *)
  | Op of string
  | Lparen
  | Rparen
  | Comma
  | End

type lexer = {
  env : env;
  src : string;
  mutable pos : int;
  mutable tok : token;
  mutable skip : int;
      (* > 0 while parsing an operand that must not be evaluated: the
         unreached branch of &&, || or ?:. Substitutions are suppressed and
         operators return dummies, so side effects and spurious type errors
         (e.g. divide by zero in dead code) cannot occur. *)
}

let skipping lx = lx.skip > 0

let skipped lx thunk =
  lx.skip <- lx.skip + 1;
  Fun.protect ~finally:(fun () -> lx.skip <- lx.skip - 1) thunk

(* Read a $variable reference starting at the '$'; returns its value. *)
let read_variable lx =
  let s = lx.src and n = String.length lx.src in
  let start = lx.pos + 1 in
  let i = ref start in
  if !i < n && s.[!i] = '{' then begin
    let j = ref (!i + 1) in
    while !j < n && s.[!j] <> '}' do
      incr j
    done;
    if !j >= n then error "missing close-brace for variable name";
    let name = String.sub s (!i + 1) (!j - !i - 1) in
    lx.pos <- !j + 1;
    if skipping lx then "" else lx.env.get_var name
  end
  else begin
    while !i < n && Chars.is_var_char s.[!i] do
      incr i
    done;
    if !i = start then error "invalid character after $ in expression";
    let name_end = !i in
    if !i < n && s.[!i] = '(' then begin
      (* Array reference: scan to the matching ')'. *)
      let depth = ref 1 in
      incr i;
      while !i < n && !depth > 0 do
        (match s.[!i] with
        | '(' -> incr depth
        | ')' -> decr depth
        | _ -> ());
        incr i
      done;
      if !depth > 0 then error "missing close-paren in array reference";
      let name = String.sub s start (!i - start) in
      lx.pos <- !i;
      if skipping lx then "" else lx.env.get_var name
    end
    else begin
      let name = String.sub s start (name_end - start) in
      lx.pos <- name_end;
      if skipping lx then "" else lx.env.get_var name
    end
  end

(* Read a [command] substitution starting at the '['. *)
let read_command lx =
  let s = lx.src and n = String.length lx.src in
  let rec scan j depth =
    if j >= n then error "missing close-bracket in expression"
    else
      match s.[j] with
      | '\\' -> scan (j + 2) depth
      | '[' -> scan (j + 1) (depth + 1)
      | ']' -> if depth = 0 then j else scan (j + 1) (depth - 1)
      | _ -> scan (j + 1) depth
  in
  let close = scan (lx.pos + 1) 0 in
  let script = String.sub lx.src (lx.pos + 1) (close - lx.pos - 1) in
  lx.pos <- close + 1;
  if skipping lx then "" else lx.env.eval_cmd script

(* Read a "quoted string" operand, performing backslash, variable and
   command substitution inside. *)
let read_quoted lx =
  let s = lx.src and n = String.length lx.src in
  let buf = Buffer.create 16 in
  lx.pos <- lx.pos + 1;
  let rec go () =
    if lx.pos >= n then error "missing close quote in expression"
    else
      match s.[lx.pos] with
      | '"' ->
        lx.pos <- lx.pos + 1;
        Buffer.contents buf
      | '\\' ->
        let repl, j = Chars.backslash_subst s lx.pos in
        Buffer.add_string buf repl;
        lx.pos <- j;
        go ()
      | '$' ->
        Buffer.add_string buf (read_variable lx);
        go ()
      | '[' ->
        Buffer.add_string buf (read_command lx);
        go ()
      | c ->
        Buffer.add_char buf c;
        lx.pos <- lx.pos + 1;
        go ()
  in
  go ()

let read_braced lx =
  match Chars.find_matching_brace lx.src lx.pos with
  | None -> error "missing close brace in expression"
  | Some j ->
    let content = String.sub lx.src (lx.pos + 1) (j - lx.pos - 1) in
    lx.pos <- j + 1;
    content

let read_number lx =
  let s = lx.src and n = String.length lx.src in
  let start = lx.pos in
  let i = ref start in
  let is_num_char c =
    Chars.is_digit c || c = '.' || c = 'x' || c = 'X'
    || (c >= 'a' && c <= 'f')
    || (c >= 'A' && c <= 'F')
  in
  while !i < n && is_num_char s.[!i] do
    (* Accept exponent signs: "1e+5". *)
    if (s.[!i] = 'e' || s.[!i] = 'E')
       && !i + 1 < n
       && (s.[!i + 1] = '+' || s.[!i + 1] = '-')
       && not (String.length s > start + 1 && (s.[start + 1] = 'x' || s.[start + 1] = 'X'))
    then i := !i + 2
    else incr i
  done;
  let text = String.sub s start (!i - start) in
  lx.pos <- !i;
  match number_of_string text with
  | Some v -> v
  | None -> error "malformed number %S in expression" text

let rec next_token lx =
  let s = lx.src and n = String.length lx.src in
  while lx.pos < n && (Chars.is_space s.[lx.pos] || s.[lx.pos] = '\n') do
    lx.pos <- lx.pos + 1
  done;
  if lx.pos >= n then lx.tok <- End
  else
    let two op = lx.pos <- lx.pos + 2; lx.tok <- Op op in
    let one op = lx.pos <- lx.pos + 1; lx.tok <- Op op in
    let c = s.[lx.pos] in
    let c2 = if lx.pos + 1 < n then Some s.[lx.pos + 1] else None in
    match (c, c2) with
    | '(', _ -> lx.pos <- lx.pos + 1; lx.tok <- Lparen
    | ')', _ -> lx.pos <- lx.pos + 1; lx.tok <- Rparen
    | ',', _ -> lx.pos <- lx.pos + 1; lx.tok <- Comma
    | '$', _ -> lx.tok <- Strval (read_variable lx)
    | '[', _ -> lx.tok <- Strval (read_command lx)
    | '"', _ -> lx.tok <- Strval (read_quoted lx)
    | '{', _ -> lx.tok <- Strval (read_braced lx)
    | '\\', _ ->
      (* Backslash-newline continuation inside expressions. *)
      let repl, j = Chars.backslash_subst s lx.pos in
      if String.trim repl = "" then begin
        lx.pos <- j;
        next_token lx
      end
      else lx.tok <- Strval repl
    | '0' .. '9', _ -> lx.tok <- Num (read_number lx)
    | '.', Some d when Chars.is_digit d -> lx.tok <- Num (read_number lx)
    | '<', Some '<' -> two "<<"
    | '>', Some '>' -> two ">>"
    | '<', Some '=' -> two "<="
    | '>', Some '=' -> two ">="
    | '=', Some '=' -> two "=="
    | '!', Some '=' -> two "!="
    | '&', Some '&' -> two "&&"
    | '|', Some '|' -> two "||"
    | ('+' | '-' | '*' | '/' | '%' | '<' | '>' | '!' | '~' | '&' | '|' | '^' | '?' | ':'), _
      -> one (String.make 1 c)
    | ('a' .. 'z' | 'A' .. 'Z' | '_'), _ ->
      let i = ref lx.pos in
      while !i < n && Chars.is_var_char s.[!i] do
        incr i
      done;
      let name = String.sub s lx.pos (!i - lx.pos) in
      lx.pos <- !i;
      lx.tok <- Ident name
    | _ -> error "syntax error in expression near %C" c

(* ------------------------------------------------------------------ *)
(* Arithmetic on values *)

let arith name fi ff a b =
  match (require_number a, require_number b) with
  | Int x, Int y -> Int (fi x y)
  | (Int _ | Float _), (Int _ | Float _) ->
    let fx = match require_number a with Int x -> float_of_int x | Float f -> f | Str _ -> assert false in
    let fy = match require_number b with Int y -> float_of_int y | Float f -> f | Str _ -> assert false in
    (match ff with
    | Some f -> Float (f fx fy)
    | None -> error "can't use floating-point value as operand of %S" name)
  | _ -> assert false

let compare_values a b =
  match (as_number a, as_number b) with
  | Some (Int x), Some (Int y) -> compare x y
  | Some x, Some y ->
    let f = function Int i -> float_of_int i | Float f -> f | Str _ -> assert false in
    compare (f x) (f y)
  | _ -> String.compare (to_string a) (to_string b)

let int_div x y =
  if y = 0 then error "divide by zero"
  else
    (* Tcl division truncates toward negative infinity. *)
    let q = x / y and r = x mod y in
    if (r <> 0) && ((r < 0) <> (y < 0)) then q - 1 else q

let int_mod x y =
  if y = 0 then error "divide by zero"
  else
    let r = x mod y in
    if r <> 0 && (r < 0) <> (y < 0) then r + y else r

let bool_val b = Int (if b then 1 else 0)

(* ------------------------------------------------------------------ *)
(* Parser: precedence climbing *)

let rec parse_ternary lx =
  let cond = parse_binary lx 0 in
  match lx.tok with
  | Op "?" ->
    (* [next_token] performs substitution, so each branch's first token
       must be read under the right skip mode. *)
    let check_colon () =
      match lx.tok with
      | Op ":" -> ()
      | _ -> error "missing ':' in ternary expression"
    in
    if skipping lx then begin
      next_token lx;
      ignore (parse_ternary lx);
      check_colon ();
      next_token lx;
      ignore (parse_ternary lx);
      Int 0
    end
    else if truthy cond then begin
      next_token lx;
      let t = parse_ternary lx in
      check_colon ();
      skipped lx (fun () ->
          next_token lx;
          ignore (parse_ternary lx));
      t
    end
    else begin
      skipped lx (fun () ->
          next_token lx;
          ignore (parse_ternary lx));
      check_colon ();
      next_token lx;
      parse_ternary lx
    end
  | _ -> cond

and binary_level = function
  | "||" -> Some 1
  | "&&" -> Some 2
  | "|" -> Some 3
  | "^" -> Some 4
  | "&" -> Some 5
  | "==" | "!=" -> Some 6
  | "<" | ">" | "<=" | ">=" -> Some 7
  | "<<" | ">>" -> Some 8
  | "+" | "-" -> Some 9
  | "*" | "/" | "%" -> Some 10
  | _ -> None

and parse_binary lx min_level =
  let lhs = ref (parse_unary lx) in
  let continue_ = ref true in
  while !continue_ do
    match lx.tok with
    | Op op -> (
      match binary_level op with
      | Some level when level >= min_level ->
        (* Short-circuit for && and ||: the right side is parsed but not
           evaluated when the left side decides the result. The skip mode
           must be entered before [next_token] reads (and would otherwise
           substitute) the right side's first token. *)
        let parse_rhs_live () =
          next_token lx;
          parse_binary lx (level + 1)
        in
        let parse_rhs_skipped () =
          skipped lx (fun () ->
              next_token lx;
              ignore (parse_binary lx (level + 1)))
        in
        (match op with
        | ("&&" | "||") when skipping lx ->
          next_token lx;
          ignore (parse_binary lx (level + 1));
          lhs := Int 0
        | "&&" ->
          if truthy !lhs then lhs := bool_val (truthy (parse_rhs_live ()))
          else begin
            parse_rhs_skipped ();
            lhs := bool_val false
          end
        | "||" ->
          if truthy !lhs then begin
            parse_rhs_skipped ();
            lhs := bool_val true
          end
          else lhs := bool_val (truthy (parse_rhs_live ()))
        | _ ->
          let rhs = parse_rhs_live () in
          lhs := (if skipping lx then Int 0 else apply_binary op !lhs rhs))
      | _ -> continue_ := false)
    | _ -> continue_ := false
  done;
  !lhs

and apply_binary op a b =
  match op with
  | "+" -> arith "+" ( + ) (Some ( +. )) a b
  | "-" -> arith "-" ( - ) (Some ( -. )) a b
  | "*" -> arith "*" ( * ) (Some ( *. )) a b
  | "/" ->
    arith "/" int_div
      (Some
         (fun x y -> if y = 0.0 then error "divide by zero" else x /. y))
      a b
  | "%" -> Int (int_mod (as_int a) (as_int b))
  | "<<" -> Int (as_int a lsl as_int b)
  | ">>" -> Int (as_int a asr as_int b)
  | "&" -> Int (as_int a land as_int b)
  | "|" -> Int (as_int a lor as_int b)
  | "^" -> Int (as_int a lxor as_int b)
  | "==" -> bool_val (compare_values a b = 0)
  | "!=" -> bool_val (compare_values a b <> 0)
  | "<" -> bool_val (compare_values a b < 0)
  | ">" -> bool_val (compare_values a b > 0)
  | "<=" -> bool_val (compare_values a b <= 0)
  | ">=" -> bool_val (compare_values a b >= 0)
  | _ -> error "unknown operator %S" op

and parse_unary lx =
  match lx.tok with
  | Op (("-" | "+" | "!" | "~") as op) ->
    next_token lx;
    let v = parse_unary lx in
    if skipping lx then Int 0
    else (
      match op with
      | "-" -> (
        match require_number v with
        | Int i -> Int (-i)
        | Float f -> Float (-.f)
        | Str _ -> assert false)
      | "+" -> require_number v
      | "!" -> bool_val (not (truthy v))
      | _ -> Int (lnot (as_int v)))
  | _ -> parse_primary lx

and parse_primary lx =
  match lx.tok with
  | Num v ->
    next_token lx;
    v
  | Strval s ->
    next_token lx;
    (* A substituted operand is numeric if it looks numeric. *)
    (match number_of_string s with Some v -> v | None -> Str s)
  | Lparen ->
    next_token lx;
    let v = parse_ternary lx in
    (match lx.tok with
    | Rparen ->
      next_token lx;
      v
    | _ -> error "missing close paren in expression")
  | Ident name ->
    next_token lx;
    (match lx.tok with
    | Lparen ->
      next_token lx;
      let args = parse_args lx [] in
      if skipping lx then Int 0 else apply_function name args
    | _ -> (
      (* Bare words: accept booleans, else it is an error. *)
      match String.lowercase_ascii name with
      | "true" | "yes" | "on" -> Int 1
      | "false" | "no" | "off" -> Int 0
      | _ -> error "unknown operand %S in expression" name))
  | Op op -> error "unexpected operator %S in expression" op
  | Comma -> error "unexpected ',' in expression"
  | Rparen -> error "unexpected ')' in expression"
  | End -> error "premature end of expression"

and parse_args lx acc =
  match lx.tok with
  | Rparen ->
    next_token lx;
    List.rev acc
  | _ ->
    let v = parse_ternary lx in
    (match lx.tok with
    | Comma ->
      next_token lx;
      parse_args lx (v :: acc)
    | Rparen ->
      next_token lx;
      List.rev (v :: acc)
    | _ -> error "missing ')' in math function call")

and apply_function name args =
  let float1 f =
    match args with
    | [ a ] -> (
      match require_number a with
      | Int i -> Float (f (float_of_int i))
      | Float x -> Float (f x)
      | Str _ -> assert false)
    | _ -> error "math function %S takes one argument" name
  in
  let float2 f =
    match args with
    | [ a; b ] ->
      let fx = function Int i -> float_of_int i | Float x -> x | Str _ -> assert false in
      Float (f (fx (require_number a)) (fx (require_number b)))
    | _ -> error "math function %S takes two arguments" name
  in
  match name with
  | "abs" -> (
    match args with
    | [ a ] -> (
      match require_number a with
      | Int i -> Int (abs i)
      | Float f -> Float (Float.abs f)
      | Str _ -> assert false)
    | _ -> error "math function \"abs\" takes one argument")
  | "int" -> (
    match args with
    | [ a ] -> (
      match require_number a with
      | Int i -> Int i
      | Float f -> Int (int_of_float (Float.trunc f))
      | Str _ -> assert false)
    | _ -> error "math function \"int\" takes one argument")
  | "round" -> (
    match args with
    | [ a ] -> (
      match require_number a with
      | Int i -> Int i
      | Float f -> Int (int_of_float (Float.round f))
      | Str _ -> assert false)
    | _ -> error "math function \"round\" takes one argument")
  | "double" -> (
    match args with
    | [ a ] -> (
      match require_number a with
      | Int i -> Float (float_of_int i)
      | Float f -> Float f
      | Str _ -> assert false)
    | _ -> error "math function \"double\" takes one argument")
  | "sqrt" -> float1 sqrt
  | "sin" -> float1 sin
  | "cos" -> float1 cos
  | "tan" -> float1 tan
  | "asin" -> float1 asin
  | "acos" -> float1 acos
  | "atan" -> float1 atan
  | "exp" -> float1 exp
  | "log" -> float1 log
  | "log10" -> float1 log10
  | "floor" -> float1 Float.floor
  | "ceil" -> float1 Float.ceil
  | "pow" -> float2 ( ** )
  | "atan2" -> float2 atan2
  | "fmod" -> float2 Float.rem
  | "hypot" -> float2 Float.hypot
  | "min" -> float2 Float.min
  | "max" -> float2 Float.max
  | _ -> error "unknown math function %S" name

let eval env src =
  let lx = { env; src; pos = 0; tok = End; skip = 0 } in
  next_token lx;
  let v = parse_ternary lx in
  match lx.tok with
  | End -> v
  | _ -> error "extra tokens at end of expression %S" src

let eval_string env src = to_string (eval env src)

let eval_bool env src = truthy (eval env src)
