(** Glob-style pattern matching, as used by Tcl's [string match], [lsearch]
    and the Tk option database.

    Pattern syntax: [*] matches any sequence (possibly empty), [?] matches
    any single character, [\[a-z\]] matches a character range or set, and a
    backslash quotes the following character. *)

val matches : pattern:string -> string -> bool
(** [matches ~pattern s] is [true] iff [s] matches [pattern] in full. *)
