(* A compact backtracking matcher. Alternatives are tried left to right
   and repetition is greedy, which matches what Tcl scripts of the era
   relied on (not POSIX leftmost-longest across alternations). *)

type node =
  | Char of char
  | Any
  | Class of { negated : bool; ranges : (char * char) list }
  | Bol (* ^ *)
  | Eol (* $ *)
  | Star of node
  | Plus of node
  | Opt of node
  | Group of int * alternatives

and alternatives = node list list

type t = { alts : alternatives; group_count : int }

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Parser *)

type parser_state = {
  src : string;
  mutable pos : int;
  mutable groups : int;
}

let peek p = if p.pos < String.length p.src then Some p.src.[p.pos] else None

let advance p = p.pos <- p.pos + 1

let parse_class p =
  (* p.pos is just after '['. *)
  let negated =
    match peek p with
    | Some '^' ->
      advance p;
      true
    | _ -> false
  in
  let ranges = ref [] in
  let first = ref true in
  let rec go () =
    match peek p with
    | None -> raise (Parse_error "unmatched []")
    | Some ']' when not !first ->
      advance p;
      ()
    | Some c ->
      advance p;
      first := false;
      (* Range c-d unless the '-' is last in the class. *)
      (match (peek p, c) with
      | Some '-', _ ->
        advance p;
        (match peek p with
        | Some ']' ->
          (* Trailing '-' is a literal. *)
          ranges := ('-', '-') :: (c, c) :: !ranges;
          advance p
        | Some d ->
          advance p;
          if d < c then raise (Parse_error "invalid range in []");
          ranges := (c, d) :: !ranges;
          go ()
        | None -> raise (Parse_error "unmatched []"))
      | _ ->
        ranges := (c, c) :: !ranges;
        go ())
  in
  go ();
  Class { negated; ranges = List.rev !ranges }

let rec parse_alternatives p ~in_group =
  let first = parse_branch p ~in_group in
  match peek p with
  | Some '|' ->
    advance p;
    let rest = parse_alternatives p ~in_group in
    first :: rest
  | _ -> [ first ]

and parse_branch p ~in_group =
  let nodes = ref [] in
  let rec go () =
    match peek p with
    | None | Some '|' -> ()
    | Some ')' when in_group -> ()
    | Some ')' -> raise (Parse_error "unmatched ()")
    | Some _ ->
      let atom = parse_atom p in
      let atom =
        match peek p with
        | Some '*' ->
          advance p;
          Star atom
        | Some '+' ->
          advance p;
          Plus atom
        | Some '?' ->
          advance p;
          Opt atom
        | _ -> atom
      in
      nodes := atom :: !nodes;
      go ()
  in
  go ();
  List.rev !nodes

and parse_atom p =
  match peek p with
  | None -> raise (Parse_error "premature end of pattern")
  | Some '(' ->
    advance p;
    p.groups <- p.groups + 1;
    let index = p.groups in
    let alts = parse_alternatives p ~in_group:true in
    (match peek p with
    | Some ')' ->
      advance p;
      Group (index, alts)
    | _ -> raise (Parse_error "unmatched ()"))
  | Some '[' ->
    advance p;
    parse_class p
  | Some '.' ->
    advance p;
    Any
  | Some '^' ->
    advance p;
    Bol
  | Some '$' ->
    advance p;
    Eol
  | Some '\\' ->
    advance p;
    (match peek p with
    | None -> raise (Parse_error "backslash at end of pattern")
    | Some c ->
      advance p;
      (match c with
      | 'n' -> Char '\n'
      | 't' -> Char '\t'
      | 'r' -> Char '\r'
      | c -> Char c))
  | Some (('*' | '+' | '?') as c) ->
    raise (Parse_error (Printf.sprintf "dangling '%c'" c))
  | Some c ->
    advance p;
    Char c

let compile pattern =
  let p = { src = pattern; pos = 0; groups = 0 } in
  match parse_alternatives p ~in_group:false with
  | alts ->
    if p.pos < String.length pattern then
      Error "unmatched ()" (* a stray ')' is the only way to stop early *)
    else Ok { alts; group_count = p.groups }
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Matcher: continuation-passing backtracking with mutable captures. *)

let class_matches ~negated ranges c =
  let inside = List.exists (fun (lo, hi) -> c >= lo && c <= hi) ranges in
  inside <> negated

let find re s =
  let n = String.length s in
  let caps = Array.make (re.group_count + 1) (-1, -1) in
  let rec match_alts alts pos k =
    List.exists (fun branch -> match_seq branch pos k) alts
  and match_seq nodes pos k =
    match nodes with
    | [] -> k pos
    | node :: rest -> match_node node pos (fun pos' -> match_seq rest pos' k)
  and match_node node pos k =
    match node with
    | Char c -> pos < n && s.[pos] = c && k (pos + 1)
    | Any -> pos < n && k (pos + 1)
    | Class { negated; ranges } ->
      pos < n && class_matches ~negated ranges s.[pos] && k (pos + 1)
    | Bol -> pos = 0 && k pos
    | Eol -> pos = n && k pos
    | Opt inner -> match_node inner pos k || k pos
    | Star inner -> match_star inner pos k
    | Plus inner -> match_node inner pos (fun pos' -> match_star inner pos' k)
    | Group (index, alts) ->
      let saved = caps.(index) in
      let start = pos in
      match_alts alts pos (fun stop ->
          caps.(index) <- (start, stop);
          k stop || begin
            caps.(index) <- saved;
            false
          end)
  and match_star inner pos k =
    (* Greedy: consume as much as possible, backing off on failure. The
       pos' > pos guard stops empty-match loops such as a nested empty
       star. *)
    match_node inner pos (fun pos' -> pos' > pos && match_star inner pos' k)
    || k pos
  in
  let attempt start =
    Array.fill caps 0 (Array.length caps) (-1, -1);
    if
      match_alts re.alts start (fun stop ->
          caps.(0) <- (start, stop);
          true)
    then Some (Array.copy caps)
    else None
  in
  let rec scan start =
    if start > n then None
    else
      match attempt start with
      | Some caps -> Some caps
      | None -> scan (start + 1)
  in
  scan 0

let matches re s = find re s <> None

let expand_template template s caps =
  let buf = Buffer.create (String.length template + 16) in
  let group i =
    if i < Array.length caps then begin
      let start, stop = caps.(i) in
      if start >= 0 then Buffer.add_string buf (String.sub s start (stop - start))
    end
  in
  let n = String.length template in
  let i = ref 0 in
  while !i < n do
    (match template.[!i] with
    | '&' ->
      group 0;
      incr i
    | '\\' when !i + 1 < n -> (
      match template.[!i + 1] with
      | '0' .. '9' as d ->
        group (Char.code d - Char.code '0');
        i := !i + 2
      | c ->
        Buffer.add_char buf c;
        i := !i + 2)
    | c ->
      Buffer.add_char buf c;
      incr i)
  done;
  Buffer.contents buf

let replace re s ~template ~all =
  let buf = Buffer.create (String.length s + 16) in
  let count = ref 0 in
  let rec go offset =
    if offset > String.length s then ()
    else
      let tail = String.sub s offset (String.length s - offset) in
      match find re tail with
      | None -> Buffer.add_string buf tail
      | Some caps ->
        let start, stop = caps.(0) in
        Buffer.add_string buf (String.sub tail 0 start);
        Buffer.add_string buf (expand_template template tail caps);
        incr count;
        let next = offset + max stop (start + 1) in
        if all then begin
          (* An empty match still advances past the character. *)
          if stop = start && start < String.length tail then
            Buffer.add_char buf tail.[start];
          go next
        end
        else
          Buffer.add_string buf
            (String.sub tail stop (String.length tail - stop))
  in
  go 0;
  (Buffer.contents buf, !count)
