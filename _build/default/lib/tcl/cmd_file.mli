(** Filesystem and process commands: [file] (accepting both the modern
    ["file option name"] and the 1990-era ["file name option"] orders used
    by the paper's Figure 9), [glob], [pwd], [cd], [exec], and file
    channels ([open]/[close]/[gets]/[read]/[eof]/[flush], with [puts]
    extended to write to channels — [stdout] and [stderr] are
    predefined).

    [exec] captures the standard output of a shell command; it exists so
    the paper's browser script ([exec ls -a $dir]) runs verbatim. *)

val install : Interp.t -> unit
