(* Straightforward backtracking matcher; patterns are short in practice. *)

let matches ~pattern s =
  let np = String.length pattern and ns = String.length s in
  (* [set_matches j c] checks char [c] against the set starting after the
     '[' at index [j]; returns the index one past the closing ']' and the
     match outcome. A missing ']' treats the rest of the pattern as the
     set. *)
  let set_matches j c =
    let rec scan j found =
      if j >= np then (j, found)
      else if pattern.[j] = ']' then (j + 1, found)
      else if j + 2 < np && pattern.[j + 1] = '-' && pattern.[j + 2] <> ']'
      then
        let ok = c >= pattern.[j] && c <= pattern.[j + 2] in
        scan (j + 3) (found || ok)
      else scan (j + 1) (found || pattern.[j] = c)
    in
    scan j false
  in
  let rec go p i =
    if p >= np then i >= ns
    else
      match pattern.[p] with
      | '*' ->
        (* Collapse consecutive stars, then try every suffix. *)
        let p = ref p in
        while !p < np && pattern.[!p] = '*' do
          incr p
        done;
        if !p >= np then true
        else
          let rec try_from i = if i > ns then false else go !p i || try_from (i + 1) in
          try_from i
      | '?' -> i < ns && go (p + 1) (i + 1)
      | '[' ->
        i < ns
        &&
        let next, ok = set_matches (p + 1) s.[i] in
        ok && go next (i + 1)
      | '\\' when p + 1 < np -> i < ns && s.[i] = pattern.[p + 1] && go (p + 2) (i + 1)
      | c -> i < ns && s.[i] = c && go (p + 1) (i + 1)
  in
  go 0 0
