(** Character classification and backslash processing shared by the Tcl
    parser, the expression evaluator and the list parser. *)

val is_space : char -> bool
(** Horizontal whitespace (space, tab, CR, FF, VT) — separates words. *)

val is_command_end : char -> bool
(** Newline or semicolon — terminates a command outside braces/quotes. *)

val is_var_char : char -> bool
(** Characters allowed in a variable name after [$]: letters, digits, [_]. *)

val is_digit : char -> bool

val backslash_subst : string -> int -> string * int
(** [backslash_subst s i] interprets the backslash sequence starting at the
    backslash [s.[i]]. Returns the replacement text and the index of the
    first character after the sequence. Handles the standard Tcl escapes
    ([\n], [\t], [\r], [\b], [\f], [\v], [\e]), backslash-newline (which
    becomes a single space, also consuming leading whitespace of the next
    line), [\xHH] hexadecimal and [\ooo] octal escapes; any other character
    is passed through unchanged. *)

val find_matching_brace : string -> int -> int option
(** [find_matching_brace s i] with [s.[i] = '{'] returns the index of the
    matching ['}'], honouring nested braces and backslash escapes. *)
