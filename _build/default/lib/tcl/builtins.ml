let install t =
  Cmd_control.install t;
  Cmd_list.install t;
  Cmd_string.install t;
  Cmd_info.install t;
  Cmd_file.install t;
  Cmd_regexp.install t;
  Cmd_misc.install t

let new_interp () =
  let t = Interp.create () in
  install t;
  t
