(** A regular-expression engine for the [regexp] and [regsub] commands
    (present in Tcl since the 1989 distributions).

    Supported syntax — the egrep subset Tcl 6 documented:
    [.], [*], [+], [?], [^], [$], character classes [\[a-z\]] (with ranges
    and [^] negation), grouping [( )], alternation [|], and backslash to
    quote a metacharacter. Groups capture for use in [regsub]'s
    [\1]..[\9] and [regexp]'s match variables. *)

type t

val compile : string -> (t, string) result
(** Compile a pattern; errors mirror Tcl's (unmatched parenthesis, bad
    bracket expression, dangling repetition). *)

val find : t -> string -> (int * int) array option
(** [find re s] searches for the leftmost match. On success returns an
    array of [(start, stop)] byte offsets (end exclusive): slot 0 is the
    whole match, slots 1.. are capture groups ([(-1, -1)] for groups that
    did not participate). *)

val matches : t -> string -> bool

val replace : t -> string -> template:string -> all:bool -> string * int
(** [replace re s ~template ~all] implements [regsub]: replaces the first
    (or every, with [all]) match by [template], in which [&] and [\0]
    denote the whole match and [\1]..[\9] the capture groups. Returns the
    new string and the number of substitutions made. *)
