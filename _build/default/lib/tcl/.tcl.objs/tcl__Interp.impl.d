lib/tcl/interp.ml: Buffer Chars Expr Format Fun Hashtbl List Printf Stdlib String Tcl_list
