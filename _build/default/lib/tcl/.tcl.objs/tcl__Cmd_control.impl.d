lib/tcl/cmd_control.ml: Expr In_channel Interp List Option Printf Stdlib String Sys Tcl_list
