lib/tcl/cmd_info.mli: Interp
