lib/tcl/builtins.mli: Interp
