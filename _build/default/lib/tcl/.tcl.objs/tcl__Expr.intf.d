lib/tcl/expr.mli:
