lib/tcl/cmd_regexp.mli: Interp
