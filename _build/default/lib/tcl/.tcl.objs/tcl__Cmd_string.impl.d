lib/tcl/cmd_string.ml: Buffer Char Chars Expr Glob Interp List Option Printf Stdlib String
