lib/tcl/interp.mli: Expr Format Stdlib
