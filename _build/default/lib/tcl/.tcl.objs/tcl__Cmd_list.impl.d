lib/tcl/cmd_list.ml: Buffer Glob Interp List Option Stdlib String Tcl_list
