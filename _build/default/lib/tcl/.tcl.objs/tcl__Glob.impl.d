lib/tcl/glob.ml: String
