lib/tcl/chars.mli:
