lib/tcl/cmd_misc.mli: Interp
