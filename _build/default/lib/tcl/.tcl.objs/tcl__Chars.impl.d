lib/tcl/chars.ml: Char String
