lib/tcl/cmd_file.mli: Interp
