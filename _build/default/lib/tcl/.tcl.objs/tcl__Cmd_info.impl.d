lib/tcl/cmd_info.ml: Glob Interp List Tcl_list
