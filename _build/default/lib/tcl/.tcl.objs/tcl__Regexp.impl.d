lib/tcl/regexp.ml: Array Buffer Char List Printf String
