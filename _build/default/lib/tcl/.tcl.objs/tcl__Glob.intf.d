lib/tcl/glob.mli:
