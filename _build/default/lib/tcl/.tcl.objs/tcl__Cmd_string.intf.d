lib/tcl/cmd_string.mli: Interp
