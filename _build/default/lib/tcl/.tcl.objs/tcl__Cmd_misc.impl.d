lib/tcl/cmd_misc.ml: Glob Interp List Printf Stdlib String Tcl_list
