lib/tcl/builtins.ml: Cmd_control Cmd_file Cmd_info Cmd_list Cmd_misc Cmd_regexp Cmd_string Interp
