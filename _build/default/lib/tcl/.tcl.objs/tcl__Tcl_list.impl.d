lib/tcl/tcl_list.ml: Buffer Chars List Result String
