lib/tcl/regexp.mli:
