lib/tcl/tcl_list.mli:
