lib/tcl/cmd_file.ml: Array Bytes Filename Fun Glob Hashtbl In_channel Int64 Interp List Printf String Sys Tcl_list
