lib/tcl/cmd_list.mli: Interp
