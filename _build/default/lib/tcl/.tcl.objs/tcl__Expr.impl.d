lib/tcl/expr.ml: Buffer Chars Float Format Fun List Printf String
