lib/tcl/cmd_regexp.ml: Array Buffer Char Interp List Printf Regexp String
