lib/tcl/cmd_control.mli: Interp
