(** List built-ins: [list], [lindex], [llength], [lrange], [lappend],
    [linsert], [lreplace], [lsearch], [lsort], [concat], [split], [join],
    plus the Tcl-1990 era aliases [index], [range] and [length] used by the
    paper's Figure 9 browser script. *)

val install : Interp.t -> unit
