(** Installation of the complete built-in command set (Figure 6's
    "Tcl library" box): control flow, variables, procedures, lists,
    strings, introspection and filesystem commands. *)

val install : Interp.t -> unit
(** Register every built-in command in an interpreter. *)

val new_interp : unit -> Interp.t
(** [create] + [install]: a ready-to-use Tcl interpreter. *)
