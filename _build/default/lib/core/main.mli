(** Convenience entry point: create a fully wired Tk application — server
    connection, Tcl interpreter with the built-in command set, the Tk
    intrinsics commands, and the main window ["."]. The widget set is
    installed separately ([Tk_widgets.install]) so the intrinsics stay
    independent of any particular widget library, as in the paper. *)

val create :
  ?app_class:string -> server:Xsim.Server.t -> name:string -> unit -> Core.app
(** [create ~server ~name ()] = {!Core.create_app} + {!Tkcmd.install}. *)
