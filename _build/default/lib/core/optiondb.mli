(** The option database (paper §3.5) — Tk's version of the Xt resource
    manager. Users state preferences as patterns like

    {v *Button.background: red v}

    and widgets query the database when they configure themselves.

    A pattern is a sequence of components separated by [.] (tight binding:
    exactly one level) or [*] (loose binding: any number of levels). Each
    component matches a window's name or its class; the final component is
    the option name or option class. More specific patterns win: name
    matches beat class matches beat [*], with earlier (outer) components
    weighing most, and explicit priority levels override everything. *)

type t

val create : unit -> t

val add : t -> ?priority:int -> pattern:string -> string -> unit
(** [add db ~pattern value] — priority 0–100, default 60 (Tk's
    "interactive" level). *)

val get :
  t ->
  name_chain:(string * string) list ->
  name:string ->
  cls:string ->
  string option
(** [get db ~name_chain ~name ~cls] looks up option [name] (with option
    class [cls]) for the window whose (window-name, window-class) pairs
    from the application root down are [name_chain] — e.g.
    [\[("browse", "Wish"); ("list", "Listbox")\]]. *)

val clear : t -> unit

val load_string : t -> ?priority:int -> string -> (int, string) result
(** Parse .Xdefaults-style text ([pattern: value] lines, [!] or [#]
    comments); returns the number of entries added. *)

val size : t -> int
