(** Window path names (paper §3.1): ["."] is the application's main window
    and [".a.b.c"] names window [c] inside [b] inside [a] inside the main
    window. *)

val is_valid : string -> bool
(** A syntactically valid path: ["."] or dot-separated non-empty components
    that don't contain dots or start with an upper-case letter (upper-case
    leading letters are reserved for classes in the option database). *)

val parent : string -> string option
(** [".a.b" -> Some ".a"], [".a" -> Some "."], ["." -> None]. *)

val basename : string -> string
(** The last component: [".a.b" -> "b"]; ["." -> "."]. *)

val components : string -> string list
(** All name components from the root down, excluding the main window:
    [".a.b" -> \["a"; "b"\]]; ["." -> \[\]]. *)

val join : string -> string -> string
(** [join "." "a" = ".a"], [join ".a" "b" = ".a.b"]. *)

val is_ancestor : ancestor:string -> string -> bool
(** Is [ancestor] a proper ancestor of the path (or equal to it)? Used for
    recursive destroy. *)
