type component = Name_or_class of string | Star

type entry = {
  components : component list; (* including the final option component *)
  value : string;
  priority : int;
  serial : int; (* later entries win ties *)
}

type t = { mutable entries : entry list; mutable next_serial : int }

let create () = { entries = []; next_serial = 0 }

let clear t = t.entries <- []

let size t = List.length t.entries

(* Parse "*Button.background" into components. A '*' both separates and
   matches any number of levels. *)
let parse_pattern pattern =
  let n = String.length pattern in
  let out = ref [] in
  let buf = Buffer.create 16 in
  let flush_name () =
    if Buffer.length buf > 0 then begin
      out := Name_or_class (Buffer.contents buf) :: !out;
      Buffer.clear buf
    end
  in
  for i = 0 to n - 1 do
    match pattern.[i] with
    | '.' -> flush_name ()
    | '*' ->
      flush_name ();
      (match !out with Star :: _ -> () | _ -> out := Star :: !out)
    | c -> Buffer.add_char buf c
  done;
  flush_name ();
  List.rev !out

let add t ?(priority = 60) ~pattern value =
  let components = parse_pattern pattern in
  if components <> [] then begin
    t.entries <-
      { components; value; priority; serial = t.next_serial } :: t.entries;
    t.next_serial <- t.next_serial + 1
  end

(* Match a pattern against the full key: the (name, class) pairs of the
   window chain plus the final (option-name, option-class) pair. Returns a
   specificity score, higher = more specific; None = no match.

   Scoring: per level, a name match scores 2 and a class match 1, weighted
   so that earlier levels dominate later ones; levels consumed by a Star
   score 0. *)
let match_score components key =
  let weight depth = 1 lsl (2 * max 0 (20 - depth)) in
  let rec go comps key depth =
    match (comps, key) with
    | [], [] -> Some 0
    | [], _ :: _ -> None
    | Star :: rest, _ ->
      (* Try consuming 0..n levels. Take the best score. *)
      let rec try_skip key best =
        let attempt = go rest key depth in
        let best =
          match (attempt, best) with
          | Some s, Some b -> Some (max s b)
          | Some s, None -> Some s
          | None, b -> b
        in
        match key with
        | [] -> best
        | _ :: tl -> try_skip tl best
      in
      try_skip key None
    | Name_or_class c :: rest, (name, cls) :: tl ->
      if c = name then
        Option.map (fun s -> s + (2 * weight depth)) (go rest tl (depth + 1))
      else if c = cls then
        Option.map (fun s -> s + weight depth) (go rest tl (depth + 1))
      else None
    | Name_or_class _ :: _, [] -> None
  in
  go components key 0

let get t ~name_chain ~name ~cls =
  let key = name_chain @ [ (name, cls) ] in
  let best = ref None in
  List.iter
    (fun e ->
      match match_score e.components key with
      | None -> ()
      | Some score ->
        let candidate = (e.priority, score, e.serial, e.value) in
        (match !best with
        | None -> best := Some candidate
        | Some (bp, bs, bserial, _) ->
          if
            e.priority > bp
            || (e.priority = bp && score > bs)
            || (e.priority = bp && score = bs && e.serial > bserial)
          then best := Some candidate))
    t.entries;
  Option.map (fun (_, _, _, v) -> v) !best

let load_string t ?priority text =
  let count = ref 0 in
  let error = ref None in
  List.iteri
    (fun lineno line ->
      let line = String.trim line in
      if line = "" || line.[0] = '!' || line.[0] = '#' then ()
      else
        match String.index_opt line ':' with
        | None ->
          if !error = None then
            error := Some (Printf.sprintf "missing colon on line %d" (lineno + 1))
        | Some i ->
          let pattern = String.trim (String.sub line 0 i) in
          let value =
            String.trim (String.sub line (i + 1) (String.length line - i - 1))
          in
          add t ?priority ~pattern value;
          incr count)
    (String.split_on_char '\n' text);
  match !error with Some msg -> Error msg | None -> Ok !count
