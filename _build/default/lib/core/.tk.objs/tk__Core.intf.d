lib/core/core.mli: Bindpattern Color Dispatch Event Font Gcontext Hashtbl Optiondb Rescache Server Tcl Xid Xsim
