lib/core/optiondb.mli:
