lib/core/selection.ml: Atom Core Event Hashtbl List Option Server Tcl Window Xid Xsim
