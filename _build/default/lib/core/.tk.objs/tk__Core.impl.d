lib/core/core.ml: Atom Bindpattern Buffer Color Dispatch Event Float Font Geom Hashtbl List Option Optiondb Path Printf Rescache Server String Tcl Unix Window Xid Xsim
