lib/core/main.ml: Core Tkcmd
