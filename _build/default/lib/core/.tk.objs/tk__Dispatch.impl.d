lib/core/dispatch.ml: List Unix
