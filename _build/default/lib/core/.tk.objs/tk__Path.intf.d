lib/core/path.mli:
