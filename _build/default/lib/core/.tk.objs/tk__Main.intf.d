lib/core/main.mli: Core Xsim
