lib/core/sendcmd.mli: Core
