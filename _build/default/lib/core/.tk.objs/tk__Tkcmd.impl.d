lib/core/tkcmd.ml: Core Dispatch Hashtbl In_channel List Option Optiondb Pack Path Place Printf Selection Sendcmd String Tcl Unix Xsim
