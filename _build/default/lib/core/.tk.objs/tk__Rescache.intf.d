lib/core/rescache.mli: Xsim
