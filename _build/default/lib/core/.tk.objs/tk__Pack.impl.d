lib/core/pack.ml: Core Fun Hashtbl List Path String Tcl
