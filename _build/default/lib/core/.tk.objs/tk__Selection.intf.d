lib/core/selection.mli: Core
