lib/core/pack.mli: Core
