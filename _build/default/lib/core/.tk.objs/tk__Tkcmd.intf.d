lib/core/tkcmd.mli: Core
