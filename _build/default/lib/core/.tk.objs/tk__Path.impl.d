lib/core/path.ml: Char List String
