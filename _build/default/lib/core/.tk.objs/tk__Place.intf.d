lib/core/place.mli: Core
