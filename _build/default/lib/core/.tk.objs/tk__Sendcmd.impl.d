lib/core/sendcmd.ml: Atom Core Event List Printf Server String Tcl Window Xsim
