lib/core/place.ml: Core Hashtbl List Option Path Printf String Tcl
