lib/core/optiondb.ml: Buffer List Option Printf String
