lib/core/dispatch.mli: Unix
