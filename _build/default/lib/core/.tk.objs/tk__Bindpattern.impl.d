lib/core/bindpattern.ml: Event List Option Printf String Xsim
