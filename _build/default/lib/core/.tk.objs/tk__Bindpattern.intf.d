lib/core/bindpattern.mli: Xsim
