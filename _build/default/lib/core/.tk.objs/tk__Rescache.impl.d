lib/core/rescache.ml: Bitmap Color Cursor Font Gcontext Hashtbl Option Printf Server String Xsim
