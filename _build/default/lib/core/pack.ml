let failf = Tcl.Interp.failf

type side = Top | Bottom | Left | Right

type opts = {
  side : side;
  fill_x : bool;
  fill_y : bool;
  expand : bool;
  padx : int;
  pady : int;
  anchor : Core.anchor; (* position within the parcel ("frame" option) *)
}

let default_opts =
  {
    side = Top;
    fill_x = false;
    fill_y = false;
    expand = false;
    padx = 0;
    pady = 0;
    anchor = Core.Center;
  }

type slave = { sw : Core.widget; mutable opts : opts }

(* Packing lists live beside the app (keyed physically, so several apps on
   several displays don't interfere). *)
type state = {
  app : Core.app;
  masters : (string, slave list ref) Hashtbl.t;
  mutable arranging : string list; (* masters currently being laid out *)
}

let states : state list ref = ref []

let cleanup_registered = ref false

let state_for app =
  if not !cleanup_registered then begin
    cleanup_registered := true;
    Core.add_destroy_hook (fun dead ->
        states := List.filter (fun s -> s.app != dead) !states)
  end;
  match List.find_opt (fun s -> s.app == app) !states with
  | Some s -> s
  | None ->
    let s = { app; masters = Hashtbl.create 16; arranging = [] } in
    states := s :: !states;
    s

let side_name = function
  | Top -> "top"
  | Bottom -> "bottom"
  | Left -> "left"
  | Right -> "right"

let parse_opts text =
  let words =
    match Tcl.Tcl_list.parse text with
    | Ok w -> w
    | Error msg -> failf "%s" msg
  in
  let rec go opts = function
    | [] -> opts
    | "top" :: rest -> go { opts with side = Top } rest
    | "bottom" :: rest -> go { opts with side = Bottom } rest
    | "left" :: rest -> go { opts with side = Left } rest
    | "right" :: rest -> go { opts with side = Right } rest
    | "fill" :: rest -> go { opts with fill_x = true; fill_y = true } rest
    | "fillx" :: rest -> go { opts with fill_x = true } rest
    | "filly" :: rest -> go { opts with fill_y = true } rest
    | "expand" :: rest -> go { opts with expand = true } rest
    | "padx" :: n :: rest -> (
      match Core.parse_pixels n with
      | Some px -> go { opts with padx = px } rest
      | None -> failf "bad pad value \"%s\"" n)
    | "pady" :: n :: rest -> (
      match Core.parse_pixels n with
      | Some px -> go { opts with pady = px } rest
      | None -> failf "bad pad value \"%s\"" n)
    | "frame" :: anchor :: rest -> (
      match anchor with
      | "n" -> go { opts with anchor = Core.N } rest
      | "ne" -> go { opts with anchor = Core.NE } rest
      | "e" -> go { opts with anchor = Core.E } rest
      | "se" -> go { opts with anchor = Core.SE } rest
      | "s" -> go { opts with anchor = Core.S } rest
      | "sw" -> go { opts with anchor = Core.SW } rest
      | "w" -> go { opts with anchor = Core.W } rest
      | "nw" -> go { opts with anchor = Core.NW } rest
      | "center" -> go { opts with anchor = Core.Center } rest
      | bad -> failf "bad anchor \"%s\" in \"frame\" option" bad)
    | bad :: _ ->
      failf
        "bad option \"%s\": should be top, bottom, left, right, expand, \
         fill, fillx, filly, padx, pady, or frame"
        bad
  in
  go default_opts words

(* ------------------------------------------------------------------ *)
(* Layout (a port of tkPack.c's ArrangePacking) *)

let req_w s = s.sw.Core.req_width + (2 * s.opts.padx)
let req_h s = s.sw.Core.req_height + (2 * s.opts.pady)

(* How much extra width an expanding left/right slave may take: the
   leftover cavity width divided among the expanding slaves that remain. *)
let x_expansion slaves cavity_width =
  let rec go slaves cavity num_expand min_expand =
    match slaves with
    | [] ->
      let current =
        if num_expand > 0 then cavity / num_expand else min_expand
      in
      max 0 (min min_expand current)
    | s :: rest -> (
      match s.opts.side with
      | Top | Bottom ->
        let current =
          if num_expand > 0 then (cavity - req_w s) / num_expand
          else min_expand
        in
        go rest cavity num_expand (min min_expand current)
      | Left | Right ->
        go rest (cavity - req_w s)
          (if s.opts.expand then num_expand + 1 else num_expand)
          min_expand)
  in
  go slaves cavity_width 0 max_int

let y_expansion slaves cavity_height =
  let rec go slaves cavity num_expand min_expand =
    match slaves with
    | [] ->
      let current =
        if num_expand > 0 then cavity / num_expand else min_expand
      in
      max 0 (min min_expand current)
    | s :: rest -> (
      match s.opts.side with
      | Left | Right ->
        let current =
          if num_expand > 0 then (cavity - req_h s) / num_expand
          else min_expand
        in
        go rest cavity num_expand (min min_expand current)
      | Top | Bottom ->
        go rest (cavity - req_h s)
          (if s.opts.expand then num_expand + 1 else num_expand)
          min_expand)
  in
  go slaves cavity_height 0 max_int

(* The master's requested size: what the slaves need (geometry
   propagation). *)
let compute_request slaves =
  let rec go slaves x y max_w max_h =
    match slaves with
    | [] -> (max x max_w, max y max_h)
    | s :: rest -> (
      match s.opts.side with
      | Top | Bottom ->
        go rest x (y + req_h s) (max max_w (x + req_w s)) max_h
      | Left | Right ->
        go rest (x + req_w s) y max_w (max max_h (y + req_h s)))
  in
  go slaves 0 0 0 0

let arrange_now state master =
  match Hashtbl.find_opt state.masters master.Core.path with
  | None | Some { contents = [] } -> ()
  | Some { contents = slaves } ->
    let slaves = List.filter (fun s -> not s.sw.Core.destroyed) slaves in
    (* Geometry propagation: tell the master how big it wants to be. *)
    let want_w, want_h = compute_request slaves in
    if want_w > 0 && want_h > 0 then
      Core.request_size master ~width:want_w ~height:want_h;
    (* Arrange into the actual size. *)
    let rec place slaves cavity_x cavity_y cavity_w cavity_h =
      match slaves with
      | [] -> ()
      | s :: rest ->
        let frame_x, frame_y, frame_w, frame_h, cavity_x, cavity_y, cavity_w, cavity_h
            =
          match s.opts.side with
          | Top | Bottom ->
            let fh = req_h s in
            let fh =
              if s.opts.expand then fh + y_expansion slaves cavity_h else fh
            in
            let fh, ch = if fh > cavity_h then (cavity_h, 0) else (fh, cavity_h - fh) in
            let fy =
              if s.opts.side = Top then cavity_y else cavity_y + ch
            in
            let cy = if s.opts.side = Top then cavity_y + fh else cavity_y in
            (cavity_x, fy, cavity_w, fh, cavity_x, cy, cavity_w, ch)
          | Left | Right ->
            let fw = req_w s in
            let fw =
              if s.opts.expand then fw + x_expansion slaves cavity_w else fw
            in
            let fw, cw = if fw > cavity_w then (cavity_w, 0) else (fw, cavity_w - fw) in
            let fx =
              if s.opts.side = Left then cavity_x else cavity_x + cw
            in
            let cx = if s.opts.side = Left then cavity_x + fw else cavity_x in
            (fx, cavity_y, fw, cavity_h, cx, cavity_y, cw, cavity_h)
        in
        (* Position the slave inside its frame. *)
        let avail_w = frame_w - (2 * s.opts.padx) in
        let avail_h = frame_h - (2 * s.opts.pady) in
        let width =
          if s.opts.fill_x || s.sw.Core.req_width > avail_w then avail_w
          else s.sw.Core.req_width
        in
        let height =
          if s.opts.fill_y || s.sw.Core.req_height > avail_h then avail_h
          else s.sw.Core.req_height
        in
        if width <= 0 || height <= 0 then Core.unmap_widget s.sw
        else begin
          let hslack = avail_w - width and vslack = avail_h - height in
          let dx =
            match s.opts.anchor with
            | Core.NW | Core.W | Core.SW -> 0
            | Core.NE | Core.E | Core.SE -> hslack
            | Core.N | Core.S | Core.Center -> hslack / 2
          in
          let dy =
            match s.opts.anchor with
            | Core.NW | Core.N | Core.NE -> 0
            | Core.SW | Core.S | Core.SE -> vslack
            | Core.W | Core.E | Core.Center -> vslack / 2
          in
          let x = frame_x + s.opts.padx + dx in
          let y = frame_y + s.opts.pady + dy in
          Core.move_resize s.sw ~x ~y ~width ~height;
          Core.map_widget s.sw
        end;
        place rest cavity_x cavity_y cavity_w cavity_h
    in
    place slaves 0 0 master.Core.width master.Core.height

let arrange master =
  let state = state_for master.Core.app in
  let path = master.Core.path in
  (* request_size on the master can re-enter (the master may itself be a
     packed slave); the per-master guard keeps the recursion shallow while
     still letting enclosing masters re-layout. *)
  if not (List.mem path state.arranging) then begin
    state.arranging <- path :: state.arranging;
    Fun.protect
      ~finally:(fun () ->
        state.arranging <- List.filter (fun p -> p <> path) state.arranging)
      (fun () ->
        arrange_now state master;
        (* A second pass picks up the size the master was just granted. *)
        arrange_now state master)
  end

let manager_for state master =
  {
    Core.gm_name = "pack";
    gm_slave_request =
      (fun _slave ->
        if not master.Core.destroyed then arrange master);
    gm_lost_slave =
      (fun slave ->
        match Hashtbl.find_opt state.masters master.Core.path with
        | Some cell -> cell := List.filter (fun s -> s.sw != slave) !cell
        | None -> ());
  }

let append ~master pairs =
  let state = state_for master.Core.app in
  let cell =
    match Hashtbl.find_opt state.masters master.Core.path with
    | Some cell -> cell
    | None ->
      let cell = ref [] in
      Hashtbl.replace state.masters master.Core.path cell;
      cell
  in
  List.iter
    (fun (w, opts) ->
      (match Path.parent w.Core.path with
      | Some p when p = master.Core.path -> ()
      | _ ->
        failf "can't pack %s inside %s: not its parent" w.Core.path
          master.Core.path);
      (match w.Core.geom_mgr with
      | Some mgr when mgr.Core.gm_name = "pack" ->
        (* Repacking: drop any previous entry. *)
        cell := List.filter (fun s -> s.sw != w) !cell
      | Some mgr -> mgr.Core.gm_lost_slave w
      | None -> ());
      w.Core.geom_mgr <- Some (manager_for state master);
      cell := !cell @ [ { sw = w; opts } ])
    pairs;
  arrange master

let find_master state w =
  Hashtbl.fold
    (fun master_path cell acc ->
      if List.exists (fun s -> s.sw == w) !cell then Some (master_path, cell)
      else acc)
    state.masters None

let unpack w =
  let state = state_for w.Core.app in
  match find_master state w with
  | None -> ()
  | Some (master_path, cell) ->
    cell := List.filter (fun s -> s.sw != w) !cell;
    w.Core.geom_mgr <- None;
    Core.unmap_widget w;
    (match Core.lookup w.Core.app master_path with
    | Some master when not master.Core.destroyed -> arrange master
    | Some _ | None -> ())

let slaves master =
  let state = state_for master.Core.app in
  match Hashtbl.find_opt state.masters master.Core.path with
  | None -> []
  | Some cell -> List.map (fun s -> s.sw) !cell

let info master =
  let state = state_for master.Core.app in
  match Hashtbl.find_opt state.masters master.Core.path with
  | None -> ""
  | Some cell ->
    Tcl.Tcl_list.format
      (List.concat_map
         (fun s ->
           let flags =
             [ side_name s.opts.side ]
             @ (if s.opts.fill_x && s.opts.fill_y then [ "fill" ]
                else if s.opts.fill_x then [ "fillx" ]
                else if s.opts.fill_y then [ "filly" ]
                else [])
             @ (if s.opts.expand then [ "expand" ] else [])
             @ (if s.opts.padx > 0 then [ "padx"; string_of_int s.opts.padx ]
                else [])
             @
             if s.opts.pady > 0 then [ "pady"; string_of_int s.opts.pady ]
             else []
           in
           [ s.sw.Core.path; Tcl.Tcl_list.format flags ])
         !cell)

(* ------------------------------------------------------------------ *)
(* The Tcl command *)

(* Modern-style arguments as a convenience: pack .w -side left -expand 1. *)
let parse_modern app = function
  | path :: rest ->
    let w = Core.lookup_exn app path in
    let rec go opts = function
      | [] -> (w, opts)
      | "-side" :: v :: rest ->
        let side =
          match v with
          | "top" -> Top
          | "bottom" -> Bottom
          | "left" -> Left
          | "right" -> Right
          | _ -> failf "bad side \"%s\"" v
        in
        go { opts with side } rest
      | "-fill" :: v :: rest -> (
        match v with
        | "x" -> go { opts with fill_x = true } rest
        | "y" -> go { opts with fill_y = true } rest
        | "both" -> go { opts with fill_x = true; fill_y = true } rest
        | "none" -> go { opts with fill_x = false; fill_y = false } rest
        | _ -> failf "bad fill style \"%s\"" v)
      | "-expand" :: v :: rest ->
        go { opts with expand = (v <> "0" && v <> "false" && v <> "no") } rest
      | "-padx" :: v :: rest -> (
        match Core.parse_pixels v with
        | Some px -> go { opts with padx = px } rest
        | None -> failf "bad pad value \"%s\"" v)
      | "-pady" :: v :: rest -> (
        match Core.parse_pixels v with
        | Some px -> go { opts with pady = px } rest
        | None -> failf "bad pad value \"%s\"" v)
      | bad :: _ -> failf "bad option \"%s\"" bad
    in
    go default_opts rest
  | [] -> failf "wrong # args in pack command"

let command app : Tcl.Interp.command =
 fun _interp words ->
  let ok = Tcl.Interp.ok in
  match words with
  | _ :: "append" :: master_path :: rest ->
    let master = Core.lookup_exn app master_path in
    let rec pairs = function
      | [] -> []
      | path :: opts :: rest ->
        (Core.lookup_exn app path, parse_opts opts) :: pairs rest
      | [ path ] -> [ (Core.lookup_exn app path, default_opts) ]
    in
    append ~master (pairs rest);
    ok ""
  | _ :: "unpack" :: paths ->
    List.iter (fun p -> unpack (Core.lookup_exn app p)) paths;
    ok ""
  | [ _; "info"; master_path ] ->
    ok (info (Core.lookup_exn app master_path))
  | [ _; "slaves"; master_path ] ->
    ok
      (Tcl.Tcl_list.format
         (List.map (fun w -> w.Core.path) (slaves (Core.lookup_exn app master_path))))
  | _ :: (first :: _ as rest)
    when String.length first > 0 && first.[0] = '.' ->
    let w, opts = parse_modern app rest in
    let master_path =
      match Path.parent w.Core.path with
      | Some p -> p
      | None -> failf "can't pack the main window"
    in
    append ~master:(Core.lookup_exn app master_path) [ (w, opts) ];
    ok ""
  | _ ->
    Tcl.Interp.wrong_args
      "pack append master window options ?window options ...?"

let install app =
  Tcl.Interp.register app.Core.interp "pack" (command app);
  let state = state_for app in
  (* Re-layout when a master is resized. *)
  app.Core.configure_hooks <-
    (fun w ->
      if
        Hashtbl.mem state.masters w.Core.path
        && not (List.mem w.Core.path state.arranging)
      then arrange w)
    :: app.Core.configure_hooks
