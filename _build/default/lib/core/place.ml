let failf = Tcl.Interp.failf

type placement = {
  px : int option;
  py : int option;
  relx : float option;
  rely : float option;
  pwidth : int option;
  pheight : int option;
}

let empty =
  { px = None; py = None; relx = None; rely = None; pwidth = None; pheight = None }

type state = {
  app : Core.app;
  placements : (string, placement) Hashtbl.t; (* slave path -> placement *)
}

let states : state list ref = ref []

let cleanup_registered = ref false

let state_for app =
  if not !cleanup_registered then begin
    cleanup_registered := true;
    Core.add_destroy_hook (fun dead ->
        states := List.filter (fun s -> s.app != dead) !states)
  end;
  match List.find_opt (fun s -> s.app == app) !states with
  | Some s -> s
  | None ->
    let s = { app; placements = Hashtbl.create 8 } in
    states := s :: !states;
    s

(* Position one slave according to its placement and the master's size. *)
let arrange_slave state w =
  match Hashtbl.find_opt state.placements w.Core.path with
  | None -> ()
  | Some p ->
    let master =
      match Path.parent w.Core.path with
      | Some mp -> Core.lookup state.app mp
      | None -> None
    in
    let mw, mh =
      match master with
      | Some m -> (m.Core.width, m.Core.height)
      | None -> (w.Core.width, w.Core.height)
    in
    let x =
      match (p.px, p.relx) with
      | Some x, _ -> x
      | None, Some f -> int_of_float (f *. float_of_int mw)
      | None, None -> w.Core.x
    in
    let y =
      match (p.py, p.rely) with
      | Some y, _ -> y
      | None, Some f -> int_of_float (f *. float_of_int mh)
      | None, None -> w.Core.y
    in
    let width = Option.value p.pwidth ~default:w.Core.req_width in
    let height = Option.value p.pheight ~default:w.Core.req_height in
    Core.move_resize w ~x ~y ~width ~height;
    Core.map_widget w

let manager state =
  {
    Core.gm_name = "place";
    gm_slave_request = (fun w -> arrange_slave state w);
    gm_lost_slave =
      (fun w -> Hashtbl.remove state.placements w.Core.path);
  }

let rec parse_options p = function
  | [] -> p
  | "-x" :: v :: rest -> (
    match Core.parse_pixels v with
    | Some x -> parse_options { p with px = Some x } rest
    | None -> failf "bad screen distance \"%s\"" v)
  | "-y" :: v :: rest -> (
    match Core.parse_pixels v with
    | Some y -> parse_options { p with py = Some y } rest
    | None -> failf "bad screen distance \"%s\"" v)
  | "-relx" :: v :: rest -> (
    match float_of_string_opt v with
    | Some f -> parse_options { p with relx = Some f } rest
    | None -> failf "expected floating-point number but got \"%s\"" v)
  | "-rely" :: v :: rest -> (
    match float_of_string_opt v with
    | Some f -> parse_options { p with rely = Some f } rest
    | None -> failf "expected floating-point number but got \"%s\"" v)
  | "-width" :: v :: rest -> (
    match Core.parse_pixels v with
    | Some x -> parse_options { p with pwidth = Some x } rest
    | None -> failf "bad screen distance \"%s\"" v)
  | "-height" :: v :: rest -> (
    match Core.parse_pixels v with
    | Some x -> parse_options { p with pheight = Some x } rest
    | None -> failf "bad screen distance \"%s\"" v)
  | bad :: _ -> failf "unknown place option \"%s\"" bad

let command app : Tcl.Interp.command =
 fun _interp words ->
  let state = state_for app in
  match words with
  | [ _; "forget"; path ] ->
    (match Core.lookup app path with
    | Some w ->
      Hashtbl.remove state.placements path;
      if
        match w.Core.geom_mgr with
        | Some m -> m.Core.gm_name = "place"
        | None -> false
      then begin
        w.Core.geom_mgr <- None;
        Core.unmap_widget w
      end
    | None -> ());
    Tcl.Interp.ok ""
  | [ _; "info"; path ] ->
    ignore (Core.lookup_exn app path);
    Tcl.Interp.ok
      (match Hashtbl.find_opt state.placements path with
      | None -> ""
      | Some p ->
        String.concat " "
          (List.filter
             (fun s -> s <> "")
             [
               (match p.px with Some x -> Printf.sprintf "-x %d" x | None -> "");
               (match p.py with Some y -> Printf.sprintf "-y %d" y | None -> "");
               (match p.relx with
               | Some f -> Printf.sprintf "-relx %g" f
               | None -> "");
               (match p.rely with
               | Some f -> Printf.sprintf "-rely %g" f
               | None -> "");
             ]))
  | _ :: path :: options when String.length path > 0 && path.[0] = '.' ->
    let w = Core.lookup_exn app path in
    let existing =
      Option.value (Hashtbl.find_opt state.placements path) ~default:empty
    in
    let p = parse_options existing options in
    (match w.Core.geom_mgr with
    | Some m when m.Core.gm_name <> "place" -> m.Core.gm_lost_slave w
    | _ -> ());
    w.Core.geom_mgr <- Some (manager state);
    Hashtbl.replace state.placements path p;
    arrange_slave state w;
    Tcl.Interp.ok ""
  | _ -> Tcl.Interp.wrong_args "place window ?options? | place forget window"

let install app =
  Tcl.Interp.register app.Core.interp "place" (command app);
  (* Re-place slaves when masters resize. *)
  let state = state_for app in
  app.Core.configure_hooks <-
    (fun master ->
      Hashtbl.iter
        (fun path _ ->
          match Core.lookup app path with
          | Some w when Path.parent path = Some master.Core.path ->
            arrange_slave state w
          | Some _ | None -> ())
        state.placements)
    :: app.Core.configure_hooks
