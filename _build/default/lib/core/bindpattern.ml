open Xsim

type kind =
  | Key_press
  | Key_release
  | Button_press
  | Button_release
  | Motion
  | Enter
  | Leave
  | Focus_in
  | Focus_out
  | Expose
  | Map
  | Unmap
  | Destroy
  | Configure
  | Property

type modifier =
  | Shift
  | Control
  | Meta
  | Alt
  | Lock
  | Double
  | Triple
  | Any
  | Button1_held
  | Button2_held
  | Button3_held

type pattern = {
  kind : kind;
  detail : string option;
  modifiers : modifier list;
}

let kind_names =
  [
    ("KeyPress", Key_press); ("Key", Key_press); ("KeyRelease", Key_release);
    ("ButtonPress", Button_press); ("Button", Button_press);
    ("ButtonRelease", Button_release); ("Motion", Motion); ("Enter", Enter);
    ("Leave", Leave); ("FocusIn", Focus_in); ("FocusOut", Focus_out);
    ("Expose", Expose); ("Map", Map); ("Unmap", Unmap); ("Destroy", Destroy);
    ("Configure", Configure); ("Property", Property);
  ]

let modifier_names =
  [
    ("Shift", Shift); ("Control", Control); ("Ctrl", Control); ("Meta", Meta);
    ("M", Meta); ("Alt", Alt); ("Lock", Lock); ("Double", Double);
    ("Triple", Triple); ("Any", Any); ("B1", Button1_held);
    ("Button1", Button1_held); ("B2", Button2_held); ("Button2", Button2_held);
    ("B3", Button3_held); ("Button3", Button3_held);
  ]

let kind_name kind =
  (* First entry wins: canonical name. *)
  fst (List.find (fun (_, k) -> k = kind) kind_names)

let modifier_name m = fst (List.find (fun (_, v) -> v = m) modifier_names)

let is_button_number s =
  String.length s = 1 && s.[0] >= '1' && s.[0] <= '5'

(* Parse the contents of one <...> pattern. *)
let parse_long spec =
  let fields = String.split_on_char '-' spec in
  let fields = List.filter (fun f -> f <> "") fields in
  let rec take_modifiers acc = function
    | f :: rest when List.mem_assoc f modifier_names && rest <> [] ->
      take_modifiers (List.assoc f modifier_names :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  let modifiers, rest = take_modifiers [] fields in
  match rest with
  | [] -> (
    (* Everything parsed as a modifier: <Double> alone is invalid except
       when the last field is really a keysym (e.g. <Control> the key). *)
    match List.rev modifiers with
    | _ -> Error (Printf.sprintf "no event type or button # or keysym in \"%s\"" spec))
  | [ type_or_detail ] ->
    if List.mem_assoc type_or_detail kind_names then
      Ok { kind = List.assoc type_or_detail kind_names; detail = None; modifiers }
    else if is_button_number type_or_detail then
      Ok { kind = Button_press; detail = Some type_or_detail; modifiers }
    else
      (* A bare keysym: <Escape>, <Control-w>. *)
      Ok { kind = Key_press; detail = Some type_or_detail; modifiers }
  | [ type_name; detail ] ->
    if List.mem_assoc type_name kind_names then
      let kind = List.assoc type_name kind_names in
      Ok { kind; detail = Some detail; modifiers }
    else
      Error
        (Printf.sprintf "bad event type or keysym \"%s\" in \"%s\"" type_name
           spec)
  | _ -> Error (Printf.sprintf "too many fields in event pattern \"%s\"" spec)

let parse_sequence seq =
  let n = String.length seq in
  let rec go i acc =
    if i >= n then Ok (List.rev acc)
    else if seq.[i] = ' ' || seq.[i] = '\t' then go (i + 1) acc
    else if seq.[i] = '<' then
      match String.index_from_opt seq i '>' with
      | None -> Error (Printf.sprintf "missing \">\" in binding \"%s\"" seq)
      | Some j -> (
        let spec = String.sub seq (i + 1) (j - i - 1) in
        match parse_long spec with
        | Ok p -> go (j + 1) (p :: acc)
        | Error _ as e -> e)
    else
      (* Shorthand: a single character = pressing that key. *)
      let keysym = Event.keysym_of_char seq.[i] in
      go (i + 1)
        ({ kind = Key_press; detail = Some keysym; modifiers = [] } :: acc)
  in
  match go 0 [] with
  | Ok [] -> Error (Printf.sprintf "no events specified in binding \"%s\"" seq)
  | r -> r

let canonical patterns =
  String.concat ""
    (List.map
       (fun p ->
         let mods =
           List.map (fun m -> modifier_name m ^ "-") p.modifiers
         in
         let detail =
           match p.detail with Some d -> "-" ^ d | None -> ""
         in
         "<" ^ String.concat "" mods ^ kind_name p.kind ^ detail ^ ">")
       patterns)

let state_of_event (event : Event.t) =
  match event with
  | Event.Key_press k | Event.Key_release k -> Some k.Event.key_state
  | Event.Button_press b | Event.Button_release b -> Some b.Event.button_state
  | Event.Motion m -> Some m.Event.motion_state
  | Event.Enter c | Event.Leave c -> Some c.Event.crossing_state
  | _ -> None

let modifier_matches state click_count m =
  match m with
  | Any -> true
  | Double -> click_count >= 2
  | Triple -> click_count >= 3
  | Shift -> state.Event.shift
  | Control -> state.Event.control
  | Meta -> state.Event.meta
  | Alt -> state.Event.alt
  | Lock -> state.Event.lock
  | Button1_held -> state.Event.button1
  | Button2_held -> state.Event.button2
  | Button3_held -> state.Event.button3

let kind_of_event (event : Event.t) =
  match event with
  | Event.Key_press _ -> Some Key_press
  | Event.Key_release _ -> Some Key_release
  | Event.Button_press _ -> Some Button_press
  | Event.Button_release _ -> Some Button_release
  | Event.Motion _ -> Some Motion
  | Event.Enter _ -> Some Enter
  | Event.Leave _ -> Some Leave
  | Event.Focus_in -> Some Focus_in
  | Event.Focus_out -> Some Focus_out
  | Event.Expose _ -> Some Expose
  | Event.Map_notify -> Some Map
  | Event.Unmap_notify -> Some Unmap
  | Event.Destroy_notify -> Some Destroy
  | Event.Configure_notify _ -> Some Configure
  | Event.Property_notify _ -> Some Property
  | Event.Selection_clear _ | Event.Selection_request _
  | Event.Selection_notify _ ->
    None

let detail_matches pattern (event : Event.t) =
  match pattern.detail with
  | None -> true
  | Some d -> (
    match event with
    | Event.Key_press k | Event.Key_release k -> k.Event.keysym = d
    | Event.Button_press b | Event.Button_release b ->
      string_of_int b.Event.button = d
    | _ -> false)

let matches pattern event ~click_count =
  match kind_of_event event with
  | None -> false
  | Some kind ->
    kind = pattern.kind
    && detail_matches pattern event
    &&
    let state = Option.value (state_of_event event) ~default:Event.empty_state in
    List.for_all (modifier_matches state click_count) pattern.modifiers

let specificity patterns =
  let pattern_score p =
    (match p.detail with Some _ -> 100 | None -> 0)
    + (10
       * List.length
           (List.filter (fun m -> m <> Any) p.modifiers))
  in
  (1000 * List.length patterns)
  + List.fold_left (fun acc p -> acc + pattern_score p) 0 patterns

let is_press (event : Event.t) =
  match event with
  | Event.Key_press _ | Event.Button_press _ -> true
  | _ -> false
