(** The event-pattern language of the [bind] command (paper §3.2 and
    Figure 7).

    A binding sequence is one or more patterns: a long form in angle
    brackets like [<Double-Button-1>], [<Control-w>], [<Enter>], or a bare
    character as shorthand for pressing that key — so ["<Escape>q"] means
    the Escape key followed by the [q] key. *)

type kind =
  | Key_press
  | Key_release
  | Button_press
  | Button_release
  | Motion
  | Enter
  | Leave
  | Focus_in
  | Focus_out
  | Expose
  | Map
  | Unmap
  | Destroy
  | Configure
  | Property

type modifier =
  | Shift
  | Control
  | Meta
  | Alt
  | Lock
  | Double
  | Triple
  | Any
  | Button1_held
  | Button2_held
  | Button3_held

type pattern = {
  kind : kind;
  detail : string option;  (** keysym, or button number as a string *)
  modifiers : modifier list;
}

val parse_sequence : string -> (pattern list, string) result
(** Parse a binding sequence. Errors mirror Tk's
    ["bad event type or keysym ..."] messages. *)

val canonical : pattern list -> string
(** A normal form used as the binding-table key, so [<ButtonPress-1>] and
    [<Button-1>] and [<1>] name the same binding. *)

val matches : pattern -> Xsim.Event.t -> click_count:int -> bool
(** Does one pattern match one event? [click_count] is the current
    multi-click count for Double/Triple. Listed modifiers must be present
    in the event state; unlisted ones are ignored. *)

val specificity : pattern list -> int
(** Score for picking the most specific of several matching bindings:
    longer sequences beat shorter, details beat no detail, more modifiers
    beat fewer. *)

val is_press : Xsim.Event.t -> bool
(** Key or button press — the events that participate in multi-pattern
    sequence history. *)
