let create ?app_class ~server ~name () =
  let app = Core.create_app ?app_class ~server ~name () in
  Tkcmd.install app;
  app
