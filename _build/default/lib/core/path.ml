let components path =
  if path = "." then []
  else
    match String.split_on_char '.' path with
    | "" :: rest -> rest
    | rest -> rest

let is_valid path =
  path = "."
  || String.length path > 1
     && path.[0] = '.'
     && List.for_all
          (fun comp ->
            comp <> ""
            && (not (Char.uppercase_ascii comp.[0] = comp.[0]
                     && Char.lowercase_ascii comp.[0] <> comp.[0])))
          (components path)

let parent path =
  if path = "." then None
  else
    match String.rindex_opt path '.' with
    | Some 0 -> Some "."
    | Some i -> Some (String.sub path 0 i)
    | None -> None

let basename path =
  if path = "." then "."
  else
    match String.rindex_opt path '.' with
    | Some i -> String.sub path (i + 1) (String.length path - i - 1)
    | None -> path

let join parent name =
  if parent = "." then "." ^ name else parent ^ "." ^ name

let is_ancestor ~ancestor path =
  ancestor = path
  || ancestor = "."
     && String.length path > 1
  ||
  let pl = String.length ancestor in
  String.length path > pl
  && String.sub path 0 pl = ancestor
  && path.[pl] = '.'
