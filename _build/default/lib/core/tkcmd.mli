(** The Tcl commands of the Tk intrinsics: [bind], [destroy], [winfo],
    [focus], [option], [after], [update], [wm], [tkwait] — plus, via their
    own modules, [pack], [selection] and [send]. Widget-creation commands
    are registered separately by the widget library. *)

val install : Core.app -> unit
(** Register every intrinsics command in the application's interpreter. *)
