(** The packer geometry manager (paper §3.4, Figure 8).

    Slaves are arranged around the sides of a cavity: each window is given
    a parcel along its chosen side ([top]/[bottom]/[left]/[right]), may be
    stretched to [fill] the parcel, and may [expand] to absorb leftover
    cavity space. The packer also sets the master's requested size to what
    the slaves need (geometry propagation), so frames shrink-wrap.

    The Tcl command supports the 1991 syntax used in the paper —

    {v pack append . .scroll {right filly} .list {left expand fill} v}

    — plus [pack unpack], [pack info] and [pack slaves]. *)

type side = Top | Bottom | Left | Right

type opts = {
  side : side;
  fill_x : bool;
  fill_y : bool;
  expand : bool;
  padx : int;
  pady : int;
  anchor : Core.anchor;
      (** position within the parcel — the old syntax's [frame] option *)
}

val default_opts : opts

val parse_opts : string -> opts
(** Parse an old-style option list ([{left expand fill padx 5}]).
    @raise Tcl.Interp.Tcl_failure on unknown options. *)

val append : master:Core.widget -> (Core.widget * opts) list -> unit
(** Append slaves to the master's packing list and (re)arrange. Each slave
    must be a child of the master. *)

val unpack : Core.widget -> unit
(** Remove a window from its master's packing list and unmap it. *)

val slaves : Core.widget -> Core.widget list
(** The packing list of a master, in packing order. *)

val info : Core.widget -> string
(** Tcl-readable description of a master's packing list. *)

val arrange : Core.widget -> unit
(** Recompute the layout for a master now (normally automatic). *)

val install : Core.app -> unit
(** Register the [pack] Tcl command and the re-layout configure hook. *)
