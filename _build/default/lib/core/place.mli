(** The placer: a second, trivially simple geometry manager — fixed or
    fractional placement inside the master. Having two managers exercises
    the paper's claim that widgets are independent of any particular
    geometry manager (§3.4: "widgets can be used with a variety of
    geometry managers").

    {v
      place .w -x 10 -y 20 ?-width W? ?-height H?
      place .w -relx 0.5 -rely 0.5            (fractions of the master)
      place forget .w
    v} *)

val install : Core.app -> unit
