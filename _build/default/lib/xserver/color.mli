(** The server's color database: named colors (a subset of X11's rgb.txt,
    including the paper's MediumSeaGreen) and [#rgb]/[#rrggbb] hex forms.
    Color lookup is a server request in real X; Tk's resource cache exists
    to avoid repeating it. *)

type t = { red : int; green : int; blue : int }
(** Channels are 8-bit (0–255). *)

val parse : string -> t option
(** Resolve a color specification: a (case-insensitive) name from the
    database, or [#rgb] / [#rrggbb] / [#rrrrggggbbbb] hexadecimal. *)

val to_hex : t -> string
(** Canonical [#rrggbb] form. *)

val luminance : t -> float
(** Perceptual luminance in [0, 1]; the rasterizer uses it to pick shading
    characters. *)

val names : unit -> string list
(** All database names (for tests). *)

val black : t
val white : t
