type t = int

type table = {
  by_name : (string, t) Hashtbl.t;
  by_id : (t, string) Hashtbl.t;
  mutable next : int;
}

(* Predefined atoms occupy fixed small ids, as in the X protocol. *)
let predefined = [ "PRIMARY"; "STRING"; "WM_NAME"; "TARGETS" ]

let primary = 1
let string = 2
let wm_name = 3
let targets = 4

let table () =
  let t =
    { by_name = Hashtbl.create 32; by_id = Hashtbl.create 32; next = 1 }
  in
  List.iter
    (fun name ->
      let id = t.next in
      t.next <- t.next + 1;
      Hashtbl.replace t.by_name name id;
      Hashtbl.replace t.by_id id name)
    predefined;
  t

let intern t name =
  match Hashtbl.find_opt t.by_name name with
  | Some id -> id
  | None ->
    let id = t.next in
    t.next <- t.next + 1;
    Hashtbl.replace t.by_name name id;
    Hashtbl.replace t.by_id id name;
    id

let name t id = Hashtbl.find_opt t.by_id id
