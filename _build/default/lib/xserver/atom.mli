(** Interned atoms: the X server's global string table. Property names,
    types and selection names are atoms. *)

type t = int

type table

val table : unit -> table
(** A fresh table with the predefined atoms already interned. *)

val intern : table -> string -> t
(** Get (or create) the atom for a name — [XInternAtom]. *)

val name : table -> t -> string option
(** Reverse lookup — [XGetAtomName]. *)

(** Predefined atoms (a subset of the X11 list plus the ones Tk uses). *)

val primary : t
val string : t
val wm_name : t
val targets : t
