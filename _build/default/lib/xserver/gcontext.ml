type t = {
  gc_id : Xid.t;
  foreground : Color.t;
  background : Color.t;
  font : Font.t option;
  line_width : int;
  stipple : Bitmap.t option;
}

let make ~id ?(foreground = Color.black) ?(background = Color.white) ?font
    ?(line_width = 1) ?stipple () =
  { gc_id = id; foreground; background; font; line_width; stipple }
