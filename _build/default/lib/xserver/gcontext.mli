(** Graphics contexts: bundles of drawing parameters, created once and
    referenced by drawing requests (creating one is a server request;
    using one is free — another reason for Tk-side caching). *)

type t = {
  gc_id : Xid.t;
  foreground : Color.t;
  background : Color.t;
  font : Font.t option;
  line_width : int;
  stipple : Bitmap.t option;
}

val make :
  id:Xid.t ->
  ?foreground:Color.t ->
  ?background:Color.t ->
  ?font:Font.t ->
  ?line_width:int ->
  ?stipple:Bitmap.t ->
  unit ->
  t
