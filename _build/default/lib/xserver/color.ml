type t = { red : int; green : int; blue : int }

let black = { red = 0; green = 0; blue = 0 }
let white = { red = 255; green = 255; blue = 255 }

(* A subset of X11R4's rgb.txt, normalised to lowercase without spaces. *)
let database =
  [
    ("black", (0, 0, 0));
    ("white", (255, 255, 255));
    ("red", (255, 0, 0));
    ("green", (0, 255, 0));
    ("blue", (0, 0, 255));
    ("yellow", (255, 255, 0));
    ("cyan", (0, 255, 255));
    ("magenta", (255, 0, 255));
    ("gray", (190, 190, 190));
    ("grey", (190, 190, 190));
    ("lightgray", (211, 211, 211));
    ("lightgrey", (211, 211, 211));
    ("darkgray", (169, 169, 169));
    ("darkgrey", (169, 169, 169));
    ("dimgray", (105, 105, 105));
    ("dimgrey", (105, 105, 105));
    ("gray25", (64, 64, 64));
    ("gray50", (127, 127, 127));
    ("gray75", (191, 191, 191));
    ("gray90", (229, 229, 229));
    ("slategray", (112, 128, 144));
    ("lightslategray", (119, 136, 153));
    ("navy", (0, 0, 128));
    ("navyblue", (0, 0, 128));
    ("cornflowerblue", (100, 149, 237));
    ("darkslateblue", (72, 61, 139));
    ("slateblue", (106, 90, 205));
    ("mediumslateblue", (123, 104, 238));
    ("lightslateblue", (132, 112, 255));
    ("mediumblue", (0, 0, 205));
    ("royalblue", (65, 105, 225));
    ("dodgerblue", (30, 144, 255));
    ("deepskyblue", (0, 191, 255));
    ("skyblue", (135, 206, 235));
    ("lightskyblue", (135, 206, 250));
    ("steelblue", (70, 130, 180));
    ("lightsteelblue", (176, 196, 222));
    ("lightblue", (173, 216, 230));
    ("powderblue", (176, 224, 230));
    ("paleturquoise", (175, 238, 238));
    ("darkturquoise", (0, 206, 209));
    ("mediumturquoise", (72, 209, 204));
    ("turquoise", (64, 224, 208));
    ("lightcyan", (224, 255, 255));
    ("cadetblue", (95, 158, 160));
    ("mediumaquamarine", (102, 205, 170));
    ("aquamarine", (127, 255, 212));
    ("darkgreen", (0, 100, 0));
    ("darkolivegreen", (85, 107, 47));
    ("darkseagreen", (143, 188, 143));
    ("seagreen", (46, 139, 87));
    ("mediumseagreen", (60, 179, 113));
    ("lightseagreen", (32, 178, 170));
    ("palegreen", (152, 251, 152));
    ("springgreen", (0, 255, 127));
    ("lawngreen", (124, 252, 0));
    ("chartreuse", (127, 255, 0));
    ("mediumspringgreen", (0, 250, 154));
    ("greenyellow", (173, 255, 47));
    ("limegreen", (50, 205, 50));
    ("yellowgreen", (154, 205, 50));
    ("forestgreen", (34, 139, 34));
    ("olivedrab", (107, 142, 35));
    ("darkkhaki", (189, 183, 107));
    ("khaki", (240, 230, 140));
    ("palegoldenrod", (238, 232, 170));
    ("lightgoldenrodyellow", (250, 250, 210));
    ("lightyellow", (255, 255, 224));
    ("gold", (255, 215, 0));
    ("lightgoldenrod", (238, 221, 130));
    ("goldenrod", (218, 165, 32));
    ("darkgoldenrod", (184, 134, 11));
    ("rosybrown", (188, 143, 143));
    ("indianred", (205, 92, 92));
    ("saddlebrown", (139, 69, 19));
    ("sienna", (160, 82, 45));
    ("peru", (205, 133, 63));
    ("burlywood", (222, 184, 135));
    ("beige", (245, 245, 220));
    ("wheat", (245, 222, 179));
    ("sandybrown", (244, 164, 96));
    ("tan", (210, 180, 140));
    ("chocolate", (210, 105, 30));
    ("firebrick", (178, 34, 34));
    ("brown", (165, 42, 42));
    ("darksalmon", (233, 150, 122));
    ("salmon", (250, 128, 114));
    ("lightsalmon", (255, 160, 122));
    ("orange", (255, 165, 0));
    ("darkorange", (255, 140, 0));
    ("coral", (255, 127, 80));
    ("lightcoral", (240, 128, 128));
    ("tomato", (255, 99, 71));
    ("orangered", (255, 69, 0));
    ("hotpink", (255, 105, 180));
    ("deeppink", (255, 20, 147));
    ("pink", (255, 192, 203));
    ("lightpink", (255, 182, 193));
    ("palepink1", (255, 204, 204));
    ("palevioletred", (219, 112, 147));
    ("maroon", (176, 48, 96));
    ("mediumvioletred", (199, 21, 133));
    ("violetred", (208, 32, 144));
    ("violet", (238, 130, 238));
    ("plum", (221, 160, 221));
    ("orchid", (218, 112, 214));
    ("mediumorchid", (186, 85, 211));
    ("darkorchid", (153, 50, 204));
    ("darkviolet", (148, 0, 211));
    ("blueviolet", (138, 43, 226));
    ("purple", (160, 32, 240));
    ("mediumpurple", (147, 112, 219));
    ("thistle", (216, 191, 216));
    ("snow", (255, 250, 250));
    ("ghostwhite", (248, 248, 255));
    ("whitesmoke", (245, 245, 245));
    ("gainsboro", (220, 220, 220));
    ("floralwhite", (255, 250, 240));
    ("oldlace", (253, 245, 230));
    ("linen", (250, 240, 230));
    ("antiquewhite", (250, 235, 215));
    ("papayawhip", (255, 239, 213));
    ("blanchedalmond", (255, 235, 205));
    ("bisque", (255, 228, 196));
    ("peachpuff", (255, 218, 185));
    ("navajowhite", (255, 222, 173));
    ("moccasin", (255, 228, 181));
    ("cornsilk", (255, 248, 220));
    ("ivory", (255, 255, 240));
    ("lemonchiffon", (255, 250, 205));
    ("seashell", (255, 245, 238));
    ("honeydew", (240, 255, 240));
    ("mintcream", (245, 255, 250));
    ("azure", (240, 255, 255));
    ("aliceblue", (240, 248, 255));
    ("lavender", (230, 230, 250));
    ("lavenderblush", (255, 240, 245));
    ("mistyrose", (255, 228, 225));
    ("darkslategray", (47, 79, 79));
    ("midnightblue", (25, 25, 112));
  ]

let by_name : (string, t) Hashtbl.t = Hashtbl.create 256

let () =
  List.iter
    (fun (name, (red, green, blue)) ->
      Hashtbl.replace by_name name { red; green; blue })
    database

let normalise name =
  String.lowercase_ascii
    (String.concat "" (String.split_on_char ' ' name))

let hex_digit c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

(* #rgb, #rrggbb or #rrrrggggbbbb: per-channel width 1, 2 or 4 digits. *)
let parse_hex s =
  let digits = String.length s - 1 in
  if digits mod 3 <> 0 then None
  else
    let w = digits / 3 in
    if w < 1 || w > 4 || w = 3 then None
    else
      let channel k =
        let rec go i acc =
          if i >= w then Some acc
          else
            match hex_digit s.[1 + (k * w) + i] with
            | Some d -> go (i + 1) ((acc * 16) + d)
            | None -> None
        in
        (* Scale to 8 bits whatever the digit width. *)
        Option.map
          (fun v ->
            match w with
            | 1 -> v * 17
            | 2 -> v
            | _ -> v / 256
            )
          (go 0 0)
      in
      match (channel 0, channel 1, channel 2) with
      | Some red, Some green, Some blue -> Some { red; green; blue }
      | _ -> None

let parse spec =
  if spec = "" then None
  else if spec.[0] = '#' then parse_hex spec
  else Hashtbl.find_opt by_name (normalise spec)

let to_hex c = Printf.sprintf "#%02x%02x%02x" c.red c.green c.blue

let luminance c =
  ((0.299 *. float_of_int c.red)
  +. (0.587 *. float_of_int c.green)
  +. (0.114 *. float_of_int c.blue))
  /. 255.0

let names () = List.map fst database
