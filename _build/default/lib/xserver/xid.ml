type t = int

type allocator = { mutable next : int }

let allocator () = { next = 1 }

let fresh a =
  let id = a.next in
  a.next <- a.next + 1;
  id

let none = 0

let pp fmt id = Format.fprintf fmt "0x%x" id
