(** A software renderer: draws the window tree (backgrounds, borders,
    retained display lists) into a character-cell framebuffer, producing
    the ASCII analogue of Figure 10's screen dump.

    Pixels map to character cells at a fixed scale ({!scale_x} horizontal
    pixels per column, {!scale_y} vertical pixels per row). *)

val scale_x : int
val scale_y : int

val render : Server.t -> ?window:Xid.t -> unit -> string
(** Render the given window (default: the whole root window) and its
    viewable descendants; returns the framebuffer as newline-separated
    rows. *)

val render_region : Server.t -> Geom.rect -> string
(** Render an arbitrary root-coordinate region. *)
