type state = {
  shift : bool;
  control : bool;
  meta : bool;
  alt : bool;
  lock : bool;
  button1 : bool;
  button2 : bool;
  button3 : bool;
}

let empty_state =
  {
    shift = false;
    control = false;
    meta = false;
    alt = false;
    lock = false;
    button1 = false;
    button2 = false;
    button3 = false;
  }

type t =
  | Key_press of key
  | Key_release of key
  | Button_press of button
  | Button_release of button
  | Motion of motion
  | Enter of crossing
  | Leave of crossing
  | Focus_in
  | Focus_out
  | Expose of expose
  | Map_notify
  | Unmap_notify
  | Destroy_notify
  | Configure_notify of configure
  | Property_notify of property
  | Selection_clear of { selection : Atom.t }
  | Selection_request of selection_request
  | Selection_notify of selection_notify

and key = { keysym : string; key_state : state; kx : int; ky : int }

and button = { button : int; bx : int; by : int; button_state : state }

and motion = { mx : int; my : int; motion_state : state }

and crossing = { crossing_state : state }

and expose = { ex : int; ey : int; ewidth : int; eheight : int; count : int }

and configure = { cx : int; cy : int; cwidth : int; cheight : int }

and property = { prop_atom : Atom.t; prop_deleted : bool }

and selection_request = {
  sr_selection : Atom.t;
  sr_target : Atom.t;
  sr_property : Atom.t;
  sr_requestor : Xid.t;
}

and selection_notify = {
  sn_selection : Atom.t;
  sn_target : Atom.t;
  sn_property : Atom.t option;
  sn_requestor : Xid.t;
}

type delivery = { window : Xid.t; time : int; event : t }

let special_keysyms =
  [
    (' ', "space"); ('!', "exclam"); ('"', "quotedbl"); ('#', "numbersign");
    ('$', "dollar"); ('%', "percent"); ('&', "ampersand");
    ('\'', "apostrophe"); ('(', "parenleft"); (')', "parenright");
    ('*', "asterisk"); ('+', "plus"); (',', "comma"); ('-', "minus");
    ('.', "period"); ('/', "slash"); (':', "colon"); (';', "semicolon");
    ('<', "less"); ('=', "equal"); ('>', "greater"); ('?', "question");
    ('@', "at"); ('[', "bracketleft"); ('\\', "backslash");
    (']', "bracketright"); ('^', "asciicircum"); ('_', "underscore");
    ('`', "grave"); ('{', "braceleft"); ('|', "bar"); ('}', "braceright");
    ('~', "asciitilde"); ('\n', "Return"); ('\t', "Tab");
    ('\127', "Delete"); ('\b', "BackSpace"); ('\027', "Escape");
  ]

let keysym_of_char c =
  match List.assoc_opt c special_keysyms with
  | Some name -> name
  | None -> String.make 1 c

let char_of_keysym keysym =
  if String.length keysym = 1 then Some keysym.[0]
  else
    List.find_map
      (fun (c, name) -> if name = keysym then Some c else None)
      special_keysyms

let name = function
  | Key_press _ -> "KeyPress"
  | Key_release _ -> "KeyRelease"
  | Button_press _ -> "ButtonPress"
  | Button_release _ -> "ButtonRelease"
  | Motion _ -> "Motion"
  | Enter _ -> "Enter"
  | Leave _ -> "Leave"
  | Focus_in -> "FocusIn"
  | Focus_out -> "FocusOut"
  | Expose _ -> "Expose"
  | Map_notify -> "Map"
  | Unmap_notify -> "Unmap"
  | Destroy_notify -> "Destroy"
  | Configure_notify _ -> "Configure"
  | Property_notify _ -> "Property"
  | Selection_clear _ -> "SelectionClear"
  | Selection_request _ -> "SelectionRequest"
  | Selection_notify _ -> "SelectionNotify"
