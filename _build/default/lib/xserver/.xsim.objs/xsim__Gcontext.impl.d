lib/xserver/gcontext.ml: Bitmap Color Font Xid
