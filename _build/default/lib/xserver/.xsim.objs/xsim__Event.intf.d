lib/xserver/event.mli: Atom Xid
