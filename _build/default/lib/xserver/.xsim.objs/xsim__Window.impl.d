lib/xserver/window.ml: Atom Bitmap Color Cursor Font Geom Hashtbl List Xid
