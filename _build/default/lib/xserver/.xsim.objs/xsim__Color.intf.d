lib/xserver/color.mli:
