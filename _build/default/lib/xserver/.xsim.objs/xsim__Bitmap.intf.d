lib/xserver/bitmap.mli:
