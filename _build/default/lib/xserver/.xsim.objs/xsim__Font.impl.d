lib/xserver/font.ml: List Option String
