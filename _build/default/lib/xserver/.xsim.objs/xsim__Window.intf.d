lib/xserver/window.mli: Atom Bitmap Color Cursor Font Geom Hashtbl Xid
