lib/xserver/atom.ml: Hashtbl List
