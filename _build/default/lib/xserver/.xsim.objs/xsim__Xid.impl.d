lib/xserver/xid.ml: Format
