lib/xserver/raster.mli: Geom Server Xid
