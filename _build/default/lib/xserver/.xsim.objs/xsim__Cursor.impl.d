lib/xserver/cursor.ml: Hashtbl List Option
