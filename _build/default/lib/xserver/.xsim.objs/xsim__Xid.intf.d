lib/xserver/xid.mli: Format
