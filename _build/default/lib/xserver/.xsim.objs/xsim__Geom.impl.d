lib/xserver/geom.ml: Format
