lib/xserver/raster.ml: Array Atom Bitmap Buffer Color Geom Hashtbl List Server String Window
