lib/xserver/event.ml: Atom List String Xid
