lib/xserver/server.mli: Atom Bitmap Color Cursor Event Font Gcontext Geom Window Xid
