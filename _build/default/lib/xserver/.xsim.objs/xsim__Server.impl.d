lib/xserver/server.ml: Atom Bitmap Color Cursor Event Font Gcontext Geom Hashtbl List Option Printf Queue String Window Xid
