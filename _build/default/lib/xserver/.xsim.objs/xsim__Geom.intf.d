lib/xserver/geom.mli: Format
