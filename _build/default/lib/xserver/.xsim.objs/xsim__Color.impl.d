lib/xserver/color.ml: Char Hashtbl List Option Printf String
