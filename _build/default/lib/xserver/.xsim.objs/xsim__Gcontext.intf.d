lib/xserver/gcontext.mli: Bitmap Color Font Xid
