lib/xserver/cursor.mli:
