lib/xserver/atom.mli:
