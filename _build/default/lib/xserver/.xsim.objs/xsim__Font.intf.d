lib/xserver/font.mli:
