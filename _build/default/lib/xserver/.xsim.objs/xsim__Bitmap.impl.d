lib/xserver/bitmap.ml: Array In_channel List Option String
