(** X resource identifiers. Every server-side object (window, graphics
    context, font, …) is named by a unique integer id, as in the X
    protocol. *)

type t = int

type allocator

val allocator : unit -> allocator

val fresh : allocator -> t
(** Allocate the next id (ids start at 1; 0 is reserved for "none"). *)

val none : t
(** The null resource id. *)

val pp : Format.formatter -> t -> unit
