(* Tests for the widget set (buttons, listbox, scrollbar, entry, scale,
   message, menu) and the cross-application protocols: send (§6) and the
   selection (§3.6). *)

open Xsim

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let fresh_app ?(name = "test") () =
  let server = Server.create () in
  let app = Tk_widgets.Tk_widgets_lib.new_app ~server ~name () in
  (server, app)

let run app script =
  match Tcl.Interp.eval_value app.Tk.Core.interp script with
  | Ok v -> v
  | Error msg -> Alcotest.failf "script %S failed: %s" script msg

let contains ~needle haystack =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let widget_point app path ~fx ~fy =
  let w = Tk.Core.lookup_exn app path in
  let win = Option.get (Server.lookup_window app.Tk.Core.server w.Tk.Core.win) in
  let p = Window.root_position win in
  ( p.Geom.x + int_of_float (fx *. float_of_int w.Tk.Core.width),
    p.Geom.y + int_of_float (fy *. float_of_int w.Tk.Core.height) )

let click ?(fx = 0.5) ?(fy = 0.5) app path =
  let server = app.Tk.Core.server in
  let x, y = widget_point app path ~fx ~fy in
  Server.inject_motion server ~x ~y;
  Tk.Core.update app;
  Server.inject_button server ~button:1 ~pressed:true;
  Server.inject_button server ~button:1 ~pressed:false;
  Tk.Core.update app

(* ------------------------------------------------------------------ *)
(* Buttons *)

let button_tests =
  [
    ( "clicking a button runs its -command (§4)",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "button .b -text go -command {set clicked 1}");
        ignore (run app "pack append . .b {top}");
        Tk.Core.update app;
        click app ".b";
        check_string "command ran" "1"
          (Option.get (Tcl.Interp.get_var app.Tk.Core.interp "clicked")) );
    ( "press then release outside does not invoke",
      fun () ->
        let server, app = fresh_app () in
        ignore (run app "button .b -text go -command {set clicked 1}");
        ignore (run app "frame .other -width 60 -height 40");
        ignore (run app "pack append . .b {top} .other {top}");
        Tk.Core.update app;
        let bx, by = widget_point app ".b" ~fx:0.5 ~fy:0.5 in
        Server.inject_motion server ~x:bx ~y:by;
        Server.inject_button server ~button:1 ~pressed:true;
        let ox, oy = widget_point app ".other" ~fx:0.5 ~fy:0.5 in
        Server.inject_motion server ~x:ox ~y:oy;
        Server.inject_button server ~button:1 ~pressed:false;
        Tk.Core.update app;
        check_bool "not invoked" true
          (Tcl.Interp.get_var app.Tk.Core.interp "clicked" = None) );
    ( "invoke subcommand runs the command",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "button .b -command {set n [expr {[info exists n] ? $n+1 : 1}]}");
        ignore (run app ".b invoke; .b invoke");
        check_string "twice" "2" (run app "set n") );
    ( "disabled button ignores invoke",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "button .b -command {set clicked 1} -state disabled");
        ignore (run app ".b invoke");
        check_bool "ignored" true
          (Tcl.Interp.get_var app.Tk.Core.interp "clicked" = None) );
    ( "flash subcommand (paper §4 example)",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "button .hello -text hi");
        ignore (run app "pack append . .hello {top}");
        Tk.Core.update app;
        ignore (run app ".hello flash");
        let w = Tk.Core.lookup_exn app ".hello" in
        check_int "flashed" 1 (Tk_widgets.Button.flash_count w) );
    ( "checkbutton toggles its variable",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "checkbutton .c -variable flag");
        ignore (run app ".c invoke");
        check_string "on" "1" (run app "set flag");
        ignore (run app ".c invoke");
        check_string "off" "0" (run app "set flag");
        ignore (run app ".c toggle");
        check_string "toggled" "1" (run app "set flag") );
    ( "radiobuttons share a variable",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "radiobutton .r1 -variable choice -value one");
        ignore (run app "radiobutton .r2 -variable choice -value two");
        ignore (run app ".r1 invoke");
        check_string "first" "one" (run app "set choice");
        ignore (run app ".r2 invoke");
        check_string "second" "two" (run app "set choice") );
    ( "label has no command behaviour",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "label .l -text static");
        let msg = run app "catch {.l invoke} err; set err" in
        check_bool "no invoke" true (contains ~needle:"bad option" msg) );
    ( "button size tracks its text",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "button .short -text ab");
        ignore (run app "button .long -text abcdefghijklmnop");
        let short = Tk.Core.lookup_exn app ".short" in
        let long = Tk.Core.lookup_exn app ".long" in
        check_bool "longer text, wider widget" true
          (long.Tk.Core.req_width > short.Tk.Core.req_width) );
    ( "enter/leave track the active state",
      fun () ->
        let server, app = fresh_app () in
        ignore (run app "button .b -text hi");
        ignore (run app "pack append . .b {top}");
        Tk.Core.update app;
        let x, y = widget_point app ".b" ~fx:0.5 ~fy:0.5 in
        Server.inject_motion server ~x ~y;
        Tk.Core.update app;
        (* Render with active background: darker than normal. *)
        let dump = Raster.render app.Tk.Core.server () in
        check_bool "renders" true (contains ~needle:"hi" dump) );
  ]

(* ------------------------------------------------------------------ *)
(* Listbox + scrollbar (the §4 cooperation example) *)

let listbox_tests =
  [
    ( "insert, size, get, delete",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "listbox .l");
        ignore (run app ".l insert end a b c d");
        check_string "size" "4" (run app ".l size");
        check_string "get 1" "b" (run app ".l get 1");
        ignore (run app ".l insert 1 X");
        check_string "inserted" "X" (run app ".l get 1");
        ignore (run app ".l delete 0 2");
        check_string "after delete" "c" (run app ".l get 0") );
    ( "view scrolls the window",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "listbox .l -geometry 10x5");
        for i = 1 to 20 do
          ignore (run app (Printf.sprintf ".l insert end item%d" i))
        done;
        ignore (run app ".l view 7");
        let w = Tk.Core.lookup_exn app ".l" in
        check_int "top" 7 (Tk_widgets.Listbox.top_index w) );
    ( "scrollbar is kept in sync via the -scroll command (§4)",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "scrollbar .s -command \".l view\"");
        ignore (run app "listbox .l -scroll \".s set\" -geometry 10x5");
        ignore (run app "pack append . .s {right filly} .l {left expand fill}");
        Tk.Core.update app;
        for i = 1 to 20 do
          ignore (run app (Printf.sprintf ".l insert end item%d" i))
        done;
        Tk.Core.update app;
        let sb = Tk.Core.lookup_exn app ".s" in
        let total, _window, first, _last = Tk_widgets.Scrollbar.view_state sb in
        check_int "total" 20 total;
        check_int "first" 0 first );
    ( "scrollbar click scrolls the listbox (\".l view 40\" mechanism)",
      fun () ->
        let server, app = fresh_app () in
        ignore (run app "scrollbar .s -command \".l view\"");
        ignore (run app "listbox .l -scroll \".s set\" -geometry 10x5");
        ignore (run app "pack append . .s {right filly} .l {left expand fill}");
        Tk.Core.update app;
        for i = 1 to 40 do
          ignore (run app (Printf.sprintf ".l insert end item%d" i))
        done;
        Tk.Core.update app;
        (* Click in the trough below the slider: page down. *)
        let x, y = widget_point app ".s" ~fx:0.5 ~fy:0.8 in
        Server.inject_motion server ~x ~y;
        Server.inject_button server ~button:1 ~pressed:true;
        Server.inject_button server ~button:1 ~pressed:false;
        Tk.Core.update app;
        let w = Tk.Core.lookup_exn app ".l" in
        check_bool "scrolled down" true (Tk_widgets.Listbox.top_index w > 0);
        (* And the scrollbar reflects the new view. *)
        let sb = Tk.Core.lookup_exn app ".s" in
        let _, _, first, _ = Tk_widgets.Scrollbar.view_state sb in
        check_int "scrollbar synced" (Tk_widgets.Listbox.top_index w) first );
    ( "dragging the scrollbar slider scrolls proportionally",
      fun () ->
        let server, app = fresh_app () in
        ignore (run app "scrollbar .s -command \".l view\"");
        ignore (run app "listbox .l -scroll \".s set\" -geometry 10x5");
        ignore (run app "pack append . .s {right filly} .l {left expand fill}");
        Tk.Core.update app;
        for i = 1 to 100 do
          ignore (run app (Printf.sprintf ".l insert end item%d" i))
        done;
        Tk.Core.update app;
        (* Press on the slider itself (it sits just below the top arrow
           while first=0), then drag to the middle of the trough. *)
        let sb = Tk.Core.lookup_exn app ".s" in
        let swin =
          Option.get (Server.lookup_window server sb.Tk.Core.win)
        in
        let origin = Window.root_position swin in
        let sx = origin.Geom.x + (sb.Tk.Core.width / 2) in
        let arrow = Tk.Core.get_pixels sb "-width" in
        Server.inject_motion server ~x:sx ~y:(origin.Geom.y + arrow + 2);
        Server.inject_button server ~button:1 ~pressed:true;
        Tk.Core.update app;
        Server.inject_motion server ~x:sx
          ~y:(origin.Geom.y + (sb.Tk.Core.height / 2));
        Server.inject_button server ~button:1 ~pressed:false;
        Tk.Core.update app;
        let w = Tk.Core.lookup_exn app ".l" in
        let top = Tk_widgets.Listbox.top_index w in
        check_bool "scrolled to around the middle" true (top > 25 && top < 70) );
    ( "clicking selects an item and claims the X selection",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "listbox .l -geometry 10x5");
        ignore (run app "pack append . .l {top}");
        Tk.Core.update app;
        ignore (run app ".l insert end alpha beta gamma");
        Tk.Core.update app;
        click ~fy:0.1 app ".l";
        (* The first visible line is under y = 10% of a 5-row listbox. *)
        check_string "curselection" "0" (run app ".l curselection");
        check_string "selection get" "alpha" (run app "selection get") );
    ( "select from/to extends the selection",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "listbox .l");
        ignore (run app ".l insert end a b c d e");
        ignore (run app ".l select from 1");
        ignore (run app ".l select to 3");
        check_string "range" "1 2 3" (run app ".l curselection");
        check_string "selection" "b\nc\nd" (run app "selection get") );
    ( "losing the selection clears the highlight",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "listbox .l1; listbox .l2");
        ignore (run app ".l1 insert end a b; .l2 insert end x y");
        ignore (run app ".l1 select from 0");
        check_string "l1 selected" "0" (run app ".l1 curselection");
        ignore (run app ".l2 select from 1");
        Tk.Core.update app;
        check_string "l1 cleared" "" (run app ".l1 curselection");
        check_string "l2 selected" "1" (run app ".l2 curselection") );
  ]

(* ------------------------------------------------------------------ *)
(* Entry and scale *)

let entry_tests =
  [
    ( "insert/delete/get/icursor",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "entry .e");
        ignore (run app ".e insert 0 hello");
        check_string "contents" "hello" (run app ".e get");
        ignore (run app ".e insert end !");
        check_string "append" "hello!" (run app ".e get");
        ignore (run app ".e delete 0 2");
        check_string "deleted" "llo!" (run app ".e get");
        ignore (run app ".e icursor end");
        check_string "cursor index" "4" (run app ".e index cursor") );
    ( "typing inserts at the cursor",
      fun () ->
        let server, app = fresh_app () in
        ignore (run app "entry .e");
        ignore (run app "pack append . .e {top}");
        Tk.Core.update app;
        ignore (run app "focus .e");
        Server.inject_string server "abc";
        Tk.Core.update app;
        check_string "typed" "abc" (run app ".e get");
        Server.inject_key server ~keysym:"BackSpace" ~pressed:true;
        Tk.Core.update app;
        check_string "backspace" "ab" (run app ".e get") );
    ( "paper §5: Control-w backspace-over-word via a user binding",
      fun () ->
        let server, app = fresh_app () in
        ignore (run app "entry .e");
        ignore (run app "pack append . .e {top}");
        Tk.Core.update app;
        ignore (run app "focus .e");
        (* The application needs no modification: the binding uses the
           entry's own widget commands, as the paper argues. *)
        ignore
          (run app
             "bind .e <Control-w> {\n\
             \  set s [.e get]\n\
             \  set i [.e index cursor]\n\
             \  set j $i\n\
             \  while {$j > 0 && [string index $s [expr $j-1]] == \" \"} {set j [expr $j-1]}\n\
             \  while {$j > 0 && [string index $s [expr $j-1]] != \" \"} {set j [expr $j-1]}\n\
             \  .e delete $j $i\n\
              }");
        Server.inject_string server "hello brave world";
        Tk.Core.update app;
        Server.inject_key server ~keysym:"Control_L" ~pressed:true;
        Server.inject_key server ~keysym:"w" ~pressed:true;
        Server.inject_key server ~keysym:"w" ~pressed:false;
        Server.inject_key server ~keysym:"Control_L" ~pressed:false;
        Tk.Core.update app;
        check_string "word erased" "hello brave " (run app ".e get") );
    ( "scale set/get and command",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "scale .s -from 0 -to 100 -command {set v}");
        ignore (run app ".s set 40");
        check_string "value" "40" (run app ".s get");
        check_bool "set does not notify" true
          (Tcl.Interp.get_var app.Tk.Core.interp "v" = None) );
    ( "clicking a scale moves its value and notifies",
      fun () ->
        let server, app = fresh_app () in
        ignore (run app "scale .s -from 0 -to 100 -length 100 -command {set v}");
        ignore (run app "pack append . .s {top}");
        Tk.Core.update app;
        let x, y = widget_point app ".s" ~fx:0.5 ~fy:0.8 in
        Server.inject_motion server ~x ~y;
        Server.inject_button server ~button:1 ~pressed:true;
        Server.inject_button server ~button:1 ~pressed:false;
        Tk.Core.update app;
        let v = int_of_string (run app "set v") in
        check_bool "moved near midpoint" true (v > 30 && v < 70) );
    ( "scale clamps to its range",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "scale .s -from 10 -to 20");
        ignore (run app ".s set 99");
        check_string "clamped high" "20" (run app ".s get");
        ignore (run app ".s set 0");
        check_string "clamped low" "10" (run app ".s get") );
    ( "message wraps text to its width",
      fun () ->
        let font = Option.get (Font.parse "fixed") in
        let lines =
          Tk_widgets.Message.wrap_text font ~width:(10 * font.Font.char_width)
            "aaa bbb ccc ddd eee"
        in
        check_bool "wrapped into multiple lines" true (List.length lines >= 2);
        List.iter
          (fun l ->
            check_bool "each line fits" true
              (Font.text_width font l <= 10 * font.Font.char_width))
          lines );
    ( "message preserves explicit newlines",
      fun () ->
        let font = Option.get (Font.parse "fixed") in
        let lines = Tk_widgets.Message.wrap_text font ~width:1000 "a\nb" in
        check_int "two lines" 2 (List.length lines) );
  ]

(* ------------------------------------------------------------------ *)
(* Menus *)

let menu_tests =
  [
    ( "add entries and invoke by index",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "menu .m");
        ignore (run app ".m add command -label Open -command {set did open}");
        ignore (run app ".m add separator");
        ignore (run app ".m add command -label Quit -command {set did quit}");
        check_string "size" "3" (run app ".m size");
        ignore (run app ".m invoke 0");
        check_string "open" "open" (run app "set did");
        ignore (run app ".m invoke Quit");
        check_string "quit by label" "quit" (run app "set did") );
    ( "post maps the menu, unpost hides it",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "menu .m");
        ignore (run app ".m add command -label A -command {}");
        ignore (run app ".m post 50 60");
        Tk.Core.update app;
        check_bool "mapped" true (Tk.Core.lookup_exn app ".m").Tk.Core.mapped;
        ignore (run app ".m unpost");
        Tk.Core.update app;
        check_bool "unmapped" false (Tk.Core.lookup_exn app ".m").Tk.Core.mapped );
    ( "clicking a posted entry invokes and unposts",
      fun () ->
        let server, app = fresh_app () in
        ignore (run app "menu .m");
        ignore (run app ".m add command -label First -command {set hit first}");
        ignore (run app ".m add command -label Second -command {set hit second}");
        ignore (run app ".m post 10 10");
        Tk.Core.update app;
        let x, y = widget_point app ".m" ~fx:0.5 ~fy:0.7 in
        Server.inject_motion server ~x ~y;
        Server.inject_button server ~button:1 ~pressed:true;
        Server.inject_button server ~button:1 ~pressed:false;
        Tk.Core.update app;
        check_string "second entry hit" "second" (run app "set hit");
        check_bool "unposted" false (Tk.Core.lookup_exn app ".m").Tk.Core.mapped );
    ( "menubutton posts its menu on press",
      fun () ->
        let server, app = fresh_app () in
        ignore (run app "menubutton .mb -text File -menu .mb.m");
        ignore (run app "menu .mb.m");
        ignore (run app ".mb.m add command -label New -command {}");
        ignore (run app "pack append . .mb {top}");
        Tk.Core.update app;
        let x, y = widget_point app ".mb" ~fx:0.5 ~fy:0.5 in
        Server.inject_motion server ~x ~y;
        Server.inject_button server ~button:1 ~pressed:true;
        Tk.Core.update app;
        check_bool "posted" true (Tk.Core.lookup_exn app ".mb.m").Tk.Core.mapped );
  ]

(* ------------------------------------------------------------------ *)
(* send (§6) *)

let send_tests =
  [
    ( "send evaluates a command in another application",
      fun () ->
        let server = Server.create () in
        let a = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"alpha" () in
        let b = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"beta" () in
        ignore (run b "set x 0");
        ignore (run a "send beta {set x 42}");
        check_string "remote variable set" "42" (run b "set x") );
    ( "send returns the remote result",
      fun () ->
        let server = Server.create () in
        let a = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"alpha" () in
        let _b = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"beta" () in
        check_string "result" "7" (run a "send beta {expr 3 + 4}") );
    ( "remote errors propagate to the sender",
      fun () ->
        let server = Server.create () in
        let a = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"alpha" () in
        let _b = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"beta" () in
        let msg = run a "catch {send beta {error remote-boom}} err; set err" in
        check_bool "error text" true (contains ~needle:"remote-boom" msg) );
    ( "send to an unknown application fails",
      fun () ->
        let server = Server.create () in
        let a = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"alpha" () in
        let msg = run a "catch {send nosuchapp {set x 1}} err; set err" in
        check_bool "no interpreter" true
          (contains ~needle:"no registered interpreter" msg) );
    ( "winfo interps lists registered applications",
      fun () ->
        let server = Server.create () in
        let a = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"alpha" () in
        let _b = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"beta" () in
        let interps = run a "winfo interps" in
        check_bool "alpha" true (contains ~needle:"alpha" interps);
        check_bool "beta" true (contains ~needle:"beta" interps) );
    ( "duplicate names get unique suffixes",
      fun () ->
        let server = Server.create () in
        let a = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"app" () in
        let b = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"app" () in
        check_string "first" "app" a.Tk.Core.app_name;
        check_string "second" "app #2" b.Tk.Core.app_name );
    ( "nested send: target sends back to the sender",
      fun () ->
        let server = Server.create () in
        let a = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"alpha" () in
        let _b = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"beta" () in
        ignore (run a "set here 1");
        let v = run a "send beta {send alpha {set here}}" in
        check_string "round trip" "1" v );
    ( "send can drive another app's interface (§6 debugger/editor)",
      fun () ->
        let server = Server.create () in
        let dbg = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"debugger" () in
        let ed = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"editor" () in
        ignore (run ed "listbox .src");
        ignore (run ed ".src insert end {line 1} {line 2} {line 3}");
        (* The debugger highlights the current line in the editor. *)
        ignore (run dbg "send editor {.src select from 1}");
        check_string "highlighted remotely" "1" (run ed ".src curselection") );
    ( "destroyed app disappears from the registry",
      fun () ->
        let server = Server.create () in
        let a = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"alpha" () in
        let b = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"beta" () in
        Tk.Core.destroy_app b;
        let interps = run a "winfo interps" in
        check_bool "beta gone" false (contains ~needle:"beta" interps) );
  ]

(* ------------------------------------------------------------------ *)
(* Selection across applications (§3.6) *)

let selection_tests =
  [
    ( "selection get crosses application boundaries",
      fun () ->
        let server = Server.create () in
        let a = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"alpha" () in
        let b = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"beta" () in
        ignore (run a "listbox .l");
        ignore (run a ".l insert end shared-data other");
        ignore (run a ".l select from 0");
        Tk.Core.update_all server;
        check_string "remote retrieve" "shared-data" (run b "selection get") );
    ( "selection handlers may be written in Tcl (§3.6)",
      fun () ->
        let server = Server.create () in
        let a = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"alpha" () in
        let b = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"beta" () in
        ignore (run a "frame .f");
        ignore (run a "proc give_selection {offset maxbytes} {return handler-result}");
        ignore (run a "selection handle .f give_selection");
        ignore (run a "selection own .f");
        Tk.Core.update_all server;
        check_string "tcl handler answers" "handler-result"
          (run b "selection get") );
    ( "selection get with no owner fails",
      fun () ->
        let _, app = fresh_app () in
        let msg = run app "catch {selection get} err; set err" in
        check_bool "error" true (contains ~needle:"selection doesn't exist" msg) );
    ( "claiming in one app clears the other (ICCCM)",
      fun () ->
        let server = Server.create () in
        let a = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"alpha" () in
        let b = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"beta" () in
        ignore (run a "listbox .l; .l insert end one; .l select from 0");
        Tk.Core.update_all server;
        ignore (run b "listbox .l; .l insert end two; .l select from 0");
        Tk.Core.update_all server;
        check_string "b now owns" "" (run a ".l curselection");
        check_string "retrieval from b" "two" (run a "selection get") );
  ]

(* ------------------------------------------------------------------ *)
(* grab, history, after cancel *)

let misc_tests =
  [
    ( "grab confines pointer events to a subtree",
      fun () ->
        let _server, app = fresh_app () in
        ignore (run app "button .inside -text In -command {set hit inside}");
        ignore (run app "button .outside -text Out -command {set hit outside}");
        ignore (run app "pack append . .inside {top} .outside {top}");
        Tk.Core.update app;
        ignore (run app "grab set .inside");
        check_string "current" ".inside" (run app "grab current");
        click app ".outside";
        check_bool "outside click swallowed" true
          (Tcl.Interp.get_var app.Tk.Core.interp "hit" = None);
        click app ".inside";
        check_string "inside click works" "inside" (run app "set hit");
        ignore (run app "grab release .inside");
        click app ".outside";
        check_string "after release" "outside" (run app "set hit") );
    ( "after cancel prevents the script",
      fun () ->
        let _, app = fresh_app () in
        let now = ref 0.0 in
        Tk.Dispatch.set_clock app.Tk.Core.disp (fun () -> !now);
        let id = run app "after 100 {set fired 1}" in
        ignore (run app (Printf.sprintf "after cancel %s" id));
        now := 1.0;
        Tk.Core.update app;
        check_bool "not fired" true
          (Tcl.Interp.get_var app.Tk.Core.interp "fired" = None) );
    ( "tkwait variable pumps events until the variable is set",
      fun () ->
        let _, app = fresh_app () in
        let now = ref 0.0 in
        Tk.Dispatch.set_clock app.Tk.Core.disp (fun () -> !now);
        (* The timer fires while tkwait is pumping the event loop. *)
        ignore (run app "after 50 {set answer yes}");
        now := 0.1;
        ignore (run app "tkwait variable answer");
        check_string "set during wait" "yes" (run app "set answer") );
    ( "modal dialog pattern: grab + tkwait + destroy",
      fun () ->
        let _, app = fresh_app () in
        let now = ref 0.0 in
        Tk.Dispatch.set_clock app.Tk.Core.disp (fun () -> !now);
        ignore
          (run app
             "proc ask {} {\n\
              global dlg_answer\n\
              frame .dlg\n\
              button .dlg.yes -text Yes -command {set dlg_answer yes}\n\
              pack append .dlg .dlg.yes {top}\n\
              place .dlg -x 10 -y 10\n\
              grab set .dlg\n\
              tkwait variable dlg_answer\n\
              grab release .dlg\n\
              destroy .dlg\n\
              return $dlg_answer\n\
              }");
        ignore (run app "after 20 {.dlg.yes invoke}");
        now := 0.05;
        check_string "answer" "yes" (run app "ask");
        check_string "cleaned up" "0" (run app "winfo exists .dlg");
        check_string "grab released" "" (run app "grab current") );
    ( "history records interactive events",
      fun () ->
        let _, app = fresh_app () in
        let interp = app.Tk.Core.interp in
        Tcl.Interp.set_history_recording interp true;
        Tcl.Interp.record_history_event interp "set a 1";
        ignore (run app "set a 1");
        Tcl.Interp.record_history_event interp "set b 2";
        ignore (run app "set b 2");
        Tcl.Interp.record_history_event interp "history nextid";
        check_string "nextid" "4" (run app "history nextid");
        check_string "event 1" "set a 1" (run app "history event 1") );
  ]

(* ------------------------------------------------------------------ *)
(* Integration: the complete Figure 9 browser, driven end-to-end *)

let figure9_integration =
  [
    ( "Figure 9 script runs, selects, browses and quits",
      fun () ->
        let dir = Filename.temp_file "fig9" "" in
        Sys.remove dir;
        Sys.mkdir dir 0o755;
        Out_channel.with_open_text (Filename.concat dir "afile") (fun oc ->
            Out_channel.output_string oc "x\n");
        Sys.mkdir (Filename.concat dir "subdir") 0o755;
        let server = Server.create () in
        let app =
          Tk_widgets.Tk_widgets_lib.new_app ~app_class:"Wish" ~server
            ~name:"browse" ()
        in
        let output = Buffer.create 128 in
        Tcl.Interp.set_output app.Tk.Core.interp (Buffer.add_string output);
        Tcl.Interp.set_var app.Tk.Core.interp "argv"
          (Tcl.Tcl_list.format [ dir ]);
        Tcl.Interp.set_var app.Tk.Core.interp "argc" "1";
        ignore
          (run app
             {|scrollbar .scroll -command ".list view"
listbox .list -scroll ".scroll set" -relief raised -geometry 20x20
pack append . .scroll {right filly} .list {left expand fill}
proc browse {dir file} {
  if {[string compare $dir "."] != 0} {set file $dir/$file}
  if [file $file isdirectory] {
    print "DIR $file\n"
  } else {
    if [file $file isfile] {print "FILE $file\n"} else {print "ODD $file\n"}
  }
}
if $argc>0 {set dir [index $argv 0]} else {set dir "."}
foreach i [exec ls -a $dir] {
  .list insert end $i
}
bind .list <space> {foreach i [selection get] {browse $dir $i}}
bind .list <Control-q> {destroy .}|});
        Tk.Core.update app;
        (* ls -a gives . .. afile subdir; select "afile" (row 2). *)
        check_string "4 items" "4" (run app ".list size");
        let listbox = Tk.Core.lookup_exn app ".list" in
        let win =
          Option.get (Server.lookup_window server listbox.Tk.Core.win)
        in
        let origin = Window.root_position win in
        Server.inject_motion server ~x:(origin.Geom.x + 20)
          ~y:(origin.Geom.y + 4 + (2 * 13));
        Server.inject_button server ~button:1 ~pressed:true;
        (* Drag to row 3 to select afile and subdir. *)
        Server.inject_motion server ~x:(origin.Geom.x + 20)
          ~y:(origin.Geom.y + 4 + (3 * 13));
        Server.inject_button server ~button:1 ~pressed:false;
        Tk.Core.update app;
        check_string "selection" "2 3" (run app ".list curselection");
        Server.inject_key server ~keysym:"space" ~pressed:true;
        Tk.Core.update app;
        let out = Buffer.contents output in
        check_bool "file browsed" true
          (contains ~needle:("FILE " ^ dir ^ "/afile") out);
        check_bool "dir browsed" true
          (contains ~needle:("DIR " ^ dir ^ "/subdir") out);
        (* Control-q destroys the application. *)
        Server.inject_key server ~keysym:"Control_L" ~pressed:true;
        Server.inject_key server ~keysym:"q" ~pressed:true;
        Tk.Core.update app;
        check_bool "destroyed" true app.Tk.Core.app_destroyed );
  ]

(* ------------------------------------------------------------------ *)
(* Rendering sanity: widgets appear in screen dumps *)

let render_tests =
  [
    ( "a packed UI renders its labels",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "button .ok -text OK");
        ignore (run app "label .title -text Files");
        ignore (run app "pack append . .title {top} .ok {top}");
        Tk.Core.update app;
        let dump = Raster.render app.Tk.Core.server () in
        check_bool "title" true (contains ~needle:"Files" dump);
        check_bool "button" true (contains ~needle:"OK" dump) );
    ( "listbox contents render in order",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "listbox .l -geometry 12x4");
        ignore (run app "pack append . .l {top}");
        ignore (run app ".l insert end first second third");
        Tk.Core.update app;
        let dump = Raster.render app.Tk.Core.server () in
        check_bool "first" true (contains ~needle:"first" dump);
        check_bool "second" true (contains ~needle:"second" dump) );
    ( "destroyed widgets disappear from the dump",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "button .b -text Victim");
        ignore (run app "pack append . .b {top}");
        Tk.Core.update app;
        let dump = Raster.render app.Tk.Core.server () in
        check_bool "visible" true (contains ~needle:"Victim" dump);
        ignore (run app "destroy .b");
        Tk.Core.update app;
        let dump = Raster.render app.Tk.Core.server () in
        check_bool "gone" false (contains ~needle:"Victim" dump) );
  ]

(* ------------------------------------------------------------------ *)
(* Text widget *)

let text_tests =
  [
    ( "insert and get with line.char indices",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "text .t");
        ignore (run app ".t insert end {hello\nworld}");
        check_string "lines" "2" (run app ".t lines");
        check_string "get range" "hello" (run app ".t get 1.0 1.5");
        check_string "get across lines" "lo\nwo" (run app ".t get 1.3 2.2");
        check_string "whole buffer" "hello\nworld" (run app ".t get 1.0 end") );
    ( "insert in the middle of a line",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "text .t");
        ignore (run app ".t insert end {hero}");
        ignore (run app ".t insert 1.2 {llo the}");
        check_string "spliced" "hello thero" (run app ".t get 1.0 end") );
    ( "delete joins lines",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "text .t");
        ignore (run app ".t insert end {ab\ncd}");
        ignore (run app ".t delete 1.2 2.0");
        check_string "joined" "abcd" (run app ".t get 1.0 end");
        check_string "one line" "1" (run app ".t lines") );
    ( "index normalisation and end",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "text .t");
        ignore (run app ".t insert end {abc\nde}");
        check_string "end" "2.2" (run app ".t index end");
        check_string "clamped" "2.2" (run app ".t index 9.99");
        check_string "line end" "1.3" (run app ".t index 1.end") );
    ( "typing at the keyboard edits the buffer",
      fun () ->
        let server, app = fresh_app () in
        ignore (run app "text .t -width 20 -height 5");
        ignore (run app "pack append . .t {top}");
        Tk.Core.update app;
        ignore (run app "focus .t");
        Server.inject_string server "hi";
        Server.inject_key server ~keysym:"Return" ~pressed:true;
        Server.inject_string server "there";
        Tk.Core.update app;
        check_string "typed" "hi\nthere" (run app ".t get 1.0 end");
        Server.inject_key server ~keysym:"BackSpace" ~pressed:true;
        Tk.Core.update app;
        check_string "backspace" "hi\nther" (run app ".t get 1.0 end");
        check_string "cursor" "2.4" (run app ".t mark insert") );
    ( "backspace at line start joins lines",
      fun () ->
        let server, app = fresh_app () in
        ignore (run app "text .t");
        ignore (run app "pack append . .t {top}");
        Tk.Core.update app;
        ignore (run app ".t insert end {ab\ncd}");
        ignore (run app ".t mark set insert 2.0");
        ignore (run app "focus .t");
        Server.inject_key server ~keysym:"BackSpace" ~pressed:true;
        Tk.Core.update app;
        check_string "joined" "abcd" (run app ".t get 1.0 end") );
    ( "selection tag claims the X selection",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "text .t");
        ignore (run app ".t insert end {pick me\nnot me}");
        ignore (run app ".t tag add sel 1.0 1.7");
        check_string "ranges" "1.0 1.7" (run app ".t tag ranges sel");
        check_string "selection" "pick me" (run app "selection get") );
    ( "view scrolls and reports",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "text .t -height 3");
        for i = 1 to 10 do
          ignore (run app (Printf.sprintf ".t insert end {line%d\n}" i))
        done;
        ignore (run app ".t view 4");
        check_string "top" "4" (run app ".t view") );
    ( "renders its visible lines",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "text .t -width 16 -height 3");
        ignore (run app "pack append . .t {top}");
        ignore (run app ".t insert end {alpha\nbeta\ngamma\ndelta}");
        Tk.Core.update app;
        let dump = Raster.render app.Tk.Core.server () in
        check_bool "alpha visible" true (contains ~needle:"alpha" dump);
        check_bool "delta off-screen" false (contains ~needle:"delta" dump);
        ignore (run app ".t view 2");
        Tk.Core.update app;
        let dump = Raster.render app.Tk.Core.server () in
        check_bool "delta now visible" true (contains ~needle:"delta" dump) );
  ]

(* ------------------------------------------------------------------ *)
(* Canvas (the §5 "drawing commands" extension) *)

let canvas_tests =
  [
    ( "create returns item ids; itemcount tracks",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "canvas .c -width 120 -height 60");
        let id1 = run app ".c create line 0 0 50 0" in
        let id2 = run app ".c create rectangle 10 10 40 30" in
        check_bool "distinct ids" true (id1 <> id2);
        check_string "count" "2" (run app ".c itemcount");
        check_string "type" "line" (run app (".c type " ^ id1)) );
    ( "coords query and move",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "canvas .c");
        let id = run app ".c create rectangle 10 10 30 20" in
        check_string "coords" "10 10 30 20" (run app (".c coords " ^ id));
        ignore (run app (".c move " ^ id ^ " 5 7"));
        check_string "moved" "15 17 35 27" (run app (".c coords " ^ id)) );
    ( "delete removes items",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "canvas .c");
        let id = run app ".c create line 0 0 10 10" in
        ignore (run app ".c create line 0 0 20 20");
        ignore (run app (".c delete " ^ id));
        check_string "one left" "1" (run app ".c itemcount");
        ignore (run app ".c delete all");
        check_string "empty" "0" (run app ".c itemcount") );
    ( "text items render into the dump",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "canvas .c -width 160 -height 60");
        ignore (run app "pack append . .c {top}");
        ignore (run app ".c create text 20 26 -text {drawn on canvas}");
        Tk.Core.update app;
        let dump = Raster.render app.Tk.Core.server () in
        check_bool "text present" true (contains ~needle:"drawn on canvas" dump) );
    ( "wrong coordinate count is an error",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "canvas .c");
        let msg = run app "catch {.c create line 1 2 3} err; set err" in
        check_bool "coordinate error" true
          (contains ~needle:"wrong # coordinates" msg) );
  ]

(* ------------------------------------------------------------------ *)
(* The placer *)

let place_tests =
  [
    ( "absolute placement",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "frame .f -width 30 -height 20");
        ignore (run app "place .f -x 15 -y 25");
        Tk.Core.update app;
        let w = Tk.Core.lookup_exn app ".f" in
        check_int "x" 15 w.Tk.Core.x;
        check_int "y" 25 w.Tk.Core.y;
        check_bool "mapped" true w.Tk.Core.mapped );
    ( "relative placement follows the master size",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "frame .f -width 10 -height 10");
        let main = Tk.Core.main_widget app in
        Tk.Core.move_resize main ~x:main.Tk.Core.x ~y:main.Tk.Core.y
          ~width:200 ~height:100;
        ignore (run app "place .f -relx 0.5 -rely 0.5");
        Tk.Core.update app;
        let w = Tk.Core.lookup_exn app ".f" in
        check_int "x = half master" 100 w.Tk.Core.x;
        check_int "y = half master" 50 w.Tk.Core.y );
    ( "place forget unmaps",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "frame .f -width 10 -height 10");
        ignore (run app "place .f -x 0 -y 0");
        Tk.Core.update app;
        ignore (run app "place forget .f");
        Tk.Core.update app;
        check_bool "unmapped" false (Tk.Core.lookup_exn app ".f").Tk.Core.mapped );
    ( "placing a packed window removes it from the packer",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "frame .f -width 10 -height 10");
        ignore (run app "pack append . .f {top}");
        ignore (run app "place .f -x 3 -y 4");
        Tk.Core.update app;
        check_string "not a pack slave" "" (run app "pack slaves .");
        let w = Tk.Core.lookup_exn app ".f" in
        check_int "placed" 3 w.Tk.Core.x );
  ]

(* ------------------------------------------------------------------ *)
(* Robustness: destruction during callbacks, re-entrancy, bad input *)

let robustness_tests =
  [
    ( "a button may destroy itself from its own -command",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "button .b -text Bye -command {destroy .b}");
        ignore (run app "pack append . .b {top}");
        Tk.Core.update app;
        click app ".b";
        check_string "gone" "0" (run app "winfo exists .b");
        (* The event loop keeps working afterwards. *)
        Tk.Core.update app;
        ignore (run app "button .c -text ok");
        check_string "new widget fine" "1" (run app "winfo exists .c") );
    ( "a binding may destroy its own widget via %W",
      fun () ->
        let server, app = fresh_app () in
        ignore (run app "frame .f -width 40 -height 30");
        ignore (run app "pack append . .f {top}");
        Tk.Core.update app;
        ignore (run app "bind .f <Button-1> {destroy %W}");
        let x, y = widget_point app ".f" ~fx:0.5 ~fy:0.5 in
        Server.inject_motion server ~x ~y;
        Server.inject_button server ~button:1 ~pressed:true;
        Server.inject_button server ~button:1 ~pressed:false;
        Tk.Core.update app;
        check_string "destroyed by its binding" "0" (run app "winfo exists .f") );
    ( "widget command on a destroyed widget is a clean error",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "button .b");
        ignore (run app "destroy .b");
        let msg = run app "catch {.b configure -text x} err; set err" in
        check_bool "clean error" true
          (contains ~needle:"invalid command name" msg
          || contains ~needle:"bad window path" msg) );
    ( "remote script may destroy widgets in the target",
      fun () ->
        let server = Server.create () in
        let a = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"alpha" () in
        let b = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"beta" () in
        ignore (run b "button .victim");
        ignore (run a "send beta {destroy .victim}");
        check_string "destroyed remotely" "0" (run b "winfo exists .victim") );
    ( "deeply nested sends terminate",
      fun () ->
        let server = Server.create () in
        let a = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"alpha" () in
        let _b = Tk_widgets.Tk_widgets_lib.new_app ~server ~name:"beta" () in
        (* ping-pong: alpha asks beta to ask alpha ... 5 levels deep. *)
        ignore
          (run a
             "proc ping {n} {if {$n <= 0} {return done}; send beta \"send \
              alpha {ping [expr $n - 1]}\"}");
        check_string "bottomed out" "done" (run a "ping 5") );
    ( "after script errors go to the error handler",
      fun () ->
        let _, app = fresh_app () in
        let errors = ref [] in
        app.Tk.Core.error_handler <- (fun m -> errors := m :: !errors);
        let now = ref 0.0 in
        Tk.Dispatch.set_clock app.Tk.Core.disp (fun () -> !now);
        ignore (run app "after 10 {error timer-boom}");
        now := 1.0;
        Tk.Core.update app;
        check_int "one error" 1 (List.length !errors);
        check_bool "message" true
          (contains ~needle:"timer-boom" (List.hd !errors)) );
    ( "listbox survives deleting the selected range",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "listbox .l");
        ignore (run app ".l insert end a b c d e");
        ignore (run app ".l select from 1");
        ignore (run app ".l select to 3");
        ignore (run app ".l delete 0 end");
        check_string "empty" "0" (run app ".l size");
        check_string "no selection" "" (run app ".l curselection");
        ignore (run app ".l insert end x");
        check_string "usable again" "1" (run app ".l size") );
    ( "entry index clamping",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "entry .e");
        ignore (run app ".e insert 0 abc");
        ignore (run app ".e icursor 999");
        check_string "clamped" "3" (run app ".e index cursor");
        ignore (run app ".e delete 0 999");
        check_string "emptied" "" (run app ".e get") );
    ( "text index clamping and empty-buffer edits",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "text .t");
        ignore (run app ".t delete 1.0 end");
        check_string "still one line" "1" (run app ".t lines");
        ignore (run app ".t insert 99.99 xyz");
        check_string "clamped insert" "xyz" (run app ".t get 1.0 end") );
    ( "destroying mid-update does not break sibling redraws",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "button .a -text A -command {destroy .b}");
        ignore (run app "button .b -text B");
        ignore (run app "pack append . .a {top} .b {top}");
        Tk.Core.update app;
        ignore (run app ".a invoke");
        (* .b had a pending redraw when it died; update must not crash. *)
        Tk.Core.update app;
        check_string "a alive" "1" (run app "winfo exists .a");
        check_string "b gone" "0" (run app "winfo exists .b") );
    ( "bgerror proc receives background errors",
      fun () ->
        let server, app = fresh_app () in
        ignore (run app "proc bgerror {msg} {global last_error; set last_error $msg}");
        ignore (run app "frame .f -width 40 -height 30");
        ignore (run app "pack append . .f {top}");
        Tk.Core.update app;
        ignore (run app "bind .f <Enter> {error enter-boom}");
        let x, y = widget_point app ".f" ~fx:0.5 ~fy:0.5 in
        Server.inject_motion server ~x ~y;
        Tk.Core.update app;
        check_bool "bgerror called" true
          (contains ~needle:"enter-boom" (run app "set last_error")) );
    ( "winfo containing maps coordinates to widgets",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "frame .f -width 60 -height 40");
        ignore (run app "pack append . .f {top}");
        Tk.Core.update app;
        let x, y = widget_point app ".f" ~fx:0.5 ~fy:0.5 in
        check_string "hit" ".f"
          (run app (Printf.sprintf "winfo containing %d %d" x y));
        check_string "miss" ""
          (run app "winfo containing 900 700") );
    ( "apps on separate displays do not interfere",
      fun () ->
        let server1 = Server.create () in
        let server2 = Server.create () in
        let a = Tk_widgets.Tk_widgets_lib.new_app ~server:server1 ~name:"app" () in
        let b = Tk_widgets.Tk_widgets_lib.new_app ~server:server2 ~name:"app" () in
        (* Same name is fine on different displays... *)
        check_string "no rename" "app" b.Tk.Core.app_name;
        (* ...and send cannot cross displays. *)
        let msg = run a "catch {send app {set x 1}} err; set err" in
        (* sending to yourself is legal; ensure it reached app a, not b *)
        ignore msg;
        ignore (run a "send app {set here a-side}");
        check_bool "b untouched" true
          (Tcl.Interp.get_var b.Tk.Core.interp "here" = None) );
  ]

let to_alcotest = List.map (fun (n, f) -> Alcotest.test_case n `Quick f)

let () =
  Alcotest.run "widgets"
    [
      ("buttons", to_alcotest button_tests);
      ("listbox-scrollbar", to_alcotest listbox_tests);
      ("entry-scale-message", to_alcotest entry_tests);
      ("menus", to_alcotest menu_tests);
      ("text", to_alcotest text_tests);
      ("canvas", to_alcotest canvas_tests);
      ("place", to_alcotest place_tests);
      ("send", to_alcotest send_tests);
      ("selection", to_alcotest selection_tests);
      ("grab-history-after", to_alcotest misc_tests);
      ("robustness", to_alcotest robustness_tests);
      ("figure9-integration", to_alcotest figure9_integration);
      ("rendering", to_alcotest render_tests);
    ]
