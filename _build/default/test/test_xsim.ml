(* Tests for the simulated X server: windows, events, resources,
   properties, selections, input injection, rasterizer. *)

open Xsim

let make_display () =
  let server = Server.create ~width:640 ~height:480 () in
  let conn = Server.connect server ~name:"test" in
  (server, conn)

let new_window ?(x = 10) ?(y = 10) ?(width = 100) ?(height = 50)
    ?(border_width = 0) conn parent =
  Server.create_window conn ~parent ~x ~y ~width ~height ~border_width

let drain conn =
  let rec go acc =
    match Server.next_event conn with
    | Some d -> go (d :: acc)
    | None -> List.rev acc
  in
  go []

let has_event deliveries ~window pred =
  List.exists
    (fun d -> d.Event.window = window && pred d.Event.event)
    deliveries

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Window tree *)

let window_tests =
  [
    ( "create assigns fresh ids",
      fun () ->
        let server, conn = make_display () in
        let a = new_window conn (Server.root server) in
        let b = new_window conn (Server.root server) in
        check_bool "distinct" true (a <> b) );
    ( "map delivers MapNotify and Expose",
      fun () ->
        let server, conn = make_display () in
        let w = new_window conn (Server.root server) in
        Server.map_window conn w;
        let evs = drain conn in
        check_bool "map" true
          (has_event evs ~window:w (function Event.Map_notify -> true | _ -> false));
        check_bool "expose" true
          (has_event evs ~window:w (function Event.Expose _ -> true | _ -> false)) );
    ( "child of unmapped parent is not viewable",
      fun () ->
        let server, conn = make_display () in
        let parent = new_window conn (Server.root server) in
        let child = new_window conn parent in
        Server.map_window conn child;
        let w = Option.get (Server.lookup_window server child) in
        check_bool "not viewable" false (Window.viewable w);
        Server.map_window conn parent;
        check_bool "viewable now" true (Window.viewable w) );
    ( "configure moves and resizes",
      fun () ->
        let server, conn = make_display () in
        let w = new_window conn (Server.root server) in
        Server.configure_window conn ~x:42 ~y:24 ~width:200 ~height:80 w;
        (match Server.query_geometry conn w with
        | Some r ->
          check_int "x" 42 r.Geom.rx;
          check_int "y" 24 r.Geom.ry;
          check_int "w" 200 r.Geom.rwidth;
          check_int "h" 80 r.Geom.rheight
        | None -> Alcotest.fail "no geometry") );
    ( "configure delivers ConfigureNotify",
      fun () ->
        let server, conn = make_display () in
        let w = new_window conn (Server.root server) in
        let _ = drain conn in
        Server.configure_window conn ~width:77 w;
        check_bool "configure event" true
          (has_event (drain conn) ~window:w (function
            | Event.Configure_notify { cwidth = 77; _ } -> true
            | _ -> false)) );
    ( "destroy removes descendants and notifies",
      fun () ->
        let server, conn = make_display () in
        let parent = new_window conn (Server.root server) in
        let child = new_window conn parent in
        let grandchild = new_window conn child in
        Server.destroy_window conn parent;
        let evs = drain conn in
        List.iter
          (fun id ->
            check_bool "destroy notify" true
              (has_event evs ~window:id (function
                | Event.Destroy_notify -> true
                | _ -> false));
            check_bool "gone" true (Server.lookup_window server id = None))
          [ parent; child; grandchild ] );
    ( "root position accumulates ancestors and borders",
      fun () ->
        let server, conn = make_display () in
        let a = Server.create_window conn ~parent:(Server.root server)
                  ~x:10 ~y:20 ~width:100 ~height:100 ~border_width:2 in
        let b = Server.create_window conn ~parent:a ~x:5 ~y:6 ~width:50
                  ~height:50 ~border_width:1 in
        let wb = Option.get (Server.lookup_window server b) in
        let p = Window.root_position wb in
        (* a content at (10+2, 20+2); b content at +5+1, +6+1. *)
        check_int "x" (12 + 6) p.Geom.x;
        check_int "y" (22 + 7) p.Geom.y );
    ( "window_at picks the topmost viewable",
      fun () ->
        let server, conn = make_display () in
        let bottom = new_window conn ~x:0 ~y:0 ~width:100 ~height:100
                       (Server.root server) in
        let top = new_window conn ~x:50 ~y:50 ~width:100 ~height:100
                    (Server.root server) in
        Server.map_window conn bottom;
        Server.map_window conn top;
        let hit p =
          (Option.get (Window.window_at (Server.root_window server) p)).Window.id
        in
        check_int "overlap goes to top" top (hit { Geom.x = 75; y = 75 });
        check_int "bottom alone" bottom (hit { Geom.x = 10; y = 10 });
        Server.lower_window conn top;
        check_int "after lower" bottom (hit { Geom.x = 75; y = 75 }) );
    ( "close destroys the client's top-level windows",
      fun () ->
        let server, conn = make_display () in
        let conn2 = Server.connect server ~name:"other" in
        let mine = new_window conn2 (Server.root server) in
        let theirs = new_window conn (Server.root server) in
        Server.close conn2;
        check_bool "mine gone" true (Server.lookup_window server mine = None);
        check_bool "theirs alive" true
          (Server.lookup_window server theirs <> None) );
  ]

(* ------------------------------------------------------------------ *)
(* Resources *)

let resource_tests =
  [
    ( "named color lookup",
      fun () ->
        let _, conn = make_display () in
        match Server.alloc_color conn "MediumSeaGreen" with
        | Some c -> check_string "hex" "#3cb371" (Color.to_hex c)
        | None -> Alcotest.fail "MediumSeaGreen missing" );
    ( "hex color forms",
      fun () ->
        check_string "#rgb" "#ff0000"
          (Color.to_hex (Option.get (Color.parse "#f00")));
        check_string "#rrggbb" "#123456"
          (Color.to_hex (Option.get (Color.parse "#123456")));
        check_string "#rrrrggggbbbb" "#12cd00"
          (Color.to_hex (Option.get (Color.parse "#12aacdef0012"))) );
    ( "unknown color is None",
      fun () ->
        let _, conn = make_display () in
        check_bool "none" true (Server.alloc_color conn "nosuchcolor" = None) );
    ( "color names with spaces",
      fun () ->
        check_bool "some" true (Color.parse "medium sea green" <> None) );
    ( "fonts: aliases and XLFD",
      fun () ->
        check_bool "fixed" true (Font.parse "fixed" <> None);
        check_bool "9x15" true (Font.parse "9x15" <> None);
        (match Font.parse "*-helvetica-bold-r-*-120-*" with
        | Some f ->
          check_bool "bold" true f.Font.bold;
          check_string "family" "helvetica" f.Font.family
        | None -> Alcotest.fail "XLFD parse failed");
        check_bool "garbage" true (Font.parse "no-such-font-at-all" = None) );
    ( "font metrics scale with size",
      fun () ->
        let small = Option.get (Font.parse "*-courier-medium-r-*-80-*") in
        let large = Option.get (Font.parse "*-courier-medium-r-*-240-*") in
        check_bool "wider" true (large.Font.char_width > small.Font.char_width);
        check_bool "taller" true
          (Font.line_height large > Font.line_height small) );
    ( "text width is linear in length",
      fun () ->
        let f = Option.get (Font.parse "fixed") in
        check_int "empty" 0 (Font.text_width f "");
        check_int "ten chars" (10 * f.Font.char_width)
          (Font.text_width f "abcdefghij") );
    ( "cursor font contains coffee_mug",
      fun () ->
        check_bool "coffee_mug" true (Cursor.parse "coffee_mug" <> None);
        check_bool "bogus" true (Cursor.parse "espresso_cup" = None) );
    ( "builtin bitmaps",
      fun () ->
        let b = Option.get (Bitmap.parse "gray50") in
        check_int "width" 4 b.Bitmap.width;
        check_bool "alternating" true
          (b.Bitmap.bits.(0).(0) && not b.Bitmap.bits.(0).(1)) );
    ( "xbm parsing",
      fun () ->
        let xbm =
          "#define star_width 8\n#define star_height 2\n\
           static char star_bits[] = { 0x01, 0x80 };\n"
        in
        match Bitmap.parse_xbm ~name:"@star" xbm with
        | Some b ->
          check_int "w" 8 b.Bitmap.width;
          check_int "h" 2 b.Bitmap.height;
          check_bool "bit 0,0" true b.Bitmap.bits.(0).(0);
          check_bool "bit 1,7" true b.Bitmap.bits.(1).(7);
          check_bool "bit 0,1" false b.Bitmap.bits.(0).(1)
        | None -> Alcotest.fail "xbm parse failed" );
    ( "resource requests are counted as round trips",
      fun () ->
        let _, conn = make_display () in
        Server.reset_stats conn;
        ignore (Server.alloc_color conn "red");
        ignore (Server.open_font conn "fixed");
        let s = Server.stats conn in
        check_int "allocs" 2 s.Server.resource_allocs;
        check_int "round trips" 2 s.Server.round_trips );
  ]

(* ------------------------------------------------------------------ *)
(* Properties and selections *)

let property_tests =
  [
    ( "change/get/delete property",
      fun () ->
        let server, conn = make_display () in
        let w = new_window conn (Server.root server) in
        let atom = Server.intern_atom conn "MY_PROP" in
        Server.change_property conn w ~prop:atom ~ptype:Atom.string "hello";
        (match Server.get_property conn w ~prop:atom with
        | Some p -> check_string "data" "hello" p.Window.prop_data
        | None -> Alcotest.fail "property missing");
        Server.delete_property conn w ~prop:atom;
        check_bool "deleted" true
          (Server.get_property conn w ~prop:atom = None) );
    ( "PropertyNotify reaches owner",
      fun () ->
        let server, conn = make_display () in
        let w = new_window conn (Server.root server) in
        let atom = Server.intern_atom conn "P" in
        let _ = drain conn in
        Server.change_property conn w ~prop:atom ~ptype:Atom.string "x";
        check_bool "notify" true
          (has_event (drain conn) ~window:w (function
            | Event.Property_notify { prop_atom; prop_deleted = false }
              when prop_atom = atom -> true
            | _ -> false)) );
    ( "PropertyNotify reaches listeners on foreign windows",
      fun () ->
        let server, conn = make_display () in
        let conn2 = Server.connect server ~name:"watcher" in
        let atom = Server.intern_atom conn "REGISTRY" in
        Server.listen_property conn2 (Server.root server);
        Server.change_property conn (Server.root server) ~prop:atom
          ~ptype:Atom.string "app1";
        check_bool "watcher sees it" true
          (has_event (drain conn2) ~window:(Server.root server) (function
            | Event.Property_notify { prop_atom; _ } when prop_atom = atom ->
              true
            | _ -> false)) );
    ( "atoms intern to stable ids",
      fun () ->
        let _, conn = make_display () in
        let a = Server.intern_atom conn "FOO" in
        let b = Server.intern_atom conn "FOO" in
        let c = Server.intern_atom conn "BAR" in
        check_int "same" a b;
        check_bool "different" true (a <> c);
        check_string "name" "FOO" (Option.get (Server.atom_name conn a)) );
    ( "selection ownership and clear",
      fun () ->
        let server, conn = make_display () in
        let w1 = new_window conn (Server.root server) in
        let w2 = new_window conn (Server.root server) in
        Server.set_selection_owner conn ~selection:Atom.primary w1;
        check_int "owner" w1
          (Server.get_selection_owner conn ~selection:Atom.primary);
        let _ = drain conn in
        Server.set_selection_owner conn ~selection:Atom.primary w2;
        check_bool "clear to old owner" true
          (has_event (drain conn) ~window:w1 (function
            | Event.Selection_clear { selection } when selection = Atom.primary
              -> true
            | _ -> false)) );
    ( "selection conversion round trip",
      fun () ->
        let server, owner_conn = make_display () in
        let req_conn = Server.connect server ~name:"requestor" in
        let owner_win = new_window owner_conn (Server.root server) in
        let req_win = new_window req_conn (Server.root server) in
        Server.set_selection_owner owner_conn ~selection:Atom.primary owner_win;
        let prop = Server.intern_atom req_conn "SEL_RESULT" in
        Server.convert_selection req_conn ~selection:Atom.primary
          ~target:Atom.string ~property:prop ~requestor:req_win;
        (* Owner receives the request... *)
        let request =
          List.find_map
            (fun d ->
              match d.Event.event with
              | Event.Selection_request r -> Some r
              | _ -> None)
            (drain owner_conn)
        in
        (match request with
        | None -> Alcotest.fail "owner got no SelectionRequest"
        | Some r ->
          check_int "requestor" req_win r.Event.sr_requestor;
          (* ... and answers with data. *)
          Server.send_selection_notify owner_conn ~requestor:req_win
            ~selection:Atom.primary ~target:Atom.string
            ~property:(Some r.Event.sr_property) ~data:(Some "the selection"));
        (* Requestor sees the notify and reads the property. *)
        check_bool "notify" true
          (has_event (drain req_conn) ~window:req_win (function
            | Event.Selection_notify { sn_property = Some _; _ } -> true
            | _ -> false));
        match Server.get_property req_conn req_win ~prop with
        | Some p -> check_string "data" "the selection" p.Window.prop_data
        | None -> Alcotest.fail "selection data not stored" );
    ( "conversion of unowned selection is refused",
      fun () ->
        let server, conn = make_display () in
        let w = new_window conn (Server.root server) in
        let prop = Server.intern_atom conn "R" in
        Server.convert_selection conn ~selection:Atom.primary
          ~target:Atom.string ~property:prop ~requestor:w;
        check_bool "refused" true
          (has_event (drain conn) ~window:w (function
            | Event.Selection_notify { sn_property = None; _ } -> true
            | _ -> false)) );
  ]

(* ------------------------------------------------------------------ *)
(* Input injection *)

let input_tests =
  [
    ( "motion generates Enter/Leave and Motion",
      fun () ->
        let server, conn = make_display () in
        let w = new_window conn ~x:100 ~y:100 ~width:50 ~height:50
                  (Server.root server) in
        Server.map_window conn w;
        let _ = drain conn in
        Server.inject_motion server ~x:120 ~y:120;
        let evs = drain conn in
        check_bool "enter" true
          (has_event evs ~window:w (function Event.Enter _ -> true | _ -> false));
        check_bool "motion with relative coords" true
          (has_event evs ~window:w (function
            | Event.Motion { mx = 20; my = 20; _ } -> true
            | _ -> false));
        Server.inject_motion server ~x:10 ~y:10;
        check_bool "leave" true
          (has_event (drain conn) ~window:w (function
            | Event.Leave _ -> true
            | _ -> false)) );
    ( "button press goes to pointer window with prior state",
      fun () ->
        let server, conn = make_display () in
        let w = new_window conn ~x:0 ~y:0 ~width:50 ~height:50
                  (Server.root server) in
        Server.map_window conn w;
        Server.inject_motion server ~x:25 ~y:25;
        let _ = drain conn in
        Server.inject_button server ~button:1 ~pressed:true;
        let evs = drain conn in
        check_bool "press, button1 not yet in state" true
          (has_event evs ~window:w (function
            | Event.Button_press { button = 1; button_state; _ } ->
              not button_state.Event.button1
            | _ -> false));
        Server.inject_button server ~button:1 ~pressed:false;
        check_bool "release carries button1 held" true
          (has_event (drain conn) ~window:w (function
            | Event.Button_release { button = 1; button_state; _ } ->
              button_state.Event.button1
            | _ -> false)) );
    ( "keys go to the focus window",
      fun () ->
        let server, conn = make_display () in
        let w1 = new_window conn ~x:0 ~y:0 ~width:50 ~height:50
                   (Server.root server) in
        let w2 = new_window conn ~x:100 ~y:0 ~width:50 ~height:50
                   (Server.root server) in
        Server.map_window conn w1;
        Server.map_window conn w2;
        Server.inject_motion server ~x:25 ~y:25;
        (* pointer in w1 *)
        Server.set_input_focus conn w2;
        let _ = drain conn in
        Server.inject_key server ~keysym:"a" ~pressed:true;
        check_bool "key in w2" true
          (has_event (drain conn) ~window:w2 (function
            | Event.Key_press { keysym = "a"; _ } -> true
            | _ -> false)) );
    ( "modifiers set event state",
      fun () ->
        let server, conn = make_display () in
        let w = new_window conn ~x:0 ~y:0 ~width:50 ~height:50
                  (Server.root server) in
        Server.map_window conn w;
        Server.inject_motion server ~x:10 ~y:10;
        let _ = drain conn in
        Server.inject_key server ~keysym:"Control_L" ~pressed:true;
        Server.inject_key server ~keysym:"w" ~pressed:true;
        check_bool "control-w" true
          (has_event (drain conn) ~window:w (function
            | Event.Key_press { keysym = "w"; key_state; _ } ->
              key_state.Event.control
            | _ -> false)) );
    ( "inject_string types each character",
      fun () ->
        let server, conn = make_display () in
        let w = new_window conn ~x:0 ~y:0 ~width:50 ~height:50
                  (Server.root server) in
        Server.map_window conn w;
        Server.inject_motion server ~x:10 ~y:10;
        let _ = drain conn in
        Server.inject_string server "Hi!";
        let keys =
          List.filter_map
            (fun d ->
              match d.Event.event with
              | Event.Key_press { keysym; _ } -> Some keysym
              | _ -> None)
            (drain conn)
        in
        check_bool "has H" true (List.mem "H" keys);
        check_bool "has i" true (List.mem "i" keys);
        check_bool "has exclam" true (List.mem "exclam" keys) );
    ( "keysym round trip",
      fun () ->
        check_string "space" "space" (Event.keysym_of_char ' ');
        check_bool "inverse" true (Event.char_of_keysym "space" = Some ' ');
        check_string "letter" "q" (Event.keysym_of_char 'q') );
    ( "focus change delivers FocusIn/FocusOut",
      fun () ->
        let server, conn = make_display () in
        let w1 = new_window conn (Server.root server) in
        let w2 = new_window conn (Server.root server) in
        Server.set_input_focus conn w1;
        let _ = drain conn in
        Server.set_input_focus conn w2;
        let evs = drain conn in
        check_bool "out" true
          (has_event evs ~window:w1 (function Event.Focus_out -> true | _ -> false));
        check_bool "in" true
          (has_event evs ~window:w2 (function Event.Focus_in -> true | _ -> false)) );
  ]

(* ------------------------------------------------------------------ *)
(* Rasterizer *)

let contains_sub ~needle haystack =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let raster_tests =
  [
    ( "text appears in the dump",
      fun () ->
        let server, conn = make_display () in
        let w = new_window conn ~x:0 ~y:0 ~width:200 ~height:64
                  (Server.root server) in
        Server.map_window conn w;
        let font = Option.get (Server.open_font conn "fixed") in
        let gc = Server.create_gc conn ~font () in
        Server.draw_text conn w gc ~x:16 ~y:24 "Hello, world";
        let dump = Raster.render server ~window:w () in
        check_bool "text present" true (contains_sub ~needle:"Hello, world" dump) );
    ( "unmapped windows are invisible",
      fun () ->
        let server, conn = make_display () in
        let w = new_window conn ~x:0 ~y:0 ~width:200 ~height:64
                  (Server.root server) in
        let font = Option.get (Server.open_font conn "fixed") in
        let gc = Server.create_gc conn ~font () in
        Server.draw_text conn w gc ~x:16 ~y:24 "invisible";
        let dump = Raster.render server () in
        check_bool "hidden" false (contains_sub ~needle:"invisible" dump) );
    ( "children clip to parents",
      fun () ->
        let server, conn = make_display () in
        let parent = new_window conn ~x:0 ~y:0 ~width:80 ~height:48
                       (Server.root server) in
        let child = new_window conn ~x:40 ~y:16 ~width:400 ~height:16 parent in
        Server.map_window conn parent;
        Server.map_window conn child;
        let font = Option.get (Server.open_font conn "fixed") in
        let gc = Server.create_gc conn ~font () in
        Server.draw_text conn child gc ~x:0 ~y:8
          "this text is far too long to fit";
        let dump = Raster.render server ~window:parent () in
        (* Only ~5 columns of the child are inside the parent. *)
        check_bool "clipped" false (contains_sub ~needle:"too long" dump);
        check_bool "start visible" true (contains_sub ~needle:"this" dump) );
    ( "dark background shades cells",
      fun () ->
        let server, conn = make_display () in
        let w = new_window conn ~x:0 ~y:0 ~width:80 ~height:32
                  (Server.root server) in
        Server.set_window_background conn w (Option.get (Color.parse "black"));
        Server.map_window conn w;
        let dump = Raster.render server ~window:w () in
        check_bool "shaded" true (contains_sub ~needle:"#" dump) );
    ( "WM_NAME property draws a title bar",
      fun () ->
        let server, conn = make_display () in
        let w = new_window conn ~x:0 ~y:20 ~width:160 ~height:32
                  (Server.root server) in
        Server.map_window conn w;
        Server.change_property conn w ~prop:Atom.wm_name ~ptype:Atom.string
          "my window";
        let dump = Raster.render server ~window:w () in
        check_bool "title present" true (contains_sub ~needle:"my window" dump);
        check_bool "bar present" true (contains_sub ~needle:"==" dump) );
    ( "stacking order affects rendering",
      fun () ->
        let server, conn = make_display () in
        let bottom = new_window conn ~x:0 ~y:0 ~width:120 ~height:32
                       (Server.root server) in
        let top = new_window conn ~x:0 ~y:0 ~width:120 ~height:32
                    (Server.root server) in
        Server.map_window conn bottom;
        Server.map_window conn top;
        let font = Option.get (Server.open_font conn "fixed") in
        let gc = Server.create_gc conn ~font () in
        Server.draw_text conn bottom gc ~x:8 ~y:16 "UNDER";
        Server.fill_rect conn top gc
          (Geom.rect ~x:0 ~y:0 ~width:120 ~height:32);
        let dump = Raster.render server () in
        check_bool "bottom hidden" false (contains_sub ~needle:"UNDER" dump);
        Server.raise_window conn bottom;
        let dump = Raster.render server () in
        check_bool "bottom raised and visible" true
          (contains_sub ~needle:"UNDER" dump) );
    ( "closing a connection releases its selections",
      fun () ->
        let server, conn = make_display () in
        let other = Server.connect server ~name:"other" in
        let w = new_window other (Server.root server) in
        Server.set_selection_owner other ~selection:Atom.primary w;
        Server.close other;
        check_int "unowned after close" Xid.none
          (Server.get_selection_owner conn ~selection:Atom.primary) );
    ( "logical clock advances with requests",
      fun () ->
        let server, conn = make_display () in
        let t0 = Server.time server in
        ignore (new_window conn (Server.root server));
        check_bool "ticked" true (Server.time server > t0);
        Server.advance_time server 500;
        check_bool "manual advance" true (Server.time server >= t0 + 500) );
    ( "relief draws a frame",
      fun () ->
        let server, conn = make_display () in
        let w = new_window conn ~x:0 ~y:0 ~width:160 ~height:64
                  (Server.root server) in
        Server.map_window conn w;
        Server.draw_relief conn w
          (Geom.rect ~x:0 ~y:0 ~width:160 ~height:64)
          ~raised:true ~width:2;
        let dump = Raster.render server ~window:w () in
        check_bool "corner" true (contains_sub ~needle:"+--" dump) );
  ]

(* ------------------------------------------------------------------ *)
(* Properties of geometry *)

let geom_tests =
  [
    ( "intersect is commutative and contained",
      QCheck.Test.make ~count:300 ~name:"intersect commutative"
        QCheck.(
          quad (int_range 0 50) (int_range 0 50) (int_range 1 50)
            (int_range 1 50))
        (fun (x, y, w, h) ->
          let a = Geom.rect ~x ~y ~width:w ~height:h in
          let b = Geom.rect ~x:25 ~y:25 ~width:30 ~height:30 in
          Geom.intersect a b = Geom.intersect b a) );
    ( "intersection is inside both",
      QCheck.Test.make ~count:300 ~name:"intersect subset"
        QCheck.(
          quad (int_range (-20) 60) (int_range (-20) 60) (int_range 1 40)
            (int_range 1 40))
        (fun (x, y, w, h) ->
          let a = Geom.rect ~x ~y ~width:w ~height:h in
          let b = Geom.rect ~x:0 ~y:0 ~width:50 ~height:50 in
          match Geom.intersect a b with
          | None -> true
          | Some r ->
            r.Geom.rx >= a.Geom.rx && r.Geom.ry >= a.Geom.ry
            && r.Geom.rx >= b.Geom.rx
            && r.Geom.rx + r.Geom.rwidth <= a.Geom.rx + a.Geom.rwidth
            && r.Geom.rx + r.Geom.rwidth <= b.Geom.rx + b.Geom.rwidth
            && not (Geom.is_empty r)) );
    ( "contains matches intersect with a unit rect",
      QCheck.Test.make ~count:300 ~name:"contains/intersect agree"
        QCheck.(pair (int_range (-10) 60) (int_range (-10) 60))
        (fun (x, y) ->
          let r = Geom.rect ~x:0 ~y:0 ~width:50 ~height:50 in
          let unit = Geom.rect ~x ~y ~width:1 ~height:1 in
          Geom.contains r { Geom.x; y } = (Geom.intersect r unit <> None)) );
  ]

let to_alcotest = List.map (fun (n, f) -> Alcotest.test_case n `Quick f)

let () =
  Alcotest.run "xsim"
    [
      ("windows", to_alcotest window_tests);
      ("resources", to_alcotest resource_tests);
      ("properties-selections", to_alcotest property_tests);
      ("input", to_alcotest input_tests);
      ("raster", to_alcotest raster_tests);
      ( "geometry-properties",
        List.map (fun (_, t) -> QCheck_alcotest.to_alcotest t) geom_tests );
    ]
