(* Tests for the Tk intrinsics: path names, the option database, the
   resource cache, the dispatcher, event bindings (Figure 7), the packer
   (Figure 8), focus, and widget configuration machinery. *)

open Xsim

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let fresh_app ?(name = "test") () =
  let server = Server.create () in
  let app = Tk_widgets.Tk_widgets_lib.new_app ~server ~name () in
  (server, app)

let run app script =
  match Tcl.Interp.eval_value app.Tk.Core.interp script with
  | Ok v -> v
  | Error msg -> Alcotest.failf "script %S failed: %s" script msg

let expect_error app script =
  match Tcl.Interp.eval_value app.Tk.Core.interp script with
  | Ok v -> Alcotest.failf "script %S unexpectedly returned %S" script v
  | Error msg -> msg

let contains ~needle haystack =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Route pointer/keyboard input at a widget's center. *)
let widget_center app path =
  let w = Tk.Core.lookup_exn app path in
  let win = Option.get (Server.lookup_window app.Tk.Core.server w.Tk.Core.win) in
  let p = Window.root_position win in
  (p.Geom.x + (w.Tk.Core.width / 2), p.Geom.y + (w.Tk.Core.height / 2))

let click app path =
  let server = app.Tk.Core.server in
  let x, y = widget_center app path in
  Server.inject_motion server ~x ~y;
  Server.inject_button server ~button:1 ~pressed:true;
  Server.inject_button server ~button:1 ~pressed:false;
  Tk.Core.update app

(* ------------------------------------------------------------------ *)
(* Path names (§3.1) *)

let path_tests =
  [
    ( "validity",
      fun () ->
        check_bool "." true (Tk.Path.is_valid ".");
        check_bool ".a.b.c" true (Tk.Path.is_valid ".a.b.c");
        check_bool "no leading dot" false (Tk.Path.is_valid "a.b");
        check_bool "empty component" false (Tk.Path.is_valid ".a..b");
        check_bool "uppercase start" false (Tk.Path.is_valid ".Frame") );
    ( "parent/basename",
      fun () ->
        check_string "parent" ".a" (Option.get (Tk.Path.parent ".a.b"));
        check_string "parent of .a" "." (Option.get (Tk.Path.parent ".a"));
        check_bool "no parent of ." true (Tk.Path.parent "." = None);
        check_string "basename" "c" (Tk.Path.basename ".a.b.c") );
    ( "join/ancestor",
      fun () ->
        check_string "join root" ".a" (Tk.Path.join "." "a");
        check_string "join nested" ".a.b" (Tk.Path.join ".a" "b");
        check_bool "ancestor" true (Tk.Path.is_ancestor ~ancestor:".a" ".a.b.c");
        check_bool "not ancestor" false (Tk.Path.is_ancestor ~ancestor:".a" ".ab");
        check_bool "root ancestor" true (Tk.Path.is_ancestor ~ancestor:"." ".x") );
  ]

(* ------------------------------------------------------------------ *)
(* Option database (§3.5) *)

let optiondb_tests =
  [
    ( "star pattern matches all widgets of a class (paper example)",
      fun () ->
        let db = Tk.Optiondb.create () in
        Tk.Optiondb.add db ~pattern:"*Button.background" "red";
        let v =
          Tk.Optiondb.get db
            ~name_chain:[ ("app", "Tk"); ("b", "Button") ]
            ~name:"background" ~cls:"Background"
        in
        check_string "matched" "red" (Option.get v) );
    ( "name beats class",
      fun () ->
        let db = Tk.Optiondb.create () in
        Tk.Optiondb.add db ~pattern:"*Button.background" "red";
        Tk.Optiondb.add db ~pattern:"*ok.background" "green";
        let v =
          Tk.Optiondb.get db
            ~name_chain:[ ("app", "Tk"); ("ok", "Button") ]
            ~name:"background" ~cls:"Background"
        in
        check_string "name wins" "green" (Option.get v) );
    ( "tight binding requires adjacency",
      fun () ->
        let db = Tk.Optiondb.create () in
        Tk.Optiondb.add db ~pattern:"app.f.background" "blue";
        let deep =
          Tk.Optiondb.get db
            ~name_chain:[ ("app", "Tk"); ("g", "Frame"); ("f", "Frame") ]
            ~name:"background" ~cls:"Background"
        in
        check_bool "no skip with dot" true (deep = None) );
    ( "loose binding skips levels",
      fun () ->
        let db = Tk.Optiondb.create () in
        Tk.Optiondb.add db ~pattern:"app*background" "blue";
        let deep =
          Tk.Optiondb.get db
            ~name_chain:[ ("app", "Tk"); ("g", "Frame"); ("f", "Frame") ]
            ~name:"background" ~cls:"Background"
        in
        check_string "skips" "blue" (Option.get deep) );
    ( "priority overrides specificity",
      fun () ->
        let db = Tk.Optiondb.create () in
        Tk.Optiondb.add db ~priority:80 ~pattern:"*background" "low-detail";
        Tk.Optiondb.add db ~priority:20 ~pattern:"app.b.background" "specific";
        let v =
          Tk.Optiondb.get db
            ~name_chain:[ ("app", "Tk"); ("b", "Button") ]
            ~name:"background" ~cls:"Background"
        in
        check_string "priority wins" "low-detail" (Option.get v) );
    ( "load_string parses .Xdefaults text",
      fun () ->
        let db = Tk.Optiondb.create () in
        let text = "! comment\n*Button.background: red\napp*font: fixed\n" in
        (match Tk.Optiondb.load_string db text with
        | Ok n -> check_int "entries" 2 n
        | Error e -> Alcotest.fail e);
        check_int "size" 2 (Tk.Optiondb.size db) );
    ( "widgets pick defaults from the database (§4)",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "option add *Button.text Hello");
        ignore (run app "button .b");
        check_string "db default" "Hello" (run app ".b cget -text");
        (* Explicit options still win. *)
        ignore (run app "button .c -text Bye");
        check_string "explicit" "Bye" (run app ".c cget -text") );
  ]

(* ------------------------------------------------------------------ *)
(* Resource cache (§3.3) *)

let rescache_tests =
  [
    ( "repeated color lookups hit the server once",
      fun () ->
        let server = Server.create () in
        let conn = Server.connect server ~name:"c" in
        let cache = Tk.Rescache.create conn in
        Server.reset_stats conn;
        for _ = 1 to 10 do
          ignore (Tk.Rescache.color cache "MediumSeaGreen")
        done;
        check_int "one alloc" 1 (Server.stats conn).Server.resource_allocs;
        check_int "hits" 9 (Tk.Rescache.hits cache) );
    ( "disabled cache goes to the server every time",
      fun () ->
        let server = Server.create () in
        let conn = Server.connect server ~name:"c" in
        let cache = Tk.Rescache.create conn in
        Tk.Rescache.set_enabled cache false;
        Server.reset_stats conn;
        for _ = 1 to 10 do
          ignore (Tk.Rescache.color cache "red")
        done;
        check_int "ten allocs" 10 (Server.stats conn).Server.resource_allocs );
    ( "cache keys are case-insensitive textual names",
      fun () ->
        let server = Server.create () in
        let conn = Server.connect server ~name:"c" in
        let cache = Tk.Rescache.create conn in
        Server.reset_stats conn;
        ignore (Tk.Rescache.color cache "Red");
        ignore (Tk.Rescache.color cache "red");
        ignore (Tk.Rescache.color cache "RED");
        check_int "one alloc" 1 (Server.stats conn).Server.resource_allocs );
    ( "reverse lookup returns the textual name (§3.3)",
      fun () ->
        let server = Server.create () in
        let conn = Server.connect server ~name:"c" in
        let cache = Tk.Rescache.create conn in
        let c = Option.get (Tk.Rescache.color cache "MediumSeaGreen") in
        check_string "name" "MediumSeaGreen"
          (Option.get (Tk.Rescache.color_name cache c)) );
    ( "GCs are shared for equal components",
      fun () ->
        let server = Server.create () in
        let conn = Server.connect server ~name:"c" in
        let cache = Tk.Rescache.create conn in
        let gc1 = Tk.Rescache.gc cache ~foreground:"black" () in
        let gc2 = Tk.Rescache.gc cache ~foreground:"black" () in
        let gc3 = Tk.Rescache.gc cache ~foreground:"red" () in
        check_bool "same id" true (gc1.Gcontext.gc_id = gc2.Gcontext.gc_id);
        check_bool "different id" true (gc1.Gcontext.gc_id <> gc3.Gcontext.gc_id) );
  ]

(* ------------------------------------------------------------------ *)
(* Dispatcher: timers, idle, %-free plumbing (§3.2) *)

let dispatch_tests =
  [
    ( "timers fire in deadline order under a manual clock",
      fun () ->
        let now = ref 0.0 in
        let d = Tk.Dispatch.create ~clock:(fun () -> !now) () in
        let log = ref [] in
        ignore (Tk.Dispatch.after d ~ms:200 (fun () -> log := "b" :: !log));
        ignore (Tk.Dispatch.after d ~ms:100 (fun () -> log := "a" :: !log));
        check_int "nothing due" 0 (Tk.Dispatch.run_due_timers d);
        now := 0.15;
        check_int "one due" 1 (Tk.Dispatch.run_due_timers d);
        now := 0.25;
        check_int "second due" 1 (Tk.Dispatch.run_due_timers d);
        check_bool "order" true (!log = [ "b"; "a" ]) );
    ( "cancel removes a timer",
      fun () ->
        let now = ref 0.0 in
        let d = Tk.Dispatch.create ~clock:(fun () -> !now) () in
        let fired = ref false in
        let id = Tk.Dispatch.after d ~ms:10 (fun () -> fired := true) in
        check_bool "cancelled" true (Tk.Dispatch.cancel d id);
        now := 1.0;
        ignore (Tk.Dispatch.run_due_timers d);
        check_bool "not fired" false !fired );
    ( "idle callbacks scheduled during idle run next sweep",
      fun () ->
        let d = Tk.Dispatch.create () in
        let count = ref 0 in
        Tk.Dispatch.when_idle d (fun () ->
            incr count;
            Tk.Dispatch.when_idle d (fun () -> incr count));
        check_int "first sweep" 1 (Tk.Dispatch.run_idle d);
        check_int "count" 1 !count;
        check_int "second sweep" 1 (Tk.Dispatch.run_idle d);
        check_int "count" 2 !count );
    ( "after command schedules Tcl scripts",
      fun () ->
        let _, app = fresh_app () in
        let now = ref 0.0 in
        Tk.Dispatch.set_clock app.Tk.Core.disp (fun () -> !now);
        ignore (run app "after 100 {set fired 1}");
        Tk.Core.update app;
        check_bool "not yet" true
          (Tcl.Interp.get_var app.Tk.Core.interp "fired" = None);
        now := 0.2;
        Tk.Core.update app;
        check_string "fired" "1"
          (Option.get (Tcl.Interp.get_var app.Tk.Core.interp "fired")) );
  ]

(* ------------------------------------------------------------------ *)
(* Bindings (§3.2, Figure 7) *)

let binding_tests =
  [
    ( "pattern parsing and canonical forms",
      fun () ->
        let canon s =
          match Tk.Bindpattern.parse_sequence s with
          | Ok p -> Tk.Bindpattern.canonical p
          | Error e -> Alcotest.failf "parse %S: %s" s e
        in
        check_string "button aliases" (canon "<Button-1>") (canon "<ButtonPress-1>");
        check_string "numeric shorthand" (canon "<1>") (canon "<Button-1>");
        check_string "key shorthand" (canon "a") (canon "<KeyPress-a>");
        check_bool "bad pattern" true
          (Result.is_error (Tk.Bindpattern.parse_sequence "<NoSuchEvent-1-2-3>")) );
    ( "Figure 7: Enter binding fires",
      fun () ->
        let server, app = fresh_app () in
        ignore (run app "button .x -text hi; pack append . .x {top}");
        Tk.Core.update app;
        ignore (run app "bind .x <Enter> {set entered 1}");
        let x, y = widget_center app ".x" in
        Server.inject_motion server ~x ~y;
        Tk.Core.update app;
        check_string "entered" "1"
          (Option.get (Tcl.Interp.get_var app.Tk.Core.interp "entered")) );
    ( "Figure 7: plain key binding",
      fun () ->
        let server, app = fresh_app () in
        ignore (run app "button .x -text hi; pack append . .x {top}");
        Tk.Core.update app;
        ignore (run app "bind .x a {set typed a}");
        let x, y = widget_center app ".x" in
        Server.inject_motion server ~x ~y;
        Tk.Core.update app;
        Server.inject_key server ~keysym:"a" ~pressed:true;
        Tk.Core.update app;
        check_string "typed" "a"
          (Option.get (Tcl.Interp.get_var app.Tk.Core.interp "typed")) );
    ( "Figure 7: <Escape>q two-key sequence",
      fun () ->
        let server, app = fresh_app () in
        ignore (run app "button .x -text hi; pack append . .x {top}");
        Tk.Core.update app;
        ignore (run app "bind .x <Escape>q {set seq 1}");
        let x, y = widget_center app ".x" in
        Server.inject_motion server ~x ~y;
        (* q alone must not fire. *)
        Server.inject_key server ~keysym:"q" ~pressed:true;
        Tk.Core.update app;
        check_bool "not yet" true
          (Tcl.Interp.get_var app.Tk.Core.interp "seq" = None);
        Server.inject_key server ~keysym:"Escape" ~pressed:true;
        Server.inject_key server ~keysym:"q" ~pressed:true;
        Tk.Core.update app;
        check_string "sequence fired" "1"
          (Option.get (Tcl.Interp.get_var app.Tk.Core.interp "seq")) );
    ( "Figure 7: <Double-Button-1> with %x %y substitution",
      fun () ->
        let server, app = fresh_app () in
        ignore (run app "button .x -text hi; pack append . .x {top}");
        Tk.Core.update app;
        ignore (run app "bind .x <Double-Button-1> {set where \"%x %y\"}");
        let x, y = widget_center app ".x" in
        Server.inject_motion server ~x ~y;
        Server.inject_button server ~button:1 ~pressed:true;
        Server.inject_button server ~button:1 ~pressed:false;
        Tk.Core.update app;
        check_bool "single click no fire" true
          (Tcl.Interp.get_var app.Tk.Core.interp "where" = None);
        Server.inject_button server ~button:1 ~pressed:true;
        Tk.Core.update app;
        let w = Tk.Core.lookup_exn app ".x" in
        let expected =
          Printf.sprintf "%d %d" (w.Tk.Core.width / 2) (w.Tk.Core.height / 2)
        in
        check_string "coords substituted" expected
          (Option.get (Tcl.Interp.get_var app.Tk.Core.interp "where")) );
    ( "double click too slow counts as single",
      fun () ->
        let server, app = fresh_app () in
        ignore (run app "button .x -text hi; pack append . .x {top}");
        Tk.Core.update app;
        ignore (run app "bind .x <Double-Button-1> {set dbl 1}");
        let x, y = widget_center app ".x" in
        Server.inject_motion server ~x ~y;
        Server.inject_button server ~button:1 ~pressed:true;
        Server.inject_button server ~button:1 ~pressed:false;
        Server.advance_time server 1000;
        Server.inject_button server ~button:1 ~pressed:true;
        Tk.Core.update app;
        check_bool "no double" true
          (Tcl.Interp.get_var app.Tk.Core.interp "dbl" = None) );
    ( "modifier bindings: <Control-w>",
      fun () ->
        let server, app = fresh_app () in
        ignore (run app "entry .e; pack append . .e {top}");
        Tk.Core.update app;
        ignore (run app "bind .e <Control-w> {set cw 1}");
        let x, y = widget_center app ".e" in
        Server.inject_motion server ~x ~y;
        Server.inject_key server ~keysym:"w" ~pressed:true;
        Tk.Core.update app;
        check_bool "plain w no fire" true
          (Tcl.Interp.get_var app.Tk.Core.interp "cw" = None);
        Server.inject_key server ~keysym:"Control_L" ~pressed:true;
        Server.inject_key server ~keysym:"w" ~pressed:true;
        Tk.Core.update app;
        check_string "control-w" "1"
          (Option.get (Tcl.Interp.get_var app.Tk.Core.interp "cw")) );
    ( "most specific binding wins",
      fun () ->
        let server, app = fresh_app () in
        ignore (run app "button .x -text hi; pack append . .x {top}");
        Tk.Core.update app;
        ignore (run app "bind .x <Key> {set which any}");
        ignore (run app "bind .x z {set which z}");
        let x, y = widget_center app ".x" in
        Server.inject_motion server ~x ~y;
        Server.inject_key server ~keysym:"z" ~pressed:true;
        Tk.Core.update app;
        check_string "specific" "z"
          (Option.get (Tcl.Interp.get_var app.Tk.Core.interp "which"));
        Server.inject_key server ~keysym:"p" ~pressed:true;
        Tk.Core.update app;
        check_string "generic" "any"
          (Option.get (Tcl.Interp.get_var app.Tk.Core.interp "which")) );
    ( "%W and %K substitution",
      fun () ->
        let server, app = fresh_app () in
        ignore (run app "button .x -text hi; pack append . .x {top}");
        Tk.Core.update app;
        ignore (run app "bind .x <Key> {set info \"%W %K\"}");
        let x, y = widget_center app ".x" in
        Server.inject_motion server ~x ~y;
        Server.inject_key server ~keysym:"space" ~pressed:true;
        Tk.Core.update app;
        check_string "subst" ".x space"
          (Option.get (Tcl.Interp.get_var app.Tk.Core.interp "info")) );
    ( "bind with empty script deletes the binding",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "button .x -text hi");
        ignore (run app "bind .x <Enter> {foo}");
        check_bool "listed" true
          (contains ~needle:"Enter" (run app "bind .x"));
        ignore (run app "bind .x <Enter> {}");
        check_string "gone" "" (run app "bind .x") );
    ( "bind query returns the script",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "button .x -text hi");
        ignore (run app "bind .x <Enter> {print hello}");
        check_string "script" "print hello" (run app "bind .x <Enter>") );
    ( "binding errors go to the error handler, not the caller",
      fun () ->
        let server, app = fresh_app () in
        let errors = ref [] in
        app.Tk.Core.error_handler <- (fun m -> errors := m :: !errors);
        ignore (run app "button .x -text hi; pack append . .x {top}");
        Tk.Core.update app;
        ignore (run app "bind .x <Enter> {error boom}");
        let x, y = widget_center app ".x" in
        Server.inject_motion server ~x ~y;
        Tk.Core.update app;
        check_int "one error" 1 (List.length !errors);
        check_bool "message" true (contains ~needle:"boom" (List.hd !errors)) );
  ]

(* ------------------------------------------------------------------ *)
(* The packer (§3.4, Figure 8) *)

let pack_tests =
  [
    ( "Figure 8: all-in-a-column with truncation",
      fun () ->
        (* Requested sizes roughly as in the figure; the parent is too
           small, so window C loses width and window D loses height. *)
        let _, app = fresh_app () in
        ignore (run app "frame .a -width 40 -height 30");
        ignore (run app "frame .b -width 60 -height 30");
        ignore (run app "frame .c -width 120 -height 30");
        ignore (run app "frame .d -width 50 -height 60");
        (* Fix the parent size: 100 wide, 120 tall. *)
        let main = Tk.Core.main_widget app in
        ignore (run app "pack append . .a {top} .b {top} .c {top} .d {top}");
        Tk.Core.move_resize main ~x:0 ~y:0 ~width:100 ~height:120;
        Tk.Pack.arrange main;
        Tk.Core.update app;
        let geom path =
          let w = Tk.Core.lookup_exn app path in
          (w.Tk.Core.x, w.Tk.Core.y, w.Tk.Core.width, w.Tk.Core.height)
        in
        let _, ay, aw, ah = geom ".a" in
        check_int "A keeps width" 40 aw;
        check_int "A keeps height" 30 ah;
        check_int "A at top" 0 ay;
        let _, by, _, _ = geom ".b" in
        check_int "B below A" 30 by;
        let _, _, cw, _ = geom ".c" in
        check_int "C truncated to parent width" 100 cw;
        let _, dy, _, dh = geom ".d" in
        check_int "D below C" 90 dy;
        check_int "D truncated height" 30 dh );
    ( "paper §3.4 packer example: three windows in a column",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "frame .x");
        ignore (run app "frame .x.a -width 30 -height 10");
        ignore (run app "frame .x.b -width 30 -height 10");
        ignore (run app "frame .x.c -width 30 -height 10");
        ignore (run app "pack append .x .x.a top .x.b top .x.c top");
        ignore (run app "pack append . .x {top}");
        Tk.Core.update app;
        let ys =
          List.map
            (fun p -> (Tk.Core.lookup_exn app p).Tk.Core.y)
            [ ".x.a"; ".x.b"; ".x.c" ]
        in
        check_bool "stacked top-down" true (ys = [ 0; 10; 20 ]) );
    ( "geometry propagation: master requests what slaves need",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "frame .f");
        ignore (run app "frame .f.a -width 50 -height 20");
        ignore (run app "frame .f.b -width 70 -height 25");
        ignore (run app "pack append .f .f.a {top} .f.b {top}");
        let f = Tk.Core.lookup_exn app ".f" in
        check_int "req width = max slave" 70 f.Tk.Core.req_width;
        check_int "req height = sum" 45 f.Tk.Core.req_height );
    ( "side left/right packing",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "frame .l -width 30 -height 40");
        ignore (run app "frame .r -width 30 -height 40");
        let main = Tk.Core.main_widget app in
        ignore (run app "pack append . .l {left} .r {right}");
        Tk.Core.move_resize main ~x:0 ~y:0 ~width:100 ~height:40;
        Tk.Pack.arrange main;
        Tk.Core.update app;
        let l = Tk.Core.lookup_exn app ".l" in
        let r = Tk.Core.lookup_exn app ".r" in
        check_int "left at 0" 0 l.Tk.Core.x;
        check_int "right flush" 70 r.Tk.Core.x );
    ( "expand absorbs leftover space",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "frame .s -width 20 -height 40");
        ignore (run app "frame .e -width 20 -height 40");
        let main = Tk.Core.main_widget app in
        ignore (run app "pack append . .s {left} .e {left expand fill}");
        Tk.Core.move_resize main ~x:0 ~y:0 ~width:200 ~height:40;
        Tk.Pack.arrange main;
        Tk.Core.update app;
        let e = Tk.Core.lookup_exn app ".e" in
        check_int "expanded width" 180 e.Tk.Core.width );
    ( "fill stretches across the parcel",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "frame .t -width 20 -height 10");
        let main = Tk.Core.main_widget app in
        ignore (run app "pack append . .t {top fillx}");
        Tk.Core.move_resize main ~x:0 ~y:0 ~width:150 ~height:100;
        Tk.Pack.arrange main;
        Tk.Core.update app;
        check_int "fills width" 150 (Tk.Core.lookup_exn app ".t").Tk.Core.width );
    ( "padding insets the slave",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "frame .p -width 20 -height 20");
        ignore (run app "pack append . .p {top padx 10 pady 5}");
        Tk.Core.update app;
        let p = Tk.Core.lookup_exn app ".p" in
        check_int "x inset" 10 p.Tk.Core.x;
        check_int "y inset" 5 p.Tk.Core.y );
    ( "pack unpack removes and unmaps",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "frame .u -width 20 -height 20");
        ignore (run app "pack append . .u {top}");
        Tk.Core.update app;
        check_bool "mapped" true (Tk.Core.lookup_exn app ".u").Tk.Core.mapped;
        ignore (run app "pack unpack .u");
        Tk.Core.update app;
        check_bool "unmapped" false (Tk.Core.lookup_exn app ".u").Tk.Core.mapped;
        check_string "slaves empty" "" (run app "pack slaves .") );
    ( "modern syntax also works",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "frame .m -width 25 -height 25");
        ignore (run app "pack .m -side left -padx 3");
        Tk.Core.update app;
        check_bool "packed" true (Tk.Core.lookup_exn app ".m").Tk.Core.mapped );
    ( "packing a non-child fails",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "frame .f1");
        ignore (run app "frame .f2");
        ignore (run app "frame .f1.inner");
        let msg = run app "catch {pack append .f2 .f1.inner {top}} err; set err" in
        check_bool "error" true (contains ~needle:"not its parent" msg) );
    ( "destroying a slave removes it from the packing list",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "frame .d1 -width 10 -height 10");
        ignore (run app "frame .d2 -width 10 -height 10");
        ignore (run app "pack append . .d1 {top} .d2 {top}");
        ignore (run app "destroy .d1");
        Tk.Core.update app;
        check_string "remaining" ".d2" (run app "pack slaves .") );
    ( "frame anchor positions the slave in its parcel",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "frame .w -width 20 -height 10");
        ignore (run app "frame .e -width 20 -height 10");
        let main = Tk.Core.main_widget app in
        ignore (run app "pack append . .w {top frame w} .e {top frame e}");
        Tk.Core.move_resize main ~x:main.Tk.Core.x ~y:main.Tk.Core.y
          ~width:100 ~height:40;
        Tk.Pack.arrange main;
        Tk.Core.update app;
        check_int "west flush left" 0 (Tk.Core.lookup_exn app ".w").Tk.Core.x;
        check_int "east flush right" 80 (Tk.Core.lookup_exn app ".e").Tk.Core.x );
    ( "pack info round-trips the options",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "frame .f -width 10 -height 10");
        ignore (run app "pack append . .f {left expand fillx padx 4}");
        let info = run app "pack info ." in
        check_bool "side" true (contains ~needle:"left" info);
        check_bool "expand" true (contains ~needle:"expand" info);
        check_bool "fillx" true (contains ~needle:"fillx" info) );
  ]

(* Binding-pattern properties. *)
let bindpattern_property_tests =
  let pattern_gen =
    QCheck.Gen.(
      let* mods =
        list_size (int_bound 2)
          (oneofl [ "Control-"; "Shift-"; "Meta-"; "Double-"; "B1-" ])
      in
      let* body =
        oneofl
          [ "Enter"; "Leave"; "Motion"; "ButtonPress-1"; "Button-2"; "Key-a";
            "KeyRelease-x"; "Configure"; "Expose"; "1"; "space"; "Escape" ]
      in
      return ("<" ^ String.concat "" mods ^ body ^ ">"))
  in
  let sequence_gen =
    QCheck.Gen.(
      let* n = int_range 1 3 in
      let* ps = list_size (return n) pattern_gen in
      return (String.concat "" ps))
  in
  [
    QCheck.Test.make ~name:"canonical form is a fixed point" ~count:300
      (QCheck.make ~print:Fun.id sequence_gen)
      (fun seq ->
        match Tk.Bindpattern.parse_sequence seq with
        | Error _ -> QCheck.assume_fail ()
        | Ok parsed -> (
          let canon = Tk.Bindpattern.canonical parsed in
          match Tk.Bindpattern.parse_sequence canon with
          | Ok reparsed -> Tk.Bindpattern.canonical reparsed = canon
          | Error _ -> false));
    QCheck.Test.make ~name:"specificity is length-dominated" ~count:200
      (QCheck.make ~print:Fun.id pattern_gen)
      (fun p ->
        match
          ( Tk.Bindpattern.parse_sequence p,
            Tk.Bindpattern.parse_sequence (p ^ p) )
        with
        | Ok one, Ok two ->
          Tk.Bindpattern.specificity two > Tk.Bindpattern.specificity one
        | _ -> QCheck.assume_fail ());
  ]

(* Raster property: text drawn inside a window appears in its dump. *)
let raster_property_tests =
  [
    QCheck.Test.make ~name:"labels always render inside the window" ~count:50
      QCheck.(
        pair
          (string_gen_of_size (Gen.int_range 1 8) (Gen.char_range 'a' 'z'))
          (pair (int_range 0 80) (int_range 0 40)))
      (fun (label, (x, y)) ->
        let server = Server.create () in
        let conn = Server.connect server ~name:"prop" in
        let win =
          Server.create_window conn ~parent:(Server.root server) ~x:10 ~y:10
            ~width:200 ~height:120 ~border_width:0
        in
        Server.map_window conn win;
        let font = Option.get (Font.parse "fixed") in
        let gc = Server.create_gc conn ~font () in
        Server.draw_text conn win gc ~x ~y:(y + font.Font.ascent) label;
        let dump = Raster.render server ~window:win () in
        (* Fully inside horizontally and vertically? Then it must show. *)
        let fits =
          x + (String.length label * font.Font.char_width) <= 200
          && y + Font.line_height font <= 120
        in
        (not fits) || contains ~needle:label dump);
  ]

(* Packer invariants under random configurations. *)
let pack_property_tests =
  let opts_gen =
    QCheck.Gen.(
      let* side = oneofl [ "top"; "bottom"; "left"; "right" ] in
      let* fill = oneofl [ ""; "fill"; "fillx"; "filly" ] in
      let* expand = oneofl [ ""; "expand" ] in
      return (String.trim (String.concat " " [ side; fill; expand ])))
  in
  let slaves_gen =
    QCheck.Gen.(list_size (int_range 1 6) (pair (pair (int_range 1 80) (int_range 1 60)) opts_gen))
  in
  let arbitrary =
    QCheck.make
      ~print:(fun slaves ->
        String.concat "; "
          (List.map (fun ((w, h), o) -> Printf.sprintf "%dx%d {%s}" w h o) slaves))
      slaves_gen
  in
  [
    QCheck.Test.make ~name:"packed slaves stay inside the master" ~count:100
      arbitrary
      (fun slaves ->
        let _, app = fresh_app () in
        List.iteri
          (fun i ((w, h), _) ->
            ignore
              (run app (Printf.sprintf "frame .s%d -width %d -height %d" i w h)))
          slaves;
        let main = Tk.Core.main_widget app in
        let spec =
          String.concat " "
            (List.mapi (fun i (_, o) -> Printf.sprintf ".s%d {%s}" i o) slaves)
        in
        ignore (run app ("pack append . " ^ spec));
        Tk.Core.move_resize main ~x:main.Tk.Core.x ~y:main.Tk.Core.y
          ~width:100 ~height:100;
        Tk.Pack.arrange main;
        Tk.Core.update app;
        List.for_all
          (fun i ->
            let w = Tk.Core.lookup_exn app (Printf.sprintf ".s%d" i) in
            (not w.Tk.Core.mapped)
            || (w.Tk.Core.x >= 0 && w.Tk.Core.y >= 0
                && w.Tk.Core.x + w.Tk.Core.width <= main.Tk.Core.width
                && w.Tk.Core.y + w.Tk.Core.height <= main.Tk.Core.height))
          (List.init (List.length slaves) Fun.id));
    QCheck.Test.make ~name:"top-packed slaves never overlap vertically"
      ~count:100
      QCheck.(
        make
          Gen.(list_size (int_range 2 6) (pair (int_range 1 50) (int_range 1 40))))
      (fun sizes ->
        let _, app = fresh_app () in
        List.iteri
          (fun i (w, h) ->
            ignore
              (run app (Printf.sprintf "frame .s%d -width %d -height %d" i w h)))
          sizes;
        let spec =
          String.concat " "
            (List.mapi (fun i _ -> Printf.sprintf ".s%d {top}" i) sizes)
        in
        ignore (run app ("pack append . " ^ spec));
        Tk.Core.update app;
        let mapped =
          List.filter_map
            (fun i ->
              let w = Tk.Core.lookup_exn app (Printf.sprintf ".s%d" i) in
              if w.Tk.Core.mapped then Some (w.Tk.Core.y, w.Tk.Core.height)
              else None)
            (List.init (List.length sizes) Fun.id)
        in
        let sorted = List.sort compare mapped in
        let rec no_overlap = function
          | (y1, h1) :: ((y2, _) as b) :: rest ->
            y1 + h1 <= y2 && no_overlap (b :: rest)
          | _ -> true
        in
        no_overlap sorted);
  ]

(* ------------------------------------------------------------------ *)
(* Widget framework: creation, configure, destroy (§4) *)

let widget_framework_tests =
  [
    ( "paper §4: button creation with options",
      fun () ->
        let _, app = fresh_app () in
        let path =
          run app
            {|button .hello -bg Red -text "Hello, world" -command "print Hello!\n"|}
        in
        check_string "returns path" ".hello" path;
        check_string "text" "Hello, world" (run app ".hello cget -text");
        check_string "bg" "Red" (run app ".hello cget -bg") );
    ( "paper §4: configure changes options at runtime",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "button .hello -text hi");
        ignore (run app ".hello configure -bg PalePink1 -relief sunken");
        check_string "relief" "sunken" (run app ".hello cget -relief") );
    ( "widget command is created with the widget (§4)",
      fun () ->
        let _, app = fresh_app () in
        check_bool "no command" false
          (Tcl.Interp.command_exists app.Tk.Core.interp ".b");
        ignore (run app "button .b");
        check_bool "command exists" true
          (Tcl.Interp.command_exists app.Tk.Core.interp ".b") );
    ( "destroy removes widget, children and commands",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "frame .f");
        ignore (run app "button .f.b");
        ignore (run app "destroy .f");
        check_string "winfo exists .f" "0" (run app "winfo exists .f");
        check_string "winfo exists .f.b" "0" (run app "winfo exists .f.b");
        check_bool "command gone" false
          (Tcl.Interp.command_exists app.Tk.Core.interp ".f.b") );
    ( "duplicate window name is an error",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "button .b");
        let msg = expect_error app "button .b" in
        check_bool "already exists" true (contains ~needle:"already exists" msg) );
    ( "missing parent is an error",
      fun () ->
        let _, app = fresh_app () in
        let msg = expect_error app "button .nothere.b" in
        check_bool "bad path" true (contains ~needle:"bad window path" msg) );
    ( "unknown option is an error and widget is not created",
      fun () ->
        let _, app = fresh_app () in
        let msg = expect_error app "button .b -bogus 1" in
        check_bool "unknown option" true (contains ~needle:"unknown option" msg);
        check_string "not created" "0" (run app "winfo exists .b") );
    ( "bad color value is an error",
      fun () ->
        let _, app = fresh_app () in
        let msg = expect_error app "button .b -bg nosuchcolor" in
        check_bool "color error" true (contains ~needle:"unknown color" msg) );
    ( "option abbreviation works when unique",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "button .b -backgro red");
        check_string "abbrev" "red" (run app ".b cget -background") );
    ( "configure with no args lists all options",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "button .b");
        let info = run app ".b configure" in
        check_bool "has -text" true (contains ~needle:"-text" info);
        check_bool "has -command" true (contains ~needle:"-command" info) );
    ( "winfo reports structure-cache geometry without server round trips",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "frame .f -width 64 -height 32");
        ignore (run app "pack append . .f {top}");
        Tk.Core.update app;
        let before = (Server.stats app.Tk.Core.conn).Server.round_trips in
        check_string "width" "64" (run app "winfo width .f");
        check_string "class" "Frame" (run app "winfo class .f");
        let after = (Server.stats app.Tk.Core.conn).Server.round_trips in
        check_int "no round trips" before after );
    ( "winfo children",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "frame .f");
        ignore (run app "button .f.a; button .f.b");
        check_string "children" ".f.a .f.b" (run app "winfo children .f") );
    ( "focus command redirects keystrokes (§3.7)",
      fun () ->
        let server, app = fresh_app () in
        ignore (run app "entry .e1; entry .e2");
        ignore (run app "pack append . .e1 {top} .e2 {top}");
        Tk.Core.update app;
        ignore (run app "focus .e2");
        (* Pointer over .e1, but keys must go to .e2. *)
        let x, y = widget_center app ".e1" in
        Server.inject_motion server ~x ~y;
        Tk.Core.update app;
        Server.inject_string server "hi";
        Tk.Core.update app;
        check_string "typed into focus window" "hi" (run app ".e2 get");
        check_string "other entry empty" "" (run app ".e1 get");
        check_string "focus query" ".e2" (run app "focus") );
    ( "main window destroy kills the application",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "destroy .");
        check_bool "destroyed" true app.Tk.Core.app_destroyed );
    ( "wm geometry resizes and repositions the main window",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "wm geometry . 300x150+40+25");
        let m = Tk.Core.main_widget app in
        check_int "width" 300 m.Tk.Core.width;
        check_int "height" 150 m.Tk.Core.height;
        check_int "x" 40 m.Tk.Core.x;
        check_int "y" 25 m.Tk.Core.y;
        check_string "query" "300x150+40+25" (run app "wm geometry .") );
    ( "wm geometry position-only form",
      fun () ->
        let _, app = fresh_app () in
        let m = Tk.Core.main_widget app in
        let w0, h0 = (m.Tk.Core.width, m.Tk.Core.height) in
        ignore (run app "wm geometry . +5+6");
        check_int "x" 5 m.Tk.Core.x;
        check_int "y" 6 m.Tk.Core.y;
        check_int "width unchanged" w0 m.Tk.Core.width;
        check_int "height unchanged" h0 m.Tk.Core.height );
    ( "wm title round-trips and sets WM_NAME",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "wm title . {My App}");
        check_string "query" "My App" (run app "wm title .");
        let m = Tk.Core.main_widget app in
        let win =
          Option.get (Server.lookup_window app.Tk.Core.server m.Tk.Core.win)
        in
        match Hashtbl.find_opt win.Window.properties Atom.wm_name with
        | Some p -> check_string "property" "My App" p.Window.prop_data
        | None -> Alcotest.fail "WM_NAME not set" );
    ( "wm withdraw and deiconify",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "wm withdraw .");
        check_bool "hidden" false (Tk.Core.main_widget app).Tk.Core.mapped;
        ignore (run app "wm deiconify .");
        check_bool "shown" true (Tk.Core.main_widget app).Tk.Core.mapped );
    ( "winfo rootx/rooty accumulate nested offsets",
      fun () ->
        let _, app = fresh_app () in
        ignore (run app "wm geometry . 200x200+50+60");
        ignore (run app "frame .f -width 100 -height 100");
        ignore (run app "place .f -x 10 -y 20");
        ignore (run app "frame .f.g -width 30 -height 30");
        ignore (run app "place .f.g -x 3 -y 4");
        Tk.Core.update app;
        check_string "rootx" "63" (run app "winfo rootx .f.g");
        check_string "rooty" "84" (run app "winfo rooty .f.g") );
  ]

let to_alcotest = List.map (fun (n, f) -> Alcotest.test_case n `Quick f)

let () =
  ignore click;
  Alcotest.run "tk"
    [
      ("paths", to_alcotest path_tests);
      ("optiondb", to_alcotest optiondb_tests);
      ("rescache", to_alcotest rescache_tests);
      ("dispatch", to_alcotest dispatch_tests);
      ("bindings", to_alcotest binding_tests);
      ("pack", to_alcotest pack_tests);
      ( "pack-properties",
        List.map QCheck_alcotest.to_alcotest pack_property_tests );
      ( "binding-properties",
        List.map QCheck_alcotest.to_alcotest bindpattern_property_tests );
      ( "raster-properties",
        List.map QCheck_alcotest.to_alcotest raster_property_tests );
      ("framework", to_alcotest widget_framework_tests);
    ]
