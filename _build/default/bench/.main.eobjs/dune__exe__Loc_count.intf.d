bench/loc_count.mli:
