bench/main.ml: Analyze Bechamel Benchmark Buffer Float Geom Hashtbl Instance List Loc_count Measure Option Printf Raster Server Staged String Tcl Test Time Tk Tk_widgets Toolkit Unix Window Xsim
