bench/loc_count.ml: Array Filename In_channel Int64 List String Sys
