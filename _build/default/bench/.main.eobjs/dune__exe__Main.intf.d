bench/main.mli:
