let find_repo_root () =
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent
  in
  up (Sys.getcwd ())

let count_lines files =
  List.fold_left
    (fun acc file ->
      match In_channel.with_open_text file In_channel.input_all with
      | contents ->
        acc
        + List.length (String.split_on_char '\n' contents)
        - (if contents <> "" && contents.[String.length contents - 1] = '\n'
           then 1
           else 0)
      | exception Sys_error _ -> acc)
    0 files

let is_source file =
  Filename.check_suffix file ".ml" || Filename.check_suffix file ".mli"

let module_files ~root spec =
  if String.contains spec ',' then
    List.map (Filename.concat root) (String.split_on_char ',' spec)
  else
    let dir = Filename.concat root spec in
    match Sys.readdir dir with
    | entries ->
      Array.to_list entries
      |> List.filter is_source
      |> List.map (Filename.concat dir)
      |> List.sort String.compare
    | exception Sys_error _ -> []

let compiled_bytes ~root dir =
  (* Object files live under _build/default/<dir>/.<lib>.objs/native. *)
  let build_dir = Filename.concat root (Filename.concat "_build/default" dir) in
  match Sys.readdir build_dir with
  | exception Sys_error _ -> None
  | entries ->
    let objs_dirs =
      Array.to_list entries
      |> List.filter (fun e ->
             String.length e > 5
             && e.[0] = '.'
             && Filename.check_suffix e ".objs")
      |> List.map (fun e -> Filename.concat build_dir (Filename.concat e "native"))
    in
    let size_of path =
      match In_channel.with_open_bin path In_channel.length with
      | len -> Int64.to_int len
      | exception Sys_error _ -> 0
    in
    let total =
      List.fold_left
        (fun acc objs ->
          match Sys.readdir objs with
          | exception Sys_error _ -> acc
          | files ->
            Array.fold_left
              (fun acc f ->
                if Filename.check_suffix f ".o" then
                  acc + size_of (Filename.concat objs f)
                else acc)
              acc files)
        0 objs_dirs
    in
    if total > 0 then Some total else None
