(** Source-size accounting for Table I: counts the lines of this
    repository's modules, grouped the same way as the paper's table, so the
    bench can print our sizes next to the paper's Tk and Xt/Motif numbers. *)

val find_repo_root : unit -> string option
(** Walk upward from the current directory to the dune-project root. *)

val count_lines : string list -> int
(** Total line count of the given files (0 for unreadable ones). *)

val module_files : root:string -> string -> string list
(** [module_files ~root spec] resolves a size-table group spec: either a
    directory relative to the root (all .ml/.mli files in it) or an
    explicit list of files separated by commas. *)

val compiled_bytes : root:string -> string -> int option
(** Size in bytes of the compiled object files (.cmx + .o under _build)
    for the given library directory, if they exist. *)
