(* The [interp] command: slave interpreters in the Safe-Tcl mold.

   A master owns a tree of named slaves ([Interp] keeps the tree; this
   module is the script surface). Slaves are full interpreters — own
   command table, own variables, own limits — created empty of toolkit
   state by a caller-supplied constructor. A [-safe] slave additionally
   has the environment-touching commands hidden: invoking one from
   inside the slave yields a counted "permission denied" error, while
   the master can still reach it with [interp invokehidden].

   Aliases marshal calls from a slave into another interpreter: the
   alias body runs in the target interpreter named at [interp alias]
   time ("" = the invoker, the common master-side case), receiving the
   bound words plus the slave's call arguments.

   Resource limits ([interp limit]) and cancellation ([interp cancel])
   arm the per-interp guard in [Interp]; the checks fire at evaluation
   boundaries in both the reference evaluator and the compiled fast
   path, so they apply to any script the slave runs later. *)

open Interp

(* Commands a -safe slave must not reach: process control, file system,
   exec-alikes, the interp machinery itself, and the simulator's fault /
   crash test hooks.  Missing entries are ignored — a bare slave never
   had the toolkit commands in the first place. *)
let unsafe_commands =
  [
    "exit";
    "exec";
    "source";
    "open";
    "close";
    "gets";
    "read";
    "eof";
    "flush";
    "file";
    "glob";
    "pwd";
    "cd";
    "interp";
    "send";
    "crashtest";
    "faultstats";
    "serverstats";
    "inject";
    "screendump";
  ]

let make_safe s =
  set_safe s true;
  List.iter
    (fun name ->
      if command_exists s name then ignore (hide_command s name))
    unsafe_commands

(* ------------------------------------------------------------------ *)
(* Path resolution: an interpreter path is a Tcl list naming a descent
   through the slave tree, relative to the interpreter running the
   command ("" names that interpreter itself). *)

let parse_path path =
  match Tcl_list.parse path with
  | Ok parts -> parts
  | Error _ -> failf "invalid interpreter path \"%s\"" path

let resolve t path =
  let rec go cur = function
    | [] -> cur
    | name :: rest -> (
      match find_slave cur name with
      | Some s -> go s rest
      | None -> failf "could not find interpreter \"%s\"" path)
  in
  go t (parse_path path)

(* Split a path into (parent, leaf) for create/delete. *)
let resolve_parent t path =
  match List.rev (parse_path path) with
  | [] -> failf "invalid interpreter path \"%s\"" path
  | leaf :: rev_prefix ->
    let rec go cur = function
      | [] -> cur
      | name :: rest -> (
        match find_slave cur name with
        | Some s -> go s rest
        | None -> failf "could not find interpreter \"%s\"" path)
    in
    (go t (List.rev rev_prefix), leaf)

(* ------------------------------------------------------------------ *)
(* Creation *)

let create_slave ~sub_interp ~master ~safe name =
  match find_slave master name with
  | Some _ ->
    Stdlib.Error
      (Printf.sprintf "interpreter named \"%s\" already exists, cannot create"
         name)
  | None ->
    let s : Interp.t = sub_interp () in
    (* Slave time limits run on the same clock as the master's, so a
       virtual clock governs the whole tree. *)
    set_limit_clock s (limit_clock master);
    if safe then make_safe s;
    add_slave master name s;
    Stdlib.Ok s

let auto_name master =
  let rec try_n n =
    let name = Printf.sprintf "interp%d" n in
    if find_slave master name = None then name else try_n (n + 1)
  in
  try_n 0

let cmd_create ~sub_interp t args =
  let safe, args =
    match args with
    | "-safe" :: rest -> (true, rest)
    | _ -> (false, args)
  in
  let args = match args with "--" :: rest -> rest | _ -> args in
  let path =
    match args with
    | [] -> auto_name t
    | [ p ] -> p
    | _ -> wrong_args_for t "interp"
  in
  let parent, leaf = resolve_parent t path in
  match create_slave ~sub_interp ~master:parent ~safe leaf with
  | Stdlib.Ok _ -> (Tcl_ok, path)
  | Stdlib.Error msg -> (Tcl_error, msg)

(* ------------------------------------------------------------------ *)
(* Aliases *)

let cmd_alias t = function
  | [ path; src ] ->
    let s = resolve t path in
    (Tcl_ok, Option.value (alias_target s src) ~default:"")
  | [ path; src; "" ] ->
    (* [interp alias path src {}] deletes the alias. *)
    let s = resolve t path in
    drop_alias s src;
    ignore (delete_command s src);
    (Tcl_ok, "")
  | path :: src :: target_path :: target :: bound ->
    let s = resolve t path in
    (* The target path is resolved relative to the invoking interpreter;
       "" names the invoker itself (the common master-side case). *)
    let target_interp = resolve t target_path in
    register s src (fun slave words ->
        count_alias_call slave;
        (* Marshal into the target interpreter: target command + bound
           words + the slave's call arguments, evaluated with the
           target's error handling. *)
        eval_words target_interp ((target :: bound) @ List.tl words));
    note_alias s src target;
    (Tcl_ok, src)
  | _ -> wrong_args_for t "interp"

(* ------------------------------------------------------------------ *)
(* Limits *)

let limit_option_int what v =
  match int_of_string_opt (String.trim v) with
  | Some n when n >= 0 -> n
  | _ -> failf "expected a non-negative integer for %s but got \"%s\"" what v

let cmd_limit t args =
  match args with
  | path :: kind :: opts ->
    let s = resolve t path in
    let kind =
      match kind with
      | "time" -> Limit_time
      | "commands" -> Limit_commands
      | other -> failf "bad limit type \"%s\": should be time or commands" other
    in
    if opts = [] then
      let v =
        match kind with
        | Limit_time -> time_limit s
        | Limit_commands -> command_limit s
      in
      (Tcl_ok, string_of_int v)
    else begin
      let value = ref None and granularity = ref None in
      let rec scan = function
        | [] -> ()
        | "-value" :: v :: rest ->
          value := Some (limit_option_int "-value" v);
          scan rest
        | "-granularity" :: g :: rest ->
          granularity := Some (limit_option_int "-granularity" g);
          scan rest
        | opt :: _ ->
          failf "bad option \"%s\": should be -value or -granularity" opt
      in
      scan opts;
      (match (kind, !value) with
      | Limit_time, Some ms ->
        set_time_limit s ms
          ?granularity:
            (match !granularity with Some g when g >= 1 -> Some g | _ -> None)
      | Limit_time, None -> (
        (* -granularity alone retunes the check interval of the armed
           time limit. *)
        match !granularity with
        | Some g when g >= 1 -> set_time_limit s (time_limit s) ~granularity:g
        | _ -> failf "no -value given for limit")
      | Limit_commands, Some n -> set_command_limit s n
      | Limit_commands, None -> failf "no -value given for limit");
      (Tcl_ok, "")
    end
  | _ -> wrong_args_for t "interp"

(* ------------------------------------------------------------------ *)
(* The command *)

let cmd_interp ~sub_interp t words =
  match words with
  | _ :: "create" :: args -> cmd_create ~sub_interp t args
  | [ _; "delete" ] -> (Tcl_ok, "")
  | _ :: "delete" :: paths ->
    (try
       List.iter
         (fun path ->
           let parent, leaf = resolve_parent t path in
           if not (delete_slave parent leaf) then
             failf "could not find interpreter \"%s\"" path)
         paths;
       (Tcl_ok, "")
     with Tcl_failure msg -> (Tcl_error, msg))
  | _ :: "eval" :: path :: (_ :: _ as args) ->
    let s = resolve t path in
    eval s (String.concat " " args)
  | [ _; "exists"; path ] ->
    let ok = match resolve t path with _ -> true | exception _ -> false in
    (Tcl_ok, if ok then "1" else "0")
  | [ _; "slaves" ] -> (Tcl_ok, Tcl_list.format (slave_names t))
  | [ _; "slaves"; path ] ->
    (Tcl_ok, Tcl_list.format (slave_names (resolve t path)))
  | _ :: "alias" :: args -> cmd_alias t args
  | [ _; "aliases" ] -> (Tcl_ok, Tcl_list.format (alias_names t))
  | [ _; "aliases"; path ] ->
    (Tcl_ok, Tcl_list.format (alias_names (resolve t path)))
  | [ _; "hide"; path; name ] -> (
    match hide_command (resolve t path) name with
    | Stdlib.Ok () -> (Tcl_ok, "")
    | Stdlib.Error msg -> (Tcl_error, msg))
  | [ _; "expose"; path; name ] | [ _; "expose"; path; name; _ ] as w -> (
    let as_name =
      match w with [ _; _; _; _; e ] -> Some e | _ -> None
    in
    match expose_command ?as_name (resolve t path) name with
    | Stdlib.Ok () -> (Tcl_ok, "")
    | Stdlib.Error msg -> (Tcl_error, msg))
  | [ _; "hidden"; path ] ->
    (Tcl_ok, Tcl_list.format (hidden_names (resolve t path)))
  | _ :: "invokehidden" :: path :: name :: args ->
    invoke_hidden (resolve t path) name (name :: args)
  | [ _; "issafe" ] -> (Tcl_ok, if is_safe t then "1" else "0")
  | [ _; "issafe"; path ] ->
    (Tcl_ok, if is_safe (resolve t path) then "1" else "0")
  | _ :: "limit" :: args -> cmd_limit t args
  | [ _; "recursionlimit" ] -> (Tcl_ok, string_of_int (recursion_limit t))
  | [ _; "recursionlimit"; arg ] -> (
    (* One argument: an integer sets this interpreter's limit, anything
       else reads a slave's. *)
    match int_of_string_opt (String.trim arg) with
    | Some n ->
      set_recursion_limit t n;
      (Tcl_ok, string_of_int n)
    | None -> (Tcl_ok, string_of_int (recursion_limit (resolve t arg))))
  | [ _; "recursionlimit"; path; n ] -> (
    let s = resolve t path in
    match int_of_string_opt (String.trim n) with
    | Some limit ->
      set_recursion_limit s limit;
      (Tcl_ok, string_of_int limit)
    | None -> failf "expected integer but got \"%s\"" n)
  | _ :: "cancel" :: args -> (
    let unwind, args =
      match args with
      | "-unwind" :: rest -> (true, rest)
      | _ -> (false, args)
    in
    match args with
    | [] ->
      cancel ~unwind t;
      (Tcl_ok, "")
    | [ path ] ->
      cancel ~unwind (resolve t path);
      (Tcl_ok, "")
    | _ -> wrong_args_for t "interp")
  | _ :: sub :: _ -> bad_subcommand t ~cmd:"interp" sub
  | _ -> wrong_args_for t "interp"

let install ~sub_interp t =
  register t "interp" (fun t words ->
      try cmd_interp ~sub_interp t words
      with Tcl_failure msg -> (Tcl_error, msg));
  register_signature t
    (signature "interp" 1 ~options:[ "-safe"; "-unwind" ]
       ~subs:
         [
           subsig "create" 0 ~max:3;
           subsig "delete" 0;
           subsig "eval" 2;
           subsig "exists" 1 ~max:1;
           subsig "slaves" 0 ~max:1;
           subsig "alias" 2;
           subsig "aliases" 0 ~max:1;
           subsig "hide" 2 ~max:2;
           subsig "expose" 2 ~max:3;
           subsig "hidden" 1 ~max:1;
           subsig "invokehidden" 2;
           subsig "issafe" 0 ~max:1;
           subsig "limit" 2 ~max:6;
           subsig "recursionlimit" 0 ~max:2;
           subsig "cancel" 0 ~max:2;
         ]
       ~usage:"interp option ?arg arg ...?")
