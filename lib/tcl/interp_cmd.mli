(** The [interp] command: slave interpreters, resource limits and
    cancellation (the Safe-Tcl containment model).

    Subcommands: [create ?-safe? ?path?], [delete ?path ...?],
    [eval path arg ?arg ...?], [exists path], [slaves ?path?],
    [alias path srcCmd ?targetCmd ?arg ...??], [aliases ?path?],
    [hide path cmd], [expose path hiddenCmd ?exposedName?],
    [hidden path], [invokehidden path cmd ?arg ...?], [issafe ?path?],
    [limit path time|commands ?-value V? ?-granularity G?],
    [recursionlimit ?path? ?N?], [cancel ?-unwind? ?path?].

    An interpreter path is a Tcl list descending the slave tree relative
    to the interpreter running the command. *)

val unsafe_commands : string list
(** The commands a [-safe] slave has hidden (when present): process
    control, file system, the interp machinery, simulator test hooks. *)

val make_safe : Interp.t -> unit
(** Mark the interpreter safe and hide every {!unsafe_commands} entry it
    has. *)

val create_slave :
  sub_interp:(unit -> Interp.t) ->
  master:Interp.t ->
  safe:bool ->
  string ->
  (Interp.t, string) result
(** Create a slave of [master] under the given name: a fresh interpreter
    from [sub_interp], inheriting the master's limit clock, hidden-down
    if [safe]. Errors if the name is taken. *)

val install : sub_interp:(unit -> Interp.t) -> Interp.t -> unit
(** Register the [interp] command and its lint signature. [sub_interp]
    constructs a fresh interpreter with the built-in command set (passed
    as a callback to keep this module below {!Builtins}). *)
