open Interp

let filter_glob pattern names =
  match pattern with
  | None -> names
  | Some pattern -> List.filter (fun n -> Glob.matches ~pattern n) names

let cmd_info t words =
  match words with
  | [ _; "exists"; name ] -> if get_var t name <> None then "1" else "0"
  | [ _; "complete"; script ] -> if Lint.complete script then "1" else "0"
  | _ :: "commands" :: rest ->
    let pattern = match rest with [ p ] -> Some p | _ -> None in
    Tcl_list.format (filter_glob pattern (command_names t))
  | _ :: "procs" :: rest ->
    let pattern = match rest with [ p ] -> Some p | _ -> None in
    Tcl_list.format (filter_glob pattern (proc_names t))
  | [ _; "body"; name ] -> (
    match proc_info t name with
    | Some (_, body) -> body
    | None -> failf "\"%s\" isn't a procedure" name)
  | [ _; "args"; name ] -> (
    match proc_info t name with
    | Some (formals, _) -> Tcl_list.format (List.map fst formals)
    | None -> failf "\"%s\" isn't a procedure" name)
  | [ _; "default"; name; arg; var ] -> (
    match proc_info t name with
    | None -> failf "\"%s\" isn't a procedure" name
    | Some (formals, _) -> (
      match List.assoc_opt arg formals with
      | None ->
        failf "procedure \"%s\" doesn't have an argument \"%s\"" name arg
      | Some None ->
        set_var t var "";
        "0"
      | Some (Some default) ->
        set_var t var default;
        "1"))
  | _ :: "vars" :: rest ->
    let pattern = match rest with [ p ] -> Some p | _ -> None in
    Tcl_list.format
      (filter_glob pattern (var_names t ~local:true ~global:(current_level t = 0)))
  | _ :: "globals" :: rest ->
    let pattern = match rest with [ p ] -> Some p | _ -> None in
    Tcl_list.format (filter_glob pattern (var_names t ~local:false ~global:true))
  | _ :: "locals" :: rest ->
    let pattern = match rest with [ p ] -> Some p | _ -> None in
    if current_level t = 0 then ""
    else
      Tcl_list.format
        (filter_glob pattern (var_names t ~local:true ~global:false))
  | [ _; "errorinfo" ] ->
    (* The stack trace of the most recent error (also in the global
       variable errorInfo, as in real Tcl). *)
    get_error_info t
  | [ _; "level" ] -> string_of_int (current_level t)
  | [ _; "cmdcount" ] -> string_of_int (command_count t)
  | [ _; "tclversion" ] -> "6.0"
  | _ :: sub :: _ ->
    failf
      "bad option \"%s\": should be args, body, cmdcount, commands, \
       complete, default, errorinfo, exists, globals, level, locals, \
       procs, tclversion, or vars"
      sub
  | _ -> wrong_args "info option ?arg arg ...?"

let install t =
  register_value t "info" cmd_info;
  register_signature t
    (signature "info" 1 ~usage:"info option ?arg arg ...?"
       ~subs:
         [
           subsig "args" 1 ~max:1;
           subsig "body" 1 ~max:1;
           subsig "cmdcount" 0 ~max:0;
           subsig "commands" 0 ~max:1;
           subsig "complete" 1 ~max:1;
           subsig "default" 3 ~max:3;
           subsig "errorinfo" 0 ~max:0;
           subsig "exists" 1 ~max:1;
           subsig "globals" 0 ~max:1;
           subsig "level" 0 ~max:0;
           subsig "locals" 0 ~max:1;
           subsig "procs" 0 ~max:1;
           subsig "tclversion" 0 ~max:0;
           subsig "vars" 0 ~max:1;
         ])
