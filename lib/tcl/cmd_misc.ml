open Interp

(* case string ?in? {patList body patList body ...}
   or the spread form: case string ?in? patList body ?patList body ...? *)
let cmd_case t words =
  let value, rest =
    match List.tl words with
    | value :: "in" :: rest -> (value, rest)
    | value :: rest -> (value, rest)
    | [] -> wrong_args "case string ?in? patList body ?patList body ...?"
  in
  let pairs =
    match rest with
    | [ single ] -> (
      match Tcl_list.parse single with
      | Stdlib.Ok items -> items
      | Stdlib.Error msg -> failf "%s" msg)
    | items -> items
  in
  let rec try_pairs = function
    | pat_list :: body :: rest -> (
      let patterns =
        match Tcl_list.parse pat_list with
        | Stdlib.Ok l -> l
        | Stdlib.Error msg -> failf "%s" msg
      in
      let hit =
        List.exists
          (fun pattern ->
            pattern = "default" || Glob.matches ~pattern value)
          patterns
      in
      if hit then eval t body else try_pairs rest)
    | [ extra ] -> failf "extra case pattern with no body: \"%s\"" extra
    | [] -> ok ""
  in
  try_pairs pairs

let cmd_array t = function
  | [ _; "exists"; name ] ->
    ok (if array_names t name <> None then "1" else "0")
  | [ _; "names"; name ] | [ _; "names"; name; _ ] as words -> (
    match array_names t name with
    | None -> failf "\"%s\" isn't an array" name
    | Some names ->
      let names =
        match words with
        | [ _; _; _; pattern ] ->
          List.filter (fun n -> Glob.matches ~pattern n) names
        | _ -> names
      in
      ok (Tcl_list.format names))
  | [ _; "size"; name ] -> (
    match array_names t name with
    | None -> failf "\"%s\" isn't an array" name
    | Some names -> ok (string_of_int (List.length names)))
  | _ :: sub :: _ ->
    failf "bad option \"%s\": should be exists, names, or size" sub
  | _ -> wrong_args "array option arrayName ?arg ...?"

(* history ?option ?arg?? — the recording itself is driven by the host
   application (wish records each interactive command). *)
let cmd_history t = function
  | [ _ ] ->
    ok
      (String.concat "\n"
         (List.map
            (fun (n, script) -> Printf.sprintf "%6d  %s" n script)
            (history_events t)))
  | [ _; "event" ] | [ _; "event"; _ ] as words -> (
    let events = history_events t in
    let n =
      match words with
      | [ _; _; spec ] -> (
        match int_of_string_opt spec with
        | Some n -> n
        | None -> failf "bad history event number \"%s\"" spec)
      | _ -> (
        (* Default: the previous event. *)
        match List.rev events with
        | _ :: (n, _) :: _ -> n
        | [ (n, _) ] -> n
        | [] -> failf "no history events")
    in
    match history_event t n with
    | Some script -> ok script
    | None -> failf "event \"%d\" is too far in the past" n)
  | [ _; "nextid" ] ->
    ok
      (string_of_int
         (match List.rev (history_events t) with
         | (n, _) :: _ -> n + 1
         | [] -> 1))
  | [ _; "redo" ] | [ _; "redo"; _ ] as words -> (
    let events = history_events t in
    let script =
      match words with
      | [ _; _; spec ] -> (
        match int_of_string_opt spec with
        | Some n -> history_event t n
        | None -> None)
      | _ -> (
        match List.rev events with
        | _ :: (_, s) :: _ -> Some s
        | _ -> None)
    in
    match script with
    | Some script -> eval t script
    | None -> failf "no event to redo")
  | _ :: sub :: _ ->
    failf "bad history option \"%s\": should be event, nextid, or redo" sub
  | _ -> wrong_args "history ?option? ?arg?"

let install t =
  register t "case" cmd_case;
  register t "array" cmd_array;
  register t "history" cmd_history;
  List.iter (register_signature t)
    [
      signature "case" 2
        ~usage:"case string ?in? patList body ?patList body ...?";
      signature "array" 2 ~max:3 ~usage:"array option arrayName ?arg ...?"
        ~subs:
          [
            subsig "exists" 1 ~max:1;
            subsig "names" 1 ~max:2;
            subsig "size" 1 ~max:1;
          ];
      signature "history" 0 ~max:2 ~usage:"history ?option? ?arg?"
        ~subs:
          [
            subsig "event" 0 ~max:1;
            subsig "nextid" 0 ~max:0;
            subsig "redo" 0 ~max:1;
          ];
    ]
