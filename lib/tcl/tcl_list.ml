let parse s =
  let n = String.length s in
  let buf = Buffer.create 32 in
  let out = ref [] in
  let push () =
    out := Buffer.contents buf :: !out;
    Buffer.clear buf
  in
  (* Returns [Ok ()] or [Error msg]. [i] scans the string; elements are
     delimited by whitespace (including newlines, which are ordinary
     separators inside a list). *)
  let rec skip i =
    if i < n && (Chars.is_space s.[i] || s.[i] = '\n') then skip (i + 1)
    else i
  in
  let rec element i =
    (* Scan one element starting at a non-space [i]. *)
    if i >= n then Ok i
    else if s.[i] = '{' then (
      match Chars.find_matching_brace s i with
      | None -> Error "unmatched open brace in list"
      | Some j ->
        Buffer.add_string buf (String.sub s (i + 1) (j - i - 1));
        after_group (j + 1))
    else if s.[i] = '"' then quoted (i + 1)
    else bare i
  and after_group i =
    if i < n && not (Chars.is_space s.[i] || s.[i] = '\n') then
      Error "list element in braces followed by non-space character"
    else Ok i
  and quoted i =
    if i >= n then Error "unmatched open quote in list"
    else
      match s.[i] with
      | '"' -> after_group (i + 1)
      | '\\' ->
        let repl, j = Chars.backslash_subst s i in
        Buffer.add_string buf repl;
        quoted j
      | c ->
        Buffer.add_char buf c;
        quoted (i + 1)
  and bare i =
    if i >= n || Chars.is_space s.[i] || s.[i] = '\n' then Ok i
    else
      match s.[i] with
      | '\\' ->
        let repl, j = Chars.backslash_subst s i in
        Buffer.add_string buf repl;
        bare j
      | c ->
        Buffer.add_char buf c;
        bare (i + 1)
  in
  let rec loop i =
    let i = skip i in
    if i >= n then Ok (List.rev !out)
    else
      match element i with
      | Error _ as e -> e
      | Ok j ->
        push ();
        loop j
  in
  loop 0

let parse_exn s =
  match parse s with Ok l -> l | Error msg -> failwith msg

(* Decide how an element must be quoted when rebuilding a list string.
   Brace-quoting is only safe when the parser would recover the content
   verbatim: braces must balance *with the same backslash-skipping the
   parser uses*, so a backslash directly before a brace forces backslash
   quoting. *)
type quoting = Bare | Braces | Backslashes

let quoting_needed e =
  let n = String.length e in
  if n = 0 then Braces
  else
    let rec scan i depth quote =
      if i >= n then if depth <> 0 then Backslashes else quote
      else
        match e.[i] with
        | '\\' ->
          if i = n - 1 then Backslashes (* trailing backslash *)
          else if e.[i + 1] = '{' || e.[i + 1] = '}' then Backslashes
          else scan (i + 2) depth Braces
        | '{' -> scan (i + 1) (depth + 1) Braces
        | '}' ->
          if depth = 0 then Backslashes else scan (i + 1) (depth - 1) Braces
        | ' ' | '\t' | '\n' | '\r' | '\012' | '\011' | ';' | '"' | '$' | '['
        | ']' ->
          scan (i + 1) depth Braces
        | _ -> scan (i + 1) depth quote
    in
    scan 0 0 Bare

let quote_element e =
  match quoting_needed e with
  | Bare -> e
  | Braces -> "{" ^ e ^ "}"
  | Backslashes ->
    let buf = Buffer.create (String.length e + 8) in
    String.iter
      (fun c ->
        match c with
        | '{' | '}' | '\\' | '"' | '$' | '[' | ']' | ';' | ' ' ->
          Buffer.add_char buf '\\';
          Buffer.add_char buf c
        | '\t' -> Buffer.add_string buf "\\t"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | c -> Buffer.add_char buf c)
      e;
    Buffer.contents buf

let format elements = String.concat " " (List.map quote_element elements)

let length s = Result.map List.length (parse s)

(* A list index: an integer, "end", or "end-N" with N a plain
   non-negative integer.  "end-" and "end--1" are malformed ("bad
   index"), matching Tcl; every list command shares this parser so
   out-of-range and malformed indices error identically everywhere. *)
let parse_index ~len s =
  let s = String.trim s in
  let bad () =
    Stdlib.Error (Printf.sprintf "bad index \"%s\": must be integer or end" s)
  in
  if s = "end" then Ok (len - 1)
  else if String.length s >= 4 && String.sub s 0 4 = "end-" then
    let suffix = String.sub s 4 (String.length s - 4) in
    if suffix <> "" && String.for_all (fun c -> c >= '0' && c <= '9') suffix
    then
      match int_of_string_opt suffix with
      | Some k -> Ok (len - 1 - k)
      | None -> bad ()
    else bad ()
  else match int_of_string_opt s with Some i -> Ok i | None -> bad ()

let index s i =
  match parse s with
  | Error _ as e -> e
  | Ok l ->
    Ok
      (if i < 0 then ""
       else match List.nth_opt l i with Some e -> e | None -> "")

let range s first last =
  match parse s with
  | Error _ as e -> e
  | Ok l ->
    let n = List.length l in
    let first = max first 0 in
    let last = if last = max_int || last >= n then n - 1 else last in
    if first > last then Ok ""
    else
      Ok
        (format
           (List.filteri (fun i _ -> i >= first && i <= last) l))
