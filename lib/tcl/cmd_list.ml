open Interp

let parse_list_exn l =
  match Tcl_list.parse l with
  | Stdlib.Ok elements -> elements
  | Stdlib.Error msg -> failf "%s" msg

(* Shared list-index parser (integer, "end", "end-N"); see Tcl_list. *)
let parse_index len s =
  match Tcl_list.parse_index ~len s with
  | Stdlib.Ok i -> i
  | Stdlib.Error msg -> failf "%s" msg

let cmd_list _t = function
  | _ :: args -> Tcl_list.format args
  | [] -> assert false

let cmd_lindex _t = function
  | [ _; l; idx ] ->
    let elements = parse_list_exn l in
    let i = parse_index (List.length elements) idx in
    if i < 0 then ""
    else (match List.nth_opt elements i with Some e -> e | None -> "")
  | _ -> wrong_args "lindex list index"

let cmd_llength _t = function
  | [ _; l ] -> string_of_int (List.length (parse_list_exn l))
  | _ -> wrong_args "llength list"

let cmd_lrange _t = function
  | [ _; l; first; last ] ->
    let elements = parse_list_exn l in
    let n = List.length elements in
    let first = max 0 (parse_index n first) in
    let last = min (n - 1) (parse_index n last) in
    if first > last then ""
    else
      Tcl_list.format
        (List.filteri (fun i _ -> i >= first && i <= last) elements)
  | _ -> wrong_args "lrange list first last"

(* [lappend x] with no values returns the variable unchanged (creating
   it empty if unset, as Tcl does); a whitespace-only current value is
   an empty list, so appending to it must not leave a leading
   separator. *)
let cmd_lappend t = function
  | _ :: name :: values ->
    let current = Option.value (get_var t name) ~default:"" in
    let v =
      match values with
      | [] -> current
      | _ ->
        if String.trim current = "" then Tcl_list.format values
        else current ^ " " ^ Tcl_list.format values
    in
    set_var t name v;
    v
  | _ -> wrong_args "lappend varName ?value value ...?"

let cmd_linsert _t = function
  | _ :: l :: idx :: (_ :: _ as values) ->
    let elements = parse_list_exn l in
    let n = List.length elements in
    let i = min (max 0 (parse_index n idx)) n in
    let before = List.filteri (fun j _ -> j < i) elements in
    let after = List.filteri (fun j _ -> j >= i) elements in
    Tcl_list.format (before @ values @ after)
  | _ -> wrong_args "linsert list index element ?element ...?"

let cmd_lreplace _t = function
  | _ :: l :: first :: last :: values ->
    let elements = parse_list_exn l in
    let n = List.length elements in
    let first = max 0 (parse_index n first) in
    let last = min (n - 1) (parse_index n last) in
    let before = List.filteri (fun j _ -> j < first) elements in
    let after = List.filteri (fun j _ -> j > last && j >= first) elements in
    Tcl_list.format (before @ values @ after)
  | _ -> wrong_args "lreplace list first last ?element element ...?"

let cmd_lsearch _t words =
  let mode, l, pattern =
    match words with
    | [ _; l; pattern ] -> (`Glob, l, pattern)
    | [ _; "-exact"; l; pattern ] -> (`Exact, l, pattern)
    | [ _; "-glob"; l; pattern ] -> (`Glob, l, pattern)
    | _ -> wrong_args "lsearch ?-exact|-glob? list pattern"
  in
  let matches e =
    match mode with
    | `Exact -> e = pattern
    | `Glob -> Glob.matches ~pattern e
  in
  let elements = parse_list_exn l in
  let rec find i = function
    | [] -> -1
    | e :: rest -> if matches e then i else find (i + 1) rest
  in
  string_of_int (find 0 elements)

let cmd_lsort _t words =
  let compare_by mode a b =
    match mode with
    | `Ascii -> String.compare a b
    | `Integer ->
      compare
        (match int_of_string_opt (String.trim a) with
        | Some i -> i
        | None -> failf "expected integer but got \"%s\"" a)
        (match int_of_string_opt (String.trim b) with
        | Some i -> i
        | None -> failf "expected integer but got \"%s\"" b)
    | `Real ->
      compare
        (match float_of_string_opt (String.trim a) with
        | Some f -> f
        | None -> failf "expected floating-point number but got \"%s\"" a)
        (match float_of_string_opt (String.trim b) with
        | Some f -> f
        | None -> failf "expected floating-point number but got \"%s\"" b)
  in
  let rec parse_opts mode direction = function
    | [ l ] ->
      let cmp a b =
        let c = compare_by mode a b in
        match direction with `Incr -> c | `Decr -> -c
      in
      Tcl_list.format (List.stable_sort cmp (parse_list_exn l))
    | "-integer" :: rest -> parse_opts `Integer direction rest
    | "-real" :: rest -> parse_opts `Real direction rest
    | "-ascii" :: rest -> parse_opts `Ascii direction rest
    | "-increasing" :: rest -> parse_opts mode `Incr rest
    | "-decreasing" :: rest -> parse_opts mode `Decr rest
    | _ -> wrong_args "lsort ?-ascii|-integer|-real? ?-increasing|-decreasing? list"
  in
  parse_opts `Ascii `Incr (List.tl words)

(* concat trims each argument and joins with single spaces, dropping empty
   arguments. *)
let cmd_concat _t = function
  | _ :: args ->
    String.concat " "
      (List.filter (fun s -> s <> "") (List.map String.trim args))
  | [] -> assert false

let cmd_split _t words =
  let split_on_chars chars s =
    if chars = "" then
      List.init (String.length s) (fun i -> String.make 1 s.[i])
    else begin
      let out = ref [] in
      let buf = Buffer.create 16 in
      String.iter
        (fun c ->
          if String.contains chars c then begin
            out := Buffer.contents buf :: !out;
            Buffer.clear buf
          end
          else Buffer.add_char buf c)
        s;
      List.rev (Buffer.contents buf :: !out)
    end
  in
  match words with
  | [ _; s ] -> Tcl_list.format (split_on_chars " \t\n\r" s)
  | [ _; s; chars ] -> Tcl_list.format (split_on_chars chars s)
  | _ -> wrong_args "split string ?splitChars?"

let cmd_join _t = function
  | [ _; l ] -> String.concat " " (parse_list_exn l)
  | [ _; l; sep ] -> String.concat sep (parse_list_exn l)
  | _ -> wrong_args "join list ?joinString?"

let install t =
  register_value t "list" cmd_list;
  register_value t "lindex" cmd_lindex;
  register_value t "llength" cmd_llength;
  register_value t "lrange" cmd_lrange;
  register_value t "lappend" cmd_lappend;
  register_value t "linsert" cmd_linsert;
  register_value t "lreplace" cmd_lreplace;
  register_value t "lsearch" cmd_lsearch;
  register_value t "lsort" cmd_lsort;
  register_value t "concat" cmd_concat;
  register_value t "split" cmd_split;
  register_value t "join" cmd_join;
  (* Tcl-1990 aliases used by the paper's scripts. *)
  register_value t "index" cmd_lindex;
  register_value t "range" cmd_lrange;
  register_value t "length" cmd_llength;
  (* Static index validator for the lint pass: the same grammar as the
     runtime's Tcl_list.parse_index, applied to literal arguments (the
     length does not matter for malformed-ness). *)
  let chk_index i =
    {
      chk_arg = i;
      chk =
        (fun v ->
          match Tcl_list.parse_index ~len:0 v with
          | Stdlib.Ok _ -> None
          | Stdlib.Error msg -> Some msg);
    }
  in
  List.iter (register_signature t)
    [
      signature "list" 0 ~usage:"list ?arg arg ...?";
      signature "lindex" 2 ~max:2 ~usage:"lindex list index"
        ~checks:[ chk_index 2 ];
      signature "llength" 1 ~max:1 ~usage:"llength list";
      signature "lrange" 3 ~max:3 ~usage:"lrange list first last"
        ~checks:[ chk_index 2; chk_index 3 ];
      signature "lappend" 1 ~usage:"lappend varName ?value value ...?";
      signature "linsert" 3 ~usage:"linsert list index element ?element ...?"
        ~checks:[ chk_index 2 ];
      signature "lreplace" 3
        ~usage:"lreplace list first last ?element element ...?"
        ~checks:[ chk_index 2; chk_index 3 ];
      signature "lsearch" 2 ~max:3 ~usage:"lsearch ?-exact|-glob? list pattern";
      signature "lsort" 1
        ~usage:"lsort ?-ascii|-integer|-real? ?-increasing|-decreasing? list";
      signature "concat" 0 ~usage:"concat ?arg arg ...?";
      signature "split" 1 ~max:2 ~usage:"split string ?splitChars?";
      signature "join" 1 ~max:2 ~usage:"join list ?joinString?";
      signature "index" 2 ~max:2 ~usage:"lindex list index"
        ~checks:[ chk_index 2 ];
      signature "range" 3 ~max:3 ~usage:"lrange list first last"
        ~checks:[ chk_index 2; chk_index 3 ];
      signature "length" 1 ~max:1 ~usage:"llength list";
    ]
