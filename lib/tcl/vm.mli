(** Register/slot bytecode lowered from {!Compile} programs.

    {!lower} (whole scripts) and {!lower_proc} (procedure bodies, with
    formal parameters pre-allocated to local slots) translate a
    compiled program into an instruction array with resolved variable
    references and typed expressions. Lowering is purely syntactic —
    it reads no variables and consults no command table — so lowered
    code can be cached alongside the compiled form and never goes
    stale; whether the inlined structural opcodes may bypass command
    dispatch is decided at execution time by the interpreter (which
    deopts per instruction to the stored original {!Compile.command}
    when [set]/[if]/[while]/... have been redefined, renamed or
    hidden).

    All types are parametric over the frame representation ['f]: the
    executor lives in {!Interp}, which instantiates ['f] with its
    frame type. *)

type 'f cache = ('f * int * Tval.t) option ref
(** One-entry inline cache: frame, frame generation, value cell. *)

type 'f vref =
  | Rslot of int * string  (** procedure local: slot index + name *)
  | Rname of string * 'f cache  (** by-name lookup with inline cache *)

type kind = Kint | Kfloat | Klist
(** A value-kind fact the static analyzer ({!Lint}/{!Absint}) can prove
    about a procedure's formal slot: every value bound there is of this
    kind, so the executor may prime the matching {!Tval} rep at bind
    time (always semantically safe — priming only parses earlier). *)

type 'f code = {
  insns : 'f insn array;
  locals : string array;
      (** slot names for the frame this code runs in ([||] for nested
          and top-level code, which share the enclosing frame) *)
  kinds : kind option array;
      (** analyzer-proven value kinds per local slot ([||] when no seed
          was supplied; same length as [locals] otherwise) *)
}

and 'f insn =
  | Ivk of { vwords : 'f vword list; orig : Compile.command }
  | Iset of { dst : 'f vref; value : 'f vword option; orig : Compile.command }
  | Iincr of { dst : 'f vref; by : 'f amount; orig : Compile.command }
  | Iexpr of { e : 'f vexpr; orig : Compile.command }
  | Iif of {
      arms : ('f vexpr * 'f code) list;
      els : 'f code option;
      orig : Compile.command;
    }
  | Iwhile of { cond : 'f vexpr; body : 'f code; orig : Compile.command }
  | Ifor of {
      init : 'f code;
      cond : 'f vexpr;
      next : 'f code;
      body : 'f code;
      orig : Compile.command;
    }
  | Iforeach of {
      dst : 'f vref;
      items : 'f items;
      body : 'f code;
      orig : Compile.command;
    }
  | Ireturn of { value : 'f vword option; orig : Compile.command }
  | Ibreak of { orig : Compile.command }
  | Icontinue of { orig : Compile.command }

and 'f amount = Aconst of int | Aword of 'f vword

and 'f items = Lconst of string list | Lword of 'f vword

and 'f vword =
  | Wlit of Tval.t
      (** literal word as a shared dual-ported value (numeric/list reps
          parsed once, persist across executions) *)
  | Wvar of 'f vref
  | Wvcmd of 'f code
  | Wexpr of { e : 'f vexpr; code : 'f code; orig : Compile.command }
      (** whole-word [\[expr ...\]] with a single canonical expr
          command: evaluated typed, deopting to [code] *)
  | Wgen of Compile.word

and 'f qpart = Ql of string | Qv of string | Qc of 'f code

and 'f vexpr =
  | Xconst of Expr.value
  | Xvar of 'f vref
  | Xcmd of 'f code
  | Xquoted of 'f qpart list
  | Xunop of string * 'f vexpr
  | Xbinop of string * 'f vexpr * 'f vexpr
  | Xternary of 'f vexpr * 'f vexpr * 'f vexpr
  | Xfunc of string * 'f vexpr list

val lower : compile:(string -> Compile.program) -> Compile.program -> 'f code
(** Lower a top-level script. All variable references resolve by name
    (with inline caches); [locals] is [[||]]. [compile] is used for
    braced loop/condition bodies and bracketed scripts inside
    expressions. *)

val lower_proc :
  ?seed:(string * kind) list ->
  compile:(string -> Compile.program) ->
  formals:string list ->
  Compile.program ->
  'f code
(** Lower a procedure body. Formals claim the first local slots, and
    literal [set]/[incr]/[foreach] targets (and [$x] reads) claim
    further ones as they appear, up to a small bound; the executor
    builds the call frame from [locals]. [seed] attaches analyzer-proven
    value kinds to the named slots ({!kind}); the executor uses them to
    prime bound arguments' numeric/list reps so canonical procedures
    skip first-execution shimmering. *)
