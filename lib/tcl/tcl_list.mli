(** Tcl lists: strings whose elements are separated by whitespace, with
    braces, double quotes and backslashes providing grouping and quoting.

    Every Tcl value is a string; these functions convert between the string
    form of a list and its elements, preserving the invariant that
    [parse (format l) = Ok l] for any element list [l]. *)

val parse : string -> (string list, string) result
(** Split a string into list elements. Errors on unbalanced braces or
    unmatched quotes, mirroring Tcl's "unmatched open brace in list". *)

val parse_exn : string -> string list
(** Like {!parse} but raises [Failure]. *)

val quote_element : string -> string
(** Quote a single element so it can be embedded in a list string. Uses the
    bare form when possible, brace-quoting for strings containing special
    characters, and backslash-quoting when braces are unbalanced. *)

val format : string list -> string
(** Build the string form of a list from its elements. *)

val index : string -> int -> (string, string) result
(** [index l i] is element [i] (0-based) of list [l]; out-of-range indices
    yield the empty string, as in Tcl. *)

val length : string -> (int, string) result

val parse_index : len:int -> string -> (int, string) result
(** Parse a list index: an integer, ["end"], or ["end-N"] (N a plain
    non-negative integer) relative to a list of [len] elements.
    Malformed indices — including ["end-"] and ["end--1"] — yield
    [Error "bad index ..."]. The result may be out of range; callers
    clamp or reject according to each command's semantics. *)

val range : string -> int -> int -> (string, string) result
(** [range l first last] is the sublist from [first] to [last] inclusive;
    [last] may be the magic value [max_int] meaning "end". *)
