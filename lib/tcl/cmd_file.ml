open Interp

let known_options =
  [
    "exists"; "isdirectory"; "isfile"; "readable"; "writable"; "dirname";
    "tail"; "rootname"; "extension"; "size";
  ]

let file_size path =
  match In_channel.with_open_bin path In_channel.length with
  | len -> Some (Int64.to_int len)
  | exception Sys_error _ -> None

let apply_file_option option path =
  let bool b = if b then "1" else "0" in
  match option with
  | "exists" -> bool (Sys.file_exists path)
  | "isdirectory" -> bool (Sys.file_exists path && Sys.is_directory path)
  | "isfile" ->
    bool (Sys.file_exists path && not (Sys.is_directory path))
  | "readable" -> bool (Sys.file_exists path)
  | "writable" -> bool (Sys.file_exists path)
  | "dirname" -> Filename.dirname path
  | "tail" -> Filename.basename path
  | "rootname" -> Filename.remove_extension path
  | "extension" ->
    let base = Filename.basename path in
    (try
       let dot = String.rindex base '.' in
       String.sub base dot (String.length base - dot)
     with Not_found -> "")
  | "size" -> (
    match file_size path with
    | Some n -> string_of_int n
    | None -> failf "couldn't stat \"%s\"" path)
  | opt -> failf "bad file option \"%s\"" opt

let cmd_file _t = function
  | [ _; a; b ] ->
    (* Modern order is "file option name"; the paper's Figure 9 uses
       "file name option". Accept both by checking which word is a known
       option. *)
    if List.mem a known_options then apply_file_option a b
    else if List.mem b known_options then apply_file_option b a
    else failf "bad file option \"%s\"" a
  | _ -> wrong_args "file option name"

let cmd_glob _t words =
  let no_complain, patterns =
    match words with
    | _ :: "-nocomplain" :: rest -> (true, rest)
    | _ :: rest -> (false, rest)
    | [] -> assert false
  in
  if patterns = [] then wrong_args "glob ?-nocomplain? pattern ?pattern ...?"
  else begin
    let expand pattern =
      let dir = Filename.dirname pattern in
      let base = Filename.basename pattern in
      let entries =
        match Sys.readdir (if String.contains pattern '/' then dir else ".") with
        | entries -> Array.to_list entries
        | exception Sys_error _ -> []
      in
      let matched =
        List.filter (fun e -> Glob.matches ~pattern:base e) entries
      in
      let matched =
        (* Hidden files only match patterns that start with a dot. *)
        List.filter
          (fun e ->
            String.length e > 0
            && (e.[0] <> '.' || (String.length base > 0 && base.[0] = '.')))
          matched
      in
      if String.contains pattern '/' then
        List.map (fun e -> Filename.concat dir e) matched
      else matched
    in
    let results = List.concat_map expand patterns in
    if results = [] && not no_complain then
      failf "no files matched glob pattern(s)"
    else Tcl_list.format (List.sort String.compare results)
  end

let cmd_pwd _t = function
  | [ _ ] -> Sys.getcwd ()
  | _ -> wrong_args "pwd"

let cmd_cd _t = function
  | [ _; dir ] -> (
    match Sys.chdir dir with
    | () -> ""
    | exception Sys_error msg -> failf "couldn't change directory: %s" msg)
  | _ -> wrong_args "cd dirName"

(* Run a command, capturing stdout. Uses a shell via Sys.command with
   output redirected to a temporary file, so no extra library is needed. *)
let cmd_exec _t = function
  | _ :: (_ :: _ as argv) ->
    let background, argv =
      match List.rev argv with
      | "&" :: rest -> (true, List.rev rest)
      | _ -> (false, argv)
    in
    let command = Filename.quote_command (List.hd argv) (List.tl argv) in
    if background then begin
      ignore (Sys.command (command ^ " &"));
      ""
    end
    else begin
      let tmp = Filename.temp_file "tclexec" ".out" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
        (fun () ->
          let status =
            Sys.command (command ^ " > " ^ Filename.quote tmp ^ " 2>&1")
          in
          let out =
            In_channel.with_open_text tmp In_channel.input_all
          in
          let out =
            (* Trim a single trailing newline, as Tcl's exec does. *)
            if String.length out > 0 && out.[String.length out - 1] = '\n'
            then String.sub out 0 (String.length out - 1)
            else out
          in
          if status <> 0 then
            failf "command \"%s\" returned non-zero exit status %d: %s"
              (List.hd argv) status out
          else out)
    end
  | _ -> wrong_args "exec arg ?arg ...?"

(* ------------------------------------------------------------------ *)
(* File channels (Tcl's open/close/gets/read/eof/flush, plus puts to a
   channel). Channel ids look like "file3"; stdout/stderr are built in. *)

type chan = Chan_in of in_channel | Chan_out of out_channel

type chan_state = {
  owner : Interp.t;
  channels : (string, chan) Hashtbl.t;
  mutable next_id : int;
}

let chan_states : chan_state list ref = ref []

let chan_state_for t =
  match List.find_opt (fun s -> s.owner == t) !chan_states with
  | Some s -> s
  | None ->
    let s = { owner = t; channels = Hashtbl.create 8; next_id = 3 } in
    chan_states := s :: !chan_states;
    s

let find_channel t id =
  match Hashtbl.find_opt (chan_state_for t).channels id with
  | Some c -> Some c
  | None -> (
    match id with
    | "stdout" -> Some (Chan_out stdout)
    | "stderr" -> Some (Chan_out stderr)
    | "stdin" -> Some (Chan_in stdin)
    | _ -> None)

let channel_exn t id =
  match find_channel t id with
  | Some c -> c
  | None -> failf "file \"%s\" isn't open" id

let out_channel_exn t id =
  match channel_exn t id with
  | Chan_out oc -> oc
  | Chan_in _ -> failf "\"%s\" wasn't opened for writing" id

let in_channel_exn t id =
  match channel_exn t id with
  | Chan_in ic -> ic
  | Chan_out _ -> failf "\"%s\" wasn't opened for reading" id

let cmd_open t = function
  | [ _; path ] | [ _; path; "r" ] -> (
    match open_in path with
    | ic ->
      let s = chan_state_for t in
      let id = Printf.sprintf "file%d" s.next_id in
      s.next_id <- s.next_id + 1;
      Hashtbl.replace s.channels id (Chan_in ic);
      id
    | exception Sys_error msg -> failf "couldn't open \"%s\": %s" path msg)
  | [ _; path; mode ] -> (
    let flags =
      match mode with
      | "w" -> Some [ Open_wronly; Open_creat; Open_trunc ]
      | "a" -> Some [ Open_wronly; Open_creat; Open_append ]
      | _ -> None
    in
    match flags with
    | None -> failf "bad access mode \"%s\": must be r, w, or a" mode
    | Some flags -> (
      match open_out_gen flags 0o644 path with
      | oc ->
        let s = chan_state_for t in
        let id = Printf.sprintf "file%d" s.next_id in
        s.next_id <- s.next_id + 1;
        Hashtbl.replace s.channels id (Chan_out oc);
        id
      | exception Sys_error msg -> failf "couldn't open \"%s\": %s" path msg))
  | _ -> wrong_args "open fileName ?access?"

let cmd_close t = function
  | [ _; id ] ->
    (match channel_exn t id with
    | Chan_in ic -> close_in ic
    | Chan_out oc -> close_out oc);
    Hashtbl.remove (chan_state_for t).channels id;
    ""
  | _ -> wrong_args "close fileId"

let cmd_gets t = function
  | [ _; id ] -> (
    match In_channel.input_line (in_channel_exn t id) with
    | Some line -> line
    | None -> "")
  | [ _; id; var ] -> (
    match In_channel.input_line (in_channel_exn t id) with
    | Some line ->
      set_var t var line;
      string_of_int (String.length line)
    | None ->
      set_var t var "";
      "-1")
  | _ -> wrong_args "gets fileId ?varName?"

let cmd_read t = function
  | [ _; id ] -> In_channel.input_all (in_channel_exn t id)
  | [ _; id; count ] -> (
    let ic = in_channel_exn t id in
    match int_of_string_opt count with
    | Some n ->
      let buf = Bytes.create n in
      let got = input ic buf 0 n in
      Bytes.sub_string buf 0 got
    | None -> failf "expected integer but got \"%s\"" count)
  | _ -> wrong_args "read fileId ?numBytes?"

let cmd_eof t = function
  | [ _; id ] -> (
    let ic = in_channel_exn t id in
    match In_channel.pos ic >= In_channel.length ic with
    | b -> if b then "1" else "0"
    | exception Sys_error _ -> "1")
  | _ -> wrong_args "eof fileId"

let cmd_flush t = function
  | [ _; id ] ->
    flush (out_channel_exn t id);
    ""
  | _ -> wrong_args "flush fileId"

(* puts with channel support: [puts ?-nonewline? ?fileId? string]. The
   default destination is the interpreter's output hook, so tests and
   embedding applications can capture it. *)
let cmd_puts t words =
  let nonewline, rest =
    match words with
    | _ :: "-nonewline" :: rest -> (true, rest)
    | _ :: rest -> (false, rest)
    | [] -> (false, [])
  in
  let write_default s = output t (if nonewline then s else s ^ "\n") in
  match rest with
  | [ s ] ->
    write_default s;
    ""
  | [ id; s ] -> (
    match find_channel t id with
    | Some (Chan_out oc) ->
      output_string oc s;
      if not nonewline then output_char oc '\n';
      ""
    | Some (Chan_in _) -> failf "\"%s\" wasn't opened for writing" id
    | None ->
      (* Not a channel: treat both words as one message, as old Tcl's
         two-argument puts to stdout did not exist — error clearly. *)
      failf "file \"%s\" isn't open" id)
  | _ -> wrong_args "puts ?-nonewline? ?fileId? string"

let install t =
  register_value t "file" cmd_file;
  register_value t "glob" cmd_glob;
  register_value t "pwd" cmd_pwd;
  register_value t "cd" cmd_cd;
  register_value t "exec" cmd_exec;
  register_value t "open" cmd_open;
  register_value t "close" cmd_close;
  register_value t "gets" cmd_gets;
  register_value t "read" cmd_read;
  register_value t "eof" cmd_eof;
  register_value t "flush" cmd_flush;
  (* Replaces the basic puts from Cmd_control with the channel-aware
     version (Builtins installs Cmd_control first). *)
  register_value t "puts" cmd_puts;
  List.iter (register_signature t)
    [
      signature "file" 2 ~max:2 ~usage:"file option name";
      signature "glob" 1 ~usage:"glob ?-nocomplain? pattern ?pattern ...?";
      signature "pwd" 0 ~max:0 ~usage:"pwd";
      signature "cd" 1 ~max:1 ~usage:"cd dirName";
      signature "exec" 1 ~usage:"exec arg ?arg ...?";
      signature "open" 1 ~max:2 ~usage:"open fileName ?access?";
      signature "close" 1 ~max:1 ~usage:"close fileId";
      signature "gets" 1 ~max:2 ~usage:"gets fileId ?varName?";
      signature "read" 1 ~max:2 ~usage:"read fileId ?numBytes?";
      signature "eof" 1 ~max:1 ~usage:"eof fileId";
      signature "flush" 1 ~max:1 ~usage:"flush fileId";
      signature "puts" 1 ~max:3 ~usage:"puts ?-nonewline? ?fileId? string";
    ]
