(** Static analysis of Tcl/Tk scripts over the {!Compile} representation.

    {!analyze} compiles a script (directly — bypassing the interpreter's
    caches and executing nothing) and checks it against the command
    signature registry ({!Interp.signature}): unknown commands,
    misspelled subcommands and [-options] (with "did you mean"
    suggestions), arity against the registry's exact
    ["wrong # args"] usage strings, per-procedure use-before-set
    dataflow, unreachable code after [return]/[break]/[continue]/
    [error], per-argument literal validators (the toolkit hooks binding
    event-pattern validation here), and widget path shape (a parent
    must be created within the same script or already live in the
    interpreter).

    Unknown-command reports are suppressed for names the script itself
    defines ([proc], [rename], widget creation), and entirely when a
    user [unknown] handler is visible.  Dynamic words (with [$] or
    [\[...\]] substitutions) defeat any check needing their value: the
    analysis aims for zero false positives on working scripts. *)

type severity = Error | Warning

type diag = {
  line : int;  (** 1-based *)
  col : int;  (** 1-based *)
  severity : severity;
  message : string;
}

val analyze : Interp.t -> string -> diag list
(** Check a script, sorted by position.  Never executes it; the only
    interpreter state touched is the [tcl.lint.*] counters
    ({!Interp.note_lint}). *)

val complete : string -> bool
(** Whether a script's braces, brackets and quotes balance — the
    [info complete] predicate, also used by wish's interactive
    continuation prompt. *)

val severity_name : severity -> string
(** ["error"] or ["warning"]. *)

val format_diag : ?file:string -> diag -> string
(** ["file:line:col: severity: message"]. *)

val to_tcl_list : diag list -> string
(** Diagnostics as a Tcl list of [{line col severity msg}] elements —
    the result format of the [lint] command. *)
