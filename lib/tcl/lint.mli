(** Static analysis of Tcl/Tk scripts — compile-time checking in the
    spirit of what the C compiler does for Xt applications, extended to
    whole programs.

    {!analyze_program} compiles every file (never executing anything)
    and walks the result with the command-signature registry
    ({!Interp.signature}), a whole-program call graph ({!Callgraph})
    and an abstract interpreter over the value-kind lattice
    ({!Absint}).  Each diagnostic carries the [pass] that produced it:
    ["syntax"], ["unknown"], ["arity"], ["subcommand"], ["options"],
    ["check"], ["widget"], ["dataflow"], ["deadcode"], ["absint"],
    ["callgraph"] or ["capability"].

    Unknown-command reports are suppressed for names the program itself
    defines ([proc], [rename], [interp alias], widget creation), and
    entirely when a user [unknown] handler is visible.  Dynamic words
    (with [$] or [\[...\]] substitutions) defeat any check needing
    their value: the analysis aims for zero false positives on working
    scripts. *)

type severity = Error | Warning

type diag = {
  line : int;  (** 1-based *)
  col : int;  (** 1-based *)
  severity : severity;
  pass : string;  (** which analysis produced it, e.g. ["arity"] *)
  message : string;
}

type outcome = {
  o_diags : (string option * diag) list;
      (** per-file diagnostics, in file order then position order *)
  o_procs : int;  (** procedures defined across the program *)
  o_edges : int;  (** call-graph edges (calls + mentions) *)
  o_facts : (string * (string * Vm.kind) list) list;
      (** per-procedure formal-parameter kind facts proven by the
          interprocedural fixpoint — seeds for {!Vm} lowering *)
}

val analyze_program :
  ?safe:bool ->
  ?whole:bool ->
  Interp.t ->
  (string option * string) list ->
  outcome
(** Analyze a program given as [(filename, source)] pairs sharing one
    namespace of procedures, widgets and aliases.  [safe] additionally
    reports every reachable use of a command the [-safe] interpreter
    profile hides (directly or through an [interp alias]).  [whole]
    enables whole-program-only reports (procedures defined but never
    called) that would misfire on a lone script fragment.  Never
    executes any script; the only interpreter state touched is the
    [tcl.lint.*] counters ({!Interp.note_lint}). *)

val analyze : ?safe:bool -> Interp.t -> string -> diag list
(** Check a single anonymous script, sorted by position
    (script-local checks only). *)

val complete : string -> bool
(** Whether a script's braces, brackets and quotes balance — the
    [info complete] predicate, also used by wish's interactive
    continuation prompt. *)

val severity_name : severity -> string
(** ["error"] or ["warning"]. *)

val format_diag : ?file:string -> diag -> string
(** ["file:line:col: severity: message"]. *)

val to_tcl_list : diag list -> string
(** Diagnostics as a Tcl list of [{line col severity msg}] elements —
    the result format of the [lint] command. *)
