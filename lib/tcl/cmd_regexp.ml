open Interp

let compile_exn ~nocase pattern =
  let pattern = if nocase then String.lowercase_ascii pattern else pattern in
  match Regexp.compile pattern with
  | Ok re -> re
  | Error msg -> failf "couldn't compile regular expression pattern: %s" msg

let subject ~nocase s = if nocase then String.lowercase_ascii s else s

let rec split_flags nocase indices all = function
  | "-nocase" :: rest -> split_flags true indices all rest
  | "-indices" :: rest -> split_flags nocase true all rest
  | "-all" :: rest -> split_flags nocase indices true rest
  | rest -> (nocase, indices, all, rest)

let cmd_regexp t words =
  let nocase, indices, _all, rest = split_flags false false false (List.tl words) in
  match rest with
  | exp :: str :: vars ->
    let re = compile_exn ~nocase exp in
    (match Regexp.find re (subject ~nocase str) with
    | None -> "0"
    | Some caps ->
      List.iteri
        (fun i var ->
          let start, stop =
            if i < Array.length caps then caps.(i) else (-1, -1)
          in
          let value =
            if start < 0 then ""
            else if indices then
              Printf.sprintf "%d %d" start (stop - 1)
            else String.sub str start (stop - start)
          in
          set_var t var value)
        vars;
      "1")
  | _ ->
    wrong_args "regexp ?-nocase? ?-indices? exp string ?matchVar? ?subVar ...?"

let cmd_regsub t words =
  let nocase, _indices, all, rest = split_flags false false false (List.tl words) in
  match rest with
  | [ exp; str; template; var ] ->
    let re = compile_exn ~nocase exp in
    if nocase then begin
      (* Match case-insensitively but substitute from the original text:
         find match offsets on the lowercased copy, then rebuild. *)
      let folded = String.lowercase_ascii str in
      let result = Buffer.create (String.length str) in
      let count = ref 0 in
      let rec go offset =
        if offset > String.length str then ()
        else
          let tail = String.sub folded offset (String.length folded - offset) in
          let orig_tail = String.sub str offset (String.length str - offset) in
          match Regexp.find re tail with
          | None -> Buffer.add_string result orig_tail
          | Some caps ->
            let start, stop = caps.(0) in
            Buffer.add_string result (String.sub orig_tail 0 start);
            (* Re-run template expansion against the original text. *)
            let expanded, _ =
              let sub_re =
                (* caps are offsets valid for orig_tail too. *)
                caps
              in
              let buf = Buffer.create 16 in
              let group i =
                if i < Array.length sub_re then begin
                  let s0, s1 = sub_re.(i) in
                  if s0 >= 0 then
                    Buffer.add_string buf (String.sub orig_tail s0 (s1 - s0))
                end
              in
              let n = String.length template in
              let i = ref 0 in
              while !i < n do
                (match template.[!i] with
                | '&' ->
                  group 0;
                  incr i
                | '\\' when !i + 1 < n -> (
                  match template.[!i + 1] with
                  | '0' .. '9' as d ->
                    group (Char.code d - Char.code '0');
                    i := !i + 2
                  | c ->
                    Buffer.add_char buf c;
                    i := !i + 2)
                | c ->
                  Buffer.add_char buf c;
                  incr i)
              done;
              (Buffer.contents buf, 0)
            in
            Buffer.add_string result expanded;
            incr count;
            if all && stop > start then go (offset + stop)
            else if all then begin
              if start < String.length orig_tail then
                Buffer.add_char result orig_tail.[start];
              go (offset + start + 1)
            end
            else
              Buffer.add_string result
                (String.sub orig_tail stop (String.length orig_tail - stop))
      in
      go 0;
      set_var t var (Buffer.contents result);
      string_of_int !count
    end
    else begin
      let result, count = Regexp.replace re str ~template ~all in
      set_var t var result;
      string_of_int count
    end
  | _ -> wrong_args "regsub ?-all? ?-nocase? exp string subSpec varName"

let install t =
  register_value t "regexp" cmd_regexp;
  register_value t "regsub" cmd_regsub;
  List.iter (register_signature t)
    [
      signature "regexp" 2
        ~usage:"regexp ?-nocase? ?-indices? exp string ?matchVar? ?subVar ...?";
      signature "regsub" 4
        ~usage:"regsub ?-all? ?-nocase? exp string subSpec varName";
    ]
