type value = Int of int | Float of float | Str of string

type env = {
  get_var : string -> string;
  eval_cmd : string -> string;
}

exception Error of string

let error fmt = Format.kasprintf (fun msg -> raise (Error msg)) fmt

(* Tcl's %.12g default (with a round-trip fallback); see Tval. *)
let float_to_string = Tval.float_to_string

let to_string = function
  | Int i -> string_of_int i
  | Float f -> float_to_string f
  | Str s -> s

let number_of_string s =
  let s' = String.trim s in
  if s' = "" then None
  else
    match int_of_string_opt s' with
    | Some i -> Some (Int i)
    | None -> (
      match float_of_string_opt s' with
      | Some f -> Some (Float f)
      | None -> None)

let as_number v =
  match v with
  | Int _ | Float _ -> Some v
  | Str s -> number_of_string s

let require_number v =
  match as_number v with
  | Some n -> n
  | None -> error "expected number but got %S" (to_string v)

let as_int v =
  match require_number v with
  | Int i -> i
  | Float _ -> error "expected integer but got %S" (to_string v)
  | Str _ -> assert false

let truthy v =
  match as_number v with
  | Some (Int i) -> i <> 0
  | Some (Float f) -> f <> 0.0
  | Some (Str _) -> assert false
  | None -> (
    match String.lowercase_ascii (to_string v) with
    | "true" | "yes" | "on" -> true
    | "false" | "no" | "off" -> false
    | s -> error "expected boolean value but got %S" s)

(* ------------------------------------------------------------------ *)
(* Lexer *)

type token =
  | Num of value
  | Strval of string (* quoted or braced operand: compares as string *)
  | Ident of string (* math function name *)
  | Op of string
  | Lparen
  | Rparen
  | Comma
  | End

type lexer = {
  env : env;
  src : string;
  mutable pos : int;
  mutable tok : token;
  mutable skip : int;
      (* > 0 while parsing an operand that must not be evaluated: the
         unreached branch of &&, || or ?:. Substitutions are suppressed and
         operators return dummies, so side effects and spurious type errors
         (e.g. divide by zero in dead code) cannot occur. *)
}

let skipping lx = lx.skip > 0

let skipped lx thunk =
  lx.skip <- lx.skip + 1;
  Fun.protect ~finally:(fun () -> lx.skip <- lx.skip - 1) thunk

(* Read a $variable reference starting at the '$'; returns its value. *)
let read_variable lx =
  let s = lx.src and n = String.length lx.src in
  let start = lx.pos + 1 in
  let i = ref start in
  if !i < n && s.[!i] = '{' then begin
    let j = ref (!i + 1) in
    while !j < n && s.[!j] <> '}' do
      incr j
    done;
    if !j >= n then error "missing close-brace for variable name";
    let name = String.sub s (!i + 1) (!j - !i - 1) in
    lx.pos <- !j + 1;
    if skipping lx then "" else lx.env.get_var name
  end
  else begin
    while !i < n && Chars.is_var_char s.[!i] do
      incr i
    done;
    if !i = start then error "invalid character after $ in expression";
    let name_end = !i in
    if !i < n && s.[!i] = '(' then begin
      (* Array reference: scan to the matching ')'. *)
      let depth = ref 1 in
      incr i;
      while !i < n && !depth > 0 do
        (match s.[!i] with
        | '(' -> incr depth
        | ')' -> decr depth
        | _ -> ());
        incr i
      done;
      if !depth > 0 then error "missing close-paren in array reference";
      let name = String.sub s start (!i - start) in
      lx.pos <- !i;
      if skipping lx then "" else lx.env.get_var name
    end
    else begin
      let name = String.sub s start (name_end - start) in
      lx.pos <- name_end;
      if skipping lx then "" else lx.env.get_var name
    end
  end

(* Read a [command] substitution starting at the '['. *)
let read_command lx =
  let s = lx.src and n = String.length lx.src in
  let rec scan j depth =
    if j >= n then error "missing close-bracket in expression"
    else
      match s.[j] with
      | '\\' -> scan (j + 2) depth
      | '[' -> scan (j + 1) (depth + 1)
      | ']' -> if depth = 0 then j else scan (j + 1) (depth - 1)
      | _ -> scan (j + 1) depth
  in
  let close = scan (lx.pos + 1) 0 in
  let script = String.sub lx.src (lx.pos + 1) (close - lx.pos - 1) in
  lx.pos <- close + 1;
  if skipping lx then "" else lx.env.eval_cmd script

(* Read a "quoted string" operand, performing backslash, variable and
   command substitution inside. *)
let read_quoted lx =
  let s = lx.src and n = String.length lx.src in
  let buf = Buffer.create 16 in
  lx.pos <- lx.pos + 1;
  let rec go () =
    if lx.pos >= n then error "missing close quote in expression"
    else
      match s.[lx.pos] with
      | '"' ->
        lx.pos <- lx.pos + 1;
        Buffer.contents buf
      | '\\' ->
        let repl, j = Chars.backslash_subst s lx.pos in
        Buffer.add_string buf repl;
        lx.pos <- j;
        go ()
      | '$' ->
        Buffer.add_string buf (read_variable lx);
        go ()
      | '[' ->
        Buffer.add_string buf (read_command lx);
        go ()
      | c ->
        Buffer.add_char buf c;
        lx.pos <- lx.pos + 1;
        go ()
  in
  go ()

let read_braced lx =
  match Chars.find_matching_brace lx.src lx.pos with
  | None -> error "missing close brace in expression"
  | Some j ->
    let content = String.sub lx.src (lx.pos + 1) (j - lx.pos - 1) in
    lx.pos <- j + 1;
    content

let read_number lx =
  let s = lx.src and n = String.length lx.src in
  let start = lx.pos in
  let i = ref start in
  let is_num_char c =
    Chars.is_digit c || c = '.' || c = 'x' || c = 'X'
    || (c >= 'a' && c <= 'f')
    || (c >= 'A' && c <= 'F')
  in
  while !i < n && is_num_char s.[!i] do
    (* Accept exponent signs: "1e+5". *)
    if (s.[!i] = 'e' || s.[!i] = 'E')
       && !i + 1 < n
       && (s.[!i + 1] = '+' || s.[!i + 1] = '-')
       && not (String.length s > start + 1 && (s.[start + 1] = 'x' || s.[start + 1] = 'X'))
    then i := !i + 2
    else incr i
  done;
  let text = String.sub s start (!i - start) in
  lx.pos <- !i;
  match number_of_string text with
  | Some v -> v
  | None -> error "malformed number %S in expression" text

let rec next_token lx =
  let s = lx.src and n = String.length lx.src in
  while lx.pos < n && (Chars.is_space s.[lx.pos] || s.[lx.pos] = '\n') do
    lx.pos <- lx.pos + 1
  done;
  if lx.pos >= n then lx.tok <- End
  else
    let two op = lx.pos <- lx.pos + 2; lx.tok <- Op op in
    let one op = lx.pos <- lx.pos + 1; lx.tok <- Op op in
    let c = s.[lx.pos] in
    let c2 = if lx.pos + 1 < n then Some s.[lx.pos + 1] else None in
    match (c, c2) with
    | '(', _ -> lx.pos <- lx.pos + 1; lx.tok <- Lparen
    | ')', _ -> lx.pos <- lx.pos + 1; lx.tok <- Rparen
    | ',', _ -> lx.pos <- lx.pos + 1; lx.tok <- Comma
    | '$', _ -> lx.tok <- Strval (read_variable lx)
    | '[', _ -> lx.tok <- Strval (read_command lx)
    | '"', _ -> lx.tok <- Strval (read_quoted lx)
    | '{', _ -> lx.tok <- Strval (read_braced lx)
    | '\\', _ ->
      (* Backslash-newline continuation inside expressions. *)
      let repl, j = Chars.backslash_subst s lx.pos in
      if String.trim repl = "" then begin
        lx.pos <- j;
        next_token lx
      end
      else lx.tok <- Strval repl
    | '0' .. '9', _ -> lx.tok <- Num (read_number lx)
    | '.', Some d when Chars.is_digit d -> lx.tok <- Num (read_number lx)
    | '<', Some '<' -> two "<<"
    | '>', Some '>' -> two ">>"
    | '<', Some '=' -> two "<="
    | '>', Some '=' -> two ">="
    | '=', Some '=' -> two "=="
    | '!', Some '=' -> two "!="
    | '&', Some '&' -> two "&&"
    | '|', Some '|' -> two "||"
    | ('+' | '-' | '*' | '/' | '%' | '<' | '>' | '!' | '~' | '&' | '|' | '^' | '?' | ':'), _
      -> one (String.make 1 c)
    | ('a' .. 'z' | 'A' .. 'Z' | '_'), _ ->
      let i = ref lx.pos in
      while !i < n && Chars.is_var_char s.[!i] do
        incr i
      done;
      let name = String.sub s lx.pos (!i - lx.pos) in
      lx.pos <- !i;
      lx.tok <- Ident name
    | _ -> error "syntax error in expression near %C" c

(* ------------------------------------------------------------------ *)
(* Arithmetic on values *)

let arith name fi ff a b =
  match (require_number a, require_number b) with
  | Int x, Int y -> Int (fi x y)
  | (Int _ | Float _), (Int _ | Float _) ->
    let fx = match require_number a with Int x -> float_of_int x | Float f -> f | Str _ -> assert false in
    let fy = match require_number b with Int y -> float_of_int y | Float f -> f | Str _ -> assert false in
    (match ff with
    | Some f -> Float (f fx fy)
    | None -> error "can't use floating-point value as operand of %S" name)
  | _ -> assert false

let compare_values a b =
  match (as_number a, as_number b) with
  | Some (Int x), Some (Int y) -> compare x y
  | Some x, Some y ->
    let f = function Int i -> float_of_int i | Float f -> f | Str _ -> assert false in
    compare (f x) (f y)
  | _ -> String.compare (to_string a) (to_string b)

let int_div x y =
  if y = 0 then error "divide by zero"
  else
    (* Tcl division truncates toward negative infinity. *)
    let q = x / y and r = x mod y in
    if (r <> 0) && ((r < 0) <> (y < 0)) then q - 1 else q

let int_mod x y =
  if y = 0 then error "divide by zero"
  else
    let r = x mod y in
    if r <> 0 && (r < 0) <> (y < 0) then r + y else r

let bool_val b = Int (if b then 1 else 0)

(* ------------------------------------------------------------------ *)
(* Parser: precedence climbing *)

let rec parse_ternary lx =
  let cond = parse_binary lx 0 in
  match lx.tok with
  | Op "?" ->
    (* [next_token] performs substitution, so each branch's first token
       must be read under the right skip mode. *)
    let check_colon () =
      match lx.tok with
      | Op ":" -> ()
      | _ -> error "missing ':' in ternary expression"
    in
    if skipping lx then begin
      next_token lx;
      ignore (parse_ternary lx);
      check_colon ();
      next_token lx;
      ignore (parse_ternary lx);
      Int 0
    end
    else if truthy cond then begin
      next_token lx;
      let t = parse_ternary lx in
      check_colon ();
      skipped lx (fun () ->
          next_token lx;
          ignore (parse_ternary lx));
      t
    end
    else begin
      skipped lx (fun () ->
          next_token lx;
          ignore (parse_ternary lx));
      check_colon ();
      next_token lx;
      parse_ternary lx
    end
  | _ -> cond

and binary_level = function
  | "||" -> Some 1
  | "&&" -> Some 2
  | "|" -> Some 3
  | "^" -> Some 4
  | "&" -> Some 5
  | "==" | "!=" -> Some 6
  | "<" | ">" | "<=" | ">=" -> Some 7
  | "<<" | ">>" -> Some 8
  | "+" | "-" -> Some 9
  | "*" | "/" | "%" -> Some 10
  | _ -> None

and parse_binary lx min_level =
  let lhs = ref (parse_unary lx) in
  let continue_ = ref true in
  while !continue_ do
    match lx.tok with
    | Op op -> (
      match binary_level op with
      | Some level when level >= min_level ->
        (* Short-circuit for && and ||: the right side is parsed but not
           evaluated when the left side decides the result. The skip mode
           must be entered before [next_token] reads (and would otherwise
           substitute) the right side's first token. *)
        let parse_rhs_live () =
          next_token lx;
          parse_binary lx (level + 1)
        in
        let parse_rhs_skipped () =
          skipped lx (fun () ->
              next_token lx;
              ignore (parse_binary lx (level + 1)))
        in
        (match op with
        | ("&&" | "||") when skipping lx ->
          next_token lx;
          ignore (parse_binary lx (level + 1));
          lhs := Int 0
        | "&&" ->
          if truthy !lhs then lhs := bool_val (truthy (parse_rhs_live ()))
          else begin
            parse_rhs_skipped ();
            lhs := bool_val false
          end
        | "||" ->
          if truthy !lhs then begin
            parse_rhs_skipped ();
            lhs := bool_val true
          end
          else lhs := bool_val (truthy (parse_rhs_live ()))
        | _ ->
          let rhs = parse_rhs_live () in
          lhs := (if skipping lx then Int 0 else apply_binary op !lhs rhs))
      | _ -> continue_ := false)
    | _ -> continue_ := false
  done;
  !lhs

and apply_binary op a b =
  match op with
  | "+" -> arith "+" ( + ) (Some ( +. )) a b
  | "-" -> arith "-" ( - ) (Some ( -. )) a b
  | "*" -> arith "*" ( * ) (Some ( *. )) a b
  | "/" ->
    arith "/" int_div
      (Some
         (fun x y -> if y = 0.0 then error "divide by zero" else x /. y))
      a b
  | "%" -> Int (int_mod (as_int a) (as_int b))
  | "<<" -> Int (as_int a lsl as_int b)
  | ">>" -> Int (as_int a asr as_int b)
  | "&" -> Int (as_int a land as_int b)
  | "|" -> Int (as_int a lor as_int b)
  | "^" -> Int (as_int a lxor as_int b)
  | "==" -> bool_val (compare_values a b = 0)
  | "!=" -> bool_val (compare_values a b <> 0)
  | "<" -> bool_val (compare_values a b < 0)
  | ">" -> bool_val (compare_values a b > 0)
  | "<=" -> bool_val (compare_values a b <= 0)
  | ">=" -> bool_val (compare_values a b >= 0)
  | _ -> error "unknown operator %S" op

and apply_unary op v =
  match op with
  | "-" -> (
    match require_number v with
    | Int i -> Int (-i)
    | Float f -> Float (-.f)
    | Str _ -> assert false)
  | "+" -> require_number v
  | "!" -> bool_val (not (truthy v))
  | _ -> Int (lnot (as_int v))

and parse_unary lx =
  match lx.tok with
  | Op (("-" | "+" | "!" | "~") as op) ->
    next_token lx;
    let v = parse_unary lx in
    if skipping lx then Int 0 else apply_unary op v
  | _ -> parse_primary lx

and parse_primary lx =
  match lx.tok with
  | Num v ->
    next_token lx;
    v
  | Strval s ->
    next_token lx;
    (* A substituted operand is numeric if it looks numeric. *)
    (match number_of_string s with Some v -> v | None -> Str s)
  | Lparen ->
    next_token lx;
    let v = parse_ternary lx in
    (match lx.tok with
    | Rparen ->
      next_token lx;
      v
    | _ -> error "missing close paren in expression")
  | Ident name ->
    next_token lx;
    (match lx.tok with
    | Lparen ->
      next_token lx;
      let args = parse_args lx [] in
      if skipping lx then Int 0 else apply_function name args
    | _ -> (
      (* Bare words: accept booleans, else it is an error. *)
      match String.lowercase_ascii name with
      | "true" | "yes" | "on" -> Int 1
      | "false" | "no" | "off" -> Int 0
      | _ -> error "unknown operand %S in expression" name))
  | Op op -> error "unexpected operator %S in expression" op
  | Comma -> error "unexpected ',' in expression"
  | Rparen -> error "unexpected ')' in expression"
  | End -> error "premature end of expression"

and parse_args lx acc =
  match lx.tok with
  | Rparen ->
    next_token lx;
    List.rev acc
  | _ ->
    let v = parse_ternary lx in
    (match lx.tok with
    | Comma ->
      next_token lx;
      parse_args lx (v :: acc)
    | Rparen ->
      next_token lx;
      List.rev (v :: acc)
    | _ -> error "missing ')' in math function call")

and apply_function name args =
  let float1 f =
    match args with
    | [ a ] -> (
      match require_number a with
      | Int i -> Float (f (float_of_int i))
      | Float x -> Float (f x)
      | Str _ -> assert false)
    | _ -> error "math function %S takes one argument" name
  in
  let float2 f =
    match args with
    | [ a; b ] ->
      let fx = function Int i -> float_of_int i | Float x -> x | Str _ -> assert false in
      Float (f (fx (require_number a)) (fx (require_number b)))
    | _ -> error "math function %S takes two arguments" name
  in
  match name with
  | "abs" -> (
    match args with
    | [ a ] -> (
      match require_number a with
      | Int i -> Int (abs i)
      | Float f -> Float (Float.abs f)
      | Str _ -> assert false)
    | _ -> error "math function \"abs\" takes one argument")
  | "int" -> (
    match args with
    | [ a ] -> (
      match require_number a with
      | Int i -> Int i
      | Float f -> Int (int_of_float (Float.trunc f))
      | Str _ -> assert false)
    | _ -> error "math function \"int\" takes one argument")
  | "round" -> (
    match args with
    | [ a ] -> (
      match require_number a with
      | Int i -> Int i
      | Float f -> Int (int_of_float (Float.round f))
      | Str _ -> assert false)
    | _ -> error "math function \"round\" takes one argument")
  | "double" -> (
    match args with
    | [ a ] -> (
      match require_number a with
      | Int i -> Float (float_of_int i)
      | Float f -> Float f
      | Str _ -> assert false)
    | _ -> error "math function \"double\" takes one argument")
  | "sqrt" -> float1 sqrt
  | "sin" -> float1 sin
  | "cos" -> float1 cos
  | "tan" -> float1 tan
  | "asin" -> float1 asin
  | "acos" -> float1 acos
  | "atan" -> float1 atan
  | "exp" -> float1 exp
  | "log" -> float1 log
  | "log10" -> float1 log10
  | "floor" -> float1 Float.floor
  | "ceil" -> float1 Float.ceil
  | "pow" -> float2 ( ** )
  | "atan2" -> float2 atan2
  | "fmod" -> float2 Float.rem
  | "hypot" -> float2 Float.hypot
  | "min" -> float2 Float.min
  | "max" -> float2 Float.max
  | _ -> error "unknown math function %S" name

let eval env src =
  let lx = { env; src; pos = 0; tok = End; skip = 0 } in
  next_token lx;
  let v = parse_ternary lx in
  match lx.tok with
  | End -> v
  | _ -> error "extra tokens at end of expression %S" src

let eval_string env src = to_string (eval env src)

let eval_bool env src = truthy (eval env src)

(* ------------------------------------------------------------------ *)
(* Parsed-AST entry point.

   The evaluator above interleaves lexing with substitution, so a hot
   condition like [{$i < $n}] is re-scanned on every loop iteration.
   The pure tokenizer below reads the same grammar without touching the
   environment, producing an AST that can be cached keyed by the source
   string and evaluated repeatedly.

   Fidelity contract: for any string that {!parse} accepts, [eval_ast]
   must behave byte-identically to {!eval} — same values, same errors,
   same substitution order, same short-circuit behaviour.  Strings that
   {!parse} rejects are NOT necessarily invalid at run time in a
   different sense: the interleaved evaluator may perform substitutions
   (with side effects) before discovering the same syntax error.  The
   caller therefore falls back to {!eval} whenever [parse] fails, which
   reproduces the reference behaviour exactly. *)

type qpart = Q_lit of string | Q_var of string | Q_cmd of string

type ast =
  | A_const of value
  | A_var of string
  | A_cmd of string
  | A_quoted of qpart list
  | A_unop of string * ast
  | A_binop of string * ast * ast
  | A_ternary of ast * ast * ast
  | A_func of string * ast list

type ptok =
  | P_num of value
  | P_str of string (* braced or backslash operand *)
  | P_var of string
  | P_cmd of string
  | P_quoted of qpart list
  | P_ident of string
  | P_op of string
  | P_lparen
  | P_rparen
  | P_comma
  | P_end

type plexer = { psrc : string; mutable ppos : int; mutable ptok : ptok }

(* Mirrors [read_variable], but returns the name instead of the value.
   Array references keep their parenthesised index verbatim: the index is
   not substituted in expressions. *)
let scan_variable_name lx =
  let s = lx.psrc and n = String.length lx.psrc in
  let start = lx.ppos + 1 in
  let i = ref start in
  if !i < n && s.[!i] = '{' then begin
    let j = ref (!i + 1) in
    while !j < n && s.[!j] <> '}' do
      incr j
    done;
    if !j >= n then error "missing close-brace for variable name";
    let name = String.sub s (!i + 1) (!j - !i - 1) in
    lx.ppos <- !j + 1;
    name
  end
  else begin
    while !i < n && Chars.is_var_char s.[!i] do
      incr i
    done;
    if !i = start then error "invalid character after $ in expression";
    let name_end = !i in
    if !i < n && s.[!i] = '(' then begin
      let depth = ref 1 in
      incr i;
      while !i < n && !depth > 0 do
        (match s.[!i] with
        | '(' -> incr depth
        | ')' -> decr depth
        | _ -> ());
        incr i
      done;
      if !depth > 0 then error "missing close-paren in array reference";
      let name = String.sub s start (!i - start) in
      lx.ppos <- !i;
      name
    end
    else begin
      let name = String.sub s start (name_end - start) in
      lx.ppos <- name_end;
      name
    end
  end

(* Mirrors [read_command], returning the script text. *)
let scan_command lx =
  let s = lx.psrc and n = String.length lx.psrc in
  let rec scan j depth =
    if j >= n then error "missing close-bracket in expression"
    else
      match s.[j] with
      | '\\' -> scan (j + 2) depth
      | '[' -> scan (j + 1) (depth + 1)
      | ']' -> if depth = 0 then j else scan (j + 1) (depth - 1)
      | _ -> scan (j + 1) depth
  in
  let close = scan (lx.ppos + 1) 0 in
  let script = String.sub s (lx.ppos + 1) (close - lx.ppos - 1) in
  lx.ppos <- close + 1;
  script

(* Mirrors [read_quoted], collecting parts instead of substituting. *)
let scan_quoted lx =
  let s = lx.psrc and n = String.length lx.psrc in
  let parts = ref [] in
  let buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      parts := Q_lit (Buffer.contents buf) :: !parts;
      Buffer.clear buf
    end
  in
  lx.ppos <- lx.ppos + 1;
  let rec go () =
    if lx.ppos >= n then error "missing close quote in expression"
    else
      match s.[lx.ppos] with
      | '"' ->
        lx.ppos <- lx.ppos + 1;
        flush ();
        List.rev !parts
      | '\\' ->
        let repl, j = Chars.backslash_subst s lx.ppos in
        Buffer.add_string buf repl;
        lx.ppos <- j;
        go ()
      | '$' ->
        let name = scan_variable_name lx in
        flush ();
        parts := Q_var name :: !parts;
        go ()
      | '[' ->
        let script = scan_command lx in
        flush ();
        parts := Q_cmd script :: !parts;
        go ()
      | c ->
        Buffer.add_char buf c;
        lx.ppos <- lx.ppos + 1;
        go ()
  in
  go ()

let scan_braced lx =
  match Chars.find_matching_brace lx.psrc lx.ppos with
  | None -> error "missing close brace in expression"
  | Some j ->
    let content = String.sub lx.psrc (lx.ppos + 1) (j - lx.ppos - 1) in
    lx.ppos <- j + 1;
    content

(* Mirrors [read_number]. *)
let scan_number lx =
  let s = lx.psrc and n = String.length lx.psrc in
  let start = lx.ppos in
  let i = ref start in
  let is_num_char c =
    Chars.is_digit c || c = '.' || c = 'x' || c = 'X'
    || (c >= 'a' && c <= 'f')
    || (c >= 'A' && c <= 'F')
  in
  while !i < n && is_num_char s.[!i] do
    if (s.[!i] = 'e' || s.[!i] = 'E')
       && !i + 1 < n
       && (s.[!i + 1] = '+' || s.[!i + 1] = '-')
       && not (String.length s > start + 1 && (s.[start + 1] = 'x' || s.[start + 1] = 'X'))
    then i := !i + 2
    else incr i
  done;
  let text = String.sub s start (!i - start) in
  lx.ppos <- !i;
  match number_of_string text with
  | Some v -> v
  | None -> error "malformed number %S in expression" text

(* Mirrors [next_token] exactly, including its quirk of not consuming a
   non-whitespace backslash operand (the reference then reports "extra
   tokens at end of expression", and so must we). *)
let rec pnext_token lx =
  let s = lx.psrc and n = String.length lx.psrc in
  while lx.ppos < n && (Chars.is_space s.[lx.ppos] || s.[lx.ppos] = '\n') do
    lx.ppos <- lx.ppos + 1
  done;
  if lx.ppos >= n then lx.ptok <- P_end
  else
    let two op = lx.ppos <- lx.ppos + 2; lx.ptok <- P_op op in
    let one op = lx.ppos <- lx.ppos + 1; lx.ptok <- P_op op in
    let c = s.[lx.ppos] in
    let c2 = if lx.ppos + 1 < n then Some s.[lx.ppos + 1] else None in
    match (c, c2) with
    | '(', _ -> lx.ppos <- lx.ppos + 1; lx.ptok <- P_lparen
    | ')', _ -> lx.ppos <- lx.ppos + 1; lx.ptok <- P_rparen
    | ',', _ -> lx.ppos <- lx.ppos + 1; lx.ptok <- P_comma
    | '$', _ -> lx.ptok <- P_var (scan_variable_name lx)
    | '[', _ -> lx.ptok <- P_cmd (scan_command lx)
    | '"', _ -> lx.ptok <- P_quoted (scan_quoted lx)
    | '{', _ -> lx.ptok <- P_str (scan_braced lx)
    | '\\', _ ->
      let repl, j = Chars.backslash_subst s lx.ppos in
      if String.trim repl = "" then begin
        lx.ppos <- j;
        pnext_token lx
      end
      else lx.ptok <- P_str repl
    | '0' .. '9', _ -> lx.ptok <- P_num (scan_number lx)
    | '.', Some d when Chars.is_digit d -> lx.ptok <- P_num (scan_number lx)
    | '<', Some '<' -> two "<<"
    | '>', Some '>' -> two ">>"
    | '<', Some '=' -> two "<="
    | '>', Some '=' -> two ">="
    | '=', Some '=' -> two "=="
    | '!', Some '=' -> two "!="
    | '&', Some '&' -> two "&&"
    | '|', Some '|' -> two "||"
    | ('+' | '-' | '*' | '/' | '%' | '<' | '>' | '!' | '~' | '&' | '|' | '^' | '?' | ':'), _
      -> one (String.make 1 c)
    | ('a' .. 'z' | 'A' .. 'Z' | '_'), _ ->
      let i = ref lx.ppos in
      while !i < n && Chars.is_var_char s.[!i] do
        incr i
      done;
      let name = String.sub s lx.ppos (!i - lx.ppos) in
      lx.ppos <- !i;
      lx.ptok <- P_ident name
    | _ -> error "syntax error in expression near %C" c

let operand_value s =
  match number_of_string s with Some v -> v | None -> Str s

let rec p_ternary lx =
  let cond = p_binary lx 0 in
  match lx.ptok with
  | P_op "?" ->
    pnext_token lx;
    let t = p_ternary lx in
    (match lx.ptok with
    | P_op ":" ->
      pnext_token lx;
      let f = p_ternary lx in
      A_ternary (cond, t, f)
    | _ -> error "missing ':' in ternary expression")
  | _ -> cond

and p_binary lx min_level =
  let lhs = ref (p_unary lx) in
  let continue_ = ref true in
  while !continue_ do
    match lx.ptok with
    | P_op op -> (
      match binary_level op with
      | Some level when level >= min_level ->
        pnext_token lx;
        let rhs = p_binary lx (level + 1) in
        lhs := A_binop (op, !lhs, rhs)
      | _ -> continue_ := false)
    | _ -> continue_ := false
  done;
  !lhs

and p_unary lx =
  match lx.ptok with
  | P_op (("-" | "+" | "!" | "~") as op) ->
    pnext_token lx;
    A_unop (op, p_unary lx)
  | _ -> p_primary lx

and p_primary lx =
  match lx.ptok with
  | P_num v ->
    pnext_token lx;
    A_const v
  | P_str s ->
    pnext_token lx;
    A_const (operand_value s)
  | P_var name ->
    pnext_token lx;
    A_var name
  | P_cmd script ->
    pnext_token lx;
    A_cmd script
  | P_quoted parts ->
    pnext_token lx;
    (match parts with
    | [] -> A_const (operand_value "")
    | [ Q_lit s ] -> A_const (operand_value s)
    | _ -> A_quoted parts)
  | P_lparen ->
    pnext_token lx;
    let v = p_ternary lx in
    (match lx.ptok with
    | P_rparen ->
      pnext_token lx;
      v
    | _ -> error "missing close paren in expression")
  | P_ident name ->
    pnext_token lx;
    (match lx.ptok with
    | P_lparen ->
      pnext_token lx;
      A_func (name, p_args lx [])
    | _ -> (
      match String.lowercase_ascii name with
      | "true" | "yes" | "on" -> A_const (Int 1)
      | "false" | "no" | "off" -> A_const (Int 0)
      | _ -> error "unknown operand %S in expression" name))
  | P_op op -> error "unexpected operator %S in expression" op
  | P_comma -> error "unexpected ',' in expression"
  | P_rparen -> error "unexpected ')' in expression"
  | P_end -> error "premature end of expression"

and p_args lx acc =
  match lx.ptok with
  | P_rparen ->
    pnext_token lx;
    List.rev acc
  | _ ->
    let v = p_ternary lx in
    (match lx.ptok with
    | P_comma ->
      pnext_token lx;
      p_args lx (v :: acc)
    | P_rparen ->
      pnext_token lx;
      List.rev (v :: acc)
    | _ -> error "missing ')' in math function call")

let parse src =
  match
    let lx = { psrc = src; ppos = 0; ptok = P_end } in
    pnext_token lx;
    let a = p_ternary lx in
    match lx.ptok with
    | P_end -> a
    | _ -> error "extra tokens at end of expression %S" src
  with
  | a -> Stdlib.Ok a
  | exception Error msg -> Stdlib.Error msg

(* Evaluation order matches the interleaved evaluator: left to right in
   lexical order, with &&, || and ?: short-circuiting (the dead branch's
   substitutions never run, just as the reference suppresses them in skip
   mode). *)
let rec eval_ast env a =
  match a with
  | A_const v -> v
  | A_var name -> operand_value (env.get_var name)
  | A_cmd script -> operand_value (env.eval_cmd script)
  | A_quoted parts ->
    let buf = Buffer.create 16 in
    List.iter
      (function
        | Q_lit s -> Buffer.add_string buf s
        | Q_var name -> Buffer.add_string buf (env.get_var name)
        | Q_cmd script -> Buffer.add_string buf (env.eval_cmd script))
      parts;
    operand_value (Buffer.contents buf)
  | A_unop (op, x) -> apply_unary op (eval_ast env x)
  | A_binop ("&&", x, y) ->
    if truthy (eval_ast env x) then bool_val (truthy (eval_ast env y))
    else bool_val false
  | A_binop ("||", x, y) ->
    if truthy (eval_ast env x) then bool_val true
    else bool_val (truthy (eval_ast env y))
  | A_binop (op, x, y) ->
    let a = eval_ast env x in
    let b = eval_ast env y in
    apply_binary op a b
  | A_ternary (c, t, f) ->
    if truthy (eval_ast env c) then eval_ast env t else eval_ast env f
  | A_func (name, args) ->
    (* Arguments substitute in lexical order, like the reference. *)
    let vals =
      List.rev (List.fold_left (fun acc x -> eval_ast env x :: acc) [] args)
    in
    apply_function name vals
