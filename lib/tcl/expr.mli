(** Tcl arithmetic expressions, as used by the [expr] command and the
    conditions of [if], [while] and [for].

    The evaluator performs its own [$]-variable and [\[...\]]-command
    substitution (so braced conditions like [{$i < 10}] work), delegating to
    the callbacks in {!env}. Operands are integers, floats or strings, with
    Tcl's coercion rules: an operator computes numerically when both
    operands parse as numbers, and string comparison otherwise (ordering and
    (in)equality only). *)

type value = Int of int | Float of float | Str of string

type env = {
  get_var : string -> string;
      (** Resolve [$name] (or [$name(index)]); raise {!Error} if unset. *)
  eval_cmd : string -> string;
      (** Evaluate a bracketed command substitution; raise {!Error} on
          script error. *)
}

exception Error of string

val eval : env -> string -> value
(** Evaluate an expression. @raise Error on syntax or type errors. *)

val eval_string : env -> string -> string
(** {!eval} rendered back to Tcl's string form (integers without a decimal
    point, floats via [%g]-style formatting). *)

val eval_bool : env -> string -> bool
(** Evaluate as a condition: numeric values are tested against zero, and
    the words true/false/yes/no/on/off are accepted. @raise Error
    otherwise. *)

val to_string : value -> string

val truthy : value -> bool
(** Interpret a value as a condition (numbers against zero, the words
    true/false/yes/no/on/off). @raise Error otherwise. *)

val number_of_string : string -> value option
(** Parse a string as [Int] or [Float] if possible ([None] otherwise).
    Exposed for the [lsort -integer] style commands. *)

(** {2 Evaluation primitives}

    The building blocks {!eval_ast} is made of, exposed so the bytecode
    VM ({!Vm}) can evaluate its typed expression IR with exactly the
    same coercions, short-circuiting and error messages. *)

val operand_value : string -> value
(** A substituted operand: numeric if it parses as a number, else [Str]. *)

val bool_val : bool -> value
(** [Int 1] / [Int 0], the result form of comparisons and [&&]/[||]. *)

val apply_binary : string -> value -> value -> value
(** Apply a (non-short-circuit) binary operator. @raise Error on type
    errors, divide by zero, or unknown operators. *)

val apply_unary : string -> value -> value

val apply_function : string -> value list -> value
(** Apply a math function ([sin], [abs], [pow], ...) to its argument
    values. @raise Error on arity or type errors. *)

(** {2 Parsed-AST entry point}

    {!parse} tokenizes an expression once, without performing any
    substitution, so the result can be cached keyed by the source string
    and re-evaluated cheaply with {!eval_ast}. For any string [parse]
    accepts, [eval_ast] behaves byte-identically to {!eval}: same
    values, same errors, same substitution order and short-circuiting.
    When [parse] fails, fall back to {!eval} — the interleaved reference
    evaluator may run substitutions (with side effects) before reporting
    the same syntax error, and only it reproduces that faithfully. *)

type qpart = Q_lit of string | Q_var of string | Q_cmd of string

type ast =
  | A_const of value
  | A_var of string
  | A_cmd of string
  | A_quoted of qpart list
  | A_unop of string * ast
  | A_binop of string * ast * ast
  | A_ternary of ast * ast * ast
  | A_func of string * ast list

val parse : string -> (ast, string) result
(** Parse without evaluating. [Error msg] carries the syntax error the
    reference evaluator would (eventually) raise. *)

val eval_ast : env -> ast -> value
(** Evaluate a parsed expression. @raise Error on runtime type or
    substitution errors, exactly as {!eval} would. *)
