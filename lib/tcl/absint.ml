(* Abstract interpretation of Tcl expressions over a value-kind lattice.

   The static analyzer (Lint) walks compiled programs; wherever a
   braced condition or a literal [expr] argument appears, it parses the
   expression once (Expr.parse — the same parser the VM lowers through)
   and evaluates it abstractly here.  The domain is the value-kind
   lattice

       Vbot < Vconst s < {Vint, Vfloat, Vlist} < Vnum < Vtop

   (booleans are Tcl integers, so Vint covers them; strings that are
   none of the above go straight to Vtop).  A fully constant expression
   folds to its exact value via Expr's own apply functions, so any
   error raised — divide by zero, a float fed to an integer operator,
   a non-numeric operand — is *guaranteed* to occur at run time and
   carries the runtime's byte-identical message ({!Guaranteed}).
   Partial information still catches division/mod by a constant zero
   under an unknown dividend.

   Short-circuiting mirrors the runtime exactly: a branch the runtime
   would skip (the dead arm of [&&]/[||]/[?:] under a known condition)
   is not traversed at all, and a branch that only *may* run is
   evaluated protected — its failures are possibilities, not
   guarantees, so they are swallowed and its variable reads reported
   softly. *)

type v =
  | Vbot  (** no value seen yet (fixpoint seed) *)
  | Vconst of string  (** exact value known *)
  | Vint  (** always an integer (Tcl booleans included) *)
  | Vfloat  (** always a float *)
  | Vnum  (** integer or float, unknown which *)
  | Vlist  (** a well-formed list (two or more elements) *)
  | Vtop

exception Guaranteed of string
(** Evaluating the expression always fails at run time with this
    (runtime-identical) message. *)

(* Classify a constant by what the runtime would parse it as. *)
let widen = function
  | Vconst c -> (
    match Expr.number_of_string c with
    | Some (Expr.Int _) -> Vint
    | Some (Expr.Float _) -> Vfloat
    | Some (Expr.Str _) | None -> (
      match Tcl_list.parse c with
      | Ok l when List.length l >= 2 -> Vlist
      | _ -> Vtop))
  | v -> v

let join a b =
  if a = b then a
  else
    match (a, b) with
    | Vbot, x | x, Vbot -> x
    | _ -> (
      match (widen a, widen b) with
      | x, y when x = y -> x
      | (Vint | Vfloat | Vnum), (Vint | Vfloat | Vnum) -> Vnum
      | _ -> Vtop)

let truthy v =
  match v with
  | Vconst c -> (
    match Expr.truthy (Expr.operand_value c) with
    | b -> Some b
    | exception Expr.Error msg -> raise (Guaranteed msg))
  | _ -> None

(* Hooks back into the walker: variable kinds, use recording (soft in
   maybe-skipped branches), and nested [command] substitutions (walked
   by the caller; their value is unknowable). *)
type hooks = {
  lookup : string -> v;
  note_use : soft:bool -> string -> unit;
  eval_cmd : soft:bool -> string -> unit;
}

let is_zero c =
  match Expr.number_of_string c with
  | Some (Expr.Int 0) -> true
  | Some (Expr.Float f) -> f = 0.0
  | _ -> false

let apply_binary op a b =
  match Expr.apply_binary op a b with
  | value -> Vconst (Expr.to_string value)
  | exception Expr.Error msg -> raise (Guaranteed msg)

let int_kinded v = match widen v with Vint -> true | _ -> false

let float_kinded v = match widen v with Vfloat -> true | _ -> false

let numeric_kinded v =
  match widen v with Vint | Vfloat | Vnum -> true | _ -> false

(* Result kind of a binary operator over non-constant operands. *)
let binop_kind op a b =
  match op with
  | "<" | ">" | "<=" | ">=" | "==" | "!=" | "&&" | "||" -> Vint
  | "%" | "<<" | ">>" | "&" | "|" | "^" -> Vint
  | "+" | "-" | "*" | "/" ->
    if int_kinded a && int_kinded b then Vint
    else if
      (float_kinded a && numeric_kinded b)
      || (float_kinded b && numeric_kinded a)
    then Vfloat
    else Vnum
  | _ -> Vtop

let func_kind = function
  | "int" | "round" -> Vint
  | "double" | "sin" | "cos" | "tan" | "asin" | "acos" | "atan" | "atan2"
  | "sqrt" | "exp" | "log" | "log10" | "pow" | "sinh" | "cosh" | "tanh"
  | "floor" | "ceil" | "fmod" | "hypot" ->
    Vfloat
  | "abs" -> Vnum
  | _ -> Vtop

let rec eval hooks ~soft (a : Expr.ast) =
  match a with
  | Expr.A_const value -> Vconst (Expr.to_string value)
  | Expr.A_var name ->
    hooks.note_use ~soft name;
    hooks.lookup name
  | Expr.A_cmd script ->
    hooks.eval_cmd ~soft script;
    Vtop
  | Expr.A_quoted parts ->
    let all_lit =
      List.for_all (function Expr.Q_lit _ -> true | _ -> false) parts
    in
    if all_lit then
      Vconst
        (String.concat ""
           (List.map (function Expr.Q_lit s -> s | _ -> "") parts))
    else begin
      List.iter
        (function
          | Expr.Q_lit _ -> ()
          | Expr.Q_var n -> hooks.note_use ~soft n
          | Expr.Q_cmd s -> hooks.eval_cmd ~soft s)
        parts;
      Vtop
    end
  | Expr.A_unop (op, x) -> (
    match eval hooks ~soft x with
    | Vconst c -> (
      match Expr.apply_unary op (Expr.operand_value c) with
      | value -> Vconst (Expr.to_string value)
      | exception Expr.Error msg -> raise (Guaranteed msg))
    | Vbot -> Vbot
    | vx -> (
      match op with
      | "!" | "~" -> Vint
      | "-" | "+" -> if numeric_kinded vx then widen vx else Vnum
      | _ -> Vtop))
  | Expr.A_binop (("&&" | "||") as op, x, y) -> (
    let vx = eval hooks ~soft x in
    match truthy vx with
    | Some b ->
      let decided = if op = "&&" then not b else b in
      if decided then Vconst (if op = "&&" then "0" else "1")
        (* the other operand is skipped entirely, like the runtime *)
      else begin
        match truthy (eval hooks ~soft y) with
        | Some byv -> Vconst (if byv then "1" else "0")
        | None -> Vint
        | exception Guaranteed msg -> raise (Guaranteed msg)
      end
    | None ->
      (* Either operand may decide; the right side only *may* run. *)
      ignore (protect hooks y);
      Vint)
  | Expr.A_binop (op, x, y) -> (
    let vx = eval hooks ~soft x in
    let vy = eval hooks ~soft y in
    match (vx, vy) with
    | Vconst a, Vconst b ->
      apply_binary op (Expr.operand_value a) (Expr.operand_value b)
    | Vbot, _ | _, Vbot -> Vbot
    | _, Vconst b when (op = "/" || op = "%") && is_zero b ->
      raise (Guaranteed "divide by zero")
    | _ -> binop_kind op vx vy)
  | Expr.A_ternary (c, x, y) -> (
    match truthy (eval hooks ~soft c) with
    | Some true -> eval hooks ~soft x
    | Some false -> eval hooks ~soft y
    | None ->
      let vx = protect hooks x in
      let vy = protect hooks y in
      join vx vy)
  | Expr.A_func (name, args) -> (
    let vs = List.map (eval hooks ~soft) args in
    let consts =
      List.filter_map (function Vconst c -> Some c | _ -> None) vs
    in
    if List.length consts = List.length vs then
      match
        Expr.apply_function name (List.map Expr.operand_value consts)
      with
      | value -> Vconst (Expr.to_string value)
      | exception Expr.Error msg -> raise (Guaranteed msg)
    else if List.mem Vbot vs then Vbot
    else func_kind name)

(* A subexpression that only may run: failures are possibilities (not
   guarantees) and reads are soft. *)
and protect hooks x =
  match eval hooks ~soft:true x with
  | v -> v
  | exception Guaranteed _ -> Vtop

(* ------------------------------------------------------------------ *)
(* Entry points for the walker *)

let eval_ast hooks ast = eval hooks ~soft:false ast

let quiet_hooks lookup =
  { lookup; note_use = (fun ~soft:_ _ -> ()); eval_cmd = (fun ~soft:_ _ -> ()) }

let eval_quiet lookup ast =
  match eval (quiet_hooks lookup) ~soft:false ast with
  | v -> v
  | exception Guaranteed _ -> Vtop

let vm_kind v =
  match v with
  | Vconst _ | Vint | Vfloat | Vlist -> (
    match widen v with
    | Vint -> Some Vm.Kint
    | Vfloat -> Some Vm.Kfloat
    | Vlist -> Some Vm.Klist
    | _ -> None)
  | _ -> None

let to_string = function
  | Vbot -> "bot"
  | Vconst c -> Printf.sprintf "const %S" c
  | Vint -> "int"
  | Vfloat -> "float"
  | Vnum -> "number"
  | Vlist -> "list"
  | Vtop -> "top"
