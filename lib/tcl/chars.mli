(** Character classification and backslash processing shared by the Tcl
    parser, the expression evaluator and the list parser. *)

val is_space : char -> bool
(** Horizontal whitespace (space, tab, CR, FF, VT) — separates words. *)

val is_command_end : char -> bool
(** Newline or semicolon — terminates a command outside braces/quotes. *)

val is_var_char : char -> bool
(** Characters allowed in a variable name after [$]: letters, digits, [_]. *)

val is_digit : char -> bool

val backslash_subst : string -> int -> string * int
(** [backslash_subst s i] interprets the backslash sequence starting at the
    backslash [s.[i]]. Returns the replacement text and the index of the
    first character after the sequence. Handles the standard Tcl escapes
    ([\n], [\t], [\r], [\b], [\f], [\v], [\e]), backslash-newline (which
    becomes a single space, also consuming leading whitespace of the next
    line), [\xHH] hexadecimal and [\ooo] octal escapes; any other character
    is passed through unchanged. *)

val skip_separators : string -> int -> int -> int
(** [skip_separators src n pos] skips whitespace, newlines and semicolons —
    everything that may separate two commands in a script. *)

val skip_comment : string -> int -> int -> int
(** [skip_comment src n pos] with [src.[pos] = '#'] skips to just past the
    first unescaped newline (or to [n]). *)

val braced_content : string -> int -> int -> string
(** [braced_content src open_idx close_idx] is the literal content of a
    braced word, with backslash-newline collapsed to a space as in Tcl. *)

val word_end_ok : string -> int -> int -> bracket:bool -> bool
(** Whether position [pos] may legally follow a braced or quoted word:
    end of script, whitespace, newline, semicolon — or [']'] when parsing
    inside a command substitution. *)

val find_matching_brace : string -> int -> int option
(** [find_matching_brace s i] with [s.[i] = '{'] returns the index of the
    matching ['}'], honouring nested braces and backslash escapes. *)
