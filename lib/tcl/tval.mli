(** Dual-ported Tcl values (Tcl 8.0 "shimmering").

    A value carries its canonical string representation plus cached
    numeric and parsed-list representations, computed lazily on first
    read and invalidated by any write.  The bytecode VM stores these in
    variable cells so hot loops ([incr i], [expr {$i < $n}]) never
    re-parse — and never even render — the string rep. *)

type num = Nnone | Nmaybe | Nint of int | Ndbl of float

type t = {
  mutable s : string option;
  mutable n : num;
  mutable l : string list option;
}

val of_string : string -> t
val of_int : int -> t
val of_float : float -> t

val copy : t -> t
(** Fresh cell with the same (immutable) reps: value-semantics binding
    of an existing value into a mutable variable cell. *)

val to_string : t -> string
(** The canonical string rep, rendered and cached on first use. *)

val num : t -> num
(** The numeric rep; parses and caches on first use. Never [Nmaybe]. *)

val list : t -> (string list, string) result
(** The parsed-list rep; parses and caches on first use. *)

val set_string : t -> string -> unit
val set_int : t -> int -> unit
val set_float : t -> float -> unit

val float_to_string : float -> string
(** Tcl's float formatting: %.12g with a %.17g round-trip fallback, and
    integer-valued floats rendered with a trailing ".0". *)

val parse_num : string -> num
(** Parse a string as a number the way [expr] operands do (trim, int
    first, then float). Never returns [Nmaybe]. *)
