(** Abstract interpretation of Tcl expressions over a value-kind
    lattice, used by the whole-program analysis tier ({!Lint}).

    The domain is [Vbot < Vconst < {Vint, Vfloat, Vlist} < Vnum < Vtop]
    (Tcl booleans are integers, so [Vint] covers them; anything else is
    [Vtop]).  A fully constant expression folds to its exact value
    through {!Expr}'s own apply functions, so a raised {!Guaranteed}
    carries the byte-identical message the runtime would produce
    (divide by zero, float into an integer operator, non-numeric
    operand, non-boolean condition).  Short-circuiting mirrors the
    runtime: operands the runtime would skip are not traversed, and
    operands that only {e may} run are evaluated protected (failures
    swallowed, reads reported softly). *)

type v = Vbot | Vconst of string | Vint | Vfloat | Vnum | Vlist | Vtop

exception Guaranteed of string
(** The expression always fails at run time with this message. *)

val widen : v -> v
(** Drop constancy, keeping the kind ([Vconst "7"] → [Vint]). *)

val join : v -> v -> v
(** Least upper bound. *)

val truthy : v -> bool option
(** The boolean a condition of this kind always takes, if known.
    @raise Guaranteed when a constant is not a valid condition. *)

(** Callbacks into the walker: variable kinds, use recording ([soft]
    inside maybe-skipped branches), nested [\[command\]] substitutions
    (the walker lints their script; the value is unknowable). *)
type hooks = {
  lookup : string -> v;
  note_use : soft:bool -> string -> unit;
  eval_cmd : soft:bool -> string -> unit;
}

val eval_ast : hooks -> Expr.ast -> v
(** Abstractly evaluate a parsed expression.
    @raise Guaranteed on a proven runtime failure. *)

val eval_quiet : (string -> v) -> Expr.ast -> v
(** {!eval_ast} with silent hooks and failures widened to [Vtop] — the
    form the interprocedural kind fixpoint uses. *)

val vm_kind : v -> Vm.kind option
(** The {!Vm.kind} seed fact this value proves, if any. *)

val to_string : v -> string
