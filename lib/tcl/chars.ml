let is_space c =
  match c with ' ' | '\t' | '\r' | '\012' | '\011' -> true | _ -> false

let is_command_end c = c = '\n' || c = ';'

let is_var_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
  | _ -> false

let is_digit c = c >= '0' && c <= '9'

let is_octal c = c >= '0' && c <= '7'

let hex_value c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

(* [i] points at the backslash itself. *)
let backslash_subst s i =
  let n = String.length s in
  if i + 1 >= n then ("\\", i + 1)
  else
    match s.[i + 1] with
    | 'n' -> ("\n", i + 2)
    | 't' -> ("\t", i + 2)
    | 'r' -> ("\r", i + 2)
    | 'b' -> ("\b", i + 2)
    | 'f' -> ("\012", i + 2)
    | 'v' -> ("\011", i + 2)
    | 'e' -> ("\027", i + 2)
    | '\n' ->
      (* Backslash-newline: collapse, with following whitespace, to one
         space. *)
      let j = ref (i + 2) in
      while !j < n && (s.[!j] = ' ' || s.[!j] = '\t') do
        incr j
      done;
      (" ", !j)
    | 'x' ->
      let rec hex j acc any =
        if j < n then
          match hex_value s.[j] with
          | Some v -> hex (j + 1) (((acc * 16) + v) land 0xff) true
          | None -> (j, acc, any)
        else (j, acc, any)
      in
      let j, v, any = hex (i + 2) 0 false in
      if any then (String.make 1 (Char.chr v), j) else ("x", i + 2)
    | '0' .. '7' ->
      let rec octal j acc count =
        if j < n && count < 3 && is_octal s.[j] then
          octal (j + 1) ((acc * 8) + (Char.code s.[j] - Char.code '0'))
            (count + 1)
        else (j, acc)
      in
      let j, v = octal (i + 1) 0 0 in
      (String.make 1 (Char.chr (v land 0xff)), j)
    | c -> (String.make 1 c, i + 2)

(* Script-level separators: whitespace plus the command terminators. *)
let rec skip_separators src n pos =
  if pos < n && (is_space src.[pos] || src.[pos] = '\n' || src.[pos] = ';')
  then skip_separators src n (pos + 1)
  else pos

(* [pos] points at '#': skip to an unescaped newline. *)
let skip_comment src n pos =
  let rec go i =
    if i >= n then i
    else
      match src.[i] with
      | '\\' -> go (i + 2)
      | '\n' -> i + 1
      | _ -> go (i + 1)
  in
  go pos

(* Content of a braced word: taken literally except that backslash-newline
   is still replaced by a space (as in Tcl). *)
let braced_content src open_idx close_idx =
  let raw = String.sub src (open_idx + 1) (close_idx - open_idx - 1) in
  if not (String.length raw > 0 && String.contains raw '\\') then raw
  else begin
    let buf = Buffer.create (String.length raw) in
    let n = String.length raw in
    let i = ref 0 in
    while !i < n do
      if raw.[!i] = '\\' && !i + 1 < n && raw.[!i + 1] = '\n' then begin
        let repl, j = backslash_subst raw !i in
        Buffer.add_string buf repl;
        i := j
      end
      else begin
        Buffer.add_char buf raw.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  end

(* After a braced or quoted word, the next character must end the word.
   ']' only terminates inside a command substitution. *)
let word_end_ok src n pos ~bracket =
  pos >= n
  || is_space src.[pos]
  || src.[pos] = '\n'
  || src.[pos] = ';'
  || (bracket && src.[pos] = ']')

let find_matching_brace s i =
  let n = String.length s in
  let rec scan j depth =
    if j >= n then None
    else
      match s.[j] with
      | '\\' -> scan (j + 2) depth
      | '{' -> scan (j + 1) (depth + 1)
      | '}' -> if depth = 1 then Some j else scan (j + 1) (depth - 1)
      | _ -> scan (j + 1) depth
  in
  assert (i < n && s.[i] = '{');
  scan i 0
