(** Whole-program call graph over compiled Tcl scripts, fed by the
    {!Lint} walker and consumed by its interprocedural passes.

    Nodes are the shared top level ({!Nroot} — every file, binding and
    [after] script) and each procedure defined anywhere in the program.
    {e Call} edges are literal command-position invocations tagged
    conditional or not; {e mention} edges are every token of every
    literal word in a node — the maximally conservative account of
    callback references, so reachability errs toward "reachable" and
    unreachable-procedure reports stay free of false positives. *)

type node = Nroot | Nproc of string

type call = {
  c_from : node;
  c_callee : string;
  c_file : string option;
  c_off : int;  (** call-site offset within its file *)
  c_cond : bool;  (** nested under any conditional construct *)
}

type t

val create : unit -> t
val add_def : t -> string -> file:string option -> off:int -> unit
val def_site : t -> string -> (string option * int) option

val add_call :
  t ->
  from:node ->
  callee:string ->
  file:string option ->
  off:int ->
  cond:bool ->
  unit

val add_mention : t -> node -> string -> unit
(** Record one literal token seen inside [node]. *)

val tokens_of_literal : string -> (string -> unit) -> unit
(** Split a literal word on whitespace, separators and grouping
    characters, feeding each token to the callback. *)

val edge_count : t -> int
val proc_count : t -> int

val reachable : t -> (string, unit) Hashtbl.t
(** Procedures reachable from {!Nroot} via call or mention edges. *)

val unreachable : t -> (string * string option * int) list
(** Procedures never referenced from live code: name, defining file,
    definition offset. *)

val infinite_recursion : t -> (string * call) list
(** Procedures on a cycle of unconditional calls (guaranteed to
    overflow the recursion limit when called), each with the witness
    call edge that leads back around the cycle. *)
