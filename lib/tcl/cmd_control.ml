open Interp

exception Exit_program of int

(* ------------------------------------------------------------------ *)
(* Variables *)

let cmd_set t = function
  | [ _; name ] -> get_var_exn t name
  | [ _; name; value ] ->
    set_var t name value;
    value
  | _ -> wrong_args "set varName ?newValue?"

let cmd_unset t = function
  | _ :: (_ :: _ as names) ->
    List.iter
      (fun name ->
        if not (unset_var t name) then
          failf "can't unset \"%s\": no such variable" name)
      names;
    ""
  | _ -> wrong_args "unset varName ?varName ...?"

let parse_int what s =
  match int_of_string_opt (String.trim s) with
  | Some i -> i
  | None -> failf "expected integer but got \"%s\"%s" s what

let cmd_incr t = function
  | [ _; name ] | [ _; name; _ ] as words ->
    let amount =
      match words with
      | [ _; _; by ] -> parse_int " (reading increment)" by
      | _ -> 1
    in
    let current =
      parse_int
        (Printf.sprintf " (reading value of variable \"%s\" to increment)"
           name)
        (get_var_exn t name)
    in
    let v = string_of_int (current + amount) in
    set_var t name v;
    v
  | _ -> wrong_args "incr varName ?increment?"

let cmd_append t = function
  | _ :: name :: values ->
    let current = Option.value (get_var t name) ~default:"" in
    let v = current ^ String.concat "" values in
    set_var t name v;
    v
  | _ -> wrong_args "append varName ?value value ...?"

let cmd_global t = function
  | _ :: (_ :: _ as names) ->
    List.iter
      (fun name -> link_var t ~target_level:0 ~target:name ~local:name)
      names;
    ""
  | _ -> wrong_args "global varName ?varName ...?"

(* upvar ?level? otherVar myVar ?otherVar myVar ...? *)
let cmd_upvar t words =
  let level_spec, pairs =
    match words with
    | _ :: first :: rest when parse_level t first <> None && List.length rest >= 2 ->
      (first, rest)
    | _ :: rest -> ("1", rest)
    | [] -> wrong_args "upvar ?level? otherVar localVar ?otherVar localVar ...?"
  in
  match parse_level t level_spec with
  | None -> failf "bad level \"%s\"" level_spec
  | Some level ->
    let rec bind = function
      | [] -> ""
      | other :: local :: rest ->
        link_var t ~target_level:level ~target:other ~local;
        bind rest
      | [ _ ] ->
        wrong_args "upvar ?level? otherVar localVar ?otherVar localVar ...?"
    in
    bind pairs

let cmd_uplevel t words =
  let run level args =
    let script = String.concat " " args in
    with_level t level (fun () -> eval t script)
  in
  match words with
  | _ :: first :: (_ :: _ as rest) -> (
    match parse_level t first with
    | Some level -> run level rest
    | None -> run (max 0 (current_level t - 1)) (first :: rest))
  | [ _; script ] -> run (max 0 (current_level t - 1)) [ script ]
  | _ -> wrong_args "uplevel ?level? command ?arg ...?"

(* ------------------------------------------------------------------ *)
(* Procedures *)

let cmd_proc t = function
  | [ _; name; formals; body ] ->
    let parse_formal f =
      match Tcl_list.parse f with
      | Stdlib.Ok [ name ] -> (name, None)
      | Stdlib.Ok [ name; default ] -> (name, Some default)
      | Stdlib.Ok _ | Stdlib.Error _ ->
        failf "procedure \"%s\" has argument with bad format \"%s\"" name f
    in
    (match Tcl_list.parse formals with
    | Stdlib.Error msg -> failf "%s" msg
    | Stdlib.Ok fs ->
      define_proc t name (List.map parse_formal fs) body;
      "")
  | _ -> wrong_args "proc name args body"

let cmd_return _t = function
  | [ _ ] -> (Tcl_return, "")
  | [ _; value ] -> (Tcl_return, value)
  | _ -> wrong_args "return ?value?"

let cmd_break _t = function
  | [ _ ] -> (Tcl_break, "")
  | _ -> wrong_args "break"

let cmd_continue _t = function
  | [ _ ] -> (Tcl_continue, "")
  | _ -> wrong_args "continue"

(* ------------------------------------------------------------------ *)
(* Control flow *)

(* if expr ?then? body ?elseif expr ?then? body ...? ??else? body? *)
let cmd_if t words =
  let rec clause = function
    | cond :: rest -> (
      let rest = match rest with "then" :: r -> r | r -> r in
      match rest with
      | body :: rest ->
        if eval_expr_bool t cond then eval t body
        else tail rest
      | [] -> wrong_args "if condition ?then? body ?else body?")
    | [] -> wrong_args "if condition ?then? body ?else body?"
  and tail = function
    | [] -> ok ""
    | "elseif" :: rest -> clause rest
    | "else" :: [ body ] -> eval t body
    | [ body ] -> eval t body (* old-style implicit else *)
    | _ -> failf "wrong # args: extra words after \"else\" clause in \"if\""
  in
  clause (List.tl words)

let run_loop_body t body =
  (* Returns [`Proceed] to continue looping, or a final result. *)
  match eval t body with
  | Tcl_ok, _ | Tcl_continue, _ -> `Proceed
  | Tcl_break, _ -> `Stop (ok "")
  | (Tcl_error, msg) -> `Stop (Tcl_error, msg)
  | (Tcl_return, _) as r -> `Stop r

let cmd_while t = function
  | [ _; cond; body ] ->
    let rec loop () =
      if eval_expr_bool t cond then
        match run_loop_body t body with
        | `Proceed -> loop ()
        | `Stop r -> r
      else ok ""
    in
    loop ()
  | _ -> wrong_args "while test command"

let cmd_for t = function
  | [ _; init; cond; next; body ] -> (
    match eval t init with
    | (Tcl_error, _) as e -> e
    | _ ->
      let rec loop () =
        if eval_expr_bool t cond then
          match run_loop_body t body with
          | `Stop r -> r
          | `Proceed -> (
            match eval t next with
            | (Tcl_error, _) as e -> e
            | _ -> loop ())
        else ok ""
      in
      loop ())
  | _ -> wrong_args "for start test next command"

let cmd_foreach t = function
  | [ _; var; list; body ] -> (
    match Tcl_list.parse list with
    | Stdlib.Error msg -> (Tcl_error, msg)
    | Stdlib.Ok elements ->
      let rec loop = function
        | [] -> ok ""
        | e :: rest -> (
          set_var t var e;
          match run_loop_body t body with
          | `Proceed -> loop rest
          | `Stop r -> r)
      in
      loop elements)
  | _ -> wrong_args "foreach varName list command"

(* ------------------------------------------------------------------ *)
(* Evaluation *)

let cmd_eval t = function
  | _ :: (_ :: _ as args) -> eval t (String.concat " " args)
  | _ -> wrong_args "eval arg ?arg ...?"

let status_code = function
  | Tcl_ok -> 0
  | Tcl_error -> 1
  | Tcl_return -> 2
  | Tcl_break -> 3
  | Tcl_continue -> 4

let cmd_catch t = function
  | [ _; body ] ->
    let status, v = eval t body in
    (* Limit trips and unwinding cancels must not be swallowed: they
       propagate through catch so runaway scripts cannot shield
       themselves from their own resource limits. *)
    if unwinding t then (status, v)
    else begin
      mark_error_handled t;
      ok (string_of_int (status_code status))
    end
  | [ _; body; var ] ->
    let status, v = eval t body in
    if unwinding t then (status, v)
    else begin
      mark_error_handled t;
      set_var t var v;
      ok (string_of_int (status_code status))
    end
  | _ -> wrong_args "catch command ?varName?"

let cmd_error _t = function
  | [ _; msg ] | [ _; msg; _ ] | [ _; msg; _; _ ] -> (Tcl_error, msg)
  | _ -> wrong_args "error message ?errorInfo? ?errorCode?"

let cmd_expr t = function
  | _ :: (_ :: _ as args) ->
    eval_expr_string t (String.concat " " args)
  | _ -> wrong_args "expr arg ?arg ...?"

let cmd_source t = function
  | [ _; path ] -> (
    match In_channel.with_open_text path In_channel.input_all with
    | contents -> eval t contents
    | exception Sys_error msg ->
      (Tcl_error, Printf.sprintf "couldn't read file \"%s\": %s" path msg))
  | _ -> wrong_args "source fileName"

let cmd_time t = function
  | [ _; body ] | [ _; body; _ ] as words ->
    let count =
      match words with
      | [ _; _; c ] -> parse_int " (reading iteration count)" c
      | _ -> 1
    in
    if count <= 0 then failf "count must be positive"
    else begin
      (* The clock is pluggable so [time] agrees with [after] when the
         toolkit drives a virtual clock. *)
      let start = current_time t in
      let abnormal = ref None in
      (try
         for _ = 1 to count do
           match eval t body with
           | Tcl_ok, _ -> ()
           | r ->
             (* Any abnormal completion — error, break, continue or
                return — stops the loop and propagates, as in Tcl. *)
             abnormal := Some r;
             raise Stdlib.Exit
         done
       with Stdlib.Exit -> ());
      match !abnormal with
      | Some r -> r
      | None ->
        let elapsed = current_time t -. start in
        let micros = elapsed *. 1e6 /. float_of_int count in
        ok (Printf.sprintf "%.0f microseconds per iteration" micros)
    end
  | _ -> wrong_args "time command ?count?"

let cmd_rename t = function
  | [ _; old_name; new_name ] -> (
    match rename_command t old_name new_name with
    | Stdlib.Ok () -> ok ""
    | Stdlib.Error msg -> (Tcl_error, msg))
  | _ -> wrong_args "rename oldName newName"

(* ------------------------------------------------------------------ *)
(* Output and process control *)

let cmd_print t = function
  | _ :: (_ :: _ as args) ->
    output t (String.concat " " args);
    ""
  | _ -> wrong_args "print string ?string ...?"

let cmd_puts t = function
  | [ _; s ] ->
    output t (s ^ "\n");
    ""
  | [ _; "-nonewline"; s ] ->
    output t s;
    ""
  | _ -> wrong_args "puts ?-nonewline? string"

let cmd_exit _t = function
  | [ _ ] -> raise (Exit_program 0)
  | [ _; code ] ->
    raise (Exit_program (parse_int " (reading exit return code)" code))
  | _ -> wrong_args "exit ?returnCode?"

let install t =
  register_value t "set" cmd_set;
  register_value t "unset" cmd_unset;
  register_value t "incr" cmd_incr;
  register_value t "append" cmd_append;
  register_value t "global" cmd_global;
  register_value t "upvar" cmd_upvar;
  register t "uplevel" cmd_uplevel;
  register_value t "proc" cmd_proc;
  register t "return" cmd_return;
  register t "break" cmd_break;
  register t "continue" cmd_continue;
  register t "if" cmd_if;
  register t "while" cmd_while;
  register t "for" cmd_for;
  register t "foreach" cmd_foreach;
  register t "eval" cmd_eval;
  register t "catch" cmd_catch;
  register t "error" cmd_error;
  register_value t "expr" cmd_expr;
  register t "source" cmd_source;
  register t "time" cmd_time;
  register t "rename" cmd_rename;
  register_value t "print" cmd_print;
  register_value t "puts" cmd_puts;
  register_value t "exit" cmd_exit;
  (* Signatures for the static checker: the usage strings are the same
     ones the wrong_args calls above raise, the arity bounds the same
     ones the pattern matches accept.  [scripts] marks argument
     positions holding scripts so the checker descends into them (the
     control commands additionally get structural handling in Lint). *)
  List.iter (register_signature t)
    [
      signature "set" 1 ~max:2 ~usage:"set varName ?newValue?";
      signature "unset" 1 ~usage:"unset varName ?varName ...?";
      signature "incr" 1 ~max:2 ~usage:"incr varName ?increment?";
      signature "append" 1 ~usage:"append varName ?value value ...?";
      signature "global" 1 ~usage:"global varName ?varName ...?";
      signature "upvar" 2
        ~usage:"upvar ?level? otherVar localVar ?otherVar localVar ...?";
      signature "uplevel" 1 ~usage:"uplevel ?level? command ?arg ...?";
      signature "proc" 3 ~max:3 ~scripts:[ 3 ] ~usage:"proc name args body";
      signature "return" 0 ~max:1 ~usage:"return ?value?";
      signature "break" 0 ~max:0 ~usage:"break";
      signature "continue" 0 ~max:0 ~usage:"continue";
      signature "if" 2 ~usage:"if condition ?then? body ?else body?";
      signature "while" 2 ~max:2 ~scripts:[ 2 ] ~usage:"while test command";
      signature "for" 4 ~max:4 ~scripts:[ 1; 3; 4 ]
        ~usage:"for start test next command";
      signature "foreach" 3 ~max:3 ~scripts:[ 3 ]
        ~usage:"foreach varName list command";
      signature "eval" 1 ~scripts:[ 1 ] ~usage:"eval arg ?arg ...?";
      signature "catch" 1 ~max:2 ~scripts:[ 1 ]
        ~usage:"catch command ?varName?";
      signature "error" 1 ~max:3 ~usage:"error message ?errorInfo? ?errorCode?";
      signature "expr" 1 ~usage:"expr arg ?arg ...?";
      signature "source" 1 ~max:1 ~usage:"source fileName";
      signature "time" 1 ~max:2 ~scripts:[ 1 ] ~usage:"time command ?count?";
      signature "rename" 2 ~max:2 ~usage:"rename oldName newName";
      signature "print" 1 ~usage:"print string ?string ...?";
      signature "exit" 0 ~max:1 ~usage:"exit ?returnCode?";
    ]
