(** Parse-once compilation of Tcl scripts.

    {!compile} tokenizes a script string exactly once into a program the
    interpreter can execute repeatedly without re-scanning the text: a
    sequence of commands, each a list of word templates (static text,
    variable references, and nested command substitutions as compiled
    sub-programs).

    Compilation is purely syntactic: it reads no variables, runs no
    commands, and consults no command table, so a compiled program never
    goes stale and may be cached keyed by the script string alone.
    Executing it (see [Interp]) is byte-identical to the reference
    character-at-a-time evaluator — including error messages, errorInfo
    traces, and the order of substitution side effects.  In particular a
    syntax error does not fail compilation: the reference evaluator only
    reports it when execution reaches it, so it is embedded as a
    {!word.W_fail} marker that replays the preceding substitutions and
    then raises the parser's message. *)

type part =
  | Lit of string  (** static text, backslash sequences already applied *)
  | Var of string  (** [$name] / [${name}] *)
  | Var_idx of string * part list
      (** [$base(index)] with a substituted index *)
  | Cmd of program  (** [\[script\]] command substitution *)

and word =
  | W_lit of string  (** fully static word *)
  | W_parts of part list
  | W_fail of part list * string
      (** run the parts for their side effects, then fail *)

and command = {
  words : word list;
  text : string;  (** exact source text, quoted by the errorInfo trace *)
  pos : int;  (** offset of the command's first word within the source *)
  wpos : int list;  (** offset of each word's start, parallel to [words] *)
}

and program = command list

val compile : string -> program
(** Compile a whole script. Never raises: structural errors are embedded
    as [W_fail] words at the position execution would discover them. *)

val program_commands : program -> int
(** Total number of compiled commands, including nested substitution
    programs (a cheap size gauge for cache diagnostics). *)
