(** Installation of the complete built-in command set (Figure 6's
    "Tcl library" box): control flow, variables, procedures, lists,
    strings, introspection, filesystem commands, and the [interp]
    slave-interpreter machinery. *)

val install : Interp.t -> unit
(** Register every built-in command in an interpreter. *)

val new_interp : unit -> Interp.t
(** [create] + [install]: a ready-to-use Tcl interpreter. *)

val create_slave :
  master:Interp.t -> safe:bool -> string -> (Interp.t, string) result
(** {!Interp_cmd.create_slave} with {!new_interp} as the constructor:
    a fully-equipped slave of [master], hidden-down when [safe]. *)
