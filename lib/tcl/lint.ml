(* Static analysis of Tcl/Tk scripts over the Compile representation.

   The toolkit's scripts are checked the way Xt applications are checked
   by the C compiler: before anything runs.  [analyze_program] compiles
   every file (directly, bypassing the interpreter's caches — linting
   must not disturb interpreter state) and walks the compiled programs
   with the command signature registry (Interp.signature) in hand.
   Passes, each labelled in the diagnostic it emits:

   - "unknown": unknown command / misspelled subcommand / bad -option,
     with "did you mean" suggestions; suppressed when the script defines
     a proc of that name anywhere, or a user [unknown] handler is
     visible (then every unresolved name may be handled at run time);
   - "arity": against the registry's usage strings, so lint prints
     exactly the "wrong # args: should be ..." message the runtime
     would, and against script-defined proc formals;
   - "dataflow": per-proc def/use (honoring global/upvar/foreach/catch
     writes) flagging variables that may be read before being set —
     including interprocedurally, through literal-upvar summaries of
     called procedures;
   - "deadcode": code after an unconditional return/break/continue/
     error/exit, after a constant-true [while]/[for], and skipped
     constant-false branches;
   - "absint": abstract interpretation of constant expressions over the
     value-kind lattice (Absint) — guaranteed [expr] failures with the
     runtime's byte-identical message, [incr] of a variable whose value
     is a known non-integer constant, constant out-of-range [lindex];
   - "callgraph": whole-program reachability (procedures defined but
     never referenced from live code) and cycles of unconditional calls
     (guaranteed infinite recursion);
   - "capability": with [safe], every reachable invocation of a command
     the -safe interpreter profile hides (Interp_cmd.unsafe_commands),
     whether direct or through an [interp alias];
   - "check"/"widget"/"options": per-argument literal validators
     (binding event patterns), widget path shape and option tables.

   The analysis is deliberately conservative: a dynamic word (one with
   $-substitution or [command] substitution in it) defeats any check
   that would need its value, a braced word is only descended into as a
   script where the signature (or the structure of a control command)
   says a script belongs, and the call graph errs toward "reachable"
   (every literal token anywhere in a node counts as a mention).  The
   goal is zero false positives on working scripts; soundness bugs err
   toward silence.

   As a by-product the walker's value-kind facts feed the bytecode VM:
   formal parameters proven to always receive an integer, float or list
   become {!Vm.kind} seeds ([outcome.o_facts]) the executor uses to
   prime bound arguments' dual-ported reps (always semantically safe —
   priming only parses earlier). *)

type severity = Error | Warning

type diag = {
  line : int;  (* 1-based *)
  col : int;  (* 1-based *)
  severity : severity;
  pass : string;  (* which analysis produced it, e.g. "arity" *)
  message : string;
}

let severity_name = function Error -> "error" | Warning -> "warning"

let format_diag ?file d =
  let prefix = match file with Some f -> f ^ ":" | None -> "" in
  Printf.sprintf "%s%d:%d: %s: %s" prefix d.line d.col
    (severity_name d.severity) d.message

(* ------------------------------------------------------------------ *)
(* Script completeness: braces, brackets and quotes balance.  Shared by
   [info complete] and wish's interactive continuation prompt. *)

let complete script =
  let n = String.length script in
  let rec scan i depth in_quote =
    if i >= n then depth <= 0 && not in_quote
    else
      match script.[i] with
      | '\\' -> scan (i + 2) depth in_quote
      | '"' -> scan (i + 1) depth (not in_quote)
      | ('{' | '[') when not in_quote -> scan (i + 1) (depth + 1) in_quote
      | ('}' | ']') when not in_quote -> scan (i + 1) (depth - 1) in_quote
      | _ -> scan (i + 1) depth in_quote
  in
  scan 0 0 false

(* ------------------------------------------------------------------ *)
(* Small helpers *)

let levenshtein a b =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) (fun j -> j) in
  let cur = Array.make (lb + 1) 0 in
  for i = 1 to la do
    cur.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      cur.(j) <- min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit cur 0 prev 0 (lb + 1)
  done;
  prev.(lb)

(* The closest candidate within edit distance 2 — far enough to catch a
   typo, near enough not to suggest nonsense. *)
let suggest token candidates =
  let best =
    List.fold_left
      (fun acc c ->
        let d = levenshtein token c in
        match acc with
        | Some (_, bd) when bd <= d -> acc
        | _ when d <= 2 && d < String.length c -> Some (c, d)
        | _ -> acc)
      None candidates
  in
  match best with
  | Some (c, d) when d > 0 -> Printf.sprintf " (did you mean \"%s\"?)" c
  | _ -> ""

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Array-element names read/write their base variable. *)
let var_base name =
  match String.index_opt name '(' with
  | Some i -> String.sub name 0 i
  | None -> name

let parent_path path =
  if path = "." then None
  else
    match String.rindex_opt path '.' with
    | Some 0 -> Some "."
    | Some i -> Some (String.sub path 0 i)
    | None -> None

(* ------------------------------------------------------------------ *)
(* Analysis context and scopes *)

type proc_info = {
  p_formals : (string * bool) list;  (* formal name, has default *)
  p_varargs : bool;  (* trailing "args" *)
}

(* One actual argument at a call site of a script-defined proc, for the
   interprocedural kind fixpoint: either a kind known at walk time, or
   an expression over the *calling* procedure's formals, re-evaluated as
   their kinds refine. *)
type site_spec = Sv of Absint.v | Sexpr of Callgraph.node * Expr.ast

(* A reachable use of a command the -safe profile hides. *)
type cap_hit = {
  h_file : string option;
  h_off : int;
  h_name : string;  (* the hidden command *)
  h_via : string option;  (* the alias it was reached through, if any *)
  h_node : Callgraph.node;
}

(* Literal-upvar summary of a procedure body: which caller variables it
   links, and whether it reads or writes them through the link. *)
type utarget = Ulit of string | Uformal of int

type uv = { u_target : utarget; u_read : bool; u_write : bool }

type ctx = {
  interp : Interp.t;
  safe : bool;  (* check against the -safe hidden-command profile *)
  whole : bool;  (* whole-program mode: report unreachable procedures *)
  cg : Callgraph.t;
  mutable cur_file : string option;
  mutable diags :
    (string option * int * severity * string * string) list;
      (* file, absolute offset, severity, pass, message *)
  procs : (string, proc_info option) Hashtbl.t;
      (* procs defined anywhere in the program; None = formals unknown *)
  bodies : (string, string) Hashtbl.t;  (* literal proc bodies *)
  created : (string, Interp.widget_sig option) Hashtbl.t;
      (* widget paths created anywhere in the program *)
  extra : (string, unit) Hashtbl.t;  (* rename / alias targets etc. *)
  aliases_cap : (string, string) Hashtbl.t;
      (* alias name -> hidden command it resolves to *)
  mutable cap_hits : cap_hit list;
  mutable sites : (string * site_spec array) list;
  summaries : (string, uv list) Hashtbl.t;
  mutable has_dynamic : bool;
      (* a dynamically-named command, or a dynamic eval/uplevel/after
         script, may call anything: reachability and kind facts are off *)
  mutable suppress_unknown : bool;  (* a user [unknown] handler exists *)
}

type scope =
  | Top  (* global scope: variables live across scripts; no dataflow *)
  | Inproc of pscope

and pscope = {
  ps_proc : string;
  ps_defined : (string, unit) Hashtbl.t;
  ps_warned : (string, unit) Hashtbl.t;
}

(* Walker state threaded through every command: the dataflow scope, the
   call-graph node being populated, and flags describing how the
   current command relates to its node's entry. *)
type wctx = {
  scope : scope;
  soft : bool;  (* reads inside catch/uplevel stay quiet *)
  node : Callgraph.node;
  cond : bool;  (* nested under any conditional construct *)
  dead : bool;  (* after an unconditional terminator *)
  kinds : (string, Absint.v) Hashtbl.t;
      (* value kinds of scalar variables along the walked path; absent
         means unknown (Vtop) *)
}

(* What a command (or command sequence) does to straight-line control
   flow: [term] when it always terminates the sequence (the terminator's
   name, for the dead-code message), [esc] when it *may* transfer
   control away (so everything after is conditional, but not dead). *)
type wres = { term : string option; esc : bool }

let nores = { term = None; esc = false }

let report ctx off severity ~pass fmt =
  Printf.ksprintf
    (fun message ->
      ctx.diags <- (ctx.cur_file, off, severity, pass, message) :: ctx.diags)
    fmt

let report_at ctx file off severity ~pass fmt =
  Printf.ksprintf
    (fun message ->
      ctx.diags <- (file, off, severity, pass, message) :: ctx.diags)
    fmt

let lit_arg (cmd : Compile.command) i =
  match List.nth_opt cmd.words i with
  | Some (Compile.W_lit s) -> Some s
  | _ -> None

let word_off (cmd : Compile.command) i =
  match List.nth_opt cmd.wpos i with Some p -> p | None -> cmd.pos

(* A literal argument viewed as a nested script: its content plus the
   offset of that content within the enclosing compile unit (skipping
   the opening brace or quote).  Positions inside braced bodies are
   best-effort: Chars.braced_content collapses backslash-newlines, so a
   body containing one maps approximately. *)
let script_arg usrc (cmd : Compile.command) i =
  match (List.nth_opt cmd.words i, List.nth_opt cmd.wpos i) with
  | Some (Compile.W_lit s), Some wp ->
    let delta =
      if wp < String.length usrc && (usrc.[wp] = '{' || usrc.[wp] = '"') then 1
      else 0
    in
    Some (s, wp + delta)
  | _ -> None

let nargs (cmd : Compile.command) = List.length cmd.words - 1

(* ------------------------------------------------------------------ *)
(* Pre-pass: collect proc definitions (and literal bodies), widget
   creations, rename and alias targets anywhere in the program (any
   nesting), so pass 1 can suppress unknown-command reports for names
   the script itself provides.  The pre-pass descends into *every*
   braced word — over-collecting from data braces only ever suppresses
   diagnostics, never invents them. *)

let record_proc ctx name formals =
  let info =
    match Tcl_list.parse formals with
    | Error _ -> None
    | Ok fs ->
      let formal f =
        match Tcl_list.parse f with
        | Ok [ n ] -> Some (n, false)
        | Ok [ n; _default ] -> Some (n, true)
        | _ -> None
      in
      let rec build acc = function
        | [] -> Some { p_formals = List.rev acc; p_varargs = false }
        | [ "args" ] -> Some { p_formals = List.rev acc; p_varargs = true }
        | f :: rest -> (
          match formal f with
          | Some fm -> build (fm :: acc) rest
          | None -> None)
      in
      build [] fs
  in
  (* Keep the best information seen: a redefinition with unknown formals
     must not erase known ones (conservatively, either may apply). *)
  match Hashtbl.find_opt ctx.procs name with
  | Some (Some _) -> if info <> None then Hashtbl.replace ctx.procs name info
  | _ -> Hashtbl.replace ctx.procs name info

let rec prepass ctx depth (prog : Compile.program) =
  if depth > 20 then ()
  else
    List.iter
      (fun (cmd : Compile.command) ->
        (match cmd.words with
        | Compile.W_lit "proc" :: Compile.W_lit name :: Compile.W_lit formals
          :: rest ->
          record_proc ctx name formals;
          (match rest with
          | [ Compile.W_lit body ] ->
            if not (Hashtbl.mem ctx.bodies name) then
              Hashtbl.add ctx.bodies name body
          | _ -> ())
        | Compile.W_lit "rename" :: _ :: Compile.W_lit newname :: _ ->
          Hashtbl.replace ctx.extra newname ()
        | Compile.W_lit "interp" :: Compile.W_lit "alias" :: _path
          :: Compile.W_lit src :: rest
          when src <> "" ->
          Hashtbl.replace ctx.extra src ();
          (match rest with
          | _tpath :: Compile.W_lit target :: _
            when List.mem target Interp_cmd.unsafe_commands ->
            Hashtbl.replace ctx.aliases_cap src target
          | _ -> ())
        | Compile.W_lit creator :: Compile.W_lit path :: _
          when starts_with "." path -> (
          match Interp.signature_of ctx.interp creator with
          | Some { Interp.sig_widget = Some ws; _ } ->
            if not (Hashtbl.mem ctx.created path) then
              Hashtbl.replace ctx.created path (Some ws)
          | _ -> ())
        | _ -> ());
        List.iter
          (fun w ->
            match w with
            | Compile.W_lit s ->
              if String.contains s '\n' || String.contains s ';'
                 || String.contains s '[' || String.contains s ' '
              then prepass ctx (depth + 1) (Compile.compile s)
            | Compile.W_parts parts | Compile.W_fail (parts, _) ->
              prepass_parts ctx depth parts)
          cmd.words)
      prog

and prepass_parts ctx depth parts =
  List.iter
    (fun p ->
      match p with
      | Compile.Lit _ | Compile.Var _ -> ()
      | Compile.Var_idx (_, idx) -> prepass_parts ctx depth idx
      | Compile.Cmd prog -> prepass ctx (depth + 1) prog)
    parts

(* ------------------------------------------------------------------ *)
(* Dataflow primitives *)

let define scope name =
  match scope with
  | Top -> ()
  | Inproc ps -> Hashtbl.replace ps.ps_defined (var_base name) ()

let use ctx scope ~soft off name =
  match scope with
  | Top -> ()
  | Inproc ps ->
    let base = var_base name in
    if
      (not soft) && base <> ""
      && (not (Hashtbl.mem ps.ps_defined base))
      && not (Hashtbl.mem ps.ps_warned base)
    then begin
      Hashtbl.replace ps.ps_warned base ();
      report ctx off Warning ~pass:"dataflow"
        "\"%s\" may be used before being set in procedure \"%s\"" base
        ps.ps_proc
    end

(* ------------------------------------------------------------------ *)
(* Value-kind table helpers.  Absence means unknown; only scalar names
   without parens are tracked. *)

let kind_get wc name =
  if String.contains name '(' then Absint.Vtop
  else
    match Hashtbl.find_opt wc.kinds name with
    | Some v -> v
    | None -> Absint.Vtop

let kind_set wc name v =
  if String.contains name '(' || name = "" then ()
  else if v = Absint.Vtop then Hashtbl.remove wc.kinds name
  else Hashtbl.replace wc.kinds name v

(* ------------------------------------------------------------------ *)
(* The walker *)

let known_command ctx name =
  Interp.command_exists ctx.interp name
  || Interp.signature_of ctx.interp name <> None
  || Hashtbl.mem ctx.procs name
  || Hashtbl.mem ctx.created name
  || Hashtbl.mem ctx.extra name

let command_candidates ctx =
  Interp.command_names ctx.interp
  @ Hashtbl.fold (fun k _ acc -> k :: acc) ctx.procs []

(* Does the first-word literal name disqualify the command from checks?
   Binding scripts carry %-sequences; a $-leading name is a compile
   artifact of an unusual quoting and never resolvable statically. *)
let uncheckable_name name =
  name = "" || String.contains name '%' || name.[0] = '$'

let scripty s =
  String.contains s '\n' || String.contains s ';' || String.contains s '['
  || String.contains s ' '

(* Over-approximate the set of variables a script may write, for
   havocking the kind table around loop bodies and deferred scripts.
   [all] covers upvar/uplevel, event-loop reentry ([vwait]/[update]) and
   calls into script-defined procs (which may upvar into us).  Unknown
   commands are runtime errors unless an [unknown] handler exists, so
   they only havoc everything in that case.  Over-adding names from
   data braces is harmless — a havoc only loses precision. *)
let rec writes_of_prog ctx depth tbl all (prog : Compile.program) =
  if depth > 10 then all := true
  else
    List.iter
      (fun (cmd : Compile.command) ->
        let n = nargs cmd in
        let add i =
          match lit_arg cmd i with
          | Some v -> Hashtbl.replace tbl (var_base v) ()
          | None -> all := true
        in
        (match lit_arg cmd 0 with
        | None -> all := true
        | Some name when name <> "" && name.[0] = '$' -> all := true
        | Some name when uncheckable_name name || starts_with "." name -> ()
        | Some name -> (
          match name with
          | "set" | "append" | "lappend" | "incr" -> add 1
          | "unset" | "global" | "variable" ->
            for i = 1 to n do
              add i
            done
          | "foreach" ->
            let rec go i =
              if i + 1 <= n then begin
                add i;
                go (i + 2)
              end
            in
            go 1
          | "catch" -> if n >= 2 then add 2
          | "gets" -> if n >= 2 then add 2
          | "scan" | "regexp" ->
            for i = 3 to n do
              add i
            done
          | "regsub" -> if n >= 4 then add n
          | "array" -> if n >= 2 then add 2
          | "vwait" | "update" | "tkwait" | "upvar" | "uplevel" | "eval" ->
            all := true
          | _ ->
            if Hashtbl.mem ctx.procs name then all := true
            else if ctx.suppress_unknown && not (known_command ctx name) then
              all := true));
        List.iter
          (fun w ->
            match w with
            | Compile.W_lit s ->
              if scripty s then
                writes_of_prog ctx (depth + 1) tbl all (Compile.compile s)
            | Compile.W_parts parts | Compile.W_fail (parts, _) ->
              writes_of_parts ctx depth tbl all parts)
          cmd.words)
      prog

and writes_of_parts ctx depth tbl all parts =
  List.iter
    (fun p ->
      match p with
      | Compile.Lit _ | Compile.Var _ -> ()
      | Compile.Var_idx (_, idx) -> writes_of_parts ctx depth tbl all idx
      | Compile.Cmd prog -> writes_of_prog ctx (depth + 1) tbl all prog)
    parts

let writes_of ctx prog =
  let tbl = Hashtbl.create 8 and all = ref false in
  writes_of_prog ctx 0 tbl all prog;
  (tbl, !all)

let merge_writes (t1, a1) (t2, a2) =
  Hashtbl.iter (fun k () -> Hashtbl.replace t1 k ()) t2;
  (t1, a1 || a2)

let havoc wc (tbl, all) =
  if all then Hashtbl.reset wc.kinds
  else Hashtbl.iter (fun v () -> Hashtbl.remove wc.kinds v) tbl

let writes_member (tbl, all) name = all || Hashtbl.mem tbl name

(* A single [expr] invocation whose arguments are literals or plain
   scalar $-substitutions, reconstructed as expression text and parsed.
   The runtime concatenates multiple arguments with spaces; a bare $var
   word round-trips exactly ([expr $n - 1] = [expr {$n - 1}]). *)
let expr_ast_of (c : Compile.command) =
  match c.words with
  | Compile.W_lit "expr" :: (_ :: _ as args) -> (
    let piece = function
      | Compile.W_lit s -> Some s
      | Compile.W_parts [ Compile.Var v ]
        when v <> "" && not (String.contains v '(') ->
        Some ("$" ^ v)
      | _ -> None
    in
    let rec pieces acc = function
      | [] -> Some (List.rev acc)
      | w :: tl -> (
        match piece w with
        | Some s -> pieces (s :: acc) tl
        | None -> None)
    in
    match pieces [] args with
    | Some ps -> (
      match Expr.parse (String.concat " " ps) with
      | Ok ast -> Some ast
      | Error _ -> None)
    | None -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Upvar summaries: which caller variables a procedure body links with
   a literal (or formal-named) [upvar 1], and whether it reads or
   writes them.  Reads under [catch] don't count (the body may be
   probing), and nested [proc] definitions are skipped — their upvar
   targets the *inner* caller. *)

let index_of_formal info name =
  let rec go i = function
    | [] -> None
    | (f, _) :: tl -> if f = name then Some i else go (i + 1) tl
  in
  go 0 info.p_formals

let summary_of ctx name =
  match Hashtbl.find_opt ctx.summaries name with
  | Some s -> s
  | None ->
    let summ =
      match
        (Hashtbl.find_opt ctx.bodies name, Hashtbl.find_opt ctx.procs name)
      with
      | Some body, Some (Some info) ->
        let pairs = ref [] in
        let reads = Hashtbl.create 4 and writes = Hashtbl.create 4 in
        let rec scan depth ~soft (prog : Compile.program) =
          if depth > 10 then ()
          else
            List.iter
              (fun (cmd : Compile.command) ->
                if lit_arg cmd 0 <> Some "proc" then begin
                  (match cmd.words with
                  | Compile.W_lit "upvar" :: rest ->
                    (* Only level-1 (explicit or implicit) links target
                       the direct caller. *)
                    let rest_ok =
                      match rest with
                      | Compile.W_lit lvl :: tl
                        when lvl <> ""
                             && (lvl.[0] = '#' || int_of_string_opt lvl <> None)
                        ->
                        if lvl = "1" then Some tl else None
                      | tl -> Some tl
                    in
                    (match rest_ok with
                    | None -> ()
                    | Some rest ->
                      let rec pairup = function
                        | other :: Compile.W_lit local :: tl ->
                          (match other with
                          | Compile.W_lit o when o <> "" ->
                            pairs := (Ulit o, local) :: !pairs
                          | Compile.W_parts [ Compile.Var v ] -> (
                            match index_of_formal info v with
                            | Some j -> pairs := (Uformal j, local) :: !pairs
                            | None -> ())
                          | _ -> ());
                          pairup tl
                        | _ -> ()
                      in
                      pairup rest)
                  | _ -> ());
                  (match lit_arg cmd 0 with
                  | Some ("set" | "append" | "lappend" | "foreach") -> (
                    match lit_arg cmd 1 with
                    | Some v -> Hashtbl.replace writes (var_base v) ()
                    | None -> ())
                  | Some "catch" when nargs cmd >= 2 -> (
                    match lit_arg cmd 2 with
                    | Some v -> Hashtbl.replace writes (var_base v) ()
                    | None -> ())
                  | Some "gets" when nargs cmd >= 2 -> (
                    match lit_arg cmd 2 with
                    | Some v -> Hashtbl.replace writes (var_base v) ()
                    | None -> ())
                  | Some "incr" -> (
                    match lit_arg cmd 1 with
                    | Some v ->
                      if not soft then Hashtbl.replace reads (var_base v) ()
                    | None -> ())
                  | _ -> ());
                  let soft' = soft || lit_arg cmd 0 = Some "catch" in
                  let rec parts_reads ~soft parts =
                    List.iter
                      (fun p ->
                        match p with
                        | Compile.Lit _ -> ()
                        | Compile.Var v ->
                          if not soft then
                            Hashtbl.replace reads (var_base v) ()
                        | Compile.Var_idx (v, idx) ->
                          if not soft then
                            Hashtbl.replace reads (var_base v) ();
                          parts_reads ~soft idx
                        | Compile.Cmd prog -> scan (depth + 1) ~soft prog)
                      parts
                  in
                  List.iter
                    (fun w ->
                      match w with
                      | Compile.W_lit s ->
                        if scripty s then
                          scan (depth + 1) ~soft:soft' (Compile.compile s)
                      | Compile.W_parts parts | Compile.W_fail (parts, _) ->
                        parts_reads ~soft:soft' parts)
                    cmd.words
                end)
              prog
        in
        scan 0 ~soft:false (Compile.compile body);
        List.filter_map
          (fun (target, local) ->
            let r = Hashtbl.mem reads local
            and w = Hashtbl.mem writes local in
            if r || w then Some { u_target = target; u_read = r; u_write = w }
            else None)
          (List.rev !pairs)
      | _ -> []
    in
    Hashtbl.replace ctx.summaries name summ;
    summ

(* ------------------------------------------------------------------ *)
(* The walker proper *)

let rec walk ctx usrc origin wc (prog : Compile.program) : wres =
  let term = ref None and esc = ref false and dead_reported = ref false in
  List.iter
    (fun (cmd : Compile.command) ->
      if cmd.words <> [] then
        match !term with
        | Some by ->
          if not !dead_reported then begin
            dead_reported := true;
            report ctx (origin + cmd.pos) Warning ~pass:"deadcode"
              "unreachable command after \"%s\"" by
          end;
          ignore
            (walk_command ctx usrc origin { wc with cond = true; dead = true }
               cmd)
        | None ->
          let wc' = if !esc then { wc with cond = true } else wc in
          let r = walk_command ctx usrc origin wc' cmd in
          if r.esc then esc := true;
          if r.term <> None then term := r.term)
    prog;
  { term = !term; esc = !esc }

and walk_command ctx usrc origin wc (cmd : Compile.command) : wres =
  (* Substitutions run in word order before the command fires: record
     variable uses and descend into [command] substitutions first. *)
  let failed = ref false in
  List.iteri
    (fun i w ->
      let off = origin + word_off cmd i in
      match w with
      | Compile.W_lit _ -> ()
      | Compile.W_parts parts -> walk_parts ctx usrc origin wc off parts
      | Compile.W_fail (parts, msg) ->
        walk_parts ctx usrc origin wc off parts;
        failed := true;
        report ctx off Error ~pass:"syntax" "syntax error: %s" msg)
    cmd.words;
  if not wc.dead then record_mentions ctx wc cmd;
  let r =
    if !failed then nores
    else
      match lit_arg cmd 0 with
      | None ->
        (* dynamic command name: nothing checkable, anything callable *)
        ctx.has_dynamic <- true;
        nores
      | Some name when uncheckable_name name ->
        if name <> "" && name.[0] = '$' then ctx.has_dynamic <- true;
        nores
      | Some name when starts_with "." name ->
        walk_widget_call ctx usrc origin wc cmd name;
        nores
      | Some name ->
        let off = origin + cmd.pos in
        if not (known_command ctx name) then begin
          if not ctx.suppress_unknown then
            report ctx off Error ~pass:"unknown"
              "invalid command name \"%s\"%s" name
              (suggest name (command_candidates ctx));
          nores
        end
        else begin
          if Hashtbl.mem ctx.procs name then
            Callgraph.add_call ctx.cg ~from:wc.node ~callee:name
              ~file:ctx.cur_file ~off ~cond:(wc.cond || wc.dead);
          capability ctx wc off name;
          let r =
            match Interp.signature_of ctx.interp name with
            | Some s -> apply_signature ctx usrc origin wc cmd name s
            | None ->
              check_script_proc ctx origin wc cmd name;
              nores
          in
          apply_effects ctx usrc origin wc cmd name;
          r
        end
  in
  match lit_arg cmd 0 with
  | Some (("return" | "break" | "continue" | "error" | "exit") as nm) ->
    { term = Some nm; esc = true }
  | _ -> r

(* Every literal token anywhere in a live command is a potential
   callback reference; feeding them all to the call graph keeps the
   unreachable-procedure pass free of false positives.  [proc] is
   skipped entirely: its body is walked under its own node, and
   attributing the body's tokens to the enclosing node would resurrect
   procedures only referenced by dead ones. *)
and record_mentions ctx wc cmd =
  if lit_arg cmd 0 <> Some "proc" then
    let mention tok =
      if Hashtbl.mem ctx.procs tok then Callgraph.add_mention ctx.cg wc.node tok
    in
    let rec parts_mentions parts =
      List.iter
        (fun p ->
          match p with
          | Compile.Lit s -> Callgraph.tokens_of_literal s mention
          | Compile.Var _ -> ()
          | Compile.Var_idx (_, idx) -> parts_mentions idx
          | Compile.Cmd _ -> ())
        parts
    in
    List.iter
      (fun w ->
        match w with
        | Compile.W_lit s -> Callgraph.tokens_of_literal s mention
        | Compile.W_parts parts | Compile.W_fail (parts, _) ->
          parts_mentions parts)
      cmd.words

and capability ctx wc off name =
  if ctx.safe && not wc.dead then begin
    if List.mem name Interp_cmd.unsafe_commands then
      ctx.cap_hits <-
        {
          h_file = ctx.cur_file;
          h_off = off;
          h_name = name;
          h_via = None;
          h_node = wc.node;
        }
        :: ctx.cap_hits
    else
      match Hashtbl.find_opt ctx.aliases_cap name with
      | Some target ->
        ctx.cap_hits <-
          {
            h_file = ctx.cur_file;
            h_off = off;
            h_name = target;
            h_via = Some name;
            h_node = wc.node;
          }
          :: ctx.cap_hits
      | None -> ()
  end

and walk_parts ctx usrc origin wc off parts =
  List.iter
    (fun p ->
      match p with
      | Compile.Lit _ -> ()
      | Compile.Var n -> use ctx wc.scope ~soft:wc.soft off n
      | Compile.Var_idx (b, idx) ->
        use ctx wc.scope ~soft:wc.soft off b;
        walk_parts ctx usrc origin wc off idx
      | Compile.Cmd prog -> ignore (walk ctx usrc origin wc prog))
    parts

(* Abstractly evaluate a literal condition or [expr] argument.  Reads
   consult the kind table and feed the dataflow pass; bracketed
   command substitutions are walked (conditionally — the runtime may
   short-circuit past them).  Returns the constant truth of the
   condition if proven; reports a guaranteed runtime failure unless
   the context is soft or dead.  [effects] is set when an embedded
   command script was walked (its writes have mutated the kind table,
   so snapshot-restoring callers must re-havoc). *)
and fold_condition ctx usrc origin ?(effects = ref false) wc cmd i =
  ignore usrc;
  match lit_arg cmd i with
  | None -> None
  | Some s -> (
    let off = origin + word_off cmd i in
    match Expr.parse s with
    | Error _ -> None
    | Ok ast -> (
      let hooks =
        {
          Absint.lookup = (fun u -> kind_get wc u);
          note_use =
            (fun ~soft u -> use ctx wc.scope ~soft:(wc.soft || soft) off u);
          eval_cmd =
            (fun ~soft s' ->
              effects := true;
              ignore
                (walk ctx s' off
                   { wc with soft = wc.soft || soft; cond = true }
                   (Compile.compile s')));
        }
      in
      match Absint.truthy (Absint.eval_ast hooks ast) with
      | r -> r
      | exception Absint.Guaranteed msg ->
        if not (wc.soft || wc.dead) then
          report ctx off Error ~pass:"absint" "%s" msg;
        None))

(* Arity of a proc defined by the script under analysis, reported with
   the interpreter's own messages; valid calls feed the upvar summary
   and the interprocedural kind fixpoint. *)
and check_script_proc ctx origin wc cmd name =
  match Hashtbl.find_opt ctx.procs name with
  | Some (Some info) ->
    let n = nargs cmd in
    let required =
      List.length (List.filter (fun (_, dflt) -> not dflt) info.p_formals)
    in
    let maximum =
      if info.p_varargs then max_int else List.length info.p_formals
    in
    if n > maximum then
      report ctx (origin + cmd.pos) Error ~pass:"arity"
        "called \"%s\" with too many arguments" name
    else if n < required then begin
      match List.nth_opt info.p_formals n with
      | Some (formal, _) ->
        report ctx (origin + cmd.pos) Error ~pass:"arity"
          "no value given for parameter \"%s\" to \"%s\"" formal name
      | None -> ()
    end
    else begin
      apply_upvar_site ctx origin wc cmd name;
      record_site ctx wc cmd name info
    end
  | _ -> ()

and apply_upvar_site ctx origin wc cmd name =
  List.iter
    (fun u ->
      let target =
        match u.u_target with
        | Ulit x -> Some x
        | Uformal j -> lit_arg cmd (j + 1)
      in
      match target with
      | None -> ()
      | Some x
        when x = "" || String.contains x '%' || String.contains x '$' ->
        ()
      | Some x -> (
        let base = var_base x in
        if u.u_write then begin
          define wc.scope base;
          Hashtbl.remove wc.kinds base
        end
        else if u.u_read then
          match wc.scope with
          | Top -> ()
          | Inproc ps ->
            if
              (not (wc.soft || wc.dead))
              && (not (Hashtbl.mem ps.ps_defined base))
              && not (Hashtbl.mem ps.ps_warned base)
            then begin
              Hashtbl.replace ps.ps_warned base ();
              report ctx (origin + cmd.pos) Warning ~pass:"dataflow"
                "\"%s\" may be used before being set in procedure \"%s\" \
                 (read via upvar by \"%s\")"
                base ps.ps_proc name
            end))
    (summary_of ctx name)

and record_site ctx wc cmd name info =
  let spec j =
    match List.nth_opt cmd.words (j + 1) with
    | Some (Compile.W_lit s) -> Sv (Absint.Vconst s)
    | Some (Compile.W_parts [ Compile.Var v ]) -> (
      match Hashtbl.find_opt wc.kinds v with
      | Some k when k <> Absint.Vtop -> Sv k
      | _ -> (
        match wc.node with
        | Callgraph.Nproc _ -> Sexpr (wc.node, Expr.A_var v)
        | Callgraph.Nroot -> Sv Absint.Vtop))
    | Some (Compile.W_parts [ Compile.Cmd [ c ] ]) -> (
      match expr_ast_of c with
      | Some ast -> Sexpr (wc.node, ast)
      | None -> Sv Absint.Vtop)
    | Some _ -> Sv Absint.Vtop
    | None -> Sv Absint.Vtop (* defaulted formal *)
  in
  ctx.sites <-
    (name, Array.init (List.length info.p_formals) spec) :: ctx.sites

and apply_signature ctx usrc origin wc cmd name (s : Interp.signature) : wres
    =
  let n = nargs cmd in
  let off = origin + cmd.pos in
  if n < s.Interp.sig_min || (s.Interp.sig_max >= 0 && n > s.Interp.sig_max)
  then begin
    report ctx off Error ~pass:"arity" "wrong # args: should be \"%s\""
      s.Interp.sig_usage;
    nores
  end
  else begin
    (* Subcommand table: only a literal first argument that cannot be a
       window path, switch or substitution artifact is checkable.  An
       open table ([sig_open_subs]) means an unmatched word is legal —
       [send appName ...] — so only near-misses are flagged, softly. *)
    (match (s.Interp.sig_subs, lit_arg cmd 1) with
    | (_ :: _ as subs), Some sub
      when n >= 1 && sub <> ""
           && (not (starts_with "." sub))
           && (not (starts_with "-" sub))
           && not (String.contains sub '%') -> (
      match List.find_opt (fun x -> x.Interp.sub_name = sub) subs with
      | None ->
        let names =
          List.sort String.compare (List.map (fun x -> x.Interp.sub_name) subs)
        in
        if s.Interp.sig_open_subs then begin
          let hint = suggest sub names in
          if hint <> "" then
            report ctx (origin + word_off cmd 1) Warning ~pass:"subcommand"
              "\"%s\" is not a %s subcommand%s" sub name hint
        end
        else
          report ctx (origin + word_off cmd 1) Error ~pass:"subcommand"
            "bad option \"%s\": should be %s%s" sub (Interp.alternatives names)
            (suggest sub names)
      | Some x ->
        let rest = n - 1 in
        if
          rest < x.Interp.sub_min
          || (x.Interp.sub_max >= 0 && rest > x.Interp.sub_max)
        then
          report ctx off
            (if s.Interp.sig_open_subs then Warning else Error)
            ~pass:"arity" "wrong # args: should be \"%s\"" s.Interp.sig_usage)
    | _ -> ());
    (* Leading -option switches: only literal words, only up to the
       first non-switch argument or a "--" terminator, and only when the
       signature declares an option set (value arguments may legally
       start with a dash, so commands without a declared set are never
       checked). *)
    (match s.Interp.sig_options with
    | [] -> ()
    | options ->
      let start =
        match (s.Interp.sig_subs, lit_arg cmd 1) with
        | _ :: _, Some sub
          when List.exists (fun x -> x.Interp.sub_name = sub) s.Interp.sig_subs
          ->
          2
        | _ -> 1
      in
      let sorted = List.sort String.compare options in
      let rec scan i =
        if i <= n then
          match lit_arg cmd i with
          | Some w
            when starts_with "-" w && w <> "--"
                 && not (String.contains w '%') ->
            if not (List.mem w options) then
              report ctx (origin + word_off cmd i) Error ~pass:"options"
                "bad option \"%s\": should be %s%s" w
                (Interp.alternatives sorted) (suggest w sorted)
            else scan (i + 1)
          | _ -> ()
      in
      scan start);
    (* Per-argument literal validators (e.g. bind event patterns). *)
    List.iter
      (fun { Interp.chk_arg; chk } ->
        match lit_arg cmd chk_arg with
        | Some v when not (String.contains v '%') -> (
          match chk v with
          | Some msg ->
            report ctx (origin + word_off cmd chk_arg) Error ~pass:"check"
              "%s" msg
          | None -> ())
        | _ -> ())
      s.Interp.sig_checks;
    (* Widget creation: path shape, parent, option/value pairs. *)
    (match s.Interp.sig_widget with
    | Some ws -> check_widget_creation ctx usrc origin cmd ws
    | None -> ());
    walk_structure ctx usrc origin wc cmd name s
  end

(* Control commands get structural recursion into their braced bodies —
   with constant conditions folded, loop-clobbered kinds havocked and
   call-conditionality tracked; anything else follows the signature's
   script-argument indices. *)
and walk_structure ctx usrc origin wc cmd name s : wres =
  let n = nargs cmd in
  let warg wc' i =
    match script_arg usrc cmd i with
    | Some (content, rel) ->
      walk ctx content (origin + rel) wc' (Compile.compile content)
    | None -> nores
  in
  let writes_arg i =
    match script_arg usrc cmd i with
    | Some (content, _) -> writes_of ctx (Compile.compile content)
    | None -> (Hashtbl.create 1, true)
  in
  let dynamic_script i = i <= n && lit_arg cmd i = None in
  match name with
  | "proc" ->
    (match lit_arg cmd 1 with
    | Some pname when pname <> "" ->
      Callgraph.add_def ctx.cg pname ~file:ctx.cur_file
        ~off:(origin + cmd.pos)
    | _ -> ());
    (match (lit_arg cmd 1, lit_arg cmd 2) with
    | Some pname, Some _formals -> (
      match Hashtbl.find_opt ctx.procs pname with
      | Some (Some info) ->
        let ps =
          {
            ps_proc = pname;
            ps_defined = Hashtbl.create 8;
            ps_warned = Hashtbl.create 8;
          }
        in
        List.iter
          (fun (f, _) -> Hashtbl.replace ps.ps_defined f ())
          info.p_formals;
        Hashtbl.replace ps.ps_defined "args" ();
        ignore
          (warg
             {
               scope = Inproc ps;
               soft = false;
               node = Callgraph.Nproc pname;
               cond = false;
               dead = false;
               kinds = Hashtbl.create 16;
             }
             3)
      | _ -> ())
    | _ -> ());
    nores
  | "if" -> (
    (* if cond ?then? body ?elseif cond ?then? body ...? ??else? body? *)
    let rec parse i acc =
      if i > n then None
      else
        let bi = if lit_arg cmd (i + 1) = Some "then" then i + 2 else i + 1 in
        if bi > n then None
        else
          let acc = (i, bi) :: acc in
          if bi = n then Some (List.rev acc, None)
          else
            match lit_arg cmd (bi + 1) with
            | Some "elseif" -> parse (bi + 2) acc
            | Some "else" ->
              if bi + 2 = n then Some (List.rev acc, Some (bi + 2)) else None
            | _ when bi + 1 = n ->
              Some (List.rev acc, Some (bi + 1)) (* old-style implicit else *)
            | _ -> None
    in
    match parse 1 [] with
    | Some (arms, els) -> walk_if ctx usrc origin wc cmd arms els
    | None ->
      (* Irregular shape (the runtime would likely error): walk what
         looks like bodies, conservatively. *)
      let rec clause i =
        let i = if lit_arg cmd i = Some "then" then i + 1 else i in
        if i <= n then begin
          ignore (warg { wc with cond = true } i);
          tail (i + 1)
        end
      and tail i =
        if i <= n then
          match lit_arg cmd i with
          | Some "elseif" -> clause (i + 2)
          | Some "else" -> ignore (warg { wc with cond = true } (i + 1))
          | _ when i = n -> ignore (warg { wc with cond = true } i)
          | _ -> ()
      in
      clause 2;
      Hashtbl.reset wc.kinds;
      nores)
  | "while" -> (
    let w = writes_arg 2 in
    havoc wc w;
    match fold_condition ctx usrc origin wc cmd 1 with
    | Some false -> nores (* body never runs *)
    | Some true ->
      let r = warg { wc with cond = true } 2 in
      havoc wc w;
      if r.esc then { nores with esc = true }
      else { term = Some "while"; esc = true }
    | None ->
      let r = warg { wc with cond = true } 2 in
      havoc wc w;
      { nores with esc = r.esc })
  | "for" -> (
    ignore (warg wc 1);
    let w = merge_writes (writes_arg 4) (writes_arg 3) in
    havoc wc w;
    match fold_condition ctx usrc origin wc cmd 2 with
    | Some false -> nores
    | Some true ->
      let r = warg { wc with cond = true } 4 in
      ignore (warg { wc with cond = true } 3);
      havoc wc w;
      if r.esc then { nores with esc = true }
      else { term = Some "for"; esc = true }
    | None ->
      let r = warg { wc with cond = true } 4 in
      ignore (warg { wc with cond = true } 3);
      havoc wc w;
      { nores with esc = r.esc })
  | "foreach" ->
    (match lit_arg cmd 1 with Some v -> define wc.scope v | None -> ());
    if n >= 3 && n mod 2 = 1 then begin
      let w = writes_arg n in
      havoc wc w;
      (* Element kinds for the one-variable form: the loop variable is
         always one of the literal list's elements, so it gets their
         join — before the body (any iteration) and after it (the last
         one), unless the body itself writes it. *)
      let simple =
        if n = 3 then
          match (lit_arg cmd 1, lit_arg cmd 2) with
          | Some v, Some lst
            when v <> ""
                 && (not (String.contains v ' '))
                 && not (String.contains v '(') -> (
            match Tcl_list.parse lst with
            | Ok (_ :: _ as elems) ->
              let jv =
                List.fold_left
                  (fun acc e -> Absint.join acc (Absint.Vconst e))
                  Absint.Vbot elems
              in
              kind_set wc v jv;
              Some (v, jv)
            | _ ->
              Hashtbl.remove wc.kinds v;
              None)
          | Some v, _ ->
            Hashtbl.remove wc.kinds (var_base v);
            None
          | None, _ -> None
        else begin
          (match lit_arg cmd 1 with
          | Some v -> Hashtbl.remove wc.kinds (var_base v)
          | None -> ());
          None
        end
      in
      let r = warg { wc with cond = true } n in
      havoc wc w;
      (match simple with
      | Some (v, jv) when not (writes_member w v) -> kind_set wc v jv
      | _ -> ());
      { nores with esc = r.esc }
    end
    else nores
  | "catch" ->
    (* The body is often *expected* to fail (catch {unset x} is the
       idiom for "forget x if set"), so record its writes but keep its
       reads quiet; it also swallows break/return, so nothing
       propagates. *)
    let w = writes_arg 1 in
    ignore (warg { wc with soft = true; cond = true } 1);
    havoc wc w;
    nores
  | "time" ->
    let w = writes_arg 1 in
    havoc wc w;
    let r = warg wc 1 in
    havoc wc w;
    { nores with esc = r.esc }
  | "eval" ->
    if List.exists (fun i -> dynamic_script i) [ 1 ] && n >= 1 then
      ctx.has_dynamic <- true;
    if n = 1 then warg wc 1 else nores
  | "uplevel" ->
    (* Runs in the caller's frame, whose variables we cannot see. *)
    if n >= 1 && dynamic_script n then ctx.has_dynamic <- true;
    if n = 1 then
      ignore
        (warg { wc with soft = true; cond = true; kinds = Hashtbl.create 4 } 1);
    nores
  | "after" ->
    (* The script fires later from the event loop, at global scope.
       Only the "after ms script" form carries one ("after cancel id"
       does not). *)
    (match lit_arg cmd 1 with
    | Some ms when int_of_string_opt ms <> None ->
      if n = 2 then begin
        if dynamic_script 2 then ctx.has_dynamic <- true;
        ignore
          (warg
             { wc with scope = Top; cond = true; kinds = Hashtbl.create 4 }
             2)
      end
    | _ -> ());
    nores
  | "bind" ->
    if n = 3 then
      ignore
        (warg { wc with scope = Top; cond = true; kinds = Hashtbl.create 4 } 3);
    nores
  | "send" -> nores (* executes in another interpreter; not ours to judge *)
  | _ ->
    List.iter
      (fun i ->
        if i <= n then begin
          havoc wc (writes_arg i);
          ignore (warg { wc with cond = true; kinds = Hashtbl.create 4 } i)
        end)
      s.Interp.sig_scripts;
    nores

(* The conditional-branch walker: conditions fold against the kind
   table.  A proven-true arm is walked in the current conditionality
   (its writes persist); a proven-false arm is skipped entirely; once a
   condition is unknown, every remaining arm is walked as conditional
   from a snapshot of the entry kinds, which are then havocked by the
   union of the arms' writes. *)
and walk_if ctx usrc origin wc cmd arms els =
  let warg wc' i =
    match script_arg usrc cmd i with
    | Some (content, rel) ->
      walk ctx content (origin + rel) wc' (Compile.compile content)
    | None -> nores
  in
  let havoc_arg i =
    match script_arg usrc cmd i with
    | Some (content, _) -> havoc wc (writes_of ctx (Compile.compile content))
    | None -> Hashtbl.reset wc.kinds
  in
  let rec go = function
    | [] -> ( match els with Some bi -> warg wc bi | None -> nores)
    | (ci, bi) :: rest -> (
      match fold_condition ctx usrc origin wc cmd ci with
      | Some true -> warg wc bi
      | Some false -> go rest
      | None -> unfolded ((ci, bi) :: rest))
  and unfolded remaining =
    let base = Hashtbl.copy wc.kinds in
    let restore () =
      Hashtbl.reset wc.kinds;
      Hashtbl.iter (Hashtbl.replace wc.kinds) base
    in
    let effects = ref false in
    let results = ref [] in
    List.iteri
      (fun k (ci, bi) ->
        if k > 0 then begin
          (* Later conditions only evaluate if the earlier ones were
             false — fold them softly, for their reads and embedded
             scripts. *)
          ignore
            (fold_condition ctx usrc origin ~effects { wc with soft = true }
               cmd ci);
          restore ()
        end;
        results := warg { wc with cond = true } bi :: !results;
        restore ())
      remaining;
    let with_else =
      match els with
      | Some bi ->
        results := warg { wc with cond = true } bi :: !results;
        restore ();
        true
      | None -> false
    in
    List.iter (fun (_, bi) -> havoc_arg bi) remaining;
    (match els with Some bi -> havoc_arg bi | None -> ());
    if !effects then Hashtbl.reset wc.kinds;
    let rs = !results in
    let term =
      if with_else && rs <> [] && List.for_all (fun r -> r.term <> None) rs
      then Some "if"
      else None
    in
    { term; esc = term <> None || List.exists (fun r -> r.esc) rs }
  in
  go arms

and check_widget_creation ctx usrc origin cmd (ws : Interp.widget_sig) =
  match lit_arg cmd 1 with
  | None -> ()
  | Some path ->
    let off = origin + word_off cmd 1 in
    if not (starts_with "." path) then
      report ctx off Error ~pass:"widget" "bad window path name \"%s\"" path
    else begin
      (match parent_path path with
      | Some parent
        when (not (Hashtbl.mem ctx.created parent))
             && not (Interp.command_exists ctx.interp parent) ->
        report ctx off Error ~pass:"widget"
          "bad window path name \"%s\" (parent \"%s\" is never created)" path
          parent
      | _ -> ());
      check_option_pairs ctx origin cmd ~start:2 ~what:ws.Interp.ws_class
        ws.Interp.ws_options
    end;
    ignore usrc

(* -switch value pairs, as in widget creation and configure.  Switches
   may be abbreviated to an unambiguous prefix (Core.find_spec). *)
and check_option_pairs ctx origin cmd ~start ~what options =
  let n = nargs cmd in
  let rec go i =
    if i <= n then begin
      (match lit_arg cmd i with
      | Some sw when sw <> "" && not (String.contains sw '%') ->
        let off = origin + word_off cmd i in
        let matches = List.filter (fun o -> starts_with sw o) options in
        if List.mem sw options || List.length matches = 1 then begin
          if i = n then
            report ctx off Error ~pass:"options" "value for \"%s\" missing" sw
        end
        else if matches = [] then
          report ctx off Error ~pass:"options" "unknown option \"%s\"%s" sw
            (suggest sw options)
        else report ctx off Error ~pass:"options" "ambiguous option \"%s\"" sw
      | _ -> ());
      go (i + 2)
    end
  in
  ignore what;
  go start

(* A command named by a widget path: resolve the class the script gave
   it and check subcommand, arity and configure options. *)
and walk_widget_call ctx usrc origin wc cmd path =
  let off = origin + cmd.pos in
  let class_of =
    match Hashtbl.find_opt ctx.created path with
    | Some ws -> ws
    | None -> None
  in
  if
    (not (Hashtbl.mem ctx.created path))
    && not (Interp.command_exists ctx.interp path)
  then begin
    if not ctx.suppress_unknown then
      report ctx off Error ~pass:"unknown" "invalid command name \"%s\"%s" path
        (suggest path (Hashtbl.fold (fun k _ acc -> k :: acc) ctx.created []))
  end
  else
    (match class_of with
    | None -> () (* live widget of unknown class: nothing safe to say *)
    | Some ws -> (
      let n = nargs cmd in
      if n = 0 then
        report ctx off Error ~pass:"widget"
          "wrong # args: should be \"%s option ?arg arg ...?\"" path
      else
        match lit_arg cmd 1 with
        | None -> ()
        | Some "configure" ->
          check_option_pairs ctx origin cmd ~start:2 ~what:ws.Interp.ws_class
            ws.Interp.ws_options
        | Some "cget" ->
          if n <> 2 then
            report ctx off Error ~pass:"widget"
              "wrong # args: should be \"%s cget option\"" path
          else
            check_option_pairs ctx origin cmd ~start:2
              ~what:ws.Interp.ws_class ws.Interp.ws_options
        | Some sub when not (String.contains sub '%') -> (
          match
            List.find_opt (fun x -> x.Interp.sub_name = sub) ws.Interp.ws_subs
          with
          | None ->
            let names =
              "cget" :: "configure"
              :: List.map (fun x -> x.Interp.sub_name) ws.Interp.ws_subs
            in
            report ctx (origin + word_off cmd 1) Error ~pass:"widget"
              "bad option \"%s\" for %s%s" sub path (suggest sub names)
          | Some x ->
            let rest = n - 1 in
            if
              rest < x.Interp.sub_min
              || (x.Interp.sub_max >= 0 && rest > x.Interp.sub_max)
            then
              report ctx off Error ~pass:"widget" "wrong # args for \"%s %s\""
                path sub)
        | Some _ -> ()));
  ignore usrc;
  ignore wc

(* Variable def/use effects of the commands that touch variables, plus
   their effect on the kind table and the constant-folding checks that
   hang off it. *)
and apply_effects ctx usrc origin wc cmd name =
  let n = nargs cmd in
  let arg = lit_arg cmd in
  let off i = origin + word_off cmd i in
  let define_arg i =
    match arg i with Some v -> define wc.scope v | None -> ()
  in
  let use_arg i =
    match arg i with
    | Some v -> use ctx wc.scope ~soft:wc.soft (off i) v
    | None -> ()
  in
  let clear_arg i =
    match arg i with
    | Some v -> Hashtbl.remove wc.kinds (var_base v)
    | None -> ()
  in
  let live = not (wc.soft || wc.dead) in
  match name with
  | "set" ->
    if n >= 2 then begin
      define_arg 1;
      match arg 1 with
      | Some v ->
        let kv =
          match List.nth_opt cmd.words 2 with
          | Some (Compile.W_lit s) -> Absint.Vconst s
          | Some (Compile.W_parts [ Compile.Var u ]) -> kind_get wc u
          | Some (Compile.W_parts [ Compile.Cmd [ c ] ]) -> (
            match expr_ast_of c with
            | Some ast -> Absint.eval_quiet (fun u -> kind_get wc u) ast
            | None -> Absint.Vtop)
          | _ -> Absint.Vtop
        in
        if String.contains v '(' then Hashtbl.remove wc.kinds (var_base v)
        else kind_set wc v kv
      | None -> ()
    end
    else use_arg 1
  | "incr" ->
    (match arg 1 with
    | Some v -> (
      match Hashtbl.find_opt wc.kinds (var_base v) with
      | Some (Absint.Vconst c)
        when int_of_string_opt (String.trim c) = None && live ->
        report ctx (off 1) Error ~pass:"absint"
          "expected integer but got \"%s\" (reading value of variable \"%s\" \
           to increment)"
          c v
      | _ -> ())
    | None -> ());
    (match arg 2 with
    | Some inc when int_of_string_opt (String.trim inc) = None && live ->
      report ctx (off 2) Error ~pass:"absint"
        "expected integer but got \"%s\" (reading increment)" inc
    | _ -> ());
    use_arg 1;
    define_arg 1;
    (match arg 1 with
    | Some v when not (String.contains v '(') -> kind_set wc v Absint.Vint
    | Some v -> Hashtbl.remove wc.kinds (var_base v)
    | None -> ())
  | "append" | "lappend" ->
    define_arg 1;
    clear_arg 1
  | "unset" ->
    for i = 1 to n do
      use_arg i;
      define_arg i;
      clear_arg i
    done
  | "global" | "variable" ->
    (* Globals are defined elsewhere by definition. *)
    for i = 1 to n do
      define_arg i;
      clear_arg i
    done
  | "upvar" ->
    (* upvar ?level? otherVar localVar ... — locals become aliases. *)
    let first_is_level =
      match arg 1 with
      | Some a ->
        (a <> "" && (a.[0] = '#' || int_of_string_opt a <> None)) && n >= 3
      | None -> false
    in
    let start = if first_is_level then 3 else 2 in
    let i = ref start in
    while !i <= n do
      define_arg !i;
      clear_arg !i;
      i := !i + 2
    done
  | "foreach" ->
    define_arg 1 (* kinds handled structurally in walk_structure *)
  | "catch" ->
    if n = 2 then begin
      define_arg 2;
      clear_arg 2
    end
  | "scan" ->
    for i = 3 to n do
      define_arg i;
      clear_arg i
    done
  | "gets" ->
    if n = 2 then begin
      define_arg 2;
      clear_arg 2
    end
  | "regexp" ->
    (* regexp ?flags? exp string ?matchVar subVar ...? — without flag
       parsing, defining every trailing literal is the safe direction. *)
    for i = 3 to n do
      define_arg i;
      clear_arg i
    done
  | "regsub" ->
    if n >= 4 then begin
      define_arg n;
      clear_arg n
    end
  | "vwait" ->
    define_arg 1;
    (* the event loop runs arbitrary handlers meanwhile *)
    Hashtbl.reset wc.kinds
  | "update" -> Hashtbl.reset wc.kinds
  | "expr" ->
    (* A fully literal [expr] folds like a condition: a raised failure
       is guaranteed at run time, with the runtime's own message. *)
    let rec lits i acc =
      if i > n then Some (List.rev acc)
      else
        match arg i with
        | Some s -> lits (i + 1) (s :: acc)
        | None -> None
    in
    if n >= 1 then begin
      match lits 1 [] with
      | Some parts -> (
        match Expr.parse (String.concat " " parts) with
        | Error _ -> ()
        | Ok ast -> (
          let hooks =
            {
              Absint.lookup = (fun u -> kind_get wc u);
              note_use =
                (fun ~soft u ->
                  use ctx wc.scope ~soft:(wc.soft || soft) (off 1) u);
              eval_cmd =
                (fun ~soft s' ->
                  ignore
                    (walk ctx s' (off 1)
                       { wc with soft = wc.soft || soft; cond = true }
                       (Compile.compile s')));
            }
          in
          match Absint.eval_ast hooks ast with
          | _ -> ()
          | exception Absint.Guaranteed msg ->
            if live then report ctx (off 1) Error ~pass:"absint" "%s" msg))
      | None -> ()
    end
  | "lindex" -> (
    (* A constant index beyond a constant list is legal but returns an
       empty string — almost always a mistake worth a warning. *)
    match (arg 1, arg 2) with
    | Some lst, Some idx when n = 2 -> (
      match (Tcl_list.parse lst, int_of_string_opt (String.trim idx)) with
      | Ok elems, Some i when (i < 0 || i >= List.length elems) && live ->
        report ctx (off 2) Warning ~pass:"absint"
          "constant index %d is out of range for this %d-element list \
           (lindex returns an empty string)"
          i (List.length elems)
      | _ -> ())
    | _ -> ())
  | _ -> ignore usrc

(* ------------------------------------------------------------------ *)
(* Whole-program passes over the completed call graph *)

let finish_callgraph ctx =
  if ctx.whole && not (ctx.has_dynamic || ctx.suppress_unknown) then
    List.iter
      (fun (name, file, off) ->
        (* Handlers the toolkit invokes implicitly are always live. *)
        if not (List.mem name [ "unknown"; "tkerror"; "bgerror" ]) then
          report_at ctx file off Warning ~pass:"callgraph"
            "procedure \"%s\" is defined but never called" name)
      (Callgraph.unreachable ctx.cg);
  List.iter
    (fun (p, c) ->
      report_at ctx c.Callgraph.c_file c.Callgraph.c_off Error ~pass:"callgraph"
        "\"%s\" unconditionally calls \"%s\": infinite recursion is guaranteed"
        p c.Callgraph.c_callee)
    (Callgraph.infinite_recursion ctx.cg)

let finish_capability ctx =
  if ctx.safe then begin
    let live = Callgraph.reachable ctx.cg in
    let live_node = function
      | Callgraph.Nroot -> true
      | Callgraph.Nproc p -> Hashtbl.mem live p
    in
    List.iter
      (fun h ->
        if live_node h.h_node then
          match h.h_via with
          | None ->
            report_at ctx h.h_file h.h_off Error ~pass:"capability"
              "hidden command \"%s\" would be denied in a safe interpreter"
              h.h_name
          | Some alias ->
            report_at ctx h.h_file h.h_off Error ~pass:"capability"
              "\"%s\" is an alias for hidden command \"%s\" and would be \
               denied in a safe interpreter"
              alias h.h_name)
      (List.rev ctx.cap_hits)
  end

(* The interprocedural kind fixpoint: join every call site's argument
   kinds into each procedure's formals, re-evaluating formal-dependent
   expressions as the caller's own kinds refine, to a small bound.
   Suppressed entirely when anything dynamic may call with anything. *)
let compute_facts ctx =
  if ctx.has_dynamic || ctx.suppress_unknown then []
  else begin
    let arrs = Hashtbl.create 8 in
    Hashtbl.iter
      (fun name info ->
        match info with
        | Some info ->
          let fs = Array.of_list (List.map fst info.p_formals) in
          Hashtbl.replace arrs name
            (fs, Array.make (Array.length fs) Absint.Vbot)
        | None -> ())
      ctx.procs;
    let lookup_in owner u =
      match owner with
      | Callgraph.Nroot -> Absint.Vtop
      | Callgraph.Nproc p -> (
        match Hashtbl.find_opt arrs p with
        | Some (fs, arr) ->
          let rec idx i =
            if i >= Array.length fs then Absint.Vtop
            else if fs.(i) = u then arr.(i)
            else idx (i + 1)
          in
          idx 0
        | None -> Absint.Vtop)
    in
    let changed = ref true and iters = ref 0 in
    while !changed && !iters < 8 do
      changed := false;
      incr iters;
      List.iter
        (fun (callee, specs) ->
          match Hashtbl.find_opt arrs callee with
          | None -> ()
          | Some (_fs, arr) ->
            Array.iteri
              (fun j spec ->
                if j < Array.length arr then begin
                  let v =
                    match spec with
                    | Sv v -> v
                    | Sexpr (owner, ast) ->
                      Absint.eval_quiet (lookup_in owner) ast
                  in
                  let jv = Absint.join arr.(j) v in
                  if jv <> arr.(j) then begin
                    arr.(j) <- jv;
                    changed := true
                  end
                end)
              specs)
        ctx.sites
    done;
    Hashtbl.fold
      (fun name (fs, arr) acc ->
        let facts = ref [] in
        Array.iteri
          (fun j v ->
            match Absint.vm_kind v with
            | Some k -> facts := (fs.(j), k) :: !facts
            | None -> ())
          arr;
        if !facts = [] then acc else (name, List.rev !facts) :: acc)
      arrs []
  end

(* ------------------------------------------------------------------ *)
(* Entry points *)

let line_col src off =
  let off = max 0 (min off (String.length src)) in
  let line = ref 1 and col = ref 1 in
  for i = 0 to off - 1 do
    if src.[i] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col
  done;
  (!line, !col)

type outcome = {
  o_diags : (string option * diag) list;
  o_procs : int;
  o_edges : int;
  o_facts : (string * (string * Vm.kind) list) list;
}

let analyze_program ?(safe = false) ?(whole = false) interp
    (files : (string option * string) list) =
  (* Compile directly — never through the interpreter's caches, never
     executing anything: analysis must leave the interpreter exactly as
     it found it (except the tcl.lint.* counters). *)
  let ctx =
    {
      interp;
      safe;
      whole;
      cg = Callgraph.create ();
      cur_file = None;
      diags = [];
      procs = Hashtbl.create 16;
      bodies = Hashtbl.create 16;
      created = Hashtbl.create 16;
      extra = Hashtbl.create 4;
      aliases_cap = Hashtbl.create 4;
      cap_hits = [];
      sites = [];
      summaries = Hashtbl.create 8;
      has_dynamic = false;
      suppress_unknown = false;
    }
  in
  let compiled =
    List.map (fun (file, src) -> (file, src, Compile.compile src)) files
  in
  List.iter (fun (_f, _s, prog) -> prepass ctx 0 prog) compiled;
  ctx.suppress_unknown <-
    Hashtbl.mem ctx.procs "unknown" || Interp.command_exists interp "unknown";
  List.iter
    (fun (file, src, prog) ->
      ctx.cur_file <- file;
      ignore
        (walk ctx src 0
           {
             scope = Top;
             soft = false;
             node = Callgraph.Nroot;
             cond = false;
             dead = false;
             kinds = Hashtbl.create 16;
           }
           prog))
    compiled;
  ctx.cur_file <- None;
  finish_callgraph ctx;
  finish_capability ctx;
  let facts = compute_facts ctx in
  let rank file =
    let rec go i = function
      | [] -> max_int
      | (f, _, _) :: tl -> if f = file then i else go (i + 1) tl
    in
    go 0 compiled
  in
  let sorted =
    List.sort
      (fun (f1, o1, s1, _, m1) (f2, o2, s2, _, m2) ->
        compare (rank f1, o1, s1, m1) (rank f2, o2, s2, m2))
      ctx.diags
  in
  let src_of file =
    match List.find_opt (fun (f, _, _) -> f = file) compiled with
    | Some (_, s, _) -> s
    | None -> ""
  in
  let o_diags =
    List.map
      (fun (file, off, severity, pass, message) ->
        let line, col = line_col (src_of file) off in
        (file, { line; col; severity; pass; message }))
      sorted
  in
  let errors =
    List.length (List.filter (fun (_, d) -> d.severity = Error) o_diags)
  in
  let warnings = List.length o_diags - errors in
  Interp.note_lint interp ~errors ~warnings;
  {
    o_diags;
    o_procs = Callgraph.proc_count ctx.cg;
    o_edges = Callgraph.edge_count ctx.cg;
    o_facts = facts;
  }

let analyze ?safe interp src =
  List.map snd (analyze_program ?safe interp [ (None, src) ]).o_diags

(* Diagnostics rendered as a Tcl list of {line col severity msg}
   elements — the result of the [lint] command. *)
let to_tcl_list diags =
  Tcl_list.format
    (List.map
       (fun d ->
         Tcl_list.format
           [
             string_of_int d.line;
             string_of_int d.col;
             severity_name d.severity;
             d.message;
           ])
       diags)
