(* Static analysis of Tcl/Tk scripts over the Compile representation.

   The toolkit's scripts are checked the way Xt applications are checked
   by the C compiler: before anything runs.  [analyze] compiles the
   script (directly, bypassing the interpreter's caches — linting must
   not disturb interpreter state) and walks the compiled program with
   the command signature registry (Interp.signature) in hand.  Passes:

   1. unknown command / misspelled subcommand / bad -option, with
      "did you mean" suggestions; suppressed when the script defines a
      proc of that name anywhere, or a user [unknown] handler is
      visible (then every unresolved name may be handled at run time);
   2. arity, using the registry's usage strings, so lint prints exactly
      the "wrong # args: should be ..." message the runtime would;
   3. per-proc def/use dataflow (honoring global/upvar/foreach/catch
      writes) flagging variables that may be read before being set;
   4. dead code after an unconditional return/break/continue/error in a
      straight-line command sequence;
   5. binding event patterns (through validator hooks the toolkit
      registers with its signatures — this library cannot see
      Bindpattern) and widget path shape: ".a.b" needs ".a" created
      somewhere in the same script or already live in the interpreter.

   The analysis is deliberately conservative: a dynamic word (one with
   $-substitution or [command] substitution in it) defeats any check
   that would need its value, and a braced word is only descended into
   as a script where the signature (or the structure of a control
   command) says a script belongs.  The goal is zero false positives on
   working scripts; soundness bugs err toward silence. *)

type severity = Error | Warning

type diag = {
  line : int;  (* 1-based *)
  col : int;  (* 1-based *)
  severity : severity;
  message : string;
}

let severity_name = function Error -> "error" | Warning -> "warning"

let format_diag ?file d =
  let prefix = match file with Some f -> f ^ ":" | None -> "" in
  Printf.sprintf "%s%d:%d: %s: %s" prefix d.line d.col
    (severity_name d.severity) d.message

(* ------------------------------------------------------------------ *)
(* Script completeness: braces, brackets and quotes balance.  Shared by
   [info complete] and wish's interactive continuation prompt. *)

let complete script =
  let n = String.length script in
  let rec scan i depth in_quote =
    if i >= n then depth <= 0 && not in_quote
    else
      match script.[i] with
      | '\\' -> scan (i + 2) depth in_quote
      | '"' -> scan (i + 1) depth (not in_quote)
      | ('{' | '[') when not in_quote -> scan (i + 1) (depth + 1) in_quote
      | ('}' | ']') when not in_quote -> scan (i + 1) (depth - 1) in_quote
      | _ -> scan (i + 1) depth in_quote
  in
  scan 0 0 false

(* ------------------------------------------------------------------ *)
(* Small helpers *)

let levenshtein a b =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) (fun j -> j) in
  let cur = Array.make (lb + 1) 0 in
  for i = 1 to la do
    cur.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      cur.(j) <- min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit cur 0 prev 0 (lb + 1)
  done;
  prev.(lb)

(* The closest candidate within edit distance 2 — far enough to catch a
   typo, near enough not to suggest nonsense. *)
let suggest token candidates =
  let best =
    List.fold_left
      (fun acc c ->
        let d = levenshtein token c in
        match acc with
        | Some (_, bd) when bd <= d -> acc
        | _ when d <= 2 && d < String.length c -> Some (c, d)
        | _ -> acc)
      None candidates
  in
  match best with
  | Some (c, d) when d > 0 -> Printf.sprintf " (did you mean \"%s\"?)" c
  | _ -> ""

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Array-element names read/write their base variable. *)
let var_base name =
  match String.index_opt name '(' with
  | Some i -> String.sub name 0 i
  | None -> name

let parent_path path =
  if path = "." then None
  else
    match String.rindex_opt path '.' with
    | Some 0 -> Some "."
    | Some i -> Some (String.sub path 0 i)
    | None -> None

(* ------------------------------------------------------------------ *)
(* Analysis context and scopes *)

type proc_info = {
  p_formals : (string * bool) list;  (* formal name, has default *)
  p_varargs : bool;  (* trailing "args" *)
}

type ctx = {
  interp : Interp.t;
  src : string;  (* the whole script, for line/col mapping *)
  mutable diags : (int * severity * string) list;  (* absolute offsets *)
  procs : (string, proc_info option) Hashtbl.t;
      (* procs defined anywhere in the script; None = formals unknown *)
  created : (string, Interp.widget_sig option) Hashtbl.t;
      (* widget paths created anywhere in the script *)
  extra : (string, unit) Hashtbl.t;  (* rename targets etc. *)
  mutable suppress_unknown : bool;  (* a user [unknown] handler exists *)
}

type scope =
  | Top  (* global scope: variables live across scripts; no dataflow *)
  | Inproc of pscope

and pscope = {
  ps_proc : string;
  ps_defined : (string, unit) Hashtbl.t;
  ps_warned : (string, unit) Hashtbl.t;
}

let report ctx off severity fmt =
  Printf.ksprintf (fun message ->
      ctx.diags <- (off, severity, message) :: ctx.diags)
    fmt

let lit_arg (cmd : Compile.command) i =
  match List.nth_opt cmd.words i with
  | Some (Compile.W_lit s) -> Some s
  | _ -> None

let word_off (cmd : Compile.command) i =
  match List.nth_opt cmd.wpos i with Some p -> p | None -> cmd.pos

(* A literal argument viewed as a nested script: its content plus the
   offset of that content within the enclosing compile unit (skipping
   the opening brace or quote).  Positions inside braced bodies are
   best-effort: Chars.braced_content collapses backslash-newlines, so a
   body containing one maps approximately. *)
let script_arg usrc (cmd : Compile.command) i =
  match (List.nth_opt cmd.words i, List.nth_opt cmd.wpos i) with
  | Some (Compile.W_lit s), Some wp ->
    let delta =
      if wp < String.length usrc && (usrc.[wp] = '{' || usrc.[wp] = '"') then 1
      else 0
    in
    Some (s, wp + delta)
  | _ -> None

let nargs (cmd : Compile.command) = List.length cmd.words - 1

(* ------------------------------------------------------------------ *)
(* Pre-pass: collect proc definitions, widget creations and rename
   targets anywhere in the script (any nesting), so pass 1 can suppress
   unknown-command reports for names the script itself provides.  The
   pre-pass descends into *every* braced word — over-collecting from
   data braces only ever suppresses diagnostics, never invents them. *)

let record_proc ctx name formals =
  let info =
    match Tcl_list.parse formals with
    | Error _ -> None
    | Ok fs ->
      let formal f =
        match Tcl_list.parse f with
        | Ok [ n ] -> Some (n, false)
        | Ok [ n; _default ] -> Some (n, true)
        | _ -> None
      in
      let rec build acc = function
        | [] -> Some { p_formals = List.rev acc; p_varargs = false }
        | [ "args" ] -> Some { p_formals = List.rev acc; p_varargs = true }
        | f :: rest -> (
          match formal f with
          | Some fm -> build (fm :: acc) rest
          | None -> None)
      in
      build [] fs
  in
  (* Keep the best information seen: a redefinition with unknown formals
     must not erase known ones (conservatively, either may apply). *)
  match Hashtbl.find_opt ctx.procs name with
  | Some (Some _) -> if info <> None then Hashtbl.replace ctx.procs name info
  | _ -> Hashtbl.replace ctx.procs name info

let rec prepass ctx depth (prog : Compile.program) =
  if depth > 20 then ()
  else
    List.iter
      (fun (cmd : Compile.command) ->
        (match cmd.words with
        | Compile.W_lit "proc" :: Compile.W_lit name :: Compile.W_lit formals
          :: _ ->
          record_proc ctx name formals
        | Compile.W_lit "rename" :: _ :: Compile.W_lit newname :: _ ->
          Hashtbl.replace ctx.extra newname ()
        | Compile.W_lit creator :: Compile.W_lit path :: _
          when starts_with "." path -> (
          match Interp.signature_of ctx.interp creator with
          | Some { Interp.sig_widget = Some ws; _ } ->
            if not (Hashtbl.mem ctx.created path) then
              Hashtbl.replace ctx.created path (Some ws)
          | _ -> ())
        | _ -> ());
        List.iter
          (fun w ->
            match w with
            | Compile.W_lit s ->
              if String.contains s '\n' || String.contains s ';'
                 || String.contains s '[' || String.contains s ' '
              then prepass ctx (depth + 1) (Compile.compile s)
            | Compile.W_parts parts | Compile.W_fail (parts, _) ->
              prepass_parts ctx depth parts)
          cmd.words)
      prog

and prepass_parts ctx depth parts =
  List.iter
    (fun p ->
      match p with
      | Compile.Lit _ | Compile.Var _ -> ()
      | Compile.Var_idx (_, idx) -> prepass_parts ctx depth idx
      | Compile.Cmd prog -> prepass ctx (depth + 1) prog)
    parts

(* ------------------------------------------------------------------ *)
(* Dataflow primitives *)

let define scope name =
  match scope with
  | Top -> ()
  | Inproc ps -> Hashtbl.replace ps.ps_defined (var_base name) ()

let use ctx scope ~soft off name =
  match scope with
  | Top -> ()
  | Inproc ps ->
    let base = var_base name in
    if
      (not soft) && base <> ""
      && (not (Hashtbl.mem ps.ps_defined base))
      && not (Hashtbl.mem ps.ps_warned base)
    then begin
      Hashtbl.replace ps.ps_warned base ();
      report ctx off Warning
        "\"%s\" may be used before being set in procedure \"%s\"" base
        ps.ps_proc
    end

(* ------------------------------------------------------------------ *)
(* The walker *)

let known_command ctx name =
  Interp.command_exists ctx.interp name
  || Interp.signature_of ctx.interp name <> None
  || Hashtbl.mem ctx.procs name
  || Hashtbl.mem ctx.created name
  || Hashtbl.mem ctx.extra name

let command_candidates ctx =
  Interp.command_names ctx.interp
  @ Hashtbl.fold (fun k _ acc -> k :: acc) ctx.procs []

(* Does the first-word literal name disqualify the command from checks?
   Binding scripts carry %-sequences; a $-leading name is a compile
   artifact of an unusual quoting and never resolvable statically. *)
let uncheckable_name name =
  name = "" || String.contains name '%' || name.[0] = '$'

let rec walk ctx usrc origin scope ~soft (prog : Compile.program) =
  let terminated = ref None in
  let dead_reported = ref false in
  List.iter
    (fun (cmd : Compile.command) ->
      if cmd.words <> [] then begin
        (match !terminated with
        | Some by when not !dead_reported ->
          dead_reported := true;
          report ctx (origin + cmd.pos) Warning
            "unreachable command after \"%s\"" by
        | _ -> ());
        walk_command ctx usrc origin scope ~soft cmd;
        (match lit_arg cmd 0 with
        | Some (("return" | "break" | "continue" | "error" | "exit") as name)
          ->
          terminated := Some name
        | _ -> ())
      end)
    prog

and walk_command ctx usrc origin scope ~soft (cmd : Compile.command) =
  (* Substitutions run in word order before the command fires: record
     variable uses and descend into [command] substitutions first. *)
  let failed = ref false in
  List.iteri
    (fun i w ->
      let off = origin + word_off cmd i in
      match w with
      | Compile.W_lit _ -> ()
      | Compile.W_parts parts -> walk_parts ctx usrc origin scope ~soft off parts
      | Compile.W_fail (parts, msg) ->
        walk_parts ctx usrc origin scope ~soft off parts;
        failed := true;
        report ctx off Error "syntax error: %s" msg)
    cmd.words;
  if not !failed then
    match lit_arg cmd 0 with
    | None -> ()  (* dynamic command name: nothing checkable *)
    | Some name when uncheckable_name name -> ()
    | Some name when starts_with "." name ->
      walk_widget_call ctx usrc origin scope ~soft cmd name
    | Some name ->
      let off = origin + cmd.pos in
      if not (known_command ctx name) then begin
        if not ctx.suppress_unknown then
          report ctx off Error "invalid command name \"%s\"%s" name
            (suggest name (command_candidates ctx))
      end
      else begin
        (match Interp.signature_of ctx.interp name with
        | Some s -> apply_signature ctx usrc origin scope ~soft cmd name s
        | None -> check_script_proc ctx origin cmd name);
        apply_effects ctx usrc origin scope ~soft cmd name
      end

and walk_parts ctx usrc origin scope ~soft off parts =
  List.iter
    (fun p ->
      match p with
      | Compile.Lit _ -> ()
      | Compile.Var n -> use ctx scope ~soft off n
      | Compile.Var_idx (b, idx) ->
        use ctx scope ~soft off b;
        walk_parts ctx usrc origin scope ~soft off idx
      | Compile.Cmd prog -> walk ctx usrc origin scope ~soft prog)
    parts

and walk_script ctx scope ~soft (content, origin) =
  walk ctx content origin scope ~soft (Compile.compile content)

(* Arity of a proc defined by the script under analysis, reported with
   the interpreter's own messages. *)
and check_script_proc ctx origin cmd name =
  match Hashtbl.find_opt ctx.procs name with
  | Some (Some info) ->
    let n = nargs cmd in
    let required =
      List.length (List.filter (fun (_, dflt) -> not dflt) info.p_formals)
    in
    let maximum =
      if info.p_varargs then max_int else List.length info.p_formals
    in
    if n > maximum then
      report ctx (origin + cmd.pos) Error
        "called \"%s\" with too many arguments" name
    else if n < required then begin
      match List.nth_opt info.p_formals n with
      | Some (formal, _) ->
        report ctx (origin + cmd.pos) Error
          "no value given for parameter \"%s\" to \"%s\"" formal name
      | None -> ()
    end
  | _ -> ()

and apply_signature ctx usrc origin scope ~soft cmd name (s : Interp.signature)
    =
  let n = nargs cmd in
  let off = origin + cmd.pos in
  if n < s.Interp.sig_min || (s.Interp.sig_max >= 0 && n > s.Interp.sig_max)
  then report ctx off Error "wrong # args: should be \"%s\"" s.Interp.sig_usage
  else begin
    (* Subcommand table: only a literal first argument that cannot be a
       window path, switch or substitution artifact is checkable. *)
    (match (s.Interp.sig_subs, lit_arg cmd 1) with
    | (_ :: _ as subs), Some sub
      when n >= 1 && sub <> ""
           && (not (starts_with "." sub))
           && (not (starts_with "-" sub))
           && not (String.contains sub '%') -> (
      match
        List.find_opt (fun x -> x.Interp.sub_name = sub) subs
      with
      | None ->
        let names =
          List.sort String.compare
            (List.map (fun x -> x.Interp.sub_name) subs)
        in
        report ctx (origin + word_off cmd 1) Error
          "bad option \"%s\": should be %s%s" sub
          (Interp.alternatives names) (suggest sub names)
      | Some x ->
        let rest = n - 1 in
        if
          rest < x.Interp.sub_min
          || (x.Interp.sub_max >= 0 && rest > x.Interp.sub_max)
        then
          report ctx off Error "wrong # args: should be \"%s\""
            s.Interp.sig_usage)
    | _ -> ());
    (* Leading -option switches: only literal words, only up to the
       first non-switch argument or a "--" terminator, and only when the
       signature declares an option set (value arguments may legally
       start with a dash, so commands without a declared set are never
       checked). *)
    (match s.Interp.sig_options with
    | [] -> ()
    | options ->
      let start =
        match (s.Interp.sig_subs, lit_arg cmd 1) with
        | _ :: _, Some sub
          when List.exists (fun x -> x.Interp.sub_name = sub)
                 s.Interp.sig_subs ->
          2
        | _ -> 1
      in
      let sorted = List.sort String.compare options in
      let rec scan i =
        if i <= n then
          match lit_arg cmd i with
          | Some w
            when starts_with "-" w && w <> "--"
                 && not (String.contains w '%') ->
            if not (List.mem w options) then
              report ctx (origin + word_off cmd i) Error
                "bad option \"%s\": should be %s%s" w
                (Interp.alternatives sorted) (suggest w sorted)
            else scan (i + 1)
          | _ -> ()
      in
      scan start);
    (* Per-argument literal validators (e.g. bind event patterns). *)
    List.iter
      (fun { Interp.chk_arg; chk } ->
        match lit_arg cmd chk_arg with
        | Some v when not (String.contains v '%') -> (
          match chk v with
          | Some msg -> report ctx (origin + word_off cmd chk_arg) Error "%s" msg
          | None -> ())
        | _ -> ())
      s.Interp.sig_checks;
    (* Widget creation: path shape, parent, option/value pairs. *)
    (match s.Interp.sig_widget with
    | Some ws -> check_widget_creation ctx usrc origin cmd ws
    | None -> ());
    walk_structure ctx usrc origin scope ~soft cmd name s
  end

(* Control commands get structural recursion into their braced bodies;
   anything else follows the signature's script-argument indices. *)
and walk_structure ctx usrc origin scope ~soft cmd name s =
  let n = nargs cmd in
  let walk_arg ?(scope = scope) ?(soft = soft) i =
    match script_arg usrc cmd i with
    | Some (content, rel) -> walk_script ctx scope ~soft (content, origin + rel)
    | None -> ()
  in
  match name with
  | "proc" -> (
    match (lit_arg cmd 1, lit_arg cmd 2) with
    | Some pname, Some formals -> (
      match Hashtbl.find_opt ctx.procs pname with
      | Some (Some info) ->
        let ps =
          {
            ps_proc = pname;
            ps_defined = Hashtbl.create 8;
            ps_warned = Hashtbl.create 8;
          }
        in
        List.iter (fun (f, _) -> Hashtbl.replace ps.ps_defined f ())
          info.p_formals;
        Hashtbl.replace ps.ps_defined "args" ();
        walk_arg ~scope:(Inproc ps) ~soft:false 3
      | _ -> ignore formals)
    | _ -> ())
  | "if" ->
    (* if cond ?then? body ?elseif cond ?then? body ...? ??else? body? *)
    let rec clause i =
      let i = if lit_arg cmd i = Some "then" then i + 1 else i in
      if i <= n then begin
        walk_arg i;
        tail (i + 1)
      end
    and tail i =
      if i <= n then
        match lit_arg cmd i with
        | Some "elseif" -> clause (i + 2)
        | Some "else" -> walk_arg (i + 1)
        | _ when i = n -> walk_arg i  (* old-style implicit else *)
        | _ -> ()
    in
    clause 2
  | "while" -> walk_arg 2
  | "for" ->
    walk_arg 1;
    walk_arg 3;
    walk_arg 4
  | "foreach" ->
    (match lit_arg cmd 1 with Some v -> define scope v | None -> ());
    walk_arg 3
  | "catch" ->
    (* The body is often *expected* to fail (catch {unset x} is the
       idiom for "forget x if set"), so record its writes but keep its
       reads quiet. *)
    walk_arg ~soft:true 1
  | "time" -> walk_arg 1
  | "eval" -> if n = 1 then walk_arg 1
  | "uplevel" ->
    (* Runs in the caller's frame, whose variables we cannot see. *)
    if n = 1 then walk_arg ~soft:true 1
  | "after" ->
    (* The script fires later from the event loop, at global scope.
       Only the "after ms script" form carries one ("after cancel id"
       does not). *)
    (match lit_arg cmd 1 with
    | Some ms when int_of_string_opt ms <> None ->
      if n = 2 then walk_arg ~scope:Top 2
    | _ -> ())
  | "bind" -> if n = 3 then walk_arg ~scope:Top 3
  | "send" -> ()  (* executes in another interpreter; not ours to judge *)
  | _ ->
    List.iter (fun i -> if i <= n then walk_arg i) s.Interp.sig_scripts

and check_widget_creation ctx usrc origin cmd (ws : Interp.widget_sig) =
  match lit_arg cmd 1 with
  | None -> ()
  | Some path ->
    let off = origin + word_off cmd 1 in
    if not (starts_with "." path) then
      report ctx off Error "bad window path name \"%s\"" path
    else begin
      (match parent_path path with
      | Some parent
        when (not (Hashtbl.mem ctx.created parent))
             && not (Interp.command_exists ctx.interp parent) ->
        report ctx off Error
          "bad window path name \"%s\" (parent \"%s\" is never created)" path
          parent
      | _ -> ());
      check_option_pairs ctx origin cmd ~start:2 ~what:ws.Interp.ws_class
        ws.Interp.ws_options
    end;
    ignore usrc

(* -switch value pairs, as in widget creation and configure.  Switches
   may be abbreviated to an unambiguous prefix (Core.find_spec). *)
and check_option_pairs ctx origin cmd ~start ~what options =
  let n = nargs cmd in
  let rec go i =
    if i <= n then begin
      (match lit_arg cmd i with
      | Some sw when sw <> "" && not (String.contains sw '%') ->
        let off = origin + word_off cmd i in
        let matches = List.filter (fun o -> starts_with sw o) options in
        if List.mem sw options || List.length matches = 1 then begin
          if i = n then report ctx off Error "value for \"%s\" missing" sw
        end
        else if matches = [] then
          report ctx off Error "unknown option \"%s\"%s" sw
            (suggest sw options)
        else report ctx off Error "ambiguous option \"%s\"" sw
      | _ -> ());
      go (i + 2)
    end
  in
  ignore what;
  go start

(* A command named by a widget path: resolve the class the script gave
   it and check subcommand, arity and configure options. *)
and walk_widget_call ctx usrc origin scope ~soft cmd path =
  let off = origin + cmd.pos in
  let class_of =
    match Hashtbl.find_opt ctx.created path with
    | Some ws -> ws
    | None -> None
  in
  if
    (not (Hashtbl.mem ctx.created path))
    && not (Interp.command_exists ctx.interp path)
  then begin
    if not ctx.suppress_unknown then
      report ctx off Error "invalid command name \"%s\"%s" path
        (suggest path
           (Hashtbl.fold (fun k _ acc -> k :: acc) ctx.created []))
  end
  else
    match class_of with
    | None -> ()  (* live widget of unknown class: nothing safe to say *)
    | Some ws -> (
      let n = nargs cmd in
      if n = 0 then
        report ctx off Error "wrong # args: should be \"%s option ?arg arg ...?\""
          path
      else
        match lit_arg cmd 1 with
        | None -> ()
        | Some "configure" ->
          check_option_pairs ctx origin cmd ~start:2 ~what:ws.Interp.ws_class
            ws.Interp.ws_options
        | Some "cget" ->
          if n <> 2 then
            report ctx off Error "wrong # args: should be \"%s cget option\""
              path
          else
            check_option_pairs ctx origin cmd ~start:2
              ~what:ws.Interp.ws_class ws.Interp.ws_options
        | Some sub when not (String.contains sub '%') -> (
          match
            List.find_opt
              (fun x -> x.Interp.sub_name = sub)
              ws.Interp.ws_subs
          with
          | None ->
            let names =
              "cget" :: "configure"
              :: List.map (fun x -> x.Interp.sub_name) ws.Interp.ws_subs
            in
            report ctx (origin + word_off cmd 1) Error
              "bad option \"%s\" for %s%s" sub path (suggest sub names)
          | Some x ->
            let rest = n - 1 in
            if
              rest < x.Interp.sub_min
              || (x.Interp.sub_max >= 0 && rest > x.Interp.sub_max)
            then
              report ctx off Error "wrong # args for \"%s %s\"" path sub)
        | Some _ -> ());
  ignore usrc;
  ignore scope;
  ignore soft

(* Variable def/use effects of the commands that touch variables. *)
and apply_effects ctx usrc origin scope ~soft cmd name =
  let n = nargs cmd in
  let arg = lit_arg cmd in
  let off i = origin + word_off cmd i in
  let define_arg i = match arg i with Some v -> define scope v | None -> () in
  let use_arg i =
    match arg i with Some v -> use ctx scope ~soft (off i) v | None -> ()
  in
  match name with
  | "set" -> if n >= 2 then define_arg 1 else use_arg 1
  | "incr" ->
    use_arg 1;
    define_arg 1
  | "append" | "lappend" -> define_arg 1
  | "unset" ->
    for i = 1 to n do
      use_arg i;
      define_arg i
    done
  | "global" ->
    (* Globals are defined elsewhere by definition. *)
    for i = 1 to n do
      define_arg i
    done
  | "upvar" ->
    (* upvar ?level? otherVar localVar ... — locals become aliases. *)
    let first_is_level =
      match arg 1 with
      | Some a ->
        (a <> "" && (a.[0] = '#' || int_of_string_opt a <> None)) && n >= 3
      | None -> false
    in
    let start = if first_is_level then 3 else 2 in
    let i = ref start in
    while !i <= n do
      define_arg !i;
      i := !i + 2
    done
  | "foreach" -> define_arg 1  (* also set before the body walk *)
  | "catch" -> if n = 2 then define_arg 2
  | "scan" ->
    for i = 3 to n do
      define_arg i
    done
  | "gets" -> if n = 2 then define_arg 2
  | "regexp" ->
    (* regexp ?flags? exp string ?matchVar subVar ...? — without flag
       parsing, defining every trailing literal is the safe direction. *)
    for i = 3 to n do
      define_arg i
    done
  | "regsub" -> if n >= 4 then define_arg n
  | _ -> ignore usrc

(* ------------------------------------------------------------------ *)
(* Entry point *)

let line_col src off =
  let off = max 0 (min off (String.length src)) in
  let line = ref 1 and col = ref 1 in
  for i = 0 to off - 1 do
    if src.[i] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col
  done;
  (!line, !col)

let analyze interp src =
  (* Compile directly — never through the interpreter's caches, never
     executing anything: analysis must leave the interpreter exactly as
     it found it (except the tcl.lint.* counters). *)
  let prog = Compile.compile src in
  let ctx =
    {
      interp;
      src;
      diags = [];
      procs = Hashtbl.create 16;
      created = Hashtbl.create 16;
      extra = Hashtbl.create 4;
      suppress_unknown = false;
    }
  in
  prepass ctx 0 prog;
  ctx.suppress_unknown <-
    Hashtbl.mem ctx.procs "unknown" || Interp.command_exists interp "unknown";
  walk ctx src 0 Top ~soft:false prog;
  let diags =
    List.sort compare (List.rev_map (fun d -> d) ctx.diags)
  in
  let result =
    List.map
      (fun (off, severity, message) ->
        let line, col = line_col src off in
        { line; col; severity; message })
      diags
  in
  let errors =
    List.length (List.filter (fun d -> d.severity = Error) result)
  in
  let warnings = List.length result - errors in
  Interp.note_lint interp ~errors ~warnings;
  result

(* Diagnostics rendered as a Tcl list of {line col severity msg}
   elements — the result of the [lint] command. *)
let to_tcl_list diags =
  Tcl_list.format
    (List.map
       (fun d ->
         Tcl_list.format
           [
             string_of_int d.line;
             string_of_int d.col;
             severity_name d.severity;
             d.message;
           ])
       diags)
