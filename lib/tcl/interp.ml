type status = Tcl_ok | Tcl_error | Tcl_return | Tcl_break | Tcl_continue

type result = status * string

exception Tcl_failure of string

(* Used inside word parsing to abort the whole command with a given
   completion status (e.g. an error in a [$var] or [\[cmd\]] substitution). *)
exception Propagate of status * string

(* VM variable lookup miss (unbound, link, or array element): a constant
   exception so the hit path of [vref_cell] never allocates an option. *)
exception Vm_unbound

let failf fmt = Format.kasprintf (fun msg -> raise (Tcl_failure msg)) fmt

(* Host-embedding hook: foreign exceptions (e.g. the toolkit's X protocol
   errors) raised inside command procedures are translated into ordinary
   Tcl errors instead of unwinding the evaluator. Newest-registered
   translator wins; [None] declines. *)
let exn_translators : (exn -> string option) list ref = ref []

let add_exn_translator f = exn_translators := f :: !exn_translators

let translate_exn e = List.find_map (fun f -> f e) !exn_translators

let wrong_args usage = failf "wrong # args: should be \"%s\"" usage

let ok v = (Tcl_ok, v)

type slot =
  | Scalar of Tval.t
  | Array_var of (string, string) Hashtbl.t
  | Link of frame * string

and frame = {
  vars : (string, slot) Hashtbl.t;
  mutable fgen : int;
      (* bumped on every structural change to [vars]; validates the VM's
         inline variable caches.  In-place writes to an existing Scalar
         cell do not bump — the cell stays the live binding. *)
  lnames : string array;
      (* VM local-slot names ([||] for frames made outside the VM) *)
  lcells : Tval.t option array;  (* parallel value cells; None = unset *)
}

(* Counters for the parse-once machinery, exported as tcl.compile.* by
   the toolkit's metrics registry. [parse_passes] counts every full scan
   of script text — one per compilation, one per legacy evaluation — so
   the cache's effect is directly visible as a drop in passes. *)
type compile_stats = {
  mutable script_hits : int;
  mutable script_misses : int;
  mutable script_evictions : int;
  mutable script_compiles : int;
  mutable expr_hits : int;
  mutable expr_misses : int;
  mutable expr_evictions : int;
  mutable expr_compiles : int;
  mutable parse_passes : int;
}

let fresh_stats () =
  {
    script_hits = 0;
    script_misses = 0;
    script_evictions = 0;
    script_compiles = 0;
    expr_hits = 0;
    expr_misses = 0;
    expr_evictions = 0;
    expr_compiles = 0;
    parse_passes = 0;
  }

(* ------------------------------------------------------------------ *)
(* Command signatures.

   A command may declare, alongside its implementation, what shape of
   call it accepts: arity bounds, a usage string (the same one its
   [wrong_args] raises, so lint and runtime share one source of truth),
   a subcommand table, recognized [-option] switches, which argument
   positions hold scripts, per-argument literal validators, and — for
   widget-creating commands — the widget class's own option and
   subcommand tables.  The registry is purely descriptive: dispatch
   never consults it.  The static checker ([Lint]) is its consumer. *)

type sub_sig = {
  sub_name : string;
  sub_min : int;  (* arguments after "cmd subcommand" *)
  sub_max : int;  (* -1 = unbounded *)
}

type widget_sig = {
  ws_class : string;  (* e.g. "Button" *)
  ws_options : string list;  (* configure switches, e.g. "-text" *)
  ws_subs : sub_sig list;  (* widget subcommands beyond configure/cget *)
}

type arg_check = {
  chk_arg : int;  (* 1-based argument index *)
  chk : string -> string option;  (* literal value -> error message *)
}

type signature = {
  sig_name : string;
  sig_usage : string;  (* body of the "wrong # args: should be" message *)
  sig_min : int;  (* arguments after the command name *)
  sig_max : int;  (* -1 = unbounded *)
  sig_subs : sub_sig list;
  sig_open_subs : bool;
      (* an unmatched first argument is legal (e.g. [send appName ...]):
         the analyzer only warns on near-miss subcommand spellings *)
  sig_options : string list;  (* leading -switches the command accepts *)
  sig_scripts : int list;  (* 1-based indices of script arguments *)
  sig_checks : arg_check list;
  sig_widget : widget_sig option;  (* set for widget-creating commands *)
}

let subsig ?(max = -1) name min = { sub_name = name; sub_min = min; sub_max = max }

let signature ?(max = -1) ?(subs = []) ?(open_subs = false) ?(options = [])
    ?(scripts = []) ?(checks = []) ?widget ~usage name min =
  {
    sig_name = name;
    sig_usage = usage;
    sig_min = min;
    sig_max = max;
    sig_subs = subs;
    sig_open_subs = open_subs;
    sig_options = options;
    sig_scripts = scripts;
    sig_checks = checks;
    sig_widget = widget;
  }

(* Render alternatives Tcl-style: "a", "a or b", "a, b, or c". *)
let alternatives names =
  match names with
  | [] -> ""
  | [ a ] -> a
  | [ a; b ] -> a ^ " or " ^ b
  | _ ->
    let rec go = function
      | [ last ] -> "or " ^ last
      | x :: rest -> x ^ ", " ^ go rest
      | [] -> ""
    in
    go names

type lint_stats = {
  mutable lint_runs : int;
  mutable lint_errors : int;
  mutable lint_warnings : int;
}

(* ------------------------------------------------------------------ *)
(* Resource limits, cancellation and isolation ("the guard").

   An interpreter may carry a time budget (milliseconds on a pluggable
   clock), a command-dispatch budget, and a pending asynchronous
   cancellation.  All three are checked at evaluation boundaries — script
   entry in both the reference and compiled evaluators, and every command
   dispatch — behind one [guard_active] boolean, so an unguarded
   interpreter pays a single flag test per boundary.  A tripped limit
   stays tripped until {!rearm_limits}: a runaway that swallows the first
   limit error dies again at the very next boundary. *)

type limit_kind = Limit_time | Limit_commands

(* Guard activity counters, exported as tcl.limit.* / tcl.interp.* by the
   toolkit's metrics registry.  The record is shared by reference between
   a master and every slave in its tree, so per-application metrics roll
   up the whole isolation tree. *)
type guard_stats = {
  mutable g_checks : int;  (* guard boundary checks performed *)
  mutable g_time_exceeded : int;
  mutable g_cmd_exceeded : int;
  mutable g_cancels : int;  (* cancellations requested *)
  mutable g_cancelled : int;  (* cancellation errors delivered *)
  mutable g_denied : int;  (* hidden-command invocations refused *)
  mutable g_recursion_exceeded : int;
  mutable g_creates : int;  (* slave interpreters created *)
  mutable g_deletes : int;  (* slave interpreters deleted *)
  mutable g_alias_calls : int;  (* alias invocations marshalled *)
}

let fresh_guard_stats () =
  {
    g_checks = 0;
    g_time_exceeded = 0;
    g_cmd_exceeded = 0;
    g_cancels = 0;
    g_cancelled = 0;
    g_denied = 0;
    g_recursion_exceeded = 0;
    g_creates = 0;
    g_deletes = 0;
    g_alias_calls = 0;
  }

(* Counters for the bytecode VM, exported as tcl.vm.* by the toolkit's
   metrics registry. *)
type vm_stats = {
  mutable v_compiled : int;  (* programs/proc bodies lowered *)
  mutable v_deopts : int;  (* inlined opcodes that fell back to dispatch *)
  mutable v_slot_hits : int;  (* variable reads/writes served by a slot
                                 or a valid inline cache *)
  mutable v_seeded : int;  (* procs lowered with analyzer kind seeds *)
  mutable v_seed_primed : int;  (* argument reps primed at bind time *)
}

type t = {
  commands : (string, cmd_def) Hashtbl.t;
  signatures : (string, signature) Hashtbl.t;
  lint : lint_stats;
  global_frame : frame;
  mutable stack : frame list; (* non-global frames, innermost first *)
  mutable depth : int; (* current eval nesting, for runaway recursion *)
  mutable cmd_count : int;
  mutable out : string -> unit;
  mutable error_in_progress : bool;
      (* an error is unwinding: errorInfo accumulates context lines *)
  mutable history_recording : bool;
  mutable history : (int * string) list; (* newest first *)
  mutable history_next : int;
  mutable compile_enabled : bool;
      (* parse-once mode: scripts and exprs run from cached compiled
         forms; off = the reference character-at-a-time evaluator *)
  script_cache : (string, script_entry) Hashtbl.t;
  expr_cache : (string, expr_entry) Hashtbl.t;
  mutable cache_tick : int; (* LRU clock for both caches *)
  stats : compile_stats;
  mutable time_source : (unit -> float) option;
      (* pluggable clock for [time] (seconds); None = Sys.time *)
  (* --- isolation tree --- *)
  slaves : (string, t) Hashtbl.t;
  hidden : (string, cmd_def) Hashtbl.t;
      (* commands moved out of dispatch reach (hide/expose/invokehidden);
         invoking one by name is a counted denial, not an unknown *)
  aliases : (string, string) Hashtbl.t;
      (* alias name -> rendered target spec, for [interp aliases] *)
  mutable safe : bool;
  (* --- limits / cancellation --- *)
  mutable recursionlimit : int;
  mutable guard_active : bool;
      (* fast flag: some limit or cancellation needs checking at eval
         boundaries; false = one boolean test per boundary *)
  mutable limit_time_ms : int; (* time budget in ms; 0 = unlimited *)
  mutable limit_deadline_ms : int; (* absolute, on the limit clock *)
  mutable limit_granularity : int; (* boundaries per deadline read *)
  mutable limit_countdown : int;
  mutable limit_cmds : int; (* command-dispatch budget; 0 = unlimited *)
  mutable limit_cmds_left : int;
  mutable tripped : limit_kind option;
  mutable limit_clock : (unit -> int) option;
      (* milliseconds; None falls back to [current_time] — the toolkit
         points this at the event dispatcher's clock *)
  mutable cancel_request : (string * bool) option; (* message, unwind *)
  mutable unwinding : bool;
      (* a limit or unwinding-cancel error is propagating: [catch] must
         let it through instead of stopping it *)
  mutable guard : guard_stats; (* shared by reference across the tree *)
  (* --- bytecode VM --- *)
  mutable vm_enabled : bool;
      (* run lowered opcodes when possible (default on); off = the
         compiled word-template path — the benchmark ablation's -no-vm *)
  mutable vm_canon : bool;
      (* the ten structural builtins are still the canonical ones
         snapshotted by [mark_canonical]: inlined opcodes may bypass
         dispatch.  Recomputed on every command-table mutation. *)
  mutable vm_canon_defs : (string * cmd_def) list;
  mutable vm_lastcmd : (string * cmd_def) option;
      (* one-entry dispatch cache for VM command words, keyed by the
         *physical* name string (lowered literals are interned in the
         code); cleared on every command-table mutation *)
  mutable vm_xval : Expr.value option;
      (* typed-result side channel: a bracketed [expr] reaching the VM
         leaves its numeric value here so the enclosing expression can
         skip the string round-trip; None whenever no typed producer
         ran (consumers then parse the string result as before) *)
  vm : vm_stats;
  kind_seeds : (string, (string * Vm.kind) list) Hashtbl.t;
      (* per-proc formal kinds proven by the analyzer (Lint.o_facts),
         applied as Vm.lower_proc seeds on the next lowering *)
}

and command = t -> string list -> result

and cmd_def =
  | Builtin of command
  | Proc of proc_def

and proc_def = {
  formals : (string * string option) list;
  body : string;
  mutable pcode : Compile.program option;
      (* compiled at definition time (or lazily on first call); always
         derived from [body], so redefinition replaces it atomically *)
  mutable pvm : frame Vm.code option;
      (* lowered on first VM call; like [pcode], derived from [body] *)
  mutable pframes : frame list;
      (* pool of call frames for reuse, bounded by recursion depth: only
         frames that never spilled into their hashtable (fgen = 0, so no
         inline cache or link can reference them) are returned here,
         with their slot cells wiped *)
}

and script_entry = {
  code : Compile.program;
  mutable s_vm : frame Vm.code option;  (* lowered on first VM run *)
  mutable s_tick : int;
}

and expr_entry = {
  east : Expr.ast option;
      (* None: the pure parser rejected it — always fall back to the
         interleaved evaluator, which reproduces mid-substitution
         side effects before the syntax error *)
  mutable e_tick : int;
}

let default_recursion_limit = 1000

let new_frame () =
  { vars = Hashtbl.create 16; fgen = 0; lnames = [||]; lcells = [||] }

(* A frame for a VM-compiled procedure: its local variables live in the
   cell array, addressed by slot index, until something structural (an
   upvar link, an array, a variable outside the compiled set) spills
   into the hashtable and bumps [fgen]. *)
let vm_frame lnames =
  {
    (* Most VM frames never spill a binding: start the table tiny. *)
    vars = Hashtbl.create 1;
    fgen = 0;
    lnames;
    lcells = Array.make (Array.length lnames) None;
  }

let bump_fgen f = f.fgen <- f.fgen + 1

(* What the caller does with a VM result's Tcl_ok value.  [Vdiscard]
   (loop bodies, non-final commands of a block) lets inlined opcodes
   skip rendering the result string; [Vtyped] (a bracketed [expr \[...\]]
   operand) additionally lets a final expr leave its numeric value in
   [vm_xval], skipping the string round-trip entirely.  Error values
   are never affected. *)
type wantv = Vdiscard | Vstring | Vtyped

(* Index of [name] in the frame's local-slot table, or -1.  A top-level
   recursion, not a local one: this runs on every formal bind and a
   local [rec] would allocate its closure each call. *)
let rec local_slot_from lnames name n i =
  if i >= n then -1
  else if String.equal (Array.unsafe_get lnames i) name then i
  else local_slot_from lnames name n (i + 1)

let local_slot f name =
  local_slot_from f.lnames name (Array.length f.lnames) 0

let create () =
  {
    commands = Hashtbl.create 64;
    signatures = Hashtbl.create 64;
    lint = { lint_runs = 0; lint_errors = 0; lint_warnings = 0 };
    global_frame = new_frame ();
    stack = [];
    depth = 0;
    cmd_count = 0;
    out = print_string;
    error_in_progress = false;
    history_recording = false;
    history = [];
    history_next = 1;
    compile_enabled = true;
    script_cache = Hashtbl.create 64;
    expr_cache = Hashtbl.create 64;
    cache_tick = 0;
    stats = fresh_stats ();
    time_source = None;
    slaves = Hashtbl.create 4;
    hidden = Hashtbl.create 8;
    aliases = Hashtbl.create 8;
    safe = false;
    recursionlimit = default_recursion_limit;
    guard_active = false;
    limit_time_ms = 0;
    limit_deadline_ms = 0;
    limit_granularity = 1;
    limit_countdown = 1;
    limit_cmds = 0;
    limit_cmds_left = 0;
    tripped = None;
    limit_clock = None;
    cancel_request = None;
    unwinding = false;
    guard = fresh_guard_stats ();
    vm_enabled = true;
    vm_canon = false;
    vm_canon_defs = [];
    vm_lastcmd = None;
    vm_xval = None;
    vm =
      {
        v_compiled = 0;
        v_deopts = 0;
        v_slot_hits = 0;
        v_seeded = 0;
        v_seed_primed = 0;
      };
    kind_seeds = Hashtbl.create 8;
  }

let current_frame t =
  match t.stack with [] -> t.global_frame | f :: _ -> f

let current_level t = List.length t.stack

(* Frame at absolute level: 0 = global, [current_level] = innermost. *)
let frame_at t level =
  let cur = current_level t in
  if level < 0 || level > cur then None
  else if level = 0 then Some t.global_frame
  else List.nth_opt t.stack (cur - level)

let parse_level t spec =
  let cur = current_level t in
  let abs =
    if String.length spec > 0 && spec.[0] = '#' then
      int_of_string_opt (String.sub spec 1 (String.length spec - 1))
    else
      match int_of_string_opt spec with
      | Some d -> Some (cur - d)
      | None -> None
  in
  match abs with
  | Some l when l >= 0 && l <= cur -> Some l
  | _ -> None

let with_level t level thunk =
  let saved = t.stack in
  let cur = current_level t in
  if level < 0 || level > cur then failf "bad level %d" level;
  t.stack <-
    (if level = 0 then []
     else
       (* Drop the innermost (cur - level) frames. *)
       let rec drop n l = if n = 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl in
       drop (cur - level) saved);
  Fun.protect ~finally:(fun () -> t.stack <- saved) thunk

(* ------------------------------------------------------------------ *)
(* Variables *)

(* Split "a(i)" into (base, Some index). *)
let split_array_name name =
  let n = String.length name in
  if n > 1 && name.[n - 1] = ')' then
    match String.index_opt name '(' with
    | Some i when i > 0 -> Some (String.sub name 0 i, String.sub name (i + 1) (n - i - 2))
    | _ -> None
  else None

(* Follow upvar links to the frame/name that actually stores the value.
   A link's target may itself be an array element ("upvar a(k) v"), so the
   resolved name is re-examined for array syntax by the callers. *)
let rec resolve frame name =
  match split_array_name name with
  | Some _ -> (frame, name) (* array refs resolve their base separately *)
  | None -> (
    match Hashtbl.find_opt frame.vars name with
    | Some (Link (f, n)) -> resolve f n
    | _ -> (frame, name))

let rec get_var_in frame name =
  let frame, name = resolve frame name in
  match split_array_name name with
  | Some (base, idx) -> (
    let bframe, base = resolve frame base in
    match Hashtbl.find_opt bframe.vars base with
    | Some (Array_var h) -> Hashtbl.find_opt h idx
    | _ -> None)
  | None -> (
    match Hashtbl.find_opt frame.vars name with
    | Some (Scalar v) -> Some (Tval.to_string v)
    | Some (Link (f, n)) -> get_var_in f n
    | Some (Array_var _) -> None
    | None -> (
      match local_slot frame name with
      | -1 -> None
      | i -> Option.map Tval.to_string frame.lcells.(i)))

let get_var t name = get_var_in (current_frame t) name

let get_var_exn t name =
  match get_var t name with
  | Some v -> v
  | None -> failf "can't read \"%s\": no such variable" name

let set_var t name value =
  let frame, name = resolve (current_frame t) name in
  match split_array_name name with
  | Some (base, idx) -> (
    let frame, base = resolve frame base in
    match Hashtbl.find_opt frame.vars base with
    | Some (Array_var h) -> Hashtbl.replace h idx value
    | Some (Scalar _) ->
      failf "can't set \"%s\": variable isn't array" name
    | Some (Link _) | None ->
      (match local_slot frame base with
      | i when i >= 0 && frame.lcells.(i) <> None ->
        failf "can't set \"%s\": variable isn't array" name
      | _ -> ());
      let h = Hashtbl.create 8 in
      Hashtbl.replace h idx value;
      Hashtbl.replace frame.vars base (Array_var h);
      bump_fgen frame)
  | None -> (
    match Hashtbl.find_opt frame.vars name with
    | Some (Array_var _) -> failf "can't set \"%s\": variable is array" name
    | Some (Scalar cell) -> Tval.set_string cell value
    | Some (Link _) ->
      Hashtbl.replace frame.vars name (Scalar (Tval.of_string value));
      bump_fgen frame
    | None -> (
      match local_slot frame name with
      | -1 ->
        Hashtbl.replace frame.vars name (Scalar (Tval.of_string value));
        bump_fgen frame
      | i -> (
        match frame.lcells.(i) with
        | Some cell -> Tval.set_string cell value
        | None -> frame.lcells.(i) <- Some (Tval.of_string value))))

let unset_var t name =
  let frame = current_frame t in
  match split_array_name name with
  | Some (base, idx) -> (
    let frame, base = resolve frame base in
    match Hashtbl.find_opt frame.vars base with
    | Some (Array_var h) when Hashtbl.mem h idx ->
      Hashtbl.remove h idx;
      true
    | _ -> false)
  | None when (match Hashtbl.find_opt frame.vars name with
              | Some (Link _) -> (
                match resolve frame name with
                | _, resolved -> split_array_name resolved <> None)
              | _ -> false) ->
    (* A link to an array element: unset the element, drop the link. *)
    let tframe, target = resolve frame name in
    Hashtbl.remove frame.vars name;
    bump_fgen frame;
    (match split_array_name target with
    | Some (base, idx) -> (
      let bframe, base = resolve tframe base in
      match Hashtbl.find_opt bframe.vars base with
      | Some (Array_var h) -> Hashtbl.remove h idx
      | _ -> ())
    | None -> ());
    true
  | None ->
    (* Remove the link itself if the local name is a link; otherwise remove
       the resolved variable. *)
    if Hashtbl.mem frame.vars name then begin
      (match Hashtbl.find_opt frame.vars name with
      | Some (Link (f, n)) ->
        Hashtbl.remove frame.vars name;
        bump_fgen frame;
        let f, n = resolve f n in
        if Hashtbl.mem f.vars n then begin
          Hashtbl.remove f.vars n;
          bump_fgen f
        end
        else (
          match local_slot f n with
          | i when i >= 0 -> f.lcells.(i) <- None
          | _ -> ())
      | Some _ ->
        Hashtbl.remove frame.vars name;
        bump_fgen frame
      | None -> ());
      true
    end
    else (
      match local_slot frame name with
      | i when i >= 0 && frame.lcells.(i) <> None ->
        frame.lcells.(i) <- None;
        true
      | _ -> false)

let var_names t ~local ~global =
  let collect frame =
    let cells = ref [] in
    Array.iteri
      (fun i n -> if frame.lcells.(i) <> None then cells := n :: !cells)
      frame.lnames;
    Hashtbl.fold (fun k _ acc -> k :: acc) frame.vars !cells
  in
  let locals = if local then collect (current_frame t) else [] in
  let globals = if global then collect t.global_frame else [] in
  List.sort_uniq String.compare (locals @ globals)

let array_names t name =
  let frame, name = resolve (current_frame t) name in
  match Hashtbl.find_opt frame.vars name with
  | Some (Array_var h) ->
    Some (List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) h []))
  | _ -> None

let link_var t ~target_level ~target ~local =
  match frame_at t target_level with
  | None -> failf "bad level \"#%d\"" target_level
  | Some target_frame ->
    let frame = current_frame t in
    if frame == target_frame && target = local then ()
    else begin
      (* The link shadows (and discards) any VM local cell of that name,
         exactly as replacing a hashtable binding used to. *)
      (match local_slot frame local with
      | i when i >= 0 -> frame.lcells.(i) <- None
      | _ -> ());
      Hashtbl.replace frame.vars local (Link (target_frame, target));
      bump_fgen frame
    end

(* ------------------------------------------------------------------ *)
(* Commands *)

(* The structural commands the VM may inline.  [mark_canonical]
   (called once the builtins are installed) snapshots their
   definitions; any later mutation of the command table recomputes
   [vm_canon] by physical comparison, so redefining, renaming, hiding
   or shadowing one of these immediately routes inlined opcodes back
   through ordinary dispatch. *)
let vm_inline_names =
  [ "set"; "incr"; "expr"; "if"; "while"; "for"; "foreach"; "return";
    "break"; "continue" ]

let refresh_canon t =
  t.vm_lastcmd <- None;
  t.vm_canon <-
    t.vm_canon_defs <> []
    && List.for_all
         (fun (n, d) ->
           match Hashtbl.find_opt t.commands n with
           | Some d' -> d' == d
           | None -> false)
         t.vm_canon_defs

let mark_canonical t =
  t.vm_canon_defs <-
    List.filter_map
      (fun n ->
        Option.map (fun d -> (n, d)) (Hashtbl.find_opt t.commands n))
      vm_inline_names;
  refresh_canon t

let register t name cmd =
  Hashtbl.replace t.commands name (Builtin cmd);
  refresh_canon t

let register_value t name f =
  register t name (fun t words -> ok (f t words))

let register_signature t s = Hashtbl.replace t.signatures s.sig_name s

let signature_of t name = Hashtbl.find_opt t.signatures name

let signature_names t =
  List.sort String.compare
    (Hashtbl.fold (fun k _ acc -> k :: acc) t.signatures [])

let usage_of t name =
  Option.map (fun s -> s.sig_usage) (signature_of t name)

(* Registry-driven replacements for ad-hoc arity/option failures, so the
   runtime raises the exact message lint predicts. *)
let wrong_args_for t name =
  match usage_of t name with
  | Some usage -> wrong_args usage
  | None -> failf "wrong # args for \"%s\"" name

let bad_subcommand t ~cmd sub =
  match signature_of t cmd with
  | Some s when s.sig_subs <> [] ->
    let names =
      List.sort String.compare (List.map (fun x -> x.sub_name) s.sig_subs)
    in
    failf "bad option \"%s\": should be %s" sub (alternatives names)
  | _ -> failf "bad option \"%s\" to %s" sub cmd

let note_lint t ~errors ~warnings =
  t.lint.lint_runs <- t.lint.lint_runs + 1;
  t.lint.lint_errors <- t.lint.lint_errors + errors;
  t.lint.lint_warnings <- t.lint.lint_warnings + warnings

let reset_lint_stats t =
  t.lint.lint_runs <- 0;
  t.lint.lint_errors <- 0;
  t.lint.lint_warnings <- 0

let lint_stats t =
  [
    ("runs", string_of_int t.lint.lint_runs);
    ("errors", string_of_int t.lint.lint_errors);
    ("warnings", string_of_int t.lint.lint_warnings);
  ]

(* Compile a script, counting the pass. *)
let compile_counted t src =
  t.stats.script_compiles <- t.stats.script_compiles + 1;
  t.stats.parse_passes <- t.stats.parse_passes + 1;
  Compile.compile src

let define_proc t name formals body =
  let p = { formals; body; pcode = None; pvm = None; pframes = [] } in
  (* Parse the body once at definition time; a redefinition installs a
     fresh record, so stale code cannot survive. *)
  if t.compile_enabled then p.pcode <- Some (compile_counted t body);
  Hashtbl.replace t.commands name (Proc p);
  refresh_canon t

let proc_info t name =
  match Hashtbl.find_opt t.commands name with
  | Some (Proc p) -> Some (p.formals, p.body)
  | _ -> None

let delete_command t name =
  if Hashtbl.mem t.commands name then begin
    Hashtbl.remove t.commands name;
    refresh_canon t;
    true
  end
  else false

let rename_command t old_name new_name =
  match Hashtbl.find_opt t.commands old_name with
  | None ->
    Stdlib.Error
      (Printf.sprintf "can't rename \"%s\": command doesn't exist" old_name)
  | Some def ->
    Hashtbl.remove t.commands old_name;
    if new_name <> "" then Hashtbl.replace t.commands new_name def;
    refresh_canon t;
    Stdlib.Ok ()

let command_exists t name = Hashtbl.mem t.commands name

let command_names t =
  List.sort String.compare
    (Hashtbl.fold (fun k _ acc -> k :: acc) t.commands [])

let proc_names t =
  List.sort String.compare
    (Hashtbl.fold
       (fun k def acc -> match def with Proc _ -> k :: acc | Builtin _ -> acc)
       t.commands [])

let set_output t f = t.out <- f

let mark_error_handled t = t.error_in_progress <- false

let history_limit = 100

let set_history_recording t flag = t.history_recording <- flag

let record_history_event t script =
  if t.history_recording && String.trim script <> "" then begin
    t.history <- (t.history_next, script) :: t.history;
    t.history_next <- t.history_next + 1;
    (* Keep a bounded window, like Tcl's "history keep". *)
    if List.length t.history > history_limit then
      t.history <- List.filteri (fun i _ -> i < history_limit) t.history
  end

let history_events t = List.rev t.history

let history_event t n = List.assoc_opt n t.history

(* errorInfo lives in the global frame, like in real Tcl. *)
let set_error_info t text =
  let f = t.global_frame in
  match Hashtbl.find_opt f.vars "errorInfo" with
  | Some (Scalar cell) -> Tval.set_string cell text
  | _ ->
    Hashtbl.replace f.vars "errorInfo" (Scalar (Tval.of_string text));
    bump_fgen f

let get_error_info t =
  match Hashtbl.find_opt t.global_frame.vars "errorInfo" with
  | Some (Scalar v) -> Tval.to_string v
  | _ -> ""

(* Record one level of error context: the command whose evaluation
   produced (or propagated) the error. *)
let trace_error t ~command msg =
  let command =
    let c = String.trim command in
    if String.length c > 150 then String.sub c 0 147 ^ "..." else c
  in
  if not t.error_in_progress then begin
    t.error_in_progress <- true;
    set_error_info t msg
  end;
  set_error_info t
    (get_error_info t ^ "\n    while executing\n\"" ^ command ^ "\"")

let output t s = t.out s

let command_count t = t.cmd_count

(* ------------------------------------------------------------------ *)
(* Compiled-script and expression caches.

   Both caches are keyed by the source string alone: compilation is
   purely syntactic (see Compile), so entries never go stale and
   invalidation reduces to LRU eviction. Recency is a shared tick; when
   a cache is full the entry with the smallest tick is scanned out
   (O(n), but only on eviction at the bounded size). *)

let cache_limit = 512

let bump_tick t =
  t.cache_tick <- t.cache_tick + 1;
  t.cache_tick

let evict_oldest (type a) (tbl : (string, a) Hashtbl.t) (tick_of : a -> int) =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, best) when best <= tick_of e -> ()
      | _ -> victim := Some (k, tick_of e))
    tbl;
  match !victim with
  | Some (k, _) ->
    Hashtbl.remove tbl k;
    true
  | None -> false

let script_entry_for t src =
  match Hashtbl.find_opt t.script_cache src with
  | Some e ->
    t.stats.script_hits <- t.stats.script_hits + 1;
    e.s_tick <- bump_tick t;
    e
  | None ->
    t.stats.script_misses <- t.stats.script_misses + 1;
    (if Hashtbl.length t.script_cache >= cache_limit then
       if evict_oldest t.script_cache (fun e -> e.s_tick) then
         t.stats.script_evictions <- t.stats.script_evictions + 1);
    let code = compile_counted t src in
    let e = { code; s_vm = None; s_tick = bump_tick t } in
    Hashtbl.add t.script_cache src e;
    e

let cached_expr_ast t src =
  match Hashtbl.find_opt t.expr_cache src with
  | Some e ->
    t.stats.expr_hits <- t.stats.expr_hits + 1;
    e.e_tick <- bump_tick t;
    e.east
  | None ->
    t.stats.expr_misses <- t.stats.expr_misses + 1;
    (if Hashtbl.length t.expr_cache >= cache_limit then
       if evict_oldest t.expr_cache (fun e -> e.e_tick) then
         t.stats.expr_evictions <- t.stats.expr_evictions + 1);
    t.stats.expr_compiles <- t.stats.expr_compiles + 1;
    let east =
      match Expr.parse src with Ok a -> Some a | Error _ -> None
    in
    Hashtbl.add t.expr_cache src { east; e_tick = bump_tick t };
    east

let set_compile_enabled t flag = t.compile_enabled <- flag

let compile_enabled t = t.compile_enabled

let set_vm_enabled t flag = t.vm_enabled <- flag

let vm_enabled t = t.vm_enabled

let reset_vm_stats t =
  t.vm.v_compiled <- 0;
  t.vm.v_deopts <- 0;
  t.vm.v_slot_hits <- 0;
  t.vm.v_seeded <- 0;
  t.vm.v_seed_primed <- 0

let vm_stats t =
  [
    ("enabled", if t.vm_enabled then "1" else "0");
    ("canonical", if t.vm_canon then "1" else "0");
    ("compiled", string_of_int t.vm.v_compiled);
    ("deopts", string_of_int t.vm.v_deopts);
    ("slot_hits", string_of_int t.vm.v_slot_hits);
    ("seeded", string_of_int t.vm.v_seeded);
    ("seed_primed", string_of_int t.vm.v_seed_primed);
  ]

let seed_proc_kinds t name facts =
  if facts = [] then Hashtbl.remove t.kind_seeds name
  else Hashtbl.replace t.kind_seeds name facts;
  (* A proc already lowered relowers with the seed on its next call. *)
  match Hashtbl.find_opt t.commands name with
  | Some (Proc p) -> p.pvm <- None
  | _ -> ()

let clear_compile_caches t =
  Hashtbl.reset t.script_cache;
  Hashtbl.reset t.expr_cache

let reset_compile_stats t =
  let s = t.stats in
  s.script_hits <- 0;
  s.script_misses <- 0;
  s.script_evictions <- 0;
  s.script_compiles <- 0;
  s.expr_hits <- 0;
  s.expr_misses <- 0;
  s.expr_evictions <- 0;
  s.expr_compiles <- 0;
  s.parse_passes <- 0

let compile_stats t =
  let s = t.stats in
  [
    ("enabled", if t.compile_enabled then "1" else "0");
    ("script_cache_size", string_of_int (Hashtbl.length t.script_cache));
    ("script_hits", string_of_int s.script_hits);
    ("script_misses", string_of_int s.script_misses);
    ("script_evictions", string_of_int s.script_evictions);
    ("script_compiles", string_of_int s.script_compiles);
    ("expr_cache_size", string_of_int (Hashtbl.length t.expr_cache));
    ("expr_hits", string_of_int s.expr_hits);
    ("expr_misses", string_of_int s.expr_misses);
    ("expr_evictions", string_of_int s.expr_evictions);
    ("expr_compiles", string_of_int s.expr_compiles);
    ("parse_passes", string_of_int s.parse_passes);
  ]

let set_time_source t f = t.time_source <- f

let current_time t =
  match t.time_source with Some f -> f () | None -> Sys.time ()

(* ------------------------------------------------------------------ *)
(* Resource limits and cancellation *)

let recursion_limit t = t.recursionlimit

let set_recursion_limit t n =
  if n < 1 then failf "recursionlimit must be at least 1"
  else t.recursionlimit <- n

let set_limit_clock t f = t.limit_clock <- f

let limit_clock t = t.limit_clock

let limit_now t =
  match t.limit_clock with
  | Some f -> f ()
  | None -> int_of_float (current_time t *. 1000.0)

let recompute_guard t =
  t.guard_active <-
    t.limit_time_ms > 0 || t.limit_cmds > 0 || t.tripped <> None
    || t.cancel_request <> None

(* Re-arm every configured budget and clear the tripped state: the time
   deadline restarts from now, the command budget refills.  This is the
   only way out of a tripped limit. *)
let rearm_limits t =
  t.tripped <- None;
  t.limit_cmds_left <- t.limit_cmds;
  t.limit_countdown <- t.limit_granularity;
  if t.limit_time_ms > 0 then
    t.limit_deadline_ms <- limit_now t + t.limit_time_ms;
  recompute_guard t

let set_time_limit ?(granularity = 1) t ms =
  if ms < 0 then failf "time limit must be a non-negative integer"
  else if granularity < 1 then failf "granularity must be at least 1"
  else begin
    t.limit_time_ms <- ms;
    t.limit_granularity <- granularity;
    rearm_limits t
  end

let set_command_limit t n =
  if n < 0 then failf "command limit must be a non-negative integer"
  else begin
    t.limit_cmds <- n;
    rearm_limits t
  end

let time_limit t = t.limit_time_ms

let time_limit_granularity t = t.limit_granularity

let command_limit t = t.limit_cmds

let limit_tripped t = t.tripped

let limit_message = function
  | Limit_time -> "time limit exceeded"
  | Limit_commands -> "command count limit exceeded"

let cancel ?(unwind = false) ?message t =
  let msg =
    match message with
    | Some m -> m
    | None -> if unwind then "eval unwound" else "eval canceled"
  in
  t.cancel_request <- Some (msg, unwind);
  t.guard.g_cancels <- t.guard.g_cancels + 1;
  recompute_guard t

let cancel_pending t = t.cancel_request <> None

let unwinding t = t.unwinding

(* For hosts that surface a limit/unwind error as a value (e.g. a send
   reply) rather than letting it propagate: once delivered, the error
   is ordinary again and [catch] must work. *)
let clear_unwinding t = t.unwinding <- false

let denied_count t = t.guard.g_denied

(* One boundary check.  Callers test [guard_active] first, so this only
   runs when some limit or cancellation is armed.  [spend] is true for a
   command dispatch (which consumes command budget); script-entry checks
   pass false.  Returns the error message when evaluation must abort. *)
let guard_check t ~spend =
  match t.tripped with
  | Some k ->
    t.unwinding <- true;
    Some (limit_message k)
  | None -> (
    match t.cancel_request with
    | Some (msg, unwind) ->
      (* Cancellation is one-shot: delivered here, consumed.  Plain
         cancels are catchable (the script may clean up); -unwind ones
         propagate through catch like limit errors. *)
      t.cancel_request <- None;
      t.unwinding <- unwind;
      t.guard.g_cancelled <- t.guard.g_cancelled + 1;
      recompute_guard t;
      Some msg
    | None ->
      let trip k =
        t.tripped <- Some k;
        t.unwinding <- true;
        (match k with
        | Limit_time -> t.guard.g_time_exceeded <- t.guard.g_time_exceeded + 1
        | Limit_commands ->
          t.guard.g_cmd_exceeded <- t.guard.g_cmd_exceeded + 1);
        Some (limit_message k)
      in
      t.guard.g_checks <- t.guard.g_checks + 1;
      let cmd_hit =
        spend && t.limit_cmds > 0
        && begin
             t.limit_cmds_left <- t.limit_cmds_left - 1;
             t.limit_cmds_left < 0
           end
      in
      if cmd_hit then trip Limit_commands
      else if t.limit_time_ms > 0 then begin
        t.limit_countdown <- t.limit_countdown - 1;
        if t.limit_countdown <= 0 then begin
          t.limit_countdown <- t.limit_granularity;
          if limit_now t >= t.limit_deadline_ms then trip Limit_time
          else None
        end
        else None
      end
      else None)

(* ------------------------------------------------------------------ *)
(* Slave interpreters, hidden commands, aliases *)

let is_safe t = t.safe

let set_safe t flag = t.safe <- flag

let find_slave t name = Hashtbl.find_opt t.slaves name

let slave_names t =
  List.sort String.compare
    (Hashtbl.fold (fun k _ acc -> k :: acc) t.slaves [])

let add_slave t name slave =
  (* Guard stats are shared down the tree so an application's metrics see
     slave activity without walking the tree on every snapshot. *)
  slave.guard <- t.guard;
  Hashtbl.replace t.slaves name slave;
  t.guard.g_creates <- t.guard.g_creates + 1

let rec delete_slave t name =
  match Hashtbl.find_opt t.slaves name with
  | None -> false
  | Some s ->
    (* Recursive teardown: a master owns its whole subtree. *)
    List.iter (fun n -> ignore (delete_slave s n)) (slave_names s);
    Hashtbl.remove t.slaves name;
    t.guard.g_deletes <- t.guard.g_deletes + 1;
    true

let rec count_slaves t =
  Hashtbl.fold (fun _ s acc -> acc + 1 + count_slaves s) t.slaves 0

let rec count_safe_slaves t =
  Hashtbl.fold
    (fun _ s acc ->
      acc + (if s.safe then 1 else 0) + count_safe_slaves s)
    t.slaves 0

let hide_command t name =
  match Hashtbl.find_opt t.commands name with
  | None ->
    Stdlib.Error (Printf.sprintf "unknown command \"%s\"" name)
  | Some def ->
    if Hashtbl.mem t.hidden name then
      Stdlib.Error
        (Printf.sprintf "hidden command named \"%s\" already exists" name)
    else begin
      Hashtbl.remove t.commands name;
      Hashtbl.replace t.hidden name def;
      refresh_canon t;
      Stdlib.Ok ()
    end

let expose_command ?as_name t name =
  let exposed = Option.value as_name ~default:name in
  match Hashtbl.find_opt t.hidden name with
  | None ->
    Stdlib.Error (Printf.sprintf "unknown hidden command \"%s\"" name)
  | Some def ->
    if Hashtbl.mem t.commands exposed then
      Stdlib.Error
        (Printf.sprintf "exposed command \"%s\" already exists" exposed)
    else begin
      Hashtbl.remove t.hidden name;
      Hashtbl.replace t.commands exposed def;
      refresh_canon t;
      Stdlib.Ok ()
    end

let hidden_names t =
  List.sort String.compare
    (Hashtbl.fold (fun k _ acc -> k :: acc) t.hidden [])

let note_alias t name target = Hashtbl.replace t.aliases name target

let drop_alias t name = Hashtbl.remove t.aliases name

let alias_target t name = Hashtbl.find_opt t.aliases name

let alias_names t =
  List.sort String.compare
    (Hashtbl.fold (fun k _ acc -> k :: acc) t.aliases [])

let count_alias_call t = t.guard.g_alias_calls <- t.guard.g_alias_calls + 1

(* ------------------------------------------------------------------ *)
(* Guard metrics exports *)

let reset_guard_stats t =
  let g = t.guard in
  g.g_checks <- 0;
  g.g_time_exceeded <- 0;
  g.g_cmd_exceeded <- 0;
  g.g_cancels <- 0;
  g.g_cancelled <- 0;
  g.g_denied <- 0;
  g.g_recursion_exceeded <- 0;
  g.g_creates <- 0;
  g.g_deletes <- 0;
  g.g_alias_calls <- 0

let limit_stats t =
  let g = t.guard in
  [
    ("checks", string_of_int g.g_checks);
    ("time_exceeded", string_of_int g.g_time_exceeded);
    ("cmd_exceeded", string_of_int g.g_cmd_exceeded);
    ("cancels", string_of_int g.g_cancels);
    ("cancelled", string_of_int g.g_cancelled);
    ("denied", string_of_int g.g_denied);
    ("recursion_exceeded", string_of_int g.g_recursion_exceeded);
  ]

let interp_stats t =
  let g = t.guard in
  [
    ("slaves", string_of_int (count_slaves t));
    ("safe_slaves", string_of_int (count_safe_slaves t));
    ("creates", string_of_int g.g_creates);
    ("deletes", string_of_int g.g_deletes);
    ("alias_calls", string_of_int g.g_alias_calls);
    ("recursionlimit", string_of_int t.recursionlimit);
    ("time_limit_ms", string_of_int t.limit_time_ms);
    ("command_limit", string_of_int t.limit_cmds);
  ]

(* ------------------------------------------------------------------ *)
(* Parser / evaluator *)

let is_sep c = Chars.is_space c

let skip_separators = Chars.skip_separators

let skip_comment = Chars.skip_comment

(* Evaluate [src] starting at [pos]. In [bracket] mode, evaluation stops at
   the first unmatched ']' (command substitution); the returned position is
   just after it. Returns (status, value, next position). *)
let rec eval_in t src pos ~bracket =
  let n = String.length src in
  if t.depth = 0 then begin
    t.error_in_progress <- false;
    t.unwinding <- false
  end;
  if t.depth > t.recursionlimit then begin
    t.guard.g_recursion_exceeded <- t.guard.g_recursion_exceeded + 1;
    (Tcl_error, "too many nested evaluations (infinite loop?)", n)
  end
  else begin
    (* Script-entry boundary: catches runaways (e.g. [while 1 {}]) whose
       bodies never dispatch a command.  No command budget is spent. *)
    match if t.guard_active then guard_check t ~spend:false else None with
    | Some msg -> (Tcl_error, msg, n)
    | None ->
    t.depth <- t.depth + 1;
    let finally () = t.depth <- t.depth - 1 in
    match eval_loop t src n pos ~bracket (Tcl_ok, "") with
    | res ->
      finally ();
      res
    | exception e ->
      finally ();
      raise e
  end

and eval_loop t src n pos ~bracket last =
  let pos = skip_separators src n pos in
  if pos >= n then
    let status, v = last in
    (status, v, pos)
  else if bracket && src.[pos] = ']' then
    let status, v = last in
    (status, v, pos + 1)
  else if src.[pos] = '#' then
    eval_loop t src n (skip_comment src n pos) ~bracket last
  else
    match parse_and_run t src n pos ~bracket with
    | Tcl_ok, v, next -> eval_loop t src n next ~bracket (Tcl_ok, v)
    | (status, v, next) -> (status, v, next)

(* Parse the words of one command (performing substitutions), then invoke
   it. *)
and parse_and_run t src n pos ~bracket =
  match parse_words t src n pos ~bracket [] with
  | exception Propagate (status, v) -> (status, v, n)
  | exception Tcl_failure msg ->
    if not t.error_in_progress then begin
      t.error_in_progress <- true;
      set_error_info t msg
    end;
    (Tcl_error, msg, n)
  | words, next ->
    if words = [] then (Tcl_ok, "", next)
    else
      let status, v = invoke t words in
      (if status = Tcl_error then
         let stop = min next n in
         trace_error t ~command:(String.sub src pos (stop - pos)) v);
      (status, v, next)

and parse_words t src n pos ~bracket acc =
  let pos = ref pos in
  (* Skip word separators; a backslash-newline counts as one. *)
  let rec skip () =
    if !pos < n && is_sep src.[!pos] then begin
      incr pos;
      skip ()
    end
    else if !pos + 1 < n && src.[!pos] = '\\' && src.[!pos + 1] = '\n' then begin
      let _, j = Chars.backslash_subst src !pos in
      pos := j;
      skip ()
    end
  in
  skip ();
  if
    !pos >= n
    || src.[!pos] = '\n'
    || src.[!pos] = ';'
    || (bracket && src.[!pos] = ']')
  then begin
    (* Command terminator: consume a newline/semicolon, leave ']' for the
       caller. *)
    let next =
      if !pos < n && (src.[!pos] = '\n' || src.[!pos] = ';') then !pos + 1
      else !pos
    in
    (List.rev acc, next)
  end
  else
    let word, next = parse_word t src n !pos ~bracket in
    parse_words t src n next ~bracket (word :: acc)

and parse_word t src n pos ~bracket =
  if src.[pos] = '{' then begin
    match Chars.find_matching_brace src pos with
    | None -> raise (Tcl_failure "missing close-brace")
    | Some j ->
      check_word_end src n (j + 1) ~bracket;
      (Chars.braced_content src pos j, j + 1)
  end
  else if src.[pos] = '"' then begin
    let buf = Buffer.create 16 in
    let next = substitute_until t src n (pos + 1) ~stop_quote:true ~bracket buf in
    check_word_end src n next ~bracket;
    (Buffer.contents buf, next)
  end
  else begin
    let buf = Buffer.create 16 in
    let next = substitute_until t src n pos ~stop_quote:false ~bracket buf in
    (Buffer.contents buf, next)
  end

and check_word_end src n pos ~bracket =
  if not (Chars.word_end_ok src n pos ~bracket) then
    raise
      (Tcl_failure "extra characters after close-brace or close-quote")

(* Scan a word (or the inside of a quoted word), appending substituted text
   to [buf]. Returns the position just after the word. [']'] only ends a
   bare word inside a command substitution; elsewhere it is an ordinary
   character, as in Tcl. *)
and substitute_until t src n pos ~stop_quote ~bracket buf =
  if pos >= n then
    if stop_quote then raise (Tcl_failure "missing close quote") else pos
  else
    let c = src.[pos] in
    if stop_quote && c = '"' then pos + 1
    else if
      (not stop_quote)
      && (is_sep c || c = '\n' || c = ';' || (bracket && c = ']'))
    then pos
    else
      match c with
      | '\\' when (not stop_quote) && pos + 1 < n && src.[pos + 1] = '\n' ->
        (* Backslash-newline terminates a bare word (it acts as a word
           separator). *)
        pos
      | '\\' ->
        let repl, j = Chars.backslash_subst src pos in
        Buffer.add_string buf repl;
        substitute_until t src n j ~stop_quote ~bracket buf
      | '$' ->
        let j = substitute_variable t src n pos ~bracket buf in
        substitute_until t src n j ~stop_quote ~bracket buf
      | '[' -> (
        match eval_in t src (pos + 1) ~bracket:true with
        | Tcl_ok, v, j ->
          Buffer.add_string buf v;
          substitute_until t src n j ~stop_quote ~bracket buf
        | status, v, _ -> raise (Propagate (status, v)))
      | c ->
        Buffer.add_char buf c;
        substitute_until t src n (pos + 1) ~stop_quote ~bracket buf

(* Substitute a $-variable reference starting at the '$'. Returns the
   position after the reference. *)
and substitute_variable t src n pos ~bracket buf =
  let start = pos + 1 in
  if start < n && src.[start] = '{' then begin
    match String.index_from_opt src start '}' with
    | None -> raise (Tcl_failure "missing close-brace for variable name")
    | Some j ->
      let name = String.sub src (start + 1) (j - start - 1) in
      Buffer.add_string buf (get_var_exn t name);
      j + 1
  end
  else begin
    let i = ref start in
    while !i < n && Chars.is_var_char src.[!i] do
      incr i
    done;
    if !i = start then begin
      (* A lone '$' is literal. *)
      Buffer.add_char buf '$';
      start
    end
    else if !i < n && src.[!i] = '(' then begin
      (* Array element: the index undergoes substitution itself. *)
      let base = String.sub src start (!i - start) in
      let idx_buf = Buffer.create 8 in
      let j = substitute_index t src n (!i + 1) ~bracket idx_buf in
      let name = base ^ "(" ^ Buffer.contents idx_buf ^ ")" in
      Buffer.add_string buf (get_var_exn t name);
      j
    end
    else begin
      let name = String.sub src start (!i - start) in
      Buffer.add_string buf (get_var_exn t name);
      !i
    end
  end

and substitute_index t src n pos ~bracket buf =
  if pos >= n then raise (Tcl_failure "missing )")
  else
    match src.[pos] with
    | ')' -> pos + 1
    | '\\' ->
      let repl, j = Chars.backslash_subst src pos in
      Buffer.add_string buf repl;
      substitute_index t src n j ~bracket buf
    | '$' ->
      let j = substitute_variable t src n pos ~bracket buf in
      substitute_index t src n j ~bracket buf
    | '[' -> (
      match eval_in t src (pos + 1) ~bracket:true with
      | Tcl_ok, v, j ->
        Buffer.add_string buf v;
        substitute_index t src n j ~bracket buf
      | status, v, _ -> raise (Propagate (status, v)))
    | c ->
      Buffer.add_char buf c;
      substitute_index t src n (pos + 1) ~bracket buf

(* Invoke one fully substituted command. *)
and invoke t words =
  match words with
  | [] -> (Tcl_ok, "")
  | name :: _ -> (
    (* Command-dispatch boundary: limits and cancellation are delivered
       here (spending command budget) before the command runs. *)
    match if t.guard_active then guard_check t ~spend:true else None with
    | Some msg -> (Tcl_error, msg)
    | None ->
      t.cmd_count <- t.cmd_count + 1;
      invoke_command t name words)

and run_builtin t cmd words =
  try cmd t words with
  | Tcl_failure msg -> (Tcl_error, msg)
  | Expr.Error msg -> (Tcl_error, msg)
  | e -> (
    match translate_exn e with
    | Some msg -> (Tcl_error, msg)
    | None -> raise e)

and invoke_command t name words =
  match Hashtbl.find_opt t.commands name with
  | Some (Builtin cmd) -> run_builtin t cmd words
  | Some (Proc p) -> call_proc t name p words
  | None ->
    if Hashtbl.mem t.hidden name then begin
      (* A hidden command is deliberately withheld (safe slave or send
         guard): report a denial, never fall through to [unknown]. *)
      t.guard.g_denied <- t.guard.g_denied + 1;
      ( Tcl_error,
        Printf.sprintf "permission denied: command \"%s\" is hidden" name )
    end
    else (
      match Hashtbl.find_opt t.commands "unknown" with
      | Some (Builtin cmd) -> run_builtin t cmd ("unknown" :: words)
      | Some (Proc p) -> call_proc t "unknown" p ("unknown" :: words)
      | None -> (Tcl_error, Printf.sprintf "invalid command name \"%s\"" name))

(* Run a hidden command from the trusted side (interp invokehidden). *)
and invoke_hidden t name words =
  match Hashtbl.find_opt t.hidden name with
  | None ->
    ( Tcl_error,
      Printf.sprintf "unknown hidden command \"%s\"" name )
  | Some (Builtin cmd) -> run_builtin t cmd words
  | Some (Proc p) -> call_proc t name p words

and call_proc t name p words =
  if t.compile_enabled && t.vm_enabled && t.vm_canon then
    (* String-words entry (reference dispatch, eval_words): wrap the
       actuals; the callee owns the fresh Tvals. *)
    call_proc_vm t Vstring name p (List.map Tval.of_string (List.tl words))
  else call_proc_ref t name p words

and call_proc_ref t name p words =
  let frame = new_frame () in
  let actuals = List.tl words in
  (* Bind formals to actuals, handling defaults and the trailing "args". *)
  let rec bind formals actuals =
    match (formals, actuals) with
    | [], [] -> None
    | [], _ :: _ ->
      Some (Printf.sprintf "called \"%s\" with too many arguments" name)
    | [ ("args", _) ], rest ->
      Hashtbl.replace frame.vars "args"
        (Scalar (Tval.of_string (Tcl_list.format rest)));
      None
    | (formal, _) :: tl, v :: rest ->
      Hashtbl.replace frame.vars formal (Scalar (Tval.of_string v));
      bind tl rest
    | (formal, Some default) :: tl, [] ->
      Hashtbl.replace frame.vars formal (Scalar (Tval.of_string default));
      bind tl []
    | (formal, None) :: _, [] ->
      Some
        (Printf.sprintf "no value given for parameter \"%s\" to \"%s\""
           formal name)
  in
  match bind p.formals actuals with
  | Some msg -> (Tcl_error, msg)
  | None ->
    t.stack <- frame :: t.stack;
    let res =
      Fun.protect
        ~finally:(fun () -> t.stack <- List.tl t.stack)
        (fun () -> run_proc_body t p)
    in
    finish_proc name res

and run_proc_body t p =
  if t.compile_enabled then begin
    let code =
      match p.pcode with
      | Some code -> code
      | None ->
        (* Defined while the cache was off, called with it on. *)
        let code = compile_counted t p.body in
        p.pcode <- Some code;
        code
    in
    exec_program t code
  end
  else begin
    t.stats.parse_passes <- t.stats.parse_passes + 1;
    let status, v, _ = eval_in t p.body 0 ~bracket:false in
    (status, v)
  end

(* ------------------------------------------------------------------ *)
(* Execution of compiled programs.

   Mirrors eval_in / eval_loop / parse_and_run over the pre-parsed form;
   every status, error message, errorInfo line and side-effect order
   must match the reference evaluator above. *)

and exec_program t prog =
  if t.depth = 0 then begin
    t.error_in_progress <- false;
    t.unwinding <- false
  end;
  if t.depth > t.recursionlimit then begin
    t.guard.g_recursion_exceeded <- t.guard.g_recursion_exceeded + 1;
    (Tcl_error, "too many nested evaluations (infinite loop?)")
  end
  else begin
    match if t.guard_active then guard_check t ~spend:false else None with
    | Some msg -> (Tcl_error, msg)
    | None ->
    t.depth <- t.depth + 1;
    let finally () = t.depth <- t.depth - 1 in
    match exec_commands t prog (Tcl_ok, "") with
    | res ->
      finally ();
      res
    | exception e ->
      finally ();
      raise e
  end

and exec_commands t prog last =
  match prog with
  | [] -> last
  | cmd :: rest -> (
    match exec_command t cmd with
    | (Tcl_ok, _) as res -> exec_commands t rest res
    | res -> res)

and exec_command t (cmd : Compile.command) =
  match subst_words t cmd.words [] with
  | exception Propagate (status, v) -> (status, v)
  | exception Tcl_failure msg ->
    (* A substitution or structural error: errorInfo starts with the bare
       message; the enclosing command adds its own trace line. *)
    if not t.error_in_progress then begin
      t.error_in_progress <- true;
      set_error_info t msg
    end;
    (Tcl_error, msg)
  | [] -> (Tcl_ok, "") (* blank command resets the running result *)
  | words ->
    let (status, v) as res = invoke t words in
    if status = Tcl_error then trace_error t ~command:cmd.text v;
    res

and subst_words t words acc =
  match words with
  | [] -> List.rev acc
  | w :: rest ->
    let s = subst_word t w in
    subst_words t rest (s :: acc)

and subst_word t (w : Compile.word) =
  match w with
  | Compile.W_lit s -> s
  | Compile.W_parts [ Compile.Var name ] -> get_var_exn t name
  | Compile.W_parts [ Compile.Cmd prog ] -> exec_nested t prog
  | Compile.W_parts parts ->
    let buf = Buffer.create 16 in
    subst_parts t parts buf;
    Buffer.contents buf
  | Compile.W_fail (parts, msg) ->
    (* Replay the substitutions scanned before the syntax error (they may
       have side effects or abort first), then report it. *)
    let buf = Buffer.create 16 in
    subst_parts t parts buf;
    raise (Tcl_failure msg)

and subst_parts t parts buf =
  List.iter
    (fun (p : Compile.part) ->
      match p with
      | Compile.Lit s -> Buffer.add_string buf s
      | Compile.Var name -> Buffer.add_string buf (get_var_exn t name)
      | Compile.Var_idx (base, idx) ->
        let ibuf = Buffer.create 8 in
        subst_parts t idx ibuf;
        let name = base ^ "(" ^ Buffer.contents ibuf ^ ")" in
        Buffer.add_string buf (get_var_exn t name)
      | Compile.Cmd prog -> Buffer.add_string buf (exec_nested t prog))
    parts

(* A [script] command substitution: ok yields its value, anything else
   aborts the enclosing command with that status. *)
and exec_nested t prog =
  match exec_program t prog with
  | Tcl_ok, v -> v
  | status, v -> raise (Propagate (status, v))

(* ------------------------------------------------------------------ *)
(* Bytecode VM executor.

   Runs {!Vm.code} lowered from the compiled form. The contract is the
   same as exec_program's: every status, value, errorInfo line, guard
   delivery and command count must match the reference evaluator. Each
   inlined structural opcode re-checks [vm_canon] and deopts to the
   stored original command when set/if/while/... have been redefined. *)

and exec_vm t (want : wantv) (code : frame Vm.code) =
  if t.depth = 0 then begin
    t.error_in_progress <- false;
    t.unwinding <- false
  end;
  if t.depth > t.recursionlimit then begin
    t.guard.g_recursion_exceeded <- t.guard.g_recursion_exceeded + 1;
    (Tcl_error, "too many nested evaluations (infinite loop?)")
  end
  else begin
    match if t.guard_active then guard_check t ~spend:false else None with
    | Some msg -> (Tcl_error, msg)
    | None -> (
      t.depth <- t.depth + 1;
      match
        let insns = code.Vm.insns in
        if Array.length insns = 1 then exec_vinsn t want insns.(0)
        else exec_vinsns t insns 0 want (Tcl_ok, "")
      with
      | res ->
        t.depth <- t.depth - 1;
        res
      | exception e ->
        t.depth <- t.depth - 1;
        raise e)
  end

and exec_vinsns t insns i want last =
  let n = Array.length insns in
  if i >= n then last
  else
    match exec_vinsn t (if i = n - 1 then want else Vdiscard) insns.(i) with
    | (Tcl_ok, _) as res -> exec_vinsns t insns (i + 1) want res
    | res -> res

(* The value cell directly bound to [name] in frame [f], if any: a
   hashtable Scalar wins over a local slot (links and arrays have no
   cell and force the generic variable path). *)
and slot_find f name =
  match Hashtbl.find_opt f.vars name with
  | Some (Scalar cell) -> Some cell
  | Some _ -> None
  | None -> (
    match local_slot f name with
    | -1 -> None
    | i -> f.lcells.(i))

(* The value cell for a VM variable reference, or [Vm_unbound] if the
   name has no direct scalar cell (unbound, link, array element). The
   unbound signal is a constant exception rather than an option so the
   ubiquitous hit path allocates nothing. *)
and vref_cell t (r : frame Vm.vref) : Tval.t =
  let f = current_frame t in
  match r with
  | Vm.Rslot (i, name) ->
    (* fgen = 0 means the hashtable has never been touched, so the slot
       cannot be shadowed by a link, array or spilled binding. *)
    if f.fgen = 0 && i < Array.length f.lcells then (
      match f.lcells.(i) with
      | Some c ->
        t.vm.v_slot_hits <- t.vm.v_slot_hits + 1;
        c
      | None -> raise_notrace Vm_unbound)
    else (
      match slot_find f name with
      | Some c -> c
      | None -> raise_notrace Vm_unbound)
  | Vm.Rname (name, cache) -> (
    match !cache with
    | Some (cf, g, cell) when cf == f && g = f.fgen ->
      t.vm.v_slot_hits <- t.vm.v_slot_hits + 1;
      cell
    | _ -> (
      match Hashtbl.find_opt f.vars name with
      | Some (Scalar cell) ->
        (* Only direct scalar bindings are cached: in-place writes keep
           the generation, every structural change bumps it. *)
        cache := Some (f, f.fgen, cell);
        cell
      | Some _ -> raise_notrace Vm_unbound
      | None -> (
        match local_slot f name with
        | -1 -> raise_notrace Vm_unbound
        | i -> (
          match f.lcells.(i) with
          | Some c -> c
          | None -> raise_notrace Vm_unbound))))

and vref_name (r : frame Vm.vref) =
  match r with Vm.Rslot (_, n) -> n | Vm.Rname (n, _) -> n

and vref_get t r =
  match vref_cell t r with
  | cell -> Tval.to_string cell
  | exception Vm_unbound -> (
    let name = vref_name r in
    match get_var t name with
    | Some v -> v
    | None -> failf "can't read \"%s\": no such variable" name)

and vref_set t r v =
  match vref_cell t r with
  | cell -> Tval.set_string cell v
  | exception Vm_unbound -> set_var t (vref_name r) v

(* A bracketed script inside an expression; mirrors expr_env.eval_cmd. *)
and vexpr_cmd t code =
  match exec_vm t Vstring code with
  | Tcl_ok, v -> v
  | _, msg -> raise (Expr.Error msg)

(* Same, as an expression operand: a final expr in the script hands its
   numeric value over via [vm_xval] (only values whose rendering reparses
   to themselves are passed, so this is operand_value∘to_string elided);
   anything else falls back to parsing the string result. *)
and vexpr_cmd_operand t code =
  let insns = code.Vm.insns in
  if
    Array.length insns = 1
    && (not t.guard_active)
    && t.depth > 0
    && t.depth <= t.recursionlimit
  then begin
    (* Fused single-command bracket (the overwhelmingly common shape):
       exec_vm's prologue reduces to the depth bump — no depth-0 reset
       (we are nested), no recursion error (checked above), no guard
       delivery (inactive). *)
    t.depth <- t.depth + 1;
    t.vm_xval <- None;
    match exec_vinsn t Vtyped insns.(0) with
    | Tcl_ok, v -> (
      t.depth <- t.depth - 1;
      match t.vm_xval with
      | Some xv ->
        t.vm_xval <- None;
        xv
      | None -> Expr.operand_value v)
    | _, msg ->
      t.depth <- t.depth - 1;
      raise (Expr.Error msg)
    | exception e ->
      t.depth <- t.depth - 1;
      raise e
  end
  else begin
    t.vm_xval <- None;
    match exec_vm t Vtyped code with
    | Tcl_ok, v -> (
      match t.vm_xval with
      | Some xv ->
        t.vm_xval <- None;
        xv
      | None -> Expr.operand_value v)
    | _, msg -> raise (Expr.Error msg)
  end

(* Mirror of Expr.eval_ast over the lowered expression IR. The numeric
   rep cached on a Tval cell feeds operators directly; the string parse
   it replaces (Tval.parse_num) is the same trim + int_of_string_opt /
   float_of_string_opt sequence as Expr.number_of_string, so the typed
   path cannot disagree with the reference's operand_value. *)
and eval_vexpr t (e : frame Vm.vexpr) : Expr.value =
  match e with
  | Vm.Xconst v -> v
  | Vm.Xvar r -> (
    match vref_cell t r with
    | cell -> (
      match Tval.num cell with
      | Tval.Nint i -> Expr.Int i
      | Tval.Ndbl f -> Expr.Float f
      | _ -> Expr.operand_value (Tval.to_string cell))
    | exception Vm_unbound -> (
      let name = vref_name r in
      match get_var t name with
      | Some v -> Expr.operand_value v
      | None ->
        raise
          (Expr.Error
             (Printf.sprintf "can't read \"%s\": no such variable" name))))
  | Vm.Xcmd code -> vexpr_cmd_operand t code
  | Vm.Xquoted parts ->
    let buf = Buffer.create 16 in
    List.iter
      (fun (p : frame Vm.qpart) ->
        match p with
        | Vm.Ql s -> Buffer.add_string buf s
        | Vm.Qv name -> (
          match get_var t name with
          | Some v -> Buffer.add_string buf v
          | None ->
            raise
              (Expr.Error
                 (Printf.sprintf "can't read \"%s\": no such variable" name)))
        | Vm.Qc code -> Buffer.add_string buf (vexpr_cmd t code))
      parts;
    Expr.operand_value (Buffer.contents buf)
  | Vm.Xunop (op, x) -> Expr.apply_unary op (eval_vexpr t x)
  | Vm.Xbinop ("&&", x, y) ->
    if Expr.truthy (eval_vexpr t x) then
      Expr.bool_val (Expr.truthy (eval_vexpr t y))
    else Expr.bool_val false
  | Vm.Xbinop ("||", x, y) ->
    if Expr.truthy (eval_vexpr t x) then Expr.bool_val true
    else Expr.bool_val (Expr.truthy (eval_vexpr t y))
  | Vm.Xbinop (op, x, y) -> (
    let a = eval_vexpr t x in
    let b = eval_vexpr t y in
    match (a, b) with
    | Expr.Int ia, Expr.Int ib -> (
      (* Int/Int arithmetic wraps and comparisons are integer compares
         in Expr.apply_binary; these shortcuts are value-identical. *)
      match op with
      | "+" -> Expr.Int (ia + ib)
      | "-" -> Expr.Int (ia - ib)
      | "*" -> Expr.Int (ia * ib)
      | "<" -> Expr.bool_val (ia < ib)
      | ">" -> Expr.bool_val (ia > ib)
      | "<=" -> Expr.bool_val (ia <= ib)
      | ">=" -> Expr.bool_val (ia >= ib)
      | "==" -> Expr.bool_val (ia = ib)
      | "!=" -> Expr.bool_val (ia <> ib)
      | _ -> Expr.apply_binary op a b)
    | _ -> Expr.apply_binary op a b)
  | Vm.Xternary (c, a, b) ->
    if Expr.truthy (eval_vexpr t c) then eval_vexpr t a else eval_vexpr t b
  | Vm.Xfunc (name, args) ->
    let vals = List.fold_left (fun acc a -> eval_vexpr t a :: acc) [] args in
    Expr.apply_function name (List.rev vals)

and int_rel op a b =
  match op with
  | "<" -> a < b
  | ">" -> a > b
  | "<=" -> a <= b
  | ">=" -> a >= b
  | "==" -> a = b
  | _ -> a <> b (* "!=" *)

(* Boolean-producing mirror of [Expr.truthy (eval_vexpr t e)] used for
   if/while/for conditions: comparisons, &&/|| and ! are evaluated to an
   unboxed bool.  Each clause is truthy∘eval_vexpr with the intermediate
   bool_val boxing cancelled, so values and errors are identical; the
   leading clause further shortcuts the ubiquitous [$i < const] shape
   through the variable's cached integer rep (reads are effect-free, so
   the cold fallback may simply re-evaluate the whole condition). *)
and eval_vcond t (e : frame Vm.vexpr) : bool =
  match e with
  | Vm.Xbinop
      ( (("<" | ">" | "<=" | ">=" | "==" | "!=") as op),
        Vm.Xvar r,
        Vm.Xconst (Expr.Int k) ) -> (
    match vref_cell t r with
    | cell -> (
      match Tval.num cell with
      | Tval.Nint i -> int_rel op i k
      | _ -> Expr.truthy (eval_vexpr t e))
    | exception Vm_unbound -> Expr.truthy (eval_vexpr t e))
  | Vm.Xbinop ((("<" | ">" | "<=" | ">=" | "==" | "!=") as op), x, y) -> (
    let a = eval_vexpr t x in
    let b = eval_vexpr t y in
    match (a, b) with
    | Expr.Int ia, Expr.Int ib -> int_rel op ia ib
    | _ -> Expr.truthy (Expr.apply_binary op a b))
  | Vm.Xbinop ("&&", x, y) -> eval_vcond t x && eval_vcond t y
  | Vm.Xbinop ("||", x, y) -> eval_vcond t x || eval_vcond t y
  | Vm.Xunop ("!", x) -> not (eval_vcond t x)
  | e -> Expr.truthy (eval_vexpr t e)

and vsubst_word t (w : frame Vm.vword) =
  match w with
  | Vm.Wlit tv -> Tval.to_string tv
  | Vm.Wvar r -> vref_get t r
  | Vm.Wvcmd code -> (
    match exec_vm t Vstring code with
    | Tcl_ok, v -> v
    | status, v -> raise (Propagate (status, v)))
  | Vm.Wexpr { e; code; orig } ->
    if t.vm_canon then Expr.to_string (wexpr_val t e orig)
    else (
      match exec_vm t Vstring code with
      | Tcl_ok, v -> v
      | status, v -> raise (Propagate (status, v)))
  | Vm.Wgen w -> subst_word t w

(* Typed word substitution for command dispatch: every result is an
   OWNED Tval (fresh, or a copy whose reps are immutable), so binding
   one into a callee's variable cell needs no further copy and later
   writes through other aliases cannot leak in.  The byte-level string
   of each word is exactly what [vsubst_word] would have produced. *)
and vsubst_wordv t (w : frame Vm.vword) : Tval.t =
  match w with
  | Vm.Wlit tv -> Tval.copy tv
  | Vm.Wvar r -> (
    match vref_cell t r with
    | cell -> Tval.copy cell (* snapshot: later words may write it *)
    | exception Vm_unbound -> (
      let name = vref_name r in
      match get_var t name with
      | Some v -> Tval.of_string v
      | None -> failf "can't read \"%s\": no such variable" name))
  | Vm.Wvcmd code -> (
    match exec_vm t Vstring code with
    | Tcl_ok, v -> Tval.of_string v
    | status, v -> raise (Propagate (status, v)))
  | Vm.Wexpr { e; code; orig } ->
    if t.vm_canon then (
      match e with
      | Vm.Xbinop ((("+" | "-" | "*") as op), Vm.Xvar r, Vm.Xconst (Expr.Int k))
        when (not t.guard_active) && t.depth <= t.recursionlimit -> (
        match vref_cell t r with
        | cell -> (
          match Tval.num cell with
          | Tval.Nint i ->
            (* Fused [expr {$x op k}] argument: with guards inactive the
               checks wexpr_val performs reduce to the command count
               (int arithmetic cannot fail), and the typed result skips
               both Expr boxing and string rendering. *)
            t.cmd_count <- t.cmd_count + 1;
            Tval.of_int
              (match op with "+" -> i + k | "-" -> i - k | _ -> i * k)
          | _ -> tval_of_value (wexpr_val t e orig))
        | exception Vm_unbound -> tval_of_value (wexpr_val t e orig))
      | _ -> tval_of_value (wexpr_val t e orig))
    else (
      match exec_vm t Vstring code with
      | Tcl_ok, v -> Tval.of_string v
      | status, v -> raise (Propagate (status, v)))
  | Vm.Wgen w -> Tval.of_string (subst_word t w)

and tval_of_value (v : Expr.value) =
  match v with
  | Expr.Int i -> Tval.of_int i
  | Expr.Float f -> Tval.of_float f
  | Expr.Str s -> Tval.of_string s

(* A whole-word [expr ...] bracket whose script is one canonical expr
   command, evaluated without the exec_vm/Ivk scaffolding.  This is the
   Wvcmd path (exec_vm prologue + Iexpr opcode) with the constant parts
   inlined: same depth accounting, same guard deliveries, same command
   count, same traces — word substitution always runs at depth >= 1, so
   exec_vm's depth-0 reset can never fire here. *)
and wexpr_val t (e : frame Vm.vexpr) (orig : Compile.command) : Expr.value =
  if t.depth > t.recursionlimit then begin
    t.guard.g_recursion_exceeded <- t.guard.g_recursion_exceeded + 1;
    raise (Propagate (Tcl_error, "too many nested evaluations (infinite loop?)"))
  end;
  (match if t.guard_active then guard_check t ~spend:false else None with
  | Some msg -> raise (Propagate (Tcl_error, msg))
  | None -> ());
  t.depth <- t.depth + 1;
  match inline_gate t orig.Compile.text with
  | Some msg ->
    t.depth <- t.depth - 1;
    raise (Propagate (Tcl_error, msg))
  | None -> (
    match eval_vexpr t e with
    | v ->
      t.depth <- t.depth - 1;
      v
    | exception exn ->
      t.depth <- t.depth - 1;
      (match exn with
      | Tcl_failure msg | Expr.Error msg ->
        trace_error t ~command:orig.Compile.text msg;
        raise (Propagate (Tcl_error, msg))
      | exn -> raise exn))

and vsubst_wordsv t ws acc =
  match ws with
  | [] -> List.rev acc
  | [ w ] when acc == [] -> [ vsubst_wordv t w ]
  | w :: rest -> vsubst_wordsv t rest (vsubst_wordv t w :: acc)

(* A substitution failure before dispatch: errorInfo starts with the
   bare message, exactly as exec_command's handler does. *)
and subst_fail t msg =
  if not t.error_in_progress then begin
    t.error_in_progress <- true;
    set_error_info t msg
  end;
  (Tcl_error, msg)

and deopt t orig =
  t.vm.v_deopts <- t.vm.v_deopts + 1;
  exec_command t orig

(* Run an inlined structural command with the same guard delivery,
   command accounting and error tracing a dispatched command gets from
   invoke + exec_command. *)
and run_inline t ~text f =
  match if t.guard_active then guard_check t ~spend:true else None with
  | Some msg ->
    trace_error t ~command:text msg;
    (Tcl_error, msg)
  | None -> (
    t.cmd_count <- t.cmd_count + 1;
    match f () with
    | (Tcl_error, v) as res ->
      trace_error t ~command:text v;
      res
    | res -> res
    | exception Tcl_failure msg ->
      trace_error t ~command:text msg;
      (Tcl_error, msg)
    | exception Expr.Error msg ->
      trace_error t ~command:text msg;
      (Tcl_error, msg))

(* Closure-free slice of run_inline for the hot opcodes: delivers the
   guard (spending) and counts the command; Some msg is an already
   traced refusal.  The caller must trace its own errors. *)
and inline_gate t text =
  match if t.guard_active then guard_check t ~spend:true else None with
  | Some msg ->
    trace_error t ~command:text msg;
    Some msg
  | None ->
    t.cmd_count <- t.cmd_count + 1;
    None

and inline_fail t text msg =
  trace_error t ~command:text msg;
  (Tcl_error, msg)

and incr_bad_value (dst : frame Vm.vref) s =
  failf
    "expected integer but got \"%s\" (reading value of variable \"%s\" to \
     increment)"
    s (vref_name dst)

(* The post-gate body of an inlined [incr]: bump the destination's
   cached int in place, or fall back to the string path for spilled
   bindings. *)
and vm_incr_apply t want (dst : frame Vm.vref) amount =
  match vref_cell t dst with
  | cell -> (
    match Tval.num cell with
    | Tval.Nint cur ->
      Tval.set_int cell (cur + amount);
      (match want with
      | Vdiscard -> (Tcl_ok, "")
      | _ -> (Tcl_ok, Tval.to_string cell))
    | _ -> incr_bad_value dst (Tval.to_string cell))
  | exception Vm_unbound -> (
    let s = get_var_exn t (vref_name dst) in
    match int_of_string_opt (String.trim s) with
    | Some cur ->
      let v = string_of_int (cur + amount) in
      set_var t (vref_name dst) v;
      (Tcl_ok, v)
    | None -> incr_bad_value dst s)

and vm_incr t want dst amount orig =
  match inline_gate t orig.Compile.text with
  | Some msg -> (Tcl_error, msg)
  | None -> (
    match vm_incr_apply t want dst amount with
    | res -> res
    | exception Tcl_failure msg -> inline_fail t orig.Compile.text msg)

and vm_incr_word t want dst s orig =
  match inline_gate t orig.Compile.text with
  | Some msg -> (Tcl_error, msg)
  | None -> (
    match
      (* Amount first, then current value: cmd_incr's order. *)
      match int_of_string_opt (String.trim s) with
      | Some amount -> vm_incr_apply t want dst amount
      | None -> failf "expected integer but got \"%s\" (reading increment)" s
    with
    | res -> res
    | exception Tcl_failure msg -> inline_fail t orig.Compile.text msg)

(* Structural loop/branch bodies, lifted out of exec_vinsn so the hot
   opcodes don't allocate a local closure per execution. *)
and vm_if_arms t want arms els =
  match arms with
  | (cond, body) :: rest ->
    if eval_vcond t cond then vm_exec_block t want body
    else vm_if_arms t want rest els
  | [] -> (
    match els with
    | Some body -> vm_exec_block t want body
    | None -> (Tcl_ok, ""))

(* exec_vm for a nested structural block (if arm, loop body): when the
   block is a single instruction and no guard is armed, the prologue
   reduces to the depth bump — the depth-0 reset cannot apply (we are
   nested) and the recursion error is checked here. *)
and vm_exec_block t want (code : frame Vm.code) =
  let insns = code.Vm.insns in
  if
    Array.length insns = 1
    && (not t.guard_active)
    && t.depth > 0
    && t.depth <= t.recursionlimit
  then begin
    t.depth <- t.depth + 1;
    match exec_vinsn t want insns.(0) with
    | res ->
      t.depth <- t.depth - 1;
      res
    | exception e ->
      t.depth <- t.depth - 1;
      raise e
  end
  else exec_vm t want code

and vm_while_loop t cond body =
  if eval_vcond t cond then (
    match vm_exec_block t Vdiscard body with
    | (Tcl_ok, _) | (Tcl_continue, _) -> vm_while_loop t cond body
    | Tcl_break, _ -> (Tcl_ok, "")
    | res -> res)
  else (Tcl_ok, "")

and vm_for_loop t cond next body =
  if eval_vcond t cond then (
    match vm_exec_block t Vdiscard body with
    | (Tcl_ok, _) | (Tcl_continue, _) -> (
      match vm_exec_block t Vdiscard next with
      | (Tcl_error, _) as r -> r
      | _ -> vm_for_loop t cond next body)
    | Tcl_break, _ -> (Tcl_ok, "")
    | res -> res)
  else (Tcl_ok, "")

and exec_vinsn t (want : wantv) (insn : frame Vm.insn) =
  match insn with
  | Vm.Ivk { vwords = [ Vm.Wlit nametv; w1 ]; orig } -> (
    (* One-argument call to a literal name (`cmd $x`, `fib [expr ...]`):
       dispatch without materializing the words list. *)
    match vsubst_wordv t w1 with
    | exception Propagate (status, v) -> (status, v)
    | exception Tcl_failure msg -> subst_fail t msg
    | v1 -> (
      match invoke_vm1 t want nametv v1 with
      | (Tcl_error, v) as res ->
        trace_error t ~command:orig.Compile.text v;
        res
      | res -> res))
  | Vm.Ivk { vwords; orig } -> (
    match
      (* A literal command-name word is passed shared, not copied: the
         callee never binds the head (procs bind the tail, builtins
         take string copies), and keeping the same physical string rep
         preserves the one-entry dispatch-cache hit. *)
      match vwords with
      | Vm.Wlit nametv :: rest -> nametv :: vsubst_wordsv t rest []
      | _ -> vsubst_wordsv t vwords []
    with
    | exception Propagate (status, v) -> (status, v)
    | exception Tcl_failure msg -> subst_fail t msg
    | [] -> (Tcl_ok, "")
    | words -> (
      match invoke_vm t want words with
      | (Tcl_error, v) as res ->
        trace_error t ~command:orig.Compile.text v;
        res
      | res -> res))
  | Vm.Iset { dst; value; orig } ->
    if not t.vm_canon then deopt t orig
    else (
      match value with
      | None -> (
        match inline_gate t orig.Compile.text with
        | Some msg -> (Tcl_error, msg)
        | None -> (
          match vref_get t dst with
          | v -> (Tcl_ok, v)
          | exception Tcl_failure msg -> inline_fail t orig.Compile.text msg))
      | Some w -> (
        match vsubst_word t w with
        | exception Propagate (status, v) -> (status, v)
        | exception Tcl_failure msg -> subst_fail t msg
        | v -> (
          match inline_gate t orig.Compile.text with
          | Some msg -> (Tcl_error, msg)
          | None -> (
            match vref_set t dst v with
            | () -> (Tcl_ok, v)
            | exception Tcl_failure msg -> inline_fail t orig.Compile.text msg))))
  | Vm.Iincr { dst; by; orig } ->
    if not t.vm_canon then deopt t orig
    else (
      match by with
      | Vm.Aconst amount -> vm_incr t want dst amount orig
      | Vm.Aword (Vm.Wvar r as w) -> (
        (* Pull the increment straight from the variable's cached int
           rep; parse_num is trim + int_of_string_opt, so a cell that
           is not Nint is exactly one whose string form cmd_incr would
           reject — fall through with that string.  An unbound var
           takes the generic subst path to fail identically. *)
        match vref_cell t r with
        | cell -> (
          match Tval.num cell with
          | Tval.Nint amount -> vm_incr t want dst amount orig
          | _ -> vm_incr_word t want dst (Tval.to_string cell) orig)
        | exception Vm_unbound -> (
          match vsubst_word t w with
          | s -> vm_incr_word t want dst s orig
          | exception Propagate (status, v) -> (status, v)
          | exception Tcl_failure msg -> subst_fail t msg))
      | Vm.Aword w -> (
        match vsubst_word t w with
        | s -> vm_incr_word t want dst s orig
        | exception Propagate (status, v) -> (status, v)
        | exception Tcl_failure msg -> subst_fail t msg))
  | Vm.Iexpr { e; orig } ->
    if not t.vm_canon then deopt t orig
    else (
      match inline_gate t orig.Compile.text with
      | Some msg -> (Tcl_error, msg)
      | None -> (
        match eval_vexpr t e with
        | v -> (
          match want with
          | Vdiscard -> (Tcl_ok, "")
          | Vstring -> (Tcl_ok, Expr.to_string v)
          | Vtyped -> (
            (* Hand numeric values to the consuming expression via the
               side channel; their rendering reparses to the same value,
               so this elides operand_value∘to_string.  A Str result
               could reparse differently, so it goes through strings. *)
            match v with
            | Expr.Int _ | Expr.Float _ ->
              t.vm_xval <- Some v;
              (Tcl_ok, "")
            | Expr.Str _ -> (Tcl_ok, Expr.to_string v)))
        | exception Tcl_failure msg -> inline_fail t orig.Compile.text msg
        | exception Expr.Error msg -> inline_fail t orig.Compile.text msg))
  | Vm.Iif { arms; els; orig } ->
    if not t.vm_canon then deopt t orig
    else (
      match inline_gate t orig.Compile.text with
      | Some msg -> (Tcl_error, msg)
      | None -> (
        match vm_if_arms t want arms els with
        | (Tcl_error, v) as res ->
          trace_error t ~command:orig.Compile.text v;
          res
        | res -> res
        | exception Tcl_failure msg -> inline_fail t orig.Compile.text msg
        | exception Expr.Error msg -> inline_fail t orig.Compile.text msg))
  | Vm.Iwhile { cond; body; orig } ->
    if not t.vm_canon then deopt t orig
    else (
      match inline_gate t orig.Compile.text with
      | Some msg -> (Tcl_error, msg)
      | None -> (
        match vm_while_loop t cond body with
        | (Tcl_error, v) as res ->
          trace_error t ~command:orig.Compile.text v;
          res
        | res -> res
        | exception Tcl_failure msg -> inline_fail t orig.Compile.text msg
        | exception Expr.Error msg -> inline_fail t orig.Compile.text msg))
  | Vm.Ifor { init; cond; next; body; orig } ->
    if not t.vm_canon then deopt t orig
    else (
      match inline_gate t orig.Compile.text with
      | Some msg -> (Tcl_error, msg)
      | None -> (
        match
          match exec_vm t Vdiscard init with
          | (Tcl_error, _) as r -> r
          | _ -> vm_for_loop t cond next body
        with
        | (Tcl_error, v) as res ->
          trace_error t ~command:orig.Compile.text v;
          res
        | res -> res
        | exception Tcl_failure msg -> inline_fail t orig.Compile.text msg
        | exception Expr.Error msg -> inline_fail t orig.Compile.text msg))
  | Vm.Iforeach { dst; items; body; orig } ->
    if not t.vm_canon then deopt t orig
    else (
      match
        match items with
        | Vm.Lconst l -> `List l
        | Vm.Lword w -> `Raw (vsubst_word t w)
      with
      | exception Propagate (status, v) -> (status, v)
      | exception Tcl_failure msg -> subst_fail t msg
      | items ->
        run_inline t ~text:orig.Compile.text (fun () ->
            match
              match items with
              | `List l -> Stdlib.Ok l
              | `Raw s -> Tcl_list.parse s
            with
            | Stdlib.Error msg -> (Tcl_error, msg)
            | Stdlib.Ok elements ->
              let rec go = function
                | [] -> (Tcl_ok, "")
                | e :: rest -> (
                  vref_set t dst e;
                  match exec_vm t Vdiscard body with
                  | (Tcl_ok, _) | (Tcl_continue, _) -> go rest
                  | Tcl_break, _ -> (Tcl_ok, "")
                  | res -> res)
              in
              go elements))
  | Vm.Ireturn { value; orig } ->
    if not t.vm_canon then deopt t orig
    else (
      match value with
      | None -> (
        match inline_gate t orig.Compile.text with
        | Some msg -> (Tcl_error, msg)
        | None -> (Tcl_return, ""))
      | Some w -> (
        match vsubst_word t w with
        | exception Propagate (status, v) -> (status, v)
        | exception Tcl_failure msg -> subst_fail t msg
        | v -> (
          match inline_gate t orig.Compile.text with
          | Some msg -> (Tcl_error, msg)
          | None -> (Tcl_return, v))))
  | Vm.Ibreak { orig } ->
    if not t.vm_canon then deopt t orig
    else run_inline t ~text:orig.Compile.text (fun () -> (Tcl_break, ""))
  | Vm.Icontinue { orig } ->
    if not t.vm_canon then deopt t orig
    else run_inline t ~text:orig.Compile.text (fun () -> (Tcl_continue, ""))

(* Lowered code for a procedure body, built on first VM call and cached
   on the proc record (a redefinition installs a fresh record). *)
and proc_vm_code t name p =
  match p.pvm with
  | Some code -> code
  | None ->
    let pcode =
      match p.pcode with
      | Some code -> code
      | None ->
        let code = compile_counted t p.body in
        p.pcode <- Some code;
        code
    in
    let seed =
      match Hashtbl.find_opt t.kind_seeds name with
      | Some facts -> facts
      | None -> []
    in
    let code =
      Vm.lower_proc ~seed
        ~compile:(fun s -> compile_counted t s)
        ~formals:(List.map fst p.formals)
        pcode
    in
    t.vm.v_compiled <- t.vm.v_compiled + 1;
    if seed <> [] then t.vm.v_seeded <- t.vm.v_seeded + 1;
    p.pvm <- Some code;
    code

(* Typed command dispatch for VM-executed scripts: invoke with the same
   guard delivery and accounting, but the substituted words stay Tvals
   (each one owned by the callee) so a proc binds them — numeric reps
   and all — without a string round-trip.  A one-entry cache keyed by
   the physical name string (lowered literal words intern it) elides
   the table lookup on straight-line dispatch. *)
and invoke_vm t want (words : Tval.t list) =
  match words with
  | [] -> (Tcl_ok, "")
  | nametv :: _ -> (
    match if t.guard_active then guard_check t ~spend:true else None with
    | Some msg -> (Tcl_error, msg)
    | None -> (
      t.cmd_count <- t.cmd_count + 1;
      let name = Tval.to_string nametv in
      match t.vm_lastcmd with
      | Some (n, d) when n == name -> dispatch_vm t want name d words
      | _ -> (
        match Hashtbl.find_opt t.commands name with
        | Some d ->
          t.vm_lastcmd <- Some (name, d);
          dispatch_vm t want name d words
        | None -> invoke_vm_missing t name words)))

(* Single-argument dispatch: the same guard/count/cache sequence as
   invoke_vm, with the words list only materialized off the fast
   proc path. *)
and invoke_vm1 t want (nametv : Tval.t) (v1 : Tval.t) =
  match if t.guard_active then guard_check t ~spend:true else None with
  | Some msg -> (Tcl_error, msg)
  | None -> (
    t.cmd_count <- t.cmd_count + 1;
    let name = Tval.to_string nametv in
    match t.vm_lastcmd with
    | Some (n, d) when n == name -> dispatch_vm1 t want name d v1
    | _ -> (
      match Hashtbl.find_opt t.commands name with
      | Some d ->
        t.vm_lastcmd <- Some (name, d);
        dispatch_vm1 t want name d v1
      | None -> invoke_vm_missing t name [ nametv; v1 ]))

and invoke_vm_missing t name (words : Tval.t list) =
  if Hashtbl.mem t.hidden name then begin
    t.guard.g_denied <- t.guard.g_denied + 1;
    (Tcl_error, Printf.sprintf "permission denied: command \"%s\" is hidden" name)
  end
  else (
    let swords = List.map Tval.to_string words in
    match Hashtbl.find_opt t.commands "unknown" with
    | Some (Builtin cmd) -> run_builtin t cmd ("unknown" :: swords)
    | Some (Proc p) -> call_proc t "unknown" p ("unknown" :: swords)
    | None -> (Tcl_error, Printf.sprintf "invalid command name \"%s\"" name))

and dispatch_vm t want name d words =
  match d with
  | Builtin cmd -> run_builtin t cmd (List.map Tval.to_string words)
  | Proc p ->
    if t.compile_enabled && t.vm_enabled && t.vm_canon then
      call_proc_vm t want name p (List.tl words)
    else call_proc_ref t name p (List.map Tval.to_string words)

and dispatch_vm1 t want name d (v1 : Tval.t) =
  match d with
  | Proc p when t.compile_enabled && t.vm_enabled && t.vm_canon ->
    call_proc_vm1 t want name p v1
  | Builtin cmd -> run_builtin t cmd [ name; Tval.to_string v1 ]
  | Proc p -> call_proc_ref t name p [ name; Tval.to_string v1 ]

(* Formals usually have slots; one that missed (paren name, slot
   table full) binds in the hashtable like the reference does. *)
and vm_set_slot frame fname tv =
  match local_slot frame fname with
  | i when i >= 0 -> frame.lcells.(i) <- Some tv
  | _ ->
    Hashtbl.replace frame.vars fname (Scalar tv);
    bump_fgen frame

and vm_bind_formals frame name formals actuals =
  match (formals, actuals) with
  | [], [] -> None
  | [], _ :: _ ->
    Some (Printf.sprintf "called \"%s\" with too many arguments" name)
  | [ ("args", _) ], rest ->
    vm_set_slot frame "args"
      (Tval.of_string (Tcl_list.format (List.map Tval.to_string rest)));
    None
  | (formal, _) :: tl, v :: rest ->
    vm_set_slot frame formal v;
    vm_bind_formals frame name tl rest
  | (formal, Some default) :: tl, [] ->
    vm_set_slot frame formal (Tval.of_string default);
    vm_bind_formals frame name tl []
  | (formal, None) :: _, [] ->
    Some
      (Printf.sprintf "no value given for parameter \"%s\" to \"%s\"" formal
         name)

and vm_take_frame p (code : frame Vm.code) =
  match p.pframes with
  | f :: rest when f.lnames == code.Vm.locals ->
    p.pframes <- rest;
    f
  | _ -> vm_frame code.Vm.locals

(* Prime the dual-ported reps of bound arguments whose slots the
   analyzer proved always hold an integer, float or list: parsing the
   rep now (it would be parsed on first use anyway) lets the proc's
   first execution run on the typed fast paths instead of shimmering
   through strings.  Always semantically safe — priming only parses
   earlier, never changes a value. *)
and vm_prime_kinds t (code : frame Vm.code) frame =
  let kinds = code.Vm.kinds in
  for i = 0 to Array.length kinds - 1 do
    match kinds.(i) with
    | None -> ()
    | Some k -> (
      match frame.lcells.(i) with
      | None -> ()
      | Some v -> (
        match k with
        | Vm.Kint | Vm.Kfloat ->
          if v.Tval.n = Tval.Nmaybe then begin
            ignore (Tval.num v);
            t.vm.v_seed_primed <- t.vm.v_seed_primed + 1
          end
        | Vm.Klist ->
          if v.Tval.l = None then begin
            ignore (Tval.list v);
            t.vm.v_seed_primed <- t.vm.v_seed_primed + 1
          end))
  done

and run_proc_frame t want name p (code : frame Vm.code) frame =
  if Array.length code.Vm.kinds > 0 then vm_prime_kinds t code frame;
  t.stack <- frame :: t.stack;
  match exec_vm t want code with
  | res ->
    t.stack <- List.tl t.stack;
    (* Recycle the frame unless something structural happened to it:
       a spilled binding (upvar link, array, overflow) means inline
       caches or links may still reference it, so let it go. *)
    if frame.fgen = 0 then begin
      Array.fill frame.lcells 0 (Array.length frame.lcells) None;
      p.pframes <- frame :: p.pframes
    end;
    finish_proc name res
  | exception e ->
    t.stack <- List.tl t.stack;
    raise e

and call_proc_vm t want name p (actuals : Tval.t list) =
  let code = proc_vm_code t name p in
  let frame = vm_take_frame p code in
  match vm_bind_formals frame name p.formals actuals with
  | Some msg -> (Tcl_error, msg)
  | None -> run_proc_frame t want name p code frame

(* One-argument call with the words list elided: binds the single
   formal straight from the substituted Tval. *)
and call_proc_vm1 t want name p (v1 : Tval.t) =
  match p.formals with
  | [ (formal, _) ] when not (String.equal formal "args") ->
    let code = proc_vm_code t name p in
    let frame = vm_take_frame p code in
    vm_set_slot frame formal v1;
    run_proc_frame t want name p code frame
  | _ -> call_proc_vm t want name p [ v1 ]

and finish_proc name ((status, v) as res) =
  match status with
  | Tcl_ok -> res
  | Tcl_return -> (Tcl_ok, v)
  | Tcl_break -> (Tcl_error, "invoked \"break\" outside of a loop")
  | Tcl_continue -> (Tcl_error, "invoked \"continue\" outside of a loop")
  | Tcl_error -> (Tcl_error, Printf.sprintf "%s\n    (procedure \"%s\")" v name)

let eval t src =
  if t.compile_enabled then begin
    let e = script_entry_for t src in
    if t.vm_enabled && t.vm_canon then
      exec_vm t Vstring
        (match e.s_vm with
        | Some code -> code
        | None ->
          let code = Vm.lower ~compile:(fun s -> compile_counted t s) e.code in
          t.vm.v_compiled <- t.vm.v_compiled + 1;
          e.s_vm <- Some code;
          code)
    else exec_program t e.code
  end
  else begin
    t.stats.parse_passes <- t.stats.parse_passes + 1;
    let status, v, _ = eval_in t src 0 ~bracket:false in
    (status, v)
  end

let eval_value t src =
  match eval t src with
  | Tcl_ok, v -> Stdlib.Ok v
  | Tcl_error, msg -> Stdlib.Error msg
  | Tcl_return, _ -> Stdlib.Error "command returned \"return\" at top level"
  | Tcl_break, _ -> Stdlib.Error "invoked \"break\" outside of a loop"
  | Tcl_continue, _ ->
    Stdlib.Error "invoked \"continue\" outside of a loop"

let eval_words t words = invoke t words

let expr_env t =
  {
    Expr.get_var =
      (fun name ->
        match get_var t name with
        | Some v -> v
        | None ->
          raise
            (Expr.Error
               (Printf.sprintf "can't read \"%s\": no such variable" name)));
    Expr.eval_cmd =
      (fun script ->
        match eval t script with
        | Tcl_ok, v -> v
        | _, msg -> raise (Expr.Error msg));
  }

(* Evaluate an expression through the AST cache when compilation is on.
   Unparseable strings (None entries) always take the interleaved
   evaluator, which reproduces partial-substitution side effects before
   the syntax error. *)
let eval_expr t src =
  let env = expr_env t in
  if t.compile_enabled then
    match cached_expr_ast t src with
    | Some ast -> Expr.eval_ast env ast
    | None -> Expr.eval env src
  else Expr.eval env src

let eval_expr_string t src = Expr.to_string (eval_expr t src)

let eval_expr_bool t cond =
  match Expr.truthy (eval_expr t cond) with
  | b -> b
  | exception Expr.Error msg -> raise (Tcl_failure msg)
