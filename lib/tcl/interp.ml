type status = Tcl_ok | Tcl_error | Tcl_return | Tcl_break | Tcl_continue

type result = status * string

exception Tcl_failure of string

(* Used inside word parsing to abort the whole command with a given
   completion status (e.g. an error in a [$var] or [\[cmd\]] substitution). *)
exception Propagate of status * string

let failf fmt = Format.kasprintf (fun msg -> raise (Tcl_failure msg)) fmt

(* Host-embedding hook: foreign exceptions (e.g. the toolkit's X protocol
   errors) raised inside command procedures are translated into ordinary
   Tcl errors instead of unwinding the evaluator. Newest-registered
   translator wins; [None] declines. *)
let exn_translators : (exn -> string option) list ref = ref []

let add_exn_translator f = exn_translators := f :: !exn_translators

let translate_exn e = List.find_map (fun f -> f e) !exn_translators

let wrong_args usage = failf "wrong # args: should be \"%s\"" usage

let ok v = (Tcl_ok, v)

type slot =
  | Scalar of string
  | Array_var of (string, string) Hashtbl.t
  | Link of frame * string

and frame = { vars : (string, slot) Hashtbl.t }

(* Counters for the parse-once machinery, exported as tcl.compile.* by
   the toolkit's metrics registry. [parse_passes] counts every full scan
   of script text — one per compilation, one per legacy evaluation — so
   the cache's effect is directly visible as a drop in passes. *)
type compile_stats = {
  mutable script_hits : int;
  mutable script_misses : int;
  mutable script_evictions : int;
  mutable script_compiles : int;
  mutable expr_hits : int;
  mutable expr_misses : int;
  mutable expr_evictions : int;
  mutable expr_compiles : int;
  mutable parse_passes : int;
}

let fresh_stats () =
  {
    script_hits = 0;
    script_misses = 0;
    script_evictions = 0;
    script_compiles = 0;
    expr_hits = 0;
    expr_misses = 0;
    expr_evictions = 0;
    expr_compiles = 0;
    parse_passes = 0;
  }

(* ------------------------------------------------------------------ *)
(* Command signatures.

   A command may declare, alongside its implementation, what shape of
   call it accepts: arity bounds, a usage string (the same one its
   [wrong_args] raises, so lint and runtime share one source of truth),
   a subcommand table, recognized [-option] switches, which argument
   positions hold scripts, per-argument literal validators, and — for
   widget-creating commands — the widget class's own option and
   subcommand tables.  The registry is purely descriptive: dispatch
   never consults it.  The static checker ([Lint]) is its consumer. *)

type sub_sig = {
  sub_name : string;
  sub_min : int;  (* arguments after "cmd subcommand" *)
  sub_max : int;  (* -1 = unbounded *)
}

type widget_sig = {
  ws_class : string;  (* e.g. "Button" *)
  ws_options : string list;  (* configure switches, e.g. "-text" *)
  ws_subs : sub_sig list;  (* widget subcommands beyond configure/cget *)
}

type arg_check = {
  chk_arg : int;  (* 1-based argument index *)
  chk : string -> string option;  (* literal value -> error message *)
}

type signature = {
  sig_name : string;
  sig_usage : string;  (* body of the "wrong # args: should be" message *)
  sig_min : int;  (* arguments after the command name *)
  sig_max : int;  (* -1 = unbounded *)
  sig_subs : sub_sig list;
  sig_options : string list;  (* leading -switches the command accepts *)
  sig_scripts : int list;  (* 1-based indices of script arguments *)
  sig_checks : arg_check list;
  sig_widget : widget_sig option;  (* set for widget-creating commands *)
}

let subsig ?(max = -1) name min = { sub_name = name; sub_min = min; sub_max = max }

let signature ?(max = -1) ?(subs = []) ?(options = []) ?(scripts = [])
    ?(checks = []) ?widget ~usage name min =
  {
    sig_name = name;
    sig_usage = usage;
    sig_min = min;
    sig_max = max;
    sig_subs = subs;
    sig_options = options;
    sig_scripts = scripts;
    sig_checks = checks;
    sig_widget = widget;
  }

(* Render alternatives Tcl-style: "a", "a or b", "a, b, or c". *)
let alternatives names =
  match names with
  | [] -> ""
  | [ a ] -> a
  | [ a; b ] -> a ^ " or " ^ b
  | _ ->
    let rec go = function
      | [ last ] -> "or " ^ last
      | x :: rest -> x ^ ", " ^ go rest
      | [] -> ""
    in
    go names

type lint_stats = {
  mutable lint_runs : int;
  mutable lint_errors : int;
  mutable lint_warnings : int;
}

(* ------------------------------------------------------------------ *)
(* Resource limits, cancellation and isolation ("the guard").

   An interpreter may carry a time budget (milliseconds on a pluggable
   clock), a command-dispatch budget, and a pending asynchronous
   cancellation.  All three are checked at evaluation boundaries — script
   entry in both the reference and compiled evaluators, and every command
   dispatch — behind one [guard_active] boolean, so an unguarded
   interpreter pays a single flag test per boundary.  A tripped limit
   stays tripped until {!rearm_limits}: a runaway that swallows the first
   limit error dies again at the very next boundary. *)

type limit_kind = Limit_time | Limit_commands

(* Guard activity counters, exported as tcl.limit.* / tcl.interp.* by the
   toolkit's metrics registry.  The record is shared by reference between
   a master and every slave in its tree, so per-application metrics roll
   up the whole isolation tree. *)
type guard_stats = {
  mutable g_checks : int;  (* guard boundary checks performed *)
  mutable g_time_exceeded : int;
  mutable g_cmd_exceeded : int;
  mutable g_cancels : int;  (* cancellations requested *)
  mutable g_cancelled : int;  (* cancellation errors delivered *)
  mutable g_denied : int;  (* hidden-command invocations refused *)
  mutable g_recursion_exceeded : int;
  mutable g_creates : int;  (* slave interpreters created *)
  mutable g_deletes : int;  (* slave interpreters deleted *)
  mutable g_alias_calls : int;  (* alias invocations marshalled *)
}

let fresh_guard_stats () =
  {
    g_checks = 0;
    g_time_exceeded = 0;
    g_cmd_exceeded = 0;
    g_cancels = 0;
    g_cancelled = 0;
    g_denied = 0;
    g_recursion_exceeded = 0;
    g_creates = 0;
    g_deletes = 0;
    g_alias_calls = 0;
  }

type t = {
  commands : (string, cmd_def) Hashtbl.t;
  signatures : (string, signature) Hashtbl.t;
  lint : lint_stats;
  global_frame : frame;
  mutable stack : frame list; (* non-global frames, innermost first *)
  mutable depth : int; (* current eval nesting, for runaway recursion *)
  mutable cmd_count : int;
  mutable out : string -> unit;
  mutable error_in_progress : bool;
      (* an error is unwinding: errorInfo accumulates context lines *)
  mutable history_recording : bool;
  mutable history : (int * string) list; (* newest first *)
  mutable history_next : int;
  mutable compile_enabled : bool;
      (* parse-once mode: scripts and exprs run from cached compiled
         forms; off = the reference character-at-a-time evaluator *)
  script_cache : (string, script_entry) Hashtbl.t;
  expr_cache : (string, expr_entry) Hashtbl.t;
  mutable cache_tick : int; (* LRU clock for both caches *)
  stats : compile_stats;
  mutable time_source : (unit -> float) option;
      (* pluggable clock for [time] (seconds); None = Sys.time *)
  (* --- isolation tree --- *)
  slaves : (string, t) Hashtbl.t;
  hidden : (string, cmd_def) Hashtbl.t;
      (* commands moved out of dispatch reach (hide/expose/invokehidden);
         invoking one by name is a counted denial, not an unknown *)
  aliases : (string, string) Hashtbl.t;
      (* alias name -> rendered target spec, for [interp aliases] *)
  mutable safe : bool;
  (* --- limits / cancellation --- *)
  mutable recursionlimit : int;
  mutable guard_active : bool;
      (* fast flag: some limit or cancellation needs checking at eval
         boundaries; false = one boolean test per boundary *)
  mutable limit_time_ms : int; (* time budget in ms; 0 = unlimited *)
  mutable limit_deadline_ms : int; (* absolute, on the limit clock *)
  mutable limit_granularity : int; (* boundaries per deadline read *)
  mutable limit_countdown : int;
  mutable limit_cmds : int; (* command-dispatch budget; 0 = unlimited *)
  mutable limit_cmds_left : int;
  mutable tripped : limit_kind option;
  mutable limit_clock : (unit -> int) option;
      (* milliseconds; None falls back to [current_time] — the toolkit
         points this at the event dispatcher's clock *)
  mutable cancel_request : (string * bool) option; (* message, unwind *)
  mutable unwinding : bool;
      (* a limit or unwinding-cancel error is propagating: [catch] must
         let it through instead of stopping it *)
  mutable guard : guard_stats; (* shared by reference across the tree *)
}

and command = t -> string list -> result

and cmd_def =
  | Builtin of command
  | Proc of proc_def

and proc_def = {
  formals : (string * string option) list;
  body : string;
  mutable pcode : Compile.program option;
      (* compiled at definition time (or lazily on first call); always
         derived from [body], so redefinition replaces it atomically *)
}

and script_entry = { code : Compile.program; mutable s_tick : int }

and expr_entry = {
  east : Expr.ast option;
      (* None: the pure parser rejected it — always fall back to the
         interleaved evaluator, which reproduces mid-substitution
         side effects before the syntax error *)
  mutable e_tick : int;
}

let default_recursion_limit = 1000

let new_frame () = { vars = Hashtbl.create 16 }

let create () =
  {
    commands = Hashtbl.create 64;
    signatures = Hashtbl.create 64;
    lint = { lint_runs = 0; lint_errors = 0; lint_warnings = 0 };
    global_frame = new_frame ();
    stack = [];
    depth = 0;
    cmd_count = 0;
    out = print_string;
    error_in_progress = false;
    history_recording = false;
    history = [];
    history_next = 1;
    compile_enabled = true;
    script_cache = Hashtbl.create 64;
    expr_cache = Hashtbl.create 64;
    cache_tick = 0;
    stats = fresh_stats ();
    time_source = None;
    slaves = Hashtbl.create 4;
    hidden = Hashtbl.create 8;
    aliases = Hashtbl.create 8;
    safe = false;
    recursionlimit = default_recursion_limit;
    guard_active = false;
    limit_time_ms = 0;
    limit_deadline_ms = 0;
    limit_granularity = 1;
    limit_countdown = 1;
    limit_cmds = 0;
    limit_cmds_left = 0;
    tripped = None;
    limit_clock = None;
    cancel_request = None;
    unwinding = false;
    guard = fresh_guard_stats ();
  }

let current_frame t =
  match t.stack with [] -> t.global_frame | f :: _ -> f

let current_level t = List.length t.stack

(* Frame at absolute level: 0 = global, [current_level] = innermost. *)
let frame_at t level =
  let cur = current_level t in
  if level < 0 || level > cur then None
  else if level = 0 then Some t.global_frame
  else List.nth_opt t.stack (cur - level)

let parse_level t spec =
  let cur = current_level t in
  let abs =
    if String.length spec > 0 && spec.[0] = '#' then
      int_of_string_opt (String.sub spec 1 (String.length spec - 1))
    else
      match int_of_string_opt spec with
      | Some d -> Some (cur - d)
      | None -> None
  in
  match abs with
  | Some l when l >= 0 && l <= cur -> Some l
  | _ -> None

let with_level t level thunk =
  let saved = t.stack in
  let cur = current_level t in
  if level < 0 || level > cur then failf "bad level %d" level;
  t.stack <-
    (if level = 0 then []
     else
       (* Drop the innermost (cur - level) frames. *)
       let rec drop n l = if n = 0 then l else match l with [] -> [] | _ :: tl -> drop (n - 1) tl in
       drop (cur - level) saved);
  Fun.protect ~finally:(fun () -> t.stack <- saved) thunk

(* ------------------------------------------------------------------ *)
(* Variables *)

(* Split "a(i)" into (base, Some index). *)
let split_array_name name =
  let n = String.length name in
  if n > 1 && name.[n - 1] = ')' then
    match String.index_opt name '(' with
    | Some i when i > 0 -> Some (String.sub name 0 i, String.sub name (i + 1) (n - i - 2))
    | _ -> None
  else None

(* Follow upvar links to the frame/name that actually stores the value.
   A link's target may itself be an array element ("upvar a(k) v"), so the
   resolved name is re-examined for array syntax by the callers. *)
let rec resolve frame name =
  match split_array_name name with
  | Some _ -> (frame, name) (* array refs resolve their base separately *)
  | None -> (
    match Hashtbl.find_opt frame.vars name with
    | Some (Link (f, n)) -> resolve f n
    | _ -> (frame, name))

let rec get_var_in frame name =
  let frame, name = resolve frame name in
  match split_array_name name with
  | Some (base, idx) -> (
    let bframe, base = resolve frame base in
    match Hashtbl.find_opt bframe.vars base with
    | Some (Array_var h) -> Hashtbl.find_opt h idx
    | _ -> None)
  | None -> (
    match Hashtbl.find_opt frame.vars name with
    | Some (Scalar v) -> Some v
    | Some (Link (f, n)) -> get_var_in f n
    | Some (Array_var _) | None -> None)

let get_var t name = get_var_in (current_frame t) name

let get_var_exn t name =
  match get_var t name with
  | Some v -> v
  | None -> failf "can't read \"%s\": no such variable" name

let set_var t name value =
  let frame, name = resolve (current_frame t) name in
  match split_array_name name with
  | Some (base, idx) -> (
    let frame, base = resolve frame base in
    match Hashtbl.find_opt frame.vars base with
    | Some (Array_var h) -> Hashtbl.replace h idx value
    | Some (Scalar _) ->
      failf "can't set \"%s\": variable isn't array" name
    | Some (Link _) | None ->
      let h = Hashtbl.create 8 in
      Hashtbl.replace h idx value;
      Hashtbl.replace frame.vars base (Array_var h))
  | None -> (
    match Hashtbl.find_opt frame.vars name with
    | Some (Array_var _) -> failf "can't set \"%s\": variable is array" name
    | Some (Scalar _) | Some (Link _) | None ->
      Hashtbl.replace frame.vars name (Scalar value))

let unset_var t name =
  let frame = current_frame t in
  match split_array_name name with
  | Some (base, idx) -> (
    let frame, base = resolve frame base in
    match Hashtbl.find_opt frame.vars base with
    | Some (Array_var h) when Hashtbl.mem h idx ->
      Hashtbl.remove h idx;
      true
    | _ -> false)
  | None when (match Hashtbl.find_opt frame.vars name with
              | Some (Link _) -> (
                match resolve frame name with
                | _, resolved -> split_array_name resolved <> None)
              | _ -> false) ->
    (* A link to an array element: unset the element, drop the link. *)
    let tframe, target = resolve frame name in
    Hashtbl.remove frame.vars name;
    (match split_array_name target with
    | Some (base, idx) -> (
      let bframe, base = resolve tframe base in
      match Hashtbl.find_opt bframe.vars base with
      | Some (Array_var h) -> Hashtbl.remove h idx
      | _ -> ())
    | None -> ());
    true
  | None ->
    (* Remove the link itself if the local name is a link; otherwise remove
       the resolved variable. *)
    if Hashtbl.mem frame.vars name then begin
      (match Hashtbl.find_opt frame.vars name with
      | Some (Link (f, n)) ->
        Hashtbl.remove frame.vars name;
        let f, n = resolve f n in
        Hashtbl.remove f.vars n
      | Some _ -> Hashtbl.remove frame.vars name
      | None -> ());
      true
    end
    else false

let var_names t ~local ~global =
  let collect frame =
    Hashtbl.fold (fun k _ acc -> k :: acc) frame.vars []
  in
  let locals = if local then collect (current_frame t) else [] in
  let globals = if global then collect t.global_frame else [] in
  List.sort_uniq String.compare (locals @ globals)

let array_names t name =
  let frame, name = resolve (current_frame t) name in
  match Hashtbl.find_opt frame.vars name with
  | Some (Array_var h) ->
    Some (List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) h []))
  | _ -> None

let link_var t ~target_level ~target ~local =
  match frame_at t target_level with
  | None -> failf "bad level \"#%d\"" target_level
  | Some target_frame ->
    let frame = current_frame t in
    if frame == target_frame && target = local then ()
    else Hashtbl.replace frame.vars local (Link (target_frame, target))

(* ------------------------------------------------------------------ *)
(* Commands *)

let register t name cmd = Hashtbl.replace t.commands name (Builtin cmd)

let register_value t name f =
  register t name (fun t words -> ok (f t words))

let register_signature t s = Hashtbl.replace t.signatures s.sig_name s

let signature_of t name = Hashtbl.find_opt t.signatures name

let signature_names t =
  List.sort String.compare
    (Hashtbl.fold (fun k _ acc -> k :: acc) t.signatures [])

let usage_of t name =
  Option.map (fun s -> s.sig_usage) (signature_of t name)

(* Registry-driven replacements for ad-hoc arity/option failures, so the
   runtime raises the exact message lint predicts. *)
let wrong_args_for t name =
  match usage_of t name with
  | Some usage -> wrong_args usage
  | None -> failf "wrong # args for \"%s\"" name

let bad_subcommand t ~cmd sub =
  match signature_of t cmd with
  | Some s when s.sig_subs <> [] ->
    let names =
      List.sort String.compare (List.map (fun x -> x.sub_name) s.sig_subs)
    in
    failf "bad option \"%s\": should be %s" sub (alternatives names)
  | _ -> failf "bad option \"%s\" to %s" sub cmd

let note_lint t ~errors ~warnings =
  t.lint.lint_runs <- t.lint.lint_runs + 1;
  t.lint.lint_errors <- t.lint.lint_errors + errors;
  t.lint.lint_warnings <- t.lint.lint_warnings + warnings

let reset_lint_stats t =
  t.lint.lint_runs <- 0;
  t.lint.lint_errors <- 0;
  t.lint.lint_warnings <- 0

let lint_stats t =
  [
    ("runs", string_of_int t.lint.lint_runs);
    ("errors", string_of_int t.lint.lint_errors);
    ("warnings", string_of_int t.lint.lint_warnings);
  ]

(* Compile a script, counting the pass. *)
let compile_counted t src =
  t.stats.script_compiles <- t.stats.script_compiles + 1;
  t.stats.parse_passes <- t.stats.parse_passes + 1;
  Compile.compile src

let define_proc t name formals body =
  let p = { formals; body; pcode = None } in
  (* Parse the body once at definition time; a redefinition installs a
     fresh record, so stale code cannot survive. *)
  if t.compile_enabled then p.pcode <- Some (compile_counted t body);
  Hashtbl.replace t.commands name (Proc p)

let proc_info t name =
  match Hashtbl.find_opt t.commands name with
  | Some (Proc p) -> Some (p.formals, p.body)
  | _ -> None

let delete_command t name =
  if Hashtbl.mem t.commands name then begin
    Hashtbl.remove t.commands name;
    true
  end
  else false

let rename_command t old_name new_name =
  match Hashtbl.find_opt t.commands old_name with
  | None ->
    Stdlib.Error
      (Printf.sprintf "can't rename \"%s\": command doesn't exist" old_name)
  | Some def ->
    Hashtbl.remove t.commands old_name;
    if new_name <> "" then Hashtbl.replace t.commands new_name def;
    Stdlib.Ok ()

let command_exists t name = Hashtbl.mem t.commands name

let command_names t =
  List.sort String.compare
    (Hashtbl.fold (fun k _ acc -> k :: acc) t.commands [])

let proc_names t =
  List.sort String.compare
    (Hashtbl.fold
       (fun k def acc -> match def with Proc _ -> k :: acc | Builtin _ -> acc)
       t.commands [])

let set_output t f = t.out <- f

let mark_error_handled t = t.error_in_progress <- false

let history_limit = 100

let set_history_recording t flag = t.history_recording <- flag

let record_history_event t script =
  if t.history_recording && String.trim script <> "" then begin
    t.history <- (t.history_next, script) :: t.history;
    t.history_next <- t.history_next + 1;
    (* Keep a bounded window, like Tcl's "history keep". *)
    if List.length t.history > history_limit then
      t.history <- List.filteri (fun i _ -> i < history_limit) t.history
  end

let history_events t = List.rev t.history

let history_event t n = List.assoc_opt n t.history

(* errorInfo lives in the global frame, like in real Tcl. *)
let set_error_info t text =
  Hashtbl.replace t.global_frame.vars "errorInfo" (Scalar text)

let get_error_info t =
  match Hashtbl.find_opt t.global_frame.vars "errorInfo" with
  | Some (Scalar v) -> v
  | _ -> ""

(* Record one level of error context: the command whose evaluation
   produced (or propagated) the error. *)
let trace_error t ~command msg =
  let command =
    let c = String.trim command in
    if String.length c > 150 then String.sub c 0 147 ^ "..." else c
  in
  if not t.error_in_progress then begin
    t.error_in_progress <- true;
    set_error_info t msg
  end;
  set_error_info t
    (get_error_info t ^ "\n    while executing\n\"" ^ command ^ "\"")

let output t s = t.out s

let command_count t = t.cmd_count

(* ------------------------------------------------------------------ *)
(* Compiled-script and expression caches.

   Both caches are keyed by the source string alone: compilation is
   purely syntactic (see Compile), so entries never go stale and
   invalidation reduces to LRU eviction. Recency is a shared tick; when
   a cache is full the entry with the smallest tick is scanned out
   (O(n), but only on eviction at the bounded size). *)

let cache_limit = 512

let bump_tick t =
  t.cache_tick <- t.cache_tick + 1;
  t.cache_tick

let evict_oldest (type a) (tbl : (string, a) Hashtbl.t) (tick_of : a -> int) =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, best) when best <= tick_of e -> ()
      | _ -> victim := Some (k, tick_of e))
    tbl;
  match !victim with
  | Some (k, _) ->
    Hashtbl.remove tbl k;
    true
  | None -> false

let compiled_program t src =
  match Hashtbl.find_opt t.script_cache src with
  | Some e ->
    t.stats.script_hits <- t.stats.script_hits + 1;
    e.s_tick <- bump_tick t;
    e.code
  | None ->
    t.stats.script_misses <- t.stats.script_misses + 1;
    (if Hashtbl.length t.script_cache >= cache_limit then
       if evict_oldest t.script_cache (fun e -> e.s_tick) then
         t.stats.script_evictions <- t.stats.script_evictions + 1);
    let code = compile_counted t src in
    Hashtbl.add t.script_cache src { code; s_tick = bump_tick t };
    code

let cached_expr_ast t src =
  match Hashtbl.find_opt t.expr_cache src with
  | Some e ->
    t.stats.expr_hits <- t.stats.expr_hits + 1;
    e.e_tick <- bump_tick t;
    e.east
  | None ->
    t.stats.expr_misses <- t.stats.expr_misses + 1;
    (if Hashtbl.length t.expr_cache >= cache_limit then
       if evict_oldest t.expr_cache (fun e -> e.e_tick) then
         t.stats.expr_evictions <- t.stats.expr_evictions + 1);
    t.stats.expr_compiles <- t.stats.expr_compiles + 1;
    let east =
      match Expr.parse src with Ok a -> Some a | Error _ -> None
    in
    Hashtbl.add t.expr_cache src { east; e_tick = bump_tick t };
    east

let set_compile_enabled t flag = t.compile_enabled <- flag

let compile_enabled t = t.compile_enabled

let clear_compile_caches t =
  Hashtbl.reset t.script_cache;
  Hashtbl.reset t.expr_cache

let reset_compile_stats t =
  let s = t.stats in
  s.script_hits <- 0;
  s.script_misses <- 0;
  s.script_evictions <- 0;
  s.script_compiles <- 0;
  s.expr_hits <- 0;
  s.expr_misses <- 0;
  s.expr_evictions <- 0;
  s.expr_compiles <- 0;
  s.parse_passes <- 0

let compile_stats t =
  let s = t.stats in
  [
    ("enabled", if t.compile_enabled then "1" else "0");
    ("script_cache_size", string_of_int (Hashtbl.length t.script_cache));
    ("script_hits", string_of_int s.script_hits);
    ("script_misses", string_of_int s.script_misses);
    ("script_evictions", string_of_int s.script_evictions);
    ("script_compiles", string_of_int s.script_compiles);
    ("expr_cache_size", string_of_int (Hashtbl.length t.expr_cache));
    ("expr_hits", string_of_int s.expr_hits);
    ("expr_misses", string_of_int s.expr_misses);
    ("expr_evictions", string_of_int s.expr_evictions);
    ("expr_compiles", string_of_int s.expr_compiles);
    ("parse_passes", string_of_int s.parse_passes);
  ]

let set_time_source t f = t.time_source <- f

let current_time t =
  match t.time_source with Some f -> f () | None -> Sys.time ()

(* ------------------------------------------------------------------ *)
(* Resource limits and cancellation *)

let recursion_limit t = t.recursionlimit

let set_recursion_limit t n =
  if n < 1 then failf "recursionlimit must be at least 1"
  else t.recursionlimit <- n

let set_limit_clock t f = t.limit_clock <- f

let limit_clock t = t.limit_clock

let limit_now t =
  match t.limit_clock with
  | Some f -> f ()
  | None -> int_of_float (current_time t *. 1000.0)

let recompute_guard t =
  t.guard_active <-
    t.limit_time_ms > 0 || t.limit_cmds > 0 || t.tripped <> None
    || t.cancel_request <> None

(* Re-arm every configured budget and clear the tripped state: the time
   deadline restarts from now, the command budget refills.  This is the
   only way out of a tripped limit. *)
let rearm_limits t =
  t.tripped <- None;
  t.limit_cmds_left <- t.limit_cmds;
  t.limit_countdown <- t.limit_granularity;
  if t.limit_time_ms > 0 then
    t.limit_deadline_ms <- limit_now t + t.limit_time_ms;
  recompute_guard t

let set_time_limit ?(granularity = 1) t ms =
  if ms < 0 then failf "time limit must be a non-negative integer"
  else if granularity < 1 then failf "granularity must be at least 1"
  else begin
    t.limit_time_ms <- ms;
    t.limit_granularity <- granularity;
    rearm_limits t
  end

let set_command_limit t n =
  if n < 0 then failf "command limit must be a non-negative integer"
  else begin
    t.limit_cmds <- n;
    rearm_limits t
  end

let time_limit t = t.limit_time_ms

let time_limit_granularity t = t.limit_granularity

let command_limit t = t.limit_cmds

let limit_tripped t = t.tripped

let limit_message = function
  | Limit_time -> "time limit exceeded"
  | Limit_commands -> "command count limit exceeded"

let cancel ?(unwind = false) ?message t =
  let msg =
    match message with
    | Some m -> m
    | None -> if unwind then "eval unwound" else "eval canceled"
  in
  t.cancel_request <- Some (msg, unwind);
  t.guard.g_cancels <- t.guard.g_cancels + 1;
  recompute_guard t

let cancel_pending t = t.cancel_request <> None

let unwinding t = t.unwinding

(* For hosts that surface a limit/unwind error as a value (e.g. a send
   reply) rather than letting it propagate: once delivered, the error
   is ordinary again and [catch] must work. *)
let clear_unwinding t = t.unwinding <- false

let denied_count t = t.guard.g_denied

(* One boundary check.  Callers test [guard_active] first, so this only
   runs when some limit or cancellation is armed.  [spend] is true for a
   command dispatch (which consumes command budget); script-entry checks
   pass false.  Returns the error message when evaluation must abort. *)
let guard_check t ~spend =
  match t.tripped with
  | Some k ->
    t.unwinding <- true;
    Some (limit_message k)
  | None -> (
    match t.cancel_request with
    | Some (msg, unwind) ->
      (* Cancellation is one-shot: delivered here, consumed.  Plain
         cancels are catchable (the script may clean up); -unwind ones
         propagate through catch like limit errors. *)
      t.cancel_request <- None;
      t.unwinding <- unwind;
      t.guard.g_cancelled <- t.guard.g_cancelled + 1;
      recompute_guard t;
      Some msg
    | None ->
      let trip k =
        t.tripped <- Some k;
        t.unwinding <- true;
        (match k with
        | Limit_time -> t.guard.g_time_exceeded <- t.guard.g_time_exceeded + 1
        | Limit_commands ->
          t.guard.g_cmd_exceeded <- t.guard.g_cmd_exceeded + 1);
        Some (limit_message k)
      in
      t.guard.g_checks <- t.guard.g_checks + 1;
      let cmd_hit =
        spend && t.limit_cmds > 0
        && begin
             t.limit_cmds_left <- t.limit_cmds_left - 1;
             t.limit_cmds_left < 0
           end
      in
      if cmd_hit then trip Limit_commands
      else if t.limit_time_ms > 0 then begin
        t.limit_countdown <- t.limit_countdown - 1;
        if t.limit_countdown <= 0 then begin
          t.limit_countdown <- t.limit_granularity;
          if limit_now t >= t.limit_deadline_ms then trip Limit_time
          else None
        end
        else None
      end
      else None)

(* ------------------------------------------------------------------ *)
(* Slave interpreters, hidden commands, aliases *)

let is_safe t = t.safe

let set_safe t flag = t.safe <- flag

let find_slave t name = Hashtbl.find_opt t.slaves name

let slave_names t =
  List.sort String.compare
    (Hashtbl.fold (fun k _ acc -> k :: acc) t.slaves [])

let add_slave t name slave =
  (* Guard stats are shared down the tree so an application's metrics see
     slave activity without walking the tree on every snapshot. *)
  slave.guard <- t.guard;
  Hashtbl.replace t.slaves name slave;
  t.guard.g_creates <- t.guard.g_creates + 1

let rec delete_slave t name =
  match Hashtbl.find_opt t.slaves name with
  | None -> false
  | Some s ->
    (* Recursive teardown: a master owns its whole subtree. *)
    List.iter (fun n -> ignore (delete_slave s n)) (slave_names s);
    Hashtbl.remove t.slaves name;
    t.guard.g_deletes <- t.guard.g_deletes + 1;
    true

let rec count_slaves t =
  Hashtbl.fold (fun _ s acc -> acc + 1 + count_slaves s) t.slaves 0

let rec count_safe_slaves t =
  Hashtbl.fold
    (fun _ s acc ->
      acc + (if s.safe then 1 else 0) + count_safe_slaves s)
    t.slaves 0

let hide_command t name =
  match Hashtbl.find_opt t.commands name with
  | None ->
    Stdlib.Error (Printf.sprintf "unknown command \"%s\"" name)
  | Some def ->
    if Hashtbl.mem t.hidden name then
      Stdlib.Error
        (Printf.sprintf "hidden command named \"%s\" already exists" name)
    else begin
      Hashtbl.remove t.commands name;
      Hashtbl.replace t.hidden name def;
      Stdlib.Ok ()
    end

let expose_command ?as_name t name =
  let exposed = Option.value as_name ~default:name in
  match Hashtbl.find_opt t.hidden name with
  | None ->
    Stdlib.Error (Printf.sprintf "unknown hidden command \"%s\"" name)
  | Some def ->
    if Hashtbl.mem t.commands exposed then
      Stdlib.Error
        (Printf.sprintf "exposed command \"%s\" already exists" exposed)
    else begin
      Hashtbl.remove t.hidden name;
      Hashtbl.replace t.commands exposed def;
      Stdlib.Ok ()
    end

let hidden_names t =
  List.sort String.compare
    (Hashtbl.fold (fun k _ acc -> k :: acc) t.hidden [])

let note_alias t name target = Hashtbl.replace t.aliases name target

let drop_alias t name = Hashtbl.remove t.aliases name

let alias_target t name = Hashtbl.find_opt t.aliases name

let alias_names t =
  List.sort String.compare
    (Hashtbl.fold (fun k _ acc -> k :: acc) t.aliases [])

let count_alias_call t = t.guard.g_alias_calls <- t.guard.g_alias_calls + 1

(* ------------------------------------------------------------------ *)
(* Guard metrics exports *)

let reset_guard_stats t =
  let g = t.guard in
  g.g_checks <- 0;
  g.g_time_exceeded <- 0;
  g.g_cmd_exceeded <- 0;
  g.g_cancels <- 0;
  g.g_cancelled <- 0;
  g.g_denied <- 0;
  g.g_recursion_exceeded <- 0;
  g.g_creates <- 0;
  g.g_deletes <- 0;
  g.g_alias_calls <- 0

let limit_stats t =
  let g = t.guard in
  [
    ("checks", string_of_int g.g_checks);
    ("time_exceeded", string_of_int g.g_time_exceeded);
    ("cmd_exceeded", string_of_int g.g_cmd_exceeded);
    ("cancels", string_of_int g.g_cancels);
    ("cancelled", string_of_int g.g_cancelled);
    ("denied", string_of_int g.g_denied);
    ("recursion_exceeded", string_of_int g.g_recursion_exceeded);
  ]

let interp_stats t =
  let g = t.guard in
  [
    ("slaves", string_of_int (count_slaves t));
    ("safe_slaves", string_of_int (count_safe_slaves t));
    ("creates", string_of_int g.g_creates);
    ("deletes", string_of_int g.g_deletes);
    ("alias_calls", string_of_int g.g_alias_calls);
    ("recursionlimit", string_of_int t.recursionlimit);
    ("time_limit_ms", string_of_int t.limit_time_ms);
    ("command_limit", string_of_int t.limit_cmds);
  ]

(* ------------------------------------------------------------------ *)
(* Parser / evaluator *)

let is_sep c = Chars.is_space c

let skip_separators = Chars.skip_separators

let skip_comment = Chars.skip_comment

(* Evaluate [src] starting at [pos]. In [bracket] mode, evaluation stops at
   the first unmatched ']' (command substitution); the returned position is
   just after it. Returns (status, value, next position). *)
let rec eval_in t src pos ~bracket =
  let n = String.length src in
  if t.depth = 0 then begin
    t.error_in_progress <- false;
    t.unwinding <- false
  end;
  if t.depth > t.recursionlimit then begin
    t.guard.g_recursion_exceeded <- t.guard.g_recursion_exceeded + 1;
    (Tcl_error, "too many nested evaluations (infinite loop?)", n)
  end
  else begin
    (* Script-entry boundary: catches runaways (e.g. [while 1 {}]) whose
       bodies never dispatch a command.  No command budget is spent. *)
    match if t.guard_active then guard_check t ~spend:false else None with
    | Some msg -> (Tcl_error, msg, n)
    | None ->
    t.depth <- t.depth + 1;
    let finally () = t.depth <- t.depth - 1 in
    match eval_loop t src n pos ~bracket (Tcl_ok, "") with
    | res ->
      finally ();
      res
    | exception e ->
      finally ();
      raise e
  end

and eval_loop t src n pos ~bracket last =
  let pos = skip_separators src n pos in
  if pos >= n then
    let status, v = last in
    (status, v, pos)
  else if bracket && src.[pos] = ']' then
    let status, v = last in
    (status, v, pos + 1)
  else if src.[pos] = '#' then
    eval_loop t src n (skip_comment src n pos) ~bracket last
  else
    match parse_and_run t src n pos ~bracket with
    | Tcl_ok, v, next -> eval_loop t src n next ~bracket (Tcl_ok, v)
    | (status, v, next) -> (status, v, next)

(* Parse the words of one command (performing substitutions), then invoke
   it. *)
and parse_and_run t src n pos ~bracket =
  match parse_words t src n pos ~bracket [] with
  | exception Propagate (status, v) -> (status, v, n)
  | exception Tcl_failure msg ->
    if not t.error_in_progress then begin
      t.error_in_progress <- true;
      set_error_info t msg
    end;
    (Tcl_error, msg, n)
  | words, next ->
    if words = [] then (Tcl_ok, "", next)
    else
      let status, v = invoke t words in
      (if status = Tcl_error then
         let stop = min next n in
         trace_error t ~command:(String.sub src pos (stop - pos)) v);
      (status, v, next)

and parse_words t src n pos ~bracket acc =
  let pos = ref pos in
  (* Skip word separators; a backslash-newline counts as one. *)
  let rec skip () =
    if !pos < n && is_sep src.[!pos] then begin
      incr pos;
      skip ()
    end
    else if !pos + 1 < n && src.[!pos] = '\\' && src.[!pos + 1] = '\n' then begin
      let _, j = Chars.backslash_subst src !pos in
      pos := j;
      skip ()
    end
  in
  skip ();
  if
    !pos >= n
    || src.[!pos] = '\n'
    || src.[!pos] = ';'
    || (bracket && src.[!pos] = ']')
  then begin
    (* Command terminator: consume a newline/semicolon, leave ']' for the
       caller. *)
    let next =
      if !pos < n && (src.[!pos] = '\n' || src.[!pos] = ';') then !pos + 1
      else !pos
    in
    (List.rev acc, next)
  end
  else
    let word, next = parse_word t src n !pos ~bracket in
    parse_words t src n next ~bracket (word :: acc)

and parse_word t src n pos ~bracket =
  if src.[pos] = '{' then begin
    match Chars.find_matching_brace src pos with
    | None -> raise (Tcl_failure "missing close-brace")
    | Some j ->
      check_word_end src n (j + 1) ~bracket;
      (Chars.braced_content src pos j, j + 1)
  end
  else if src.[pos] = '"' then begin
    let buf = Buffer.create 16 in
    let next = substitute_until t src n (pos + 1) ~stop_quote:true ~bracket buf in
    check_word_end src n next ~bracket;
    (Buffer.contents buf, next)
  end
  else begin
    let buf = Buffer.create 16 in
    let next = substitute_until t src n pos ~stop_quote:false ~bracket buf in
    (Buffer.contents buf, next)
  end

and check_word_end src n pos ~bracket =
  if not (Chars.word_end_ok src n pos ~bracket) then
    raise
      (Tcl_failure "extra characters after close-brace or close-quote")

(* Scan a word (or the inside of a quoted word), appending substituted text
   to [buf]. Returns the position just after the word. [']'] only ends a
   bare word inside a command substitution; elsewhere it is an ordinary
   character, as in Tcl. *)
and substitute_until t src n pos ~stop_quote ~bracket buf =
  if pos >= n then
    if stop_quote then raise (Tcl_failure "missing close quote") else pos
  else
    let c = src.[pos] in
    if stop_quote && c = '"' then pos + 1
    else if
      (not stop_quote)
      && (is_sep c || c = '\n' || c = ';' || (bracket && c = ']'))
    then pos
    else
      match c with
      | '\\' when (not stop_quote) && pos + 1 < n && src.[pos + 1] = '\n' ->
        (* Backslash-newline terminates a bare word (it acts as a word
           separator). *)
        pos
      | '\\' ->
        let repl, j = Chars.backslash_subst src pos in
        Buffer.add_string buf repl;
        substitute_until t src n j ~stop_quote ~bracket buf
      | '$' ->
        let j = substitute_variable t src n pos ~bracket buf in
        substitute_until t src n j ~stop_quote ~bracket buf
      | '[' -> (
        match eval_in t src (pos + 1) ~bracket:true with
        | Tcl_ok, v, j ->
          Buffer.add_string buf v;
          substitute_until t src n j ~stop_quote ~bracket buf
        | status, v, _ -> raise (Propagate (status, v)))
      | c ->
        Buffer.add_char buf c;
        substitute_until t src n (pos + 1) ~stop_quote ~bracket buf

(* Substitute a $-variable reference starting at the '$'. Returns the
   position after the reference. *)
and substitute_variable t src n pos ~bracket buf =
  let start = pos + 1 in
  if start < n && src.[start] = '{' then begin
    match String.index_from_opt src start '}' with
    | None -> raise (Tcl_failure "missing close-brace for variable name")
    | Some j ->
      let name = String.sub src (start + 1) (j - start - 1) in
      Buffer.add_string buf (get_var_exn t name);
      j + 1
  end
  else begin
    let i = ref start in
    while !i < n && Chars.is_var_char src.[!i] do
      incr i
    done;
    if !i = start then begin
      (* A lone '$' is literal. *)
      Buffer.add_char buf '$';
      start
    end
    else if !i < n && src.[!i] = '(' then begin
      (* Array element: the index undergoes substitution itself. *)
      let base = String.sub src start (!i - start) in
      let idx_buf = Buffer.create 8 in
      let j = substitute_index t src n (!i + 1) ~bracket idx_buf in
      let name = base ^ "(" ^ Buffer.contents idx_buf ^ ")" in
      Buffer.add_string buf (get_var_exn t name);
      j
    end
    else begin
      let name = String.sub src start (!i - start) in
      Buffer.add_string buf (get_var_exn t name);
      !i
    end
  end

and substitute_index t src n pos ~bracket buf =
  if pos >= n then raise (Tcl_failure "missing )")
  else
    match src.[pos] with
    | ')' -> pos + 1
    | '\\' ->
      let repl, j = Chars.backslash_subst src pos in
      Buffer.add_string buf repl;
      substitute_index t src n j ~bracket buf
    | '$' ->
      let j = substitute_variable t src n pos ~bracket buf in
      substitute_index t src n j ~bracket buf
    | '[' -> (
      match eval_in t src (pos + 1) ~bracket:true with
      | Tcl_ok, v, j ->
        Buffer.add_string buf v;
        substitute_index t src n j ~bracket buf
      | status, v, _ -> raise (Propagate (status, v)))
    | c ->
      Buffer.add_char buf c;
      substitute_index t src n (pos + 1) ~bracket buf

(* Invoke one fully substituted command. *)
and invoke t words =
  match words with
  | [] -> (Tcl_ok, "")
  | name :: _ -> (
    (* Command-dispatch boundary: limits and cancellation are delivered
       here (spending command budget) before the command runs. *)
    match if t.guard_active then guard_check t ~spend:true else None with
    | Some msg -> (Tcl_error, msg)
    | None ->
      t.cmd_count <- t.cmd_count + 1;
      invoke_command t name words)

and run_builtin t cmd words =
  try cmd t words with
  | Tcl_failure msg -> (Tcl_error, msg)
  | Expr.Error msg -> (Tcl_error, msg)
  | e -> (
    match translate_exn e with
    | Some msg -> (Tcl_error, msg)
    | None -> raise e)

and invoke_command t name words =
  match Hashtbl.find_opt t.commands name with
  | Some (Builtin cmd) -> run_builtin t cmd words
  | Some (Proc p) -> call_proc t name p words
  | None ->
    if Hashtbl.mem t.hidden name then begin
      (* A hidden command is deliberately withheld (safe slave or send
         guard): report a denial, never fall through to [unknown]. *)
      t.guard.g_denied <- t.guard.g_denied + 1;
      ( Tcl_error,
        Printf.sprintf "permission denied: command \"%s\" is hidden" name )
    end
    else (
      match Hashtbl.find_opt t.commands "unknown" with
      | Some (Builtin cmd) -> run_builtin t cmd ("unknown" :: words)
      | Some (Proc p) -> call_proc t "unknown" p ("unknown" :: words)
      | None -> (Tcl_error, Printf.sprintf "invalid command name \"%s\"" name))

(* Run a hidden command from the trusted side (interp invokehidden). *)
and invoke_hidden t name words =
  match Hashtbl.find_opt t.hidden name with
  | None ->
    ( Tcl_error,
      Printf.sprintf "unknown hidden command \"%s\"" name )
  | Some (Builtin cmd) -> run_builtin t cmd words
  | Some (Proc p) -> call_proc t name p words

and call_proc t name p words =
  let frame = new_frame () in
  let actuals = List.tl words in
  (* Bind formals to actuals, handling defaults and the trailing "args". *)
  let rec bind formals actuals =
    match (formals, actuals) with
    | [], [] -> None
    | [], _ :: _ ->
      Some (Printf.sprintf "called \"%s\" with too many arguments" name)
    | [ ("args", _) ], rest ->
      Hashtbl.replace frame.vars "args" (Scalar (Tcl_list.format rest));
      None
    | (formal, _) :: tl, v :: rest ->
      Hashtbl.replace frame.vars formal (Scalar v);
      bind tl rest
    | (formal, Some default) :: tl, [] ->
      Hashtbl.replace frame.vars formal (Scalar default);
      bind tl []
    | (formal, None) :: _, [] ->
      Some
        (Printf.sprintf "no value given for parameter \"%s\" to \"%s\""
           formal name)
  in
  match bind p.formals actuals with
  | Some msg -> (Tcl_error, msg)
  | None ->
    t.stack <- frame :: t.stack;
    let status, v =
      Fun.protect
        ~finally:(fun () -> t.stack <- List.tl t.stack)
        (fun () -> run_proc_body t p)
    in
    (match status with
    | Tcl_return | Tcl_ok -> (Tcl_ok, v)
    | Tcl_break -> (Tcl_error, "invoked \"break\" outside of a loop")
    | Tcl_continue -> (Tcl_error, "invoked \"continue\" outside of a loop")
    | Tcl_error ->
      (Tcl_error, Printf.sprintf "%s\n    (procedure \"%s\")" v name))

and run_proc_body t p =
  if t.compile_enabled then begin
    let code =
      match p.pcode with
      | Some code -> code
      | None ->
        (* Defined while the cache was off, called with it on. *)
        let code = compile_counted t p.body in
        p.pcode <- Some code;
        code
    in
    exec_program t code
  end
  else begin
    t.stats.parse_passes <- t.stats.parse_passes + 1;
    let status, v, _ = eval_in t p.body 0 ~bracket:false in
    (status, v)
  end

(* ------------------------------------------------------------------ *)
(* Execution of compiled programs.

   Mirrors eval_in / eval_loop / parse_and_run over the pre-parsed form;
   every status, error message, errorInfo line and side-effect order
   must match the reference evaluator above. *)

and exec_program t prog =
  if t.depth = 0 then begin
    t.error_in_progress <- false;
    t.unwinding <- false
  end;
  if t.depth > t.recursionlimit then begin
    t.guard.g_recursion_exceeded <- t.guard.g_recursion_exceeded + 1;
    (Tcl_error, "too many nested evaluations (infinite loop?)")
  end
  else begin
    match if t.guard_active then guard_check t ~spend:false else None with
    | Some msg -> (Tcl_error, msg)
    | None ->
    t.depth <- t.depth + 1;
    let finally () = t.depth <- t.depth - 1 in
    match exec_commands t prog (Tcl_ok, "") with
    | res ->
      finally ();
      res
    | exception e ->
      finally ();
      raise e
  end

and exec_commands t prog last =
  match prog with
  | [] -> last
  | cmd :: rest -> (
    match exec_command t cmd with
    | (Tcl_ok, _) as res -> exec_commands t rest res
    | res -> res)

and exec_command t (cmd : Compile.command) =
  match subst_words t cmd.words [] with
  | exception Propagate (status, v) -> (status, v)
  | exception Tcl_failure msg ->
    (* A substitution or structural error: errorInfo starts with the bare
       message; the enclosing command adds its own trace line. *)
    if not t.error_in_progress then begin
      t.error_in_progress <- true;
      set_error_info t msg
    end;
    (Tcl_error, msg)
  | [] -> (Tcl_ok, "") (* blank command resets the running result *)
  | words ->
    let (status, v) as res = invoke t words in
    if status = Tcl_error then trace_error t ~command:cmd.text v;
    res

and subst_words t words acc =
  match words with
  | [] -> List.rev acc
  | w :: rest ->
    let s = subst_word t w in
    subst_words t rest (s :: acc)

and subst_word t (w : Compile.word) =
  match w with
  | Compile.W_lit s -> s
  | Compile.W_parts [ Compile.Var name ] -> get_var_exn t name
  | Compile.W_parts [ Compile.Cmd prog ] -> exec_nested t prog
  | Compile.W_parts parts ->
    let buf = Buffer.create 16 in
    subst_parts t parts buf;
    Buffer.contents buf
  | Compile.W_fail (parts, msg) ->
    (* Replay the substitutions scanned before the syntax error (they may
       have side effects or abort first), then report it. *)
    let buf = Buffer.create 16 in
    subst_parts t parts buf;
    raise (Tcl_failure msg)

and subst_parts t parts buf =
  List.iter
    (fun (p : Compile.part) ->
      match p with
      | Compile.Lit s -> Buffer.add_string buf s
      | Compile.Var name -> Buffer.add_string buf (get_var_exn t name)
      | Compile.Var_idx (base, idx) ->
        let ibuf = Buffer.create 8 in
        subst_parts t idx ibuf;
        let name = base ^ "(" ^ Buffer.contents ibuf ^ ")" in
        Buffer.add_string buf (get_var_exn t name)
      | Compile.Cmd prog -> Buffer.add_string buf (exec_nested t prog))
    parts

(* A [script] command substitution: ok yields its value, anything else
   aborts the enclosing command with that status. *)
and exec_nested t prog =
  match exec_program t prog with
  | Tcl_ok, v -> v
  | status, v -> raise (Propagate (status, v))

let eval t src =
  if t.compile_enabled then exec_program t (compiled_program t src)
  else begin
    t.stats.parse_passes <- t.stats.parse_passes + 1;
    let status, v, _ = eval_in t src 0 ~bracket:false in
    (status, v)
  end

let eval_value t src =
  match eval t src with
  | Tcl_ok, v -> Stdlib.Ok v
  | Tcl_error, msg -> Stdlib.Error msg
  | Tcl_return, _ -> Stdlib.Error "command returned \"return\" at top level"
  | Tcl_break, _ -> Stdlib.Error "invoked \"break\" outside of a loop"
  | Tcl_continue, _ ->
    Stdlib.Error "invoked \"continue\" outside of a loop"

let eval_words t words = invoke t words

let expr_env t =
  {
    Expr.get_var =
      (fun name ->
        match get_var t name with
        | Some v -> v
        | None ->
          raise
            (Expr.Error
               (Printf.sprintf "can't read \"%s\": no such variable" name)));
    Expr.eval_cmd =
      (fun script ->
        match eval t script with
        | Tcl_ok, v -> v
        | _, msg -> raise (Expr.Error msg));
  }

(* Evaluate an expression through the AST cache when compilation is on.
   Unparseable strings (None entries) always take the interleaved
   evaluator, which reproduces partial-substitution side effects before
   the syntax error. *)
let eval_expr t src =
  let env = expr_env t in
  if t.compile_enabled then
    match cached_expr_ast t src with
    | Some ast -> Expr.eval_ast env ast
    | None -> Expr.eval env src
  else Expr.eval env src

let eval_expr_string t src = Expr.to_string (eval_expr t src)

let eval_expr_bool t cond =
  match Expr.truthy (eval_expr t cond) with
  | b -> b
  | exception Expr.Error msg -> raise (Tcl_failure msg)
