(* The interp command needs to create fresh fully-equipped interpreters
   (slaves get the whole built-in set), so install and new_interp are
   mutually recursive: Interp_cmd receives new_interp as a callback. *)
let rec install t =
  Cmd_control.install t;
  Cmd_list.install t;
  Cmd_string.install t;
  Cmd_info.install t;
  Cmd_file.install t;
  Cmd_regexp.install t;
  Cmd_misc.install t;
  Interp_cmd.install ~sub_interp:new_interp t;
  (* All structural builtins are in place: let the VM inline them. *)
  Interp.mark_canonical t

and new_interp () =
  let t = Interp.create () in
  install t;
  t

let create_slave ~master ~safe name =
  Interp_cmd.create_slave ~sub_interp:new_interp ~master ~safe name
