(* Whole-program call graph over compiled Tcl scripts.

   Nodes are the top level (one shared root for every file, binding and
   [after] script — they all run once the files do) and each procedure
   defined anywhere in the program.  The walker (Lint) feeds two kinds
   of edges:

   - *call* edges: a literal command-position invocation of a
     script-defined procedure, tagged with its site and whether the
     call is conditional (nested under if/while/catch/... or in dead
     code) relative to its node's entry;
   - *mention* edges: every whitespace-ish token of every literal word
     anywhere in a node — the maximally conservative account of
     callback references ([-command cb], [after 100 cb], [eval]ed
     fragments, aliases), so reachability errs toward "reachable" and
     unreachable-procedure reports stay free of false positives.

   From those it answers: which procedures are unreachable from the
   root, and which unconditionally recurse (a cycle in the
   unconditional-call subgraph — every execution of the procedure calls
   back into the cycle before it can return, so any call overflows the
   recursion limit). *)

type node = Nroot | Nproc of string

type call = {
  c_from : node;
  c_callee : string;
  c_file : string option;
  c_off : int;  (* call-site offset in its file *)
  c_cond : bool;  (* nested under any conditional construct *)
}

type t = {
  defs : (string, string option * int) Hashtbl.t;
      (* proc name -> defining file, offset (first definition wins) *)
  mutable calls : call list;
  mentions : (node * string, unit) Hashtbl.t;
  mutable n_calls : int;
  mutable n_mentions : int;
}

let create () =
  {
    defs = Hashtbl.create 16;
    calls = [];
    mentions = Hashtbl.create 64;
    n_calls = 0;
    n_mentions = 0;
  }

let add_def t name ~file ~off =
  if not (Hashtbl.mem t.defs name) then Hashtbl.add t.defs name (file, off)

let def_site t name = Hashtbl.find_opt t.defs name

let add_call t ~from ~callee ~file ~off ~cond =
  t.n_calls <- t.n_calls + 1;
  t.calls <-
    { c_from = from; c_callee = callee; c_file = file; c_off = off;
      c_cond = cond }
    :: t.calls

let add_mention t node token =
  if token <> "" && not (Hashtbl.mem t.mentions (node, token)) then begin
    t.n_mentions <- t.n_mentions + 1;
    Hashtbl.replace t.mentions (node, token) ()
  end

(* Split a literal word into candidate name tokens: whitespace,
   separators and grouping characters all break tokens, so "-command
   {cb $x}" mentions "cb" and an [eval]ed fragment mentions every
   plain word in it. *)
let tokens_of_literal s add =
  let n = String.length s in
  let start = ref (-1) in
  let flush i =
    if !start >= 0 then begin
      add (String.sub s !start (i - !start));
      start := -1
    end
  in
  for i = 0 to n - 1 do
    match s.[i] with
    | ' ' | '\t' | '\n' | '\r' | ';' | '{' | '}' | '[' | ']' | '"' | '$'
    | '(' | ')' ->
      flush i
    | _ -> if !start < 0 then start := i
  done;
  flush n

let edge_count t = t.n_calls + t.n_mentions

let proc_count t = Hashtbl.length t.defs

(* Procedures reachable from the root: breadth-first over call and
   mention edges.  Mentions are attributed to nodes, so a reference
   living only inside an unreachable procedure does not resurrect it —
   but any reference from live code (even in data position) does. *)
let reachable t =
  let live = Hashtbl.create 16 in
  (* node -> callee names *)
  let out = Hashtbl.create 16 in
  let add_out node callee =
    if Hashtbl.mem t.defs callee then
      Hashtbl.replace out node
        (callee :: (try Hashtbl.find out node with Not_found -> []))
  in
  List.iter (fun c -> add_out c.c_from c.c_callee) t.calls;
  Hashtbl.iter (fun (node, token) () -> add_out node token) t.mentions;
  let queue = Queue.create () in
  Queue.add Nroot queue;
  let seen_root = ref false in
  while not (Queue.is_empty queue) do
    let node = Queue.take queue in
    let fresh =
      match node with
      | Nroot ->
        let f = not !seen_root in
        seen_root := true;
        f
      | Nproc p ->
        if Hashtbl.mem live p then false
        else begin
          Hashtbl.replace live p ();
          true
        end
    in
    if fresh then
      List.iter
        (fun callee ->
          if not (Hashtbl.mem live callee) then Queue.add (Nproc callee) queue)
        (try Hashtbl.find out node with Not_found -> [])
  done;
  live

let unreachable t =
  let live = reachable t in
  Hashtbl.fold
    (fun name (file, off) acc ->
      if Hashtbl.mem live name then acc else (name, file, off) :: acc)
    t.defs []

(* Procedures on a cycle of unconditional calls: every such procedure,
   once entered, is guaranteed to re-enter the cycle, so any call to it
   overflows the recursion limit.  Returns one witness call edge per
   offending procedure. *)
let infinite_recursion t =
  (* proc -> unconditional out-edges (first witness call per callee) *)
  let out : (string, call list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun c ->
      match c.c_from with
      | Nproc p when (not c.c_cond) && Hashtbl.mem t.defs c.c_callee ->
        let prev = try Hashtbl.find out p with Not_found -> [] in
        if not (List.exists (fun c' -> c'.c_callee = c.c_callee) prev) then
          Hashtbl.replace out p (c :: prev)
      | _ -> ())
    t.calls;
  (* A proc is on a cycle iff it can unconditionally reach itself; the
     witness is its own call edge that leads back around. *)
  let cycle_witness start =
    let reaches p target =
      let seen = Hashtbl.create 8 in
      let rec go p =
        p = target
        || List.exists
             (fun c ->
               (not (Hashtbl.mem seen c.c_callee))
               && begin
                    Hashtbl.replace seen c.c_callee ();
                    go c.c_callee
                  end)
             (try Hashtbl.find out p with Not_found -> [])
      in
      go p
    in
    List.find_opt
      (fun c -> reaches c.c_callee start)
      (List.rev (try Hashtbl.find out start with Not_found -> []))
  in
  Hashtbl.fold
    (fun p _ acc ->
      match cycle_witness p with Some c -> (p, c) :: acc | None -> acc)
    out []
