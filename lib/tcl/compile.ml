(* Parse-once compilation of Tcl scripts.

   The interpreter's reference evaluator (Interp.eval_in) re-scans the
   script text character by character on every execution, interleaving
   parsing with substitution.  This module performs the *syntactic* half
   of that work exactly once, producing a program the interpreter can
   execute repeatedly: a sequence of commands, each a list of word
   templates made of static text, variable references and nested
   command-substitution sub-programs.

   Compilation is purely lexical — it never reads variables, never runs
   commands and never depends on the command table — so a compiled
   program is valid for the lifetime of the interpreter and can be
   cached keyed by the script string alone.

   Semantic fidelity is the contract: executing the compiled form must
   be byte-identical to the reference evaluator, including error
   messages, errorInfo traces, break/continue/return propagation out of
   substitutions, and the *order* of side effects.  Two consequences
   shape the representation:

   - The reference evaluator only discovers a syntax error when
     execution reaches it, after every earlier command (and every
     earlier substitution in the same command) has already run.  A
     structural error therefore does not fail compilation; it is
     embedded as a [W_fail] word that first performs the substitutions
     scanned before the error (for their side effects) and then raises
     the same failure.  Compilation of the surrounding program stops at
     that point, exactly as the reference parse aborts there.

   - The errorInfo trace quotes the command's source text verbatim
     (including a trailing semicolon, which [String.trim] preserves), so
     each compiled command carries that exact substring. *)

type part =
  | Lit of string  (** static text, backslash sequences already applied *)
  | Var of string  (** [$name] / [${name}]: name fixed at compile time *)
  | Var_idx of string * part list
      (** [$base(index)]: the index itself undergoes substitution *)
  | Cmd of program  (** [\[script\]] command substitution, compiled *)

and word =
  | W_lit of string  (** fully static word (braced, or no substitutions) *)
  | W_parts of part list  (** concatenation of substituted parts *)
  | W_fail of part list * string
      (** structural error discovered mid-word: run the parts for their
          side effects, then fail with the parser's message *)

and command = {
  words : word list;  (** empty for a blank command (resets the result) *)
  text : string;  (** exact source text, for the errorInfo trace *)
  pos : int;  (** offset of the command's first word within the source *)
  wpos : int list;  (** offset of each word's start, parallel to [words] *)
}

and program = command list

(* Outcome of scanning one substitution-bearing sequence (the inside of a
   quoted word, a bare word, or an array index). *)
type seq_result =
  | Seq_ok of part list * int  (** parts and the position just after *)
  | Seq_fail of part list * string
      (** structural error: the parts scanned before it still run *)
  | Seq_abort of part list
      (** ends with a [Cmd] whose program contains a failure; reaching it
          at run time aborts via the nested program's own error *)

type var_result =
  | V_ok of part * int
  | V_fail of part list * string
  | V_abort of part list

type word_result =
  | W_done of word * int
  | W_stop of word  (** compilation cannot continue past this word *)

let mk_word = function
  | [] -> W_lit ""
  | [ Lit s ] -> W_lit s
  | parts -> W_parts parts

(* A part accumulator: coalesces adjacent literal text. *)
let accum () =
  let acc = ref [] in
  let lit = Buffer.create 16 in
  let flush () =
    if Buffer.length lit > 0 then begin
      acc := Lit (Buffer.contents lit) :: !acc;
      Buffer.clear lit
    end
  in
  let add_lit s = Buffer.add_string lit s in
  let add_part = function
    | Lit s -> add_lit s
    | p ->
      flush ();
      acc := p :: !acc
  in
  let all () =
    flush ();
    List.rev !acc
  in
  (add_lit, add_part, all)

(* Mirrors Interp.substitute_until: scan a bare word or the inside of a
   quoted word, collecting parts instead of substituting. *)
let rec compile_parts src n pos0 ~stop_quote ~bracket =
  let add_lit, add_part, all = accum () in
  let rec go pos =
    if pos >= n then
      if stop_quote then Seq_fail (all (), "missing close quote")
      else Seq_ok (all (), pos)
    else
      let c = src.[pos] in
      if stop_quote && c = '"' then Seq_ok (all (), pos + 1)
      else if
        (not stop_quote)
        && (Chars.is_space c || c = '\n' || c = ';' || (bracket && c = ']'))
      then Seq_ok (all (), pos)
      else
        match c with
        | '\\' when (not stop_quote) && pos + 1 < n && src.[pos + 1] = '\n' ->
          (* Backslash-newline terminates a bare word (word separator). *)
          Seq_ok (all (), pos)
        | '\\' ->
          let repl, j = Chars.backslash_subst src pos in
          add_lit repl;
          go j
        | '$' -> (
          match compile_variable src n pos ~bracket with
          | V_ok (p, j) ->
            add_part p;
            go j
          | V_fail (ps, msg) -> Seq_fail (all () @ ps, msg)
          | V_abort ps -> Seq_abort (all () @ ps))
        | '[' -> (
          let prog, j, failed = compile_block src n (pos + 1) in
          add_part (Cmd prog);
          if failed then Seq_abort (all ()) else go j)
        | c ->
          add_lit (String.make 1 c);
          go (pos + 1)
  in
  go pos0

(* Mirrors Interp.substitute_variable. *)
and compile_variable src n pos ~bracket =
  let start = pos + 1 in
  if start < n && src.[start] = '{' then begin
    match String.index_from_opt src start '}' with
    | None -> V_fail ([], "missing close-brace for variable name")
    | Some j -> V_ok (Var (String.sub src (start + 1) (j - start - 1)), j + 1)
  end
  else begin
    let i = ref start in
    while !i < n && Chars.is_var_char src.[!i] do
      incr i
    done;
    if !i = start then
      (* A lone '$' is literal. *)
      V_ok (Lit "$", start)
    else if !i < n && src.[!i] = '(' then begin
      let base = String.sub src start (!i - start) in
      match compile_index src n (!i + 1) ~bracket with
      | Seq_ok (idx, j) -> V_ok (Var_idx (base, idx), j)
      | Seq_fail (idx, msg) ->
        (* The index parts already scanned still run for their side
           effects; their values are discarded when the failure fires, so
           they may be flattened into the word. *)
        V_fail (idx, msg)
      | Seq_abort idx -> V_abort idx
    end
    else V_ok (Var (String.sub src start (!i - start)), !i)
  end

(* Mirrors Interp.substitute_index. *)
and compile_index src n pos0 ~bracket =
  let add_lit, add_part, all = accum () in
  let rec go pos =
    if pos >= n then Seq_fail (all (), "missing )")
    else
      match src.[pos] with
      | ')' -> Seq_ok (all (), pos + 1)
      | '\\' ->
        let repl, j = Chars.backslash_subst src pos in
        add_lit repl;
        go j
      | '$' -> (
        match compile_variable src n pos ~bracket with
        | V_ok (p, j) ->
          add_part p;
          go j
        | V_fail (ps, msg) -> Seq_fail (all () @ ps, msg)
        | V_abort ps -> Seq_abort (all () @ ps))
      | '[' -> (
        let prog, j, failed = compile_block src n (pos + 1) in
        add_part (Cmd prog);
        if failed then Seq_abort (all ()) else go j)
      | c ->
        add_lit (String.make 1 c);
        go (pos + 1)
  in
  go pos0

(* Mirrors Interp.parse_word. *)
and compile_word src n pos ~bracket =
  if src.[pos] = '{' then begin
    match Chars.find_matching_brace src pos with
    | None -> W_stop (W_fail ([], "missing close-brace"))
    | Some j ->
      if Chars.word_end_ok src n (j + 1) ~bracket then
        W_done (W_lit (Chars.braced_content src pos j), j + 1)
      else
        W_stop
          (W_fail ([], "extra characters after close-brace or close-quote"))
  end
  else if src.[pos] = '"' then begin
    match compile_parts src n (pos + 1) ~stop_quote:true ~bracket with
    | Seq_ok (parts, j) ->
      if Chars.word_end_ok src n j ~bracket then W_done (mk_word parts, j)
      else
        W_stop
          (W_fail (parts, "extra characters after close-brace or close-quote"))
    | Seq_fail (parts, msg) -> W_stop (W_fail (parts, msg))
    | Seq_abort parts -> W_stop (W_parts parts)
  end
  else begin
    match compile_parts src n pos ~stop_quote:false ~bracket with
    | Seq_ok (parts, j) -> W_done (mk_word parts, j)
    | Seq_fail (parts, msg) -> W_stop (W_fail (parts, msg))
    | Seq_abort parts -> W_stop (W_parts parts)
  end

(* Mirrors Interp.parse_words: one command's words up to its terminator.
   Returns the command, the position after it, and whether compilation of
   the enclosing program must stop here. *)
and compile_command src n pos0 ~bracket =
  let rec words pos acc pacc =
    let p = ref pos in
    (* Skip word separators; a backslash-newline counts as one. *)
    let rec skip () =
      if !p < n && Chars.is_space src.[!p] then begin
        incr p;
        skip ()
      end
      else if !p + 1 < n && src.[!p] = '\\' && src.[!p + 1] = '\n' then begin
        let _, j = Chars.backslash_subst src !p in
        p := j;
        skip ()
      end
    in
    skip ();
    if
      !p >= n
      || src.[!p] = '\n'
      || src.[!p] = ';'
      || (bracket && src.[!p] = ']')
    then
      let next =
        if !p < n && (src.[!p] = '\n' || src.[!p] = ';') then !p + 1 else !p
      in
      (List.rev acc, List.rev pacc, next, false)
    else
      match compile_word src n !p ~bracket with
      | W_done (w, j) -> words j (w :: acc) (!p :: pacc)
      | W_stop w -> (List.rev (w :: acc), List.rev (!p :: pacc), n, true)
  in
  let ws, wps, next, failed = words pos0 [] [] in
  let stop = min next n in
  ( { words = ws; text = String.sub src pos0 (stop - pos0); pos = pos0;
      wpos = wps },
    next,
    failed )

(* Mirrors Interp.eval_loop's scan over commands. *)
and compile_script src n pos ~bracket acc =
  let pos = Chars.skip_separators src n pos in
  if pos >= n then (List.rev acc, pos, false)
  else if bracket && src.[pos] = ']' then (List.rev acc, pos + 1, false)
  else if src.[pos] = '#' then
    compile_script src n (Chars.skip_comment src n pos) ~bracket acc
  else
    let cmd, next, failed = compile_command src n pos ~bracket in
    if failed then (List.rev (cmd :: acc), n, true)
    else compile_script src n next ~bracket (cmd :: acc)

(* A bracketed sub-program: commands up to the unmatched ']'. *)
and compile_block src n pos =
  compile_script src n pos ~bracket:true []

let compile src =
  let prog, _, _ = compile_script src (String.length src) 0 ~bracket:false [] in
  prog

let rec program_commands prog =
  List.fold_left
    (fun acc cmd ->
      List.fold_left
        (fun acc w ->
          match w with
          | W_lit _ -> acc
          | W_parts parts | W_fail (parts, _) -> acc + nested_commands parts)
        (acc + 1) cmd.words)
    0 prog

and nested_commands parts =
  List.fold_left
    (fun acc p ->
      match p with
      | Lit _ | Var _ -> acc
      | Var_idx (_, idx) -> acc + nested_commands idx
      | Cmd prog -> acc + program_commands prog)
    0 parts
