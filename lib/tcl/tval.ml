(* Dual-ported Tcl values, after Tcl 8.0's "shimmering" design: every
   value has a canonical string representation plus lazily-computed
   cached representations (integer/float, parsed list).  Reading a rep
   computes and caches it; writing through any setter invalidates the
   others.  The string rep itself is rendered lazily so hot numeric
   paths (incr/expr in the VM) never touch strings until someone asks. *)

type num = Nnone | Nmaybe | Nint of int | Ndbl of float

type t = {
  mutable s : string option; (* canonical string, rendered on demand *)
  mutable n : num; (* cached numeric rep; Nmaybe = not yet parsed *)
  mutable l : string list option; (* cached parsed-list rep *)
}

(* Tcl's default float formatting is %.12g (tcl_precision 12); %g's six
   significant digits lose bits, so [expr 1.0/3] would not round-trip
   through its string rep.  Integer-valued floats keep the trailing
   ".0" so they stay floats when re-parsed.  If 12 digits don't
   round-trip (rare), fall back to 17, which always does. *)
let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.12g" f in
    match float_of_string_opt s with
    | Some g when g = f -> s
    | _ -> Printf.sprintf "%.17g" f

let of_string s = { s = Some s; n = Nmaybe; l = None }

(* Value-semantics duplicate: the reps are immutable, so sharing them is
   safe; only the containing record must be fresh (a bound variable cell
   is mutated in place by set/incr). *)
let copy t = { s = t.s; n = t.n; l = t.l }
let of_int i = { s = None; n = Nint i; l = None }
let of_float f = { s = None; n = Ndbl f; l = None }

let to_string t =
  match t.s with
  | Some s -> s
  | None ->
    let s =
      match t.n with
      | Nint i -> string_of_int i
      | Ndbl f -> float_to_string f
      | Nnone | Nmaybe -> "" (* unreachable: s = None implies numeric *)
    in
    t.s <- Some s;
    s

(* Must match Expr.number_of_string: trim, try int, then float. *)
let parse_num s =
  let s' = String.trim s in
  if s' = "" then Nnone
  else
    match int_of_string_opt s' with
    | Some i -> Nint i
    | None -> (
      match float_of_string_opt s' with
      | Some f -> Ndbl f
      | None -> Nnone)

let num t =
  match t.n with
  | Nmaybe ->
    let n = parse_num (to_string t) in
    t.n <- n;
    n
  | n -> n

let set_string t s =
  t.s <- Some s;
  t.n <- Nmaybe;
  t.l <- None

let set_int t i =
  t.s <- None;
  t.n <- Nint i;
  t.l <- None

let set_float t f =
  t.s <- None;
  t.n <- Ndbl f;
  t.l <- None

let list t =
  match t.l with
  | Some l -> Ok l
  | None -> (
    match Tcl_list.parse (to_string t) with
    | Ok l ->
      t.l <- Some l;
      Ok l
    | Error _ as e -> e)
