(* Register/slot bytecode for the Tcl compile layer.

   [lower] translates a {!Compile.program} into an instruction array
   with resolved variable references: procedure locals become slot
   indices into the frame's cell array, other names carry a one-entry
   inline cache validated by the owning frame's generation counter.
   The structural commands (set, incr, expr, if, while, for, foreach,
   return, break, continue) are recognized *syntactically* — literal
   command name at the exact arity, braced bodies, parseable
   conditions — and lowered to dedicated opcodes; everything else (and
   every irregular form) stays an [Ivk] that substitutes its words and
   goes through ordinary command dispatch.

   Lowering never consults the command table, so the result can be
   cached like compiled programs; whether the inlined opcodes may
   actually bypass dispatch is the *executor's* decision (the
   interpreter tracks whether the ten structural builtins are still
   canonical, and deopts to the stored original command otherwise).
   The executor lives in {!Interp}; the types are parametric over the
   frame representation ['f] to keep this module free of interpreter
   internals. *)

type 'f cache = ('f * int * Tval.t) option ref
(** One-entry inline cache for a by-name variable reference: the frame
    it resolved in, that frame's generation at resolution time, and the
    value cell. Stale as soon as the generation moves. *)

type 'f vref =
  | Rslot of int * string  (** procedure local: slot index + name *)
  | Rname of string * 'f cache  (** by-name with inline cache *)

(* Value-kind facts the static analyzer (Lint/Absint) can attach to a
   procedure's formal slots: every value ever bound to the slot is known
   to be of this kind, so the executor may prime the matching Tval rep
   at bind time and the first execution never shimmers. *)
type kind = Kint | Kfloat | Klist

type 'f code = {
  insns : 'f insn array;
  locals : string array;
      (** slot names for the frame this code runs in ([||] for nested
          and top-level code: nested code shares the enclosing frame) *)
  kinds : kind option array;
      (** analyzer-proven value kinds per local slot ([||] when no seed
          was supplied); same length as [locals] otherwise *)
}

and 'f insn =
  | Ivk of { vwords : 'f vword list; orig : Compile.command }
      (** substitute the words, dispatch normally *)
  | Iset of { dst : 'f vref; value : 'f vword option; orig : Compile.command }
  | Iincr of { dst : 'f vref; by : 'f amount; orig : Compile.command }
  | Iexpr of { e : 'f vexpr; orig : Compile.command }
  | Iif of {
      arms : ('f vexpr * 'f code) list;
      els : 'f code option;
      orig : Compile.command;
    }
  | Iwhile of { cond : 'f vexpr; body : 'f code; orig : Compile.command }
  | Ifor of {
      init : 'f code;
      cond : 'f vexpr;
      next : 'f code;
      body : 'f code;
      orig : Compile.command;
    }
  | Iforeach of {
      dst : 'f vref;
      items : 'f items;
      body : 'f code;
      orig : Compile.command;
    }
  | Ireturn of { value : 'f vword option; orig : Compile.command }
  | Ibreak of { orig : Compile.command }
  | Icontinue of { orig : Compile.command }

and 'f amount = Aconst of int | Aword of 'f vword

and 'f items = Lconst of string list | Lword of 'f vword

and 'f vword =
  | Wlit of Tval.t
      (** literal word as a shared dual-ported value: its numeric/list
          reps, parsed once at first use, persist across executions *)
  | Wvar of 'f vref
  | Wvcmd of 'f code  (** a whole-word [\[...\]] substitution *)
  | Wexpr of { e : 'f vexpr; code : 'f code; orig : Compile.command }
      (** a whole-word [\[expr ...\]] whose script is a single canonical
          expr command: the executor may evaluate [e] directly (typed,
          no string round-trip), falling back to [code] on deopt *)
  | Wgen of Compile.word  (** general multi-part word: executor replays it *)

and 'f qpart = Ql of string | Qv of string | Qc of 'f code

(* Typed expression IR, mirroring Expr.ast one constructor for one so
   evaluation can reuse Expr's apply functions byte-identically. *)
and 'f vexpr =
  | Xconst of Expr.value
  | Xvar of 'f vref
  | Xcmd of 'f code
  | Xquoted of 'f qpart list
  | Xunop of string * 'f vexpr
  | Xbinop of string * 'f vexpr * 'f vexpr
  | Xternary of 'f vexpr * 'f vexpr * 'f vexpr
  | Xfunc of string * 'f vexpr list

(* ------------------------------------------------------------------ *)
(* Lowering *)

type lstate = {
  compile : string -> Compile.program;
      (* braced bodies and bracketed scripts are compiled through the
         interpreter's counted compiler so the pass shows up in
         tcl.compile.* like any other compilation *)
  alloc : bool;  (* procedure context: new names may claim slots *)
  tbl : (string, int) Hashtbl.t;
  mutable names : string list;  (* allocated slot names, reversed *)
  mutable count : int;
}

(* Slots are scanned linearly by name on the slow path; keep the table
   small enough that the scan stays cheap. *)
let max_slots = 32

let ref_of st name =
  (* Array references (and any name that could be one) resolve by name:
     arrays always live in the frame hashtable. *)
  if String.contains name '(' then Rname (name, ref None)
  else
    match Hashtbl.find_opt st.tbl name with
    | Some i -> Rslot (i, name)
    | None ->
      if st.alloc && st.count < max_slots then begin
        let i = st.count in
        st.count <- st.count + 1;
        Hashtbl.add st.tbl name i;
        st.names <- name :: st.names;
        Rslot (i, name)
      end
      else Rname (name, ref None)

let lit = function Compile.W_lit s -> Some s | _ -> None

let all_lits words =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | Compile.W_lit s :: rest -> go (s :: acc) rest
    | _ -> None
  in
  go [] words

let rec lower_word st (w : Compile.word) =
  match w with
  | Compile.W_lit s ->
    (* Prime the numeric rep now: every copy bound from this literal
       then carries it, so "fib 28" never re-parses the 28. *)
    let tv = Tval.of_string s in
    ignore (Tval.num tv);
    Wlit tv
  | Compile.W_parts [ Compile.Var name ] -> Wvar (ref_of st name)
  | Compile.W_parts [ Compile.Cmd prog ] -> (
    let code = lower_prog st prog in
    match code.insns with
    | [| Iexpr { e; orig } |] -> Wexpr { e; code; orig }
    | _ -> Wvcmd code)
  | Compile.W_parts _ | Compile.W_fail _ -> Wgen w

and lower_prog st (prog : Compile.program) =
  {
    insns = Array.of_list (List.map (lower_command st) prog);
    locals = [||];
    kinds = [||];
  }

and lower_body st src = lower_prog st (st.compile src)

and lower_command st (c : Compile.command) =
  match c.words with
  | Compile.W_lit name :: rest -> lower_named st c name rest
  | _ -> Ivk { vwords = List.map (lower_word st) c.words; orig = c }

and lower_named st c name rest =
  let ivk () = Ivk { vwords = List.map (lower_word st) c.words; orig = c } in
  match (name, rest) with
  | "set", [ n ] -> (
    match lit n with
    | Some n -> Iset { dst = ref_of st n; value = None; orig = c }
    | None -> ivk ())
  | "set", [ n; v ] -> (
    match lit n with
    | Some n ->
      Iset { dst = ref_of st n; value = Some (lower_word st v); orig = c }
    | None -> ivk ())
  | "incr", [ n ] -> (
    match lit n with
    | Some n -> Iincr { dst = ref_of st n; by = Aconst 1; orig = c }
    | None -> ivk ())
  | "incr", [ n; b ] -> (
    match lit n with
    | None -> ivk ()
    | Some n ->
      let by =
        match lit b with
        | Some s -> (
          (* A malformed literal increment keeps the word form so the
             executor reports the runtime parse error verbatim. *)
          match int_of_string_opt (String.trim s) with
          | Some i -> Aconst i
          | None -> Aword (Wlit (Tval.of_string s)))
        | None -> Aword (lower_word st b)
      in
      Iincr { dst = ref_of st n; by; orig = c })
  | "expr", _ :: _ -> (
    match all_lits rest with
    | Some args -> (
      match Expr.parse (String.concat " " args) with
      | Stdlib.Ok ast -> Iexpr { e = lower_ast st ast; orig = c }
      | Stdlib.Error _ -> ivk ())
    | None -> ivk ())
  | "if", _ -> (
    match all_lits rest with
    | Some ws -> lower_if st c ws ivk
    | None -> ivk ())
  | "while", [ cond; body ] -> (
    match (lit cond, lit body) with
    | Some cond, Some body -> (
      match Expr.parse cond with
      | Stdlib.Ok ast ->
        Iwhile { cond = lower_ast st ast; body = lower_body st body; orig = c }
      | Stdlib.Error _ -> ivk ())
    | _ -> ivk ())
  | "for", [ init; cond; next; body ] -> (
    match (lit init, lit cond, lit next, lit body) with
    | Some init, Some cond, Some next, Some body -> (
      match Expr.parse cond with
      | Stdlib.Ok ast ->
        Ifor
          {
            init = lower_body st init;
            cond = lower_ast st ast;
            next = lower_body st next;
            body = lower_body st body;
            orig = c;
          }
      | Stdlib.Error _ -> ivk ())
    | _ -> ivk ())
  | "foreach", [ var; lst; body ] -> (
    match (lit var, lit body) with
    | Some var, Some body -> (
      let items =
        match lit lst with
        | Some s -> (
          (* Pre-parse literal lists; malformed ones keep the reference
             path so the runtime error and trace match exactly. *)
          match Tcl_list.parse s with
          | Stdlib.Ok l -> Some (Lconst l)
          | Stdlib.Error _ -> None)
        | None -> Some (Lword (lower_word st lst))
      in
      match items with
      | Some items ->
        Iforeach { dst = ref_of st var; items; body = lower_body st body; orig = c }
      | None -> ivk ())
    | _ -> ivk ())
  | "return", [] -> Ireturn { value = None; orig = c }
  | "return", [ v ] -> Ireturn { value = Some (lower_word st v); orig = c }
  | "break", [] -> Ibreak { orig = c }
  | "continue", [] -> Icontinue { orig = c }
  | _ -> ivk ()

(* Mirror cmd_if's clause/tail grammar statically; any irregularity
   (missing body, unparseable condition, trailing words) falls back to
   the dispatched command, which reproduces the runtime error. *)
and lower_if st c ws ivk =
  let rec clause ws acc =
    match ws with
    | cond :: rest -> (
      let rest = match rest with "then" :: r -> r | r -> r in
      match rest with
      | body :: rest -> (
        match Expr.parse cond with
        | Stdlib.Error _ -> None
        | Stdlib.Ok ast ->
          tail ((lower_ast st ast, lower_body st body) :: acc) rest)
      | [] -> None)
    | [] -> None
  and tail acc = function
    | [] -> Some (List.rev acc, None)
    | "elseif" :: rest -> clause rest acc
    | "else" :: [ body ] -> Some (List.rev acc, Some (lower_body st body))
    | [ body ] -> Some (List.rev acc, Some (lower_body st body))
    | _ -> None
  in
  match clause ws [] with
  | Some (arms, els) -> Iif { arms; els; orig = c }
  | None -> ivk ()

and lower_ast st (a : Expr.ast) =
  match a with
  | Expr.A_const v -> Xconst v
  | Expr.A_var name -> Xvar (ref_of st name)
  | Expr.A_cmd script -> Xcmd (lower_prog st (st.compile script))
  | Expr.A_quoted parts ->
    Xquoted
      (List.map
         (function
           | Expr.Q_lit s -> Ql s
           | Expr.Q_var n -> Qv n
           | Expr.Q_cmd s -> Qc (lower_prog st (st.compile s)))
         parts)
  | Expr.A_unop (op, x) -> Xunop (op, lower_ast st x)
  | Expr.A_binop (op, x, y) -> Xbinop (op, lower_ast st x, lower_ast st y)
  | Expr.A_ternary (c, a, b) ->
    Xternary (lower_ast st c, lower_ast st a, lower_ast st b)
  | Expr.A_func (name, args) -> Xfunc (name, List.map (lower_ast st) args)

let lower ~compile prog =
  let st =
    { compile; alloc = false; tbl = Hashtbl.create 8; names = []; count = 0 }
  in
  lower_prog st prog

let lower_proc ?(seed = []) ~compile ~formals prog =
  let st =
    { compile; alloc = true; tbl = Hashtbl.create 8; names = []; count = 0 }
  in
  List.iter
    (fun f ->
      if
        (not (String.contains f '('))
        && (not (Hashtbl.mem st.tbl f))
        && st.count < max_slots
      then begin
        Hashtbl.add st.tbl f st.count;
        st.names <- f :: st.names;
        st.count <- st.count + 1
      end)
    formals;
  let code = lower_prog st prog in
  let locals = Array.of_list (List.rev st.names) in
  let kinds =
    if seed = [] then [||]
    else Array.map (fun name -> List.assoc_opt name seed) locals
  in
  { code with locals; kinds }
