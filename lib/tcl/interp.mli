(** The Tcl interpreter core: parsing, substitution, command dispatch,
    variables, call frames and procedures.

    The evaluator implements the full syntax of the paper's Figures 1–5:
    words separated by whitespace, commands separated by newlines or
    semicolons, brace and double-quote grouping, [$]-variable substitution,
    [\[...\]] command substitution and backslash escapes.

    No commands are pre-registered except the dispatch to a user-defined
    [unknown] handler; the built-in command set (including the structural
    commands [proc], [if], [while], …) is installed by
    {!Builtins.install}. *)

type t
(** An interpreter: command table, global and per-procedure variable
    frames, and bookkeeping counters. *)

(** Completion status of a script or command, mirroring Tcl's return
    codes. *)
type status = Tcl_ok | Tcl_error | Tcl_return | Tcl_break | Tcl_continue

type result = status * string
(** Every evaluation yields a status plus a string value (the result on
    [Tcl_ok], the error message on [Tcl_error]). *)

type command = t -> string list -> result
(** A command procedure. It receives the full word list, including the
    command name as head, exactly as in the paper's Figure 6. *)

exception Tcl_failure of string
(** Command procedures may raise this to report an error; the evaluator
    converts it to a [Tcl_error] result. *)

val failf : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Tcl_failure} with a formatted message. *)

val wrong_args : string -> 'a
(** [wrong_args usage] raises the standard
    ["wrong # args: should be \"usage\""] error. *)

val add_exn_translator : (exn -> string option) -> unit
(** Register a (global) hook that translates a foreign exception raised
    inside a command procedure into a Tcl error message; return [None] to
    decline. The toolkit uses this to surface X protocol errors as
    ordinary script errors instead of unwinding the event loop. *)

val ok : string -> result
(** [(Tcl_ok, value)]. *)

val create : unit -> t
(** A bare interpreter with no commands registered (see
    {!Builtins.install} / {!Builtins.new_interp}). *)

(** {1 Evaluation} *)

val eval : t -> string -> result
(** Evaluate a script: execute its commands in sequence and return the
    result of the last one, or the first non-[Tcl_ok] completion. *)

val eval_value : t -> string -> (string, string) Stdlib.result
(** Like {!eval}, mapping [Tcl_ok] to [Ok] and everything else to [Error]
    (with break/continue/return reported as errors, as at top level). *)

val eval_words : t -> string list -> result
(** Invoke a single command from already-substituted words. *)

val expr_env : t -> Expr.env
(** The variable/command hooks that connect {!Expr} to this interpreter. *)

val eval_expr : t -> string -> Expr.value
(** Evaluate an expression, through the parsed-AST cache when compilation
    is enabled. @raise Expr.Error on expression errors. *)

val eval_expr_string : t -> string -> string
(** {!eval_expr} rendered back to Tcl's string form (for [expr]). *)

val eval_expr_bool : t -> string -> bool
(** Evaluate a condition string. @raise Tcl_failure on expression errors. *)

(** {1 Parse-once compilation}

    Scripts and expressions are tokenized once (see {!Compile}) and the
    result cached keyed by the source string; re-evaluating a hot loop
    body, binding script or proc body then skips the scanner entirely.
    Semantics are byte-identical to the reference evaluator — the caches
    only trade memory for parse passes. Entries never go stale (the
    compiled form is purely syntactic), so invalidation is plain LRU
    eviction at a bounded size. *)

val set_compile_enabled : t -> bool -> unit
(** Toggle the parse-once machinery (default on). Turning it off routes
    every evaluation through the reference character-at-a-time
    evaluator — used by the benchmark ablation and differential tests. *)

val compile_enabled : t -> bool

val clear_compile_caches : t -> unit
(** Drop all cached scripts and expressions (counters are kept). *)

val reset_compile_stats : t -> unit

val compile_stats : t -> (string * string) list
(** Counters for the metrics registry ([tcl.compile.*]): cache hits,
    misses, evictions, compiles for scripts and expressions, current
    cache sizes, and the total number of parse passes over script
    text. *)

val set_vm_enabled : t -> bool -> unit
(** Toggle the bytecode VM (default on; effective only while the
    compile layer is also on). Off routes compiled programs through the
    tree-walking executor — the [-no-vm] ablation and differential
    tests use this. *)

val vm_enabled : t -> bool

val reset_vm_stats : t -> unit

val vm_stats : t -> (string * string) list
(** Counters for the metrics registry ([tcl.vm.*]): whether the VM is
    enabled and currently canonical, lowered code objects built,
    per-instruction deopts to dispatched commands, variable accesses
    served by local slots or inline caches, procs lowered with analyzer
    kind seeds, and argument reps primed at bind time. *)

val seed_proc_kinds : t -> string -> (string * Vm.kind) list -> unit
(** Install analyzer-proven formal-parameter kinds (Lint [o_facts]) for
    a procedure.  The next VM lowering of the proc carries them as
    {!Vm.lower_proc} seeds, so calls prime bound arguments' numeric or
    list reps instead of shimmering through strings on first use.
    Always semantically safe: priming only parses a rep earlier.  An
    empty fact list clears the seed. *)

val mark_canonical : t -> unit
(** Snapshot the current definitions of the structural commands the VM
    inlines ([set], [incr], [expr], [if], [while], [for], [foreach],
    [return], [break], [continue]). Called once after the builtins are
    installed; any later redefinition, rename, hide or deletion of one
    of them routes the inlined opcodes back through normal dispatch. *)

val set_time_source : t -> (unit -> float) option -> unit
(** Pluggable clock (in seconds) for the [time] command; [None] restores
    [Sys.time]. The toolkit points this at the event dispatcher's clock
    so [time] agrees with [after] under a virtual clock. *)

val current_time : t -> float
(** The current reading of the {!set_time_source} clock. *)

(** {1 Resource limits and cancellation}

    A per-interpreter guard enforced at both evaluation boundaries
    (script entry in the reference evaluator and the compiled fast path)
    and at every command dispatch. Limits are checked against the
    {!set_limit_clock} millisecond clock — the toolkit wires the event
    dispatcher's virtual clock in — and a command-dispatch counter. A
    tripped limit keeps failing (and propagates through [catch]) until
    re-armed; cancellation is delivered once at the next boundary. *)

type limit_kind = Limit_time | Limit_commands

val set_limit_clock : t -> (unit -> int) option -> unit
(** Millisecond clock used for time limits; [None] falls back to the
    {!set_time_source} clock. *)

val limit_now : t -> int
(** Current reading of the limit clock, in milliseconds. *)

val limit_clock : t -> (unit -> int) option
(** The clock installed by {!set_limit_clock} (slaves inherit their
    master's on creation). *)

val set_time_limit : ?granularity:int -> t -> int -> unit
(** Arm (or with 0 disarm) a time limit of [ms] milliseconds from now.
    [granularity] (default 1) checks the clock only every n-th
    boundary — a cheap knob when the clock read itself is costly. *)

val set_command_limit : t -> int -> unit
(** Arm (or with 0 disarm) a budget of [n] command dispatches. *)

val rearm_limits : t -> unit
(** Clear a tripped limit and restart every configured budget (the time
    deadline restarts from now; the command budget refills). *)

val time_limit : t -> int
val time_limit_granularity : t -> int
val command_limit : t -> int

val limit_tripped : t -> limit_kind option
(** The limit currently tripped, if any (sticky until {!rearm_limits}). *)

val limit_message : limit_kind -> string
(** ["time limit exceeded"] / ["command count limit exceeded"] — the
    exact error message evaluation aborts with. *)

val cancel : ?unwind:bool -> ?message:string -> t -> unit
(** Request asynchronous cancellation: the next evaluation boundary
    fails with [message] (default ["eval canceled"], or ["eval unwound"]
    with [~unwind:true]). A plain cancel is catchable by [catch]; an
    unwinding cancel propagates through it. *)

val cancel_pending : t -> bool

val unwinding : t -> bool
(** True while a limit or unwinding cancel is propagating — [catch]
    consults this to let such errors through. Cleared on the next
    top-level evaluation. *)

val clear_unwinding : t -> unit
(** End an unwind early: for hosts that deliver the limit error as a
    value (a guarded send reply) rather than letting it propagate —
    after delivery the error is ordinary and [catch] works again. *)

val recursion_limit : t -> int

val set_recursion_limit : t -> int -> unit
(** Maximum nesting depth of evaluations (default 1000); overflow fails
    with Tcl's ["too many nested evaluations (infinite loop?)"].
    @raise Tcl_failure if [n < 1]. *)

val denied_count : t -> int
(** Number of hidden-command invocation denials so far. *)

val reset_guard_stats : t -> unit

val limit_stats : t -> (string * string) list
(** Counters for the metrics registry ([tcl.limit.*]): boundary checks,
    time/command trips, cancels requested and delivered, hidden-command
    denials, recursion overflows. *)

val interp_stats : t -> (string * string) list
(** Counters for the metrics registry ([tcl.interp.*]): live slave
    counts, creates/deletes, alias calls, configured limits. *)

(** {1 Slave interpreters}

    A master owns a tree of named slave interpreters (deleted
    recursively with it). Guard statistics are shared down the tree so
    an application's metrics aggregate slave activity. The [interp]
    command ({!Interp_cmd}) is the script-level interface. *)

val is_safe : t -> bool
val set_safe : t -> bool -> unit

val add_slave : t -> string -> t -> unit
val find_slave : t -> string -> t option
val slave_names : t -> string list

val delete_slave : t -> string -> bool
(** Delete a direct slave and, recursively, its whole subtree. *)

val count_slaves : t -> int
(** Total slaves in the tree below [t]. *)

val count_safe_slaves : t -> int

(** {1 Hidden commands}

    Hiding moves a command out of the dispatch table: scripts invoking
    it get a counted ["permission denied"] error (never the [unknown]
    fallback), while the trusted side can still run it with
    {!invoke_hidden}. *)

val hide_command : t -> string -> (unit, string) Stdlib.result
val expose_command : ?as_name:string -> t -> string -> (unit, string) Stdlib.result
val hidden_names : t -> string list
val invoke_hidden : t -> string -> string list -> result

(** {1 Aliases}

    Bookkeeping for [interp alias] (the marshalling itself lives in
    {!Interp_cmd}): which slave commands are aliases and what master
    target each maps to. *)

val note_alias : t -> string -> string -> unit
val drop_alias : t -> string -> unit
val alias_target : t -> string -> string option
val alias_names : t -> string list
val count_alias_call : t -> unit

(** {1 Variables} *)

val get_var : t -> string -> string option
(** Look up a variable in the current frame. Names of the form
    [name(index)] address array elements. *)

val get_var_exn : t -> string -> string
(** @raise Tcl_failure with Tcl's "can't read ..." message. *)

val set_var : t -> string -> string -> unit
val unset_var : t -> string -> bool

val var_names : t -> local:bool -> global:bool -> string list
(** Visible variable names: local frame, global frame, or both. *)

val array_names : t -> string -> string list option
(** Index names of an array variable, or [None] if not an array. *)

(** {1 Frames} *)

val current_level : t -> int
(** 0 at global scope, +1 per active procedure call. *)

val parse_level : t -> string -> int option
(** Parse a level argument as used by [uplevel]/[upvar]: ["#n"] is absolute,
    a plain number is relative to the current frame. *)

val with_level : t -> int -> (unit -> 'a) -> 'a
(** Run a thunk with the variable stack temporarily truncated so that the
    frame at [level] is current ([uplevel]). *)

val link_var : t -> target_level:int -> target:string -> local:string -> unit
(** Make variable [local] in the current frame an alias for [target] in the
    frame at absolute [target_level] ([upvar]/[global]). *)

(** {1 Commands} *)

val register : t -> string -> command -> unit
(** Define (or replace) a built-in command. *)

val register_value : t -> string -> (t -> string list -> string) -> unit
(** Convenience wrapper: the function returns the result value directly and
    signals errors by raising {!Tcl_failure}. *)

val define_proc :
  t -> string -> (string * string option) list -> string -> unit
(** Define a Tcl procedure: formal parameters (with optional defaults; a
    trailing ["args"] collects the remainder) and a body script. *)

val proc_info : t -> string -> ((string * string option) list * string) option
(** Formals and body of a procedure, for [info args]/[info body]. *)

val delete_command : t -> string -> bool
val rename_command : t -> string -> string -> (unit, string) Stdlib.result
val command_exists : t -> string -> bool
val command_names : t -> string list
val proc_names : t -> string list

(** {1 Command signatures}

    A command may declare, alongside its implementation, the shape of
    call it accepts: arity bounds, the exact usage string its
    {!wrong_args} raises, a subcommand table, recognized [-option]
    switches, which argument positions hold scripts, per-argument
    literal validators, and — for widget-creating commands — the widget
    class's option and subcommand tables.  The registry is purely
    descriptive (dispatch never consults it); the static checker
    {!Lint} is its consumer, and {!wrong_args_for}/{!bad_subcommand}
    let the runtime raise the same messages lint predicts. *)

type sub_sig = {
  sub_name : string;
  sub_min : int;  (** arguments after "cmd subcommand" *)
  sub_max : int;  (** -1 = unbounded *)
}

type widget_sig = {
  ws_class : string;  (** e.g. ["Button"] *)
  ws_options : string list;  (** configure switches, e.g. ["-text"] *)
  ws_subs : sub_sig list;  (** subcommands beyond configure/cget *)
}

type arg_check = {
  chk_arg : int;  (** 1-based argument index *)
  chk : string -> string option;  (** literal value -> error message *)
}

type signature = {
  sig_name : string;
  sig_usage : string;
  sig_min : int;  (** arguments after the command name *)
  sig_max : int;  (** -1 = unbounded *)
  sig_subs : sub_sig list;
  sig_open_subs : bool;
      (** an unmatched first argument is legal (e.g. [send appName ...]);
          the analyzer only warns on near-miss subcommand spellings *)
  sig_options : string list;
  sig_scripts : int list;  (** 1-based indices of script arguments *)
  sig_checks : arg_check list;
  sig_widget : widget_sig option;
}

val subsig : ?max:int -> string -> int -> sub_sig
(** [subsig name min] — [max] defaults to unbounded (-1). *)

val signature :
  ?max:int ->
  ?subs:sub_sig list ->
  ?open_subs:bool ->
  ?options:string list ->
  ?scripts:int list ->
  ?checks:arg_check list ->
  ?widget:widget_sig ->
  usage:string ->
  string ->
  int ->
  signature
(** [signature ~usage name min] builds a signature record;
    [max] defaults to unbounded (-1). *)

val register_signature : t -> signature -> unit
val signature_of : t -> string -> signature option
val signature_names : t -> string list

val usage_of : t -> string -> string option
(** The registered usage string, if any. *)

val wrong_args_for : t -> string -> 'a
(** {!wrong_args} with the registry's usage string for the command. *)

val bad_subcommand : t -> cmd:string -> string -> 'a
(** Raise the standard ["bad option \"x\": should be a, b, or c"]
    message from the registry's subcommand table. *)

val alternatives : string list -> string
(** Render a list Tcl-style: ["a"], ["a or b"], ["a, b, or c"]. *)

(** {1 Lint counters}

    Bumped by {!Lint.analyze}; exported as [tcl.lint.*] by the
    toolkit's metrics registry. *)

val note_lint : t -> errors:int -> warnings:int -> unit
val reset_lint_stats : t -> unit
val lint_stats : t -> (string * string) list

(** {1 Environment hooks} *)

val set_output : t -> (string -> unit) -> unit
(** Redirect the [print]/[puts] stream (default: standard output). *)

(** {1 Command history}

    When recording is enabled (wish's interactive loop turns it on), each
    top-level script evaluated is remembered for the [history] command. *)

val set_history_recording : t -> bool -> unit
val record_history_event : t -> string -> unit
val history_events : t -> (int * string) list
(** Oldest first, numbered from 1. *)

val history_event : t -> int -> string option

val output : t -> string -> unit

val command_count : t -> int
(** Total number of commands executed ([info cmdcount]). *)

(** {1 Error tracing}

    When an error unwinds, the global variable [errorInfo] accumulates a
    stack trace ("while executing ..." lines), as in real Tcl. *)

val mark_error_handled : t -> unit
(** Tell the interpreter the current error has been caught ([catch] calls
    this), so the next error starts a fresh [errorInfo]. *)

val trace_error : t -> command:string -> string -> unit
(** Append one level of error context (used by the evaluator; exposed for
    host applications that run callbacks, like Tk's binding engine). *)

val get_error_info : t -> string
(** The accumulated stack trace of the most recent error (the value of
    the global [errorInfo] variable; [""] when no error has occurred). *)
