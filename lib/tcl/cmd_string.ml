open Interp

(* ------------------------------------------------------------------ *)
(* format *)

type conversion = {
  minus : bool;
  zero : bool;
  plus : bool;
  space : bool;
  alt : bool;
  width : int option;
  precision : int option;
  kind : char;
}

let parse_int_arg s =
  match int_of_string_opt (String.trim s) with
  | Some i -> i
  | None -> failf "expected integer but got \"%s\"" s

let parse_float_arg s =
  match float_of_string_opt (String.trim s) with
  | Some f -> f
  | None -> (
    (* Tcl lets an integer serve as a float argument. *)
    match int_of_string_opt (String.trim s) with
    | Some i -> float_of_int i
    | None -> failf "expected floating-point number but got \"%s\"" s)

(* Render one conversion. Padding/precision are applied manually so we
   don't need dynamically built OCaml format strings. *)
let render conv arg =
  let pad body =
    let body =
      if conv.plus && String.length body > 0 && body.[0] <> '-'
         && conv.kind <> 's'
      then "+" ^ body
      else if conv.space && String.length body > 0 && body.[0] <> '-'
              && conv.kind <> 's'
      then " " ^ body
      else body
    in
    match conv.width with
    | Some w when String.length body < w ->
      let fill = w - String.length body in
      if conv.minus then body ^ String.make fill ' '
      else if conv.zero && conv.kind <> 's' then
        if String.length body > 0 && (body.[0] = '-' || body.[0] = '+') then
          String.make 1 body.[0] ^ String.make fill '0'
          ^ String.sub body 1 (String.length body - 1)
        else String.make fill '0' ^ body
      else String.make fill ' ' ^ body
    | _ -> body
  in
  let int_body i =
    let s =
      match conv.kind with
      | 'd' | 'i' | 'u' -> string_of_int i
      | 'x' -> Printf.sprintf "%x" i
      | 'X' -> Printf.sprintf "%X" i
      | 'o' -> Printf.sprintf "%o" i
      | _ -> assert false
    in
    let s =
      match conv.precision with
      | Some p ->
        let neg = String.length s > 0 && s.[0] = '-' in
        let digits = if neg then String.sub s 1 (String.length s - 1) else s in
        let digits =
          if String.length digits < p then
            String.make (p - String.length digits) '0' ^ digits
          else digits
        in
        if neg then "-" ^ digits else digits
      | None -> s
    in
    if conv.alt && (conv.kind = 'x' || conv.kind = 'X') && i <> 0 then
      "0x" ^ s
    else s
  in
  match conv.kind with
  | 'd' | 'i' | 'u' | 'x' | 'X' | 'o' -> pad (int_body (parse_int_arg arg))
  | 'c' ->
    let code = parse_int_arg arg in
    pad (String.make 1 (Char.chr (code land 0xff)))
  | 's' ->
    let s =
      match conv.precision with
      | Some p when p < String.length arg -> String.sub arg 0 p
      | _ -> arg
    in
    pad s
  | 'f' ->
    let p = Option.value conv.precision ~default:6 in
    pad (Printf.sprintf "%.*f" p (parse_float_arg arg))
  | 'e' ->
    let p = Option.value conv.precision ~default:6 in
    pad (Printf.sprintf "%.*e" p (parse_float_arg arg))
  | 'E' ->
    let p = Option.value conv.precision ~default:6 in
    pad (String.uppercase_ascii (Printf.sprintf "%.*e" p (parse_float_arg arg)))
  | 'g' ->
    let p = Option.value conv.precision ~default:6 in
    pad (Printf.sprintf "%.*g" p (parse_float_arg arg))
  | 'G' ->
    let p = Option.value conv.precision ~default:6 in
    pad (String.uppercase_ascii (Printf.sprintf "%.*g" p (parse_float_arg arg)))
  | k -> failf "bad field specifier \"%c\"" k

let format_string spec args =
  let n = String.length spec in
  let buf = Buffer.create (n + 16) in
  let args = ref args in
  let next_arg () =
    match !args with
    | a :: rest ->
      args := rest;
      a
    | [] -> failf "not enough arguments for all format specifiers"
  in
  let rec go i =
    if i >= n then ()
    else if spec.[i] <> '%' then begin
      Buffer.add_char buf spec.[i];
      go (i + 1)
    end
    else if i + 1 < n && spec.[i + 1] = '%' then begin
      Buffer.add_char buf '%';
      go (i + 2)
    end
    else begin
      (* Parse flags, width, precision, conversion. *)
      let j = ref (i + 1) in
      let minus = ref false
      and zero = ref false
      and plus = ref false
      and space = ref false
      and alt = ref false in
      let flags_done = ref false in
      while (not !flags_done) && !j < n do
        match spec.[!j] with
        | '-' -> minus := true; incr j
        | '0' -> zero := true; incr j
        | '+' -> plus := true; incr j
        | ' ' -> space := true; incr j
        | '#' -> alt := true; incr j
        | _ -> flags_done := true
      done;
      let number () =
        if !j < n && spec.[!j] = '*' then begin
          incr j;
          Some (parse_int_arg (next_arg ()))
        end
        else begin
          let start = !j in
          while !j < n && Chars.is_digit spec.[!j] do
            incr j
          done;
          if !j > start then
            Some (int_of_string (String.sub spec start (!j - start)))
          else None
        end
      in
      let width = number () in
      let precision =
        if !j < n && spec.[!j] = '.' then begin
          incr j;
          Some (Option.value (number ()) ~default:0)
        end
        else None
      in
      (* Skip length modifiers (h, l). *)
      while !j < n && (spec.[!j] = 'h' || spec.[!j] = 'l') do
        incr j
      done;
      if !j >= n then failf "format string ended in middle of field specifier";
      let conv =
        {
          minus = !minus;
          zero = !zero;
          plus = !plus;
          space = !space;
          alt = !alt;
          width;
          precision;
          kind = spec.[!j];
        }
      in
      Buffer.add_string buf (render conv (next_arg ()));
      go (!j + 1)
    end
  in
  go 0;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* scan *)

let scan_string input fmt =
  let ni = String.length input and nf = String.length fmt in
  let results = ref [] in
  let rec skip_ws i =
    if i < ni && Chars.is_space input.[i] then skip_ws (i + 1) else i
  in
  (* Returns Ok () when the scan completes (or input runs out). *)
  let rec go i j =
    if j >= nf then Stdlib.Ok (List.rev !results)
    else if Chars.is_space fmt.[j] then go (skip_ws i) (j + 1)
    else if fmt.[j] = '%' && j + 1 < nf then begin
      let conv = fmt.[j + 1] in
      let i = if conv <> 'c' then skip_ws i else i in
      if i >= ni then Stdlib.Ok (List.rev !results)
      else
        match conv with
        | 'd' | 'x' | 'o' ->
          let stop = ref i in
          if !stop < ni && (input.[!stop] = '-' || input.[!stop] = '+') then
            incr stop;
          let is_digit_for c =
            match conv with
            | 'd' -> Chars.is_digit c
            | 'o' -> c >= '0' && c <= '7'
            | _ ->
              Chars.is_digit c
              || (c >= 'a' && c <= 'f')
              || (c >= 'A' && c <= 'F')
          in
          while !stop < ni && is_digit_for input.[!stop] do
            incr stop
          done;
          if !stop = i then Stdlib.Ok (List.rev !results)
          else begin
            let text = String.sub input i (!stop - i) in
            let value =
              match conv with
              | 'd' -> int_of_string_opt text
              | 'o' -> int_of_string_opt ("0o" ^ text)
              | _ -> int_of_string_opt ("0x" ^ text)
            in
            match value with
            | Some v ->
              results := string_of_int v :: !results;
              go !stop (j + 2)
            | None -> Stdlib.Ok (List.rev !results)
          end
        | 'f' | 'e' | 'g' ->
          let stop = ref i in
          let accept c =
            Chars.is_digit c || c = '.' || c = '-' || c = '+' || c = 'e'
            || c = 'E'
          in
          while !stop < ni && accept input.[!stop] do
            incr stop
          done;
          (match float_of_string_opt (String.sub input i (!stop - i)) with
          | Some f ->
            results := Expr.to_string (Expr.Float f) :: !results;
            go !stop (j + 2)
          | None -> Stdlib.Ok (List.rev !results))
        | 's' ->
          let stop = ref i in
          while !stop < ni && not (Chars.is_space input.[!stop]) do
            incr stop
          done;
          results := String.sub input i (!stop - i) :: !results;
          go !stop (j + 2)
        | 'c' ->
          results := String.make 1 input.[i] :: !results;
          go (i + 1) (j + 2)
        | '%' -> if input.[i] = '%' then go (i + 1) (j + 2) else Stdlib.Ok (List.rev !results)
        | c -> Stdlib.Error (Printf.sprintf "bad scan conversion character \"%c\"" c)
    end
    else if i < ni && input.[i] = fmt.[j] then go (i + 1) (j + 1)
    else Stdlib.Ok (List.rev !results)
  in
  go 0 0

(* ------------------------------------------------------------------ *)
(* The string ensemble *)

let trim_chars = " \t\n\r"

let trim_side ~left ~right chars s =
  let in_set c = String.contains chars c in
  let n = String.length s in
  let i = ref 0 and j = ref (n - 1) in
  if left then
    while !i < n && in_set s.[!i] do
      incr i
    done;
  if right then
    while !j >= !i && in_set s.[!j] do
      decr j
    done;
  if !j < !i then "" else String.sub s !i (!j - !i + 1)

let find_substring ~last haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  if nn = 0 || nn > nh then -1
  else begin
    let found = ref (-1) in
    for i = 0 to nh - nn do
      if String.sub haystack i nn = needle then
        if last then found := i
        else if !found < 0 then found := i
    done;
    !found
  end

let cmd_string _t words =
  match words with
  | _ :: "compare" :: [ a; b ] -> string_of_int (compare (String.compare a b) 0)
  | _ :: "match" :: [ pattern; s ] ->
    if Glob.matches ~pattern s then "1" else "0"
  | _ :: "length" :: [ s ] -> string_of_int (String.length s)
  | _ :: "index" :: [ s; i ] ->
    let i =
      match int_of_string_opt (String.trim i) with
      | Some v -> v
      | None ->
        if String.trim i = "end" then String.length s - 1
        else failf "bad index \"%s\"" i
    in
    if i < 0 || i >= String.length s then "" else String.make 1 s.[i]
  | _ :: "range" :: [ s; first; last ] ->
    let n = String.length s in
    let parse_i v =
      if String.trim v = "end" then n - 1
      else
        match int_of_string_opt (String.trim v) with
        | Some i -> i
        | None -> failf "bad index \"%s\"" v
    in
    let first = max 0 (parse_i first) in
    let last = min (n - 1) (parse_i last) in
    if first > last then "" else String.sub s first (last - first + 1)
  | _ :: "tolower" :: [ s ] -> String.lowercase_ascii s
  | _ :: "toupper" :: [ s ] -> String.uppercase_ascii s
  | _ :: "trim" :: [ s ] -> trim_side ~left:true ~right:true trim_chars s
  | _ :: "trim" :: [ s; chars ] -> trim_side ~left:true ~right:true chars s
  | _ :: "trimleft" :: [ s ] -> trim_side ~left:true ~right:false trim_chars s
  | _ :: "trimleft" :: [ s; chars ] -> trim_side ~left:true ~right:false chars s
  | _ :: "trimright" :: [ s ] -> trim_side ~left:false ~right:true trim_chars s
  | _ :: "trimright" :: [ s; chars ] -> trim_side ~left:false ~right:true chars s
  | _ :: "first" :: [ needle; haystack ] ->
    string_of_int (find_substring ~last:false haystack needle)
  | _ :: "last" :: [ needle; haystack ] ->
    string_of_int (find_substring ~last:true haystack needle)
  | _ :: sub :: _ ->
    failf
      "bad option \"%s\": should be compare, first, index, last, length, \
       match, range, tolower, toupper, trim, trimleft, or trimright"
      sub
  | _ -> wrong_args "string option arg ?arg ...?"

let cmd_format _t = function
  | _ :: spec :: args -> format_string spec args
  | _ -> wrong_args "format formatString ?arg arg ...?"

let cmd_scan t = function
  | _ :: input :: fmt :: (_ :: _ as vars) -> (
    match scan_string input fmt with
    | Stdlib.Error msg -> failf "%s" msg
    | Stdlib.Ok fields ->
      let count = ref 0 in
      List.iteri
        (fun i field ->
          match List.nth_opt vars i with
          | Some var ->
            set_var t var field;
            incr count
          | None -> ())
        fields;
      string_of_int !count)
  | _ -> wrong_args "scan string format varName ?varName ...?"

let install t =
  register_value t "string" cmd_string;
  register_value t "format" cmd_format;
  register_value t "scan" cmd_scan;
  List.iter (register_signature t)
    [
      signature "string" 2 ~usage:"string option arg ?arg ...?"
        ~subs:
          [
            subsig "compare" 2 ~max:2;
            subsig "first" 2 ~max:2;
            subsig "index" 2 ~max:2;
            subsig "last" 2 ~max:2;
            subsig "length" 1 ~max:1;
            subsig "match" 2 ~max:2;
            subsig "range" 3 ~max:3;
            subsig "tolower" 1 ~max:1;
            subsig "toupper" 1 ~max:1;
            subsig "trim" 1 ~max:2;
            subsig "trimleft" 1 ~max:2;
            subsig "trimright" 1 ~max:2;
          ];
      signature "format" 1 ~usage:"format formatString ?arg arg ...?";
      signature "scan" 3 ~usage:"scan string format varName ?varName ...?";
    ]
