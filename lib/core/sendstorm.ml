(* A deterministic fleet-scale crash-storm harness for the send fabric.

   One run builds [cfg.apps] applications on a fresh simulated display,
   puts every dispatcher on one shared virtual clock, arms crash plans on
   a seeded subset of connections, makes a seeded subset deaf (alive but
   never answering — the distinct-from-died timeout case), and then
   drives a seeded mix of synchronous, retrying, asynchronous, future and
   broadcast sends through the fleet.  Everything that varies is drawn
   from one linear-congruential stream, so the same config produces the
   same request trace, the same crash points, the same outcomes and the
   same tk.send.* counters, run after run. *)

type config = {
  apps : int;
  crash_percent : int;  (* % of apps armed with a crash plan *)
  hang_percent : int;  (* % of apps made deaf (alive, never answering) *)
  hostile_percent : int;  (* % of apps sending runaway/forbidden scripts *)
  sends_per_app : int;
  mailbox_limit : int;
  timeout_ms : int;  (* per-send deadline on the virtual clock *)
  guarded : bool;  (* arm send guards on every app *)
  guard_time_ms : int;  (* per-request time limit when guarded *)
  guard_cmds : int;  (* per-request command budget when guarded *)
  seed : int;
}

let default =
  {
    apps = 50;
    crash_percent = 2;
    hang_percent = 2;
    hostile_percent = 0;
    sends_per_app = 3;
    mailbox_limit = 16;
    timeout_ms = 200;
    guarded = false;
    guard_time_ms = 0;
    guard_cmds = 0;
    seed = 42;
  }

type report = {
  cfg : config;
  outcomes : (string * int) list;  (* state -> count, sorted by state *)
  sends_issued : int;  (* aggregated tk.send.sends *)
  skipped_dead_senders : int;
  unresolved_futures : int;
  crashes_planned : int;
  crashes_landed : int;
  hung : int;
  counters : (string * int) list;  (* aggregated tk.send.*, sorted *)
  requests_total : int;
  requests_per_send : float;
  latencies_ms : int array;  (* virtual ms per awaited send, sorted *)
}

(* The same LCG the send fabric uses for retry jitter; here it drives the
   storm plan (victims, targets, send kinds, scripts). *)
let lcg s = ((s * 1103515245) + 12345) land 0x3FFFFFFF

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let idx =
      int_of_float (Float.round (p /. 100.0 *. float_of_int (n - 1)))
    in
    float_of_int sorted.(max 0 (min (n - 1) idx))

let counters_equal a b = a.counters = b.counters && a.outcomes = b.outcomes

let bump table state =
  let n = try Hashtbl.find table state with Not_found -> 0 in
  Hashtbl.replace table state (n + 1)

let run cfg =
  let server = Xsim.Server.create () in
  (* One clock for the whole fleet: every dispatcher reads the same
     counter and every backoff sleep advances it for everyone. *)
  let vnow = ref 0.0 in
  let clock () = !vnow in
  let sleep ms = vnow := !vnow +. (float_of_int ms /. 1000.0) in
  let apps =
    Array.init cfg.apps (fun i ->
        let app =
          Main.create ~server ~name:(Printf.sprintf "app%04d" i) ()
        in
        Dispatch.set_clock app.Core.disp clock;
        Dispatch.set_sleep app.Core.disp sleep;
        app.Core.send.Core.mailbox_limit <- cfg.mailbox_limit;
        (* Guarded fleets alternate evaluation contexts, so one storm
           exercises both guard shapes: even apps arm limits on the main
           interpreter, odd apps evaluate in a -safe slave. *)
        if cfg.guarded then begin
          app.Core.send.Core.guard_mode <-
            (if i land 1 = 0 then Core.Guard_limits else Core.Guard_safe);
          app.Core.send.Core.guard_time_ms <- cfg.guard_time_ms;
          app.Core.send.Core.guard_cmds <- cfg.guard_cmds
        end;
        ignore (Tcl.Interp.eval app.Core.interp "set hits 0");
        app)
  in
  (* A hostile app sends runaway or forbidden scripts chosen for its
     victim's guard shape: time-runaways ([while 1 {after 1}], which
     advances the shared virtual clock) and CPU-runaways
     ([while 1 {set spin 1}], killed by command budgets) at
     limits-guarded victims; forbidden [exit] (hidden-command denial)
     and CPU-runaways at safe-slave victims.  [exit] is never sent to a
     main-interpreter victim — nothing there would stop it. *)
  let hostile i =
    cfg.guarded && cfg.hostile_percent > 0 && i > 0
    && (i * 7 + 3) mod 100 < cfg.hostile_percent
  in
  let hostile_script target_idx pick =
    if cfg.guarded && target_idx land 1 = 1 then
      if pick = 0 then "exit 7" else "while 1 {set spin 1}"
    else if pick = 0 then "while 1 {after 1}"
    else "while 1 {set spin 1}"
  in
  let baseline_requests =
    Array.fold_left
      (fun acc app ->
        acc + (Xsim.Server.stats app.Core.conn).Xsim.Server.total_requests)
      0 apps
  in
  (* Seeded fault plan: crash victims die mid-traffic at a seeded request
     count; hung apps stay alive but never pick up a send again. *)
  let rng = ref (lcg (cfg.seed + 1)) in
  (* Draw from the high bits: the LCG's low bits cycle with tiny periods
     (bit k has period 2^k), so [mod] on the raw state is badly biased. *)
  let draw bound =
    rng := lcg !rng;
    if bound <= 0 then 0 else !rng lsr 13 mod bound
  in
  let crashes_planned = ref 0 in
  let hung = ref 0 in
  Array.iteri
    (fun i app ->
      if i > 0 && draw 100 < cfg.crash_percent then begin
        incr crashes_planned;
        let at =
          (Xsim.Server.stats app.Core.conn).Xsim.Server.total_requests
          + 2 + draw 40
        in
        Xsim.Server.set_crash_plan app.Core.conn ~at_request:at
      end
      else if i > 0 && draw 100 < cfg.hang_percent then begin
        incr hung;
        app.Core.pre_handlers <- []
      end)
    apps;
  let outcomes = Hashtbl.create 8 in
  let latencies = ref [] in
  let skipped = ref 0 in
  let future_handles = ref [] in
  let sender_ok app =
    (not app.Core.app_destroyed)
    && Xsim.Server.connection_alive app.Core.conn
  in
  let record_outcome o = bump outcomes (Sendcmd.outcome_state o) in
  let timed f =
    let t0 = Dispatch.now_ms apps.(0).Core.disp in
    let r = f () in
    let t1 = Dispatch.now_ms apps.(0).Core.disp in
    latencies := (t1 - t0) :: !latencies;
    r
  in
  (* The storm: each round every live app issues one seeded send.  A
     third of the traffic targets app0000 — the hotspot whose bounded
     mailbox is what the async floods overflow. *)
  for _round = 1 to cfg.sends_per_app do
    Array.iteri
      (fun i app ->
        if not (sender_ok app) then incr skipped
        else begin
          let target_idx =
            if i > 0 && draw 10 < 3 then 0 else draw cfg.apps
          in
          let target = Printf.sprintf "app%04d" target_idx in
          let script =
            if draw 10 = 0 then "error storm"
            else "set hits [expr {$hits + 1}]"
          in
          let kind = draw 100 in
          try
            if hostile i then
              (* Hostile traffic is all synchronous: the sender waits
                 out each victim's verdict, so every runaway's
                 termination (limit trip or denial) lands in the outcome
                 tally. *)
              record_outcome
                (timed (fun () ->
                     Sendcmd.send_outcome ~timeout_ms:cfg.timeout_ms app
                       ~target
                       (hostile_script target_idx (draw 2))))
            else if kind < 55 then
              record_outcome
                (timed (fun () ->
                     Sendcmd.send_outcome ~timeout_ms:cfg.timeout_ms app
                       ~target script))
            else if kind < 63 then
              record_outcome
                (timed (fun () ->
                     Sendcmd.send_outcome ~timeout_ms:cfg.timeout_ms
                       ~retry:true app ~target script))
            else if kind < 83 then
              (* Asyncs go out in bursts: enough records accumulate on
                 the hotspot's wire between pumps to hit the mailbox
                 bound, which is what makes overflow a reachable state. *)
              for _ = 1 to 5 do
                match Sendcmd.send_async app ~target script with
                | Ok () -> ()
                | Error _ -> bump outcomes "died"
              done
            else if kind < 97 then (
              match
                Sendcmd.send_future ~timeout_ms:cfg.timeout_ms app ~target
                  script
              with
              | Ok handle -> future_handles := (app, handle) :: !future_handles
              | Error _ -> bump outcomes "died")
            else
              (* A narrow multicast: every app whose zero-padded name
                 shares the hotspot's first three digits (10 peers). *)
              List.iter
                (fun (_, state, _) -> bump outcomes state)
                (timed (fun () ->
                     Sendcmd.broadcast ~timeout_ms:cfg.timeout_ms
                       ~pattern:"app000?" app script))
          with Xsim.Xerror.X_error e ->
            (* The sender itself crashed mid-send (its own crash plan
               fired while posting or polling). *)
            Xsim.Server.note_absorbed server e;
            bump outcomes "sender-crashed"
        end)
      apps
  done;
  (* Resolution phase: settle every future (each resolves to exactly one
     terminal state — the deadline guarantees termination) and drain the
     fleet's mailboxes until quiescent. *)
  List.iter
    (fun (app, handle) ->
      if sender_ok app then
        match timed (fun () -> Sendcmd.wait_future app handle) with
        | Ok (state, _) -> bump outcomes state
        | Error _ -> bump outcomes "lost"
      else bump outcomes "sender-crashed")
    (List.rev !future_handles);
  Array.iter (fun app -> if sender_ok app then Core.update app) apps;
  Array.iter (fun app -> if sender_ok app then Core.update app) apps;
  (* Aggregate the fleet's counters. *)
  let counters = Hashtbl.create 32 in
  Array.iter
    (fun app ->
      List.iter
        (fun (name, v) ->
          let v = int_of_string v in
          let n = try Hashtbl.find counters name with Not_found -> 0 in
          (* High-water marks aggregate by max; everything else by sum. *)
          if name = "tk.send.mailbox_depth_high_water" then
            Hashtbl.replace counters name (max n v)
          else Hashtbl.replace counters name (n + v))
        (Metrics.send_to_list app.Core.metrics
        @ List.map
            (fun (k, v) -> ("tcl.limit." ^ k, v))
            (Tcl.Interp.limit_stats app.Core.interp)))
    apps;
  let sorted_assoc tbl =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  let crashes_landed =
    Array.fold_left
      (fun acc app ->
        if Xsim.Server.connection_crashed app.Core.conn then acc + 1
        else acc)
      0 apps
  in
  let unresolved =
    Array.fold_left
      (fun acc app ->
        if sender_ok app then acc + Sendcmd.pending_futures app else acc)
      0 apps
  in
  let requests_total =
    Array.fold_left
      (fun acc app ->
        acc + (Xsim.Server.stats app.Core.conn).Xsim.Server.total_requests)
      0 apps
    - baseline_requests
  in
  let counters = sorted_assoc counters in
  let sends_issued =
    try List.assoc "tk.send.sends" counters with Not_found -> 0
  in
  let latencies_ms =
    let a = Array.of_list !latencies in
    Array.sort compare a;
    a
  in
  {
    cfg;
    outcomes = sorted_assoc outcomes;
    sends_issued;
    skipped_dead_senders = !skipped;
    unresolved_futures = unresolved;
    crashes_planned = !crashes_planned;
    crashes_landed;
    hung = !hung;
    counters;
    requests_total;
    requests_per_send =
      (if sends_issued = 0 then 0.0
       else float_of_int requests_total /. float_of_int sends_issued);
    latencies_ms;
  }
