open Xsim

type t = {
  conn : Server.connection;
  colors : (string, Color.t) Hashtbl.t;
  fonts : (string, Font.t) Hashtbl.t;
  cursors : (string, Cursor.t) Hashtbl.t;
  bitmaps : (string, Bitmap.t) Hashtbl.t;
  gcs : (string, Gcontext.t) Hashtbl.t;
  color_names : (string, string) Hashtbl.t; (* hex -> first name used *)
  mutable enabled : bool;
  mutable hit_count : int;
  mutable miss_count : int;
  mutable fallback_count : int;
}

let create conn =
  {
    conn;
    colors = Hashtbl.create 16;
    fonts = Hashtbl.create 8;
    cursors = Hashtbl.create 8;
    bitmaps = Hashtbl.create 8;
    gcs = Hashtbl.create 16;
    color_names = Hashtbl.create 16;
    enabled = true;
    hit_count = 0;
    miss_count = 0;
    fallback_count = 0;
  }

let set_enabled t flag = t.enabled <- flag

let normalise name = String.lowercase_ascii (String.trim name)

(* A failed server request (real or fault-injected) degrades to a
   [fallback] resource rather than propagating: the paper's Tk keeps
   running on default fonts and monochrome colors when allocations fail.
   The substitute is cached like a real answer so one fault costs one
   fallback, deterministically. *)
let fetch_degraded t fetch fallback name =
  try fetch t.conn name
  with Xerror.X_error e ->
    Server.note_absorbed (Server.server_of t.conn) e;
    t.fallback_count <- t.fallback_count + 1;
    Some (fallback name)

(* Generic cached lookup: [fetch] performs the server request. *)
let lookup t table fetch fallback name =
  let key = normalise name in
  if not t.enabled then begin
    t.miss_count <- t.miss_count + 1;
    fetch_degraded t fetch fallback name
  end
  else
    match Hashtbl.find_opt table key with
    | Some v ->
      t.hit_count <- t.hit_count + 1;
      Some v
    | None -> (
      t.miss_count <- t.miss_count + 1;
      match fetch_degraded t fetch fallback name with
      | Some v ->
        Hashtbl.replace table key v;
        Some v
      | None -> None)

(* Monochrome degradation: light-sounding names stay light, everything
   else goes black, so reliefs and text remain legible. *)
let color_fallback name =
  let n = normalise name in
  let mentions_white =
    let nl = String.length n in
    let rec go i = i + 5 <= nl && (String.sub n i 5 = "white" || go (i + 1)) in
    go 0
  in
  if mentions_white then Color.white else Color.black

let color t name =
  let result = lookup t t.colors Server.alloc_color color_fallback name in
  (match result with
  | Some c ->
    let hex = Color.to_hex c in
    if not (Hashtbl.mem t.color_names hex) then
      Hashtbl.replace t.color_names hex name
  | None -> ());
  result

let font t name =
  lookup t t.fonts Server.open_font (fun name -> Font.fallback ~name ()) name

let cursor t name =
  lookup t t.cursors Server.alloc_cursor (fun _ -> Cursor.fallback) name

let bitmap t name =
  lookup t t.bitmaps Server.alloc_bitmap (fun _ -> Bitmap.fallback ()) name

let color_name t c = Hashtbl.find_opt t.color_names (Color.to_hex c)

let hits t = t.hit_count
let misses t = t.miss_count
let fallbacks t = t.fallback_count

let reset_counters t =
  t.hit_count <- 0;
  t.miss_count <- 0;
  t.fallback_count <- 0

let gc t ?(foreground = "black") ?(background = "white") ?font:font_name () =
  let key =
    Printf.sprintf "%s/%s/%s" (normalise foreground) (normalise background)
      (match font_name with Some f -> normalise f | None -> "-")
  in
  match if t.enabled then Hashtbl.find_opt t.gcs key else None with
  | Some gc ->
    t.hit_count <- t.hit_count + 1;
    gc
  | None ->
    let fg = Option.value (color t foreground) ~default:Color.black in
    let bg = Option.value (color t background) ~default:Color.white in
    let fnt =
      match font_name with
      | Some name -> font t name
      | None -> font t Font.default_name
    in
    let gc =
      try Server.create_gc t.conn ~foreground:fg ~background:bg ?font:fnt ()
      with Xerror.X_error e ->
        (* A rejected GC allocation degrades to a client-side context with
           a null id: drawing continues with the resolved components. *)
        Server.note_absorbed (Server.server_of t.conn) e;
        t.fallback_count <- t.fallback_count + 1;
        Gcontext.make ~id:Xid.none ~foreground:fg ~background:bg ?font:fnt ()
    in
    if t.enabled then Hashtbl.replace t.gcs key gc;
    gc
