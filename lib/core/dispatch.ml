type timer_id = int

type timer = { tid : timer_id; deadline : float; callback : unit -> unit }

type t = {
  mutable clock : unit -> float;
  mutable sleep : int -> unit; (* ms *)
  mutable timers : timer list; (* sorted by deadline *)
  mutable next_id : int;
  mutable idle : (unit -> unit) list; (* reversed queue *)
  mutable files : (Unix.file_descr * (unit -> unit)) list;
  mutable on_error : exn -> unit;
}

let default_sleep ms =
  if ms > 0 then ignore (Unix.select [] [] [] (float_of_int ms /. 1000.0))

let create ?clock () =
  {
    clock = (match clock with Some c -> c | None -> Unix.gettimeofday);
    sleep = default_sleep;
    timers = [];
    next_id = 1;
    idle = [];
    files = [];
    on_error = raise;
  }

let set_clock t clock = t.clock <- clock
let set_sleep t sleep = t.sleep <- sleep
let sleep_ms t ms = if ms > 0 then t.sleep ms

(* Deterministic time for tests: the clock reads a counter and sleeping
   advances it, so deadline-based waits (send, selection get) terminate
   without wall-clock delays and at reproducible simulated times. *)
let use_virtual_clock t =
  let now = ref 0.0 in
  let advance ms = now := !now +. (float_of_int ms /. 1000.0) in
  t.clock <- (fun () -> !now);
  t.sleep <- advance;
  advance

let set_on_error t handler = t.on_error <- handler

(* One exploding callback must not take down the event loop — nor the
   other callbacks due in the same sweep. *)
let protect t f = try f () with e -> t.on_error e

let now_ms t = int_of_float (t.clock () *. 1000.0)

let after t ~ms callback =
  let tid = t.next_id in
  t.next_id <- t.next_id + 1;
  let deadline = t.clock () +. (float_of_int ms /. 1000.0) in
  let timer = { tid; deadline; callback } in
  t.timers <-
    List.stable_sort
      (fun a b -> compare a.deadline b.deadline)
      (timer :: t.timers);
  tid

let cancel t tid =
  let before = List.length t.timers in
  t.timers <- List.filter (fun timer -> timer.tid <> tid) t.timers;
  List.length t.timers < before

let when_idle t callback = t.idle <- callback :: t.idle

let add_file_handler t fd callback = t.files <- (fd, callback) :: t.files

let remove_file_handler t fd =
  t.files <- List.filter (fun (f, _) -> f <> fd) t.files

let run_due_timers t =
  let now = t.clock () in
  let due, remaining =
    List.partition (fun timer -> timer.deadline <= now) t.timers
  in
  t.timers <- remaining;
  List.iter (fun timer -> protect t timer.callback) due;
  List.length due

let run_idle t =
  (* Snapshot: callbacks scheduled while running go to the next sweep. *)
  let callbacks = List.rev t.idle in
  t.idle <- [];
  List.iter (fun f -> protect t f) callbacks;
  List.length callbacks

let poll_files t ~timeout =
  if t.files = [] then 0
  else
    let fds = List.map fst t.files in
    match Unix.select fds [] [] timeout with
    | readable, _, _ ->
      List.iter
        (fun fd ->
          match List.assoc_opt fd t.files with
          | Some callback -> protect t callback
          | None -> ())
        readable;
      List.length readable
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> 0

let next_deadline_ms t =
  match t.timers with
  | [] -> None
  | timer :: _ ->
    Some (max 0 (int_of_float ((timer.deadline -. t.clock ()) *. 1000.0)))

let has_work t = t.timers <> [] || t.idle <> []
