type timer_id = int

type timer = { tid : timer_id; deadline : float; callback : unit -> unit }

type counters = {
  timers_fired : int;
  idles_run : int;
  sweeps : int;
  sweep_ms_total : float;
  sweep_ms_last : float;
}

type t = {
  mutable clock : unit -> float;
  mutable sleep : int -> unit; (* ms *)
  mutable timers : timer list; (* sorted by deadline *)
  mutable next_id : int;
  mutable idle : (unit -> unit) list; (* reversed queue *)
  mutable files : (Unix.file_descr * (unit -> unit)) list;
  mutable on_error : exn -> unit;
  mutable timers_fired : int;
  mutable idles_run : int;
  mutable sweeps : int;
  mutable sweep_ms_total : float;
  mutable sweep_ms_last : float;
}

let default_sleep ms =
  if ms > 0 then ignore (Unix.select [] [] [] (float_of_int ms /. 1000.0))

let create ?clock () =
  {
    clock = (match clock with Some c -> c | None -> Unix.gettimeofday);
    sleep = default_sleep;
    timers = [];
    next_id = 1;
    idle = [];
    files = [];
    on_error = raise;
    timers_fired = 0;
    idles_run = 0;
    sweeps = 0;
    sweep_ms_total = 0.0;
    sweep_ms_last = 0.0;
  }

let counters t =
  {
    timers_fired = t.timers_fired;
    idles_run = t.idles_run;
    sweeps = t.sweeps;
    sweep_ms_total = t.sweep_ms_total;
    sweep_ms_last = t.sweep_ms_last;
  }

let reset_counters t =
  t.timers_fired <- 0;
  t.idles_run <- 0;
  t.sweeps <- 0;
  t.sweep_ms_total <- 0.0;
  t.sweep_ms_last <- 0.0

(* Latency of one callback sweep, measured on the pluggable clock so
   virtual-clock tests see deterministic numbers. Empty sweeps are not
   counted: they would drown the signal in [update]'s quiescence loop. *)
let note_sweep t ~t0 ~ran =
  if ran > 0 then begin
    let ms = (t.clock () -. t0) *. 1000.0 in
    t.sweeps <- t.sweeps + 1;
    t.sweep_ms_total <- t.sweep_ms_total +. ms;
    t.sweep_ms_last <- ms
  end

let set_clock t clock = t.clock <- clock
let set_sleep t sleep = t.sleep <- sleep
let sleep_ms t ms = if ms > 0 then t.sleep ms

(* Deterministic time for tests: the clock reads a counter and sleeping
   advances it, so deadline-based waits (send, selection get) terminate
   without wall-clock delays and at reproducible simulated times. *)
let use_virtual_clock t =
  let now = ref 0.0 in
  let advance ms = now := !now +. (float_of_int ms /. 1000.0) in
  t.clock <- (fun () -> !now);
  t.sleep <- advance;
  advance

let set_on_error t handler = t.on_error <- handler

(* One exploding callback must not take down the event loop — nor the
   other callbacks due in the same sweep. *)
let protect t f = try f () with e -> t.on_error e

let now_ms t = int_of_float (t.clock () *. 1000.0)

let clock_seconds t = t.clock ()

let after t ~ms callback =
  let tid = t.next_id in
  t.next_id <- t.next_id + 1;
  let deadline = t.clock () +. (float_of_int ms /. 1000.0) in
  let timer = { tid; deadline; callback } in
  t.timers <-
    List.stable_sort
      (fun a b -> compare a.deadline b.deadline)
      (timer :: t.timers);
  tid

let cancel t tid =
  let before = List.length t.timers in
  t.timers <- List.filter (fun timer -> timer.tid <> tid) t.timers;
  List.length t.timers < before

let when_idle t callback = t.idle <- callback :: t.idle

let add_file_handler t fd callback = t.files <- (fd, callback) :: t.files

let remove_file_handler t fd =
  t.files <- List.filter (fun (f, _) -> f <> fd) t.files

let run_due_timers t =
  let now = t.clock () in
  let due, remaining =
    List.partition (fun timer -> timer.deadline <= now) t.timers
  in
  t.timers <- remaining;
  List.iter (fun timer -> protect t timer.callback) due;
  let n = List.length due in
  t.timers_fired <- t.timers_fired + n;
  note_sweep t ~t0:now ~ran:n;
  n

let run_idle t =
  let t0 = t.clock () in
  (* Snapshot: callbacks scheduled while running go to the next sweep. *)
  let callbacks = List.rev t.idle in
  t.idle <- [];
  List.iter (fun f -> protect t f) callbacks;
  let n = List.length callbacks in
  t.idles_run <- t.idles_run + n;
  note_sweep t ~t0 ~ran:n;
  n

let poll_files t ~timeout =
  if t.files = [] then begin
    (* No descriptors to select on: still honor the timeout (through the
       pluggable sleep, so virtual-clock tests stay deterministic) instead
       of returning immediately and letting the caller busy-spin toward
       the next timer deadline. *)
    sleep_ms t (int_of_float (Float.round (timeout *. 1000.0)));
    0
  end
  else
    let fds = List.map fst t.files in
    match Unix.select fds [] [] timeout with
    | readable, _, _ ->
      List.iter
        (fun fd ->
          match List.assoc_opt fd t.files with
          | Some callback -> protect t callback
          | None -> ())
        readable;
      List.length readable
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> 0

let next_deadline_ms t =
  match t.timers with
  | [] -> None
  | timer :: _ ->
    (* Round up: a timer due in 0.4 ms must yield 1, not 0 — [Some 0]
       for a not-yet-due timer makes deadline-driven poll loops spin. *)
    Some (max 0 (int_of_float (Float.ceil ((timer.deadline -. t.clock ()) *. 1000.0))))

let has_work t = t.timers <> [] || t.idle <> []
