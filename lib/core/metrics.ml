type t = {
  mutable redraws_scheduled : int;
  mutable redraws_collapsed : int;
  mutable redraws_drawn : int;
  mutable redraws_skipped_dead : int;
  mutable binding_dispatches : int;
}

let create () =
  {
    redraws_scheduled = 0;
    redraws_collapsed = 0;
    redraws_drawn = 0;
    redraws_skipped_dead = 0;
    binding_dispatches = 0;
  }

let reset t =
  t.redraws_scheduled <- 0;
  t.redraws_collapsed <- 0;
  t.redraws_drawn <- 0;
  t.redraws_skipped_dead <- 0;
  t.binding_dispatches <- 0

let to_list t =
  [
    ("redraws_scheduled", string_of_int t.redraws_scheduled);
    ("redraws_collapsed", string_of_int t.redraws_collapsed);
    ("redraws_drawn", string_of_int t.redraws_drawn);
    ("redraws_skipped_dead", string_of_int t.redraws_skipped_dead);
    ("binding_dispatches", string_of_int t.binding_dispatches);
  ]
