type t = {
  mutable redraws_scheduled : int;
  mutable redraws_collapsed : int;
  mutable redraws_drawn : int;
  mutable redraws_skipped_dead : int;
  (* Damage-region repaints ("tk.damage." counters): partial repaints
     scheduled through [schedule_damage] instead of whole-widget
     redraws. *)
  mutable damage_scheduled : int;
  mutable damage_coalesced : int;
  mutable damage_drawn : int;
  mutable damage_deopt_full : int;
  (* Canvas item machinery ("tk.canvas." counters): spatial-index use and
     repaint selectivity. *)
  mutable canvas_index_queries : int;
  mutable canvas_index_hits : int;
  mutable canvas_linear_scans : int;
  mutable canvas_items_considered : int;
  mutable canvas_items_drawn : int;
  mutable canvas_full_redraws : int;
  mutable canvas_damage_redraws : int;
  mutable canvas_bulk_ops : int;
  mutable binding_dispatches : int;
  (* The send fabric ("tk.send." counters): sender-side outcomes ... *)
  mutable sends : int;
  mutable sends_ok : int;
  mutable sends_error : int;
  mutable sends_self : int;
  mutable sends_async : int;
  mutable sends_broadcast : int;
  mutable send_retries : int;
  mutable send_overflows : int;
  mutable send_died : int;
  mutable send_timeouts : int;
  mutable sends_denied : int;
  mutable sends_limited : int;
  mutable futures_created : int;
  mutable futures_resolved : int;
  (* ... receiver-side mailbox accounting ... *)
  mutable mailbox_enqueued : int;
  mutable mailbox_drained : int;
  mutable mailbox_rejected : int;
  mutable mailbox_high_water : int;
  mutable recv_denied : int;
  mutable recv_limited : int;
  (* ... and registry hygiene. *)
  mutable ghosts_collected : int;
}

let create () =
  {
    redraws_scheduled = 0;
    redraws_collapsed = 0;
    redraws_drawn = 0;
    redraws_skipped_dead = 0;
    damage_scheduled = 0;
    damage_coalesced = 0;
    damage_drawn = 0;
    damage_deopt_full = 0;
    canvas_index_queries = 0;
    canvas_index_hits = 0;
    canvas_linear_scans = 0;
    canvas_items_considered = 0;
    canvas_items_drawn = 0;
    canvas_full_redraws = 0;
    canvas_damage_redraws = 0;
    canvas_bulk_ops = 0;
    binding_dispatches = 0;
    sends = 0;
    sends_ok = 0;
    sends_error = 0;
    sends_self = 0;
    sends_async = 0;
    sends_broadcast = 0;
    send_retries = 0;
    send_overflows = 0;
    send_died = 0;
    send_timeouts = 0;
    sends_denied = 0;
    sends_limited = 0;
    futures_created = 0;
    futures_resolved = 0;
    mailbox_enqueued = 0;
    mailbox_drained = 0;
    mailbox_rejected = 0;
    mailbox_high_water = 0;
    recv_denied = 0;
    recv_limited = 0;
    ghosts_collected = 0;
  }

let reset t =
  t.redraws_scheduled <- 0;
  t.redraws_collapsed <- 0;
  t.redraws_drawn <- 0;
  t.redraws_skipped_dead <- 0;
  t.damage_scheduled <- 0;
  t.damage_coalesced <- 0;
  t.damage_drawn <- 0;
  t.damage_deopt_full <- 0;
  t.canvas_index_queries <- 0;
  t.canvas_index_hits <- 0;
  t.canvas_linear_scans <- 0;
  t.canvas_items_considered <- 0;
  t.canvas_items_drawn <- 0;
  t.canvas_full_redraws <- 0;
  t.canvas_damage_redraws <- 0;
  t.canvas_bulk_ops <- 0;
  t.binding_dispatches <- 0;
  t.sends <- 0;
  t.sends_ok <- 0;
  t.sends_error <- 0;
  t.sends_self <- 0;
  t.sends_async <- 0;
  t.sends_broadcast <- 0;
  t.send_retries <- 0;
  t.send_overflows <- 0;
  t.send_died <- 0;
  t.send_timeouts <- 0;
  t.sends_denied <- 0;
  t.sends_limited <- 0;
  t.futures_created <- 0;
  t.futures_resolved <- 0;
  t.mailbox_enqueued <- 0;
  t.mailbox_drained <- 0;
  t.mailbox_rejected <- 0;
  t.mailbox_high_water <- 0;
  t.recv_denied <- 0;
  t.recv_limited <- 0;
  t.ghosts_collected <- 0

let to_list t =
  [
    ("redraws_scheduled", string_of_int t.redraws_scheduled);
    ("redraws_collapsed", string_of_int t.redraws_collapsed);
    ("redraws_drawn", string_of_int t.redraws_drawn);
    ("redraws_skipped_dead", string_of_int t.redraws_skipped_dead);
    ("binding_dispatches", string_of_int t.binding_dispatches);
  ]

let damage_to_list t =
  [
    ("tk.damage.scheduled", string_of_int t.damage_scheduled);
    ("tk.damage.coalesced", string_of_int t.damage_coalesced);
    ("tk.damage.partial_drawn", string_of_int t.damage_drawn);
    ("tk.damage.deopt_full", string_of_int t.damage_deopt_full);
  ]

let canvas_to_list t =
  [
    ("tk.canvas.index_queries", string_of_int t.canvas_index_queries);
    ("tk.canvas.index_hits", string_of_int t.canvas_index_hits);
    ("tk.canvas.linear_scans", string_of_int t.canvas_linear_scans);
    ("tk.canvas.items_considered", string_of_int t.canvas_items_considered);
    ("tk.canvas.items_drawn", string_of_int t.canvas_items_drawn);
    ("tk.canvas.full_redraws", string_of_int t.canvas_full_redraws);
    ("tk.canvas.damage_redraws", string_of_int t.canvas_damage_redraws);
    ("tk.canvas.bulk_ops", string_of_int t.canvas_bulk_ops);
  ]

let send_to_list t =
  [
    ("tk.send.sends", string_of_int t.sends);
    ("tk.send.ok", string_of_int t.sends_ok);
    ("tk.send.errors", string_of_int t.sends_error);
    ("tk.send.self_fast_path", string_of_int t.sends_self);
    ("tk.send.async", string_of_int t.sends_async);
    ("tk.send.broadcasts", string_of_int t.sends_broadcast);
    ("tk.send.retries", string_of_int t.send_retries);
    ("tk.send.overflows", string_of_int t.send_overflows);
    ("tk.send.died", string_of_int t.send_died);
    ("tk.send.timeouts", string_of_int t.send_timeouts);
    ("tk.send.denied", string_of_int t.sends_denied);
    ("tk.send.limited", string_of_int t.sends_limited);
    ("tk.send.futures_created", string_of_int t.futures_created);
    ("tk.send.futures_resolved", string_of_int t.futures_resolved);
    ("tk.send.mailbox_enqueued", string_of_int t.mailbox_enqueued);
    ("tk.send.mailbox_drained", string_of_int t.mailbox_drained);
    ("tk.send.mailbox_rejected", string_of_int t.mailbox_rejected);
    ("tk.send.mailbox_depth_high_water", string_of_int t.mailbox_high_water);
    ("tk.send.recv_denied", string_of_int t.recv_denied);
    ("tk.send.recv_limited", string_of_int t.recv_limited);
    ("tk.send.ghosts_collected", string_of_int t.ghosts_collected);
  ]
