(** Toolkit-side activity counters.

    One instance lives on each {!Core.app}; the intrinsics bump it from
    the hot paths the paper's evaluation cares about — redraw coalescing
    (how many repaints the [redraw_pending] flag collapsed, §3.2's
    idle-time redisplay), binding dispatch, and the send fabric (§6 at
    fleet scale: per-outcome send counters, mailbox backpressure, registry
    ghost collection). Together with the server request
    {!Xsim.Server.stats}, the {!Rescache} hit/miss counters and the
    {!Dispatch.counters}, these form the registry that
    [Core.metrics_snapshot] (and the [xstat] Tcl command) expose. *)

type t = {
  mutable redraws_scheduled : int;
      (** calls to [schedule_redraw] that armed an idle callback *)
  mutable redraws_collapsed : int;
      (** calls coalesced into an already-pending redraw *)
  mutable redraws_drawn : int;  (** display procedures actually run *)
  mutable redraws_skipped_dead : int;
      (** scheduled redraws dropped because the widget was destroyed
          between scheduling and the idle sweep *)
  mutable damage_scheduled : int;
      (** calls to [schedule_damage] that armed a partial repaint *)
  mutable damage_coalesced : int;
      (** damage rects unioned into an already-pending partial repaint *)
  mutable damage_drawn : int;  (** partial (damage-clipped) repaints run *)
  mutable damage_deopt_full : int;
      (** pending partial repaints upgraded to a full redraw (damage grew
          past the deopt threshold, or a full redraw was also scheduled) *)
  mutable canvas_index_queries : int;  (** spatial-index rectangle queries *)
  mutable canvas_index_hits : int;
      (** candidate items yielded by index queries *)
  mutable canvas_linear_scans : int;
      (** queries answered by the O(n) linear fallback (index disabled) *)
  mutable canvas_items_considered : int;
      (** items examined during canvas repaints *)
  mutable canvas_items_drawn : int;
      (** items whose ops were actually (re-)emitted *)
  mutable canvas_full_redraws : int;
  mutable canvas_damage_redraws : int;
  mutable canvas_bulk_ops : int;
      (** tag-indexed bulk verbs (move/delete/itemconfigure/... on a tag) *)
  mutable binding_dispatches : int;  (** binding scripts dispatched *)
  mutable sends : int;  (** send requests issued (all variants) *)
  mutable sends_ok : int;  (** sends that resolved [ok] *)
  mutable sends_error : int;  (** remote script raised a Tcl error *)
  mutable sends_self : int;  (** self-sends taken on the fast path *)
  mutable sends_async : int;  (** fire-and-forget sends posted *)
  mutable sends_broadcast : int;  (** broadcast/multicast operations *)
  mutable send_retries : int;  (** reposts after a mailbox overflow *)
  mutable send_overflows : int;  (** sends that resolved [overflow] *)
  mutable send_died : int;  (** sends that resolved [died] *)
  mutable send_timeouts : int;  (** sends that resolved [timed-out] *)
  mutable sends_denied : int;
      (** sends refused because the script reached a hidden command *)
  mutable sends_limited : int;
      (** sends cut short by the target's resource limits *)
  mutable futures_created : int;
  mutable futures_resolved : int;
  mutable mailbox_enqueued : int;  (** incoming requests accepted *)
  mutable mailbox_drained : int;  (** requests evaluated from the mailbox *)
  mutable mailbox_rejected : int;
      (** incoming requests refused because the mailbox was full *)
  mutable mailbox_high_water : int;  (** deepest the mailbox has been *)
  mutable recv_denied : int;
      (** incoming scripts that hit a hidden command here *)
  mutable recv_limited : int;
      (** incoming scripts stopped by this target's limits *)
  mutable ghosts_collected : int;
      (** stale registry entries garbage-collected *)
}

val create : unit -> t

val reset : t -> unit

val to_list : t -> (string * string) list
(** Counter name/value pairs, values rendered as decimal strings. *)

val send_to_list : t -> (string * string) list
(** The send-fabric counters, already prefixed [tk.send.*]. *)

val damage_to_list : t -> (string * string) list
(** The damage-repaint counters, already prefixed [tk.damage.*]. *)

val canvas_to_list : t -> (string * string) list
(** The canvas counters, already prefixed [tk.canvas.*]. *)
