(** Toolkit-side activity counters.

    One instance lives on each {!Core.app}; the intrinsics bump it from
    the hot paths the paper's evaluation cares about — redraw coalescing
    (how many repaints the [redraw_pending] flag collapsed, §3.2's
    idle-time redisplay) and binding dispatch. Together with the server
    request {!Xsim.Server.stats}, the {!Rescache} hit/miss counters and
    the {!Dispatch.counters}, these form the registry that
    [Core.metrics_snapshot] (and the [xstat] Tcl command) expose. *)

type t = {
  mutable redraws_scheduled : int;
      (** calls to [schedule_redraw] that armed an idle callback *)
  mutable redraws_collapsed : int;
      (** calls coalesced into an already-pending redraw *)
  mutable redraws_drawn : int;  (** display procedures actually run *)
  mutable redraws_skipped_dead : int;
      (** scheduled redraws dropped because the widget was destroyed
          between scheduling and the idle sweep *)
  mutable binding_dispatches : int;  (** binding scripts dispatched *)
}

val create : unit -> t

val reset : t -> unit

val to_list : t -> (string * string) list
(** Counter name/value pairs, values rendered as decimal strings. *)
