(** Tk's selection support (paper §3.6): widgets register a selection
    handler and claim the PRIMARY selection; Tk runs the ICCCM machinery —
    notifying the previous owner, answering SelectionRequest events from
    the handler, and retrieving the selection from whoever owns it
    (including another application on the display).

    Handlers can be OCaml functions (the paper's "C procedures") or Tcl
    scripts ([selection handle]). *)

val install : Core.app -> unit
(** Register the [selection] Tcl command and the event interceptors. *)

val own : Core.widget -> provider:(unit -> string) -> unit
(** Claim PRIMARY for a widget; [provider] returns the selected text when
    another client asks. The previous owner is notified via
    SelectionClear. *)

val disown : Core.app -> unit
(** Give up the selection voluntarily. *)

val owner_path : Core.app -> string option
(** The owning widget within this application, if any. *)

val get : ?timeout_ms:int -> Core.app -> string
(** Retrieve the PRIMARY selection as a string, wherever its owner is.
    The wait is bounded ([timeout_ms], default 2000, on the requesting
    app's {!Dispatch} clock); an owner that crashes mid-conversion is
    detected early and the dangling ownership is cleared server-side.
    @raise Tcl.Interp.Tcl_failure when nobody owns the selection, when
    the owner died mid-conversion, or when it failed to answer before
    the deadline. *)
