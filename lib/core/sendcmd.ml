open Xsim

let script_property = "TK_SEND_SCRIPT"
let result_property_prefix = "TK_SEND_RESULT_"

let default_timeout_ms = 5000
let max_backoff_ms = 64

let interps app = List.map fst (Core.read_registry app)

(* Deterministic backoff jitter: a per-app LCG seeded from the connection
   id at create_app time, so retry schedules are reproducible run to run
   but distinct app to app (no lock-step thundering herd). *)
let jitter app bound =
  let s = app.Core.send in
  s.Core.send_rng <- ((s.Core.send_rng * 1103515245) + 12345) land 0x3FFFFFFF;
  if bound <= 0 then 0 else s.Core.send_rng mod bound

(* ------------------------------------------------------------------ *)
(* Receiver side: mailbox, drain, replies *)

(* Reply codes on the wire: "0" ok, "1" Tcl error, "2" mailbox overflow,
   "3" hidden-command denial, "4" resource limit exceeded.  Overflow and
   limit-exceeded are deliberately distinct codes with distinct messages:
   the first is the *mailbox* refusing before evaluation, the second the
   *evaluator* cutting a runaway short. *)
let reply app ~sender ~serial ~code ~value ~info =
  (* The sender may die between posting the script and our reply: writing
     the result property then raises BadWindow, which we absorb (there is
     nobody left to answer). *)
  Core.absorb app ~default:() @@ fun () ->
  let prop =
    Server.intern_atom app.Core.conn (result_property_prefix ^ serial)
  in
  Server.change_property app.Core.conn sender ~prop ~ptype:Atom.string
    (Tcl.Tcl_list.format [ code; value; info ])

(* How one incoming script's evaluation ended, beyond ok/error: a
   hidden-command denial or a resource-limit trip gets its own class so
   the wire reply and the sender's outcome can distinguish them. *)
type eval_class =
  | C_ok
  | C_error
  | C_denied
  | C_limited of Tcl.Interp.limit_kind

let limited_msg app kind =
  Printf.sprintf "script in application \"%s\" exceeded its %s limit"
    app.Core.app_name
    (match kind with
    | Tcl.Interp.Limit_time -> "time"
    | Tcl.Interp.Limit_commands -> "command")

(* The interpreter incoming scripts evaluate in under [Guard_safe]: a
   [-safe] slave of the main interpreter named "send", created lazily
   and re-created if a script deleted it ([interp delete send] from the
   master side is legal — the guard just makes a fresh one). *)
let guard_interp app =
  let s = app.Core.send in
  let master = app.Core.interp in
  let cached =
    match s.Core.guard_interp with
    | Some gi -> (
      match Tcl.Interp.find_slave master "send" with
      | Some live when live == gi -> Some gi
      | Some _ | None -> None)
    | None -> None
  in
  match cached with
  | Some gi -> gi
  | None -> (
    ignore (Tcl.Interp.delete_slave master "send");
    match Tcl.Builtins.create_slave ~master ~safe:true "send" with
    | Ok gi ->
      s.Core.guard_interp <- Some gi;
      gi
    | Error _ ->
      (* Unreachable: the name was just deleted.  Fall back to the main
         interpreter rather than dropping the request. *)
      master)

(* Remote scripts execute at global scope, whatever the receiving
   application happened to be doing.  The self-send fast path calls this
   same function, so the two paths are differential-identical (result,
   status, errorInfo, guard behavior).  Under [Guard_limits]/[Guard_safe]
   the configured limits are armed around the evaluation and disarmed
   after, so a runaway script is cut short without leaving the
   interpreter limited for its own user. *)
let eval_remote app script =
  let s = app.Core.send in
  let m = app.Core.metrics in
  let interp, guarded =
    match s.Core.guard_mode with
    | Core.Guard_off -> (app.Core.interp, false)
    | Core.Guard_limits -> (app.Core.interp, true)
    | Core.Guard_safe -> (guard_interp app, true)
  in
  (* Arm limits only for the outermost request: a request evaluated
     nested inside another (a blocking script pumps the event loop,
     which drains again) runs under the outer request's armed budget —
     re-arming here would reset the outer script's deadline, and
     disarming on the way out would strip it. *)
  let armed = guarded && not s.Core.draining in
  let denied_before = Tcl.Interp.denied_count interp in
  if armed then begin
    s.Core.draining <- true;
    if s.Core.guard_time_ms > 0 then
      Tcl.Interp.set_time_limit interp s.Core.guard_time_ms;
    if s.Core.guard_cmds > 0 then
      Tcl.Interp.set_command_limit interp s.Core.guard_cmds
  end;
  let disarm () =
    if armed then begin
      Tcl.Interp.set_time_limit interp 0;
      Tcl.Interp.set_command_limit interp 0;
      s.Core.draining <- false
    end
  in
  let status, value =
    match
      Tcl.Interp.with_level interp 0 (fun () -> Tcl.Interp.eval interp script)
    with
    | r -> r
    | exception e ->
      disarm ();
      raise e
  in
  let cls =
    match status with
    | Tcl.Interp.Tcl_error -> (
      match Tcl.Interp.limit_tripped interp with
      | Some k -> C_limited k
      | None ->
        if Tcl.Interp.denied_count interp > denied_before then C_denied
        else C_error)
    | _ -> C_ok
  in
  let info =
    match status with
    | Tcl.Interp.Tcl_error -> Tcl.Interp.get_error_info interp
    | _ -> ""
  in
  disarm ();
  (* The limit/unwind error has been delivered into the reply; it must
     not keep unwinding the (self-path) sender's own catch frames. *)
  if armed then Tcl.Interp.clear_unwinding interp;
  (match cls with
  | C_denied -> m.Metrics.recv_denied <- m.Metrics.recv_denied + 1
  | C_limited _ -> m.Metrics.recv_limited <- m.Metrics.recv_limited + 1
  | C_ok | C_error -> ());
  (status, value, info, cls)

let evaluate_request app (rq : Core.send_request) =
  let _status, value, info, cls = eval_remote app rq.Core.sq_script in
  if rq.Core.sq_mode <> "async" then begin
    let code, value, info =
      match cls with
      | C_ok -> ("0", value, "")
      | C_error -> ("1", value, info)
      | C_denied -> ("3", value, "")
      | C_limited k -> ("4", limited_msg app k, "")
    in
    reply app ~sender:rq.Core.sq_sender ~serial:rq.Core.sq_serial ~code
      ~value ~info
  end

(* Accept or refuse one parked request.  Refusals answer immediately with
   the overflow code (asyncs are dropped silently — there is nobody
   waiting), so a sender learns about backpressure without waiting out
   its deadline. *)
let enqueue_request app (rq : Core.send_request) =
  let s = app.Core.send in
  let m = app.Core.metrics in
  if Queue.length s.Core.mailbox >= s.Core.mailbox_limit then begin
    m.Metrics.mailbox_rejected <- m.Metrics.mailbox_rejected + 1;
    if rq.Core.sq_mode <> "async" then
      reply app ~sender:rq.Core.sq_sender ~serial:rq.Core.sq_serial
        ~code:"2"
        ~value:
          (Printf.sprintf "mailbox of application \"%s\" is full (limit %d)"
             app.Core.app_name s.Core.mailbox_limit)
        ~info:""
  end
  else begin
    Queue.add rq s.Core.mailbox;
    m.Metrics.mailbox_enqueued <- m.Metrics.mailbox_enqueued + 1;
    let depth = Queue.length s.Core.mailbox in
    if depth > m.Metrics.mailbox_high_water then
      m.Metrics.mailbox_high_water <- depth
  end

(* Requests are appended to the script property as elements of a Tcl
   list, so a burst from many senders accumulates losslessly; one read
   takes the whole batch. *)
let parse_record str =
  match Tcl.Tcl_list.parse str with
  | Ok [ serial; sender; mode; script ] -> (
    match int_of_string_opt sender with
    | Some w ->
      Some
        {
          Core.sq_serial = serial;
          sq_sender = w;
          sq_mode = mode;
          sq_script = script;
        }
    | None -> None)
  | Ok _ | Error _ -> None

let handle_incoming app =
  Core.absorb app ~default:() @@ fun () ->
  let prop = Server.intern_atom app.Core.conn script_property in
  match Server.get_property app.Core.conn app.Core.comm_win ~prop with
  | None -> ()
  | Some p -> (
    Server.delete_property app.Core.conn app.Core.comm_win ~prop;
    match Tcl.Tcl_list.parse p.Window.prop_data with
    | Ok records ->
      List.iter
        (fun r ->
          match parse_record r with
          | Some rq -> enqueue_request app rq
          | None -> ())
        records
    | Error _ -> ())

(* The event handler only parks requests; evaluation happens when the
   event loop drains the mailbox (Core.update runs the drain hooks), so
   a remote script never executes re-entrantly in the middle of another
   event handler. *)
let pre_handler app (d : Event.delivery) =
  if d.Event.window <> app.Core.comm_win then false
  else
    match d.Event.event with
    | Event.Property_notify { prop_deleted = false; prop_atom } ->
      (match Server.atom_name app.Core.conn prop_atom with
      | Some name when name = script_property -> handle_incoming app
      | Some _ | None -> ());
      true
    | Event.Property_notify { prop_deleted = true; _ } -> true
    | _ -> false

let drain_mailbox app =
  let s = app.Core.send in
  let m = app.Core.metrics in
  (* Snapshot the depth: requests enqueued by scripts we evaluate here
     wait for the next sweep, keeping each drain bounded.  A drained
     script that blocks (a synchronous send or [after]) pumps the event
     loop, which may drain again — that nesting is what lets nested
     RPC bottom out, and [eval_remote] makes it safe by arming resource
     limits only at the outermost request (see [Core.draining]). *)
  let n = Queue.length s.Core.mailbox in
  for _ = 1 to n do
    match Queue.take_opt s.Core.mailbox with
    | None -> ()
    | Some rq ->
      m.Metrics.mailbox_drained <- m.Metrics.mailbox_drained + 1;
      evaluate_request app rq
  done;
  n

(* ------------------------------------------------------------------ *)
(* Sender side: posting, polling, liveness *)

let fresh_serial app =
  app.Core.send_serial <- app.Core.send_serial + 1;
  string_of_int app.Core.send_serial

let post app ~target_comm ~serial ~mode script =
  let prop = Server.intern_atom app.Core.conn script_property in
  Server.append_property app.Core.conn target_comm ~prop ~ptype:Atom.string
    (" "
    ^ Tcl.Tcl_list.format
        [
          Tcl.Tcl_list.format
            [ serial; string_of_int app.Core.comm_win; mode; script ];
        ])

let take_reply app serial =
  let prop =
    Server.intern_atom app.Core.conn (result_property_prefix ^ serial)
  in
  match Server.get_property app.Core.conn app.Core.comm_win ~prop with
  | None -> None
  | Some p -> (
    Server.delete_property app.Core.conn app.Core.comm_win ~prop;
    match Tcl.Tcl_list.parse p.Window.prop_data with
    | Ok [ code; value ] -> Some (code, value, "")
    | Ok [ code; value; info ] -> Some (code, value, info)
    | Ok _ | Error _ -> Some ("1", "malformed send reply", ""))

(* Is the peer behind this communication window still alive?  For
   in-process peers (every client in the simulation) this is an O(1)
   table lookup; the X liveness ping is the fallback for windows we
   cannot map to a local application. *)
let peer_alive app comm =
  match Core.app_of_comm app.Core.server comm with
  | Some peer ->
    (not peer.Core.app_destroyed) && Server.connection_alive peer.Core.conn
  | None ->
    Core.absorb app ~default:true @@ fun () ->
    Server.window_exists app.Core.conn comm

(* Make progress while waiting: pump ourselves (drains our mailbox, so
   nested sends back to us keep working) and the target — not the whole
   display, which would make every send O(clients) at fleet scale. *)
let pump app comm =
  if
    (not app.Core.app_destroyed)
    && Server.connection_alive app.Core.conn
  then Core.update app;
  match Core.app_of_comm app.Core.server comm with
  | Some peer
    when (not peer.Core.app_destroyed)
         && Server.connection_alive peer.Core.conn ->
    Core.update peer
  | Some _ | None -> ()

(* One send's terminal state.  The failure taxonomy is deliberately
   disjoint: [died] (liveness ping failed), [timeout] (alive but
   unresponsive past the deadline), [overflow] (refused by the target's
   mailbox before evaluation), [denied] (the script reached a hidden
   command in the target's guard context), [limited] (the target's
   resource limits cut the script short), [error] (the remote script
   raised an ordinary Tcl error). *)
type outcome =
  | O_ok of string
  | O_error of string
  | O_died of string
  | O_timeout of string
  | O_overflow of string
  | O_denied of string
  | O_limited of string

let outcome_state = function
  | O_ok _ -> "ok"
  | O_error _ -> "error"
  | O_died _ -> "died"
  | O_timeout _ -> "timeout"
  | O_overflow _ -> "overflow"
  | O_denied _ -> "denied"
  | O_limited _ -> "limited"

let outcome_value = function
  | O_ok v | O_error v | O_died v | O_timeout v | O_overflow v | O_denied v
  | O_limited v ->
    v

(* The self-send fast path maps an eval_remote classification onto the
   same outcome (with the same message text) the wire path would have
   delivered, keeping the two paths differential-identical. *)
let outcome_of_local app (value, cls) =
  match cls with
  | C_ok -> O_ok value
  | C_error -> O_error value
  | C_denied -> O_denied value
  | C_limited k -> O_limited (limited_msg app k)

let died_msg target = Printf.sprintf "target application \"%s\" died" target

let timeout_msg target timeout_ms =
  Printf.sprintf
    "send to application \"%s\" timed out after %d ms (interpreter is \
     alive but unresponsive)"
    target timeout_ms

let future_timeout_msg target =
  Printf.sprintf
    "send to application \"%s\" timed out (interpreter is alive but \
     unresponsive)"
    target

(* Count one terminal outcome against the sender's tk.send.* metrics. *)
let count_outcome app o =
  let m = app.Core.metrics in
  match o with
  | O_ok _ -> m.Metrics.sends_ok <- m.Metrics.sends_ok + 1
  | O_error _ -> m.Metrics.sends_error <- m.Metrics.sends_error + 1
  | O_died _ -> m.Metrics.send_died <- m.Metrics.send_died + 1
  | O_timeout _ -> m.Metrics.send_timeouts <- m.Metrics.send_timeouts + 1
  | O_overflow _ -> m.Metrics.send_overflows <- m.Metrics.send_overflows + 1
  | O_denied _ -> m.Metrics.sends_denied <- m.Metrics.sends_denied + 1
  | O_limited _ -> m.Metrics.sends_limited <- m.Metrics.sends_limited + 1

(* Wait for the reply to [serial] against [deadline] on the dispatcher
   clock.  Polls pump the sender and the target so evaluation makes
   progress; between polls we back off exponentially.  An overflow reply
   triggers a jittered-backoff repost when [retry] is set, bounded by the
   same overall deadline. *)
let wait_reply app ~target ~comm ~serial ~deadline ~timeout_ms ~retry script
    =
  let disp = app.Core.disp in
  let m = app.Core.metrics in
  let rec wait backoff =
    pump app comm;
    match take_reply app serial with
    | Some ("0", value, _) -> O_ok value
    | Some ("1", value, _) -> O_error value
    | Some ("3", value, _) -> O_denied value
    | Some ("4", value, _) -> O_limited value
    | Some (_, value, _) ->
      if retry && Dispatch.now_ms disp < deadline then begin
        m.Metrics.send_retries <- m.Metrics.send_retries + 1;
        Dispatch.sleep_ms disp (backoff + jitter app backoff);
        match post app ~target_comm:comm ~serial ~mode:"call" script with
        | () -> wait (min (backoff * 2) max_backoff_ms)
        | exception Xerror.X_error e ->
          Server.note_absorbed app.Core.server e;
          O_died (died_msg target)
      end
      else O_overflow value
    | None ->
      if not (peer_alive app comm) then O_died (died_msg target)
      else if Dispatch.now_ms disp >= deadline then
        O_timeout (timeout_msg target timeout_ms)
      else begin
        Dispatch.sleep_ms disp backoff;
        wait (min (backoff * 2) max_backoff_ms)
      end
  in
  wait 1

(* Post to a possibly-stale registry entry.  The fast lookup does not
   ping entries, so the target may have crashed since it registered: the
   post then raises, and we re-read the (ghost-collecting) registry once
   and retry a fresh entry before giving up. *)
type posted =
  | P_posted of Xid.t  (** the comm window actually posted to *)
  | P_died  (** registered but unreachable (fresh retry included) *)
  | P_unknown  (** never registered *)

let post_with_retry app ~target ~serial ~mode script =
  match Core.lookup_registry_raw app target with
  | None -> P_unknown
  | Some comm -> (
    match post app ~target_comm:comm ~serial ~mode script with
    | () -> P_posted comm
    | exception Xerror.X_error e -> (
      Server.note_absorbed app.Core.server e;
      match Core.lookup_registry app target with
      | Some comm' when comm' <> comm -> (
        match post app ~target_comm:comm' ~serial ~mode script with
        | () -> P_posted comm'
        | exception Xerror.X_error e2 ->
          Server.note_absorbed app.Core.server e2;
          P_died)
      | Some _ -> P_died
      | None ->
        (* The stale entry was just garbage-collected and nothing took
           its place: the name is simply no longer registered. *)
        P_unknown))

let no_interp_msg target =
  Printf.sprintf "no registered interpreter named \"%s\"" target

let is_self app target =
  target = app.Core.app_name && app.Core.send.Core.self_fast_path

(* ------------------------------------------------------------------ *)
(* Synchronous send *)

let send_outcome ?(timeout_ms = default_timeout_ms) ?(retry = false) app
    ~target script =
  let m = app.Core.metrics in
  m.Metrics.sends <- m.Metrics.sends + 1;
  let o =
    if is_self app target then begin
      m.Metrics.sends_self <- m.Metrics.sends_self + 1;
      let _, value, _, cls = eval_remote app script in
      outcome_of_local app (value, cls)
    end
    else begin
      let serial = fresh_serial app in
      match post_with_retry app ~target ~serial ~mode:"call" script with
      | P_unknown -> O_died (no_interp_msg target)
      | P_died -> O_died (died_msg target)
      | P_posted comm ->
        let deadline = Dispatch.now_ms app.Core.disp + timeout_ms in
        wait_reply app ~target ~comm ~serial ~deadline ~timeout_ms ~retry
          script
    end
  in
  count_outcome app o;
  o

let send ?timeout_ms ?retry app ~target script =
  match send_outcome ?timeout_ms ?retry app ~target script with
  | O_ok v -> Ok v
  | O_error v | O_died v | O_timeout v | O_overflow v | O_denied v
  | O_limited v ->
    Error v

(* ------------------------------------------------------------------ *)
(* Asynchronous (fire-and-forget) send *)

let send_async app ~target script =
  let m = app.Core.metrics in
  m.Metrics.sends <- m.Metrics.sends + 1;
  m.Metrics.sends_async <- m.Metrics.sends_async + 1;
  if is_self app target then begin
    (* Self-sends still defer to the mailbox: async means "after I return
       to the event loop", even at home. *)
    m.Metrics.sends_self <- m.Metrics.sends_self + 1;
    enqueue_request app
      {
        Core.sq_serial = fresh_serial app;
        sq_sender = app.Core.comm_win;
        sq_mode = "async";
        sq_script = script;
      };
    Ok ()
  end
  else
    let serial = fresh_serial app in
    match post_with_retry app ~target ~serial ~mode:"async" script with
    | P_posted _ -> Ok ()
    | P_died ->
      m.Metrics.send_died <- m.Metrics.send_died + 1;
      Error (died_msg target)
    | P_unknown -> Error (no_interp_msg target)

(* ------------------------------------------------------------------ *)
(* Futures *)

let resolve_future app (ft : Core.send_future) o =
  ft.Core.ft_state <- Some (outcome_state o, outcome_value o);
  count_outcome app o;
  let m = app.Core.metrics in
  m.Metrics.futures_resolved <- m.Metrics.futures_resolved + 1

(* Advance one future if its reply is in, its peer died, or its deadline
   passed.  Returns true when the call resolved it. *)
let check_future app (ft : Core.send_future) =
  match ft.Core.ft_state with
  | Some _ -> false
  | None -> (
    match take_reply app ft.Core.ft_serial with
    | Some ("0", value, _) ->
      resolve_future app ft (O_ok value);
      true
    | Some ("1", value, _) ->
      resolve_future app ft (O_error value);
      true
    | Some ("3", value, _) ->
      resolve_future app ft (O_denied value);
      true
    | Some ("4", value, _) ->
      resolve_future app ft (O_limited value);
      true
    | Some (_, value, _) ->
      resolve_future app ft (O_overflow value);
      true
    | None ->
      if not (peer_alive app ft.Core.ft_comm) then begin
        resolve_future app ft (O_died (died_msg ft.Core.ft_target));
        true
      end
      else if Dispatch.now_ms app.Core.disp >= ft.Core.ft_deadline then begin
        resolve_future app ft
          (O_timeout (future_timeout_msg ft.Core.ft_target));
        true
      end
      else false)

let check_futures app =
  Hashtbl.fold
    (fun _ ft n -> if check_future app ft then n + 1 else n)
    app.Core.send.Core.futures 0

let pending_futures app =
  Hashtbl.fold
    (fun _ ft n -> if ft.Core.ft_state = None then n + 1 else n)
    app.Core.send.Core.futures 0

let new_future_handle app =
  let s = app.Core.send in
  s.Core.future_serial <- s.Core.future_serial + 1;
  Printf.sprintf "future#%d" s.Core.future_serial

let register_future app ~target ~comm ~serial ~deadline =
  let handle = new_future_handle app in
  let ft =
    {
      Core.ft_target = target;
      ft_comm = comm;
      ft_serial = serial;
      ft_deadline = deadline;
      ft_state = None;
    }
  in
  Hashtbl.replace app.Core.send.Core.futures handle ft;
  let m = app.Core.metrics in
  m.Metrics.futures_created <- m.Metrics.futures_created + 1;
  (handle, ft)

let send_future ?(timeout_ms = default_timeout_ms) app ~target script =
  let m = app.Core.metrics in
  m.Metrics.sends <- m.Metrics.sends + 1;
  let deadline = Dispatch.now_ms app.Core.disp + timeout_ms in
  if is_self app target then begin
    m.Metrics.sends_self <- m.Metrics.sends_self + 1;
    let handle, ft =
      register_future app ~target ~comm:app.Core.comm_win
        ~serial:(fresh_serial app) ~deadline
    in
    let _, value, _, cls = eval_remote app script in
    resolve_future app ft (outcome_of_local app (value, cls));
    Ok handle
  end
  else
    let serial = fresh_serial app in
    match post_with_retry app ~target ~serial ~mode:"call" script with
    | P_unknown -> Error (no_interp_msg target)
    | P_died ->
      (* The target existed and is gone: the future is born resolved, so
         no future is ever lost to a crash racing the post. *)
      let handle, ft =
        register_future app ~target ~comm:Xid.none ~serial ~deadline
      in
      resolve_future app ft (O_died (died_msg target));
      Ok handle
    | P_posted comm ->
      let handle, _ =
        register_future app ~target ~comm ~serial ~deadline
      in
      Ok handle

let wait_future app handle =
  match Hashtbl.find_opt app.Core.send.Core.futures handle with
  | None -> Error (Printf.sprintf "no such send future \"%s\"" handle)
  | Some ft ->
    let rec loop backoff =
      match ft.Core.ft_state with
      | Some (state, value) ->
        Hashtbl.remove app.Core.send.Core.futures handle;
        Ok (state, value)
      | None ->
        pump app ft.Core.ft_comm;
        ignore (check_future app ft);
        if ft.Core.ft_state = None then
          Dispatch.sleep_ms app.Core.disp backoff;
        loop (min (backoff * 2) max_backoff_ms)
    in
    loop 1

let future_result app handle =
  match Hashtbl.find_opt app.Core.send.Core.futures handle with
  | None -> Error (Printf.sprintf "no such send future \"%s\"" handle)
  | Some ft -> (
    ignore (check_future app ft);
    match ft.Core.ft_state with
    | None -> Ok None
    | Some (state, value) ->
      Hashtbl.remove app.Core.send.Core.futures handle;
      Ok (Some (state, value)))

(* ------------------------------------------------------------------ *)
(* Broadcast / multicast *)

(* Post to every matching peer first, then collect replies: the fan-out
   overlaps all the evaluations, and one dead or unresponsive peer costs
   its own outcome — never the whole broadcast. *)
let broadcast ?(timeout_ms = default_timeout_ms) ?pattern app script =
  let m = app.Core.metrics in
  m.Metrics.sends_broadcast <- m.Metrics.sends_broadcast + 1;
  let entries = Core.read_registry app in
  let entries =
    match pattern with
    | None -> entries
    | Some p ->
      List.filter (fun (name, _) -> Tcl.Glob.matches ~pattern:p name) entries
  in
  let pending =
    List.map
      (fun (name, comm) ->
        m.Metrics.sends <- m.Metrics.sends + 1;
        if is_self app name then begin
          m.Metrics.sends_self <- m.Metrics.sends_self + 1;
          let o =
            let _, value, _, cls = eval_remote app script in
            outcome_of_local app (value, cls)
          in
          count_outcome app o;
          (name, `Done o)
        end
        else begin
          let serial = fresh_serial app in
          match post app ~target_comm:comm ~serial ~mode:"call" script with
          | () -> (name, `Wait (comm, serial))
          | exception Xerror.X_error e ->
            Server.note_absorbed app.Core.server e;
            let o = O_died (died_msg name) in
            count_outcome app o;
            (name, `Done o)
        end)
      entries
  in
  let deadline = Dispatch.now_ms app.Core.disp + timeout_ms in
  List.map
    (fun (name, st) ->
      match st with
      | `Done o -> (name, outcome_state o, outcome_value o)
      | `Wait (comm, serial) ->
        let o =
          wait_reply app ~target:name ~comm ~serial ~deadline ~timeout_ms
            ~retry:false script
        in
        count_outcome app o;
        (name, outcome_state o, outcome_value o))
    pending

(* ------------------------------------------------------------------ *)
(* The Tcl-level [send] command *)

let usage =
  "send ?-async? ?-future? ?-retry? ?-timeout ms? ?-all? ?-glob pattern? \
   ?--? ?appName? arg ?arg ...?"

let command app : Tcl.Interp.command =
 fun _interp words ->
  let err msg = (Tcl.Interp.Tcl_error, msg) in
  match words with
  | [ _; "wait"; handle ] -> (
    match wait_future app handle with
    | Error msg -> err msg
    | Ok ("ok", value) -> Tcl.Interp.ok value
    | Ok (_, value) -> err value)
  | [ _; "result"; handle ] -> (
    match future_result app handle with
    | Error msg -> err msg
    | Ok None -> Tcl.Interp.ok "pending"
    | Ok (Some (state, value)) ->
      Tcl.Interp.ok (Tcl.Tcl_list.format [ state; value ]))
  | [ _; "guard" ] ->
    Tcl.Interp.ok
      (match app.Core.send.Core.guard_mode with
      | Core.Guard_off -> "off"
      | Core.Guard_limits -> "limits"
      | Core.Guard_safe -> "safe")
  | [ _; "guard"; mode ] -> (
    match mode with
    | "off" ->
      app.Core.send.Core.guard_mode <- Core.Guard_off;
      Tcl.Interp.ok ""
    | "limits" | "on" ->
      app.Core.send.Core.guard_mode <- Core.Guard_limits;
      Tcl.Interp.ok ""
    | "safe" ->
      app.Core.send.Core.guard_mode <- Core.Guard_safe;
      Tcl.Interp.ok ""
    | _ ->
      err
        (Printf.sprintf "bad guard mode \"%s\": should be off, limits, or safe"
           mode))
  | [ _; "limit"; kind ] -> (
    match kind with
    | "time" -> Tcl.Interp.ok (string_of_int app.Core.send.Core.guard_time_ms)
    | "commands" -> Tcl.Interp.ok (string_of_int app.Core.send.Core.guard_cmds)
    | _ ->
      err (Printf.sprintf "bad limit type \"%s\": should be time or commands" kind))
  | [ _; "limit"; kind; n ] -> (
    match (kind, int_of_string_opt n) with
    | "time", Some v when v >= 0 ->
      app.Core.send.Core.guard_time_ms <- v;
      Tcl.Interp.ok ""
    | "commands", Some v when v >= 0 ->
      app.Core.send.Core.guard_cmds <- v;
      Tcl.Interp.ok ""
    | ("time" | "commands"), _ ->
      err (Printf.sprintf "expected non-negative integer but got \"%s\"" n)
    | _ ->
      err (Printf.sprintf "bad limit type \"%s\": should be time or commands" kind))
  | [ _; "mailbox" ] ->
    Tcl.Interp.ok (string_of_int app.Core.send.Core.mailbox_limit)
  | [ _; "mailbox"; limit ] -> (
    match int_of_string_opt limit with
    | Some n when n > 0 ->
      app.Core.send.Core.mailbox_limit <- n;
      Tcl.Interp.ok ""
    | Some _ | None ->
      err (Printf.sprintf "expected positive integer but got \"%s\"" limit))
  | _ :: rest -> (
    let async = ref false in
    let future = ref false in
    let retry = ref false in
    let all = ref false in
    let glob = ref None in
    let timeout_ms = ref None in
    (* Consume option flags until the first non-option word (or [--],
       which lets an application name start with a dash). *)
    let rec opts = function
      | "-async" :: tl ->
        async := true;
        opts tl
      | "-future" :: tl ->
        future := true;
        opts tl
      | "-retry" :: tl ->
        retry := true;
        opts tl
      | "-all" :: tl ->
        all := true;
        opts tl
      | "-glob" :: pat :: tl ->
        glob := Some pat;
        opts tl
      | "-timeout" :: ms :: tl -> (
        match int_of_string_opt ms with
        | Some n when n > 0 ->
          timeout_ms := Some n;
          opts tl
        | Some _ | None ->
          Error (Printf.sprintf "bad -timeout value \"%s\"" ms))
      | [ ("-glob" | "-timeout") ] -> Error usage
      | "--" :: tl -> Ok tl
      | (s :: _) as tl when String.length s > 1 && s.[0] = '-' ->
        ignore tl;
        Error
          (Printf.sprintf
             "bad option \"%s\": must be -async, -future, -retry, \
              -timeout, -all, -glob or --"
             s)
      | tl -> Ok tl
    in
    match opts rest with
    | Error msg -> err msg
    | Ok rest ->
      if !all || !glob <> None then begin
        match rest with
        | [] -> Tcl.Interp.wrong_args usage
        | script_words ->
          if !async || !future then
            err "-all/-glob cannot be combined with -async or -future"
          else
            let script = String.concat " " script_words in
            let results =
              broadcast ?timeout_ms:!timeout_ms ?pattern:!glob app script
            in
            Tcl.Interp.ok
              (Tcl.Tcl_list.format
                 (List.map
                    (fun (name, state, value) ->
                      Tcl.Tcl_list.format [ name; state; value ])
                    results))
      end
      else (
        match rest with
        | target :: (_ :: _ as script_words) -> (
          let script = String.concat " " script_words in
          if !async && !future then
            err "-async and -future are mutually exclusive"
          else if !async then (
            match send_async app ~target script with
            | Ok () -> Tcl.Interp.ok ""
            | Error msg -> err msg)
          else if !future then (
            match send_future ?timeout_ms:!timeout_ms app ~target script with
            | Ok handle -> Tcl.Interp.ok handle
            | Error msg -> err msg)
          else (
            match
              send ?timeout_ms:!timeout_ms ~retry:!retry app ~target script
            with
            | Ok value -> Tcl.Interp.ok value
            | Error msg -> err msg))
        | _ -> Tcl.Interp.wrong_args usage))
  | [] -> Tcl.Interp.wrong_args usage

let install app =
  app.Core.pre_handlers <- pre_handler :: app.Core.pre_handlers;
  app.Core.drain_hooks <-
    (fun () -> drain_mailbox app + check_futures app)
    :: app.Core.drain_hooks;
  Tcl.Interp.register app.Core.interp "send" (command app)
