open Xsim

let script_property = "TK_SEND_SCRIPT"
let result_property_prefix = "TK_SEND_RESULT_"

let interps app = List.map fst (Core.read_registry app)

(* Handle one incoming send request: read and delete the script property,
   evaluate, write the result property on the sender's window. *)
let handle_incoming app =
  (* The sender may die between posting the script and our reply: writing
     the result property then raises BadWindow, which we absorb (there is
     nobody left to answer). *)
  Core.absorb app ~default:() @@ fun () ->
  let prop = Server.intern_atom app.Core.conn script_property in
  match Server.get_property app.Core.conn app.Core.comm_win ~prop with
  | None -> ()
  | Some p -> (
    Server.delete_property app.Core.conn app.Core.comm_win ~prop;
    match Tcl.Tcl_list.parse p.Window.prop_data with
    | Ok [ serial; sender; script ] -> (
      match int_of_string_opt sender with
      | None -> ()
      | Some sender_win ->
        (* Remote scripts execute at global scope, whatever the receiving
           application happened to be doing. *)
        let status, value =
          Tcl.Interp.with_level app.Core.interp 0 (fun () ->
              Tcl.Interp.eval app.Core.interp script)
        in
        let code =
          match status with Tcl.Interp.Tcl_error -> "1" | _ -> "0"
        in
        let result_prop =
          Server.intern_atom app.Core.conn (result_property_prefix ^ serial)
        in
        Server.change_property app.Core.conn sender_win ~prop:result_prop
          ~ptype:Atom.string
          (Tcl.Tcl_list.format [ code; value ]))
    | Ok _ | Error _ -> ())

let pre_handler app (d : Event.delivery) =
  if d.Event.window <> app.Core.comm_win then false
  else
    match d.Event.event with
    | Event.Property_notify { prop_deleted = false; prop_atom } ->
      (match Server.atom_name app.Core.conn prop_atom with
      | Some name when name = script_property -> handle_incoming app
      | Some _ | None -> ());
      true
    | Event.Property_notify { prop_deleted = true; _ } -> true
    | _ -> false

let default_timeout_ms = 5000
let max_backoff_ms = 64

let rec send ?timeout_ms app ~target script =
  let registry = Core.read_registry app in
  match List.assoc_opt target registry with
  | None ->
    Error (Printf.sprintf "no registered interpreter named \"%s\"" target)
  | Some target_comm -> (
    try
      send_to ?timeout_ms app ~target ~target_comm script
    with Xerror.X_error e ->
      (* The registry entry went stale under us: the peer's communication
         window is gone. Report a Tcl-level error, not an exception. *)
      Server.note_absorbed app.Core.server e;
      Error
        (Printf.sprintf "target application \"%s\" died (%s)" target
           (Xerror.code_name e.Xerror.code)))

and send_to ?(timeout_ms = default_timeout_ms) app ~target ~target_comm script
    =
  app.Core.send_serial <- app.Core.send_serial + 1;
  let serial = string_of_int app.Core.send_serial in
  let script_prop = Server.intern_atom app.Core.conn script_property in
  let result_prop =
    Server.intern_atom app.Core.conn (result_property_prefix ^ serial)
  in
  Server.change_property app.Core.conn target_comm ~prop:script_prop
    ~ptype:Atom.string
    (Tcl.Tcl_list.format [ serial; string_of_int app.Core.comm_win; script ]);
  (* Wait for the answer against a deadline on the dispatcher clock,
     processing events so that nested sends (the target sending back to us
     while we wait) keep working. Between polls we back off exponentially
     and ping the target's communication window, so a peer that died
     mid-request is reported as dead immediately — distinct from a peer
     that is alive but not answering, which runs out the deadline. *)
  let disp = app.Core.disp in
  let deadline = Dispatch.now_ms disp + timeout_ms in
  let peer_alive () =
    Core.absorb app ~default:true @@ fun () ->
    Server.window_exists app.Core.conn target_comm
  in
  let poll () =
    Core.update_all app.Core.server;
    match
      Server.get_property app.Core.conn app.Core.comm_win ~prop:result_prop
    with
    | Some p ->
      Server.delete_property app.Core.conn app.Core.comm_win
        ~prop:result_prop;
      Some p.Window.prop_data
    | None -> None
  in
  let rec wait backoff =
    match poll () with
    | Some data -> `Answered data
    | None ->
      if not (peer_alive ()) then `Died
      else if Dispatch.now_ms disp >= deadline then `Timed_out
      else begin
        Dispatch.sleep_ms disp backoff;
        wait (min (backoff * 2) max_backoff_ms)
      end
  in
  match wait 1 with
  | `Died -> Error (Printf.sprintf "target application \"%s\" died" target)
  | `Timed_out ->
    Error
      (Printf.sprintf
         "send to application \"%s\" timed out after %d ms (interpreter is \
          alive but unresponsive)"
         target timeout_ms)
  | `Answered data -> (
    match Tcl.Tcl_list.parse data with
    | Ok [ "0"; value ] -> Ok value
    | Ok [ _; value ] -> Error value
    | Ok _ | Error _ -> Error "malformed send reply")

let command app : Tcl.Interp.command =
 fun _interp words ->
  match words with
  | _ :: target :: (_ :: _ as script_words) -> (
    let script = String.concat " " script_words in
    match send app ~target script with
    | Ok value -> Tcl.Interp.ok value
    | Error msg -> (Tcl.Interp.Tcl_error, msg))
  | _ -> Tcl.Interp.wrong_args "send appName arg ?arg ...?"

let install app =
  app.Core.pre_handlers <- pre_handler :: app.Core.pre_handlers;
  Tcl.Interp.register app.Core.interp "send" (command app)
