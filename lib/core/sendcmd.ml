open Xsim

let script_property = "TK_SEND_SCRIPT"
let result_property_prefix = "TK_SEND_RESULT_"

let interps app = List.map fst (Core.read_registry app)

(* Handle one incoming send request: read and delete the script property,
   evaluate, write the result property on the sender's window. *)
let handle_incoming app =
  (* The sender may die between posting the script and our reply: writing
     the result property then raises BadWindow, which we absorb (there is
     nobody left to answer). *)
  Core.absorb app ~default:() @@ fun () ->
  let prop = Server.intern_atom app.Core.conn script_property in
  match Server.get_property app.Core.conn app.Core.comm_win ~prop with
  | None -> ()
  | Some p -> (
    Server.delete_property app.Core.conn app.Core.comm_win ~prop;
    match Tcl.Tcl_list.parse p.Window.prop_data with
    | Ok [ serial; sender; script ] -> (
      match int_of_string_opt sender with
      | None -> ()
      | Some sender_win ->
        (* Remote scripts execute at global scope, whatever the receiving
           application happened to be doing. *)
        let status, value =
          Tcl.Interp.with_level app.Core.interp 0 (fun () ->
              Tcl.Interp.eval app.Core.interp script)
        in
        let code =
          match status with Tcl.Interp.Tcl_error -> "1" | _ -> "0"
        in
        let result_prop =
          Server.intern_atom app.Core.conn (result_property_prefix ^ serial)
        in
        Server.change_property app.Core.conn sender_win ~prop:result_prop
          ~ptype:Atom.string
          (Tcl.Tcl_list.format [ code; value ]))
    | Ok _ | Error _ -> ())

let pre_handler app (d : Event.delivery) =
  if d.Event.window <> app.Core.comm_win then false
  else
    match d.Event.event with
    | Event.Property_notify { prop_deleted = false; prop_atom } ->
      (match Server.atom_name app.Core.conn prop_atom with
      | Some name when name = script_property -> handle_incoming app
      | Some _ | None -> ());
      true
    | Event.Property_notify { prop_deleted = true; _ } -> true
    | _ -> false

let rec send app ~target script =
  let registry = Core.read_registry app in
  match List.assoc_opt target registry with
  | None ->
    Error (Printf.sprintf "no registered interpreter named \"%s\"" target)
  | Some target_comm -> (
    try
      send_to app ~target ~target_comm script
    with Xerror.X_error e ->
      (* The registry entry was stale: the peer's communication window is
         gone. Report a Tcl-level error, not an exception. *)
      Server.note_absorbed app.Core.server e;
      Error
        (Printf.sprintf "target application \"%s\" died (%s)" target
           (Xerror.code_name e.Xerror.code)))

and send_to app ~target ~target_comm script =
    app.Core.send_serial <- app.Core.send_serial + 1;
    let serial = string_of_int app.Core.send_serial in
    let script_prop = Server.intern_atom app.Core.conn script_property in
    let result_prop =
      Server.intern_atom app.Core.conn (result_property_prefix ^ serial)
    in
    Server.change_property app.Core.conn target_comm ~prop:script_prop
      ~ptype:Atom.string
      (Tcl.Tcl_list.format
         [ serial; string_of_int app.Core.comm_win; script ]);
    (* Wait for the answer, processing events so that nested sends (the
       target sending back to us while we wait) keep working. *)
    let rec wait tries =
      Core.update_all app.Core.server;
      match
        Server.get_property app.Core.conn app.Core.comm_win ~prop:result_prop
      with
      | Some p ->
        Server.delete_property app.Core.conn app.Core.comm_win
          ~prop:result_prop;
        Some p.Window.prop_data
      | None -> if tries > 0 then wait (tries - 1) else None
    in
    (match wait 100 with
    | None ->
      Error
        (Printf.sprintf "target application \"%s\" died or timed out" target)
    | Some data -> (
      match Tcl.Tcl_list.parse data with
      | Ok [ "0"; value ] -> Ok value
      | Ok [ _; value ] -> Error value
      | Ok _ | Error _ -> Error "malformed send reply"))

let command app : Tcl.Interp.command =
 fun _interp words ->
  match words with
  | _ :: target :: (_ :: _ as script_words) -> (
    let script = String.concat " " script_words in
    match send app ~target script with
    | Ok value -> Tcl.Interp.ok value
    | Error msg -> (Tcl.Interp.Tcl_error, msg))
  | _ -> Tcl.Interp.wrong_args "send appName arg ?arg ...?"

let install app =
  app.Core.pre_handlers <- pre_handler :: app.Core.pre_handlers;
  Tcl.Interp.register app.Core.interp "send" (command app)
