(** Non-X event sources of the Tk dispatcher (paper §3.2): timer events,
    when-idle events and file events. X events live in the server's
    per-connection queues; the application's [update]/[mainloop] drains
    both.

    The clock is pluggable so tests can run timers deterministically. *)

type t

type timer_id = int

(** Dispatcher activity counters (cumulative since creation or the last
    {!reset_counters}). Sweep latency is measured on the pluggable clock,
    so virtual-clock tests see deterministic values; sweeps that ran no
    callbacks are not counted. *)
type counters = {
  timers_fired : int;
  idles_run : int;
  sweeps : int;  (** timer/idle sweeps that ran at least one callback *)
  sweep_ms_total : float;
  sweep_ms_last : float;
}

val create : ?clock:(unit -> float) -> unit -> t
(** [clock] returns seconds (default: wall clock). *)

val set_clock : t -> (unit -> float) -> unit

val set_sleep : t -> (int -> unit) -> unit
(** Replace how deadline-based waits pass time between polls (argument in
    milliseconds; default: [Unix.select] on nothing). Paired with
    {!set_clock}, a test can make blocking waits fully deterministic. *)

val sleep_ms : t -> int -> unit
(** Pass [ms] milliseconds according to the installed sleeper. [send] and
    [selection get] call this between polls (exponential backoff) instead
    of spinning on a retry counter. *)

val use_virtual_clock : t -> (int -> unit)
(** Install a deterministic virtual clock starting at 0: {!now_ms} reads
    it and {!sleep_ms} advances it. The returned function advances the
    clock by a number of milliseconds directly (for driving timers). *)

val set_on_error : t -> (exn -> unit) -> unit
(** Exceptions escaping a timer, idle or file callback are passed to this
    handler instead of unwinding the event loop (default: re-raise). The
    application installs a handler that reports background errors to the
    script level and keeps dispatching. *)

val now_ms : t -> int

val clock_seconds : t -> float
(** The pluggable clock's current reading, in seconds (full precision;
    {!now_ms} rounds to milliseconds). The interpreter's [time] command
    reads this so measurements agree with [after] under a virtual
    clock. *)

val after : t -> ms:int -> (unit -> unit) -> timer_id
(** Schedule a one-shot timer. *)

val cancel : t -> timer_id -> bool

val when_idle : t -> (unit -> unit) -> unit
(** Run when all other pending events have been processed. A callback
    scheduled from inside an idle callback runs in the next idle sweep,
    not the current one. *)

val add_file_handler : t -> Unix.file_descr -> (unit -> unit) -> unit
(** Invoke the callback when the descriptor becomes readable (checked by
    {!poll_files}). *)

val remove_file_handler : t -> Unix.file_descr -> unit

val run_due_timers : t -> int
(** Fire every timer whose deadline has passed; returns how many fired. *)

val run_idle : t -> int
(** Run the currently queued idle callbacks; returns how many ran. *)

val poll_files : t -> timeout:float -> int
(** Select on registered descriptors for at most [timeout] seconds,
    invoking handlers for the readable ones; returns how many fired.
    With no registered descriptors the call still passes [timeout]
    through the pluggable sleep (deterministic under the virtual clock)
    rather than returning immediately. *)

val next_deadline_ms : t -> int option
(** Milliseconds until the earliest timer, if any — rounded {e up}, so a
    pending timer never reports 0 before it is actually due (0 only when
    overdue). *)

val has_work : t -> bool
(** Are there timers or idle callbacks outstanding? *)

val counters : t -> counters

val reset_counters : t -> unit
