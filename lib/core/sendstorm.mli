(** Deterministic fleet-scale crash-storm harness for the send fabric.

    One {!run} builds a fleet of applications on a fresh simulated
    display, puts every dispatcher on one shared virtual clock, arms
    seeded crash plans on a subset of connections ({!config.crash_percent}),
    makes a subset deaf ({!config.hang_percent} — alive but never
    answering, the timeout case, distinct from died), then drives a
    seeded mix of synchronous, retrying, asynchronous, future and
    broadcast sends through the fleet and tallies how every send
    resolved.

    Everything random is drawn from one seeded linear-congruential
    stream and all timing runs on the virtual clock, so a config
    reproduces exactly: same crash points, same outcomes, same
    [tk.send.*] counters, run after run ({!counters_equal} is the
    acceptance check the tests and the bench both use). *)

type config = {
  apps : int;
  crash_percent : int;  (** % of apps armed with a crash plan *)
  hang_percent : int;  (** % of apps made deaf (alive, never answering) *)
  hostile_percent : int;
      (** % of apps sending runaway ([while 1]) and forbidden ([exit])
          scripts instead of the benign mix; requires [guarded] *)
  sends_per_app : int;  (** storm rounds: one send per live app per round *)
  mailbox_limit : int;  (** receiver backpressure bound *)
  timeout_ms : int;  (** per-send deadline on the virtual clock *)
  guarded : bool;
      (** arm send guards fleet-wide: even apps evaluate incoming
          scripts under limits on their main interpreter
          ([Core.Guard_limits]), odd apps in a [-safe] slave
          ([Core.Guard_safe]) *)
  guard_time_ms : int;  (** per-request time limit when guarded (0 = none) *)
  guard_cmds : int;
      (** per-request command budget when guarded (0 = none) *)
  seed : int;
}

val default : config
(** 50 apps, 2% crash plan, 2% hung, 3 rounds, mailbox 16, 200 ms — the
    CI smoke configuration. *)

type report = {
  cfg : config;
  outcomes : (string * int) list;
      (** terminal state -> count, sorted; states are [ok]/[error]/
          [died]/[timeout]/[overflow]/[denied]/[limited] plus
          [sender-crashed] (the sender's own crash plan fired mid-send).
          [lost] never appears: that would be a future that vanished
          unresolved. *)
  sends_issued : int;  (** aggregated [tk.send.sends] *)
  skipped_dead_senders : int;
  unresolved_futures : int;  (** must be 0 after the resolution phase *)
  crashes_planned : int;
  crashes_landed : int;
  hung : int;
  counters : (string * int) list;
      (** aggregated [tk.send.*] and [tcl.limit.*], sorted *)
  requests_total : int;  (** X requests issued by the whole storm *)
  requests_per_send : float;
  latencies_ms : int array;  (** virtual ms per awaited send, sorted *)
}

val run : config -> report

val percentile : int array -> float -> float
(** [percentile sorted p] with [p] in [0..100] (e.g. 50.0, 99.0). *)

val counters_equal : report -> report -> bool
(** Same aggregated counters and outcome tallies — the determinism
    acceptance check. *)
