(** The [send] command (paper §6): remote procedure call between Tk
    applications on the same display.

    Every application registers its name and a hidden communication window
    in a root-window property. [send name script] looks the target up in
    the registry, writes the script into a property on the target's
    communication window, and waits (processing events, so incoming sends
    keep working re-entrantly) for the result property to come back. Errors
    in the remote script propagate to the sender, exactly like a local
    command. *)

val install : Core.app -> unit
(** Register the [send] Tcl command and the incoming-send interceptor. *)

val send :
  ?timeout_ms:int ->
  Core.app ->
  target:string ->
  string ->
  (string, string) result
(** Execute a script in the named application; [Ok result] or
    [Error message]. Failure modes are distinct: an unknown application
    ("no registered interpreter"), a peer that died mid-request (the
    liveness ping found its communication window gone: "died"), and a
    peer that is alive but unresponsive ("timed out" after [timeout_ms],
    default 5000, measured on the sender's {!Dispatch} clock — plug a
    virtual clock in for deterministic tests). *)

val default_timeout_ms : int

val interps : Core.app -> string list
(** Names of all registered applications ([winfo interps]). *)
