(** The [send] fabric (paper §6): remote procedure call between Tk
    applications on the same display, built to stay correct and O(1) per
    operation with a thousand registered interpreters on the display.

    Every application registers its name and a hidden communication
    window in a sharded root-window registry ({!Core.lookup_registry}).
    A send appends a request record to a property on the target's
    communication window ([PropModeAppend], so bursts queue losslessly);
    the target's event loop parks incoming requests in a bounded
    {e mailbox} and evaluates them when it next drains — never
    re-entrantly in the middle of another event handler. Replies come
    back through a per-serial result property.

    Incoming scripts can evaluate under a {e guard}
    ({!Core.send_state.guard_mode}): [Guard_limits] arms the configured
    time/command limits on the main interpreter around each request;
    [Guard_safe] evaluates in a lazily created [-safe] slave named
    ["send"] (hidden [exit]/[exec]-alikes/[interp]/test hooks) with the
    same limits. Either way a hostile or runaway peer script is cut
    short at the next dispatch boundary and the sender gets a distinct
    reply — the target's event loop never wedges.

    Failure taxonomy (disjoint, and each send resolves to exactly one):
    - [ok] / [error]: the remote script ran (and possibly raised);
    - [died]: the target's communication window or connection is gone;
    - [timeout]: the target is alive but unresponsive past the deadline;
    - [overflow]: the target's mailbox was full and refused the request
      before evaluation;
    - [denied]: the script reached a hidden command in the target's
      guard context;
    - [limited]: the target's resource limits cut the script short.

    Tcl surface: [send ?-async? ?-future? ?-retry? ?-timeout ms? ?-all?
    ?-glob pattern? ?--? appName arg ?arg ...?], plus the subcommands
    [send wait handle], [send result handle], [send mailbox ?limit?],
    [send guard ?off|limits|safe?] and
    [send limit time|commands ?n?]. *)

val install : Core.app -> unit
(** Register the [send] Tcl command, the incoming-request interceptor and
    the mailbox/future drain hook. *)

(** One send's terminal state (the failure taxonomy above). *)
type outcome =
  | O_ok of string
  | O_error of string
  | O_died of string
  | O_timeout of string
  | O_overflow of string
  | O_denied of string
  | O_limited of string

val outcome_state : outcome -> string
(** ["ok"], ["error"], ["died"], ["timeout"], ["overflow"], ["denied"]
    or ["limited"]. *)

val outcome_value : outcome -> string
(** The result value (ok/error) or the diagnostic message. *)

val send_outcome :
  ?timeout_ms:int ->
  ?retry:bool ->
  Core.app ->
  target:string ->
  string ->
  outcome
(** {!send}, but with the terminal state made explicit — what the
    crash-storm harness tallies. *)

val send :
  ?timeout_ms:int ->
  ?retry:bool ->
  Core.app ->
  target:string ->
  string ->
  (string, string) result
(** Execute a script in the named application; [Ok result] or
    [Error message]. [timeout_ms] (default 5000) is measured on the
    sender's {!Dispatch} clock — plug a virtual clock in for
    deterministic tests. With [retry] (default false), an overflow reply
    triggers deterministic jittered-backoff reposts until the same
    overall deadline; without it, overflow is reported immediately.
    Self-sends take an in-process fast path (differentially identical to
    the wire path) unless disabled via
    [app.send.self_fast_path <- false]. *)

val send_async : Core.app -> target:string -> string -> (unit, string) result
(** Fire-and-forget: post the script and return without waiting. The
    target evaluates it from its mailbox; no result or error comes back
    (a full mailbox silently drops it, counted in
    [tk.send.mailbox_rejected]). [Error] only for an unknown or
    already-dead target. *)

val send_future :
  ?timeout_ms:int ->
  Core.app ->
  target:string ->
  string ->
  (string, string) result
(** Post the script and return a future handle ("future#N") immediately.
    The future resolves on the sender's event loop (any [update] sweep)
    to one of ok/error/died/timeout/overflow; no future is ever lost —
    even a target that dies racing the post yields a resolved-died
    future. Resolve with {!wait_future} / {!future_result} (or the
    [send wait] / [send result] Tcl subcommands). *)

val wait_future : Core.app -> string -> (string * string, string) result
(** Block (pumping the sender and target) until the future resolves;
    [Ok (state, value)] consumes the handle. [Error] for an unknown
    handle. *)

val future_result :
  Core.app -> string -> ((string * string) option, string) result
(** Non-blocking poll: [Ok None] while pending, [Ok (Some (state,
    value))] (consuming the handle) once resolved. *)

val pending_futures : Core.app -> int
(** Outstanding (unresolved) futures — the crash-storm harness asserts
    this returns to zero. *)

val broadcast :
  ?timeout_ms:int ->
  ?pattern:string ->
  Core.app ->
  string ->
  (string * string * string) list
(** Multicast: evaluate the script in every registered application (or
    those matching the glob [pattern]), posting to all targets first and
    then collecting replies under one shared deadline. Returns
    [(name, state, value)] per target, sorted by name; one dead or
    unresponsive peer costs its own entry, never the whole broadcast. *)

val default_timeout_ms : int

val interps : Core.app -> string list
(** Names of all registered applications ([winfo interps]). *)
