open Xsim

let failf = Tcl.Interp.failf

let result_property = "TK_SELECTION_RESULT"

(* Answer a SelectionRequest using the registered handler. *)
let answer app (r : Event.selection_request) =
  let data =
    match (app.Core.sel.Core.sel_provider, app.Core.sel.Core.sel_tcl_handler) with
    | Some provider, _ -> ( try Some (provider ()) with _ -> None)
    | None, Some script -> (
      (* Tk appends the byte range to the handler script; handlers run at
         global scope. *)
      match
        Tcl.Interp.with_level app.Core.interp 0 (fun () ->
            Tcl.Interp.eval app.Core.interp (script ^ " 0 1000000"))
      with
      | Tcl.Interp.Tcl_ok, v -> Some v
      | _ -> None)
    | None, None -> None
  in
  match data with
  | Some data ->
    Server.send_selection_notify app.Core.conn ~requestor:r.Event.sr_requestor
      ~selection:r.Event.sr_selection ~target:r.Event.sr_target
      ~property:(Some r.Event.sr_property) ~data:(Some data)
  | None ->
    Server.send_selection_notify app.Core.conn ~requestor:r.Event.sr_requestor
      ~selection:r.Event.sr_selection ~target:r.Event.sr_target
      ~property:None ~data:None

let own w ~provider =
  let app = w.Core.app in
  app.Core.sel.Core.sel_owner_path <- Some w.Core.path;
  app.Core.sel.Core.sel_provider <- Some provider;
  app.Core.sel.Core.sel_tcl_handler <- None;
  Server.set_selection_owner app.Core.conn ~selection:Atom.primary w.Core.win

let own_with_script w ~script =
  let app = w.Core.app in
  app.Core.sel.Core.sel_owner_path <- Some w.Core.path;
  app.Core.sel.Core.sel_provider <- None;
  app.Core.sel.Core.sel_tcl_handler <- Some script;
  Server.set_selection_owner app.Core.conn ~selection:Atom.primary w.Core.win

let disown app =
  app.Core.sel.Core.sel_owner_path <- None;
  app.Core.sel.Core.sel_provider <- None;
  app.Core.sel.Core.sel_tcl_handler <- None;
  Server.set_selection_owner app.Core.conn ~selection:Atom.primary Xid.none

let owner_path app = app.Core.sel.Core.sel_owner_path

let default_timeout_ms = 2000

let get ?(timeout_ms = default_timeout_ms) app =
  let prop = Server.intern_atom app.Core.conn result_property in
  let owner =
    Core.absorb app ~default:Xid.none @@ fun () ->
    Server.get_selection_owner app.Core.conn ~selection:Atom.primary
  in
  app.Core.sel.Core.sel_pending <- Some None;
  Server.convert_selection app.Core.conn ~selection:Atom.primary
    ~target:Atom.string ~property:prop ~requestor:app.Core.comm_win;
  (* Pump every local application so the owner (possibly another app on
     this display) can answer; in real X this is the sender blocking in
     its event loop. The wait is bounded by a deadline on the dispatcher
     clock, and an owner whose window vanished mid-conversion (it
     crashed) is detected without waiting the deadline out. *)
  let disp = app.Core.disp in
  let deadline = Dispatch.now_ms disp + timeout_ms in
  let owner_gone () =
    owner <> Xid.none
    && not
         (Core.absorb app ~default:true @@ fun () ->
          Server.window_exists app.Core.conn owner)
  in
  let rec wait backoff =
    Core.update_all app.Core.server;
    match app.Core.sel.Core.sel_pending with
    | Some (Some _) | None -> `Settled
    | Some None ->
      if owner_gone () then `Owner_died
      else if Dispatch.now_ms disp >= deadline then `Timed_out
      else begin
        Dispatch.sleep_ms disp backoff;
        wait (min (backoff * 2) 64)
      end
  in
  let outcome = wait 1 in
  let pending = app.Core.sel.Core.sel_pending in
  app.Core.sel.Core.sel_pending <- None;
  match (outcome, pending) with
  | _, Some (Some data) -> data
  | (`Owner_died | `Timed_out), _ ->
    (* The owner crashed or hung mid-conversion. Clear the dangling
       ownership server-side so later requests fail fast instead of
       repeating the timeout. *)
    (Core.absorb app ~default:() @@ fun () ->
     if
       Server.get_selection_owner app.Core.conn ~selection:Atom.primary
       = owner
     then
       Server.set_selection_owner app.Core.conn ~selection:Atom.primary
         Xid.none);
    if outcome = `Owner_died then
      failf "selection owner died during PRIMARY conversion"
    else
      failf
        "selection owner is not responding (PRIMARY conversion timed out \
         after %d ms)"
        timeout_ms
  | `Settled, _ ->
    failf "PRIMARY selection doesn't exist or form \"STRING\" not defined"

(* Event interceptor: selection requests for windows we own, clears, and
   the notify that completes our own [get]. *)
let pre_handler app (d : Event.delivery) =
  match d.Event.event with
  | Event.Selection_request r ->
    answer app r;
    true
  | Event.Selection_clear { selection } when selection = Atom.primary ->
    (* Forward to the widget whose window lost the selection so it can
       un-highlight. The app-level owner state is cleared only if that
       widget is still the recorded owner (it may have been superseded by
       a newer claim within this application already). *)
    (match Hashtbl.find_opt app.Core.by_xid d.Event.window with
    | Some w when not w.Core.destroyed ->
      w.Core.wclass.Core.handle_event w d.Event.event;
      if app.Core.sel.Core.sel_owner_path = Some w.Core.path then begin
        app.Core.sel.Core.sel_owner_path <- None;
        app.Core.sel.Core.sel_provider <- None;
        app.Core.sel.Core.sel_tcl_handler <- None
      end
    | Some _ | None -> ());
    true
  | Event.Selection_notify n when d.Event.window = app.Core.comm_win ->
    (match n.Event.sn_property with
    | None -> app.Core.sel.Core.sel_pending <- Some None
    | Some prop -> (
      match Server.get_property app.Core.conn app.Core.comm_win ~prop with
      | Some p ->
        Server.delete_property app.Core.conn app.Core.comm_win ~prop;
        app.Core.sel.Core.sel_pending <- Some (Some p.Window.prop_data)
      | None -> app.Core.sel.Core.sel_pending <- Some None));
    (* A refused conversion must not leave [get] waiting forever. *)
    (match (n.Event.sn_property, app.Core.sel.Core.sel_pending) with
    | None, Some None -> app.Core.sel.Core.sel_pending <- None
    | _ -> ());
    true
  | _ -> false

(* Tcl-level handler scripts registered with [selection handle], waiting
   for the window to claim ownership. *)
type state = { sapp : Core.app; handlers : (string, string) Hashtbl.t }

let states : state list ref = ref []

let cleanup_registered = ref false

let state_for app =
  if not !cleanup_registered then begin
    cleanup_registered := true;
    Core.add_destroy_hook (fun dead ->
        states := List.filter (fun s -> s.sapp != dead) !states)
  end;
  match List.find_opt (fun s -> s.sapp == app) !states with
  | Some s -> s
  | None ->
    let s = { sapp = app; handlers = Hashtbl.create 8 } in
    states := s :: !states;
    s

let command app : Tcl.Interp.command =
 fun _interp words ->
  let ok = Tcl.Interp.ok in
  let state = state_for app in
  match words with
  | [ _; "get" ] -> ok (get app)
  | [ _; "clear" ] ->
    disown app;
    ok ""
  | [ _; "own" ] -> ok (Option.value (owner_path app) ~default:"")
  | [ _; "own"; path ] ->
    let w = Core.lookup_exn app path in
    (match Hashtbl.find_opt state.handlers path with
    | Some script -> own_with_script w ~script
    | None -> own w ~provider:(fun () -> ""));
    ok ""
  | [ _; "handle"; path; script ] ->
    ignore (Core.lookup_exn app path);
    Hashtbl.replace state.handlers path script;
    (* If this window already owns the selection, switch its handler. *)
    if owner_path app = Some path then
      app.Core.sel.Core.sel_tcl_handler <- Some script;
    ok ""
  | _ -> Tcl.Interp.wrong_args "selection option ?arg arg ...?"

let install app =
  app.Core.pre_handlers <- pre_handler :: app.Core.pre_handlers;
  Tcl.Interp.register app.Core.interp "selection" (command app)
