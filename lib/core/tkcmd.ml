let failf = Tcl.Interp.failf

let ok = Tcl.Interp.ok

(* ------------------------------------------------------------------ *)
(* bind (paper §3.2, Figure 7) *)

let cmd_bind app : Tcl.Interp.command =
 fun _interp words ->
  match words with
  | [ _; path ] ->
    ignore (Core.lookup_exn app path);
    ok (Tcl.Tcl_list.format (Core.bound_sequences app ~path))
  | [ _; path; sequence ] ->
    ignore (Core.lookup_exn app path);
    ok (Option.value (Core.binding_script app ~path ~sequence) ~default:"")
  | [ _; path; sequence; script ] ->
    ignore (Core.lookup_exn app path);
    Core.bind_widget app ~path ~sequence ~script;
    ok ""
  | _ -> Tcl.Interp.wrong_args "bind window ?pattern? ?command?"

(* ------------------------------------------------------------------ *)
(* destroy *)

let cmd_destroy app : Tcl.Interp.command =
 fun _interp words ->
  match words with
  | _ :: (_ :: _ as paths) ->
    List.iter
      (fun path ->
        match Core.lookup app path with
        | Some w when not w.Core.destroyed -> Core.destroy_widget w
        | Some _ | None -> ())
      paths;
    ok ""
  | _ -> Tcl.Interp.wrong_args "destroy window ?window ...?"

(* ------------------------------------------------------------------ *)
(* winfo *)

let rec root_xy app w =
  match Path.parent w.Core.path with
  | None -> (w.Core.x, w.Core.y)
  | Some p -> (
    match Core.lookup app p with
    | Some parent ->
      let px, py = root_xy app parent in
      (px + w.Core.x, py + w.Core.y)
    | None -> (w.Core.x, w.Core.y))

let cmd_winfo app : Tcl.Interp.command =
 fun interp words ->
  match words with
  | [ _; "exists"; path ] -> (
    match Core.lookup app path with
    | Some w when not w.Core.destroyed -> ok "1"
    | Some _ | None -> ok "0")
  | [ _; "interps" ] -> ok (Tcl.Tcl_list.format (Sendcmd.interps app))
  | [ _; "name" ] -> ok app.Core.app_name
  | [ _; "screenwidth" ] ->
    ok
      (string_of_int
         (Xsim.Server.root_window app.Core.server).Xsim.Window.width)
  | [ _; "screenheight" ] ->
    ok
      (string_of_int
         (Xsim.Server.root_window app.Core.server).Xsim.Window.height)
  | [ _; "containing"; xs; ys ] -> (
    match (int_of_string_opt xs, int_of_string_opt ys) with
    | Some x, Some y -> (
      let root = Xsim.Server.root_window app.Core.server in
      match Xsim.Window.window_at root { Xsim.Geom.x; y } with
      | Some win -> (
        match Hashtbl.find_opt app.Core.by_xid win.Xsim.Window.id with
        | Some w -> ok w.Core.path
        | None -> ok "")
      | None -> ok "")
    | _ -> failf "expected integer coordinates")
  | [ _; option; path ] -> (
    let w = Core.lookup_exn app path in
    match option with
    | "class" -> ok w.Core.wclass.Core.cname
    | "children" ->
      ok
        (Tcl.Tcl_list.format
           (List.map (fun c -> c.Core.path) (Core.children w)))
    | "parent" -> ok (Option.value (Path.parent path) ~default:"")
    | "name" -> ok (Path.basename path)
    | "width" -> ok (string_of_int w.Core.width)
    | "height" -> ok (string_of_int w.Core.height)
    | "x" -> ok (string_of_int w.Core.x)
    | "y" -> ok (string_of_int w.Core.y)
    | "rootx" -> ok (string_of_int (fst (root_xy app w)))
    | "rooty" -> ok (string_of_int (snd (root_xy app w)))
    | "reqwidth" -> ok (string_of_int w.Core.req_width)
    | "reqheight" -> ok (string_of_int w.Core.req_height)
    | "geometry" ->
      ok (Printf.sprintf "%dx%d+%d+%d" w.Core.width w.Core.height w.Core.x w.Core.y)
    | "ismapped" -> ok (if w.Core.mapped then "1" else "0")
    | "id" -> ok (Printf.sprintf "0x%x" w.Core.win)
    (* The registry supplies the subcommand list and the usage string,
       so runtime diagnostics match what the static checker predicts. *)
    | _ -> Tcl.Interp.bad_subcommand interp ~cmd:"winfo" option)
  | [ _; sub ] when not (List.mem sub [ "exists"; "containing" ]) ->
    Tcl.Interp.bad_subcommand interp ~cmd:"winfo" sub
  | _ -> Tcl.Interp.wrong_args_for interp "winfo"

(* ------------------------------------------------------------------ *)
(* focus (paper §3.7) *)

let cmd_focus app : Tcl.Interp.command =
 fun _interp words ->
  match words with
  | [ _ ] -> ok (Option.value app.Core.focus_path ~default:"none")
  | [ _; "none" ] ->
    Core.set_focus app None;
    ok ""
  | [ _; path ] ->
    ignore (Core.lookup_exn app path);
    Core.set_focus app (Some path);
    ok ""
  | _ -> Tcl.Interp.wrong_args "focus ?window?"

(* ------------------------------------------------------------------ *)
(* option (paper §3.5) *)

let cmd_option app : Tcl.Interp.command =
 fun _interp words ->
  match words with
  | [ _; "add"; pattern; value ] ->
    Optiondb.add app.Core.options ~pattern value;
    ok ""
  | [ _; "add"; pattern; value; priority ] -> (
    match int_of_string_opt priority with
    | Some p ->
      Optiondb.add app.Core.options ~priority:p ~pattern value;
      ok ""
    | None -> failf "bad priority level \"%s\"" priority)
  | [ _; "get"; path; name; cls ] -> (
    let w = Core.lookup_exn app path in
    let chain =
      (* The chain for the window itself (without the final option). *)
      let rec prefixes acc p =
        match Path.parent p with
        | None -> acc
        | Some parent -> prefixes (p :: acc) parent
      in
      (app.Core.app_name, app.Core.app_class)
      :: List.filter_map
           (fun p ->
             Option.map
               (fun widget ->
                 (Path.basename p, widget.Core.wclass.Core.cname))
               (Core.lookup app p))
           (prefixes [] w.Core.path)
    in
    match Optiondb.get app.Core.options ~name_chain:chain ~name ~cls with
    | Some v -> ok v
    | None -> ok "")
  | [ _; "clear" ] ->
    Optiondb.clear app.Core.options;
    ok ""
  | [ _; "readfile"; path ] -> (
    match In_channel.with_open_text path In_channel.input_all with
    | contents -> (
      match Optiondb.load_string app.Core.options contents with
      | Ok _ -> ok ""
      | Error msg -> failf "%s" msg)
    | exception Sys_error msg -> failf "couldn't read file \"%s\": %s" path msg)
  | _ -> Tcl.Interp.wrong_args "option add|get|clear|readfile ..."

(* ------------------------------------------------------------------ *)
(* after, update, tkwait *)

let cmd_after app : Tcl.Interp.command =
 fun _interp words ->
  match words with
  | [ _; "cancel"; id ] ->
    (* Ids look like "after#42". *)
    (match String.index_opt id '#' with
    | Some i -> (
      match
        int_of_string_opt (String.sub id (i + 1) (String.length id - i - 1))
      with
      | Some n -> ignore (Dispatch.cancel app.Core.disp n)
      | None -> ())
    | None -> ());
    ok ""
  | [ _; ms ] -> (
    match int_of_string_opt ms with
    | Some ms ->
      (* Blocking form: sleep on the dispatcher clock while keeping the
         application alive.  Using the pluggable clock (not wall time)
         means a virtual clock advances deterministically through
         blocking sleeps — which is also what lets time limits fire at
         exact virtual ticks in scripts like [while 1 {after 1}]. *)
      let disp = app.Core.disp in
      let deadline = Dispatch.now_ms disp + ms in
      let rec wait () =
        Core.update app;
        let now = Dispatch.now_ms disp in
        if now < deadline then begin
          Dispatch.sleep_ms disp (min (deadline - now) 2);
          wait ()
        end
      in
      wait ();
      ok ""
    | None -> failf "expected integer but got \"%s\"" ms)
  | _ :: ms :: (_ :: _ as script_words) -> (
    match int_of_string_opt ms with
    | Some ms ->
      let script = String.concat " " script_words in
      let id =
        Dispatch.after app.Core.disp ~ms (fun () ->
            Core.eval_callback app ~context:"after script" script)
      in
      ok (Printf.sprintf "after#%d" id)
    | None -> failf "expected integer but got \"%s\"" ms)
  | _ -> Tcl.Interp.wrong_args "after ms ?command?"

let cmd_grab app : Tcl.Interp.command =
 fun _interp words ->
  match words with
  | [ _; "current" ] -> ok (Option.value app.Core.grab_path ~default:"")
  | [ _; "release"; _path ] ->
    app.Core.grab_path <- None;
    ok ""
  | [ _; "set"; path ] | [ _; path ] ->
    ignore (Core.lookup_exn app path);
    app.Core.grab_path <- Some path;
    ok ""
  | _ -> Tcl.Interp.wrong_args "grab set|release|current ?window?"

let cmd_update app : Tcl.Interp.command =
 fun _interp words ->
  match words with
  | [ _ ] ->
    Core.update app;
    ok ""
  | [ _; "idletasks" ] ->
    ignore (Dispatch.run_idle app.Core.disp);
    ok ""
  | _ -> Tcl.Interp.wrong_args "update ?idletasks?"

let cmd_tkwait app : Tcl.Interp.command =
 fun _interp words ->
  (* Both forms pump the event loop, so timers, bindings and incoming
     sends keep running while we wait. *)
  let pump continue_waiting =
    let guard = ref 1_000_000 in
    while continue_waiting () && !guard > 0 do
      Core.update app;
      decr guard;
      if continue_waiting () then ignore (Unix.select [] [] [] 0.001)
    done
  in
  match words with
  | [ _; "window"; path ] ->
    pump (fun () ->
        match Core.lookup app path with
        | Some w -> not w.Core.destroyed
        | None -> false);
    ok ""
  | [ _; "variable"; name ] ->
    let initial = Tcl.Interp.get_var app.Core.interp name in
    pump (fun () -> Tcl.Interp.get_var app.Core.interp name = initial);
    ok ""
  | _ -> Tcl.Interp.wrong_args "tkwait variable|window name"

(* ------------------------------------------------------------------ *)
(* xtrace / xstat: wire-traffic observability (§7's evaluation currency
   is "server traffic avoided"; these let scripts see and assert it) *)

let cmd_xtrace app : Tcl.Interp.command =
 fun _interp words ->
  let conn = app.Core.conn in
  match words with
  | [ _; "on" ] ->
    Xsim.Server.set_tracing conn true;
    ok ""
  | [ _; "on"; capacity ] -> (
    match int_of_string_opt capacity with
    | Some c when c > 0 ->
      Xsim.Server.set_tracing ~capacity:c conn true;
      ok ""
    | Some _ | None -> failf "expected positive integer but got \"%s\"" capacity)
  | [ _; "off" ] ->
    Xsim.Server.set_tracing conn false;
    ok ""
  | [ _; "dump" ] -> ok (Xsim.Server.trace_dump conn)
  | [ _; "clear" ] ->
    Xsim.Server.clear_trace conn;
    ok ""
  | [ _; "status" ] ->
    ok
      (Printf.sprintf "%s %d"
         (if Xsim.Server.tracing conn then "on" else "off")
         (Xsim.Server.trace_length conn))
  | _ -> Tcl.Interp.wrong_args "xtrace on ?capacity?|off|dump|clear|status"

let cmd_xstat app : Tcl.Interp.command =
 fun _interp words ->
  match words with
  | [ _ ] ->
    ok
      (Tcl.Tcl_list.format
         (List.concat_map
            (fun (name, value) -> [ name; value ])
            (Core.metrics_snapshot app)))
  | [ _; "reset" ] ->
    Core.reset_metrics app;
    ok ""
  | [ _; "get"; name ] -> (
    match Core.metric app name with
    | Some v -> ok v
    | None -> failf "unknown counter \"%s\"" name)
  | _ -> Tcl.Interp.wrong_args "xstat ?reset|get counter?"

(* ------------------------------------------------------------------ *)
(* wm: a minimal window-manager interface (we are our own WM) *)

let cmd_wm app : Tcl.Interp.command =
 fun interp words ->
  match words with
  | [ _; "title"; path ] ->
    ignore (Core.lookup_exn app path);
    ok app.Core.title
  | [ _; "title"; path; title ] ->
    let w = Core.lookup_exn app path in
    app.Core.title <- title;
    (* Published as WM_NAME so the (simulated) window manager can draw a
       title bar, as twm does in the paper's Figure 10. *)
    Core.absorb app ~default:() (fun () ->
        Xsim.Server.change_property app.Core.conn w.Core.win
          ~prop:Xsim.Atom.wm_name ~ptype:Xsim.Atom.string title);
    ok ""
  | [ _; "geometry"; path; geometry ] -> (
    let w = Core.lookup_exn app path in
    (* WxH, WxH+X+Y or +X+Y *)
    let parse_signed s i =
      (* at s.[i] = '+' or '-' *)
      let sign = if s.[i] = '-' then -1 else 1 in
      let j = ref (i + 1) in
      while !j < String.length s && s.[!j] >= '0' && s.[!j] <= '9' do
        incr j
      done;
      (sign * int_of_string (String.sub s (i + 1) (!j - i - 1)), !j)
    in
    match
      (let s = geometry in
       let size, rest =
         match String.index_opt s 'x' with
         | Some _ when s.[0] <> '+' && s.[0] <> '-' -> (
           let xi = String.index s 'x' in
           let wid = int_of_string (String.sub s 0 xi) in
           let j = ref (xi + 1) in
           while
             !j < String.length s && s.[!j] >= '0' && s.[!j] <= '9'
           do
             incr j
           done;
           let hei = int_of_string (String.sub s (xi + 1) (!j - xi - 1)) in
           (Some (wid, hei), !j))
         | _ -> (None, 0)
       in
       let pos =
         if rest < String.length s && (s.[rest] = '+' || s.[rest] = '-') then begin
           let x, j = parse_signed s rest in
           if j < String.length s && (s.[j] = '+' || s.[j] = '-') then
             let y, _ = parse_signed s j in
             Some (x, y)
           else None
         end
         else None
       in
       (size, pos))
    with
    | exception _ -> failf "bad geometry specifier \"%s\"" geometry
    | size, pos ->
      let x = match pos with Some (x, _) -> x | None -> w.Core.x in
      let y = match pos with Some (_, y) -> y | None -> w.Core.y in
      let width = match size with Some (wd, _) -> wd | None -> w.Core.width in
      let height = match size with Some (_, h) -> h | None -> w.Core.height in
      Core.move_resize w ~x ~y ~width ~height;
      ok "")
  | [ _; "geometry"; path ] ->
    let w = Core.lookup_exn app path in
    ok
      (Printf.sprintf "%dx%d+%d+%d" w.Core.width w.Core.height w.Core.x
         w.Core.y)
  | [ _; "withdraw"; path ] ->
    Core.unmap_widget (Core.lookup_exn app path);
    ok ""
  | [ _; "deiconify"; path ] ->
    Core.map_widget (Core.lookup_exn app path);
    ok ""
  | _ :: sub :: _ :: _
    when not (List.mem sub [ "title"; "geometry"; "withdraw"; "deiconify" ])
    ->
    Tcl.Interp.bad_subcommand interp ~cmd:"wm" sub
  | _ -> Tcl.Interp.wrong_args_for interp "wm"

(* ------------------------------------------------------------------ *)
(* lint: the static checker as a Tcl command.  Analysis never executes
   the script — it returns a list of {line col severity message}
   elements and touches nothing but the tcl.lint.* counters.  -safe
   additionally reports reachable uses of safe-profile hidden commands;
   -seed installs the analyzer's proven formal kinds as VM lowering
   seeds (Interp.seed_proc_kinds) for procs the running program
   defines under the same names. *)

let cmd_lint _app : Tcl.Interp.command =
 fun interp words ->
  let rec go safe seed = function
    | "-safe" :: rest -> go true seed rest
    | "-seed" :: rest -> go safe true rest
    | [ script ] ->
      let out = Tcl.Lint.analyze_program ~safe interp [ (None, script) ] in
      if seed then
        List.iter
          (fun (name, facts) -> Tcl.Interp.seed_proc_kinds interp name facts)
          out.Tcl.Lint.o_facts;
      ok (Tcl.Lint.to_tcl_list (List.map snd out.Tcl.Lint.o_diags))
    | _ -> Tcl.Interp.wrong_args_for interp "lint"
  in
  go false false (match words with [] -> [] | _ :: rest -> rest)

let install app =
  let register name cmd = Tcl.Interp.register app.Core.interp name (cmd app) in
  register "bind" cmd_bind;
  register "destroy" cmd_destroy;
  register "winfo" cmd_winfo;
  register "focus" cmd_focus;
  register "option" cmd_option;
  register "after" cmd_after;
  register "update" cmd_update;
  register "tkwait" cmd_tkwait;
  register "grab" cmd_grab;
  register "wm" cmd_wm;
  register "xtrace" cmd_xtrace;
  register "xstat" cmd_xstat;
  register "lint" cmd_lint;
  Pack.install app;
  Place.install app;
  Selection.install app;
  Sendcmd.install app;
  (* Shape declarations for the static checker — same usage strings as
     the wrong_args calls above, same subcommand tables as the pattern
     matches.  The bind pattern validator hooks Bindpattern into Lint
     (which, living in the tcl library, cannot see it directly). *)
  let interp = app.Core.interp in
  let sg = Tcl.Interp.signature and sub = Tcl.Interp.subsig in
  List.iter
    (Tcl.Interp.register_signature interp)
    [
      sg "bind" 1 ~max:3 ~usage:"bind window ?pattern? ?command?"
        ~checks:
          [
            {
              Tcl.Interp.chk_arg = 2;
              chk =
                (fun seq ->
                  match Bindpattern.parse_sequence seq with
                  | Ok _ -> None
                  | Error msg -> Some msg);
            };
          ];
      sg "destroy" 1 ~usage:"destroy window ?window ...?";
      sg "winfo" 1 ~max:3 ~usage:"winfo option ?arg?"
        ~subs:
          [
            sub "children" 1 ~max:1;
            sub "class" 1 ~max:1;
            sub "containing" 2 ~max:2;
            sub "exists" 1 ~max:1;
            sub "geometry" 1 ~max:1;
            sub "height" 1 ~max:1;
            sub "id" 1 ~max:1;
            sub "interps" 0 ~max:0;
            sub "ismapped" 1 ~max:1;
            sub "name" 0 ~max:1;
            sub "parent" 1 ~max:1;
            sub "reqheight" 1 ~max:1;
            sub "reqwidth" 1 ~max:1;
            sub "rootx" 1 ~max:1;
            sub "rooty" 1 ~max:1;
            sub "screenheight" 0 ~max:0;
            sub "screenwidth" 0 ~max:0;
            sub "width" 1 ~max:1;
            sub "x" 1 ~max:1;
            sub "y" 1 ~max:1;
          ];
      sg "focus" 0 ~max:1 ~usage:"focus ?window?";
      sg "option" 1 ~usage:"option add|get|clear|readfile ..."
        ~subs:
          [
            sub "add" 2 ~max:3;
            sub "clear" 0 ~max:0;
            sub "get" 3 ~max:3;
            sub "readfile" 1 ~max:1;
          ];
      sg "after" 1 ~usage:"after ms ?command?";
      sg "update" 0 ~max:1 ~usage:"update ?idletasks?"
        ~subs:[ sub "idletasks" 0 ~max:0 ];
      sg "tkwait" 2 ~max:2 ~usage:"tkwait variable|window name"
        ~subs:[ sub "variable" 1 ~max:1; sub "window" 1 ~max:1 ];
      sg "grab" 1 ~max:2 ~usage:"grab set|release|current ?window?"
        ~subs:
          [ sub "current" 0 ~max:0; sub "release" 1 ~max:1; sub "set" 1 ~max:1 ];
      sg "wm" 2 ~usage:"wm option window ?arg?"
        ~subs:
          [
            sub "deiconify" 1 ~max:1;
            sub "geometry" 1 ~max:2;
            sub "title" 1 ~max:2;
            sub "withdraw" 1 ~max:1;
          ];
      sg "xtrace" 1 ~max:2 ~usage:"xtrace on ?capacity?|off|dump|clear|status"
        ~subs:
          [
            sub "clear" 0 ~max:0;
            sub "dump" 0 ~max:0;
            sub "off" 0 ~max:0;
            sub "on" 0 ~max:1;
            sub "status" 0 ~max:0;
          ];
      sg "xstat" 0 ~max:2 ~usage:"xstat ?reset|get counter?"
        ~subs:[ sub "get" 1 ~max:1; sub "reset" 0 ~max:0 ];
      sg "lint" 1 ~max:3 ~options:[ "-safe"; "-seed" ]
        ~usage:"lint ?-safe? ?-seed? script";
      sg "pack" 1
        ~usage:"pack append master window options ?window options ...?"
        ~subs:
          [
            sub "append" 1;
            sub "info" 1 ~max:1;
            sub "slaves" 1 ~max:1;
            sub "unpack" 0;
          ];
      sg "place" 1 ~usage:"place window ?options? | place forget window";
      sg "selection" 1 ~usage:"selection option ?arg arg ...?"
        ~subs:
          [
            sub "clear" 0 ~max:0;
            sub "get" 0 ~max:0;
            sub "handle" 2 ~max:2;
            sub "own" 0 ~max:1;
          ];
      sg "send" 1
        ~subs:
          [
            sub "guard" 0 ~max:1;
            sub "limit" 1 ~max:2;
            sub "mailbox" 0 ~max:1;
            sub "result" 1 ~max:1;
            sub "wait" 1 ~max:1;
          ]
        ~open_subs:true
        ~options:[ "-all"; "-async"; "-future"; "-glob"; "-retry"; "-timeout" ]
        ~usage:
          "send ?-async? ?-future? ?-retry? ?-timeout ms? ?-all? ?-glob \
           pattern? ?--? ?appName? arg ?arg ...?";
    ]
