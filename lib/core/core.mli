(** The Tk intrinsics core: applications, widgets, the widget framework
    (classes, configuration options, widget commands), the event
    dispatcher, event bindings with %-substitution, the structure cache and
    geometry-management plumbing (paper §3).

    An {!app} bundles one Tcl interpreter with one X connection and a tree
    of widgets named by path names; creating a widget creates both an X
    window and a Tcl {e widget command} with the same name as the window
    path (paper §4). *)

open Xsim

(** {1 Widget configuration options} *)

type option_type =
  | Ot_string
  | Ot_int
  | Ot_pixels  (** accepts 3, 3.5c, 2m, 1i, 10p *)
  | Ot_color
  | Ot_font
  | Ot_cursor
  | Ot_bitmap
  | Ot_relief  (** raised | sunken | flat *)
  | Ot_boolean
  | Ot_anchor  (** n ne e se s sw w nw center *)

type spec = {
  switch : string;  (** command-line switch, e.g. ["-background"] *)
  db_name : string;  (** option database name, e.g. ["background"] *)
  db_class : string;  (** option database class, e.g. ["Background"] *)
  default : string;
  otype : option_type;
}

val spec :
  switch:string -> db:string -> cls:string -> default:string -> option_type -> spec

type relief = Raised | Sunken | Flat

type anchor = N | NE | E | SE | S | SW | W | NW | Center

val parse_geometry_spec : string -> (int * int) option
(** Parse a ["COLSxROWS"] / ["WIDTHxHEIGHT"] geometry option value. *)

val parse_pixels : string -> int option
(** Screen distance: bare numbers are pixels; suffix [c]entimetres,
    [m]illimetres, [i]nches, [p]oints (at the simulated 75 dpi). *)

(** {1 Widgets and applications} *)

type wdata = ..
(** Widget-private state; each widget class adds its own constructor. *)

type wdata += No_data

type widget = {
  path : string;
  wclass : wclass;
  win : Xid.t;
  app : app;
  config : (string, string) Hashtbl.t;  (** switch -> current value *)
  mutable destroyed : bool;
  (* Structure cache (paper §3.3): geometry mirrored from the server so
     widgets and winfo don't need round trips. *)
  mutable x : int;
  mutable y : int;
  mutable width : int;
  mutable height : int;
  mutable mapped : bool;
  mutable req_width : int;
  mutable req_height : int;
  mutable geom_mgr : geom_mgr option;
  mutable redraw_pending : bool;
  mutable damage : Geom.rect list;
      (** accumulated damage for the pending repaint, in widget
          coordinates, coalesced to at most a handful of rects; [[]]
          while a pending repaint is a full redraw *)
  mutable data : wdata;
  mutable last_click : (int * int * int) option; (* button, time, count *)
  mutable press_history : (Event.t * int) list; (* newest first *)
}

and wclass = {
  cname : string;
  specs : spec list;
  mutable configure_hook : widget -> unit;
      (** called after any option change and at creation *)
  mutable display : widget -> unit;  (** repaint into the X window *)
  mutable display_damaged : (widget -> Geom.rect -> unit) option;
      (** repaint only the given (widget-coordinate) clip, leaving
          retained drawing outside it alone; classes without one get a
          full redraw whenever damage is scheduled *)
  mutable handle_event : widget -> Event.t -> unit;
      (** the widget's built-in ("C code") event behaviour *)
  mutable subcommands : widget -> string list -> Tcl.Interp.result;
      (** widget-command options beyond configure/cget; receives the full
          word list *)
  mutable cleanup : widget -> unit;
}

and geom_mgr = {
  gm_name : string;
  gm_slave_request : widget -> unit;
      (** a managed window changed its requested size *)
  gm_lost_slave : widget -> unit;
}

and app = {
  mutable app_name : string;  (** unique on the display; used by [send] *)
  app_class : string;
  interp : Tcl.Interp.t;
  conn : Server.connection;
  server : Server.t;
  widgets : (string, widget) Hashtbl.t;
  by_xid : (Xid.t, widget) Hashtbl.t;
  cache : Rescache.t;
  options : Optiondb.t;
  bindings : (string, binding list ref) Hashtbl.t;
  disp : Dispatch.t;
  metrics : Metrics.t;  (** toolkit-side counters (see {!metrics_snapshot}) *)
  mutable focus_path : string option;
  comm_win : Xid.t;  (** hidden window used by the [send] protocol *)
  mutable send_serial : int;
  mutable title : string;
  mutable app_destroyed : bool;
  mutable error_handler : string -> unit;
      (** reports errors from event bindings and timers *)
  mutable configure_hooks : (widget -> unit) list;
      (** geometry managers re-layout when masters resize *)
  mutable pre_handlers : (app -> Event.delivery -> bool) list;
      (** protocol modules (send, selection) intercept events; [true] =
          consumed *)
  mutable drain_hooks : (unit -> int) list;
      (** deferred-work queues ({!update} runs these each sweep; the send
          mailbox drains here, never re-entrantly from an event handler);
          each returns the number of items processed *)
  mutable grab_path : string option;
      (** while set, pointer events outside this subtree are discarded
          (the [grab] command — modal dialogs and menus) *)
  sel : sel_state;
  send : send_state;  (** send-fabric state (mailbox, futures, policies) *)
}

and binding = {
  bseq : Bindpattern.pattern list;
  bkey : string;
  bscript : string;
}

and sel_state = {
  mutable sel_owner_path : string option;
  mutable sel_provider : (unit -> string) option;
  mutable sel_tcl_handler : string option;
  mutable sel_pending : string option option;
      (** in-flight [selection get]: None = waiting *)
}

and send_request = {
  sq_serial : string;
  sq_sender : Xid.t;  (** sender's communication window (reply address) *)
  sq_mode : string;  (** ["call"] (reply wanted) or ["async"] *)
  sq_script : string;
}
(** One incoming [send] request, parked in the receiver's mailbox until
    the event loop drains it. *)

and send_future = {
  ft_target : string;
  mutable ft_comm : Xid.t;
  ft_serial : string;
  ft_deadline : int;  (** ms on the sender's dispatcher clock *)
  mutable ft_state : (string * string) option;
      (** [None] while pending; [Some (state, value)] with state one of
          ok/error/died/timeout/overflow once resolved *)
}
(** An outstanding [send -future] handle. *)

and send_state = {
  mailbox : send_request Queue.t;
  mutable mailbox_limit : int;
      (** bound on queued requests; beyond it new requests are refused
          with an overflow reply *)
  mutable self_fast_path : bool;
      (** evaluate self-sends directly instead of over the wire *)
  futures : (string, send_future) Hashtbl.t;  (** handle -> future *)
  mutable future_serial : int;
  mutable send_rng : int;  (** deterministic backoff-jitter state *)
  mutable guard_mode : guard_mode;
      (** where and under what limits incoming scripts evaluate *)
  mutable guard_time_ms : int;
      (** time limit armed per incoming request (0 = none) *)
  mutable guard_cmds : int;
      (** command budget armed per incoming request (0 = none) *)
  mutable draining : bool;
      (** true while a guarded incoming request is evaluating: requests
          drained nested inside it (a blocking script pumps the event
          loop) run under the outer request's armed limits instead of
          re-arming/disarming them *)
  mutable guard_interp : Tcl.Interp.t option;
      (** the lazily created [-safe] slave that [Guard_safe] evaluates
          incoming scripts in *)
}

(** Evaluation context for incoming send/mailbox scripts. *)
and guard_mode =
  | Guard_off  (** main interpreter, no limits (backward compatible) *)
  | Guard_limits  (** main interpreter, limits armed per request *)
  | Guard_safe  (** a [-safe] slave interpreter, limits armed *)

(** {1 Application lifecycle} *)

val create_app :
  ?app_class:string -> server:Server.t -> name:string -> unit -> app
(** Connect to the display, create the main window ["."], the send
    communication window, a fresh Tcl interpreter with the standard
    command set, and register the application name (made unique if taken)
    in the display registry. *)

val destroy_app : app -> unit

val absorb : app -> default:'a -> (unit -> 'a) -> 'a
(** Run the thunk, absorbing any {!Xsim.Xerror.X_error}: the error is
    recorded against the server's fault counters
    ({!Xsim.Server.note_absorbed}) and the call evaluates to [default].
    Widget code wraps individual server requests with this so operations
    on dead windows become no-ops and injected faults degrade gracefully
    instead of unwinding the event loop. *)

val add_destroy_hook : (app -> unit) -> unit
(** Run when any application is destroyed; modules keeping per-app side
    tables (packer, placer, selection) use this to drop their state. *)

val local_apps : Server.t -> app list
(** All in-process applications on a display (the simulation's analogue of
    "other clients of the X server"); used by [send] and the selection to
    pump their event queues. *)

val app_of_comm : Server.t -> Xid.t -> app option
(** Find a local application by its communication window. *)

(** {1 Widgets} *)

val main_widget : app -> widget

val lookup : app -> string -> widget option

val lookup_exn : app -> string -> widget
(** @raise Tcl.Interp.Tcl_failure "bad window path name" *)

val make_widget :
  app -> path:string -> ?data:wdata -> wclass -> args:string list -> widget
(** Create the window, install the widget-private [data] (before the
    class's configure hook first runs), apply initial configuration
    (command-line args, then option database, then class defaults) and
    register the widget command.
    @raise Tcl.Interp.Tcl_failure on bad paths or options. *)

val destroy_widget : widget -> unit
(** Destroy the widget and all its descendants (deepest first), delete
    their widget commands and server windows. Destroying ["."] destroys
    the application. *)

val children : widget -> widget list
(** Direct children, by path structure. *)

val make_class :
  name:string ->
  specs:spec list ->
  unit ->
  wclass
(** A class skeleton with no-op behaviour; callers then set the mutable
    fields they need. *)

val container_specs : spec list
(** The frame option set, shared by ["."] and the frame widget. *)

val container_class : name:string -> wclass
(** A frame-like class: fills its background, draws an optional relief. *)

(** {1 Configuration} *)

val configure : widget -> string list -> unit
(** Apply [-switch value] pairs: validates types (colors resolve through
    the cache, pixel distances parse, …) and runs the class configure
    hook. @raise Tcl.Interp.Tcl_failure on unknown switches/bad values. *)

val configure_info : widget -> string option -> string
(** The [configure] query forms: all specs, or one. *)

val cget : widget -> string -> string
(** Current (textual) value of an option. *)

val find_spec : widget -> string -> spec
(** Resolve a possibly-abbreviated switch. @raise Tcl.Interp.Tcl_failure *)

val get_string : widget -> string -> string
val get_int : widget -> string -> int
val get_pixels : widget -> string -> int
val get_boolean : widget -> string -> bool
val get_relief : widget -> string -> relief
val get_anchor : widget -> string -> anchor
val get_color : widget -> string -> Color.t
val get_font : widget -> string -> Font.t

val widget_gc : widget -> fg:string -> ?font:string -> unit -> Gcontext.t
(** A cached GC for drawing, with [fg]/[font] given as option switches
    (e.g. [~fg:"-foreground"]) or literal names. *)

(** {1 Geometry plumbing} *)

val request_size : widget -> width:int -> height:int -> unit
(** A widget's preferred size (paper §3.4): forwarded to its geometry
    manager; applied directly when the widget is the main window. *)

val move_resize : widget -> x:int -> y:int -> width:int -> height:int -> unit
(** Used by geometry managers to place a slave. Updates the structure
    cache immediately. *)

val map_widget : widget -> unit
val unmap_widget : widget -> unit

val schedule_redraw : widget -> unit
(** Coalesced: the class display procedure runs from the idle queue. *)

val schedule_damage : widget -> Geom.rect -> unit
(** Like {!schedule_redraw}, but records that only [rect] (widget
    coordinates) changed. Damage rects union-coalesce onto the pending
    repaint; at the idle sweep the class {!wclass.display_damaged} hook
    receives the accumulated clip. Falls back to a full redraw when the
    class has no damaged-display hook, when a full redraw was also
    scheduled, or when the damage covers most of the widget (the deopt
    threshold — see the [tk.damage.*] counters). *)

(** {1 Events and bindings} *)

val bind_widget : app -> path:string -> sequence:string -> script:string -> unit
(** Create/replace/delete (empty script) a binding.
    @raise Tcl.Interp.Tcl_failure on pattern syntax errors. *)

val binding_script : app -> path:string -> sequence:string -> string option

val bound_sequences : app -> path:string -> string list

val percent_substitute : string -> widget -> Event.t -> time:int -> string
(** Expand Figure 7's %-sequences in a binding script. *)

val process_pending : app -> int
(** Drain the X event queue: structure-cache updates, class handlers,
    binding execution, focus redirection. Returns events processed. *)

val update : app -> unit
(** [process_pending] + due timers + idle callbacks (repeated until
    quiescent) — the Tcl [update] command. *)

val update_all : Server.t -> unit
(** [update] every local app on the display (lets cross-application
    protocols make progress deterministically in tests). *)

val mainloop : app -> unit
(** Loop until the application is destroyed: X events, timers, file
    handlers, idle callbacks. *)

(** {1 Metrics}

    One registry over every counter the stack keeps: the connection's
    request {!Xsim.Server.stats}, resource-cache hits/misses/fallbacks,
    redraw scheduling/coalescing, binding dispatches, dispatcher
    timer/idle counts and sweep latency, and the display's fault
    counters. The [xstat] Tcl command and the bench JSON emitter are
    thin wrappers over this. *)

val metrics_snapshot : app -> (string * string) list
(** Current value of every counter, as name/value pairs (values are
    decimal integers except the [sweep_ms_*] latencies). *)

val metric : app -> string -> string option
(** One counter from {!metrics_snapshot}, by name. *)

val reset_metrics : app -> unit
(** Zero the per-application counters (request stats, cache counters,
    redraw/binding counters, dispatcher counters). Display-global fault
    counters are left alone — other clients' accounting rides on them. *)

val eval_callback : app -> ?context:string -> string -> unit
(** Evaluate a Tcl script triggered by an event/timer; errors go to
    [error_handler]. *)

val set_focus : app -> string option -> unit
(** Tk-level focus (paper §3.7): keystrokes anywhere in the application are
    redirected to this widget. *)

(** {1 The application registry (paper §6, sharded)}

    Application names live in a fixed set of root-window properties
    ([TK_REGISTRY_S00] … [TK_REGISTRY_S31]) keyed by a hash of the name,
    so a single-name lookup reads one shard — O(1) even with 1000
    registered interpreters — instead of scanning one monolithic
    property. Every read and write garbage-collects {e ghosts}: entries
    whose communication window no longer exists because the peer crashed
    without cleanup. *)

val registry_shards : int
(** Number of shard properties (fixed; part of the wire format). *)

val registry_shard_property : int -> string
(** Name of the [k]-th shard's root-window property. *)

val shard_of_name : string -> int
(** Which shard a name hashes to (FNV-1a; deterministic across runs). *)

val lookup_registry : app -> string -> Xid.t option
(** Communication window registered under [name], reading (and
    ghost-collecting) only the one shard the name hashes to. *)

val lookup_registry_raw : app -> string -> Xid.t option
(** Like {!lookup_registry} but without liveness pings or garbage
    collection — one property read, O(1) requests at any fleet size. The
    result may be stale; [send] discovers that when posting fails and
    only then pays for the pinging lookup. *)

val register_name : app -> name:string -> comm:Xid.t -> string
(** Register the application under [name], probing [name #2], [name #3]…
    until unique on the display; returns the name actually registered. *)

val read_registry : app -> (string * Xid.t) list
(** The whole registry (all shards), sorted by name — the aggregate
    order is stable under shard layout and registration order. Ghost
    entries are pruned from the result and garbage-collected out of
    their shard property, so [winfo interps] never lists ghosts. *)

val write_registry : app -> (string * Xid.t) list -> unit
(** Replace the whole registry, rebucketing entries into their shards.
    Ghost entries (dead communication windows) are filtered out before
    writing; robustness tests that need a genuinely stale entry must
    forge the raw shard property with {!Xsim.Server.change_property}. *)
