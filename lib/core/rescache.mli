(** The resource cache (paper §3.3): colors, fonts, cursors and bitmaps are
    cached by their textual names so that repeated requests are served
    without talking to the X server. The cache also keeps the reverse
    mapping so widgets can report human-readable names for resources in
    use.

    Hit/miss counters make the saved server traffic measurable, and the
    cache can be disabled entirely for the ablation benchmark.

    The cache is also the degradation point for failed resource requests:
    when the server rejects an allocation (a genuine error or an injected
    fault), the lookup falls back to a guaranteed resource — the "fixed"
    font, black/white colors, the default cursor, a built-in stipple — and
    counts the substitution instead of propagating the error. *)

type t

val create : Xsim.Server.connection -> t

val set_enabled : t -> bool -> unit
(** When disabled every lookup goes to the server (the ablation case). *)

val color : t -> string -> Xsim.Color.t option
(** Resolve a color name/hex spec, allocating on first use. The result is
    canonicalised so equal specs share one entry. *)

val font : t -> string -> Xsim.Font.t option
val cursor : t -> string -> Xsim.Cursor.t option
val bitmap : t -> string -> Xsim.Bitmap.t option

val color_name : t -> Xsim.Color.t -> string option
(** Reverse lookup: the textual name a cached color was allocated under. *)

val hits : t -> int
val misses : t -> int

val fallbacks : t -> int
(** How many lookups degraded to a fallback resource after a failed
    server request. *)

val reset_counters : t -> unit

val gc :
  t ->
  ?foreground:string ->
  ?background:string ->
  ?font:string ->
  unit ->
  Xsim.Gcontext.t
(** A graphics context whose components are resolved through the cache.
    GCs themselves are cached by their component names, so widgets sharing
    colors/fonts share GCs too. *)
