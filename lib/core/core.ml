open Xsim

let failf = Tcl.Interp.failf

(* ------------------------------------------------------------------ *)
(* Option specs *)

type option_type =
  | Ot_string
  | Ot_int
  | Ot_pixels
  | Ot_color
  | Ot_font
  | Ot_cursor
  | Ot_bitmap
  | Ot_relief
  | Ot_boolean
  | Ot_anchor

type spec = {
  switch : string;
  db_name : string;
  db_class : string;
  default : string;
  otype : option_type;
}

let spec ~switch ~db ~cls ~default otype =
  { switch; db_name = db; db_class = cls; default; otype }

type relief = Raised | Sunken | Flat

type anchor = N | NE | E | SE | S | SW | W | NW | Center

(* Screen distances at the simulated 75 dpi. *)
let parse_pixels s =
  let s = String.trim s in
  if s = "" then None
  else
    let n = String.length s in
    let last = s.[n - 1] in
    let numeric, scale =
      match last with
      | 'c' -> (String.sub s 0 (n - 1), 75.0 /. 2.54)
      | 'm' -> (String.sub s 0 (n - 1), 75.0 /. 25.4)
      | 'i' -> (String.sub s 0 (n - 1), 75.0)
      | 'p' -> (String.sub s 0 (n - 1), 75.0 /. 72.0)
      | _ -> (s, 1.0)
    in
    match float_of_string_opt (String.trim numeric) with
    | Some f -> Some (int_of_float (Float.round (f *. scale)))
    | None -> None

(* ------------------------------------------------------------------ *)
(* Core types *)

type wdata = ..

type wdata += No_data

type widget = {
  path : string;
  wclass : wclass;
  win : Xid.t;
  app : app;
  config : (string, string) Hashtbl.t;
  mutable destroyed : bool;
  mutable x : int;
  mutable y : int;
  mutable width : int;
  mutable height : int;
  mutable mapped : bool;
  mutable req_width : int;
  mutable req_height : int;
  mutable geom_mgr : geom_mgr option;
  mutable redraw_pending : bool;
  mutable damage : Geom.rect list;
  mutable data : wdata;
  mutable last_click : (int * int * int) option;
  mutable press_history : (Event.t * int) list;
}

and wclass = {
  cname : string;
  specs : spec list;
  mutable configure_hook : widget -> unit;
  mutable display : widget -> unit;
  mutable display_damaged : (widget -> Geom.rect -> unit) option;
  mutable handle_event : widget -> Event.t -> unit;
  mutable subcommands : widget -> string list -> Tcl.Interp.result;
  mutable cleanup : widget -> unit;
}

and geom_mgr = {
  gm_name : string;
  gm_slave_request : widget -> unit;
  gm_lost_slave : widget -> unit;
}

and app = {
  mutable app_name : string;
  app_class : string;
  interp : Tcl.Interp.t;
  conn : Server.connection;
  server : Server.t;
  widgets : (string, widget) Hashtbl.t;
  by_xid : (Xid.t, widget) Hashtbl.t;
  cache : Rescache.t;
  options : Optiondb.t;
  bindings : (string, binding list ref) Hashtbl.t;
  disp : Dispatch.t;
  metrics : Metrics.t;
  mutable focus_path : string option;
  comm_win : Xid.t;
  mutable send_serial : int;
  mutable title : string;
  mutable app_destroyed : bool;
  mutable error_handler : string -> unit;
  mutable configure_hooks : (widget -> unit) list;
  mutable pre_handlers : (app -> Event.delivery -> bool) list;
  mutable drain_hooks : (unit -> int) list;
  mutable grab_path : string option;
  sel : sel_state;
  send : send_state;
}

and binding = {
  bseq : Bindpattern.pattern list;
  bkey : string;
  bscript : string;
}

and sel_state = {
  mutable sel_owner_path : string option;
  mutable sel_provider : (unit -> string) option;
  mutable sel_tcl_handler : string option;
  mutable sel_pending : string option option;
}

and send_request = {
  sq_serial : string;
  sq_sender : Xid.t;
  sq_mode : string; (* "call" (reply wanted) or "async" *)
  sq_script : string;
}

and send_future = {
  ft_target : string;
  mutable ft_comm : Xid.t;
  ft_serial : string;
  ft_deadline : int; (* ms on the sender's dispatcher clock *)
  (* None while pending; Some (state, value) with state one of
     ok/error/died/timeout/overflow once resolved. *)
  mutable ft_state : (string * string) option;
}

and send_state = {
  mailbox : send_request Queue.t;
  mutable mailbox_limit : int;
  mutable self_fast_path : bool;
  futures : (string, send_future) Hashtbl.t;
  mutable future_serial : int;
  mutable send_rng : int; (* deterministic backoff-jitter state *)
  (* Guarded evaluation of incoming scripts (Sendcmd.eval_remote). *)
  mutable guard_mode : guard_mode;
  mutable guard_time_ms : int; (* 0 = no time limit *)
  mutable guard_cmds : int; (* 0 = no command budget *)
  mutable draining : bool; (* a guarded request is evaluating *)
  mutable guard_interp : Tcl.Interp.t option; (* lazy Guard_safe slave *)
}

and guard_mode =
  | Guard_off  (** main interpreter, no limits (backward compatible) *)
  | Guard_limits  (** main interpreter, limits armed per request *)
  | Guard_safe  (** a [-safe] slave interpreter, limits armed *)

(* ------------------------------------------------------------------ *)
(* Local application registry (in-process "display clients") *)

type display_clients = {
  mutable dc_apps : app list;
  dc_by_comm : (Xid.t, app) Hashtbl.t;
}

let registries : (Server.t * display_clients) list ref = ref []

let clients_for server =
  match List.find_opt (fun (s, _) -> s == server) !registries with
  | Some (_, dc) -> dc
  | None ->
    let dc = { dc_apps = []; dc_by_comm = Hashtbl.create 64 } in
    registries := (server, dc) :: !registries;
    dc

let local_apps server = (clients_for server).dc_apps

let app_of_comm server comm =
  Hashtbl.find_opt (clients_for server).dc_by_comm comm

(* The display registry is sharded over a fixed set of root-window
   properties keyed by a hash of the application name, so a single-name
   lookup reads one shard (O(1) at 1000 registered interps) instead of
   scanning one monolithic property. *)
let registry_shards = 32

let registry_shard_property k = Printf.sprintf "TK_REGISTRY_S%02d" k

let shard_of_name name =
  (* FNV-1a, masked to stay in positive fixnum range: deterministic
     across runs and architectures. *)
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0x3FFFFFFF)
    name;
  !h mod registry_shards

(* ------------------------------------------------------------------ *)
(* Graceful degradation *)

(* Run [f], absorbing any X protocol error: the error is recorded against
   the server's fault counters and the operation degrades to [default].
   This is what makes widget operations on dead windows no-ops and lets
   the intrinsics ride out injected faults (ROADMAP: robustness). *)
let absorb app ~default f =
  try f ()
  with Xerror.X_error e ->
    Server.note_absorbed app.server e;
    default

(* Last-resort net: an X error escaping a Tcl command procedure becomes a
   script error ("X protocol error: BadWindow ..."), not a crash. *)
let () =
  Tcl.Interp.add_exn_translator (function
    | Xerror.X_error e -> Some (Xerror.describe e)
    | _ -> None)

(* ------------------------------------------------------------------ *)
(* Display registry (paper §6): name -> communication window, sharded *)

(* A registry entry is live iff its communication window still exists: a
   crashed peer's windows were reaped by the server, so its entry is a
   ghost. Every accessor prunes ghosts, so [winfo interps] never lists a
   dead interpreter and stale entries don't linger until a send to them
   happens to fail. *)
let registry_entry_live app (_, xid) =
  match Server.lookup_window app.server xid with
  | Some w -> not w.Window.destroyed
  | None -> false

let parse_registry_entries data =
  match Tcl.Tcl_list.parse data with
  | Error _ -> []
  | Ok entries ->
    List.filter_map
      (fun e ->
        match Tcl.Tcl_list.parse e with
        | Ok [ name; xid ] ->
          Option.map (fun id -> (name, id)) (int_of_string_opt xid)
        | _ -> None)
      entries

let write_registry_shard app k entries =
  let entries = List.filter (registry_entry_live app) entries in
  absorb app ~default:() @@ fun () ->
  let root = Server.root app.server in
  let prop = Server.intern_atom app.conn (registry_shard_property k) in
  Server.change_property app.conn root ~prop ~ptype:Atom.string
    (Tcl.Tcl_list.format
       (List.map
          (fun (name, xid) -> Tcl.Tcl_list.format [ name; string_of_int xid ])
          entries))

let read_registry_shard app k =
  let entries =
    absorb app ~default:[] @@ fun () ->
    let root = Server.root app.server in
    let prop = Server.intern_atom app.conn (registry_shard_property k) in
    match Server.get_property app.conn root ~prop with
    | None -> []
    | Some p -> parse_registry_entries p.Window.prop_data
  in
  let live = List.filter (registry_entry_live app) entries in
  (* Garbage-collect: rewrite the shard without the ghosts. *)
  let ghosts = List.length entries - List.length live in
  if ghosts > 0 then begin
    app.metrics.Metrics.ghosts_collected <-
      app.metrics.Metrics.ghosts_collected + ghosts;
    write_registry_shard app k live
  end;
  live

let lookup_registry app name =
  List.assoc_opt name (read_registry_shard app (shard_of_name name))

(* The send hot path: one shard read, no liveness pings — O(1) requests
   per lookup regardless of fleet size.  The entry may be stale (the peer
   crashed without cleanup); callers find that out when posting to the
   dead window fails, then fall back to the pinging {!lookup_registry}
   which garbage-collects the ghost. *)
let lookup_registry_raw app name =
  let entries =
    absorb app ~default:[] @@ fun () ->
    let root = Server.root app.server in
    let prop =
      Server.intern_atom app.conn (registry_shard_property (shard_of_name name))
    in
    match Server.get_property app.conn root ~prop with
    | None -> []
    | Some p -> parse_registry_entries p.Window.prop_data
  in
  List.assoc_opt name entries

let read_registry app =
  let rec shards k acc =
    if k >= registry_shards then acc
    else shards (k + 1) (acc @ read_registry_shard app k)
  in
  (* Sorted-stable: the aggregate order is by name, independent of shard
     layout and registration order. *)
  List.sort (fun (a, _) (b, _) -> String.compare a b) (shards 0 [])

let write_registry app entries =
  let buckets = Array.make registry_shards [] in
  List.iter
    (fun (name, xid) ->
      let k = shard_of_name name in
      buckets.(k) <- buckets.(k) @ [ (name, xid) ])
    entries;
  Array.iteri (fun k bucket -> write_registry_shard app k bucket) buckets

let register_name app ~name ~comm =
  (* Make the name unique on the display, probing only the candidate's
     own shard each time (O(1) per probe). *)
  let taken candidate = lookup_registry app candidate <> None in
  let unique =
    if not (taken name) then name
    else
      let rec try_n n =
        let candidate = Printf.sprintf "%s #%d" name n in
        if taken candidate then try_n (n + 1) else candidate
      in
      try_n 2
  in
  let k = shard_of_name unique in
  write_registry_shard app k (read_registry_shard app k @ [ (unique, comm) ]);
  unique

(* ------------------------------------------------------------------ *)
(* Widget lookup *)

let lookup app path = Hashtbl.find_opt app.widgets path

let lookup_exn app path =
  match lookup app path with
  | Some w when not w.destroyed -> w
  | Some _ | None -> failf "bad window path name \"%s\"" path

let main_widget app = lookup_exn app "."

let children w =
  Hashtbl.fold
    (fun path child acc ->
      if Path.parent path = Some w.path then child :: acc else acc)
    w.app.widgets []
  |> List.sort (fun a b -> String.compare a.path b.path)

(* ------------------------------------------------------------------ *)
(* Configuration machinery *)

let find_spec w switch =
  let specs = w.wclass.specs in
  match List.find_opt (fun s -> s.switch = switch) specs with
  | Some s -> s
  | None -> (
    (* Unique abbreviations are accepted, as in Tk. *)
    let is_prefix p s =
      String.length p <= String.length s
      && String.sub s 0 (String.length p) = p
    in
    match List.filter (fun s -> is_prefix switch s.switch) specs with
    | [ s ] -> s
    | [] -> failf "unknown option \"%s\"" switch
    | _ -> failf "ambiguous option \"%s\"" switch)

let validate w spec value =
  match spec.otype with
  | Ot_string -> ()
  | Ot_int ->
    if int_of_string_opt (String.trim value) = None then
      failf "expected integer but got \"%s\"" value
  | Ot_pixels ->
    if parse_pixels value = None then
      failf "bad screen distance \"%s\"" value
  | Ot_color ->
    if Rescache.color w.app.cache value = None then
      failf "unknown color name \"%s\"" value
  | Ot_font ->
    if Rescache.font w.app.cache value = None then
      failf "font \"%s\" doesn't exist" value
  | Ot_cursor ->
    if value <> "" && Rescache.cursor w.app.cache value = None then
      failf "bad cursor spec \"%s\"" value
  | Ot_bitmap ->
    if value <> "" && Rescache.bitmap w.app.cache value = None then
      failf "bitmap \"%s\" not defined" value
  | Ot_relief -> (
    match value with
    | "raised" | "sunken" | "flat" -> ()
    | _ -> failf "bad relief type \"%s\": must be raised, sunken or flat" value)
  | Ot_boolean -> (
    match String.lowercase_ascii value with
    | "0" | "1" | "true" | "false" | "yes" | "no" | "on" | "off" -> ()
    | _ -> failf "expected boolean value but got \"%s\"" value)
  | Ot_anchor -> (
    match value with
    | "n" | "ne" | "e" | "se" | "s" | "sw" | "w" | "nw" | "center" -> ()
    | _ ->
      failf
        "bad anchor position \"%s\": must be n, ne, e, se, s, sw, w, nw, or \
         center"
        value)

let set_option w spec value =
  validate w spec value;
  Hashtbl.replace w.config spec.switch value

let configure w pairs =
  let rec go = function
    | [] -> ()
    | switch :: value :: rest ->
      set_option w (find_spec w switch) value;
      go rest
    | [ switch ] -> failf "value for \"%s\" missing" switch
  in
  go pairs;
  w.wclass.configure_hook w

let cget w switch =
  let spec = find_spec w switch in
  match Hashtbl.find_opt w.config spec.switch with
  | Some v -> v
  | None -> spec.default

(* The (name, class) chain used for option-database lookups: the
   application, then every window from the top down. *)
let name_chain w =
  let rec prefixes acc path =
    match Path.parent path with
    | None -> acc
    | Some parent -> prefixes (path :: acc) parent
  in
  let paths = prefixes [] w.path in
  (w.app.app_name, w.app.app_class)
  :: List.filter_map
       (fun path ->
         Option.map
           (fun widget -> (Path.basename path, widget.wclass.cname))
           (lookup w.app path))
       paths

let configure_info w switch =
  let one spec =
    let current =
      match Hashtbl.find_opt w.config spec.switch with
      | Some v -> v
      | None -> spec.default
    in
    Tcl.Tcl_list.format
      [ spec.switch; spec.db_name; spec.db_class; spec.default; current ]
  in
  match switch with
  | Some s -> one (find_spec w s)
  | None ->
    Tcl.Tcl_list.format (List.map one w.wclass.specs)

(* Typed accessors. Values were validated at configure time, so failures
   here indicate a missing default in a widget's spec table. *)
let get_string w switch = cget w switch

let get_int w switch =
  match int_of_string_opt (String.trim (cget w switch)) with
  | Some i -> i
  | None -> failf "option %s of %s is not an integer" switch w.path

let get_pixels w switch =
  match parse_pixels (cget w switch) with
  | Some px -> px
  | None -> failf "option %s of %s is not a screen distance" switch w.path

let get_boolean w switch =
  match String.lowercase_ascii (cget w switch) with
  | "1" | "true" | "yes" | "on" -> true
  | _ -> false

let get_relief w switch =
  match cget w switch with
  | "raised" -> Raised
  | "sunken" -> Sunken
  | _ -> Flat

let get_anchor w switch =
  match cget w switch with
  | "n" -> N
  | "ne" -> NE
  | "e" -> E
  | "se" -> SE
  | "s" -> S
  | "sw" -> SW
  | "w" -> W
  | "nw" -> NW
  | _ -> Center

let get_color w switch =
  match Rescache.color w.app.cache (cget w switch) with
  | Some c -> c
  | None -> Color.black

let get_font w switch =
  match Rescache.font w.app.cache (cget w switch) with
  | Some f -> f
  | None -> Font.fallback ()

let resolve_option_or_literal w name =
  if String.length name > 0 && name.[0] = '-' then cget w name else name

let widget_gc w ~fg ?font () =
  let fg = resolve_option_or_literal w fg in
  let font = Option.map (resolve_option_or_literal w) font in
  Rescache.gc w.app.cache ~foreground:fg ?font ()

(* ------------------------------------------------------------------ *)
(* Class helpers *)

let make_class ~name ~specs () =
  {
    cname = name;
    specs;
    configure_hook = (fun _ -> ());
    display = (fun _ -> ());
    display_damaged = None;
    handle_event = (fun _ _ -> ());
    subcommands =
      (fun w words ->
        match words with
        | _ :: sub :: _ -> failf "bad option \"%s\" for %s" sub w.path
        | _ -> failf "wrong # args for %s" w.path);
    cleanup = (fun _ -> ());
  }

(* ------------------------------------------------------------------ *)
(* Geometry plumbing *)

(* When pending damage covers this fraction of the widget (percent), the
   sweep deopts to a full clear + redraw: clipping bookkeeping stops
   paying for itself once most of the window is dirty anyway. *)
let damage_deopt_percent = 60

(* Pending damage is kept as a handful of disjoint-ish rects rather than
   one bounding union: a frame that dirties a status line top-left and a
   cursor bottom-right would otherwise union into most of the window and
   deopt every sweep. *)
let max_damage_rects = 4

let arm_repaint w =
  let m = w.app.metrics in
  w.redraw_pending <- true;
  m.Metrics.redraws_scheduled <- m.Metrics.redraws_scheduled + 1;
  Dispatch.when_idle w.app.disp (fun () ->
      w.redraw_pending <- false;
      let damage = w.damage in
      w.damage <- [];
      (* Re-check at sweep time: the widget may have been destroyed
         after this redraw was scheduled; drawing into its (possibly
         recycled) window would be wrong. *)
      if w.destroyed then
        m.Metrics.redraws_skipped_dead <- m.Metrics.redraws_skipped_dead + 1
      else if w.mapped then begin
        m.Metrics.redraws_drawn <- m.Metrics.redraws_drawn + 1;
        let partial =
          (* A partial repaint needs a class that understands clips; and
             once damage swamps the window, full redraw is cheaper. *)
          match (damage, w.wclass.display_damaged) with
          | [], _ -> None
          | _ :: _, None ->
            m.Metrics.damage_deopt_full <- m.Metrics.damage_deopt_full + 1;
            None
          | rects, Some repaint ->
            let wrect =
              Geom.rect ~x:0 ~y:0 ~width:w.width ~height:w.height
            in
            let visible =
              List.filter_map (fun r -> Geom.intersect r wrect) rects
            in
            let total =
              List.fold_left (fun acc r -> acc + Geom.area r) 0 visible
            in
            if total * 100 >= Geom.area wrect * damage_deopt_percent then begin
              m.Metrics.damage_deopt_full <- m.Metrics.damage_deopt_full + 1;
              None
            end
            else Some (repaint, visible)
        in
        (* A rejected request mid-repaint leaves the window partially
           drawn until the next Expose — but the application lives on. *)
        absorb w.app ~default:() (fun () ->
            match partial with
            | Some (repaint, clips) ->
              m.Metrics.damage_drawn <- m.Metrics.damage_drawn + 1;
              List.iter (fun clip -> repaint w clip) clips
            | None ->
              Server.clear_window w.app.conn w.win;
              w.wclass.display w)
      end)

let schedule_redraw w =
  let m = w.app.metrics in
  if w.redraw_pending then begin
    (* Idle-time redisplay (paper §3.2): this repaint rides the one
       already scheduled. The collapsed count is the traffic saved. *)
    m.Metrics.redraws_collapsed <- m.Metrics.redraws_collapsed + 1;
    (* A full redraw subsumes any pending partial damage. *)
    if w.damage <> [] then begin
      w.damage <- [];
      m.Metrics.damage_deopt_full <- m.Metrics.damage_deopt_full + 1
    end
  end
  else if not w.destroyed then arm_repaint w

let schedule_damage w rect =
  if not (Geom.is_empty rect) then begin
    let m = w.app.metrics in
    if w.redraw_pending then begin
      m.Metrics.redraws_collapsed <- m.Metrics.redraws_collapsed + 1;
      match w.damage with
      | [] ->
        (* A full redraw is already pending; it covers this damage. *)
        ()
      | rects ->
        (* Coalesce: merge into whichever pending rect grows the least,
           or keep the rect separate while there is room and merging
           would cost more area than it saves. Precision lost to a union
           is at worst extra clean items considered, never missed dirt. *)
        m.Metrics.damage_coalesced <- m.Metrics.damage_coalesced + 1;
        let grow r = Geom.area (Geom.union r rect) - Geom.area r in
        let best =
          List.fold_left
            (fun best r ->
              match best with
              | Some (c, _) when c <= grow r -> best
              | _ -> Some (grow r, r))
            None rects
        in
        (match best with
        | Some (cost, target)
          when List.length rects >= max_damage_rects
               || cost <= Geom.area rect ->
          w.damage <-
            List.map (fun r -> if r == target then Geom.union r rect else r) rects
        | _ -> w.damage <- rect :: rects)
    end
    else if not w.destroyed then begin
      w.damage <- [ rect ];
      m.Metrics.damage_scheduled <- m.Metrics.damage_scheduled + 1;
      arm_repaint w
    end
  end

let move_resize w ~x ~y ~width ~height =
  if
    (not w.destroyed)
    && (x <> w.x || y <> w.y || width <> w.width || height <> w.height)
  then begin
    absorb w.app ~default:() (fun () ->
        Server.configure_window w.app.conn ~x ~y ~width ~height w.win);
    (* Structure cache: mirror the change without waiting for the
       ConfigureNotify round trip. *)
    w.x <- x;
    w.y <- y;
    let resized = width <> w.width || height <> w.height in
    w.width <- width;
    w.height <- height;
    if resized then schedule_redraw w
  end

let request_size w ~width ~height =
  let width = max 1 width and height = max 1 height in
  if width <> w.req_width || height <> w.req_height then begin
    w.req_width <- width;
    w.req_height <- height;
    match w.geom_mgr with
    | Some mgr -> mgr.gm_slave_request w
    | None ->
      (* The main window negotiates with the window manager; our simulated
         WM always grants the request. *)
      if w.path = "." then
        move_resize w ~x:w.x ~y:w.y ~width ~height
  end

let map_widget w =
  if (not w.mapped) && not w.destroyed then begin
    absorb w.app ~default:() (fun () -> Server.map_window w.app.conn w.win);
    w.mapped <- true;
    schedule_redraw w
  end

let unmap_widget w =
  if w.mapped && not w.destroyed then begin
    absorb w.app ~default:() (fun () -> Server.unmap_window w.app.conn w.win);
    w.mapped <- false
  end

(* ------------------------------------------------------------------ *)
(* Bindings *)

let bindings_for app path =
  match Hashtbl.find_opt app.bindings path with
  | Some l -> !l
  | None -> []

let bind_widget app ~path ~sequence ~script =
  match Bindpattern.parse_sequence sequence with
  | Error msg -> failf "%s" msg
  | Ok bseq ->
    let bkey = Bindpattern.canonical bseq in
    let cell =
      match Hashtbl.find_opt app.bindings path with
      | Some l -> l
      | None ->
        let l = ref [] in
        Hashtbl.replace app.bindings path l;
        l
    in
    cell := List.filter (fun b -> b.bkey <> bkey) !cell;
    if script <> "" then cell := { bseq; bkey; bscript = script } :: !cell

let binding_script app ~path ~sequence =
  match Bindpattern.parse_sequence sequence with
  | Error msg -> failf "%s" msg
  | Ok bseq ->
    let bkey = Bindpattern.canonical bseq in
    List.find_map
      (fun b -> if b.bkey = bkey then Some b.bscript else None)
      (bindings_for app path)

let bound_sequences app ~path =
  List.map (fun b -> b.bkey) (bindings_for app path)

(* Figure 7: %-substitution of event fields into binding scripts. *)
let percent_substitute script w (event : Event.t) ~time =
  let coords =
    match event with
    | Event.Key_press k | Event.Key_release k -> Some (k.Event.kx, k.Event.ky)
    | Event.Button_press b | Event.Button_release b ->
      Some (b.Event.bx, b.Event.by)
    | Event.Motion m -> Some (m.Event.mx, m.Event.my)
    | Event.Configure_notify c -> Some (c.Event.cx, c.Event.cy)
    | Event.Expose e -> Some (e.Event.ex, e.Event.ey)
    | _ -> None
  in
  let dims =
    match event with
    | Event.Configure_notify c -> Some (c.Event.cwidth, c.Event.cheight)
    | Event.Expose e -> Some (e.Event.ewidth, e.Event.eheight)
    | _ -> None
  in
  let state =
    match event with
    | Event.Key_press k | Event.Key_release k -> Some k.Event.key_state
    | Event.Button_press b | Event.Button_release b ->
      Some b.Event.button_state
    | Event.Motion m -> Some m.Event.motion_state
    | Event.Enter c | Event.Leave c -> Some c.Event.crossing_state
    | _ -> None
  in
  let state_mask =
    match state with
    | None -> 0
    | Some s ->
      (if s.Event.shift then 1 else 0)
      lor (if s.Event.lock then 2 else 0)
      lor (if s.Event.control then 4 else 0)
      lor (if s.Event.meta then 8 else 0)
      lor (if s.Event.alt then 16 else 0)
      lor (if s.Event.button1 then 256 else 0)
      lor (if s.Event.button2 then 512 else 0)
      lor if s.Event.button3 then 1024 else 0
  in
  let rec root_x widget acc =
    match Path.parent widget.path with
    | None -> acc + widget.x
    | Some p -> (
      match lookup widget.app p with
      | Some parent -> root_x parent (acc + widget.x)
      | None -> acc + widget.x)
  in
  let rec root_y widget acc =
    match Path.parent widget.path with
    | None -> acc + widget.y
    | Some p -> (
      match lookup widget.app p with
      | Some parent -> root_y parent (acc + widget.y)
      | None -> acc + widget.y)
  in
  let expand c =
    match c with
    | '%' -> "%"
    | 'W' -> w.path
    | 'T' -> Event.name event
    | 't' -> string_of_int time
    | 'x' -> ( match coords with Some (x, _) -> string_of_int x | None -> "??")
    | 'y' -> ( match coords with Some (_, y) -> string_of_int y | None -> "??")
    | 'X' -> (
      match coords with
      | Some (x, _) -> string_of_int (root_x w 0 + x)
      | None -> "??")
    | 'Y' -> (
      match coords with
      | Some (_, y) -> string_of_int (root_y w 0 + y)
      | None -> "??")
    | 'w' -> ( match dims with Some (dw, _) -> string_of_int dw | None -> "??")
    | 'h' -> ( match dims with Some (_, dh) -> string_of_int dh | None -> "??")
    | 'b' -> (
      match event with
      | Event.Button_press b | Event.Button_release b ->
        string_of_int b.Event.button
      | _ -> "??")
    | 'K' -> (
      match event with
      | Event.Key_press k | Event.Key_release k -> k.Event.keysym
      | _ -> "??")
    | 'A' -> (
      match event with
      | Event.Key_press k | Event.Key_release k -> (
        match Event.char_of_keysym k.Event.keysym with
        | Some c -> String.make 1 c
        | None -> "")
      | _ -> "")
    | 's' -> string_of_int state_mask
    | c -> "%" ^ String.make 1 c
  in
  let buf = Buffer.create (String.length script + 16) in
  let n = String.length script in
  let i = ref 0 in
  while !i < n do
    if script.[!i] = '%' && !i + 1 < n then begin
      Buffer.add_string buf (expand script.[!i + 1]);
      i := !i + 2
    end
    else begin
      Buffer.add_char buf script.[!i];
      incr i
    end
  done;
  Buffer.contents buf

(* Callbacks (bindings, -command scripts, timers) always run at global
   scope, as in real Tk — even when the event loop is being pumped from
   inside a procedure (tkwait). *)
let eval_callback app ?(context = "command") script =
  match
    Tcl.Interp.with_level app.interp 0 (fun () ->
        Tcl.Interp.eval app.interp script)
  with
  | Tcl.Interp.Tcl_error, msg ->
    app.error_handler (Printf.sprintf "error in %s: %s" context msg)
  | _ -> ()

(* Find and run the most specific binding matching this event. *)
let run_bindings app w event ~click_count ~time =
  let candidates = bindings_for app w.path in
  let matches b =
    match b.bseq with
    | [ p ] -> Bindpattern.matches p event ~click_count
    | seq ->
      Bindpattern.is_press event
      &&
      let k = List.length seq in
      let history = w.press_history in
      List.length history >= k
      &&
      let recent = List.filteri (fun i _ -> i < k) history in
      (* [recent] is newest-first; patterns are oldest-first. *)
      List.for_all2
        (fun pattern (ev, cc) -> Bindpattern.matches pattern ev ~click_count:cc)
        seq (List.rev recent)
  in
  let best =
    List.fold_left
      (fun best b ->
        if not (matches b) then best
        else
          let score = Bindpattern.specificity b.bseq in
          match best with
          | Some (bs, _) when bs >= score -> best
          | _ -> Some (score, b))
      None candidates
  in
  match best with
  | None -> ()
  | Some (_, b) ->
    app.metrics.Metrics.binding_dispatches <-
      app.metrics.Metrics.binding_dispatches + 1;
    let script = percent_substitute b.bscript w event ~time in
    eval_callback app ~context:(Printf.sprintf "binding for %s" w.path) script

(* ------------------------------------------------------------------ *)
(* Widget creation / destruction *)

let widget_command w : Tcl.Interp.command =
 fun _interp words ->
  if w.destroyed then failf "bad window path name \"%s\"" w.path
  else
    match words with
    | [ _ ] ->
      failf "wrong # args: should be \"%s option ?arg arg ...?\"" w.path
    | _ :: "configure" :: rest -> (
      match rest with
      | [] -> Tcl.Interp.ok (configure_info w None)
      | [ switch ] -> Tcl.Interp.ok (configure_info w (Some switch))
      | pairs ->
        configure w pairs;
        Tcl.Interp.ok "")
    | [ _; "cget"; switch ] -> Tcl.Interp.ok (cget w switch)
    | _ :: "cget" :: _ -> Tcl.Interp.wrong_args (w.path ^ " cget option")
    | words -> w.wclass.subcommands w words

let make_widget app ~path ?(data = No_data) wclass ~args =
  if not (Path.is_valid path) then failf "bad window path name \"%s\"" path;
  if Hashtbl.mem app.widgets path then
    failf "window name \"%s\" already exists" path;
  let parent_win =
    match Path.parent path with
    | None -> Server.root app.server (* the main window "." *)
    | Some parent_path -> (
      match lookup app parent_path with
      | Some parent -> parent.win
      | None -> failf "bad window path name \"%s\"" path)
  in
  let win =
    let create () =
      Server.create_window app.conn ~parent:parent_win ~x:0 ~y:0 ~width:1
        ~height:1 ~border_width:0
    in
    (* One retry: an injected fault advances the plan's tick, so the second
       attempt goes through. A second rejection is reported at the script
       level instead of unwinding the event loop. *)
    try create ()
    with Xerror.X_error e -> (
      Server.note_absorbed app.server e;
      try create ()
      with Xerror.X_error e2 ->
        Server.note_absorbed app.server e2;
        failf "couldn't create window for \"%s\": %s" path (Xerror.describe e2))
  in
  let w =
    {
      path;
      wclass;
      win;
      app;
      config = Hashtbl.create 16;
      destroyed = false;
      x = 0;
      y = 0;
      width = 1;
      height = 1;
      mapped = false;
      req_width = 1;
      req_height = 1;
      geom_mgr = None;
      redraw_pending = false;
      damage = [];
      data;
      last_click = None;
      press_history = [];
    }
  in
  Hashtbl.replace app.widgets path w;
  Hashtbl.replace app.by_xid win w;
  (* Initial configuration: command line beats the option database beats
     class defaults (paper §4). *)
  let explicit = Hashtbl.create 8 in
  let rec record = function
    | switch :: _ :: rest ->
      Hashtbl.replace explicit (find_spec w switch).switch ();
      record rest
    | _ -> ()
  in
  (try record args
   with e ->
     Hashtbl.remove app.widgets path;
     Hashtbl.remove app.by_xid win;
     absorb app ~default:() (fun () -> Server.destroy_window app.conn win);
     raise e);
  let chain = name_chain w in
  List.iter
    (fun spec ->
      if not (Hashtbl.mem explicit spec.switch) then
        match
          Optiondb.get app.options ~name_chain:chain ~name:spec.db_name
            ~cls:spec.db_class
        with
        | Some v -> ( try set_option w spec v with Tcl.Interp.Tcl_failure _ -> ())
        | None -> Hashtbl.replace w.config spec.switch spec.default)
    wclass.specs;
  (match
     ( (try
          configure w args;
          None
        with e -> Some e),
       () )
   with
  | Some e, () ->
    Hashtbl.remove app.widgets path;
    Hashtbl.remove app.by_xid win;
    absorb app ~default:() (fun () -> Server.destroy_window app.conn win);
    raise e
  | None, () -> ());
  Tcl.Interp.register app.interp path (widget_command w);
  w

(* Remove a widget from the application's tables without touching the
   server (used when the server told us the window is gone). *)
let forget_widget w =
  if not w.destroyed then begin
    w.destroyed <- true;
    w.wclass.cleanup w;
    (match w.geom_mgr with
    | Some mgr -> mgr.gm_lost_slave w
    | None -> ());
    w.geom_mgr <- None;
    Hashtbl.remove w.app.bindings w.path;
    ignore (Tcl.Interp.delete_command w.app.interp w.path);
    Hashtbl.remove w.app.widgets w.path;
    Hashtbl.remove w.app.by_xid w.win;
    if w.app.focus_path = Some w.path then w.app.focus_path <- None;
    if w.app.sel.sel_owner_path = Some w.path then begin
      w.app.sel.sel_owner_path <- None;
      w.app.sel.sel_provider <- None;
      w.app.sel.sel_tcl_handler <- None
    end
  end

let destroy_hooks : (app -> unit) list ref = ref []

let add_destroy_hook f = destroy_hooks := f :: !destroy_hooks

let unregister_app app =
  let dc = clients_for app.server in
  dc.dc_apps <- List.filter (fun a -> a != app) dc.dc_apps;
  Hashtbl.remove dc.dc_by_comm app.comm_win;
  (* Remove our name from its registry shard. *)
  let k = shard_of_name app.app_name in
  write_registry_shard app k
    (List.filter
       (fun (name, _) -> name <> app.app_name)
       (read_registry_shard app k))

let destroy_app app =
  if not app.app_destroyed then begin
    app.app_destroyed <- true;
    let paths =
      Hashtbl.fold (fun path _ acc -> path :: acc) app.widgets []
      |> List.sort (fun a b -> compare (String.length b) (String.length a))
    in
    List.iter
      (fun path ->
        match lookup app path with
        | Some w -> forget_widget w
        | None -> ())
      paths;
    unregister_app app;
    Server.close app.conn;
    List.iter (fun hook -> hook app) !destroy_hooks
  end

let destroy_widget w =
  if not w.destroyed then
    if w.path = "." then destroy_app w.app
    else begin
      let app = w.app in
      let win = w.win in
      let doomed =
        Hashtbl.fold
          (fun path widget acc ->
            if Path.is_ancestor ~ancestor:w.path path then widget :: acc
            else acc)
          app.widgets []
        |> List.sort
             (fun a b -> compare (String.length b.path) (String.length a.path))
      in
      List.iter forget_widget doomed;
      (* If the server already destroyed the window (or a fault is
         injected) the widget is gone client-side regardless: no-op. *)
      absorb app ~default:() (fun () -> Server.destroy_window app.conn win)
    end

(* ------------------------------------------------------------------ *)
(* Event processing *)

let double_click_ms = 500

let set_focus app path =
  if app.focus_path <> path then begin
    app.focus_path <- path;
    (* Also move the server's input focus so keystrokes reach this
       application even when the pointer is elsewhere (the window manager
       grants the focus; we are our own WM). FocusIn/FocusOut events come
       back through the normal event stream. *)
    match path with
    | Some p -> (
      match lookup app p with
      | Some w when not w.destroyed ->
        absorb app ~default:() (fun () ->
            Server.set_input_focus app.conn w.win)
      | Some _ | None -> ())
    | None ->
      absorb app ~default:() (fun () ->
          Server.set_input_focus app.conn Xid.none)
  end

(* X errors escaping a class event handler are absorbed here so one dead
   window (or injected fault) cannot take the event loop down. *)
let process_one app (d : Event.delivery) =
  absorb app ~default:() @@ fun () ->
  if List.exists (fun h -> h app d) app.pre_handlers then ()
  else
    match Hashtbl.find_opt app.by_xid d.Event.window with
    | None -> ()
    | Some w ->
      (* An active grab confines pointer events to the grab subtree. *)
      let grabbed_out =
        match (app.grab_path, d.Event.event) with
        | ( Some grab,
            ( Event.Button_press _ | Event.Button_release _ | Event.Motion _
            | Event.Enter _ | Event.Leave _ ) ) ->
          not (Path.is_ancestor ~ancestor:grab w.path)
        | _ -> false
      in
      if w.destroyed || grabbed_out then ()
      else begin
        (* Structure cache maintenance. *)
        (match d.Event.event with
        | Event.Configure_notify c ->
          w.x <- c.Event.cx;
          w.y <- c.Event.cy;
          w.width <- c.Event.cwidth;
          w.height <- c.Event.cheight;
          List.iter (fun hook -> hook w) app.configure_hooks
        | Event.Map_notify -> w.mapped <- true
        | Event.Unmap_notify -> w.mapped <- false
        | Event.Expose _ -> schedule_redraw w
        | Event.Destroy_notify -> forget_widget w
        | _ -> ());
        if w.destroyed then ()
        else begin
          (* Keyboard focus: keystrokes are redirected to the focus window
             (paper §3.7). *)
          let target =
            match d.Event.event with
            | Event.Key_press _ | Event.Key_release _ -> (
              match app.focus_path with
              | Some fp -> (
                match lookup app fp with
                | Some fw when not fw.destroyed -> fw
                | Some _ | None -> w)
              | None -> w)
            | _ -> w
          in
          (* Multi-click counting for Double/Triple modifiers. *)
          let click_count =
            match d.Event.event with
            | Event.Button_press b ->
              let count =
                match target.last_click with
                | Some (btn, t0, n)
                  when btn = b.Event.button
                       && d.Event.time - t0 <= double_click_ms ->
                  n + 1
                | _ -> 1
              in
              target.last_click <- Some (b.Event.button, d.Event.time, count);
              count
            | _ -> 1
          in
          (if Bindpattern.is_press d.Event.event then
             let entry = (d.Event.event, click_count) in
             target.press_history <-
               entry :: List.filteri (fun i _ -> i < 7) target.press_history);
          target.wclass.handle_event target d.Event.event;
          if not target.destroyed then
            run_bindings app target d.Event.event ~click_count
              ~time:d.Event.time
        end
      end

let process_pending app =
  let count = ref 0 in
  let rec drain () =
    match Server.next_event app.conn with
    | Some d ->
      incr count;
      process_one app d;
      drain ()
    | None -> ()
  in
  drain ();
  !count

let update app =
  let rec go guard =
    if app.app_destroyed then ()
    else begin
      let n = process_pending app in
      (* Deferred work queued by protocol modules (the send mailbox):
         drained here, from the event loop, never re-entrantly from the
         middle of an X event handler. *)
      let drained =
        List.fold_left (fun acc drain -> acc + drain ()) 0 app.drain_hooks
      in
      let timers = Dispatch.run_due_timers app.disp in
      let idles = Dispatch.run_idle app.disp in
      if n + drained + timers + idles > 0 && guard > 0 then go (guard - 1)
    end
  in
  go 1000

let update_all server = List.iter update (local_apps server)

(* ------------------------------------------------------------------ *)
(* Metrics registry: every counter the stack keeps, in one flat list
   (the [xstat] command and the bench JSON emitter read this). *)

let metrics_snapshot app =
  let s = Server.stats app.conn in
  let d = Dispatch.counters app.disp in
  let ms f = Printf.sprintf "%.3f" f in
  [
    ("requests_total", string_of_int s.Server.total_requests);
    ("round_trips", string_of_int s.Server.round_trips);
    ("requests_resource", string_of_int s.Server.resource_allocs);
    ("requests_window", string_of_int s.Server.window_requests);
    ("requests_draw", string_of_int s.Server.draw_requests);
    ("requests_property", string_of_int s.Server.property_requests);
    ("rescache_hits", string_of_int (Rescache.hits app.cache));
    ("rescache_misses", string_of_int (Rescache.misses app.cache));
    ("rescache_fallbacks", string_of_int (Rescache.fallbacks app.cache));
  ]
  @ Metrics.to_list app.metrics
  @ Metrics.damage_to_list app.metrics
  @ Metrics.canvas_to_list app.metrics
  @ Metrics.send_to_list app.metrics
  @ [
      ("timers_fired", string_of_int d.Dispatch.timers_fired);
      ("idles_run", string_of_int d.Dispatch.idles_run);
      ("dispatch_sweeps", string_of_int d.Dispatch.sweeps);
      ("sweep_ms_total", ms d.Dispatch.sweep_ms_total);
      ("sweep_ms_last", ms d.Dispatch.sweep_ms_last);
      ("faults_injected", string_of_int (Server.faults_injected app.server));
      ("faults_absorbed", string_of_int (Server.faults_absorbed app.server));
      ("trace_records", string_of_int (Server.trace_length app.conn));
    ]
  @ List.map
      (fun (k, v) -> ("tcl.compile." ^ k, v))
      (Tcl.Interp.compile_stats app.interp)
  @ List.map
      (fun (k, v) -> ("tcl.vm." ^ k, v))
      (Tcl.Interp.vm_stats app.interp)
  @ List.map
      (fun (k, v) -> ("tcl.lint." ^ k, v))
      (Tcl.Interp.lint_stats app.interp)
  @ List.map
      (fun (k, v) -> ("tcl.limit." ^ k, v))
      (Tcl.Interp.limit_stats app.interp)
  @ List.map
      (fun (k, v) -> ("tcl.interp." ^ k, v))
      (Tcl.Interp.interp_stats app.interp)

let metric app name =
  List.assoc_opt name (metrics_snapshot app)

(* Server fault counters are display-global (other clients' absorption
   accounting rides on them), so a per-app reset leaves them alone. *)
let reset_metrics app =
  Server.reset_stats app.conn;
  Rescache.reset_counters app.cache;
  Metrics.reset app.metrics;
  Dispatch.reset_counters app.disp;
  Tcl.Interp.reset_compile_stats app.interp;
  Tcl.Interp.reset_vm_stats app.interp;
  Tcl.Interp.reset_lint_stats app.interp;
  Tcl.Interp.reset_guard_stats app.interp

let mainloop app =
  while not app.app_destroyed do
    update app;
    if not app.app_destroyed then begin
      let timeout =
        match Dispatch.next_deadline_ms app.disp with
        | Some ms -> float_of_int (min ms 50) /. 1000.0
        | None -> 0.05
      in
      (* poll_files honors the timeout even with no registered files, so
         this is where the loop blocks between events — no busy-spin when
         a timer is due in under a millisecond (next_deadline_ms rounds
         up) and no separate idle nap needed. *)
      ignore (Dispatch.poll_files app.disp ~timeout)
    end
  done

(* ------------------------------------------------------------------ *)
(* Container (frame-like) class, shared by "." and the frame widget *)

let container_specs =
  [
    spec ~switch:"-background" ~db:"background" ~cls:"Background"
      ~default:"#cccccc" Ot_color;
    spec ~switch:"-bg" ~db:"background" ~cls:"Background" ~default:"#cccccc"
      Ot_color;
    spec ~switch:"-borderwidth" ~db:"borderWidth" ~cls:"BorderWidth"
      ~default:"0" Ot_pixels;
    spec ~switch:"-relief" ~db:"relief" ~cls:"Relief" ~default:"flat"
      Ot_relief;
    spec ~switch:"-width" ~db:"width" ~cls:"Width" ~default:"0" Ot_pixels;
    spec ~switch:"-height" ~db:"height" ~cls:"Height" ~default:"0" Ot_pixels;
    spec ~switch:"-geometry" ~db:"geometry" ~cls:"Geometry" ~default:""
      Ot_string;
    spec ~switch:"-cursor" ~db:"cursor" ~cls:"Cursor" ~default:"" Ot_cursor;
  ]

(* -bg is an alias for -background: keep them coherent. *)
let sync_bg_aliases w =
  match
    (Hashtbl.find_opt w.config "-bg", Hashtbl.find_opt w.config "-background")
  with
  | Some bg, Some background when bg <> background ->
    (* The most recently configured one wins; we can't tell which that
       was, so prefer -bg only if -background still has its default. *)
    let default =
      (List.find (fun s -> s.switch = "-background") w.wclass.specs).default
    in
    if background = default then Hashtbl.replace w.config "-background" bg
    else Hashtbl.replace w.config "-bg" background
  | Some bg, None -> Hashtbl.replace w.config "-background" bg
  | _ -> ()

let parse_geometry_spec s =
  match String.index_opt s 'x' with
  | Some i -> (
    let ws = String.sub s 0 i in
    let hs = String.sub s (i + 1) (String.length s - i - 1) in
    match (int_of_string_opt ws, int_of_string_opt hs) with
    | Some w, Some h -> Some (w, h)
    | _ -> None)
  | None -> None

let container_configure w =
  sync_bg_aliases w;
  absorb w.app ~default:() (fun () ->
      Server.set_window_background w.app.conn w.win
        (get_color w "-background"));
  let bw = get_pixels w "-borderwidth" in
  let width = get_pixels w "-width" and height = get_pixels w "-height" in
  (match parse_geometry_spec (get_string w "-geometry") with
  | Some (gw, gh) -> request_size w ~width:gw ~height:gh
  | None ->
    if width > 0 || height > 0 then
      request_size w
        ~width:(if width > 0 then width else w.req_width)
        ~height:(if height > 0 then height else w.req_height));
  ignore bw;
  schedule_redraw w

let container_display w =
  let bw = get_pixels w "-borderwidth" in
  if bw > 0 then
    match get_relief w "-relief" with
    | Flat -> ()
    | relief ->
      Server.draw_relief w.app.conn w.win
        (Geom.rect ~x:0 ~y:0 ~width:w.width ~height:w.height)
        ~raised:(relief = Raised) ~width:bw

let container_class ~name =
  let cls = make_class ~name ~specs:container_specs () in
  cls.configure_hook <- container_configure;
  cls.display <- container_display;
  cls

(* ------------------------------------------------------------------ *)
(* Application creation *)

let create_app ?(app_class = "Tk") ~server ~name () =
  let conn = Server.connect server ~name in
  let interp = Tcl.Builtins.new_interp () in
  let comm_win =
    let create () =
      Server.create_window conn ~parent:(Server.root server) ~x:(-10) ~y:(-10)
        ~width:1 ~height:1 ~border_width:0
    in
    try create ()
    with Xerror.X_error e ->
      (* Retry once under fault injection; see make_widget. *)
      Server.note_absorbed server e;
      create ()
  in
  let app =
    {
      app_name = name;
      app_class;
      interp;
      conn;
      server;
      widgets = Hashtbl.create 32;
      by_xid = Hashtbl.create 32;
      cache = Rescache.create conn;
      options = Optiondb.create ();
      bindings = Hashtbl.create 32;
      disp = Dispatch.create ();
      metrics = Metrics.create ();
      focus_path = None;
      comm_win;
      send_serial = 0;
      title = name;
      app_destroyed = false;
      error_handler =
        (fun msg -> prerr_endline ("tk background error: " ^ msg));
      configure_hooks = [];
      pre_handlers = [];
      drain_hooks = [];
      grab_path = None;
      sel =
        {
          sel_owner_path = None;
          sel_provider = None;
          sel_tcl_handler = None;
          sel_pending = None;
        };
      send =
        {
          mailbox = Queue.create ();
          mailbox_limit = 64;
          self_fast_path = true;
          futures = Hashtbl.create 8;
          future_serial = 0;
          (* Seed the backoff jitter from the connection id: deterministic
             per app, independent of wall-clock time. *)
          send_rng = (Server.connection_id conn * 2654435761) land 0x3FFFFFFF;
          guard_mode = Guard_off;
          guard_time_ms = 0;
          guard_cmds = 0;
          draining = false;
          guard_interp = None;
        };
    }
  in
  (* The [time] command reads the dispatcher's pluggable clock, so under
     a virtual clock it agrees with [after]. *)
  Tcl.Interp.set_time_source interp
    (Some (fun () -> Dispatch.clock_seconds app.disp));
  (* Resource limits run on the dispatcher's millisecond clock, so a
     virtual clock makes limit enforcement deterministic, and slaves
     created later inherit the same clock. *)
  Tcl.Interp.set_limit_clock interp
    (Some (fun () -> Dispatch.now_ms app.disp));
  (* Register a unique application name in its registry shard (paper §6). *)
  app.app_name <- register_name app ~name ~comm:comm_win;
  let dc = clients_for server in
  dc.dc_apps <- dc.dc_apps @ [ app ];
  Hashtbl.replace dc.dc_by_comm comm_win app;
  (* Background errors (bindings, timers, file handlers) go to a
     user-redefinable Tcl procedure: [tkerror] (the paper-era name) when
     defined, else [bgerror] (its later spelling), else stderr. The event
     loop keeps running either way. *)
  app.error_handler <-
    (fun msg ->
      let report proc =
        match Tcl.Interp.eval_words app.interp [ proc; msg ] with
        | Tcl.Interp.Tcl_error, m ->
          prerr_endline (Printf.sprintf "tk: error in %s: %s" proc m)
        | _ -> ()
      in
      if Tcl.Interp.command_exists app.interp "tkerror" then report "tkerror"
      else if Tcl.Interp.command_exists app.interp "bgerror" then
        report "bgerror"
      else prerr_endline ("tk background error: " ^ msg));
  (* Exceptions escaping timer/idle/file callbacks must not unwind the
     event loop: X errors are absorbed, script errors become background
     errors, anything else (e.g. the exit exception) still propagates. *)
  Dispatch.set_on_error app.disp (function
    | Xerror.X_error e -> Server.note_absorbed app.server e
    | Tcl.Interp.Tcl_failure msg -> app.error_handler msg
    | e -> raise e);
  (* The main window. Our simulated window manager cascades the top-level
     windows of successive applications so they don't cover each other. *)
  let main =
    make_widget app ~path:"." (container_class ~name:app_class) ~args:[]
  in
  let idx = List.length dc.dc_apps - 1 in
  let root_w = (Server.root_window server).Window.width in
  let x = idx * 340 mod max 340 root_w
  and y = idx * 340 / max 340 root_w * 300 in
  move_resize main ~x ~y ~width:200 ~height:200;
  request_size main ~width:200 ~height:200;
  map_widget main;
  app
